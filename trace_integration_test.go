package cosoft_test

// End-to-end coverage of the causal tracing layer: one coupled event driven
// through three instances must leave the complete §3.2 chain in the span
// ring, and a pre-trace ("legacy") peer must interoperate with a traced
// server without ever seeing the wire extension.

import (
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/experiments"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// TestCausalChainAcrossThreeInstances couples one textfield across three
// instances, dispatches a single event from the first, and asserts that the
// shared tracer holds the full causal chain with correct parent/child links:
//
//	client.event_send
//	└ server.event_arrival
//	  ├ lock.acquire
//	  ├ server.exec_send ×2 ── client.exec_apply ×2 ── server.exec_ack ×2
//	  ├ server.event_result
//	  └ server.unlock
func TestCausalChainAcrossThreeInstances(t *testing.T) {
	tr := obs.NewTracer(1024)
	cluster, err := experiments.NewCluster(3, `textfield field value=""`, 0,
		server.Options{Tracer: tr},
		client.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.DeclareAll("/field"); err != nil {
		t.Fatal(err)
	}
	if err := cluster.CoupleStar("/field"); err != nil {
		t.Fatal(err)
	}

	origin := cluster.Clients[0]
	ev := &widget.Event{Path: "/field", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("hello")}}
	if err := origin.DispatchChecked(ev); err != nil {
		t.Fatal(err)
	}
	if err := cluster.WaitValue("/field", "value", "hello"); err != nil {
		t.Fatal(err)
	}

	// The ExecAcks and the unlock land after the origin's EventResult; poll
	// until the whole chain (11 spans) is in the ring.
	spans := waitForSpans(t, tr, 11)

	byName := make(map[string][]obs.Span)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}
	wantCounts := map[string]int{
		"client.event_send":    1,
		"server.event_arrival": 1,
		"lock.acquire":         1,
		"server.exec_send":     2,
		"client.exec_apply":    2,
		"server.exec_ack":      2,
		"server.event_result":  1,
		"server.unlock":        1,
	}
	for name, want := range wantCounts {
		if got := len(byName[name]); got != want {
			t.Errorf("%s: %d spans, want %d", name, got, want)
		}
	}
	if t.Failed() {
		t.Fatalf("spans: %+v", spans)
	}

	root := byName["client.event_send"][0]
	if root.Inst != string(origin.ID()) {
		t.Errorf("root span recorded by %q, want origin %q", root.Inst, origin.ID())
	}
	if root.Parent != 0 {
		t.Errorf("root span has parent %s", root.Parent)
	}
	for _, s := range spans {
		if s.Trace != root.Trace {
			t.Errorf("span %s is on trace %s, want %s", s.Name, s.Trace, root.Trace)
		}
	}

	arrival := byName["server.event_arrival"][0]
	if arrival.Parent != root.ID {
		t.Errorf("event_arrival parent = %s, want root %s", arrival.Parent, root.ID)
	}
	for _, name := range []string{"lock.acquire", "server.exec_send", "server.event_result", "server.unlock"} {
		for _, s := range byName[name] {
			if s.Parent != arrival.ID {
				t.Errorf("%s parent = %s, want event_arrival %s", name, s.Parent, arrival.ID)
			}
		}
	}

	// Each member's re-execution descends from its own exec_send, and each
	// ack from that member's re-execution.
	execSends := make(map[obs.SpanID]bool)
	for _, s := range byName["server.exec_send"] {
		execSends[s.ID] = true
	}
	applies := make(map[obs.SpanID]bool)
	applyInsts := make(map[string]bool)
	for _, s := range byName["client.exec_apply"] {
		if !execSends[s.Parent] {
			t.Errorf("exec_apply on %s has parent %s, not an exec_send", s.Inst, s.Parent)
		}
		applies[s.ID] = true
		applyInsts[s.Inst] = true
	}
	for _, member := range cluster.Clients[1:] {
		if !applyInsts[string(member.ID())] {
			t.Errorf("no exec_apply span from member %s", member.ID())
		}
	}
	for _, s := range byName["server.exec_ack"] {
		if !applies[s.Parent] {
			t.Errorf("exec_ack for %s has parent %s, not an exec_apply", s.Note, s.Parent)
		}
	}

	if got := byName["server.event_result"][0].Note; got != "ok" {
		t.Errorf("event_result note = %q, want ok", got)
	}
	if got := byName["lock.acquire"][0].Note; got != "granted n=2/2" {
		t.Errorf("lock.acquire note = %q, want granted n=2/2", got)
	}
}

func waitForSpans(t *testing.T, tr *obs.Tracer, want int) []obs.Span {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		spans := tr.Spans()
		if len(spans) >= want || time.Now().After(deadline) {
			if len(spans) < want {
				t.Fatalf("only %d spans recorded after 10s, want %d: %+v", len(spans), want, spans)
			}
			return spans
		}
		time.Sleep(time.Millisecond)
	}
}

// snoopConn records every byte a legacy peer exchanges so the test can
// re-parse the raw frames afterwards.
type snoopConn struct {
	net.Conn
	mu   sync.Mutex
	rbuf bytes.Buffer // server → peer
	wbuf bytes.Buffer // peer → server
}

func (s *snoopConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	s.mu.Lock()
	s.rbuf.Write(p[:n])
	s.mu.Unlock()
	return n, err
}

func (s *snoopConn) Write(p []byte) (int, error) {
	n, err := s.Conn.Write(p)
	if n > 0 {
		s.mu.Lock()
		s.wbuf.Write(p[:n])
		s.mu.Unlock()
	}
	return n, err
}

// frameTypes walks the wire framing ([u32 len][u16 type][body]) and returns
// the raw (unmasked) type field of every complete frame.
func frameTypes(t *testing.T, buf []byte) []uint16 {
	t.Helper()
	var types []uint16
	for len(buf) >= 4 {
		n := binary.LittleEndian.Uint32(buf)
		if len(buf) < 4+int(n) {
			break // trailing partial frame
		}
		if n < 2 {
			t.Fatalf("frame body of %d bytes", n)
		}
		types = append(types, binary.LittleEndian.Uint16(buf[4:]))
		buf = buf[4+int(n):]
	}
	return types
}

// TestLegacyPeerInteropWithTracedServer connects a pre-trace peer (no
// Tracer, so it never opts into the wire extension) to a server with tracing
// enabled, alongside a traced peer whose events ARE traced server-side. The
// legacy peer registers, couples, and exchanges events in both directions;
// every raw frame it sees must have a clean type field (no 0x8000 flag).
func TestLegacyPeerInteropWithTracedServer(t *testing.T) {
	tr := obs.NewTracer(256)
	srv := server.New(server.Options{Tracer: tr})
	defer srv.Close()

	dial := func(c net.Conn, name string, tracer *obs.Tracer) *client.Client {
		reg := widget.NewRegistry()
		if _, err := widget.Build(reg, "/", `textfield field value=""`); err != nil {
			t.Fatal(err)
		}
		cli, err := client.New(c, client.Options{
			AppType: "trace-test", User: name, Host: "local",
			Registry: reg, RPCTimeout: 10 * time.Second, Tracer: tracer,
		})
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		return cli
	}

	tc, ts := net.Pipe()
	go srv.HandleConn(wire.NewConn(ts))
	traced := dial(tc, "traced", tr)
	defer traced.Close()

	lc, ls := net.Pipe()
	snoop := &snoopConn{Conn: lc}
	go srv.HandleConn(wire.NewConn(ls))
	legacy := dial(snoop, "legacy", nil)
	defer legacy.Close()

	for _, cli := range []*client.Client{traced, legacy} {
		if err := cli.DeclareTree("/field"); err != nil {
			t.Fatal(err)
		}
	}
	if err := traced.Couple("/field", legacy.Ref("/field")); err != nil {
		t.Fatal(err)
	}
	waitGroupSize := func(cli *client.Client) {
		deadline := time.Now().Add(10 * time.Second)
		for len(cli.CO("/field")) != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("coupling did not converge on %s", cli.ID())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitGroupSize(traced)
	waitGroupSize(legacy)

	waitValue := func(cli *client.Client, want string) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			w, err := cli.Registry().Lookup("/field")
			if err == nil && w.Attr("value").AsString() == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never saw value %q", cli.ID(), want)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Traced origin → the Exec to the legacy member rides a traced chain
	// server-side but must arrive in legacy framing.
	dispatch := func(cli *client.Client, val string) {
		ev := &widget.Event{Path: "/field", Name: widget.EventChanged,
			Args: []attr.Value{attr.String(val)}}
		if _, err := experiments.DispatchRetry(cli, ev); err != nil {
			t.Fatalf("dispatch from %s: %v", cli.ID(), err)
		}
	}
	dispatch(traced, "from-traced")
	waitValue(legacy, "from-traced")
	waitValue(traced, "from-traced")

	// Legacy origin → the chain is untraced end to end.
	dispatch(legacy, "from-legacy")
	waitValue(traced, "from-legacy")
	waitValue(legacy, "from-legacy")

	// The traced chain really was traced (the server recorded spans) ...
	if spans := tr.Spans(); len(spans) == 0 {
		t.Error("traced peer's events recorded no spans")
	}

	// ... yet no frame in either direction of the legacy connection carried
	// the trace flag.
	snoop.mu.Lock()
	recv := append([]byte(nil), snoop.rbuf.Bytes()...)
	sent := append([]byte(nil), snoop.wbuf.Bytes()...)
	snoop.mu.Unlock()
	for dir, buf := range map[string][]byte{"recv": recv, "sent": sent} {
		types := frameTypes(t, buf)
		if len(types) == 0 {
			t.Errorf("%s: no frames captured", dir)
		}
		for i, typ := range types {
			if typ&0x8000 != 0 {
				t.Errorf("%s frame %d: type %#04x carries the trace flag", dir, i, typ)
			}
		}
	}
}
