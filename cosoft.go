// Package cosoft is a Go reproduction of the flexible communication model of
// Zhao & Hoppe, "Supporting Flexible Communication in Heterogeneous
// Multi-User Environments" (ICDCS 1994) — the COSOFT system.
//
// The model relaxes strict WYSIWIS along a new dimension, application
// dependency: arbitrary user-interface objects of heterogeneous applications
// can be coupled dynamically. Coupled objects synchronize by broadcasting
// high-level callback events through a central server and re-executing them
// in every member environment (synchronization by action), after an initial
// alignment by copying UI state (synchronization by state). Objects need not
// be identical to couple — compatibility is defined per widget class through
// correspondence relations, and complex objects match structurally
// (s-compatibility).
//
// # Architecture
//
// A deployment consists of one Server (the central controller holding the
// access permissions, registration records, historical UI states, and the
// lock table) and any number of application instances. Each instance owns a
// widget.Registry — a headless widget toolkit standing in for the paper's
// Motif-based CENTER toolbox — and attaches a Client to it. The Client
// intercepts toolkit events: events on uncoupled objects run locally exactly
// as in the single-user application; events on coupled objects take the
// floor-control path through the server.
//
// # Quick start
//
//	srv := cosoft.NewServer(cosoft.ServerOptions{})
//	defer srv.Close()
//	go srv.Serve(listener)
//
//	reg := cosoft.NewRegistry()
//	cosoft.MustBuild(reg, "/", `textfield note value=""`)
//	cli, err := cosoft.Dial("localhost:7817", cosoft.ClientOptions{
//		AppType: "editor", User: "alice", Registry: reg,
//	})
//	// declare, couple, and type:
//	cli.Declare("/note")
//	cli.Couple("/note", cosoft.ObjectRef{Instance: "editor-2", Path: "/note"})
//	reg.Dispatch(&cosoft.Event{Path: "/note", Name: cosoft.EventChanged,
//		Args: []cosoft.Value{cosoft.String("hello")}})
//
// The packages under internal/ contain the full implementation: the widget
// toolkit, the wire protocol, the coupling graph, the compatibility engine,
// the server, the client runtime, the baseline architectures used by the
// paper's comparison (multiplex, UI-replicated, timestamp-ordered), and the
// two applications the paper reports on (TORI and the COSOFT classroom).
package cosoft

import (
	"net"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/session"
	"cosoft/internal/widget"
)

// Core protocol types.
type (
	// Server is the central coupling server (Figure 4's controller).
	Server = server.Server
	// ServerOptions configures a Server.
	ServerOptions = server.Options
	// ServerStats is a snapshot of server counters.
	ServerStats = server.Stats
	// Client attaches one application instance to the server.
	Client = client.Client
	// ClientOptions configures a Client.
	ClientOptions = client.Options
	// Semantics holds store/load hooks for application data attached to a
	// UI object.
	Semantics = client.Semantics
	// CommandHandler receives application-defined commands (CoSendCommand).
	CommandHandler = client.CommandHandler
	// ReconnectOptions enables automatic reconnection with session resume
	// and state resynchronization (ClientOptions.Reconnect).
	ReconnectOptions = client.ReconnectOptions
	// SyncDirection selects the initial state alignment when coupling
	// complex objects.
	SyncDirection = client.SyncDirection
	// PartialReport describes a best-effort coupling of structurally
	// different complex objects (CoupleTreePartial).
	PartialReport = client.PartialReport
	// Facilitator manages named dynamic sessions (moderated sub-groups).
	Facilitator = session.Facilitator
	// InstanceID identifies a registered application instance.
	InstanceID = couple.InstanceID
	// ObjectRef globally names a UI object as <instance, pathname>.
	ObjectRef = couple.ObjectRef
	// Link is one directed couple link.
	Link = couple.Link
)

// Observability types. Both Server and Client accept a MetricsSink in
// their options; NewMetrics() records, DisabledMetrics is a zero-cost no-op.
type (
	// MetricsSink hands out named metric handles (counters, gauges,
	// latency histograms).
	MetricsSink = obs.Sink
	// MetricsRegistry is the recording MetricsSink with a JSON-marshalable
	// Snapshot.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a point-in-time copy of every metric.
	MetricsSnapshot = obs.Snapshot
	// MetricsSummary digests a latency histogram (count, mean, p50/p95/p99,
	// max).
	MetricsSummary = obs.Summary
	// Tracer records causal spans for every hop of a coupled event; pass the
	// same instance as ServerOptions.Tracer and ClientOptions.Tracer to
	// observe the full chain. Nil disables tracing at zero cost.
	Tracer = obs.Tracer
	// TraceSpan is one recorded hop of a causal trace.
	TraceSpan = obs.Span
	// FlightRecorder keeps the last N decoded protocol envelopes per
	// connection (ServerOptions.Flight).
	FlightRecorder = obs.FlightRecorder
)

// NewMetrics returns a recording metrics registry to pass as
// ServerOptions.Metrics or ClientOptions.Metrics.
func NewMetrics() *MetricsRegistry { return obs.NewRegistry() }

// DisabledMetrics is the no-op sink: measurement code vanishes to
// zero-allocation nil-handle calls.
var DisabledMetrics = obs.Disabled

// NewTracer returns a causal tracer whose ring holds at least n spans
// (n <= 0 selects the default size).
func NewTracer(n int) *Tracer { return obs.NewTracer(n) }

// NewFlightRecorder returns a protocol flight recorder keeping the last n
// envelopes per connection (n <= 0 selects the default depth).
func NewFlightRecorder(n int) *FlightRecorder { return obs.NewFlightRecorder(n) }

// Toolkit types.
type (
	// Registry is the widget tree of one application instance.
	Registry = widget.Registry
	// Widget is a primitive UI object.
	Widget = widget.Widget
	// Event is a high-level callback event — the unit of synchronization.
	Event = widget.Event
	// Class describes a widget class with its relevant attributes.
	Class = widget.Class
	// TreeState is the serializable state of a complex UI object.
	TreeState = widget.TreeState
	// Value is a typed attribute value.
	Value = attr.Value
	// Point is a 2D coordinate for canvas strokes.
	Point = attr.Point
	// AttrSet is a named collection of attribute values.
	AttrSet = attr.Set
	// Correspondences declares cross-class attribute mappings for
	// heterogeneous coupling.
	Correspondences = compat.Correspondences
)

// Initial synchronization directions for CoupleTree.
const (
	SyncNone = client.SyncNone
	SyncPull = client.SyncPull
	SyncPush = client.SyncPush
)

// Standard event names of the built-in widget classes.
const (
	EventActivate = widget.EventActivate
	EventChanged  = widget.EventChanged
	EventEdit     = widget.EventEdit
	EventToggled  = widget.EventToggled
	EventSelect   = widget.EventSelect
	EventMoved    = widget.EventMoved
	EventDraw     = widget.EventDraw
)

// Attribute value constructors.
var (
	Int        = attr.Int
	Float      = attr.Float
	Bool       = attr.Bool
	String     = attr.String
	Color      = attr.Color
	StringList = attr.StringList
	PointList  = attr.PointList
)

// Semantics helpers for typical applications (§5).
var (
	// JSONSemantics marshals an application structure as the semantic state
	// of a UI object.
	JSONSemantics = client.JSONSemantics
	// KVSemantics attaches a string map as the semantic state.
	KVSemantics = client.KVSemantics
)

// NewServer starts a coupling server. Close stops it.
func NewServer(opts ServerOptions) *Server { return server.New(opts) }

// NewFacilitator returns a session facilitator driving moderated dynamic
// grouping through the given client.
func NewFacilitator(cli *Client) *Facilitator { return session.NewFacilitator(cli) }

// NewRegistry returns a widget registry with the standard class set and a
// root form at "/".
func NewRegistry() *Registry { return widget.NewRegistry() }

// NewCorrespondences returns an empty correspondence registry.
func NewCorrespondences() *Correspondences { return compat.NewCorrespondences() }

// Build constructs a widget subtree from a declarative spec (see
// internal/widget's Build for the syntax).
func Build(r *Registry, parentPath, spec string) (*Widget, error) {
	return widget.Build(r, parentPath, spec)
}

// MustBuild is Build for static UI construction; it panics on error.
func MustBuild(r *Registry, parentPath, spec string) *Widget {
	return widget.MustBuild(r, parentPath, spec)
}

// Connect attaches an application instance over an established connection.
func Connect(conn net.Conn, opts ClientOptions) (*Client, error) {
	return client.New(conn, opts)
}

// Dial connects to a server over TCP and registers the instance.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := client.New(conn, opts)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}
