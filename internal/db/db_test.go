package db

import (
	"fmt"
	"reflect"
	"testing"
)

func bibDB(t testing.TB) *DB {
	t.Helper()
	d := New()
	if err := d.CreateTable("pubs", []Column{
		{Name: "author", Kind: KindString},
		{Name: "title", Kind: KindString},
		{Name: "year", Kind: KindInt},
	}); err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"knuth", "The Art of Computer Programming", "1968"},
		{"lamport", "Time, Clocks, and the Ordering of Events", "1978"},
		{"lamport", "The Part-Time Parliament", "1998"},
		{"hoare", "Communicating Sequential Processes", "1978"},
		{"zhao", "Supporting Flexible Communication", "1994"},
	}
	for _, r := range rows {
		if err := d.Insert("pubs", r...); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestSchemaAndErrors(t *testing.T) {
	d := New()
	if err := d.CreateTable("", nil); err == nil {
		t.Error("empty table must fail")
	}
	if err := d.CreateTable("t", []Column{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate column must fail")
	}
	if err := d.CreateTable("t", []Column{{Name: "a", Kind: KindInt}}); err != nil {
		t.Fatal(err)
	}
	if err := d.CreateTable("t", []Column{{Name: "a", Kind: KindInt}}); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := d.Insert("nope", "1"); err == nil {
		t.Error("insert into unknown table must fail")
	}
	if err := d.Insert("t", "1", "2"); err == nil {
		t.Error("wrong arity must fail")
	}
	if err := d.Insert("t", "notanint"); err == nil {
		t.Error("non-integer into int column must fail")
	}
	if err := d.CreateIndex("nope", "a"); err == nil {
		t.Error("index on unknown table must fail")
	}
	if err := d.CreateIndex("t", "zz"); err == nil {
		t.Error("index on unknown column must fail")
	}
	if _, err := d.Run(Query{Table: "nope"}); err == nil {
		t.Error("query on unknown table must fail")
	}
	if _, err := d.Run(Query{Table: "t", Where: []Predicate{{Column: "zz", Op: OpEq}}}); err == nil {
		t.Error("predicate on unknown column must fail")
	}
	if _, err := d.Run(Query{Table: "t", Select: []string{"zz"}}); err == nil {
		t.Error("projection of unknown column must fail")
	}
	if got := d.Tables(); !reflect.DeepEqual(got, []string{"t"}) {
		t.Errorf("Tables = %v", got)
	}
	cols, err := d.Columns("t")
	if err != nil || len(cols) != 1 {
		t.Errorf("Columns = %v, %v", cols, err)
	}
	if _, err := d.Columns("nope"); err == nil {
		t.Error("Columns on unknown table must fail")
	}
}

func TestOperators(t *testing.T) {
	d := bibDB(t)
	cases := []struct {
		name string
		pred Predicate
		want int
	}{
		{"eq", Predicate{"author", OpEq, "lamport"}, 2},
		{"ne", Predicate{"author", OpNe, "lamport"}, 3},
		{"substring", Predicate{"title", OpSubstring, "Time"}, 2},
		{"prefix", Predicate{"title", OpPrefix, "The"}, 2},
		{"like-one-of", Predicate{"author", OpLikeOneOf, "knuth, hoare"}, 2},
		{"lt-int", Predicate{"year", OpLT, "1978"}, 1},
		{"gt-int", Predicate{"year", OpGT, "1978"}, 2},
		{"lt-string", Predicate{"author", OpLT, "l"}, 2},
		{"gt-string", Predicate{"author", OpGT, "l"}, 3},
		{"unknown-op", Predicate{"author", Op("regex"), "x"}, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := d.Run(Query{Table: "pubs", Where: []Predicate{c.pred}})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != c.want {
				t.Errorf("matched %d rows, want %d", len(res.Rows), c.want)
			}
		})
	}
}

func TestConjunctionProjectionLimit(t *testing.T) {
	d := bibDB(t)
	res, err := d.Run(Query{
		Table: "pubs",
		Where: []Predicate{
			{"author", OpEq, "lamport"},
			{"year", OpGT, "1980"},
		},
		Select: []string{"title"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"The Part-Time Parliament"}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Errorf("rows = %v", res.Rows)
	}
	if !reflect.DeepEqual(res.Columns, []string{"title"}) {
		t.Errorf("columns = %v", res.Columns)
	}
	// Limit.
	res, err = d.Run(Query{Table: "pubs", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("limited rows = %d", len(res.Rows))
	}
}

func TestIndexReducesScan(t *testing.T) {
	d := bibDB(t)
	full, err := d.Run(Query{Table: "pubs", Where: []Predicate{{"author", OpEq, "zhao"}}})
	if err != nil {
		t.Fatal(err)
	}
	if full.Scanned != 5 {
		t.Errorf("unindexed scan = %d, want 5", full.Scanned)
	}
	if err := d.CreateIndex("pubs", "author"); err != nil {
		t.Fatal(err)
	}
	indexed, err := d.Run(Query{Table: "pubs", Where: []Predicate{{"author", OpEq, "zhao"}}})
	if err != nil {
		t.Fatal(err)
	}
	if indexed.Scanned != 1 {
		t.Errorf("indexed scan = %d, want 1", indexed.Scanned)
	}
	if !reflect.DeepEqual(indexed.Rows, full.Rows) {
		t.Error("index changed the result")
	}
	// Index stays consistent across later inserts.
	if err := d.Insert("pubs", "zhao", "Another Paper", "1995"); err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Query{Table: "pubs", Where: []Predicate{{"author", OpEq, "zhao"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("post-insert indexed rows = %d, want 2", len(res.Rows))
	}
}

func TestLenAndOps(t *testing.T) {
	d := bibDB(t)
	if d.Len("pubs") != 5 || d.Len("nope") != 0 {
		t.Error("Len wrong")
	}
	if len(Ops()) != 7 {
		t.Errorf("Ops = %v", Ops())
	}
}

func TestDeterministicOrder(t *testing.T) {
	d := bibDB(t)
	first, _ := d.Run(Query{Table: "pubs"})
	for i := 0; i < 5; i++ {
		again, _ := d.Run(Query{Table: "pubs"})
		if !reflect.DeepEqual(first.Rows, again.Rows) {
			t.Fatal("row order not deterministic")
		}
	}
}

func BenchmarkScanVsIndex(b *testing.B) {
	d := New()
	if err := d.CreateTable("t", []Column{{Name: "k", Kind: KindString}, {Name: "v", Kind: KindString}}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := d.Insert("t", fmt.Sprintf("k%d", i), "payload"); err != nil {
			b.Fatal(err)
		}
	}
	q := Query{Table: "t", Where: []Predicate{{"k", OpEq, "k9000"}}}
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	if err := d.CreateIndex("t", "k"); err != nil {
		b.Fatal(err)
	}
	b.Run("index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
