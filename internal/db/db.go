// Package db implements the small in-memory relational engine behind the
// TORI application ("Task-Oriented database Retrieval Interface", §4). It
// supports exactly the retrieval surface TORI synchronizes between users:
// typed columns, the comparison operators offered in TORI's operator menus
// (eq, ne, substring, prefix, like-one-of, lt, gt), conjunctive queries,
// hash indexes for equality, and deterministic results.
package db

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ColKind is a column type.
type ColKind uint8

// Column kinds.
const (
	KindString ColKind = iota + 1
	KindInt
)

// Column describes one table column.
type Column struct {
	Name string
	Kind ColKind
}

// Op is a comparison operator, matching TORI's operator menus.
type Op string

// Supported comparison operators.
const (
	OpEq        Op = "eq"
	OpNe        Op = "ne"
	OpSubstring Op = "substring"
	OpPrefix    Op = "prefix"
	OpLikeOneOf Op = "like-one-of"
	OpLT        Op = "lt"
	OpGT        Op = "gt"
)

// Ops lists all operators in menu order.
func Ops() []Op {
	return []Op{OpEq, OpNe, OpSubstring, OpPrefix, OpLikeOneOf, OpLT, OpGT}
}

// Predicate is one conjunct of a query: column OP value. For OpLikeOneOf,
// Value holds comma-separated alternatives.
type Predicate struct {
	Column string
	Op     Op
	Value  string
}

// Query is a conjunctive selection with projection and an optional limit.
type Query struct {
	Table  string
	Where  []Predicate
	Select []string // empty = all columns
	Limit  int      // 0 = unlimited
}

// Result is a deterministic query result.
type Result struct {
	Columns []string
	Rows    [][]string
	// Scanned counts the rows examined (index hits reduce it) — the cost
	// metric of the TORI coupling experiment.
	Scanned int
}

// Table is one relation.
type table struct {
	columns []Column
	colIdx  map[string]int
	rows    [][]string
	// indexes maps column name -> value -> row numbers.
	indexes map[string]map[string][]int
}

// DB is an in-memory database. The zero value is not usable; call New.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*table
}

// New returns an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*table)}
}

// CreateTable defines a new relation.
func (d *DB) CreateTable(name string, columns []Column) error {
	if name == "" || len(columns) == 0 {
		return errors.New("db: table needs a name and columns")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.tables[name]; ok {
		return fmt.Errorf("db: table %q exists", name)
	}
	t := &table{
		columns: append([]Column(nil), columns...),
		colIdx:  make(map[string]int, len(columns)),
		indexes: make(map[string]map[string][]int),
	}
	for i, c := range columns {
		if _, dup := t.colIdx[c.Name]; dup {
			return fmt.Errorf("db: duplicate column %q", c.Name)
		}
		t.colIdx[c.Name] = i
	}
	d.tables[name] = t
	return nil
}

// Insert appends one row; values are positional.
func (d *DB) Insert(tableName string, values ...string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[tableName]
	if !ok {
		return fmt.Errorf("db: no table %q", tableName)
	}
	if len(values) != len(t.columns) {
		return fmt.Errorf("db: table %q wants %d values, got %d", tableName, len(t.columns), len(values))
	}
	for i, c := range t.columns {
		if c.Kind == KindInt {
			if _, err := strconv.ParseInt(values[i], 10, 64); err != nil {
				return fmt.Errorf("db: column %q wants an integer, got %q", c.Name, values[i])
			}
		}
	}
	row := append([]string(nil), values...)
	rowNum := len(t.rows)
	t.rows = append(t.rows, row)
	for col, idx := range t.indexes {
		v := row[t.colIdx[col]]
		idx[v] = append(idx[v], rowNum)
	}
	return nil
}

// CreateIndex builds a hash index over one column for equality predicates.
func (d *DB) CreateIndex(tableName, column string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tables[tableName]
	if !ok {
		return fmt.Errorf("db: no table %q", tableName)
	}
	ci, ok := t.colIdx[column]
	if !ok {
		return fmt.Errorf("db: no column %q", column)
	}
	idx := make(map[string][]int)
	for i, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], i)
	}
	t.indexes[column] = idx
	return nil
}

// Tables returns the table names, sorted.
func (d *DB) Tables() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.tables))
	for n := range d.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Columns returns a table's column definitions.
func (d *DB) Columns(tableName string) ([]Column, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[tableName]
	if !ok {
		return nil, fmt.Errorf("db: no table %q", tableName)
	}
	return append([]Column(nil), t.columns...), nil
}

// Len returns a table's row count.
func (d *DB) Len(tableName string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if t, ok := d.tables[tableName]; ok {
		return len(t.rows)
	}
	return 0
}

// Run executes a query.
func (d *DB) Run(q Query) (Result, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	t, ok := d.tables[q.Table]
	if !ok {
		return Result{}, fmt.Errorf("db: no table %q", q.Table)
	}
	// Validate predicates and projection.
	for _, p := range q.Where {
		if _, ok := t.colIdx[p.Column]; !ok {
			return Result{}, fmt.Errorf("db: no column %q", p.Column)
		}
	}
	selectCols := q.Select
	if len(selectCols) == 0 {
		selectCols = make([]string, len(t.columns))
		for i, c := range t.columns {
			selectCols[i] = c.Name
		}
	}
	projIdx := make([]int, len(selectCols))
	for i, c := range selectCols {
		ci, ok := t.colIdx[c]
		if !ok {
			return Result{}, fmt.Errorf("db: no column %q", c)
		}
		projIdx[i] = ci
	}

	// Planner: use a hash index for the first indexed equality predicate.
	candidates := t.candidateRows(q.Where)
	res := Result{Columns: selectCols}
	for _, rowNum := range candidates {
		row := t.rows[rowNum]
		res.Scanned++
		if !t.matches(row, q.Where) {
			continue
		}
		projected := make([]string, len(projIdx))
		for i, ci := range projIdx {
			projected[i] = row[ci]
		}
		res.Rows = append(res.Rows, projected)
		if q.Limit > 0 && len(res.Rows) >= q.Limit {
			break
		}
	}
	return res, nil
}

// candidateRows picks the scan set: all rows, or an index bucket.
func (t *table) candidateRows(where []Predicate) []int {
	for _, p := range where {
		if p.Op != OpEq {
			continue
		}
		if idx, ok := t.indexes[p.Column]; ok {
			return idx[p.Value]
		}
	}
	all := make([]int, len(t.rows))
	for i := range all {
		all[i] = i
	}
	return all
}

func (t *table) matches(row []string, where []Predicate) bool {
	for _, p := range where {
		ci := t.colIdx[p.Column]
		if !evalPredicate(row[ci], p, t.columns[ci].Kind) {
			return false
		}
	}
	return true
}

func evalPredicate(cell string, p Predicate, kind ColKind) bool {
	switch p.Op {
	case OpEq:
		return cell == p.Value
	case OpNe:
		return cell != p.Value
	case OpSubstring:
		return strings.Contains(cell, p.Value)
	case OpPrefix:
		return strings.HasPrefix(cell, p.Value)
	case OpLikeOneOf:
		for _, alt := range strings.Split(p.Value, ",") {
			if cell == strings.TrimSpace(alt) {
				return true
			}
		}
		return false
	case OpLT, OpGT:
		if kind == KindInt {
			a, err1 := strconv.ParseInt(cell, 10, 64)
			b, err2 := strconv.ParseInt(p.Value, 10, 64)
			if err1 != nil || err2 != nil {
				return false
			}
			if p.Op == OpLT {
				return a < b
			}
			return a > b
		}
		if p.Op == OpLT {
			return cell < p.Value
		}
		return cell > p.Value
	default:
		return false
	}
}
