package client

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// twoClients connects two clients with distinct specs to one server.
func twoClients(t *testing.T, specA, specB string) (*Client, *Client) {
	t.Helper()
	srv := server.New(testServerOptions())
	var wg sync.WaitGroup
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	mk := func(spec string) *Client {
		link := netsim.NewLink(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.HandleConn(wire.NewConn(link.B))
		}()
		reg := widget.NewRegistry()
		widget.MustBuild(reg, "/", spec)
		c, err := New(link.A, Options{AppType: "p", User: "u", Host: "h",
			Registry: reg, RPCTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	return mk(specA), mk(specB)
}

func TestCoupleTreePartial(t *testing.T) {
	// A's form has an extra slider; B's form has an extra label; the rest
	// matches by name/class. Plain CoupleTree would refuse.
	a, b := twoClients(t,
		`form panel title="A"
  textfield shared value="a-text"
  scale extraA min=0 max=10
  menu pick items=[x,y] selection="x"`,
		`form panel title="B"
  textfield shared value="b-text"
  menu pick items=[x,y] selection="y"
  label extraB label="only here"`)
	if err := a.DeclareTree("/panel"); err != nil {
		t.Fatal(err)
	}
	if err := b.DeclareTree("/panel"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.CoupleTree("/panel", b.Ref("/panel"), SyncNone); err == nil {
		t.Fatal("full CoupleTree must refuse non-s-compatible trees")
	}

	report, err := a.CoupleTreePartial("/panel", b.Ref("/panel"), SyncPush)
	if err != nil {
		t.Fatal(err)
	}
	wantCoupled := [][2]string{{"", ""}, {"shared", "shared"}, {"pick", "pick"}}
	if !reflect.DeepEqual(report.Coupled, wantCoupled) {
		t.Errorf("Coupled = %v", report.Coupled)
	}
	if !reflect.DeepEqual(report.LocalOnly, []string{"extraA"}) {
		t.Errorf("LocalOnly = %v", report.LocalOnly)
	}
	if !reflect.DeepEqual(report.RemoteOnly, []string{"extraB"}) {
		t.Errorf("RemoteOnly = %v", report.RemoteOnly)
	}

	// The initial push aligned the matched pair's relevant state.
	waitStr(t, b, "/panel/shared", widget.AttrValue, "a-text")

	// Events on the matched pair replicate; the unmatched slider stays
	// private.
	retryDispatch(t, a, &widget.Event{Path: "/panel/shared", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("partial!")}})
	waitStr(t, b, "/panel/shared", widget.AttrValue, "partial!")
	retryDispatch(t, a, &widget.Event{Path: "/panel/extraA", Name: widget.EventMoved,
		Args: []attr.Value{attr.Int(7)}})
	if b.Coupled("/panel/extraB") {
		t.Error("unmatched remote component must stay uncoupled")
	}
	if a.Coupled("/panel/extraA") {
		t.Error("unmatched local component must stay uncoupled")
	}
}

func TestCoupleTreePartialIncompatibleRoots(t *testing.T) {
	a, b := twoClients(t, `canvas c`, `textfield x`)
	if err := a.Declare("/c"); err != nil {
		t.Fatal(err)
	}
	if err := b.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	report, err := a.CoupleTreePartial("/c", b.Ref("/x"), SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Coupled) != 0 {
		t.Errorf("Coupled = %v", report.Coupled)
	}
	if len(report.LocalOnly) != 1 || len(report.RemoteOnly) != 1 {
		t.Errorf("report = %+v", report)
	}
}

func TestCoupleTreePartialErrors(t *testing.T) {
	a, b := twoClients(t, `form f`, `form f`)
	if _, err := a.CoupleTreePartial("/missing", b.Ref("/f"), SyncNone); err == nil {
		t.Error("missing local tree must fail")
	}
	if _, err := a.CoupleTreePartial("/f", b.Ref("/undeclared"), SyncNone); err == nil {
		t.Error("undeclared remote must fail")
	}
}

func TestJSONSemantics(t *testing.T) {
	type model struct {
		Query string   `json:"query"`
		Hits  []string `json:"hits"`
	}
	src := &model{Query: "author=zhao", Hits: []string{"a", "b"}}
	sem, _ := JSONSemantics(src)
	data, err := sem.Store()
	if err != nil {
		t.Fatal(err)
	}
	dst := &model{}
	sem2, _ := JSONSemantics(dst)
	if err := sem2.Load(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Errorf("round trip: %+v vs %+v", src, dst)
	}
	if err := sem2.Load([]byte("{bad")); err == nil {
		t.Error("bad JSON must fail")
	}
	// Unmarshalable values fail at Store.
	bad, _ := JSONSemantics(&struct{ C chan int }{})
	if _, err := bad.Store(); err == nil {
		t.Error("unmarshalable store must fail")
	}
}

func TestKVSemantics(t *testing.T) {
	src := map[string]string{"a": "1", "b": "2"}
	semSrc, _ := KVSemantics(src)
	data, err := semSrc.Store()
	if err != nil {
		t.Fatal(err)
	}
	dst := map[string]string{"stale": "x"}
	semDst, _ := KVSemantics(dst)
	if err := semDst.Load(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Errorf("kv = %v", dst)
	}
	if err := semDst.Load([]byte("nope")); err == nil {
		t.Error("bad payload must fail")
	}
}

func TestJSONSemanticsEndToEnd(t *testing.T) {
	a, b := twoClients(t, `textfield x value="ui"`, `textfield x`)
	if err := a.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	if err := b.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	type model struct{ N int }
	semA, muA := JSONSemantics(&model{N: 41})
	a.RegisterSemantics("/x", semA)
	dst := &model{}
	semB, muB := JSONSemantics(dst)
	b.RegisterSemantics("/x", semB)
	_ = muA
	if err := a.CopyTo("/x", b.Ref("/x"), false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		muB.Lock()
		n := dst.N
		muB.Unlock()
		if n == 41 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("semantic state not transferred: %+v", dst)
}

func waitStr(t *testing.T, c *Client, path, name, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w, err := c.Registry().Lookup(path)
		if err == nil && w.Attr(name).AsString() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("%s.%s never reached %q", path, name, want)
}

func retryDispatch(t *testing.T, c *Client, e *widget.Event) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.DispatchChecked(e); err == nil {
			return
		} else if time.Now().After(deadline) {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMarkOriginCongruence(t *testing.T) {
	srv := server.New(testServerOptions())
	var wg sync.WaitGroup
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	mk := func(mark bool) *Client {
		link := netsim.NewLink(0)
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.HandleConn(wire.NewConn(link.B))
		}()
		reg := widget.NewRegistry()
		widget.MustBuild(reg, "/", `textfield x value=""`)
		c, err := New(link.A, Options{AppType: "m", User: "u", Host: "h",
			Registry: reg, RPCTimeout: 5 * time.Second, MarkOrigin: mark})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		if err := c.Declare("/x"); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := mk(false)
	b := mk(true)
	if err := a.Couple("/x", b.Ref("/x")); err != nil {
		t.Fatal(err)
	}
	retryDispatch(t, a, &widget.Event{Path: "/x", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("from-a")}})
	waitStr(t, b, "/x", widget.AttrValue, "from-a")
	// b (marking enabled) records the origin; a (disabled) records nothing
	// even after receiving state.
	waitStr(t, b, "/x", OriginAttr, string(a.ID()))
	if err := b.CopyTo("/x", a.Ref("/x"), false); err != nil {
		t.Fatal(err)
	}
	waitStr(t, a, "/x", widget.AttrValue, "from-a")
	wa, _ := a.Registry().Lookup("/x")
	if wa.State().Has(OriginAttr) {
		t.Error("origin marked despite MarkOrigin=false")
	}
	// The provenance attribute never leaks into relevant-state captures.
	ts, err := b.FetchState(b.Ref("/x"), true)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Attrs.Has(OriginAttr) {
		t.Error("origin attribute leaked into relevant state")
	}
}
