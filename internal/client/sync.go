package client

import (
	"errors"
	"fmt"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// OriginAttr is the attribute that records which instance caused the last
// remote modification of a widget, when Options.MarkOrigin is set. It is not
// part of any widget class and never travels in relevant-state copies.
const OriginAttr = "_origin"

// handleLocalEvent is the toolkit interception hook: it implements the
// origin side of the multiple-execution algorithm (§3.2).
//
// The event's built-in ("syntactic") feedback is applied immediately so the
// user sees an instant response; the event is then offered to the server,
// which locks the coupling group and broadcasts it. If the lock fails, the
// feedback is undone — "undo syntactic built-in feedback of the event e".
func (c *Client) handleLocalEvent(e *widget.Event) {
	if !c.Coupled(e.Path) {
		// Uncoupled objects behave exactly as in the single-user toolkit.
		if _, err := c.reg.Deliver(e); err != nil {
			c.logf("client %s: local event %s: %v", c.id, e, err)
		}
		return
	}
	undo, err := c.reg.ApplyFeedback(e)
	if err != nil {
		c.logf("client %s: feedback %s: %v", c.id, e, err)
		return
	}
	res, err := c.eventRoundTrip(e)
	if err != nil {
		undo()
		c.logf("client %s: event %s: %v", c.id, e, err)
		return
	}
	if !res.OK {
		undo()
		c.logf("client %s: event %s rejected: %s", c.id, e, res.Reason)
		return
	}
	// Accepted: run the application callbacks locally, exactly as the
	// coupled instances will when they receive the Exec broadcast.
	c.reg.RunCallbacks(e)
}

// eventRoundTrip offers one local event to the server and waits for the
// verdict. It is the root of the event's causal trace: the
// "client.event_send" span covers the full round trip (send → server
// processing → EventResult receipt), and its context rides the Event
// envelope so every downstream hop descends from it.
func (c *Client) eventRoundTrip(e *widget.Event) (wire.EventResult, error) {
	sp := c.tr.StartRoot("client.event_send", string(c.id))
	if sp.Active() {
		sp.SetNote(e.Path + " " + e.Name)
	}
	env, err := c.callCtx(wire.Event{Path: e.Path, Name: e.Name, Args: e.Args}, sp.Context())
	if err != nil {
		sp.EndNote("error: " + err.Error())
		return wire.EventResult{}, err
	}
	res, ok := env.Msg.(wire.EventResult)
	if !ok {
		sp.EndNote("unexpected reply")
		return wire.EventResult{}, fmt.Errorf("client: unexpected reply %s", env.Msg.MsgType())
	}
	if sp.Active() {
		if res.OK {
			sp.EndNote("ok")
		} else {
			sp.EndNote("rejected: " + res.Reason)
			c.slog.Debug("event rejected",
				"path", e.Path, "event", e.Name, "reason", res.Reason,
				"trace", sp.Context().Trace)
		}
	}
	return res, nil
}

// DispatchChecked dispatches a local event like widget.Registry.Dispatch but
// reports rejection: callers that need to distinguish "executed" from
// "group was locked" (benchmarks, tests) use this instead of the hook path.
func (c *Client) DispatchChecked(e *widget.Event) error {
	if !c.Coupled(e.Path) {
		_, err := c.reg.Deliver(e)
		return err
	}
	undo, err := c.reg.ApplyFeedback(e)
	if err != nil {
		return err
	}
	res, err := c.eventRoundTrip(e)
	if err != nil {
		undo()
		return err
	}
	if !res.OK {
		undo()
		return fmt.Errorf("%w: %s", ErrRejected, res.Reason)
	}
	c.reg.RunCallbacks(e)
	return nil
}

// handleExec re-executes a remote event on the local member of the coupling
// group and acknowledges it immediately — the unbatched path.
func (c *Client) handleExec(tc obs.TraceContext, m wire.Exec) {
	c.sendExecAck(c.applyExec(tc, m))
}

// sendExecAck acknowledges a single applied Exec, carrying the apply-span
// context so the server's ack point descends from the re-execution.
func (c *Client) sendExecAck(e wire.BatchAckEntry) {
	if err := c.send(wire.Envelope{Trace: e.Trace, Msg: wire.ExecAck{EventID: e.EventID}}); err != nil {
		c.logf("client %s: exec ack: %v", c.id, err)
	}
}

// applyExec re-executes a remote event on the local member of the coupling
// group: "this event packed with some parameters is sent to the server.
// Then the server broadcasts this message to the application instances where
// it is unpacked and re-executed" (§3.2). It returns the acknowledgement the
// caller owes the server; the caller sends it singly or folds it into a
// coalesced BatchAck, but must send it either way so the group unlocks.
func (c *Client) applyExec(tc obs.TraceContext, m wire.Exec) wire.BatchAckEntry {
	t0 := c.mExec.Start()
	// The re-execution span descends from the server's "server.exec_send"
	// point; its context rides the ExecAck so the server's ack point in turn
	// descends from the re-execution.
	sp := c.tr.StartSpan(tc, "client.exec_apply", string(c.id))
	if sp.Active() {
		sp.SetNote(m.TargetPath + " " + m.Name)
	}
	e := &widget.Event{
		Path:   m.TargetPath,
		Name:   m.Name,
		Args:   m.Args,
		Remote: true,
	}
	// The re-execution (which runs application callbacks) is guarded: a
	// panicking handler must not take down the dispatch loop, and the
	// acknowledgement must go out either way so the group unlocks.
	c.guard("remote event "+m.Name, tc.Trace, func() {
		if _, err := c.reg.Deliver(e); err != nil {
			// The object may be mid-destruction or the classes may disagree on
			// arguments; the event is acknowledged regardless so the group
			// unlocks.
			if !errors.Is(err, widget.ErrNotFound) {
				c.logf("client %s: exec %s: %v", c.id, e, err)
				c.slog.Warn("exec failed",
					"path", m.TargetPath, "event", m.Name, "error", err.Error(),
					"trace", tc.Trace)
			}
			sp.SetNote("error")
		} else {
			c.markOrigin(e.Path, m.Origin.Instance)
			if c.opts.OnRemoteEvent != nil {
				c.opts.OnRemoteEvent(e)
			}
		}
	})
	sp.End()
	c.mExec.ObserveSince(t0)
	return wire.BatchAckEntry{EventID: m.EventID, Trace: sp.Context()}
}

// markOrigin stamps the provenance attribute when congruence marking is on.
func (c *Client) markOrigin(path string, origin couple.InstanceID) {
	if !c.opts.MarkOrigin {
		return
	}
	if w, err := c.reg.Lookup(path); err == nil {
		w.SetAttr(OriginAttr, attr.String(string(origin)))
	}
}
