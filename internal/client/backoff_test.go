package client

import (
	"math/rand/v2"
	"testing"
	"time"
)

// A mass restart disconnects every client at once, and with the old
// delay-plus-sliver jitter their retries stayed phase-locked: the random
// part was at most half the deterministic part, so wave after wave hit the
// server inside a narrow band. Full jitter draws the whole window, so 50
// clients retrying at the same attempt number must spread across it.
func TestBackoffDispersion(t *testing.T) {
	const clients = 50
	r := ReconnectOptions{BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second}

	for _, attempt := range []int{1, 3, 6, 10} {
		ceil := r.maxDelay()
		if d := r.baseDelay() << (attempt - 1); d < ceil {
			ceil = d
		}
		delays := make([]time.Duration, clients)
		lo, hi := time.Duration(1<<62), time.Duration(0)
		distinct := make(map[time.Duration]bool)
		for i := range delays {
			// Each client gets its own PRNG, as each real client process does.
			rng := rand.New(rand.NewPCG(uint64(attempt)*1000+uint64(i)+1, uint64(i)+7))
			d := r.backoffDelay(rng, attempt)
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, ceil)
			}
			delays[i] = d
			distinct[d] = true
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		// Dispersion: 50 independent draws from [0, ceil] are essentially
		// never confined to a narrow band. Require the spread to cover at
		// least half the window and nearly all draws to differ — generous
		// bounds a phase-locked scheme cannot meet (its jitter band is at
		// most a third of the total delay, and a shared stream collapses
		// every draw to one value).
		if hi-lo < ceil/2 {
			t.Fatalf("attempt %d: retry spread %v over a %v window — phase-locked", attempt, hi-lo, ceil)
		}
		if len(distinct) < clients*8/10 {
			t.Fatalf("attempt %d: only %d distinct delays across %d clients", attempt, len(distinct), clients)
		}
	}
}

// The backoff window must grow exponentially from BaseDelay and saturate at
// MaxDelay, and unseeded clients must not share a jitter stream.
func TestBackoffWindowAndSeeding(t *testing.T) {
	r := ReconnectOptions{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1:   10 * time.Millisecond,
		2:   20 * time.Millisecond,
		3:   40 * time.Millisecond,
		4:   80 * time.Millisecond,
		5:   80 * time.Millisecond, // capped
		100: 80 * time.Millisecond, // shift guard: no overflow at silly attempts
	} {
		hi := time.Duration(0)
		rng := rand.New(rand.NewPCG(1, 2))
		for i := 0; i < 2000; i++ {
			if d := r.backoffDelay(rng, attempt); d > hi {
				hi = d
			}
		}
		if hi > want {
			t.Fatalf("attempt %d: observed delay %v beyond window %v", attempt, hi, want)
		}
		if hi < want/2 {
			t.Fatalf("attempt %d: 2000 draws peaked at %v, window %v not exercised", attempt, hi, want)
		}
	}

	// Unseeded: two clients must draw from different streams.
	unseeded := ReconnectOptions{}
	a1, b1 := unseeded.jitterSeeds()
	a2, b2 := unseeded.jitterSeeds()
	if a1 == a2 && b1 == b2 {
		t.Fatal("unseeded clients share a jitter stream")
	}
	// Seeded: deterministic.
	seeded := ReconnectOptions{Seed: 42}
	a1, b1 = seeded.jitterSeeds()
	a2, b2 = seeded.jitterSeeds()
	if a1 != a2 || b1 != b2 {
		t.Fatal("seeded jitter is not reproducible")
	}
}
