package client

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// testServerOptions is the default option set for every test server in this
// package. With COSOFT_SHARDS=<n> set, servers run that many state shards so
// the whole client suite doubles as a sharding equivalence check (CI runs a
// COSOFT_SHARDS=4 leg).
func testServerOptions() server.Options {
	var opts server.Options
	if n, _ := strconv.Atoi(os.Getenv("COSOFT_SHARDS")); n > 0 {
		opts.Shards = n
	}
	return opts
}

// dial spins a private server and connects one client to it.
func dial(t *testing.T, spec string) (*Client, *server.Server) {
	t.Helper()
	srv := server.New(testServerOptions())
	var wg sync.WaitGroup
	t.Cleanup(func() {
		srv.Close()
		wg.Wait()
	})
	link := netsim.NewLink(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.HandleConn(wire.NewConn(link.B))
	}()
	reg := widget.NewRegistry()
	if spec != "" {
		widget.MustBuild(reg, "/", spec)
	}
	c, err := New(link.A, Options{
		AppType: "unit", User: "u", Host: "h", Registry: reg,
		RPCTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, srv
}

func TestNewRequiresRegistry(t *testing.T) {
	link := netsim.NewLink(0)
	defer link.Close()
	if _, err := New(link.A, Options{}); err == nil {
		t.Fatal("nil registry must fail")
	}
}

func TestNewHandshakeFailure(t *testing.T) {
	link := netsim.NewLink(0)
	defer link.Close()
	// The "server" side refuses with Err.
	go func() {
		conn := wire.NewConn(link.B)
		env, err := conn.Read()
		if err != nil {
			return
		}
		_ = conn.Write(wire.Envelope{RefSeq: env.Seq, Msg: wire.Err{Text: "full"}})
	}()
	_, err := New(link.A, Options{Registry: widget.NewRegistry()})
	if err == nil || !strings.Contains(err.Error(), "refused") {
		t.Fatalf("err = %v", err)
	}
}

func TestNewHandshakeUnexpectedReply(t *testing.T) {
	link := netsim.NewLink(0)
	defer link.Close()
	go func() {
		conn := wire.NewConn(link.B)
		env, err := conn.Read()
		if err != nil {
			return
		}
		_ = conn.Write(wire.Envelope{RefSeq: env.Seq, Msg: wire.OK{}})
	}()
	if _, err := New(link.A, Options{Registry: widget.NewRegistry()}); err == nil {
		t.Fatal("unexpected reply must fail")
	}
}

func TestIDAndRef(t *testing.T) {
	c, _ := dial(t, "")
	if c.ID() == "" {
		t.Fatal("empty id")
	}
	ref := c.Ref("/x")
	if ref.Instance != c.ID() || ref.Path != "/x" {
		t.Errorf("Ref = %v", ref)
	}
	if c.Registry() == nil {
		t.Error("Registry nil")
	}
}

func TestCallsAfterCloseFail(t *testing.T) {
	c, _ := dial(t, `textfield x`)
	c.Close()
	c.Close() // idempotent
	if err := c.Declare("/x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Declare after close: %v", err)
	}
	if err := c.SendCommand("x", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("SendCommand after close: %v", err)
	}
}

func TestDeclareUnknownWidget(t *testing.T) {
	c, _ := dial(t, "")
	if err := c.Declare("/missing"); err == nil {
		t.Fatal("declare of unknown widget must fail")
	}
}

func TestDispatchCheckedUncoupled(t *testing.T) {
	c, _ := dial(t, `textfield x`)
	if err := c.DispatchChecked(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}); err != nil {
		t.Fatal(err)
	}
	w, _ := c.Registry().Lookup("/x")
	if w.Attr(widget.AttrValue).AsString() != "v" {
		t.Error("uncoupled event must run locally")
	}
	// Bad events surface their errors.
	if err := c.DispatchChecked(&widget.Event{Path: "/x", Name: "bogus"}); err == nil {
		t.Error("bad event must fail")
	}
}

func TestUncoupledEventNoServerTraffic(t *testing.T) {
	c, srv := dial(t, `textfield x`)
	if err := c.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}); err != nil {
		t.Fatal(err)
	}
	// Uncoupled events never reach the server — the fully replicated
	// architecture's "many operations can be performed locally".
	if stats := srv.Stats(); stats.Events != 0 {
		t.Errorf("server saw %d events", stats.Events)
	}
}

func TestCoupleSelfRejected(t *testing.T) {
	c, _ := dial(t, `textfield x`)
	if err := c.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Couple("/x", c.Ref("/x")); err == nil {
		t.Fatal("self-coupling must fail")
	}
}

func TestCoupleWithinSameInstance(t *testing.T) {
	// "including the case of two objects coupled within the same
	// application instance" (§3.3).
	c, _ := dial(t, `form f
  textfield a
  textfield b`)
	if err := c.DeclareTree("/f"); err != nil {
		t.Fatal(err)
	}
	if err := c.Couple("/f/a", c.Ref("/f/b")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !c.Coupled("/f/a") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := c.DispatchChecked(&widget.Event{
		Path: "/f/a", Name: widget.EventChanged, Args: []attr.Value{attr.String("same")},
	}); err != nil {
		t.Fatal(err)
	}
	wb, _ := c.Registry().Lookup("/f/b")
	for wb.Attr(widget.AttrValue).AsString() != "same" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := wb.Attr(widget.AttrValue).AsString(); got != "same" {
		t.Errorf("intra-instance coupling: b = %q", got)
	}
}

func TestCoupleTreeIncompatible(t *testing.T) {
	c, _ := dial(t, `form f
  textfield a`)
	c2, _ := dial(t, "")
	_ = c2
	if err := c.DeclareTree("/f"); err != nil {
		t.Fatal(err)
	}
	// Couple against an object with a different structure within the same
	// instance (simplest incompatible target: a bare canvas).
	widget.MustBuild(c.Registry(), "/", `canvas other`)
	if err := c.Declare("/other"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CoupleTree("/f", c.Ref("/other"), SyncNone); err == nil {
		t.Fatal("structurally incompatible trees must fail")
	}
	if _, err := c.CoupleTree("/missing", c.Ref("/other"), SyncNone); err == nil {
		t.Fatal("missing local tree must fail")
	}
	if _, err := c.CoupleTree("/f", c.Ref("/undeclared"), SyncNone); err == nil {
		t.Fatal("undeclared remote must fail")
	}
}

func TestFetchStateOwnObject(t *testing.T) {
	c, _ := dial(t, `textfield x value="mine"`)
	if err := c.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	ts, err := c.FetchState(c.Ref("/x"), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Attrs.Get(widget.AttrValue).AsString(); got != "mine" {
		t.Errorf("fetched = %q", got)
	}
	if _, err := c.FetchState(c.Ref("/nope"), true); err == nil {
		t.Error("fetch of undeclared must fail")
	}
}

func TestUndoWithoutHistoryFails(t *testing.T) {
	c, _ := dial(t, `textfield x`)
	if err := c.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	if err := c.Undo("/x"); err == nil {
		t.Error("undo with empty history must fail")
	}
	if err := c.Redo("/x"); err == nil {
		t.Error("redo with empty history must fail")
	}
	if err := c.Undo("/undeclared"); err == nil {
		t.Error("undo of undeclared object must fail")
	}
}

func TestSemanticsStoreError(t *testing.T) {
	c, _ := dial(t, `textfield x`)
	if err := c.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	c.RegisterSemantics("/x", Semantics{
		Store: func() ([]byte, error) { return nil, errors.New("boom") },
	})
	// A failing store hook degrades to a UI-only copy, not a failure.
	ts, err := c.FetchState(c.Ref("/x"), true)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Attrs.Has("_semantic") {
		t.Error("failed store must not attach a payload")
	}
}

func TestRPCTimeout(t *testing.T) {
	// A peer that registers us but then never answers makes calls time out.
	link := netsim.NewLink(0)
	defer link.Close()
	go func() {
		conn := wire.NewConn(link.B)
		env, err := conn.Read()
		if err != nil {
			return
		}
		_ = conn.Write(wire.Envelope{RefSeq: env.Seq, Msg: wire.Registered{ID: "i1"}})
		for {
			if _, err := conn.Read(); err != nil {
				return
			}
		}
	}()
	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", `textfield x`)
	c, err := New(link.A, Options{Registry: reg, RPCTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Declare("/x"); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v", err)
	}
}

// TestCloseQuietShutdown deregisters through Close and asserts the server's
// reply never surfaces as an "unexpected server message": the Deregister
// used to go out with Seq 0, so the OK's RefSeq 0 made it look like
// server-initiated traffic to the dispatch loop.
func TestCloseQuietShutdown(t *testing.T) {
	srv := server.New(testServerOptions())
	var wg sync.WaitGroup
	defer func() {
		srv.Close()
		wg.Wait()
	}()
	link := netsim.NewLink(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.HandleConn(wire.NewConn(link.B))
	}()
	var mu sync.Mutex
	var logs []string
	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", `textfield x`)
	c, err := New(link.A, Options{
		AppType: "unit", User: "u", Host: "h", Registry: reg,
		RPCTimeout: 5 * time.Second,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Declare("/x"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Close waits for the Deregister acknowledgement, so the instance is
	// already gone from the registration records.
	if n := srv.Stats().Instances; n != 0 {
		t.Errorf("instances after close = %d, want 0", n)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range logs {
		if strings.Contains(line, "unexpected server message") {
			t.Errorf("shutdown logged: %s", line)
		}
	}
}
