package client

import (
	"fmt"

	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// SyncDirection selects the initial state synchronization performed when
// coupling: "After two complex UI objects are initially synchronized by
// copying the UI state, synchronization among coupled UI objects is
// accomplished by re-executing actions" (§3.2).
type SyncDirection int

// Initial synchronization choices for CoupleTree.
const (
	// SyncNone couples without initial state transfer.
	SyncNone SyncDirection = iota
	// SyncPull copies the remote state onto the local objects first.
	SyncPull
	// SyncPush copies the local state onto the remote objects first.
	SyncPush
)

// Couple creates a couple link from a local object to a remote object.
func (c *Client) Couple(localPath string, to couple.ObjectRef) error {
	return c.callOK(wire.Couple{From: c.Ref(localPath), To: to})
}

// Decouple removes the link between a local object and a remote object. The
// objects keep existing and keep their current states — decoupled objects
// "will not cease to exist when being decoupled so that coupling can be used
// to transfer information between environments" (§2.2).
func (c *Client) Decouple(localPath string, to couple.ObjectRef) error {
	return c.callOK(wire.Decouple{From: c.Ref(localPath), To: to})
}

// RemoteCouple creates a couple link between two objects of other instances
// (§3.3): the basis of the teacher's interactive coupling control, which is
// "initiated from outside the respective applications" (§4).
func (c *Client) RemoteCouple(a, b couple.ObjectRef) error {
	return c.callOK(wire.Couple{From: a, To: b})
}

// RemoteDecouple removes a link between two objects of other instances.
func (c *Client) RemoteDecouple(a, b couple.ObjectRef) error {
	return c.callOK(wire.Decouple{From: a, To: b})
}

// CoupleTree couples a local complex object with a remote complex object:
// it fetches the remote structure, computes the s-compatibility mapping α
// (§3.3), optionally performs the initial state synchronization, and then
// couples every mapped component pair. It returns the number of links
// created.
func (c *Client) CoupleTree(localPath string, to couple.ObjectRef, sync SyncDirection) (int, error) {
	local, err := c.reg.CaptureTree(localPath, true)
	if err != nil {
		return 0, err
	}
	remote, err := c.FetchState(to, true)
	if err != nil {
		return 0, fmt.Errorf("client: fetching remote structure: %w", err)
	}
	pairs, ok, _ := c.checker.SCompatible(local, remote, compat.MatchOptions{Heuristic: true})
	if !ok {
		// The heuristic can miss exotic mappings; retry exhaustively with a
		// budget before giving up.
		pairs, ok, _ = c.checker.SCompatible(local, remote, compat.MatchOptions{MaxVisits: 100000})
	}
	if !ok {
		return 0, fmt.Errorf("client: %s and %s are not structurally compatible",
			localPath, to)
	}
	// Initial synchronization runs per mapped pair with shallow copies, so
	// the destination keeps its own component names and structure — only
	// the relevant attributes of corresponding components are aligned.
	for _, p := range pairs {
		localSub := joinRel(localPath, p.A)
		remoteSub := couple.ObjectRef{Instance: to.Instance, Path: joinRel(to.Path, p.B)}
		switch sync {
		case SyncPull:
			if err := c.callOK(wire.CopyFrom{From: remoteSub, ToPath: localSub, Shallow: true}); err != nil {
				return 0, fmt.Errorf("client: initial pull of %s: %w", remoteSub, err)
			}
		case SyncPush:
			if err := c.copyToShallow(localSub, remoteSub); err != nil {
				return 0, fmt.Errorf("client: initial push to %s: %w", remoteSub, err)
			}
		}
	}
	created := 0
	for _, p := range pairs {
		from := c.Ref(joinRel(localPath, p.A))
		target := couple.ObjectRef{Instance: to.Instance, Path: joinRel(to.Path, p.B)}
		if err := c.callOK(wire.Couple{From: from, To: target}); err != nil {
			return created, fmt.Errorf("client: coupling %s to %s: %w", from, target, err)
		}
		created++
	}
	return created, nil
}

// DecoupleTree removes the links between every locally mirrored pair of the
// two complex objects' components.
func (c *Client) DecoupleTree(localPath string, to couple.ObjectRef) (int, error) {
	removed := 0
	var firstErr error
	err := c.reg.Walk(localPath, func(w *widget.Widget) error {
		for _, peer := range c.links.CO(c.Ref(w.Path())) {
			if peer.Instance == to.Instance && isWithin(peer.Path, to.Path) {
				if err := c.Decouple(w.Path(), peer); err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				removed++
			}
		}
		return nil
	})
	if err != nil {
		return removed, err
	}
	return removed, firstErr
}

// joinRel appends a mapping-relative path ("" is the root itself).
func joinRel(base, rel string) string {
	if rel == "" {
		return base
	}
	if base == "/" {
		return "/" + rel
	}
	return base + "/" + rel
}

// isWithin reports whether path lies in the subtree rooted at root.
func isWithin(path, root string) bool {
	if path == root {
		return true
	}
	if root == "/" {
		return true
	}
	return len(path) > len(root) && path[:len(root)] == root && path[len(root)] == '/'
}
