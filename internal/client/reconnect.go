package client

import (
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"sync/atomic"
	"time"

	"cosoft/internal/wire"
)

// ReconnectOptions configures automatic reconnection (Options.Reconnect).
type ReconnectOptions struct {
	// Dial establishes a replacement connection to the server. Required.
	Dial func() (net.Conn, error)
	// MaxAttempts bounds consecutive failed attempts before the client
	// gives up for good (0 = 8). A refused resume (unknown session token)
	// is permanent and stops immediately.
	MaxAttempts int
	// BaseDelay scales the backoff (0 = 50ms). Retry k sleeps a uniform
	// random span in [0, min(MaxDelay, BaseDelay<<(k-1))] — full jitter, so
	// a mass reconnect after a server restart spreads its retries across
	// the whole window instead of thundering in phase. MaxDelay caps the
	// window (0 = 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the jitter PRNG so tests replay deterministically. Zero
	// seeds from entropy: clients must NOT share a jitter stream, or a
	// mass restart re-synchronizes every retry wave.
	Seed uint64
	// OnResync, if set, is called after each successful reconnect once
	// re-declaration, re-coupling and the post-resume state pull have
	// finished, with the first error encountered (nil on a clean resync).
	OnResync func(err error)
	// SkipStatePull suppresses the per-object CopyFrom from a surviving
	// peer after resume. Set it when the server replays the group's durable
	// event-log tail to late joiners (server Options.ReplayTail) — the
	// catch-up then arrives as ordinary Execs and the blocking pull from a
	// live peer is redundant.
	SkipStatePull bool
}

// permanentError marks reconnect failures that retrying cannot fix.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

func (r *ReconnectOptions) maxAttempts() int {
	if r.MaxAttempts > 0 {
		return r.MaxAttempts
	}
	return 8
}

func (r *ReconnectOptions) baseDelay() time.Duration {
	if r.BaseDelay > 0 {
		return r.BaseDelay
	}
	return 50 * time.Millisecond
}

func (r *ReconnectOptions) maxDelay() time.Duration {
	if r.MaxDelay > 0 {
		return r.MaxDelay
	}
	return 2 * time.Second
}

// backoffDelay returns the sleep before retry attempt (1-based): a uniform
// draw from [0, min(maxDelay, baseDelay·2^(attempt-1))]. Full jitter — the
// entire window is random, not a fixed delay plus a sliver of jitter — so
// concurrent clients that started retrying at the same instant (a server
// restart disconnects everyone at once) decorrelate immediately instead of
// arriving in synchronized waves.
func (r *ReconnectOptions) backoffDelay(rng *rand.Rand, attempt int) time.Duration {
	ceil := r.maxDelay()
	// Guard the shift: past ~62 doublings the window is the cap regardless.
	if shift := attempt - 1; shift < 62 {
		if d := r.baseDelay() << shift; d < ceil {
			ceil = d
		}
	}
	return time.Duration(rng.Int64N(int64(ceil) + 1))
}

// jitterSeeds returns the PRNG seed pair for the backoff jitter. The
// configured seed keeps tests deterministic; by default every client draws
// fresh entropy, because reconnecting clients sharing one PRNG stream —
// which is what a zero-value PCG seed amounts to — retry in lockstep.
func (r *ReconnectOptions) jitterSeeds() (uint64, uint64) {
	if r.Seed != 0 {
		return r.Seed, r.Seed ^ 0x9e3779b97f4a7c15
	}
	return rand.Uint64(), rand.Uint64()
}

// redial dials and resumes the session with full-jitter exponential
// backoff, returning the fresh connection plus any envelopes the server
// flushed around the handshake reply. It runs on the supervise goroutine.
func (c *Client) redial() (*wire.Conn, []wire.Envelope, error) {
	r := c.opts.Reconnect
	rng := rand.New(rand.NewPCG(r.jitterSeeds()))
	var lastErr error
	for attempt := 0; attempt < r.maxAttempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(r.backoffDelay(rng, attempt)):
			case <-c.done:
				return nil, nil, ErrClosed
			}
		}
		raw, err := r.Dial()
		if err != nil {
			lastErr = err
			continue
		}
		conn, pre, err := c.resume(raw)
		if err == nil {
			return conn, pre, nil
		}
		if pe, ok := err.(*permanentError); ok {
			return nil, nil, pe
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("client: reconnect gave up after %d attempts: %w",
		r.maxAttempts(), lastErr)
}

// resume performs the Resume handshake on a fresh connection, reclaiming
// the client's instance ID. The reply wait cannot rely on connection
// deadlines (in-process transports lack them), so a watchdog closes the
// connection to abandon a stalled handshake.
//
// The resumed instance is already a member of its coupling groups, so the
// server can start flushing group traffic the moment it admits the session:
// the Registered reply may arrive packed in a Batch with notifications or
// replayed events, or even after them when a shard loop's broadcast wins
// the race with the admitting state loop. Every envelope that is not the
// reply is stashed and returned for the read loop to route once the resume
// is accepted — abandoning the connection here would orphan a session whose
// single-use token the admission already consumed, permanently stranding
// the client.
func (c *Client) resume(raw net.Conn) (*wire.Conn, []wire.Envelope, error) {
	conn := wire.NewConn(raw)
	if c.tr != nil {
		conn.EnableTrace()
	}
	if c.opts.Batching {
		conn.EnableBatch()
	}
	c.mu.Lock()
	tok := c.token
	c.mu.Unlock()
	if err := conn.Write(wire.Envelope{Seq: 1, Msg: wire.Resume{Token: tok}}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	var timedOut, closing atomic.Bool
	timer := time.AfterFunc(c.opts.RPCTimeout, func() {
		timedOut.Store(true)
		conn.Close()
	})
	defer timer.Stop()
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-c.done:
			closing.Store(true)
			conn.Close()
		case <-watchDone:
		}
	}()
	var pre []wire.Envelope
	for {
		env, err := conn.Read()
		if err != nil {
			conn.Close()
			if closing.Load() {
				return nil, nil, ErrClosed
			}
			if timedOut.Load() {
				return nil, nil, fmt.Errorf("%w: resume handshake", ErrTimeout)
			}
			return nil, nil, err
		}
		envs := []wire.Envelope{env}
		if b, ok := env.Msg.(wire.Batch); ok {
			envs = b.Envelopes
		}
		for i, e := range envs {
			switch m := e.Msg.(type) {
			case wire.Registered:
				if m.ID != c.id {
					conn.Close()
					return nil, nil, &permanentError{fmt.Sprintf(
						"client: resume returned foreign ID %s (have %s)", m.ID, c.id)}
				}
				return conn, append(pre, envs[i+1:]...), nil
			case wire.Err:
				conn.Close()
				return nil, nil, &permanentError{"client: resume refused: " + m.Text}
			default:
				pre = append(pre, e)
			}
		}
	}
}

// resync restores the server's view of this instance after a resume: the
// disconnect cost the server every declaration and couple link of the old
// incarnation, while the local mirror kept them. Declarations are replayed,
// links touching this instance are re-created (idempotent at the server's
// mirrors), and every re-coupled object pulls a peer's current state via the
// CopyFrom path, so local state converges with whatever the group did while
// this client was gone.
func (c *Client) resync() {
	defer c.wg.Done()
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}

	// The resume consumed the session token (tokens are single-use at the
	// server), so mint a replacement first: a subsequent disconnect must
	// still be resumable.
	if tok, err := c.sessionToken(); err != nil {
		fail(fmt.Errorf("re-mint session token: %w", err))
	} else {
		c.mu.Lock()
		c.token = tok
		c.mu.Unlock()
	}

	c.mu.Lock()
	paths := make([]string, 0, len(c.declared))
	classes := make(map[string]string, len(c.declared))
	for p, class := range c.declared {
		paths = append(paths, p)
		classes[p] = class
	}
	c.mu.Unlock()
	sort.Strings(paths)
	for _, p := range paths {
		if err := c.callOK(wire.Declare{Path: p, Class: classes[p]}); err != nil {
			fail(fmt.Errorf("re-declare %s: %w", p, err))
		}
	}
	for _, l := range c.links.Links() {
		if l.From.Instance != c.id && l.To.Instance != c.id {
			continue
		}
		if err := c.callOK(wire.Couple{From: l.From, To: l.To}); err != nil {
			fail(fmt.Errorf("re-couple %s -> %s: %w", l.From, l.To, err))
		}
	}
	// With SkipStatePull the re-coupling above already triggered the
	// server's log-tail replay: recent group events arrive as ordinary
	// Execs, so no live peer needs to serve a blocking state capture.
	if !c.opts.Reconnect.SkipStatePull {
		for _, p := range paths {
			for _, peer := range c.links.CO(c.Ref(p)) {
				if peer.Instance == c.id {
					continue
				}
				if err := c.callOK(wire.CopyFrom{From: peer, ToPath: p}); err != nil {
					fail(fmt.Errorf("state pull for %s: %w", p, err))
				}
				break
			}
		}
	}

	if firstErr != nil {
		c.logf("client %s: resync: %v", c.id, firstErr)
		c.slog.Warn("resync incomplete", "error", firstErr.Error())
	} else {
		c.slog.Info("resynchronized after reconnect", "objects", len(paths))
	}
	if h := c.opts.Reconnect.OnResync; h != nil {
		c.guard("resync callback", 0, func() { h(firstErr) })
	}
}
