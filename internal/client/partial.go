package client

import (
	"fmt"

	"cosoft/internal/couple"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// PartialReport describes the outcome of a best-effort coupling of two
// complex objects that are not fully s-compatible.
type PartialReport struct {
	// Coupled lists the pairs that were linked (local path, remote path).
	Coupled [][2]string
	// LocalOnly lists local component paths with no remote counterpart.
	LocalOnly []string
	// RemoteOnly lists remote component paths with no local counterpart.
	RemoteOnly []string
}

// CoupleTreePartial couples as much of two complex objects as compatibility
// allows: components are paired by name-and-class first, then by class
// within each container level; unmatched substructures on either side are
// reported and left uncoupled. This refines the initialization of nested
// objects the paper defers to future work (§5: "initialization procedures
// for making complex, hierarchically nested UI objects compatible will have
// to be refined") — where CoupleTree demands full s-compatibility,
// CoupleTreePartial degrades gracefully.
func (c *Client) CoupleTreePartial(localPath string, to couple.ObjectRef, sync SyncDirection) (PartialReport, error) {
	local, err := c.reg.CaptureTree(localPath, true)
	if err != nil {
		return PartialReport{}, err
	}
	remote, err := c.FetchState(to, true)
	if err != nil {
		return PartialReport{}, fmt.Errorf("client: fetching remote structure: %w", err)
	}
	var report PartialReport
	c.matchPartial(local, remote, "", "", &report)

	// Apply the initial synchronization and the links on the matched pairs
	// only.
	for _, pair := range report.Coupled {
		localSub := joinRel(localPath, pair[0])
		remoteSub := couple.ObjectRef{Instance: to.Instance, Path: joinRel(to.Path, pair[1])}
		switch sync {
		case SyncPull:
			if err := c.callOK(wire.CopyFrom{From: remoteSub, ToPath: localSub, Shallow: true}); err != nil {
				return report, fmt.Errorf("client: initial pull of %s: %w", remoteSub, err)
			}
		case SyncPush:
			if err := c.copyToShallow(localSub, remoteSub); err != nil {
				return report, fmt.Errorf("client: initial push to %s: %w", remoteSub, err)
			}
		}
		if err := c.callOK(wire.Couple{From: c.Ref(localSub), To: remoteSub}); err != nil {
			return report, fmt.Errorf("client: coupling %s to %s: %w", localSub, remoteSub, err)
		}
	}
	return report, nil
}

// matchPartial pairs as many components as possible. Roots are paired when
// directly compatible; children pair by identical name + compatible class,
// then remaining children pair by class in order; leftovers are reported.
func (c *Client) matchPartial(a, b widget.TreeState, pathA, pathB string, report *PartialReport) {
	if _, ok := c.checker.Direct(a.Class, b.Class); !ok {
		report.LocalOnly = append(report.LocalOnly, subtreePaths(a, pathA)...)
		report.RemoteOnly = append(report.RemoteOnly, subtreePaths(b, pathB)...)
		return
	}
	report.Coupled = append(report.Coupled, [2]string{pathA, pathB})

	usedB := make([]bool, len(b.Children))
	pairedA := make([]int, len(a.Children))
	for i := range pairedA {
		pairedA[i] = -1
	}
	// Pass 1: identical names with compatible classes.
	byName := make(map[string]int, len(b.Children))
	for j, bc := range b.Children {
		byName[bc.Name] = j
	}
	for i, ac := range a.Children {
		if j, ok := byName[ac.Name]; ok && !usedB[j] {
			if _, compatible := c.checker.Direct(ac.Class, b.Children[j].Class); compatible {
				pairedA[i] = j
				usedB[j] = true
			}
		}
	}
	// Pass 2: remaining children by class, in order.
	for i, ac := range a.Children {
		if pairedA[i] >= 0 {
			continue
		}
		for j, bc := range b.Children {
			if usedB[j] {
				continue
			}
			if _, compatible := c.checker.Direct(ac.Class, bc.Class); compatible {
				pairedA[i] = j
				usedB[j] = true
				break
			}
		}
	}
	// Recurse on pairs; report leftovers.
	for i, ac := range a.Children {
		ap := joinChild(pathA, ac.Name)
		if j := pairedA[i]; j >= 0 {
			c.matchPartial(ac, b.Children[j], ap, joinChild(pathB, b.Children[j].Name), report)
		} else {
			report.LocalOnly = append(report.LocalOnly, subtreePaths(ac, ap)...)
		}
	}
	for j, bc := range b.Children {
		if !usedB[j] {
			report.RemoteOnly = append(report.RemoteOnly, subtreePaths(bc, joinChild(pathB, bc.Name))...)
		}
	}
}

// subtreePaths lists every relative path in the subtree.
func subtreePaths(ts widget.TreeState, path string) []string {
	out := []string{path}
	for _, ch := range ts.Children {
		out = append(out, subtreePaths(ch, joinChild(path, ch.Name))...)
	}
	return out
}

func joinChild(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}
