package client

import (
	"encoding/json"
	"fmt"
	"sync"
)

// JSONSemantics builds store/load hooks that marshal an application data
// structure as JSON — one of the "standard extensions for typical
// applications" the paper suggests for synchronizing semantic state (§5).
// The value must be a pointer; Load unmarshals into it in place.
//
// Access to the value is serialized through the returned hooks; the
// application must route its own reads/writes through mu (returned for that
// purpose) or register per-object values it only touches from callbacks.
func JSONSemantics(v any) (Semantics, *sync.Mutex) {
	mu := &sync.Mutex{}
	return Semantics{
		Store: func() ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			data, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("client: marshal semantic state: %w", err)
			}
			return data, nil
		},
		Load: func(data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			if err := json.Unmarshal(data, v); err != nil {
				return fmt.Errorf("client: unmarshal semantic state: %w", err)
			}
			return nil
		},
	}, mu
}

// KVSemantics builds hooks around a string map — the "attach all relevant
// application data to UI objects" convention the paper recommends so
// programmers can avoid hand-written pack functions (§3.1).
func KVSemantics(kv map[string]string) (Semantics, *sync.Mutex) {
	mu := &sync.Mutex{}
	return Semantics{
		Store: func() ([]byte, error) {
			mu.Lock()
			defer mu.Unlock()
			return json.Marshal(kv)
		},
		Load: func(data []byte) error {
			mu.Lock()
			defer mu.Unlock()
			incoming := make(map[string]string)
			if err := json.Unmarshal(data, &incoming); err != nil {
				return fmt.Errorf("client: unmarshal kv state: %w", err)
			}
			for k := range kv {
				delete(kv, k)
			}
			for k, v := range incoming {
				kv[k] = v
			}
			return nil
		},
	}, mu
}
