// Package client implements the application-instance side of the coupling
// model: the extension that hooks a widget.Registry's event dispatch into
// the central server, re-executes remote events, answers state requests, and
// exposes the paper's primitives (Couple/Decouple, CopyTo/CopyFrom,
// RemoteCopy, CoSendCommand, undo/redo).
//
// Making an application cooperative requires no more than creating a Client
// over its widget registry and declaring the couplable objects — "no more
// programming than inserting a statement to register the application with
// the server is needed" (§4).
package client

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// Errors reported by client operations.
var (
	ErrClosed       = errors.New("client: closed")
	ErrTimeout      = errors.New("client: request timed out")
	ErrRejected     = errors.New("client: event rejected (group locked)")
	ErrDisconnected = errors.New("client: connection lost")
)

// CommandHandler processes an application-defined command (§3.4): the
// receiving side of CoSendCommand.
type CommandHandler func(from couple.InstanceID, payload []byte)

// Semantics holds the store/load functions of application data attached to
// a UI object (§3.1 "Synchronizing semantic state").
type Semantics struct {
	// Store packs the semantic data of the object for transfer.
	Store func() ([]byte, error)
	// Load unpacks transferred semantic data into the application.
	Load func([]byte) error
}

// Options configures a Client.
type Options struct {
	// AppType names the application; instances of different AppTypes are
	// heterogeneous.
	AppType string
	// Host and User describe the participant for the registration record.
	Host string
	User string
	// Registry is the application's widget tree. Required.
	Registry *widget.Registry
	// Correspondences used for client-side s-compatibility matching. Nil
	// means same-class only. (The server holds its own copy for validation.)
	Correspondences *compat.Correspondences
	// RPCTimeout bounds each request/response round trip (0 = 30s).
	RPCTimeout time.Duration
	// OnStateApplied, if set, is called after a remote state lands on a
	// local object.
	OnStateApplied func(path string, origin couple.InstanceID)
	// OnRemoteEvent, if set, is called after a remote event was re-executed
	// locally.
	OnRemoteEvent func(e *widget.Event)
	// MarkOrigin, when set, records the originating instance on every
	// widget that received a remote event or state copy, in the
	// OriginAttr attribute. Applications use it to render remote
	// modifications differently — the congruence-of-views relaxation
	// (GROVE's "different colors for certain purposes", §1).
	MarkOrigin bool
	// Metrics receives the client's RPC and re-execution latency
	// histograms. Nil disables measurement (zero-allocation no-ops).
	Metrics obs.Sink
	// Reconnect enables automatic reconnection: when the connection drops,
	// the client redials with exponential backoff, resumes its session (same
	// instance ID), re-declares its objects, re-creates its couple links and
	// pulls the current state of every coupled object. Nil disables
	// reconnection: a dropped connection permanently fails the client.
	Reconnect *ReconnectOptions
	// Tracer records causal spans for this instance's hops: event sends and
	// remote re-executions. Setting it also opts the connection into the
	// wire trace extension, so leave it nil when the server may predate the
	// extension. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Batching opts the connection into the wire batch extension: the
	// server may pack runs of envelopes into single Batch frames, and the
	// client answers a packed run of Execs with one coalesced BatchAck.
	// Like Tracer it is announced from the first frame, so leave it false
	// when the server may predate the extension.
	Batching bool
	// Logger receives structured logs keyed by instance and trace IDs. Nil
	// disables structured logging.
	Logger *slog.Logger
	// Logf receives diagnostic output; nil disables logging.
	Logf func(format string, args ...any)
}

// Client connects one application instance to the coupling server.
type Client struct {
	opts    Options
	reg     *widget.Registry
	checker *compat.Checker
	id      couple.InstanceID

	mu       sync.Mutex
	conn     *wire.Conn // current connection; replaced on reconnect
	nextSeq  uint64
	waiters  map[uint64]chan wire.Envelope
	links    *couple.Graph
	cmds     map[string]CommandHandler
	sem      map[string]Semantics
	declared map[string]string // path → class of every declared object (resync source)
	token    string            // resumable session token; "" without Reconnect
	closed   bool

	inq   *inqueue
	done  chan struct{}
	rdone chan struct{} // closed when the read machinery stops for good
	wg    sync.WaitGroup

	// Metric handles (nil-safe no-ops when Options.Metrics is nil).
	mRPC  *obs.Histogram // client.rpc_ns: request/response round trips
	mExec *obs.Histogram // client.exec_ns: remote-event re-execution to ack

	tr   *obs.Tracer  // nil when tracing is disabled
	slog *slog.Logger // never nil (discards when Options.Logger is nil)
}

// New performs the registration handshake over conn and starts the client
// loops.
func New(conn net.Conn, opts Options) (*Client, error) {
	if opts.Registry == nil {
		return nil, errors.New("client: Options.Registry is required")
	}
	if opts.RPCTimeout == 0 {
		opts.RPCTimeout = 30 * time.Second
	}
	metrics := obs.Or(opts.Metrics)
	c := &Client{
		opts:     opts,
		conn:     wire.NewConn(conn),
		reg:      opts.Registry,
		checker:  compat.NewChecker(opts.Registry.Classes(), opts.Correspondences),
		waiters:  make(map[uint64]chan wire.Envelope),
		links:    couple.NewGraph(),
		cmds:     make(map[string]CommandHandler),
		sem:      make(map[string]Semantics),
		declared: make(map[string]string),
		inq:      newInqueue(),
		done:     make(chan struct{}),
		rdone:    make(chan struct{}),
		mRPC:     metrics.Histogram("client.rpc_ns"),
		mExec:    metrics.Histogram("client.exec_ns"),
		tr:       opts.Tracer,
		slog:     obs.LoggerOr(opts.Logger).With("component", "client"),
	}
	if opts.Tracer != nil {
		// We are the connection initiator, so we opt into the wire trace
		// extension before speaking; the server's conn auto-detects it from
		// our first traced frame.
		c.conn.EnableTrace()
	}
	if opts.Batching {
		// Same negotiation shape for the batch extension: flagging every
		// frame tells the server it may pack our fan-out before it sends us
		// anything.
		c.conn.EnableBatch()
	}
	// Handshake: Register must be answered by Registered before the loops
	// start.
	if err := c.conn.Write(wire.Envelope{Seq: 1, Msg: wire.Register{
		AppType: opts.AppType, Host: opts.Host, User: opts.User,
	}}); err != nil {
		return nil, fmt.Errorf("client: register: %w", err)
	}
	env, err := c.conn.Read()
	if err != nil {
		return nil, fmt.Errorf("client: register reply: %w", err)
	}
	switch m := env.Msg.(type) {
	case wire.Registered:
		c.id = m.ID
	case wire.Err:
		return nil, fmt.Errorf("client: registration refused: %s", m.Text)
	default:
		return nil, fmt.Errorf("client: unexpected registration reply %s", env.Msg.MsgType())
	}
	c.mu.Lock()
	c.nextSeq = 1
	c.mu.Unlock()
	c.slog = c.slog.With("inst", string(c.id))
	c.slog.Debug("registered", "user", opts.User, "host", opts.Host)

	// Hook the toolkit: local events on coupled objects go through the
	// server; everything else is processed locally.
	c.reg.OnEvent(c.handleLocalEvent)
	c.reg.OnDestroy(func(w *widget.Widget) {
		// Automatic decoupling of destroyed objects (§3.2).
		if err := c.callOK(wire.Retract{Path: w.Path()}); err != nil && !errors.Is(err, ErrClosed) {
			c.logf("client %s: retract %s: %v", c.id, w.Path(), err)
		}
		c.mu.Lock()
		delete(c.declared, w.Path())
		c.mu.Unlock()
	})

	c.wg.Add(2)
	go c.supervise()
	go c.dispatchLoop()

	if opts.Reconnect != nil {
		// Mint the resumable session token up front so it is in hand before
		// any disconnect. Only reconnect-enabled clients pay the extra RPC.
		tok, err := c.sessionToken()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("client: session token: %w", err)
		}
		c.mu.Lock()
		c.token = tok
		c.mu.Unlock()
	}
	return c, nil
}

// sessionToken asks the server for a resumable session token.
func (c *Client) sessionToken() (string, error) {
	env, err := c.call(wire.SessionToken{})
	if err != nil {
		return "", err
	}
	switch m := env.Msg.(type) {
	case wire.SessionToken:
		return m.Token, nil
	case wire.Err:
		return "", errors.New(m.Text)
	default:
		return "", fmt.Errorf("client: unexpected reply %s", env.Msg.MsgType())
	}
}

// ID returns the server-assigned application instance identifier.
func (c *Client) ID() couple.InstanceID { return c.id }

// Registry returns the widget registry this client extends.
func (c *Client) Registry() *widget.Registry { return c.reg }

// Ref returns the global reference of a local object.
func (c *Client) Ref(path string) couple.ObjectRef {
	return couple.ObjectRef{Instance: c.id, Path: path}
}

func (c *Client) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// Close deregisters and tears down the connection.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	conn := c.conn
	// The Deregister carries a real sequence number with a registered
	// waiter, so the server's OK reply is routed here instead of surfacing
	// in dispatchLoop as an "unexpected server message". (A Seq of 0 would
	// make the reply's RefSeq 0, the marker for server-initiated traffic.)
	c.nextSeq++
	seq := c.nextSeq
	ack := make(chan wire.Envelope, 1)
	c.waiters[seq] = ack
	c.mu.Unlock()
	// Best effort orderly exit; the server also handles abrupt closes. The
	// wait is bounded: a dead or unresponsive server ends it via readLoop
	// exit or the RPC timeout.
	if err := conn.Write(wire.Envelope{Seq: seq, Msg: wire.Deregister{}}); err == nil {
		timer := time.NewTimer(c.opts.RPCTimeout)
		select {
		case <-ack:
		case <-c.rdone:
		case <-timer.C:
		}
		timer.Stop()
	}
	c.dropWaiter(seq)
	close(c.done)
	conn.Close()
	c.reg.OnEvent(nil)
	c.reg.OnDestroy(nil)
	c.wg.Wait()
	// Fail anybody still waiting for replies.
	c.mu.Lock()
	for seq, ch := range c.waiters {
		close(ch)
		delete(c.waiters, seq)
	}
	c.mu.Unlock()
}

// call sends a request and waits for its correlated reply.
func (c *Client) call(msg wire.Message) (wire.Envelope, error) {
	return c.callCtx(msg, obs.TraceContext{})
}

// callCtx is call with causal-trace context stamped on the request
// envelope; the server parents its hop spans under tc.
func (c *Client) callCtx(msg wire.Message, tc obs.TraceContext) (wire.Envelope, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return wire.Envelope{}, ErrClosed
	}
	c.nextSeq++
	seq := c.nextSeq
	ch := make(chan wire.Envelope, 1)
	c.waiters[seq] = ch
	c.mu.Unlock()

	t0 := c.mRPC.Start()
	if err := c.send(wire.Envelope{Seq: seq, Trace: tc, Msg: msg}); err != nil {
		c.dropWaiter(seq)
		return wire.Envelope{}, fmt.Errorf("client: send %s: %w", msg.MsgType(), err)
	}
	timer := time.NewTimer(c.opts.RPCTimeout)
	defer timer.Stop()
	select {
	case env, ok := <-ch:
		if !ok {
			// The waiter was failed: either the client closed or the
			// connection dropped mid-request (the reply is gone for good —
			// requests do not survive a reconnect).
			if c.isClosed() {
				return wire.Envelope{}, ErrClosed
			}
			return wire.Envelope{}, fmt.Errorf("%w: %s", ErrDisconnected, msg.MsgType())
		}
		c.mRPC.ObserveSince(t0)
		return env, nil
	case <-timer.C:
		c.dropWaiter(seq)
		return wire.Envelope{}, fmt.Errorf("%w: %s", ErrTimeout, msg.MsgType())
	case <-c.done:
		c.dropWaiter(seq)
		return wire.Envelope{}, ErrClosed
	}
}

// callOK sends a request expecting a plain OK.
func (c *Client) callOK(msg wire.Message) error {
	env, err := c.call(msg)
	if err != nil {
		return err
	}
	switch m := env.Msg.(type) {
	case wire.OK:
		return nil
	case wire.Err:
		return errors.New(m.Text)
	default:
		return fmt.Errorf("client: unexpected reply %s to %s", env.Msg.MsgType(), msg.MsgType())
	}
}

func (c *Client) dropWaiter(seq uint64) {
	c.mu.Lock()
	delete(c.waiters, seq)
	c.mu.Unlock()
}

// isClosed reports whether Close has started.
func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// send writes one envelope on the current connection.
func (c *Client) send(env wire.Envelope) error {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	return conn.Write(env)
}

// failWaiters fails every outstanding request: their replies died with the
// connection and will never arrive, even if a reconnect succeeds.
func (c *Client) failWaiters() {
	c.mu.Lock()
	for seq, ch := range c.waiters {
		close(ch)
		delete(c.waiters, seq)
	}
	c.mu.Unlock()
}

// supervise owns the connection lifecycle: it runs the read loop for the
// current connection and, when reconnection is configured, replaces a dead
// connection and resynchronizes; otherwise the first connection loss is
// final.
func (c *Client) supervise() {
	defer c.wg.Done()
	defer c.inq.close()
	defer close(c.rdone)
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	for {
		c.readConn(conn)
		c.failWaiters()
		if c.isClosed() || c.opts.Reconnect == nil {
			return
		}
		c.slog.Warn("connection lost, reconnecting")
		next, pre, err := c.redial()
		if err != nil {
			c.logf("client %s: reconnect: %v", c.id, err)
			c.slog.Error("reconnect failed", "error", err.Error())
			return
		}
		c.mu.Lock()
		c.conn = next
		c.mu.Unlock()
		conn = next
		// Traffic the server flushed around the handshake reply (stashed by
		// resume) is routed before the read loop takes over, preserving the
		// server's send order. A routing failure means the fresh connection
		// already died; the read loop below notices immediately and redials.
		for _, env := range pre {
			if !c.handleIncoming(conn, env) {
				break
			}
		}
		// Resync runs concurrently with the resumed read loop: its RPCs need
		// the loop to route replies. Safe to Add here: supervise itself holds
		// the WaitGroup above zero.
		c.wg.Add(1)
		go c.resync()
	}
}

// readConn routes replies to waiters and server-initiated traffic to the
// dispatch queue, until conn fails. Batch frames are unpacked here: records
// the read loop handles inline (replies, liveness, link mirroring) are
// routed one by one, and the remaining run is queued as a single Batch so
// the dispatch side can coalesce the acknowledgements of adjacent Execs.
func (c *Client) readConn(conn *wire.Conn) {
	for {
		env, err := conn.Read()
		if err != nil {
			return
		}
		if !c.handleIncoming(conn, env) {
			return
		}
	}
}

// handleIncoming routes one received envelope exactly as the read loop
// does: batches are unpacked with inline-handled records routed one by one,
// everything else goes to the dispatch queue. It reports false when the
// connection or the dispatch queue has failed.
func (c *Client) handleIncoming(conn *wire.Conn, env wire.Envelope) bool {
	if batch, ok := env.Msg.(wire.Batch); ok {
		var rest []wire.Envelope
		for _, inner := range batch.Envelopes {
			handled, err := c.routeLocal(conn, inner)
			if err != nil {
				return false
			}
			if !handled {
				rest = append(rest, inner)
			}
		}
		return len(rest) == 0 || c.inq.push(wire.Envelope{Msg: wire.Batch{Envelopes: rest}})
	}
	handled, err := c.routeLocal(conn, env)
	if err != nil {
		return false
	}
	return handled || c.inq.push(env)
}

// routeLocal handles the message kinds the read loop consumes inline,
// reporting whether env was consumed. A non-nil error means the connection
// failed.
func (c *Client) routeLocal(conn *wire.Conn, env wire.Envelope) (bool, error) {
	if env.RefSeq != 0 {
		c.mu.Lock()
		ch, ok := c.waiters[env.RefSeq]
		if ok {
			delete(c.waiters, env.RefSeq)
		}
		c.mu.Unlock()
		if ok {
			ch <- env
		}
		return true, nil
	}
	switch m := env.Msg.(type) {
	case wire.Ping:
		// Answer liveness probes from the read loop: a slow application
		// callback in the dispatch queue must not make a healthy client
		// look dead.
		return true, conn.Write(wire.Envelope{Msg: wire.Pong{Nonce: m.Nonce}})
	// Coupling information is mirrored synchronously so that a Couple
	// call observes its own link as soon as the server confirmed it
	// (the LinkAdded precedes the OK on the same connection).
	case wire.LinkAdded:
		if err := c.links.AddLink(m.Link); err != nil {
			c.logf("client %s: mirror link: %v", c.id, err)
		}
		return true, nil
	case wire.LinkRemoved:
		c.links.RemoveLink(m.Link.From, m.Link.To)
		return true, nil
	}
	return false, nil
}

// dispatchLoop is the instance's UI thread for server-initiated work: remote
// event re-execution, state application, lock toggling, state requests and
// command delivery.
func (c *Client) dispatchLoop() {
	defer c.wg.Done()
	for {
		env, ok := c.inq.pop()
		if !ok {
			return
		}
		if batch, ok := env.Msg.(wire.Batch); ok {
			c.dispatchBatch(batch)
			continue
		}
		c.dispatchOne(env)
	}
}

// dispatchOne processes a single server-initiated envelope.
func (c *Client) dispatchOne(env wire.Envelope) {
	switch m := env.Msg.(type) {
	case wire.Exec:
		c.handleExec(env.Trace, m)
	case wire.SetLocks:
		for _, path := range m.Paths {
			if w, err := c.reg.Lookup(path); err == nil {
				w.SetDisabled(m.Locked)
			}
		}
	case wire.ApplyState:
		c.handleApplyState(m)
	case wire.StateRequest:
		c.handleStateRequest(m)
	case wire.CommandDeliver:
		c.mu.Lock()
		h := c.cmds[m.Name]
		c.mu.Unlock()
		if h != nil {
			c.guard("command handler "+m.Name, env.Trace.Trace, func() {
				h(m.From, m.Payload)
			})
		} else {
			c.logf("client %s: no handler for command %q", c.id, m.Name)
		}
	default:
		c.logf("client %s: unexpected server message %s", c.id, env.Msg.MsgType())
	}
}

// dispatchBatch processes a packed run in record order, coalescing the
// acknowledgements of adjacent Execs into one BatchAck. Each entry keeps
// its own apply-span context, so the server's per-event causal chains and
// its unlock bookkeeping see exactly what N single ExecAcks would have
// delivered, in the same order — just in fewer frames.
func (c *Client) dispatchBatch(batch wire.Batch) {
	var run []wire.BatchAckEntry
	flush := func() {
		switch {
		case len(run) == 0:
		case len(run) == 1:
			// A lone Exec acks exactly as the unbatched path would.
			c.sendExecAck(run[0])
		default:
			if err := c.send(wire.Envelope{Msg: wire.BatchAck{Acks: run}}); err != nil {
				c.logf("client %s: batch ack: %v", c.id, err)
			}
		}
		run = nil
	}
	for _, env := range batch.Envelopes {
		if m, ok := env.Msg.(wire.Exec); ok {
			run = append(run, c.applyExec(env.Trace, m))
			continue
		}
		// A non-Exec record interleaved in the run (a SetLocks between two
		// events' Execs, a state application): flush the pending acks first
		// so the server observes them in record order.
		flush()
		c.dispatchOne(env)
	}
	flush()
}

// guard runs an application callback, converting a panic into a logged
// error so one faulty handler cannot kill the dispatch loop (or lose the
// protocol acknowledgement its caller still owes the server). It reports
// whether fn completed without panicking.
func (c *Client) guard(what string, trace obs.TraceID, fn func()) (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			c.logf("client %s: panic in %s: %v", c.id, what, r)
			c.slog.Error("panic in application callback",
				"callback", what, "panic", fmt.Sprint(r), "trace", trace,
				"stack", string(debug.Stack()))
		}
	}()
	fn()
	return true
}

// inqueue is the unbounded FIFO between the read loop and the dispatch
// loop. It must not apply back-pressure: a blocked push for envelope N
// would also block reading envelope N+1, which may be the RPC reply a
// dispatch-side handler is waiting on — a deadlock, not a slowdown. Memory
// is the accepted cost; the server's outbox limit bounds it from the other
// side by evicting clients that stop draining.
type inqueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []wire.Envelope
	closed bool
}

func newInqueue() *inqueue {
	q := &inqueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends one envelope; it reports false once the queue is closed.
func (q *inqueue) push(env wire.Envelope) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.q = append(q.q, env)
	q.cond.Signal()
	return true
}

// pop blocks for the next envelope; ok is false once the queue is closed
// and drained.
func (q *inqueue) pop() (env wire.Envelope, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.q) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.q) == 0 {
		return wire.Envelope{}, false
	}
	env = q.q[0]
	q.q = q.q[1:]
	return env, true
}

func (q *inqueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Coupled reports whether the local object currently participates in a
// coupling group, according to the locally replicated coupling information.
func (c *Client) Coupled(path string) bool {
	return c.links.Coupled(c.Ref(path))
}

// CO returns the locally mirrored coupling group of a local object,
// excluding the object itself.
func (c *Client) CO(path string) []couple.ObjectRef {
	return c.links.CO(c.Ref(path))
}

// OnCommand registers the handler for an application-defined command name.
func (c *Client) OnCommand(name string, h CommandHandler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cmds[name] = h
}

// SendCommand sends an application-defined command through the server
// (CoSendCommand, §3.4). Empty targets broadcast to all other instances.
func (c *Client) SendCommand(name string, payload []byte, targets ...couple.InstanceID) error {
	return c.callOK(wire.Command{Name: name, Targets: targets, Payload: payload})
}

// RegisterSemantics attaches store/load functions for the semantic data of
// a local object. They run automatically when the object's state is copied.
func (c *Client) RegisterSemantics(path string, s Semantics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sem[path] = s
}

// Instances returns the server's registration records.
func (c *Client) Instances() ([]wire.InstanceInfo, error) {
	env, err := c.call(wire.ListInstances{})
	if err != nil {
		return nil, err
	}
	switch m := env.Msg.(type) {
	case wire.InstanceList:
		return m.Instances, nil
	case wire.Err:
		return nil, errors.New(m.Text)
	default:
		return nil, fmt.Errorf("client: unexpected reply %s", env.Msg.MsgType())
	}
}

// GrantPerm installs an access-permission rule on the server.
func (c *Client) GrantPerm(user, state string, right uint8) error {
	return c.callOK(wire.GrantPerm{User: user, State: state, Right: right})
}

// RevokePerm removes an access-permission rule on the server.
func (c *Client) RevokePerm(user, state string, right uint8) error {
	return c.callOK(wire.RevokePerm{User: user, State: state, Right: right})
}
