package client

import (
	"errors"
	"fmt"

	"cosoft/internal/attr"
	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// semanticAttr is the hidden attribute that carries packed application data
// alongside a UI state (§3.1 "Synchronizing semantic state"). It is attached
// by the dominating instance's Store hook and consumed by the dominated
// instance's Load hook; it never appears in widget classes.
const semanticAttr = "_semantic"

// captureState captures a local subtree, attaching semantic payloads for
// every registered path within it. A shallow capture keeps only the object's
// own attributes.
func (c *Client) captureState(path string, relevantOnly, shallow bool) (widget.TreeState, error) {
	ts, err := c.reg.CaptureTree(path, relevantOnly)
	if err != nil {
		return widget.TreeState{}, err
	}
	if shallow {
		ts.Children = nil
	}
	c.attachSemantics(&ts, path)
	return ts, nil
}

func (c *Client) attachSemantics(ts *widget.TreeState, path string) {
	c.mu.Lock()
	s, ok := c.sem[path]
	c.mu.Unlock()
	if ok && s.Store != nil {
		var payload []byte
		var err error
		if !c.guard("semantic store "+path, 0, func() { payload, err = s.Store() }) {
			err = errors.New("store hook panicked")
		}
		if err != nil {
			c.logf("client %s: semantic store for %s: %v", c.id, path, err)
		} else {
			ts.Attrs.Put(semanticAttr, attr.String(string(payload)))
		}
	}
	for i := range ts.Children {
		c.attachSemantics(&ts.Children[i], widget.JoinPath(path, ts.Children[i].Name))
	}
}

// stripSemantics removes and applies semantic payloads from an incoming
// state.
func (c *Client) stripSemantics(ts *widget.TreeState, path string) {
	if v := ts.Attrs.Get(semanticAttr); v.IsValid() {
		ts.Attrs.Delete(semanticAttr)
		c.mu.Lock()
		s, ok := c.sem[path]
		c.mu.Unlock()
		if ok && s.Load != nil {
			var err error
			if !c.guard("semantic load "+path, 0, func() { err = s.Load([]byte(v.AsString())) }) {
				err = errors.New("load hook panicked")
			}
			if err != nil {
				c.logf("client %s: semantic load for %s: %v", c.id, path, err)
			}
		}
	}
	for i := range ts.Children {
		c.stripSemantics(&ts.Children[i], widget.JoinPath(path, ts.Children[i].Name))
	}
}

// handleStateRequest answers the server's read of a local object's state.
func (c *Client) handleStateRequest(m wire.StateRequest) {
	reply := wire.StateReply{RequestID: m.RequestID}
	ts, err := c.captureState(m.Path, m.RelevantOnly, m.Shallow)
	if err != nil {
		reply.Reason = err.Error()
	} else {
		reply.OK = true
		reply.State = ts
	}
	if err := c.send(wire.Envelope{Msg: reply}); err != nil {
		c.logf("client %s: state reply: %v", c.id, err)
	}
}

// handleApplyState lands an incoming UI state on a local object: primitive
// states replace attributes; complex states merge destructively or flexibly
// (§3.3).
func (c *Client) handleApplyState(m wire.ApplyState) {
	state := m.State
	c.stripSemantics(&state, m.Path)
	w, err := c.reg.Lookup(m.Path)
	if err != nil {
		c.logf("client %s: apply state to %s: %v", c.id, m.Path, err)
		return
	}
	switch {
	case len(state.Children) == 0 && len(w.Children()) == 0:
		w.ApplyState(state.Attrs)
	case m.Destructive:
		if _, _, err := compat.DestructiveMerge(c.reg, m.Path, state); err != nil {
			c.logf("client %s: destructive merge into %s: %v", c.id, m.Path, err)
			return
		}
	default:
		if _, _, err := compat.FlexibleMatch(c.reg, m.Path, state); err != nil {
			c.logf("client %s: flexible match into %s: %v", c.id, m.Path, err)
			return
		}
	}
	c.markOrigin(m.Path, m.Origin)
	if c.opts.OnStateApplied != nil {
		c.guard("state-applied callback", 0, func() {
			c.opts.OnStateApplied(m.Path, m.Origin)
		})
	}
}

// Declare announces one local widget as couplable.
func (c *Client) Declare(path string) error {
	w, err := c.reg.Lookup(path)
	if err != nil {
		return err
	}
	return c.declare(path, w.Class().Name)
}

// DeclareTree announces a widget and all its descendants as couplable.
func (c *Client) DeclareTree(path string) error {
	return c.reg.Walk(path, func(w *widget.Widget) error {
		return c.declare(w.Path(), w.Class().Name)
	})
}

// declare sends the declaration and records it for replay after a
// reconnect.
func (c *Client) declare(path, class string) error {
	if err := c.callOK(wire.Declare{Path: path, Class: class}); err != nil {
		return err
	}
	c.mu.Lock()
	c.declared[path] = class
	c.mu.Unlock()
	return nil
}

// CopyTo pushes the relevant state of a local object onto a remote object —
// passive synchronization for the receiver ("one person lets another person
// see his or her work", §3.1).
func (c *Client) CopyTo(localPath string, to couple.ObjectRef, destructive bool) error {
	ts, err := c.captureState(localPath, true, false)
	if err != nil {
		return err
	}
	return c.callOK(wire.CopyTo{FromPath: localPath, To: to, State: ts, Destructive: destructive})
}

// copyToShallow pushes only the object's own attributes (no children) —
// used for per-pair initial synchronization when coupling complex objects.
func (c *Client) copyToShallow(localPath string, to couple.ObjectRef) error {
	ts, err := c.captureState(localPath, true, true)
	if err != nil {
		return err
	}
	return c.callOK(wire.CopyTo{FromPath: localPath, To: to, State: ts})
}

// CopyFrom pulls a remote object's relevant state onto a local object —
// active synchronization ("monitoring another person's activities", §3.1).
func (c *Client) CopyFrom(from couple.ObjectRef, localPath string, destructive bool) error {
	return c.callOK(wire.CopyFrom{From: from, ToPath: localPath, Destructive: destructive})
}

// RemoteCopy copies state between two objects of other instances (§3.1).
func (c *Client) RemoteCopy(from, to couple.ObjectRef, destructive bool) error {
	return c.callOK(wire.RemoteCopy{From: from, To: to, Destructive: destructive})
}

// FetchState reads the current state of any declared object (subject to the
// view permission).
func (c *Client) FetchState(ref couple.ObjectRef, relevantOnly bool) (widget.TreeState, error) {
	env, err := c.call(wire.FetchState{Ref: ref, RelevantOnly: relevantOnly})
	if err != nil {
		return widget.TreeState{}, err
	}
	switch m := env.Msg.(type) {
	case wire.StateReply:
		if !m.OK {
			return widget.TreeState{}, errors.New(m.Reason)
		}
		return m.State, nil
	case wire.Err:
		return widget.TreeState{}, errors.New(m.Text)
	default:
		return widget.TreeState{}, fmt.Errorf("client: unexpected reply %s", env.Msg.MsgType())
	}
}

// Undo restores the most recently overwritten historical state of a local
// object.
func (c *Client) Undo(path string) error {
	return c.callOK(wire.Undo{Path: path})
}

// Redo re-applies the most recently undone state of a local object.
func (c *Client) Redo(path string) error {
	return c.callOK(wire.Redo{Path: path})
}
