// Prometheus text-format (version 0.0.4) exposition for a Registry.
//
// Metric names are mangled to the Prometheus charset — dots become
// underscores under a "cosoft_" prefix — and every kind maps to its native
// Prometheus type: counters to counter, gauges to a gauge pair
// (value + _high_water), histograms to real cumulative le-series built from
// the raw power-of-two buckets, and families to labeled series, one label
// pair per entry key. The JSON snapshot surface is unchanged; this is a
// second renderer over the same registry.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromContentType is the Content-Type an HTTP handler should serve
// WritePrometheus output under.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promPrefix namespaces every exported series.
const promPrefix = "cosoft_"

// WritePrometheus writes every registered metric in Prometheus text format.
// A non-empty prefix restricts output to metric names with that prefix
// (matched against the registry name, e.g. "server.", not the mangled one).
func (r *Registry) WritePrometheus(w io.Writer, prefix string) error {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	families := make(map[string]*Family, len(r.families))
	for name, f := range r.families {
		families[name] = f
	}
	r.mu.Unlock()

	bw := &promWriter{w: w}
	for _, name := range sortedKeys(counters) {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		pn := promName(name)
		bw.header(pn, "counter")
		bw.sample(pn, "", float64(counters[name].Value()))
	}
	for _, name := range sortedKeys(gauges) {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		g := gauges[name]
		pn := promName(name)
		bw.header(pn, "gauge")
		bw.sample(pn, "", float64(g.Value()))
		bw.header(pn+"_high_water", "gauge")
		bw.sample(pn+"_high_water", "", float64(g.HighWater()))
	}
	for _, name := range sortedKeys(hists) {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		pn := promName(name)
		bw.header(pn, "histogram")
		bw.histogram(pn, "", hists[name])
	}
	for _, name := range sortedKeys(families) {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		bw.family(families[name])
	}
	return bw.err
}

type promWriter struct {
	w   io.Writer
	err error
}

func (bw *promWriter) printf(format string, args ...any) {
	if bw.err != nil {
		return
	}
	_, bw.err = fmt.Fprintf(bw.w, format, args...)
}

func (bw *promWriter) header(name, kind string) {
	bw.printf("# TYPE %s %s\n", name, kind)
}

// sample writes one series line; labels is either empty or a rendered
// `name="value"` list without braces.
func (bw *promWriter) sample(name, labels string, v float64) {
	if labels == "" {
		bw.printf("%s %s\n", name, promFloat(v))
		return
	}
	bw.printf("%s{%s} %s\n", name, labels, promFloat(v))
}

// histogram emits the cumulative le-series plus _sum and _count. Only
// occupied buckets get their own le line (64 mostly-empty lines per
// histogram would drown the output); the mandatory +Inf bucket always
// appears and always equals _count.
func (bw *promWriter) histogram(name, labels string, h *Histogram) {
	b, count, sum := h.Buckets()
	var cum uint64
	for i, n := range b {
		if n == 0 {
			continue
		}
		cum += n
		bw.bucketSample(name, labels, fmt.Sprintf("%d", BucketLE(i)), cum)
	}
	bw.bucketSample(name, labels, "+Inf", count)
	bw.sample(name+"_sum", labels, float64(sum))
	bw.sample(name+"_count", labels, float64(count))
}

func (bw *promWriter) bucketSample(name, labels, le string, v uint64) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	bw.printf("%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, v)
}

// family renders each schema sub-metric as one labeled series per entry.
func (bw *promWriter) family(f *Family) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.entries))
	entries := make(map[string]*FamilyEntry, len(f.entries))
	for key, e := range f.entries {
		keys = append(keys, key)
		entries[key] = e
	}
	f.mu.Unlock()
	sort.Strings(keys)

	label := f.schema.Label
	for i, cname := range f.schema.Counters {
		pn := promName(f.name + "." + cname)
		bw.header(pn, "counter")
		for _, key := range keys {
			bw.sample(pn, promLabel(label, key), float64(entries[key].counters[i].Value()))
		}
	}
	if f.schema.EWMA != "" {
		pn := promName(f.name + "." + f.schema.EWMA)
		bw.header(pn, "gauge")
		for _, key := range keys {
			bw.sample(pn, promLabel(label, key), entries[key].avg.Value())
		}
	}
	if f.schema.Hist != "" {
		pn := promName(f.name + "." + f.schema.Hist)
		bw.header(pn, "histogram")
		for _, key := range keys {
			bw.histogram(pn, promLabel(label, key), &entries[key].hist)
		}
	}
}

// promName mangles a registry name into the Prometheus metric charset
// [a-zA-Z_:][a-zA-Z0-9_:]* under the cosoft_ prefix.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel renders one label pair, escaping the value per the text format
// (backslash, double-quote, newline).
func promLabel(name, value string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return name + `="` + r.Replace(value) + `"`
}

// promFloat formats a sample value; integral floats render without an
// exponent so counters read naturally.
func promFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
