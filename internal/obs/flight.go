package obs

import (
	"sort"
	"sync"
	"time"
)

// FlightEntry is one decoded envelope as seen by the protocol flight
// recorder: enough to reconstruct what a connection said recently without
// retaining payloads.
type FlightEntry struct {
	// Time is Unix nanoseconds at recording.
	Time int64 `json:"time"`
	// Dir is "recv" (peer → server) or "send" (server → peer).
	Dir string `json:"dir"`
	// Type is the protocol message type name.
	Type string `json:"type"`
	// Seq and RefSeq are the envelope's correlation numbers.
	Seq    uint64 `json:"seq,omitempty"`
	RefSeq uint64 `json:"ref_seq,omitempty"`
	// Trace is the envelope's trace ID, when it carried one.
	Trace TraceID `json:"trace,omitempty"`
	// Note carries a short message summary (path, event name, error text).
	Note string `json:"note,omitempty"`
}

// DefaultFlightDepth is the per-connection ring size used when
// NewFlightRecorder is given n <= 0.
const DefaultFlightDepth = 64

// maxFlightConns bounds how many connection rings are retained; when
// exceeded, the ring with the oldest activity is evicted.
const maxFlightConns = 128

// FlightRecorder keeps the last N decoded envelopes per connection. All
// methods are safe on a nil receiver and do nothing there, so a nil recorder
// disables the feature without call-site branches.
type FlightRecorder struct {
	mu      sync.Mutex
	perConn int
	conns   map[string]*flightRing
}

type flightRing struct {
	entries []FlightEntry // ring storage, len == capacity once full
	next    uint64        // total entries ever recorded
	last    int64         // Time of the most recent entry (eviction key)
}

// NewFlightRecorder returns a recorder keeping the last n envelopes per
// connection (n <= 0 selects DefaultFlightDepth).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightDepth
	}
	return &FlightRecorder{perConn: n, conns: make(map[string]*flightRing)}
}

// Enabled reports whether envelopes are being recorded.
func (f *FlightRecorder) Enabled() bool { return f != nil }

// Record appends one entry to conn's ring, stamping e.Time if zero.
func (f *FlightRecorder) Record(conn string, e FlightEntry) {
	if f == nil {
		return
	}
	if e.Time == 0 {
		e.Time = time.Now().UnixNano()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	r, ok := f.conns[conn]
	if !ok {
		if len(f.conns) >= maxFlightConns {
			f.evictOldestLocked()
		}
		r = &flightRing{entries: make([]FlightEntry, 0, f.perConn)}
		f.conns[conn] = r
	}
	if len(r.entries) < f.perConn {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next%uint64(f.perConn)] = e
	}
	r.next++
	r.last = e.Time
}

// evictOldestLocked drops the connection ring with the oldest activity.
func (f *FlightRecorder) evictOldestLocked() {
	var oldest string
	var oldestTime int64
	for name, r := range f.conns {
		if oldest == "" || r.last < oldestTime {
			oldest, oldestTime = name, r.last
		}
	}
	delete(f.conns, oldest)
}

// Snapshot returns every connection's retained entries, oldest first.
func (f *FlightRecorder) Snapshot() map[string][]FlightEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]FlightEntry, len(f.conns))
	for name, r := range f.conns {
		entries := make([]FlightEntry, 0, len(r.entries))
		if len(r.entries) == f.perConn && r.next > uint64(f.perConn) {
			head := r.next % uint64(f.perConn)
			entries = append(entries, r.entries[head:]...)
			entries = append(entries, r.entries[:head]...)
		} else {
			entries = append(entries, r.entries...)
		}
		out[name] = entries
	}
	return out
}

// Conns returns the recorded connection names, sorted.
func (f *FlightRecorder) Conns() []string {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.conns))
	for name := range f.conns {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
