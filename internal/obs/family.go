package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// DefaultFamilyCap bounds the number of live entries a Family keeps when the
// schema does not name its own cap. Past the cap the least-recently-touched
// entry is evicted, so a misbehaving key space (one entry per request, say)
// degrades reporting instead of memory.
const DefaultFamilyCap = 1024

// ewmaAlpha is the smoothing factor for EWMA.Observe: new = old + α(v-old).
// 1/8 is the classic TCP SRTT gain — heavy enough smoothing to survive one
// outlier, light enough to track a member that turns chronically slow within
// a few tens of events.
const ewmaAlpha = 0.125

// EWMA is an exponentially weighted moving average with atomic updates. The
// first observation seeds the average directly; later observations fold in
// with gain ewmaAlpha. Like every obs handle it is nil-safe: methods on a
// nil receiver do nothing and allocate nothing.
type EWMA struct {
	bits atomic.Uint64 // math.Float64bits of the current average
	n    atomic.Uint64 // observation count; 0 means unseeded
}

// Observe folds v into the average.
func (e *EWMA) Observe(v float64) {
	if e == nil {
		return
	}
	if e.n.Add(1) == 1 {
		e.bits.Store(math.Float64bits(v))
		return
	}
	for {
		old := e.bits.Load()
		avg := math.Float64frombits(old)
		next := avg + ewmaAlpha*(v-avg)
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ObserveDuration folds a duration, in nanoseconds, into the average.
func (e *EWMA) ObserveDuration(d int64) { e.Observe(float64(d)) }

// Value returns the current average, or 0 before the first observation.
func (e *EWMA) Value() float64 {
	if e == nil {
		return 0
	}
	return math.Float64frombits(e.bits.Load())
}

// Count returns the number of observations folded in so far.
func (e *EWMA) Count() uint64 {
	if e == nil {
		return 0
	}
	return e.n.Load()
}

// FamilySchema declares the per-key sub-metrics of a Family. Sub-metric
// names extend the family name with a dot (family "server.member" with
// counter "acks" snapshots and exports as "server.member.acks").
type FamilySchema struct {
	// Counters are per-key counter names, addressed by index at the call
	// site (Entry.Counter(i) with i matching the declaration order).
	Counters []string
	// Hist, when non-empty, gives each key a latency histogram.
	Hist string
	// EWMA, when non-empty, gives each key an exponentially weighted
	// moving average.
	EWMA string
	// Label is the Prometheus label name for the key ("key" when empty).
	Label string
	// Cap bounds live entries (DefaultFamilyCap when zero).
	Cap int
}

// Family is a bounded-cardinality labeled metric: one Entry per string key,
// each bundling the counters/histogram/EWMA named by the schema. Entries are
// created on first Get and evicted least-recently-gotten past the cap.
//
// The intended split: Get takes the family mutex and belongs on setup or
// cold paths; hot paths resolve an Entry once (per connection, per session)
// and update it lock-free through its atomic sub-metrics. A cached Entry
// that has since been evicted still absorbs updates safely — they just no
// longer appear in snapshots, which is the bounded-cardinality bargain.
type Family struct {
	name   string
	schema FamilySchema

	mu      sync.Mutex
	entries map[string]*FamilyEntry
	// Intrusive LRU list, most-recent at head; guarded by mu.
	head, tail *FamilyEntry
}

// FamilyEntry is one key's bundle of sub-metrics. Update methods are
// atomic and nil-safe, so entries can be shared across goroutines and the
// disabled path (nil family, nil entry) costs nothing.
type FamilyEntry struct {
	key        string
	counters   []Counter
	hist       Histogram
	avg        EWMA
	prev, next *FamilyEntry // LRU links, guarded by Family.mu
}

func newFamily(name string, schema FamilySchema) *Family {
	if schema.Cap <= 0 {
		schema.Cap = DefaultFamilyCap
	}
	if schema.Label == "" {
		schema.Label = "key"
	}
	return &Family{
		name:    name,
		schema:  schema,
		entries: make(map[string]*FamilyEntry),
	}
}

// Name returns the family name.
func (f *Family) Name() string {
	if f == nil {
		return ""
	}
	return f.name
}

// Get returns the entry for key, creating it (and evicting the coldest
// entry past the cap) on first use. Nil on a nil family.
func (f *Family) Get(key string) *FamilyEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[key]
	if ok {
		f.touch(e)
		return e
	}
	e = &FamilyEntry{key: key, counters: make([]Counter, len(f.schema.Counters))}
	f.entries[key] = e
	f.pushFront(e)
	if len(f.entries) > f.schema.Cap {
		cold := f.tail
		f.unlink(cold)
		delete(f.entries, cold.key)
	}
	return e
}

// Peek returns the entry for key without creating one or refreshing its LRU
// position — the read path for reporting. Nil when absent or disabled.
func (f *Family) Peek(key string) *FamilyEntry {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.entries[key]
}

// Len returns the number of live entries.
func (f *Family) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries)
}

func (f *Family) touch(e *FamilyEntry) {
	if f.head == e {
		return
	}
	f.unlink(e)
	f.pushFront(e)
}

func (f *Family) pushFront(e *FamilyEntry) {
	e.prev, e.next = nil, f.head
	if f.head != nil {
		f.head.prev = e
	}
	f.head = e
	if f.tail == nil {
		f.tail = e
	}
}

func (f *Family) unlink(e *FamilyEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		f.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		f.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Key returns the entry's key.
func (e *FamilyEntry) Key() string {
	if e == nil {
		return ""
	}
	return e.key
}

// Counter returns the i-th schema counter, nil when out of range or on a
// nil entry — so call sites never index-check.
func (e *FamilyEntry) Counter(i int) *Counter {
	if e == nil || i < 0 || i >= len(e.counters) {
		return nil
	}
	return &e.counters[i]
}

// Hist returns the entry's histogram (nil-safe; valid even when the schema
// declared none — it is just never snapshotted then).
func (e *FamilyEntry) Hist() *Histogram {
	if e == nil {
		return nil
	}
	return &e.hist
}

// EWMA returns the entry's moving average (nil-safe, same caveat as Hist).
func (e *FamilyEntry) EWMA() *EWMA {
	if e == nil {
		return nil
	}
	return &e.avg
}

// FamilyEntrySnapshot digests one key of a family.
type FamilyEntrySnapshot struct {
	Counters map[string]uint64 `json:"counters,omitempty"`
	EWMA     float64           `json:"ewma,omitempty"`
	Hist     Summary           `json:"hist,omitempty"`
}

// FamilySnapshot digests a whole family: schema echoes plus per-key entries.
type FamilySnapshot struct {
	Label   string                         `json:"label"`
	Entries map[string]FamilyEntrySnapshot `json:"entries"`
}

// Snapshot digests every live entry.
func (f *Family) Snapshot() FamilySnapshot {
	if f == nil {
		return FamilySnapshot{}
	}
	f.mu.Lock()
	entries := make(map[string]*FamilyEntry, len(f.entries))
	for key, e := range f.entries {
		entries[key] = e
	}
	f.mu.Unlock()

	snap := FamilySnapshot{
		Label:   f.schema.Label,
		Entries: make(map[string]FamilyEntrySnapshot, len(entries)),
	}
	for key, e := range entries {
		es := FamilyEntrySnapshot{}
		if len(f.schema.Counters) > 0 {
			es.Counters = make(map[string]uint64, len(f.schema.Counters))
			for i, cname := range f.schema.Counters {
				es.Counters[cname] = e.counters[i].Value()
			}
		}
		if f.schema.EWMA != "" {
			es.EWMA = e.avg.Value()
		}
		if f.schema.Hist != "" {
			es.Hist = e.hist.Summary()
		}
		snap.Entries[key] = es
	}
	return snap
}
