// Package obs is the observability substrate of the coupling server: atomic
// counters, gauges with high-water marks, and fixed-bucket latency
// histograms behind a Sink interface whose disabled form is a
// zero-allocation no-op.
//
// The design optimizes the instrumented hot path, not the collection path:
// instrumented code asks a Sink for named handles once, at construction
// time, and stores them in struct fields. Every handle method is safe on a
// nil receiver and does nothing there, so the Disabled sink — which hands
// out nil handles — removes all measurement cost without a branch at the
// call sites beyond the nil check inlined into each method. No goroutines,
// no channels, no dependencies beyond the standard library's sync/atomic.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Sink hands out metric handles by name. Asking twice for the same name
// returns the same handle. Implementations: *Registry (recording) and
// Disabled (nil handles, all no-ops).
type Sink interface {
	Counter(name string) *Counter
	Gauge(name string) *Gauge
	Histogram(name string) *Histogram
	Family(name string, schema FamilySchema) *Family
}

// Disabled is the no-op Sink: every handle it returns is nil, and methods
// on nil handles do nothing and allocate nothing.
var Disabled Sink = disabled{}

type disabled struct{}

func (disabled) Counter(string) *Counter             { return nil }
func (disabled) Gauge(string) *Gauge                 { return nil }
func (disabled) Histogram(string) *Histogram         { return nil }
func (disabled) Family(string, FamilySchema) *Family { return nil }

// Or returns s, or Disabled when s is nil — the idiom for optional
// Options.Metrics fields.
func Or(s Sink) Sink {
	if s == nil {
		return Disabled
	}
	return s
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Start returns the current time for a later AddSince, or the zero time
// when the counter is disabled — so the disabled path never reads the
// clock. The pair turns a Counter into a cheap busy-time accumulator.
func (c *Counter) Start() time.Time {
	if c == nil {
		return time.Time{}
	}
	return time.Now()
}

// AddSince adds the nanoseconds elapsed since t0. A zero t0 (from a
// disabled Start) is ignored.
func (c *Counter) AddSince(t0 time.Time) {
	if c == nil || t0.IsZero() {
		return
	}
	c.v.Add(uint64(time.Since(t0)))
}

// Gauge is an instantaneous value that also remembers its high-water mark.
type Gauge struct {
	v   atomic.Int64
	hwm atomic.Int64
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.raiseHWM(g.v.Add(delta))
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.raiseHWM(v)
}

func (g *Gauge) raiseHWM(v int64) {
	for {
		cur := g.hwm.Load()
		if v <= cur || g.hwm.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HighWater returns the largest value the gauge has held.
func (g *Gauge) HighWater() int64 {
	if g == nil {
		return 0
	}
	return g.hwm.Load()
}

// histBuckets is one bucket per power of two of the observed value:
// bucket 0 holds zeros, bucket k holds [2^(k-1), 2^k). 64 buckets cover
// every non-negative int64, so Observe never range-checks.
const histBuckets = 64

// Histogram accumulates non-negative int64 observations (latencies in
// nanoseconds, fan-out sizes, queue depths) into power-of-two buckets.
// Quantiles are estimated by linear interpolation within the bucket, which
// bounds the relative error by the bucket width (< 2x worst case, far less
// in practice since observations cluster).
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	max   atomic.Int64
	// minP1 holds min+1 so the zero value means "no observations yet";
	// observed values are clamped non-negative, so min+1 never overflows.
	minP1 atomic.Int64
	b     [histBuckets]atomic.Uint64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.minP1.Load()
		if (cur != 0 && v+1 >= cur) || h.minP1.CompareAndSwap(cur, v+1) {
			break
		}
	}
	h.b[bits.Len64(uint64(v))&(histBuckets-1)].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Start returns the current time for a later ObserveSince, or the zero time
// when the histogram is disabled — so the disabled path never reads the
// clock.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since t0. A zero t0 (from a
// disabled Start) is ignored.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || t0.IsZero() {
		return
	}
	h.Observe(int64(time.Since(t0)))
}

// Summary is a point-in-time digest of a histogram. All fields are scalars
// so structs embedding a Summary stay comparable.
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
}

// Summary digests the histogram. Concurrent Observes make the digest
// slightly fuzzy (counts and buckets are read independently); that is fine
// for monitoring.
func (h *Histogram) Summary() Summary {
	if h == nil {
		return Summary{}
	}
	var buckets [histBuckets]uint64
	var total uint64
	for i := range h.b {
		buckets[i] = h.b[i].Load()
		total += buckets[i]
	}
	s := Summary{Count: h.count.Load(), Max: h.max.Load()}
	if total == 0 {
		return s
	}
	if mp1 := h.minP1.Load(); mp1 > 0 {
		s.Min = mp1 - 1
	}
	s.Mean = float64(h.sum.Load()) / float64(total)
	// Interpolation can overshoot the largest observation within its
	// power-of-two bucket (and undershoot the smallest), so clamp every
	// quantile to the tracked [min, max] envelope.
	s.P50 = clampQ(quantile(&buckets, total, 0.50), s.Min, s.Max)
	s.P95 = clampQ(quantile(&buckets, total, 0.95), s.Min, s.Max)
	s.P99 = clampQ(quantile(&buckets, total, 0.99), s.Min, s.Max)
	return s
}

// clampQ clamps an interpolated quantile to the observed value envelope.
func clampQ(q float64, lo, hi int64) float64 {
	return min(max(q, float64(lo)), float64(hi))
}

// Buckets copies out the raw per-bucket counts alongside the running count
// and sum — the accessor Prometheus exposition needs to emit real
// cumulative le-series instead of a precomputed digest.
func (h *Histogram) Buckets() (b [histBuckets]uint64, count uint64, sum int64) {
	if h == nil {
		return
	}
	for i := range h.b {
		b[i] = h.b[i].Load()
	}
	return b, h.count.Load(), h.sum.Load()
}

// NumHistBuckets is the fixed bucket count, exported for consumers of
// Buckets. Bucket 0 holds zeros; bucket k holds [2^(k-1), 2^k).
const NumHistBuckets = histBuckets

// BucketLE returns the inclusive integer upper bound of bucket i — the
// largest observation the bucket can hold. Observations are integral, so
// this is an exact Prometheus "le" bound, not an approximation.
func BucketLE(i int) int64 {
	switch {
	case i <= 0:
		return 0
	case i >= histBuckets-1:
		return math.MaxInt64 // top bucket absorbs everything above 2^62
	}
	return int64(1)<<i - 1
}

// quantile locates the bucket holding the q-th ranked observation and
// interpolates linearly across the bucket's value range.
func quantile(buckets *[histBuckets]uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var seen float64
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen) / float64(n)
			return lo + frac*(hi-lo)
		}
		seen += float64(n)
	}
	_, hi := bucketBounds(histBuckets - 1)
	return hi
}

// bucketBounds returns the half-open value range [lo, hi) of bucket i.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 0
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}

// Registry is the recording Sink: a named collection of metrics with a
// consistent-enough JSON snapshot. Handle lookup takes a lock and is meant
// for construction time, not hot paths.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	families map[string]*Family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		families: make(map[string]*Family),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Family returns the named family, creating it with schema on first use.
// Later calls return the existing family regardless of schema, matching the
// one-name-one-handle contract of the other kinds.
func (r *Registry) Family(name string, schema FamilySchema) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = newFamily(name, schema)
		r.families[name] = f
	}
	return f
}

// GaugeValue is a gauge's snapshot: current reading and high-water mark.
type GaugeValue struct {
	Value     int64 `json:"value"`
	HighWater int64 `json:"high_water"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It
// marshals directly to the JSON served by cosoftd's -metrics-addr endpoint.
type Snapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]GaugeValue     `json:"gauges"`
	Histograms map[string]Summary        `json:"histograms"`
	Families   map[string]FamilySnapshot `json:"families,omitempty"`
}

// Snapshot digests every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for name, h := range r.hists {
		hists[name] = h
	}
	families := make(map[string]*Family, len(r.families))
	for name, f := range r.families {
		families[name] = f
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]GaugeValue, len(gauges)),
		Histograms: make(map[string]Summary, len(hists)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = GaugeValue{Value: g.Value(), HighWater: g.HighWater()}
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Summary()
	}
	if len(families) > 0 {
		snap.Families = make(map[string]FamilySnapshot, len(families))
		for name, f := range families {
			snap.Families[name] = f.Snapshot()
		}
	}
	return snap
}

// Names returns every registered metric name in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.families))
	for name := range r.counters {
		names = append(names, name)
	}
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.hists {
		names = append(names, name)
	}
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
