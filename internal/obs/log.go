package obs

import (
	"context"
	"log/slog"
)

// discardHandler is a slog.Handler that drops every record. (The standard
// library gained slog.DiscardHandler only in Go 1.24; this module targets
// 1.22.)
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// NopLogger returns a logger that discards everything; its Enabled check is
// false at every level, so argument evaluation is the only cost.
func NopLogger() *slog.Logger { return nopLogger }

// LoggerOr returns l, or the discarding logger when l is nil — the idiom
// for optional Options.Logger fields.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}
