// Causal event tracing: spans recorded at every hop of a coupled event's
// life (client send → server arrival → lock acquire → per-member Exec →
// re-execution → ExecAck → unlock → EventResult) into a fixed-size lock-free
// ring buffer.
//
// Like the metric handles in this package, the disabled form is free: every
// method is safe on a nil *Tracer and does nothing there — no clock reads,
// no ID generation, no allocation. Instrumented code therefore keeps an
// unconditional call shape and pays only a nil check when tracing is off.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceID identifies one causal chain across instances. Zero means "no
// trace": it is never generated and marks envelopes without trace context.
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// String renders the ID in the fixed-width hex form used in logs.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID in the fixed-width hex form used in logs.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// The IDs cross JSON as hex strings: the same form logs, the /debug/trace
// query parameter, and the repl use — and 64-bit values survive consumers
// that read JSON numbers as float64.

func (t TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

func (t *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*t = TraceID(v)
	return err
}

func (s SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

func (s *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*s = SpanID(v)
	return err
}

func unmarshalHexID(b []byte) (uint64, error) {
	var hex string
	if err := json.Unmarshal(b, &hex); err != nil {
		return 0, err
	}
	return strconv.ParseUint(hex, 16, 64)
}

// TraceContext is the propagated part of a trace: the chain identity plus
// the sender's span, which becomes the parent of spans recorded at the
// receiver. The zero value means "not traced" and propagates nothing.
type TraceContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context carries a trace.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// Span is one recorded hop of a trace. Start and End are Unix nanoseconds;
// instantaneous spans have Start == End.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"`
	// Name is the hop, e.g. "server.exec_send" (see the README table).
	Name string `json:"name"`
	// Inst is the recording instance ("server" or an instance ID).
	Inst string `json:"inst"`
	// Note carries hop detail: object path, event name, lock outcome.
	Note  string `json:"note,omitempty"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

// Duration returns the span's length.
func (s Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// newID returns a random non-zero ID. math/rand/v2's global generator is
// allocation-free and safe for concurrent use.
func newID() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// Tracer records spans into a fixed-size lock-free ring buffer: writers
// claim a slot with one atomic add and publish the span with one atomic
// pointer store, so recording never blocks and old spans are overwritten
// when the ring wraps.
type Tracer struct {
	seq  atomic.Uint64
	ring []atomic.Pointer[Span]
	mask uint64
}

// DefaultTraceBuffer is the ring size used when NewTracer is given n <= 0.
const DefaultTraceBuffer = 4096

// NewTracer returns a tracer whose ring holds at least n spans (rounded up
// to a power of two; n <= 0 selects DefaultTraceBuffer).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTraceBuffer
	}
	size := 1 << bits.Len(uint(n-1))
	return &Tracer{ring: make([]atomic.Pointer[Span], size), mask: uint64(size - 1)}
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// NewTrace mints the root context of a new causal chain: a fresh trace ID
// with no parent span. It returns the zero context on a nil tracer.
func (t *Tracer) NewTrace() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	return TraceContext{Trace: TraceID(newID())}
}

// record publishes one finished span.
func (t *Tracer) record(s Span) {
	pos := t.seq.Add(1) - 1
	sp := s // escapes: one allocation per recorded span, only when enabled
	t.ring[pos&t.mask].Store(&sp)
}

// StartSpan opens a child span of parent. It returns the inert zero handle —
// without reading the clock or generating IDs — when the tracer is nil or
// the parent context carries no trace.
func (t *Tracer) StartSpan(parent TraceContext, name, inst string) SpanHandle {
	if t == nil || parent.Trace == 0 {
		return SpanHandle{}
	}
	return SpanHandle{t: t, s: Span{
		Trace:  parent.Trace,
		ID:     SpanID(newID()),
		Parent: parent.Span,
		Name:   name,
		Inst:   inst,
		Start:  time.Now().UnixNano(),
	}}
}

// StartRoot opens the root span of a brand-new trace.
func (t *Tracer) StartRoot(name, inst string) SpanHandle {
	return t.StartSpan(t.NewTrace(), name, inst)
}

// Point records an instantaneous span under parent and returns the new
// span's context (so even point events can parent later hops).
func (t *Tracer) Point(parent TraceContext, name, inst, note string) TraceContext {
	if t == nil || parent.Trace == 0 {
		return TraceContext{}
	}
	now := time.Now().UnixNano()
	s := Span{
		Trace:  parent.Trace,
		ID:     SpanID(newID()),
		Parent: parent.Span,
		Name:   name,
		Inst:   inst,
		Note:   note,
		Start:  now,
		End:    now,
	}
	t.record(s)
	return TraceContext{Trace: s.Trace, Span: s.ID}
}

// SpanHandle is an open span. It is a value (no allocation); End records it.
// The zero handle is inert: every method no-ops.
type SpanHandle struct {
	t *Tracer
	s Span
}

// Active reports whether the span will be recorded. Call sites use it to
// skip building notes when tracing is disabled.
func (h SpanHandle) Active() bool { return h.t != nil }

// Context returns the span's propagation context (zero when inert), used to
// parent child spans and to stamp outgoing envelopes.
func (h SpanHandle) Context() TraceContext {
	if h.t == nil {
		return TraceContext{}
	}
	return TraceContext{Trace: h.s.Trace, Span: h.s.ID}
}

// SetNote attaches hop detail to the span before End.
func (h *SpanHandle) SetNote(note string) {
	if h.t != nil {
		h.s.Note = note
	}
}

// End closes and records the span.
func (h SpanHandle) End() {
	if h.t == nil {
		return
	}
	h.s.End = time.Now().UnixNano()
	h.t.record(h.s)
}

// EndNote closes the span with a note in one call.
func (h SpanHandle) EndNote(note string) {
	if h.t == nil {
		return
	}
	h.s.Note = note
	h.End()
}

// Spans returns the recorded spans, oldest first. Concurrent recording can
// make the snapshot slightly fuzzy at the wrap boundary; that is fine for a
// debugging surface.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	total := t.seq.Load()
	n := uint64(len(t.ring))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]Span, 0, total-start)
	for i := start; i < total; i++ {
		if p := t.ring[i&t.mask].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// TraceSpans returns the recorded spans of one trace, ordered by start time.
func (t *Tracer) TraceSpans(id TraceID) []Span {
	var out []Span
	for _, s := range t.Spans() {
		if s.Trace == id {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// WriteChromeTrace renders spans in the Chrome trace-event format
// (chrome://tracing, Perfetto): one complete ("X") event per span, with one
// row (tid) per recording instance and the trace/span identifiers in args.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	type chromeEvent struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	tids := make(map[string]int)
	var events []chromeEvent
	for _, s := range spans {
		tid, ok := tids[s.Inst]
		if !ok {
			tid = len(tids) + 1
			tids[s.Inst] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": s.Inst},
			})
		}
		args := map[string]any{
			"trace": s.Trace.String(),
			"span":  s.ID.String(),
		}
		if s.Parent != 0 {
			args["parent"] = s.Parent.String()
		}
		if s.Note != "" {
			args["note"] = s.Note
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "cosoft",
			Ph:   "X",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  1,
			Tid:  tid,
			Args: args,
		})
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}
