package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter value")
	}
	var g *Gauge
	g.Add(3)
	g.Set(7)
	if g.Value() != 0 || g.HighWater() != 0 {
		t.Error("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if !h.Start().IsZero() {
		t.Error("nil histogram Start must return zero time")
	}
	h.ObserveSince(time.Now()) // ignored on nil receiver
	if s := h.Summary(); s != (Summary{}) {
		t.Errorf("nil histogram summary = %+v", s)
	}
}

func TestDisabledSinkHandsOutNils(t *testing.T) {
	if Disabled.Counter("x") != nil || Disabled.Gauge("x") != nil || Disabled.Histogram("x") != nil {
		t.Fatal("Disabled must return nil handles")
	}
	if Or(nil) != Disabled {
		t.Error("Or(nil) must be Disabled")
	}
	r := NewRegistry()
	if Or(r) != Sink(r) {
		t.Error("Or must pass a real sink through")
	}
}

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Errorf("counter = %d", c.Value())
	}
	if r.Counter("events") != c {
		t.Error("same name must return same handle")
	}
}

func TestGaugeHighWater(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Add(5)
	g.Add(3)
	g.Add(-6)
	if g.Value() != 2 {
		t.Errorf("value = %d", g.Value())
	}
	if g.HighWater() != 8 {
		t.Errorf("high water = %d", g.HighWater())
	}
	g.Set(1)
	if g.HighWater() != 8 {
		t.Error("Set must not lower the high-water mark")
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewRegistry().Histogram("lat")
	// 100 observations of 1000, five outliers of 1_000_000.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 5; i++ {
		h.Observe(1_000_000)
	}
	s := h.Summary()
	if s.Count != 105 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 1_000_000 {
		t.Errorf("max = %d", s.Max)
	}
	// 1000 lands in bucket [512, 1024); the p50 estimate must stay inside it.
	if s.P50 < 512 || s.P50 >= 1024 {
		t.Errorf("p50 = %g, want within [512, 1024)", s.P50)
	}
	if s.P95 < 512 || s.P95 >= 1024 {
		t.Errorf("p95 = %g", s.P95)
	}
	// p99 ranks past the 100 small observations into the outliers' bucket.
	if s.P99 < 1024 {
		t.Errorf("p99 = %g, want beyond the small bucket", s.P99)
	}
	wantMean := (100*1000.0 + 5*1_000_000.0) / 105
	if s.Mean != wantMean {
		t.Errorf("mean = %g, want %g", s.Mean, wantMean)
	}
}

// TestHistogramQuantilePinned pins quantile estimates on distributions with
// known answers: within-bucket linear interpolation plus the [min, max]
// clamp must land close to the true value, not on a power-of-two bucket
// boundary (which would be up to 2x off).
func TestHistogramQuantilePinned(t *testing.T) {
	// Uniform 1..1024: every bucket k holds exactly its 2^(k-1) integers,
	// so interpolation is near-exact. True p50 = 512, p95 = 972.8, p99 = 1013.76.
	u := NewRegistry().Histogram("uniform")
	for v := int64(1); v <= 1024; v++ {
		u.Observe(v)
	}
	s := u.Summary()
	if s.Min != 1 || s.Max != 1024 {
		t.Fatalf("envelope = [%d, %d]", s.Min, s.Max)
	}
	pin := func(name string, got, want, tol float64) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %g, want %g +/- %g", name, got, want, tol)
		}
	}
	pin("uniform p50", s.P50, 512, 2)
	pin("uniform p95", s.P95, 973, 3)
	pin("uniform p99", s.P99, 1014, 3)

	// Constant distribution: every quantile must collapse onto the single
	// observed value via the envelope clamp, despite the wide bucket.
	c := NewRegistry().Histogram("const")
	for i := 0; i < 1000; i++ {
		c.Observe(700)
	}
	s = c.Summary()
	if s.P50 != 700 || s.P95 != 700 || s.P99 != 700 || s.Min != 700 {
		t.Errorf("constant summary = %+v, want all quantiles 700", s)
	}

	// Bimodal: 90 fast (all 1000) + 10 slow (all 1_000_000). p50 ranks in
	// the fast mode's bucket, p99 in the slow mode's; neither may bleed
	// into the other or past the observed envelope.
	bi := NewRegistry().Histogram("bimodal")
	for i := 0; i < 90; i++ {
		bi.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		bi.Observe(1_000_000)
	}
	s = bi.Summary()
	if s.P50 < 1000 || s.P50 >= 1024 {
		t.Errorf("bimodal p50 = %g, want within the fast bucket and >= min mode", s.P50)
	}
	if s.P99 < 512*1024 || s.P99 > 1_000_000 {
		t.Errorf("bimodal p99 = %g, want within the slow mode's bucket", s.P99)
	}
}

func TestHistogramMinTracking(t *testing.T) {
	h := NewRegistry().Histogram("m")
	h.Observe(500)
	h.Observe(300)
	h.Observe(900)
	if s := h.Summary(); s.Min != 300 {
		t.Errorf("min = %d", s.Min)
	}
	// Zero observations keep Min at zero without the sentinel leaking.
	z := NewRegistry().Histogram("z")
	if s := z.Summary(); s.Min != 0 {
		t.Errorf("empty min = %d", s.Min)
	}
	z.Observe(0)
	if s := z.Summary(); s.Min != 0 || s.Count != 1 {
		t.Errorf("zero-valued min = %+v", s)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewRegistry().Histogram("z")
	h.Observe(0)
	h.Observe(-5) // clamped to zero
	s := h.Summary()
	if s.Count != 2 || s.Max != 0 || s.P50 != 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestObserveSince(t *testing.T) {
	h := NewRegistry().Histogram("rtt")
	t0 := h.Start()
	if t0.IsZero() {
		t.Fatal("enabled Start must read the clock")
	}
	h.ObserveSince(t0)
	h.ObserveSince(time.Time{}) // zero start is ignored
	if s := h.Summary(); s.Count != 1 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.events").Add(3)
	r.Gauge("server.outbox_depth").Add(4)
	r.Histogram("server.event_rtt_ns").Observe(2048)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["server.events"] != 3 {
		t.Errorf("counters = %v", back.Counters)
	}
	if back.Gauges["server.outbox_depth"].HighWater != 4 {
		t.Errorf("gauges = %v", back.Gauges)
	}
	if back.Histograms["server.event_rtt_ns"].Count != 1 {
		t.Errorf("histograms = %v", back.Histograms)
	}
}

func TestNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Gauge("a")
	r.Histogram("c")
	names := r.Names()
	want := []string{"a", "b", "c"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Gauge("g").Add(-1)
				r.Histogram("h").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("gauge = %d", got)
	}
	if got := r.Histogram("h").Summary().Count; got != 8000 {
		t.Errorf("hist count = %d", got)
	}
}

func BenchmarkDisabledObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := h.Start()
		h.ObserveSince(t0)
	}
}

func BenchmarkEnabledObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
