package obs

import (
	"bytes"
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// --- strict text-format checker -----------------------------------------
//
// promCheck parses Prometheus exposition text (format version 0.0.4) and
// fails on anything a strict scraper would reject: bad metric or label
// names, malformed sample lines, duplicate series, TYPE lines after the
// first sample of their metric, and histograms whose cumulative le-series
// is non-monotonic, missing +Inf, or inconsistent with _count.

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

func promCheck(t testing.TB, data []byte) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]string{}    // metric family -> declared TYPE
	seenSample := map[string]bool{} // metric name -> sample emitted
	seenSeries := map[string]bool{} // name + sorted labelset
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "TYPE" && fields[1] != "HELP") {
				t.Fatalf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] != "TYPE" {
				continue
			}
			name, kind := fields[2], ""
			if len(fields) == 4 {
				kind = fields[3]
			}
			if !promNameRe.MatchString(name) {
				t.Fatalf("line %d: bad metric name %q", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: bad TYPE %q for %s", lineNo, kind, name)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if seenSample[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			typed[name] = kind
			continue
		}
		s := parsePromSample(t, lineNo, line)
		base := histBase(s.name)
		seenSample[s.name], seenSample[base] = true, true
		key := seriesKey(s)
		if seenSeries[key] {
			t.Fatalf("line %d: duplicate series %s", lineNo, key)
		}
		seenSeries[key] = true
		samples = append(samples, s)
	}
	checkHistograms(t, samples, typed)
	return samples
}

func parsePromSample(t testing.TB, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set %q", lineNo, line)
		}
		parsePromLabels(t, lineNo, rest[i+1:end], s.labels)
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		s.name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("line %d: bad metric name %q", lineNo, s.name)
	}
	// rest is now "value" possibly followed by a timestamp.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		t.Fatalf("line %d: malformed value %q", lineNo, rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, fields[0], err)
	}
	s.value = v
	return s
}

func parsePromLabels(t testing.TB, lineNo int, body string, into map[string]string) {
	t.Helper()
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			t.Fatalf("line %d: malformed labels %q", lineNo, body)
		}
		name := body[:eq]
		if !promLabelRe.MatchString(name) {
			t.Fatalf("line %d: bad label name %q", lineNo, name)
		}
		// Scan the quoted value honoring escapes.
		i := eq + 2
		var val strings.Builder
		for {
			if i >= len(body) {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, body)
			}
			c := body[i]
			if c == '\\' {
				if i+1 >= len(body) {
					t.Fatalf("line %d: dangling escape in %q", lineNo, body)
				}
				switch body[i+1] {
				case '\\', '"':
					val.WriteByte(body[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					t.Fatalf("line %d: bad escape \\%c", lineNo, body[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[name]; dup {
			t.Fatalf("line %d: duplicate label %q", lineNo, name)
		}
		into[name] = val.String()
		if i < len(body) {
			if body[i] != ',' {
				t.Fatalf("line %d: expected ',' after label in %q", lineNo, body)
			}
			i++
		}
		body = body[i:]
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return float64(^uint64(0)), nil
	case "-Inf", "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

// histBase strips histogram sample suffixes so TYPE lookups find the family.
func histBase(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			return b
		}
	}
	return name
}

func seriesKey(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, s.labels[k])
	}
	return b.String()
}

// checkHistograms verifies each declared histogram's series set: per
// labelset (ignoring le), buckets must be cumulative and monotone, the
// +Inf bucket must exist and equal _count, and _sum/_count must exist.
func checkHistograms(t testing.TB, samples []promSample, typed map[string]string) {
	t.Helper()
	type series struct {
		buckets map[string]float64 // le -> cumulative count
		sum     *float64
		count   *float64
	}
	hists := map[string]map[string]*series{} // family -> labelset(sans le) -> series
	for _, s := range samples {
		base := histBase(s.name)
		if typed[base] != "histogram" {
			continue
		}
		rest := promSample{name: base, labels: map[string]string{}}
		for k, v := range s.labels {
			if k != "le" {
				rest.labels[k] = v
			}
		}
		key := seriesKey(rest)
		if hists[base] == nil {
			hists[base] = map[string]*series{}
		}
		sr := hists[base][key]
		if sr == nil {
			sr = &series{buckets: map[string]float64{}}
			hists[base][key] = sr
		}
		v := s.value
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, ok := s.labels["le"]
			if !ok {
				t.Fatalf("%s: bucket sample without le label", s.name)
			}
			sr.buckets[le] = v
		case strings.HasSuffix(s.name, "_sum"):
			sr.sum = &v
		case strings.HasSuffix(s.name, "_count"):
			sr.count = &v
		default:
			t.Fatalf("%s: bare sample for histogram family %s", s.name, base)
		}
	}
	for base, byLabel := range hists {
		for key, sr := range byLabel {
			if sr.sum == nil || sr.count == nil {
				t.Fatalf("%s{%s}: missing _sum or _count", base, key)
			}
			inf, ok := sr.buckets["+Inf"]
			if !ok {
				t.Fatalf("%s{%s}: missing +Inf bucket", base, key)
			}
			if inf != *sr.count {
				t.Fatalf("%s{%s}: +Inf bucket %g != count %g", base, key, inf, *sr.count)
			}
			// Finite buckets sorted by bound must be non-decreasing and
			// bounded by +Inf.
			type bound struct {
				le  float64
				cum float64
			}
			var bounds []bound
			for le, cum := range sr.buckets {
				if le == "+Inf" {
					continue
				}
				f, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s{%s}: bad le %q", base, key, le)
				}
				bounds = append(bounds, bound{f, cum})
			}
			sort.Slice(bounds, func(i, j int) bool { return bounds[i].le < bounds[j].le })
			prev := -1.0
			for _, b := range bounds {
				if b.cum < prev {
					t.Fatalf("%s{%s}: non-monotonic buckets at le=%g", base, key, b.le)
				}
				if b.cum > inf {
					t.Fatalf("%s{%s}: bucket le=%g exceeds +Inf", base, key, b.le)
				}
				prev = b.cum
			}
		}
	}
}

// --- tests ---------------------------------------------------------------

func fullRegistry() *Registry {
	r := NewRegistry()
	r.Counter("server.events").Add(42)
	r.Counter("server.shard.0.busy_ns").Add(123456789)
	r.Gauge("server.outbox_depth").Set(7)
	h := r.Histogram("server.event_rtt_ns")
	for _, v := range []int64{0, 1, 3, 900, 1000, 1100, 1_000_000} {
		h.Observe(v)
	}
	f := r.Family("server.member", memberSchema())
	for _, inst := range []string{"pad-1", "draw \"2\"", `odd\name`} {
		e := f.Get(inst)
		e.Counter(0).Add(10)
		e.Counter(1).Add(2)
		e.Hist().Observe(5000)
		e.EWMA().Observe(5000)
	}
	return r
}

func TestWritePrometheusStrict(t *testing.T) {
	r := fullRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	samples := promCheck(t, buf.Bytes())
	if len(samples) == 0 {
		t.Fatal("no samples")
	}

	byKey := map[string]promSample{}
	for _, s := range samples {
		byKey[seriesKey(s)] = s
	}
	if s, ok := byKey["cosoft_server_events"]; !ok || s.value != 42 {
		t.Errorf("counter sample = %+v", s)
	}
	if s, ok := byKey["cosoft_server_outbox_depth_high_water"]; !ok || s.value != 7 {
		t.Errorf("high water sample = %+v", s)
	}
	if s, ok := byKey["cosoft_server_member_acks|member=pad-1"]; !ok || s.value != 10 {
		t.Errorf("family counter sample = %+v", s)
	}
	if _, ok := byKey[`cosoft_server_member_acks|member=draw "2"`]; !ok {
		t.Error("quoted label value must round-trip")
	}
	if _, ok := byKey[`cosoft_server_member_acks|member=odd\name`]; !ok {
		t.Error("backslash label value must round-trip")
	}
	// Histogram per-member series exist under the family.
	found := false
	for key := range byKey {
		if strings.HasPrefix(key, "cosoft_server_member_ack_ns_bucket|") {
			found = true
		}
	}
	if !found {
		t.Error("family histogram buckets missing")
	}
}

// TestWritePrometheusRoundTripsRegistry asserts every registered name shows
// up in the exposition (families via their schema sub-metrics).
func TestWritePrometheusRoundTripsRegistry(t *testing.T) {
	r := fullRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range r.Names() {
		if name == "server.member" {
			// Families export per-schema sub-metric names.
			for _, sub := range []string{"acks", "last_acks", "timeouts", "ack_ns", "ack_ewma_ns"} {
				if !strings.Contains(out, promName(name+"."+sub)) {
					t.Errorf("family sub-metric %s.%s missing from exposition", name, sub)
				}
			}
			continue
		}
		if !strings.Contains(out, promName(name)) {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
}

func TestWritePrometheusPrefixFilter(t *testing.T) {
	r := fullRegistry()
	r.Counter("client.rpcs").Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "server."); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "cosoft_client_rpcs") {
		t.Error("prefix filter leaked client metric")
	}
	if !strings.Contains(out, "cosoft_server_events") {
		t.Error("prefix filter dropped server metric")
	}
	promCheck(t, buf.Bytes())
}

func TestPromHistogramExactBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x")
	h.Observe(0)    // bucket 0, le="0"
	h.Observe(1)    // bucket 1, le="1"
	h.Observe(1000) // bucket 10, le="1023"
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`cosoft_x_bucket{le="0"} 1`,
		`cosoft_x_bucket{le="1"} 2`,
		`cosoft_x_bucket{le="1023"} 3`,
		`cosoft_x_bucket{le="+Inf"} 3`,
		`cosoft_x_sum 1001`,
		`cosoft_x_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	promCheck(t, buf.Bytes())
}

// fakeTB records a Fatalf instead of failing the real test, so the checker
// itself can be tested against malformed input. Fatalf must not return, so
// it exits the goroutine the checker runs on.
type fakeTB struct {
	testing.TB
	failed bool
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(string, ...any) {
	f.failed = true
	runtime.Goexit()
}

func TestPromCheckRejectsMalformed(t *testing.T) {
	bad := []string{
		"cosoft_x{le=\"0\" 1\n",                                         // unterminated label set
		"9bad_name 1\n",                                                 // bad metric name
		"cosoft_x{0bad=\"v\"} 1\n",                                      // bad label name
		"cosoft_x 1\ncosoft_x 1\n",                                      // duplicate series
		"cosoft_x 1\n# TYPE cosoft_x counter\n",                         // TYPE after sample
		"# TYPE cosoft_x widget\ncosoft_x 1\n",                          // unknown TYPE
		"cosoft_x notanumber\n",                                         // bad value
		"# TYPE cosoft_h histogram\ncosoft_h_sum 1\ncosoft_h_count 1\n", // no +Inf bucket
	}
	for i, data := range bad {
		ft := &fakeTB{TB: t}
		done := make(chan struct{})
		go func() {
			defer close(done)
			promCheck(ft, []byte(data))
		}()
		<-done
		if !ft.failed {
			t.Errorf("checker accepted malformed input %d: %q", i, data)
		}
	}
}
