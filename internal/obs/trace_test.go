package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTracerRecordsSpansWithLinks(t *testing.T) {
	tr := NewTracer(16)
	root := tr.StartRoot("client.event_send", "i1")
	if !root.Active() {
		t.Fatal("root span inactive on enabled tracer")
	}
	child := tr.StartSpan(root.Context(), "server.event_arrival", "server")
	pt := tr.Point(child.Context(), "server.exec_send", "server", "i2:/field")
	if !pt.Valid() {
		t.Fatal("point context invalid")
	}
	child.End()
	root.EndNote("ok")

	spans := tr.TraceSpans(root.Context().Trace)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["server.event_arrival"].Parent != byName["client.event_send"].ID {
		t.Error("arrival span not parented to send span")
	}
	if byName["server.exec_send"].Parent != byName["server.event_arrival"].ID {
		t.Error("exec_send span not parented to arrival span")
	}
	if got := byName["client.event_send"].Note; got != "ok" {
		t.Errorf("root note = %q, want ok", got)
	}
	if s := byName["server.exec_send"]; s.Start != s.End {
		t.Error("point span should be instantaneous")
	}
}

func TestTracerRingOverwritesOldest(t *testing.T) {
	tr := NewTracer(4)
	tc := tr.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Point(tc, "hop", "i", "")
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d spans, want 4", len(spans))
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := tr.NewTrace()
			for i := 0; i < 100; i++ {
				tr.Point(tc, "hop", "i", "")
				_ = tr.Spans()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 64 {
		t.Fatalf("got %d spans, want full ring of 64", got)
	}
}

// TestNilTracerZeroAlloc is the gate for the tracing-disabled hot path: a
// nil tracer must not allocate, read the clock, or generate IDs.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(100, func() {
		h := tr.StartSpan(TraceContext{Trace: 1, Span: 2}, "name", "inst")
		if h.Active() {
			h.SetNote("unreachable")
		}
		h.End()
		tr.Point(TraceContext{Trace: 1}, "p", "i", "")
		_ = tr.NewTrace()
		_ = tr.Spans()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %.1f times per op, want 0", allocs)
	}
}

// TestNilFlightZeroAlloc gates the disabled flight-recorder path. The entry
// literal itself stays on the stack; Record must not move it to the heap.
func TestNilFlightZeroAlloc(t *testing.T) {
	var f *FlightRecorder
	allocs := testing.AllocsPerRun(100, func() {
		f.Record("conn", FlightEntry{Dir: "recv", Type: "Event", Seq: 1})
		_ = f.Snapshot()
		_ = f.Conns()
	})
	if allocs != 0 {
		t.Fatalf("nil flight recorder allocated %.1f times per op, want 0", allocs)
	}
}

func TestInertSpanHandleSkipsClock(t *testing.T) {
	var tr *Tracer
	h := tr.StartRoot("x", "i")
	if h.Active() {
		t.Fatal("nil tracer handle active")
	}
	if h.Context().Valid() {
		t.Fatal("nil tracer handle has context")
	}
	h.End() // must not panic
}

func TestFlightRecorderWrapsPerConn(t *testing.T) {
	f := NewFlightRecorder(3)
	for i := 0; i < 7; i++ {
		f.Record("a", FlightEntry{Dir: "recv", Type: "Event", Seq: uint64(i)})
	}
	f.Record("b", FlightEntry{Dir: "send", Type: "OK", Seq: 99})
	snap := f.Snapshot()
	a := snap["a"]
	if len(a) != 3 {
		t.Fatalf("conn a kept %d entries, want 3", len(a))
	}
	for i, want := range []uint64{4, 5, 6} {
		if a[i].Seq != want {
			t.Errorf("entry %d seq = %d, want %d (oldest first)", i, a[i].Seq, want)
		}
	}
	if len(snap["b"]) != 1 || snap["b"][0].Type != "OK" {
		t.Errorf("conn b = %+v", snap["b"])
	}
	if got := f.Conns(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Conns() = %v", got)
	}
}

func TestFlightRecorderEvictsOldestConn(t *testing.T) {
	f := NewFlightRecorder(2)
	for i := 0; i < maxFlightConns+5; i++ {
		f.Record(string(rune('A'+i%26))+string(rune('a'+i/26)), FlightEntry{Time: int64(i + 1), Type: "Event"})
	}
	if got := len(f.Conns()); got > maxFlightConns {
		t.Fatalf("recorder retained %d conns, cap is %d", got, maxFlightConns)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(8)
	root := tr.StartRoot("client.event_send", "i1")
	tr.Point(root.Context(), "server.event_arrival", "server", "note-detail")
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	var xEvents, metaEvents int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			xEvents++
		case "M":
			metaEvents++
		}
	}
	if xEvents != 2 {
		t.Errorf("got %d complete events, want 2", xEvents)
	}
	if metaEvents != 2 { // one thread_name per instance (i1, server)
		t.Errorf("got %d metadata events, want 2", metaEvents)
	}
	if !strings.Contains(buf.String(), "note-detail") {
		t.Error("note missing from chrome trace args")
	}
}
