package obs

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

func memberSchema() FamilySchema {
	return FamilySchema{
		Counters: []string{"acks", "last_acks", "timeouts"},
		Hist:     "ack_ns",
		EWMA:     "ack_ewma_ns",
		Label:    "member",
	}
}

func TestFamilyNilSafety(t *testing.T) {
	var f *Family
	if f.Get("k") != nil || f.Peek("k") != nil {
		t.Fatal("nil family must hand out nil entries")
	}
	if f.Len() != 0 || f.Name() != "" {
		t.Error("nil family accessors")
	}
	if s := f.Snapshot(); s.Entries != nil {
		t.Error("nil family snapshot must be empty")
	}
	var e *FamilyEntry
	e.Counter(0).Inc()
	e.Hist().Observe(1)
	e.EWMA().Observe(1)
	if e.Key() != "" || e.Counter(0).Value() != 0 {
		t.Error("nil entry must no-op")
	}
	if Disabled.Family("x", memberSchema()) != nil {
		t.Fatal("Disabled must return a nil family")
	}
}

func TestFamilyEntryLifecycle(t *testing.T) {
	r := NewRegistry()
	f := r.Family("server.member", memberSchema())
	if r.Family("server.member", FamilySchema{}) != f {
		t.Fatal("same name must return same family")
	}
	e := f.Get("inst-1")
	if e == nil || e.Key() != "inst-1" {
		t.Fatalf("entry = %+v", e)
	}
	if f.Get("inst-1") != e {
		t.Fatal("same key must return same entry")
	}
	if f.Peek("inst-1") != e || f.Peek("ghost") != nil {
		t.Fatal("Peek must find live entries only")
	}
	e.Counter(0).Add(3)
	e.Counter(2).Inc()
	e.Counter(99).Inc() // out of schema range: no-op, no panic
	e.Hist().Observe(1000)
	e.EWMA().Observe(1000)

	snap := f.Snapshot()
	if snap.Label != "member" {
		t.Errorf("label = %q", snap.Label)
	}
	es, ok := snap.Entries["inst-1"]
	if !ok {
		t.Fatalf("entries = %v", snap.Entries)
	}
	if es.Counters["acks"] != 3 || es.Counters["last_acks"] != 0 || es.Counters["timeouts"] != 1 {
		t.Errorf("counters = %v", es.Counters)
	}
	if es.EWMA != 1000 || es.Hist.Count != 1 {
		t.Errorf("entry snapshot = %+v", es)
	}
}

func TestFamilyLRUEviction(t *testing.T) {
	f := NewRegistry().Family("f", FamilySchema{Cap: 3, Counters: []string{"n"}})
	a, b, c := f.Get("a"), f.Get("b"), f.Get("c")
	f.Get("a") // refresh a: LRU order is now b < c < a
	f.Get("d") // evicts b
	if f.Len() != 3 {
		t.Fatalf("len = %d", f.Len())
	}
	if f.Peek("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if f.Peek("a") != a || f.Peek("c") != c || f.Peek("d") == nil {
		t.Fatal("survivors wrong")
	}
	// An evicted entry still absorbs updates without crashing or
	// resurfacing — the bounded-cardinality bargain.
	b.Counter(0).Inc()
	if _, ok := f.Snapshot().Entries["b"]; ok {
		t.Fatal("evicted entry must not reappear in snapshots")
	}
	// Re-Get of an evicted key starts a fresh entry.
	if f.Get("b") == b {
		t.Fatal("re-created entry must be fresh")
	}
}

func TestFamilyDefaultCapAndLabel(t *testing.T) {
	f := NewRegistry().Family("f", FamilySchema{})
	if f.schema.Cap != DefaultFamilyCap || f.schema.Label != "key" {
		t.Errorf("defaults = %+v", f.schema)
	}
	for i := 0; i < DefaultFamilyCap+10; i++ {
		f.Get(strconv.Itoa(i))
	}
	if f.Len() != DefaultFamilyCap {
		t.Errorf("len = %d, want cap %d", f.Len(), DefaultFamilyCap)
	}
	if f.Peek("0") != nil || f.Peek("9") != nil {
		t.Error("coldest keys should have been evicted")
	}
	if f.Peek(strconv.Itoa(DefaultFamilyCap+9)) == nil {
		t.Error("hottest key must survive")
	}
}

func TestEWMA(t *testing.T) {
	var nilE *EWMA
	nilE.Observe(5)
	if nilE.Value() != 0 || nilE.Count() != 0 {
		t.Error("nil EWMA must no-op")
	}
	var e EWMA
	e.Observe(100)
	if e.Value() != 100 {
		t.Fatalf("first observation must seed directly, got %g", e.Value())
	}
	e.Observe(200)
	want := 100 + ewmaAlpha*(200-100)
	if math.Abs(e.Value()-want) > 1e-9 {
		t.Errorf("value = %g, want %g", e.Value(), want)
	}
	// A sustained shift converges on the new level.
	for i := 0; i < 200; i++ {
		e.Observe(1000)
	}
	if math.Abs(e.Value()-1000) > 1 {
		t.Errorf("value = %g, want ~1000", e.Value())
	}
	if e.Count() != 202 {
		t.Errorf("count = %d", e.Count())
	}
}

// TestFamilyConcurrent hammers Get/Peek/update/snapshot from many
// goroutines; run under -race it proves the entry sub-metrics stay safe to
// update through cached pointers while the LRU churns entries in and out.
func TestFamilyConcurrent(t *testing.T) {
	f := NewRegistry().Family("f", FamilySchema{
		Cap:      8,
		Counters: []string{"n"},
		Hist:     "lat",
		EWMA:     "avg",
	})
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cached := f.Get(keys[w%len(keys)])
			for j := 0; j < 2000; j++ {
				e := f.Get(keys[(w+j)%len(keys)])
				e.Counter(0).Inc()
				e.Hist().Observe(int64(j))
				e.EWMA().Observe(float64(j))
				cached.Counter(0).Inc() // may be evicted by now: must stay safe
				if j%100 == 0 {
					f.Snapshot()
					f.Peek(keys[j%len(keys)])
				}
			}
		}(w)
	}
	wg.Wait()
	if f.Len() > 8 {
		t.Errorf("len = %d exceeds cap", f.Len())
	}
}

// BenchmarkDisabledFamily gates the disabled path: resolving and updating
// entries through a nil family must not allocate.
func BenchmarkDisabledFamily(b *testing.B) {
	var f *Family
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := f.Get("inst-1")
		e.Counter(0).Inc()
		e.Hist().Observe(int64(i))
		e.EWMA().Observe(float64(i))
	}
}

func TestDisabledFamilyZeroAlloc(t *testing.T) {
	var f *Family
	allocs := testing.AllocsPerRun(200, func() {
		e := f.Get("inst-1")
		e.Counter(0).Inc()
		e.Counter(1).Inc()
		e.Hist().Observe(1)
		e.EWMA().Observe(1)
	})
	if allocs != 0 {
		t.Fatalf("disabled family path allocates %g/op, want 0", allocs)
	}
}
