package attr

import "testing"

// FuzzDecodeValue asserts the value decoder never panics and that anything
// it accepts re-encodes to a decodable value.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range allSampleValues() {
		f.Add(AppendValue(nil, v))
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindString), 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, _, err := DecodeValue(data)
		if err != nil {
			return
		}
		again, _, err := DecodeValue(AppendValue(nil, v))
		if err != nil {
			t.Fatalf("re-decode of accepted value failed: %v", err)
		}
		if !again.Equal(v) {
			t.Fatalf("re-encode changed the value: %v vs %v", v, again)
		}
	})
}

// FuzzDecodeSet mirrors FuzzDecodeValue for attribute sets.
func FuzzDecodeSet(f *testing.F) {
	f.Add(AppendSet(nil, Set{"a": Int(1), "b": String("x")}))
	f.Add([]byte{0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, _, err := DecodeSet(data)
		if err != nil {
			return
		}
		again, _, err := DecodeSet(AppendSet(nil, s))
		if err != nil {
			t.Fatalf("re-decode of accepted set failed: %v", err)
		}
		if !again.Equal(s) {
			t.Fatal("re-encode changed the set")
		}
	})
}
