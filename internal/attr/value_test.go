package attr

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInvalid:    "invalid",
		KindInt:        "int",
		KindFloat:      "float",
		KindBool:       "bool",
		KindString:     "string",
		KindStringList: "stringlist",
		KindColor:      "color",
		KindPointList:  "pointlist",
		Kind(99):       "kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"int", Int(42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"bool", Bool(true), KindBool},
		{"string", String("hi"), KindString},
		{"color", Color("#ff0000"), KindColor},
		{"stringlist", StringList("a", "b"), KindStringList},
		{"pointlist", PointList(Point{1, 2}), KindPointList},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Fatalf("kind = %v, want %v", tt.v.Kind(), tt.kind)
			}
			if !tt.v.IsValid() {
				t.Fatal("expected valid")
			}
		})
	}
	if (Value{}).IsValid() {
		t.Error("zero Value must be invalid")
	}
}

func TestAsInt(t *testing.T) {
	if got := Int(7).AsInt(); got != 7 {
		t.Errorf("Int(7).AsInt() = %d", got)
	}
	if got := Float(2.9).AsInt(); got != 2 {
		t.Errorf("Float(2.9).AsInt() = %d, want 2", got)
	}
	if got := Bool(true).AsInt(); got != 1 {
		t.Errorf("Bool(true).AsInt() = %d, want 1", got)
	}
	if got := String("x").AsInt(); got != 0 {
		t.Errorf("String.AsInt() = %d, want 0", got)
	}
}

func TestAsFloat(t *testing.T) {
	if got := Float(1.25).AsFloat(); got != 1.25 {
		t.Errorf("AsFloat = %v", got)
	}
	if got := Int(3).AsFloat(); got != 3 {
		t.Errorf("Int(3).AsFloat() = %v", got)
	}
	if got := String("x").AsFloat(); got != 0 {
		t.Errorf("String.AsFloat() = %v", got)
	}
}

func TestAsBool(t *testing.T) {
	truthy := []Value{Bool(true), Int(5), Float(0.1), String("x"), Color("red"),
		StringList("a"), PointList(Point{})}
	for _, v := range truthy {
		if !v.AsBool() {
			t.Errorf("%v should be truthy", v)
		}
	}
	falsy := []Value{{}, Bool(false), Int(0), Float(0), String(""), StringList(), PointList()}
	for _, v := range falsy {
		if v.AsBool() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestAsString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{String("hello"), "hello"},
		{Color("blue"), "blue"},
		{Int(-4), "-4"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Float(0.5), "0.5"},
		{StringList("a", "b"), "a,b"},
		{Value{}, ""},
	}
	for _, c := range cases {
		if got := c.v.AsString(); got != c.want {
			t.Errorf("%#v.AsString() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestListAccessorsCopy(t *testing.T) {
	v := StringList("a", "b")
	got := v.AsStringList()
	got[0] = "mutated"
	if v.AsStringList()[0] != "a" {
		t.Error("AsStringList must return a copy")
	}
	p := PointList(Point{1, 2})
	pts := p.AsPointList()
	pts[0].X = 99
	if p.AsPointList()[0].X != 1 {
		t.Error("AsPointList must return a copy")
	}
	if Int(1).AsStringList() != nil || Int(1).AsPointList() != nil {
		t.Error("wrong-kind list accessors must return nil")
	}
}

func TestEqual(t *testing.T) {
	eq := []struct{ a, b Value }{
		{Int(1), Int(1)},
		{Bool(true), Bool(true)},
		{Float(math.NaN()), Float(math.NaN())},
		{String("x"), String("x")},
		{StringList("a", "b"), StringList("a", "b")},
		{PointList(Point{1, 2}), PointList(Point{1, 2})},
		{Value{}, Value{}},
	}
	for _, c := range eq {
		if !c.a.Equal(c.b) {
			t.Errorf("%v should equal %v", c.a, c.b)
		}
	}
	ne := []struct{ a, b Value }{
		{Int(1), Int(2)},
		{Int(1), Float(1)}, // no implicit conversion
		{String("x"), Color("x")},
		{StringList("a"), StringList("a", "b")},
		{StringList("a"), StringList("b")},
		{PointList(Point{1, 2}), PointList(Point{2, 1})},
		{PointList(Point{1, 2}), PointList()},
		{Value{}, Int(0)},
	}
	for _, c := range ne {
		if c.a.Equal(c.b) {
			t.Errorf("%v should not equal %v", c.a, c.b)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := StringList("a")
	cl := orig.Clone()
	if !cl.Equal(orig) {
		t.Fatal("clone must be equal")
	}
	// Mutate the clone's backing storage via accessor copy round-trip: the
	// accessor copies, so instead check the clone shares no storage by
	// comparing after rebuilding.
	if &orig == &cl {
		t.Fatal("clone must be a distinct value")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Value{}, "<invalid>"},
		{String("a"), `"a"`},
		{Color("red"), "color:red"},
		{StringList("a", "b"), "[a b]"},
		{PointList(Point{1, 2}, Point{3, 4}), "[(1,2) (3,4)]"},
		{Int(7), "7"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet()
	s.Put("x", Int(1))
	s.Put("y", String("a"))
	if !s.Has("x") || s.Has("z") {
		t.Error("Has misbehaves")
	}
	if got := s.Get("x"); !got.Equal(Int(1)) {
		t.Errorf("Get = %v", got)
	}
	if got := s.Get("missing"); got.IsValid() {
		t.Error("missing should be invalid")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Names = %v", got)
	}
	s.Delete("x")
	if s.Has("x") {
		t.Error("Delete failed")
	}
}

func TestSetCloneProjectMerge(t *testing.T) {
	s := Set{"a": Int(1), "b": String("s"), "c": Bool(true)}
	cl := s.Clone()
	cl.Put("a", Int(2))
	if s.Get("a").AsInt() != 1 {
		t.Error("Clone must not alias")
	}
	p := s.Project([]string{"a", "c", "missing"})
	if len(p) != 2 || !p.Get("a").Equal(Int(1)) || !p.Get("c").Equal(Bool(true)) {
		t.Errorf("Project = %v", p)
	}
	dst := Set{"a": Int(0), "z": Int(9)}
	dst.Merge(p)
	if !dst.Get("a").Equal(Int(1)) || !dst.Get("z").Equal(Int(9)) {
		t.Errorf("Merge = %v", dst)
	}
}

func TestSetEqualAndDiff(t *testing.T) {
	a := Set{"x": Int(1), "y": String("v")}
	b := Set{"x": Int(1), "y": String("v")}
	if !a.Equal(b) {
		t.Error("equal sets reported unequal")
	}
	b.Put("y", String("w"))
	if a.Equal(b) {
		t.Error("unequal sets reported equal")
	}
	d := a.Diff(b)
	if len(d) != 1 || !d.Get("y").Equal(String("w")) {
		t.Errorf("Diff = %v", d)
	}
	a.Merge(d)
	if !a.Equal(b) {
		t.Error("Merge(Diff) must reconcile")
	}
	if len(a.Diff(a)) != 0 {
		t.Error("Diff with self must be empty")
	}
}

func TestSetString(t *testing.T) {
	s := Set{"b": Int(2), "a": Int(1)}
	if got := s.String(); got != "{a=1 b=2}" {
		t.Errorf("String = %q", got)
	}
}

// propDiffMergeReconciles: for random sets a, b: a.Merge(a.Diff(b)) makes a
// agree with b on all of b's names.
func TestPropDiffMergeReconciles(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		a, b := NewSet(), NewSet()
		for _, k := range aKeys {
			a.Put(string(rune('a'+k%16)), Int(int64(k)))
		}
		for _, k := range bKeys {
			b.Put(string(rune('a'+k%16)), Int(int64(k)*7))
		}
		a.Merge(a.Diff(b))
		for n, v := range b {
			if !a.Get(n).Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
