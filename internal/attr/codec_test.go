package attr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allSampleValues() []Value {
	return []Value{
		{},
		Int(0), Int(1), Int(-1), Int(math.MaxInt64), Int(math.MinInt64),
		Float(0), Float(-2.5), Float(math.Inf(1)), Float(math.NaN()),
		Bool(true), Bool(false),
		String(""), String("hello"), String("日本語"),
		Color("#00ff00"),
		StringList(), StringList("a"), StringList("a", "", "c"),
		PointList(), PointList(Point{0, 0}), PointList(Point{-5, 7}, Point{math.MaxInt32, math.MinInt32}),
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	for _, v := range allSampleValues() {
		buf := AppendValue(nil, v)
		got, rest, err := DecodeValue(buf)
		if err != nil {
			t.Errorf("decode %v: %v", v, err)
			continue
		}
		if len(rest) != 0 {
			t.Errorf("decode %v: %d leftover bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueCodecConcatenated(t *testing.T) {
	vals := allSampleValues()
	var buf []byte
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	for _, want := range vals {
		var got Value
		var err error
		got, buf, err = DecodeValue(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !got.Equal(want) {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d leftover bytes", len(buf))
	}
}

func TestSetCodecRoundTrip(t *testing.T) {
	s := Set{
		"label":  String("OK"),
		"width":  Int(100),
		"active": Bool(true),
		"scale":  Float(1.5),
		"items":  StringList("x", "y"),
		"stroke": PointList(Point{1, 1}, Point{2, 2}),
		"fg":     Color("black"),
	}
	buf := AppendSet(nil, s)
	got, rest, err := DecodeSet(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if !got.Equal(s) {
		t.Fatalf("round trip mismatch: %v vs %v", got, s)
	}
}

func TestSetEncodingDeterministic(t *testing.T) {
	s := Set{"b": Int(1), "a": Int(2), "c": String("x")}
	first := AppendSet(nil, s)
	for i := 0; i < 10; i++ {
		if string(AppendSet(nil, s)) != string(first) {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindFloat)},              // short float
		{byte(KindString), 0xff, 0xff}, // bad/overlong length
		{byte(KindString), 5, 'a'},     // short string
		{99},                           // unknown kind
		{byte(KindStringList), 3, 1},   // truncated list
		{byte(KindPointList), 2, 1},    // truncated points
		{byte(KindInt)},                // missing varint
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, _, err := DecodeSet(nil); err == nil {
		t.Error("DecodeSet(nil): expected error")
	}
	if _, _, err := DecodeSet([]byte{2, 1, 'a'}); err == nil {
		t.Error("truncated set: expected error")
	}
}

func TestDecodeCountLimit(t *testing.T) {
	// A huge declared string length must be rejected before allocation.
	buf := []byte{byte(KindString), 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, _, err := DecodeValue(buf); err == nil {
		t.Fatal("expected limit error")
	}
}

func randomValue(r *rand.Rand) Value {
	switch r.Intn(7) {
	case 0:
		return Int(r.Int63() - r.Int63())
	case 1:
		return Float(r.NormFloat64())
	case 2:
		return Bool(r.Intn(2) == 0)
	case 3:
		return String(randomString(r))
	case 4:
		return Color(randomString(r))
	case 5:
		n := r.Intn(5)
		list := make([]string, n)
		for i := range list {
			list[i] = randomString(r)
		}
		return StringList(list...)
	default:
		n := r.Intn(5)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: int32(r.Int31() - r.Int31()), Y: int32(r.Int31() - r.Int31())}
		}
		return PointList(pts...)
	}
}

func randomString(r *rand.Rand) string {
	b := make([]byte, r.Intn(12))
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return string(b)
}

// Property: every randomly generated value round-trips through the codec.
func TestPropValueCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r)
		got, rest, err := DecodeValue(AppendValue(nil, v))
		return err == nil && len(rest) == 0 && got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: every randomly generated set round-trips through the codec.
func TestPropSetCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSet()
		for i, n := 0, r.Intn(8); i < n; i++ {
			s.Put(randomString(r), randomValue(r))
		}
		got, rest, err := DecodeSet(AppendSet(nil, s))
		return err == nil && len(rest) == 0 && got.Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics (it may error).
func TestPropDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		DecodeValue(data)
		DecodeSet(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkValueCodec(b *testing.B) {
	v := StringList("alpha", "beta", "gamma", "delta")
	buf := AppendValue(nil, v)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendValue(buf[:0], v)
		if _, _, err := DecodeValue(buf); err != nil {
			b.Fatal(err)
		}
	}
}
