// Package attr implements the typed attribute system used by the widget
// toolkit and the coupling protocol.
//
// Every user-interface object carries a set of named attributes. The paper's
// synchronization-by-state mechanism transfers "relevant attributes" between
// coupled objects, so attribute values need a stable equality, deep cloning,
// and a compact binary encoding for the wire protocol.
package attr

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates the attribute value types supported by the toolkit.
type Kind uint8

// Supported attribute kinds. KindInvalid is the zero value and marks an
// absent or uninitialized attribute.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindStringList
	KindColor
	KindPointList
)

var kindNames = map[Kind]string{
	KindInvalid:    "invalid",
	KindInt:        "int",
	KindFloat:      "float",
	KindBool:       "bool",
	KindString:     "string",
	KindStringList: "stringlist",
	KindColor:      "color",
	KindPointList:  "pointlist",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Point is a 2D integer coordinate used by canvas-like widgets.
type Point struct {
	X, Y int32
}

// Value is a dynamically typed attribute value. The zero Value has
// KindInvalid and compares equal only to other invalid values.
type Value struct {
	kind   Kind
	num    int64   // KindInt, KindBool (0/1)
	flt    float64 // KindFloat
	str    string  // KindString, KindColor
	list   []string
	points []Point
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, flt: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Color returns a color value. Colors are symbolic names or #rrggbb strings;
// the toolkit does not interpret them beyond equality.
func Color(v string) Value { return Value{kind: KindColor, str: v} }

// StringList returns a list-of-strings value. The slice is copied.
func StringList(v ...string) Value {
	cp := make([]string, len(v))
	copy(cp, v)
	return Value{kind: KindStringList, list: cp}
}

// PointList returns a list-of-points value. The slice is copied.
func PointList(v ...Point) Value {
	cp := make([]Point, len(v))
	copy(cp, v)
	return Value{kind: KindPointList, points: cp}
}

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value holds a real attribute value.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It is 0 for non-numeric kinds.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt, KindBool:
		return v.num
	case KindFloat:
		return int64(v.flt)
	default:
		return 0
	}
}

// AsFloat returns the floating-point payload, converting integers.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.flt
	case KindInt, KindBool:
		return float64(v.num)
	default:
		return 0
	}
}

// AsBool returns the boolean payload. Non-bool kinds report true when
// non-zero / non-empty.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.num != 0
	case KindFloat:
		return v.flt != 0
	case KindString, KindColor:
		return v.str != ""
	case KindStringList:
		return len(v.list) > 0
	case KindPointList:
		return len(v.points) > 0
	default:
		return false
	}
}

// AsString returns the string payload for string-like kinds and a formatted
// representation otherwise.
func (v Value) AsString() string {
	switch v.kind {
	case KindString, KindColor:
		return v.str
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindBool:
		if v.num != 0 {
			return "true"
		}
		return "false"
	case KindFloat:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	case KindStringList:
		return strings.Join(v.list, ",")
	default:
		return ""
	}
}

// AsStringList returns a copy of the string-list payload.
func (v Value) AsStringList() []string {
	if v.kind != KindStringList {
		return nil
	}
	cp := make([]string, len(v.list))
	copy(cp, v.list)
	return cp
}

// AsPointList returns a copy of the point-list payload.
func (v Value) AsPointList() []Point {
	if v.kind != KindPointList {
		return nil
	}
	cp := make([]Point, len(v.points))
	copy(cp, v.points)
	return cp
}

// Equal reports deep equality of two values. Values of different kinds are
// never equal (there is no implicit numeric conversion: the coupling
// protocol must treat an int 1 and a float 1.0 as distinct states).
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindInvalid:
		return true
	case KindInt, KindBool:
		return v.num == o.num
	case KindFloat:
		return v.flt == o.flt || (math.IsNaN(v.flt) && math.IsNaN(o.flt))
	case KindString, KindColor:
		return v.str == o.str
	case KindStringList:
		if len(v.list) != len(o.list) {
			return false
		}
		for i := range v.list {
			if v.list[i] != o.list[i] {
				return false
			}
		}
		return true
	case KindPointList:
		if len(v.points) != len(o.points) {
			return false
		}
		for i := range v.points {
			if v.points[i] != o.points[i] {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Clone returns a deep copy of the value. Values are immutable through the
// accessor API, but Clone guards against aliasing when a Value's backing
// slices were produced by decoding.
func (v Value) Clone() Value {
	switch v.kind {
	case KindStringList:
		return StringList(v.list...)
	case KindPointList:
		return PointList(v.points...)
	default:
		return v
	}
}

// String implements fmt.Stringer with a kind-tagged representation.
func (v Value) String() string {
	switch v.kind {
	case KindInvalid:
		return "<invalid>"
	case KindColor:
		return "color:" + v.str
	case KindString:
		return strconv.Quote(v.str)
	case KindStringList:
		return "[" + strings.Join(v.list, " ") + "]"
	case KindPointList:
		parts := make([]string, len(v.points))
		for i, p := range v.points {
			parts[i] = fmt.Sprintf("(%d,%d)", p.X, p.Y)
		}
		return "[" + strings.Join(parts, " ") + "]"
	default:
		return v.AsString()
	}
}

// Set is a named collection of attribute values — the "state of a UI object"
// in the paper's terminology (§3: "The state of UI object is the set of
// attribute-value pairs of this object").
type Set map[string]Value

// NewSet returns an empty attribute set.
func NewSet() Set { return make(Set) }

// Get returns the value for name; the zero Value if absent.
func (s Set) Get(name string) Value { return s[name] }

// Has reports whether name is present.
func (s Set) Has(name string) bool {
	_, ok := s[name]
	return ok
}

// Put stores a value under name.
func (s Set) Put(name string, v Value) { s[name] = v }

// Delete removes name from the set.
func (s Set) Delete(name string) { delete(s, name) }

// Names returns the attribute names in sorted order.
func (s Set) Names() []string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	cp := make(Set, len(s))
	for n, v := range s {
		cp[n] = v.Clone()
	}
	return cp
}

// Project returns a copy of the set restricted to the given names. Missing
// names are skipped. This implements the "relevant attributes" projection
// used when copying or coupling UI state.
func (s Set) Project(names []string) Set {
	cp := make(Set, len(names))
	for _, n := range names {
		if v, ok := s[n]; ok {
			cp[n] = v.Clone()
		}
	}
	return cp
}

// Merge copies every entry of o into s, overwriting existing names.
func (s Set) Merge(o Set) {
	for n, v := range o {
		s[n] = v.Clone()
	}
}

// Equal reports whether two sets hold the same names with equal values.
func (s Set) Equal(o Set) bool {
	if len(s) != len(o) {
		return false
	}
	for n, v := range s {
		ov, ok := o[n]
		if !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Diff returns the subset of o whose values differ from (or are absent in)
// s. Applying the result to s with Merge yields a set that agrees with o on
// all of o's names.
func (s Set) Diff(o Set) Set {
	d := make(Set)
	for n, ov := range o {
		if sv, ok := s[n]; !ok || !sv.Equal(ov) {
			d[n] = ov.Clone()
		}
	}
	return d
}

// String renders the set deterministically (sorted by name).
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range s.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", n, s[n])
	}
	b.WriteByte('}')
	return b.String()
}
