package attr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoding limits. Frames above these sizes are rejected rather than
// allocated, so a corrupt length prefix cannot exhaust memory.
const (
	maxStringLen = 1 << 24 // 16 MiB per string
	maxListLen   = 1 << 20 // 1M elements per list
)

// ErrCorrupt is returned when decoding meets malformed input.
var ErrCorrupt = errors.New("attr: corrupt encoding")

// AppendValue appends the binary encoding of v to buf and returns the
// extended slice. The encoding is: 1 byte kind, then a kind-specific payload
// using unsigned varints for lengths and fixed little-endian for numbers.
func AppendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindInvalid:
	case KindInt, KindBool:
		buf = binary.AppendVarint(buf, v.num)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.flt))
	case KindString, KindColor:
		buf = appendString(buf, v.str)
	case KindStringList:
		buf = binary.AppendUvarint(buf, uint64(len(v.list)))
		for _, s := range v.list {
			buf = appendString(buf, s)
		}
	case KindPointList:
		buf = binary.AppendUvarint(buf, uint64(len(v.points)))
		for _, p := range v.points {
			buf = binary.AppendVarint(buf, int64(p.X))
			buf = binary.AppendVarint(buf, int64(p.Y))
		}
	}
	return buf
}

// DecodeValue decodes one value from buf, returning the value and the
// remaining bytes.
func DecodeValue(buf []byte) (Value, []byte, error) {
	if len(buf) == 0 {
		return Value{}, nil, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindInvalid:
		return Value{}, buf, nil
	case KindInt, KindBool:
		n, rest, err := decodeVarint(buf)
		if err != nil {
			return Value{}, nil, err
		}
		if kind == KindBool && n != 0 {
			n = 1
		}
		return Value{kind: kind, num: n}, rest, nil
	case KindFloat:
		if len(buf) < 8 {
			return Value{}, nil, fmt.Errorf("%w: short float", ErrCorrupt)
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return Value{kind: KindFloat, flt: f}, buf[8:], nil
	case KindString, KindColor:
		s, rest, err := decodeString(buf)
		if err != nil {
			return Value{}, nil, err
		}
		return Value{kind: kind, str: s}, rest, nil
	case KindStringList:
		n, rest, err := decodeCount(buf, maxListLen)
		if err != nil {
			return Value{}, nil, err
		}
		list := make([]string, n)
		for i := range list {
			list[i], rest, err = decodeString(rest)
			if err != nil {
				return Value{}, nil, err
			}
		}
		return Value{kind: KindStringList, list: list}, rest, nil
	case KindPointList:
		n, rest, err := decodeCount(buf, maxListLen)
		if err != nil {
			return Value{}, nil, err
		}
		points := make([]Point, n)
		for i := range points {
			var x, y int64
			x, rest, err = decodeVarint(rest)
			if err != nil {
				return Value{}, nil, err
			}
			y, rest, err = decodeVarint(rest)
			if err != nil {
				return Value{}, nil, err
			}
			points[i] = Point{X: int32(x), Y: int32(y)}
		}
		return Value{kind: KindPointList, points: points}, rest, nil
	default:
		return Value{}, nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

// AppendSet appends the binary encoding of an attribute set. Entries are
// written in sorted name order so the encoding is deterministic.
func AppendSet(buf []byte, s Set) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	for _, name := range s.Names() {
		buf = appendString(buf, name)
		buf = AppendValue(buf, s[name])
	}
	return buf
}

// DecodeSet decodes an attribute set from buf, returning the set and the
// remaining bytes.
func DecodeSet(buf []byte) (Set, []byte, error) {
	n, rest, err := decodeCount(buf, maxListLen)
	if err != nil {
		return nil, nil, err
	}
	s := make(Set, n)
	for i := 0; i < n; i++ {
		var name string
		name, rest, err = decodeString(rest)
		if err != nil {
			return nil, nil, err
		}
		var v Value
		v, rest, err = DecodeValue(rest)
		if err != nil {
			return nil, nil, err
		}
		s[name] = v
	}
	return s, rest, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, rest, err := decodeCount(buf, maxStringLen)
	if err != nil {
		return "", nil, err
	}
	if len(rest) < n {
		return "", nil, fmt.Errorf("%w: short string (%d < %d)", ErrCorrupt, len(rest), n)
	}
	return string(rest[:n]), rest[n:], nil
}

func decodeVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, buf[n:], nil
}

func decodeCount(buf []byte, limit int) (int, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	if v > uint64(limit) {
		return 0, nil, fmt.Errorf("%w: count %d exceeds limit %d", ErrCorrupt, v, limit)
	}
	return int(v), buf[n:], nil
}
