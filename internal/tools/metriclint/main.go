// Command metriclint cross-checks the metric names registered in code
// against the README's metric-name table, so the two cannot drift: every
// registered metric must have a documented row, and every documented row must
// correspond to a registration. It is part of `make verify`.
//
// Registrations are found by scanning non-test Go files for
// Counter/Gauge/Histogram/Family calls whose name argument is a string
// literal or an fmt.Sprintf with a literal format (the `%d` shard index
// renders as the README's `<i>` placeholder). A Family registration expands
// to one name per schema sub-metric (`<family>.<counter>`, `<family>.<hist>`,
// `<family>.<ewma>`). Calls with non-literal name arguments — e.g. index-
// addressed FamilyEntry.Counter(i) lookups — are not registrations and are
// ignored. internal/obs (the metrics layer itself) and internal/tools are
// skipped.
//
// Usage: metriclint [-root .] [-readme README.md]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to scan")
	readme := flag.String("readme", "README.md", "README path relative to -root")
	flag.Parse()

	registered, err := scanRegistrations(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}
	documented, err := scanReadme(filepath.Join(*root, *readme))
	if err != nil {
		fmt.Fprintf(os.Stderr, "metriclint: %v\n", err)
		os.Exit(1)
	}

	fail := false
	for _, name := range sorted(registered) {
		if _, ok := documented[name]; !ok {
			fmt.Printf("metriclint: %s: metric %q is registered but missing from the README metric table\n",
				registered[name], name)
			fail = true
		}
	}
	for _, name := range sorted(documented) {
		if _, ok := registered[name]; !ok {
			fmt.Printf("metriclint: README documents metric %q but nothing registers it\n", name)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("metriclint: %d metrics registered, all documented\n", len(registered))
}

// scanRegistrations walks root for non-test Go files and collects every
// metric name registered through a Counter/Gauge/Histogram/Family call,
// mapped to the "file:line" of its registration site.
func scanRegistrations(root string) (map[string]string, error) {
	names := make(map[string]string)
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		if d.IsDir() {
			switch rel {
			case ".git", "internal/obs", "internal/tools":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return fmt.Errorf("parse %s: %w", rel, err)
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			kind := sel.Sel.Name
			if kind != "Counter" && kind != "Gauge" && kind != "Histogram" && kind != "Family" {
				return true
			}
			name, ok := literalName(call.Args[0])
			if !ok {
				return true // non-literal name arg: a lookup, not a registration
			}
			site := fmt.Sprintf("%s:%d", rel, fset.Position(call.Pos()).Line)
			if kind == "Family" && len(call.Args) >= 2 {
				for _, sub := range familySubNames(call.Args[1]) {
					names[name+"."+sub] = site
				}
				return true
			}
			names[name] = site
			return true
		})
		return nil
	})
	return names, err
}

// literalName resolves a metric-name argument to its documented form: a
// plain string literal, or an fmt.Sprintf whose format is a literal — its
// verbs render as the README's `<i>` placeholder.
func literalName(arg ast.Expr) (string, bool) {
	if s, ok := stringLit(arg); ok {
		return s, true
	}
	call, ok := arg.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" || len(call.Args) == 0 {
		return "", false
	}
	format, ok := stringLit(call.Args[0])
	if !ok {
		return "", false
	}
	return regexp.MustCompile(`%[a-zA-Z]`).ReplaceAllString(format, "<i>"), true
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// familySubNames extracts the sub-metric names from a FamilySchema composite
// literal: every Counters element plus the Hist and EWMA names.
func familySubNames(schema ast.Expr) []string {
	lit, ok := schema.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var subs []string
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Counters":
			if arr, ok := kv.Value.(*ast.CompositeLit); ok {
				for _, c := range arr.Elts {
					if s, ok := stringLit(c); ok {
						subs = append(subs, s)
					}
				}
			}
		case "Hist", "EWMA":
			if s, ok := stringLit(kv.Value); ok && s != "" {
				subs = append(subs, s)
			}
		}
	}
	return subs
}

// scanReadme collects the metric names from the README's metric table: rows
// of the form "| `name` | kind | ..." whose kind cell names a metric kind
// (the span-name table and other tables fail that filter).
func scanReadme(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rowRe := regexp.MustCompile("^\\|\\s*`([^`]+)`\\s*\\|\\s*([^|]+)\\|")
	kinds := map[string]bool{"counter": true, "gauge": true, "histogram": true, "family": true}
	names := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		m := rowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		kind := strings.Fields(strings.TrimSpace(m[2]))
		if len(kind) == 0 || !kinds[kind[0]] {
			continue
		}
		names[m[1]] = true
	}
	return names, nil
}

func sorted[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
