package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanRegistrations(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "srv/srv.go", `package srv
import "fmt"
func setup(m sink) {
	m.Counter("server.events")
	m.Gauge(fmt.Sprintf("server.shard.%d.queue_depth", 3))
	m.Histogram("server.event_rtt_ns")
	m.Family("server.member", Schema{
		Counters: []string{"acks", "timeouts"},
		Hist:     "ack_ns",
		EWMA:     "ack_ewma_ns",
		Label:    "member",
	})
	e.Counter(idx).Inc() // index lookup, not a registration
}
`)
	write(t, dir, "srv/srv_test.go", `package srv
func f(m sink) { m.Counter("test.only") }
`)
	write(t, dir, "internal/obs/obs.go", `package obs
func g(m sink) { m.Counter("obs.internal") }
`)
	got, err := scanRegistrations(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"server.events",
		"server.shard.<i>.queue_depth",
		"server.event_rtt_ns",
		"server.member.acks",
		"server.member.timeouts",
		"server.member.ack_ns",
		"server.member.ack_ewma_ns",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d names %v, want %d", len(got), sorted(got), len(want))
	}
	for _, n := range want {
		if _, ok := got[n]; !ok {
			t.Errorf("missing %q (got %v)", n, sorted(got))
		}
	}
}

func TestScanReadme(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "README.md", `
| Name | Kind | Meaning |
|---|---|---|
| `+"`server.events`"+` | counter | accepted events |
| `+"`server.member.ack_ns`"+` | family histogram | per-member ack latency |

| Span | Recorded by | Covers |
|---|---|---|
| `+"`client.event_send`"+` | origin instance | full round trip |
`)
	got, err := scanReadme(filepath.Join(dir, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got["server.events"] || !got["server.member.ack_ns"] {
		t.Fatalf("got %v", sorted(got))
	}
	if got["client.event_send"] {
		t.Fatal("span table row leaked into the metric set")
	}
}

// TestRepoInSync runs the real check against this repository, so the lint
// failing is reproducible as a plain test failure too.
func TestRepoInSync(t *testing.T) {
	root := "../../.."
	registered, err := scanRegistrations(root)
	if err != nil {
		t.Fatal(err)
	}
	documented, err := scanReadme(filepath.Join(root, "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for name, site := range registered {
		if !documented[name] {
			t.Errorf("%s: metric %q not in README table", site, name)
		}
	}
	for name := range documented {
		if _, ok := registered[name]; !ok {
			t.Errorf("README documents %q but nothing registers it", name)
		}
	}
}
