// Package server implements the central controller of the COSOFT
// architecture (Figure 4): a single coordination point that holds the four
// server databases — access permissions, registration records, historical UI
// states, and the lock table — and implements centralized-control ordering
// of events ("users send their requests for operations to the controller,
// and then the controller broadcasts these operations to all users", §2.1).
//
// Global state (registry, couple graph, sessions, client map) is mutated by
// one goroutine fed through a request channel, so event ordering is the
// arrival order at the loop — the serialization guarantee the floor-control
// design relies on. Group-scoped state (locks, histories, pending events)
// can additionally be partitioned across per-group shard loops (see
// shard.go); with one shard the server is exactly the classic single loop.
package server

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/hist"
	"cosoft/internal/lock"
	"cosoft/internal/obs"
	"cosoft/internal/perm"
	"cosoft/internal/registry"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Classes is the widget class registry used for compatibility checks.
	// Nil means the standard class set.
	Classes *widget.ClassRegistry
	// Correspondences holds declared cross-class attribute mappings. Nil
	// means none (same-class compatibility only).
	Correspondences *compat.Correspondences
	// HistoryDepth bounds the per-object historical-state stacks
	// (0 = default).
	HistoryDepth int
	// OrderedLocking selects the deterministic-order group-locking variant
	// instead of the paper's sequential algorithm (ablation switch).
	OrderedLocking bool
	// Shards is the number of per-group state loops. Group-scoped state —
	// the lock table, the historical-states database, and the pending-event
	// wait sets — is partitioned across them by coupling group, so disjoint
	// groups serialize on different cores (see shard.go). 0 or 1 selects the
	// classic single serialized loop.
	Shards int
	// Heartbeat is the liveness probe interval: the server pings every
	// connection this often and declares an instance dead after
	// LivenessTimeout of silence (its locks are released and its pending
	// events resolved, so coupling groups never wedge on a vanished peer).
	// Zero disables liveness tracking.
	Heartbeat time.Duration
	// LivenessTimeout is the silence span after which a connection is
	// declared dead. Zero selects 3×Heartbeat.
	LivenessTimeout time.Duration
	// EventDeadline bounds how long a broadcast event may wait for Exec
	// acknowledgements. On expiry the remaining waiters are dropped from
	// the wait set and the group unlocks (counter server.event_timeouts,
	// span server.event_timeout). Zero disables event deadlines.
	EventDeadline time.Duration
	// OutboxLimit is the per-client outbox high-water mark: a client whose
	// backlog stays above it for OutboxGrace is evicted (counter
	// server.evictions) instead of stalling group broadcasts. Zero keeps
	// outboxes unbounded.
	OutboxLimit int
	// OutboxGrace is how long a backlog may exceed OutboxLimit before the
	// client is evicted. Zero selects one second.
	OutboxGrace time.Duration
	// BatchLimit caps how many queued envelopes one outbox flush may pack
	// into a single wire.Batch frame for batch-aware clients (histogram
	// server.batch_size). Values above wire.MaxBatch are clamped; 0 or 1
	// disables packing and every envelope goes out as its own frame.
	BatchLimit int
	// DisableEncodeOnce re-encodes the Exec body per member on broadcast
	// instead of sharing one pooled encoded body across the whole fan-out —
	// the ablation/benchmark switch for the encode-once path. The bytes on
	// the wire are identical either way.
	DisableEncodeOnce bool
	// DisableMemberAttribution turns off the per-member health family
	// (server.member.*): ExecAck latency, last-acker and timeout attribution
	// are skipped and /debug/groups reports topology without member stats —
	// the ablation/benchmark switch for the straggler-attribution path.
	DisableMemberAttribution bool
	// EventLog is the durable per-group event log. When set, every
	// state-mutating hop — registration, declaration, coupling, event
	// broadcast commit, history snapshot, undo/redo, permission change,
	// session-token mint — appends a record before its acknowledgement is
	// enqueued, and New replays the existing log to rebuild the registry,
	// couple graph, histories and event-ID sequences before serving. The
	// caller owns the log's lifecycle: open it before New, close it after
	// Close.
	EventLog *eventlog.Log
	// ReplayTail keeps a bounded per-group tail of committed events (the
	// in-memory mirror of the log tail) and replays it to late joiners at
	// couple time through the ordinary Exec dispatch path, instead of the
	// joiner pulling CopyFrom state from a live peer.
	ReplayTail bool
	// SnapshotInterval is the cadence of the snapshot goroutine: every
	// interval it folds the log's new records into an offline replica,
	// writes a durable state snapshot at the covered offset, and compacts
	// segments wholly older than a retained snapshot — so restart replay
	// and disk use stay bounded no matter how long the server lives. Zero
	// (with SnapshotBytes also zero) disables periodic snapshots; Snapshot
	// can still force one.
	SnapshotInterval time.Duration
	// SnapshotBytes additionally triggers a snapshot once that many new log
	// bytes accumulated since the last one (checked on a short poll), so a
	// write-heavy server snapshots by volume rather than wall clock.
	SnapshotBytes int64
	// Metrics receives the server's counters, gauges and latency
	// histograms. Nil means a private enabled registry (so Stats keeps
	// working); pass obs.Disabled to remove all measurement cost.
	Metrics obs.Sink
	// Tracer records causal spans for every hop of an event's life
	// (arrival, lock acquire, per-member Exec, ExecAck, unlock,
	// EventResult). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Flight is the protocol flight recorder: the last N decoded envelopes
	// per connection, both directions. Nil disables recording.
	Flight *obs.FlightRecorder
	// Logger receives structured logs keyed by instance and trace IDs. Nil
	// disables structured logging.
	Logger *slog.Logger
	// Logf receives diagnostic output; nil disables logging.
	Logf func(format string, args ...any)

	// foldReplica marks the snapshotter's offline fold server: it must not
	// touch process-global instrumentation (the shared wire body pool) that
	// the live server owns.
	foldReplica bool
}

// Server is the central coupling server.
type Server struct {
	opts    Options
	checker *compat.Checker
	reg     *registry.Store
	graph   *couple.Graph
	perms   *perm.Table

	// shards own the group-scoped state (lock tables, histories, pending
	// events). With Shards<=1 there is exactly one shard and it shares the
	// global request channel — the classic single serialized loop. router is
	// nil unless sharded.
	shards  []*shard
	router  *router
	sharded bool

	tr     *obs.Tracer
	flight *obs.FlightRecorder
	slog   *slog.Logger

	// elog is the durable event log (nil when durability is off). Appends
	// block the calling loop until the record reaches the configured
	// durability, so an acked transition is always replayable.
	elog *eventlog.Log
	// snap folds the log into an offline replica and writes periodic state
	// snapshots + compacts old segments (nil when durability is off).
	snap *snapshotter

	reqs chan func()
	quit chan struct{}
	wg   sync.WaitGroup

	// clients is written only on the global loop but read from shard loops
	// and connection read goroutines, so it sits behind a read-mostly lock.
	cmu     sync.RWMutex
	clients map[couple.InstanceID]*client

	// State below is owned by the global loop goroutine.
	pendingFetch map[uint64]*fetch
	sessions     map[string]sessionRec
	// sessionTok maps an instance to its one outstanding session token, so
	// re-minting replaces (and Deregister drops) the previous token instead
	// of accreting entries in sessions without bound.
	sessionTok  map[couple.InstanceID]string
	nextFetchID uint64
	nextPing    uint64
	// closing is set (on the global loop) when Close begins tearing down
	// connections: the drops it provokes are a server shutdown, not client
	// departures, and must not be logged as KindDisconnect — a restarted
	// server replays the log and every instance present at shutdown must
	// still be there, resumable, with its tails and declarations intact.
	closing bool

	// Metric handles resolved from Options.Metrics at construction (nil
	// handles under obs.Disabled; every method is a nil-safe no-op).
	mEvents        *obs.Counter   // server.events: Event messages processed
	mLockFails     *obs.Counter   // server.lock_failures: events denied the group lock
	mExecsSent     *obs.Counter   // server.execs_sent: Exec broadcasts
	mCopies        *obs.Counter   // server.copies: completed state transfers
	mEventRTT      *obs.Histogram // server.event_rtt_ns: Event arrival → last ExecAck → unlock
	mFanout        *obs.Histogram // server.event_fanout: Execs sent per broadcast event
	mOutboxDepth   *obs.Gauge     // server.outbox_depth: queued envelopes across all outboxes
	mClients       *obs.Gauge     // server.clients: connected instances
	mLockAttempts  *obs.Counter   // lock.group_attempts (shared with the lock table)
	mLockUndone    *obs.Counter   // lock.undo_locked (shared with the lock table)
	mEventTOs      *obs.Counter   // server.event_timeouts: events resolved by deadline
	mEvictions     *obs.Counter   // server.evictions: clients dropped for backlog
	mLivenessTOs   *obs.Counter   // server.liveness_timeouts: clients declared dead
	mResumes       *obs.Counter   // server.resumes: sessions reclaimed by token
	mBatchSize     *obs.Histogram // server.batch_size: envelopes per packed Batch frame
	mAcksCoalesced *obs.Counter   // server.acks_coalesced: ExecAcks that arrived inside a BatchAck
	mBytesEncoded  *obs.Counter   // server.bytes_encoded: bytes serialized on the send path
	mPoolHits      *obs.Counter   // wire.body_pool_hits: shared-body buffers reused from the pool
	mPoolMisses    *obs.Counter   // wire.body_pool_misses: shared-body buffers freshly allocated
	mShards        *obs.Gauge     // server.shards: configured shard count
	mHandoffs      *obs.Counter   // server.cross_shard_handoffs: group migrations between shards
	mEventTOWait   *obs.Histogram // server.event_timeout_wait_ns: wait span of deadline-resolved events
	mGlobalBusy    *obs.Counter   // server.global.busy_ns: time the global loop spent executing closures
	mGlobalDepth   *obs.Gauge     // server.global.queue_depth: global request-channel depth, sampled per dequeue
	mHistEvict     *obs.Counter   // server.hist_evictions: oldest undo snapshots dropped by the depth bound

	// mMember attributes event health to individual members: per-instance
	// ack latency (histogram + EWMA), ack/last-acker/timeout counters. Nil
	// when metrics are disabled or DisableMemberAttribution is set.
	mMember *obs.Family

	// started anchors loop-utilization ratios in HealthReport.
	started time.Time

	closeOnce sync.Once
}

// Indices into the server.member family's counter schema.
const (
	memberAcks     = iota // ExecAcks received from the member
	memberLastAcks        // times the member was the last acker (critical path)
	memberTimeouts        // events that expired while waiting on the member
)

// Stats is a snapshot of server counters. It stays a comparable struct
// (scalar fields only) so callers can diff snapshots with ==.
type Stats struct {
	// Events is the number of Event messages processed.
	Events uint64
	// LockFailures counts events rejected because the group lock failed.
	LockFailures uint64
	// ExecsSent counts Exec broadcasts.
	ExecsSent uint64
	// Copies counts completed state transfers.
	Copies uint64
	// Instances is the number of registered instances.
	Instances int
	// Links is the number of couple links.
	Links int
	// EventRTT summarizes the event round trip in nanoseconds: Event
	// arrival through the last ExecAck to group unlock. Events without a
	// broadcast (uncoupled objects, denied locks) are not counted.
	EventRTT obs.Summary
	// Fanout summarizes how many Exec messages each broadcast event
	// produced.
	Fanout obs.Summary
	// OutboxDepth is the number of envelopes currently queued across all
	// client outboxes; OutboxHighWater is the largest backlog seen.
	OutboxDepth     int64
	OutboxHighWater int64
	// LockAttempts counts group-lock acquisitions tried; LockUndone counts
	// locks rolled back by the undo-locking algorithm on contention.
	LockAttempts uint64
	LockUndone   uint64
	// EventTimeouts counts events resolved by the event deadline instead of
	// a full acknowledgement set.
	EventTimeouts uint64
	// Evictions counts clients dropped because their outbox stayed over
	// OutboxLimit for longer than OutboxGrace.
	Evictions uint64
	// LivenessTimeouts counts clients declared dead by the heartbeat
	// deadline.
	LivenessTimeouts uint64
	// Resumes counts reconnections that reclaimed a session by token.
	Resumes uint64
	// AcksCoalesced counts Exec acknowledgements that arrived packed inside
	// BatchAck frames; BatchSize summarizes how many envelopes each packed
	// outgoing Batch frame carried.
	AcksCoalesced uint64
	BatchSize     obs.Summary
	// BytesEncoded counts every byte the server serialized on its send path:
	// frame headers, per-member prefixes, plain bodies, and each shared
	// broadcast body exactly once. With encode-once active it grows ~Nx
	// slower at fan-out N than with per-member encoding.
	BytesEncoded uint64
	// BodyPoolHits/BodyPoolMisses count shared-body buffers reused from vs.
	// missing in the process-wide pool. The pool is shared across servers in
	// one process, so these are best-effort when several servers coexist.
	BodyPoolHits   uint64
	BodyPoolMisses uint64
	// PendingEvents is the number of broadcast events still awaiting Exec
	// acknowledgements (should return to zero at quiescence).
	PendingEvents int
	// EventTimeoutWait summarizes how long deadline-resolved events waited
	// before the deadline fired (nanoseconds). They are kept out of
	// EventRTT so a single straggler cannot inject a deadline-sized p99
	// outlier into the round-trip numbers.
	EventTimeoutWait obs.Summary
	// Shards is the configured shard count; CrossShardHandoffs counts group
	// migrations between shards (a couple link joining two groups that lived
	// on different shards).
	Shards             int64
	CrossShardHandoffs uint64
}

// client is the server-side view of one connected instance.
type client struct {
	id   couple.InstanceID
	user string
	conn *wire.Conn
	out  *outbox
	// health is this instance's entry in the server.member family, resolved
	// once at admission so the ack hot path updates it without taking the
	// family lock. Nil when member attribution is disabled.
	health *obs.FamilyEntry
	// name keys this connection in the flight recorder; it is the remote
	// address until registration assigns the instance ID.
	name string
	// lastSeen is when the last message arrived on this connection, as
	// UnixNano. It drives the liveness deadline; atomic because the
	// connection read goroutine writes it and the sweeper reads it.
	lastSeen atomic.Int64
}

// touch refreshes the liveness clock of the connection.
func (c *client) touch() { c.lastSeen.Store(time.Now().UnixNano()) }

// sessionRec is the durable half of a registration: enough to re-register
// a reconnecting client under its original instance ID.
type sessionRec struct {
	id      couple.InstanceID
	appType string
	host    string
	user    string
}

// New returns a started server. Call Close to stop it.
func New(opts Options) *Server {
	s := newServer(opts)
	if opts.EventLog != nil {
		// Replay the durable log before any loop goroutine starts: every
		// database mutation below runs single-threaded against the freshly
		// built shards, so recovery needs no posting or locking discipline.
		s.elog = opts.EventLog
		s.replayLog()
		s.snap = newSnapshotter(s)
	}
	s.wg.Add(1)
	go s.loop()
	if s.sharded {
		for _, sh := range s.shards {
			s.wg.Add(1)
			go s.shardLoop(sh)
		}
	}
	if period := s.sweepPeriod(); period > 0 {
		s.wg.Add(1)
		go s.sweeper(period)
	}
	if s.snap != nil && (opts.SnapshotInterval > 0 || opts.SnapshotBytes > 0) {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s
}

// newServer builds a stopped server: databases, shards and metric handles
// only — no goroutines, no replay. The snapshot fold replica is built
// through this same constructor, so snapshot state and live replay state
// agree by construction.
func newServer(opts Options) *Server {
	if opts.Classes == nil {
		opts.Classes = widget.NewClassRegistry()
	}
	if opts.Correspondences == nil {
		opts.Correspondences = compat.NewCorrespondences()
	}
	metrics := opts.Metrics
	if metrics == nil {
		// Default to an enabled private registry: Stats() reads through the
		// same handles, and atomic counters cost next to nothing.
		metrics = obs.NewRegistry()
	}
	nshards := opts.Shards
	if nshards < 1 {
		nshards = 1
	}
	s := &Server{
		opts:         opts,
		tr:           opts.Tracer,
		flight:       opts.Flight,
		slog:         obs.LoggerOr(opts.Logger).With("component", "server"),
		checker:      compat.NewChecker(opts.Classes, opts.Correspondences),
		reg:          registry.NewStore(),
		graph:        couple.NewGraph(),
		perms:        perm.NewTable(),
		sharded:      nshards > 1,
		reqs:         make(chan func(), 1024),
		quit:         make(chan struct{}),
		clients:      make(map[couple.InstanceID]*client),
		pendingFetch: make(map[uint64]*fetch),
		sessions:     make(map[string]sessionRec),
		sessionTok:   make(map[couple.InstanceID]string),

		mEvents:        metrics.Counter("server.events"),
		mLockFails:     metrics.Counter("server.lock_failures"),
		mExecsSent:     metrics.Counter("server.execs_sent"),
		mCopies:        metrics.Counter("server.copies"),
		mEventRTT:      metrics.Histogram("server.event_rtt_ns"),
		mFanout:        metrics.Histogram("server.event_fanout"),
		mOutboxDepth:   metrics.Gauge("server.outbox_depth"),
		mClients:       metrics.Gauge("server.clients"),
		mLockAttempts:  metrics.Counter("lock.group_attempts"),
		mLockUndone:    metrics.Counter("lock.undo_locked"),
		mEventTOs:      metrics.Counter("server.event_timeouts"),
		mEvictions:     metrics.Counter("server.evictions"),
		mLivenessTOs:   metrics.Counter("server.liveness_timeouts"),
		mResumes:       metrics.Counter("server.resumes"),
		mBatchSize:     metrics.Histogram("server.batch_size"),
		mAcksCoalesced: metrics.Counter("server.acks_coalesced"),
		mBytesEncoded:  metrics.Counter("server.bytes_encoded"),
		mPoolHits:      metrics.Counter("wire.body_pool_hits"),
		mPoolMisses:    metrics.Counter("wire.body_pool_misses"),
		mShards:        metrics.Gauge("server.shards"),
		mHandoffs:      metrics.Counter("server.cross_shard_handoffs"),
		mEventTOWait:   metrics.Histogram("server.event_timeout_wait_ns"),
		mGlobalBusy:    metrics.Counter("server.global.busy_ns"),
		mGlobalDepth:   metrics.Gauge("server.global.queue_depth"),
		mHistEvict:     metrics.Counter("server.hist_evictions"),

		started: time.Now(),
	}
	if !opts.DisableMemberAttribution {
		s.mMember = metrics.Family("server.member", obs.FamilySchema{
			Counters: []string{"acks", "last_acks", "timeouts"},
			Hist:     "ack_ns",
			EWMA:     "ack_ewma_ns",
			Label:    "member",
		})
	}
	if !opts.foldReplica {
		wire.InstrumentBodyPool(s.mPoolHits, s.mPoolMisses)
	}
	// Every shard's lock table shares the same metric handles, so the
	// lock.* counters stay aggregate regardless of shard count.
	lockFails := metrics.Counter("lock.group_failures")
	for i := 0; i < nshards; i++ {
		sh := &shard{
			idx:     i,
			locks:   lock.NewTable(),
			history: hist.NewDB(opts.HistoryDepth),
			pending: make(map[uint64]*pendingEvent),
			tails:   make(map[couple.ObjectRef][]tailEvent),
			mEvents: metrics.Counter(fmt.Sprintf("server.shard.%d.events", i)),
			mBusy:   metrics.Counter(fmt.Sprintf("server.shard.%d.busy_ns", i)),
			mDepth:  metrics.Gauge(fmt.Sprintf("server.shard.%d.queue_depth", i)),
		}
		sh.locks.Instrument(s.mLockAttempts, lockFails, s.mLockUndone)
		sh.history.Instrument(s.mHistEvict)
		sh.locks.TraceWith(opts.Tracer)
		if s.sharded {
			sh.reqs = make(chan func(), 1024)
			sh.installCh = make(chan migrated, 1)
		} else {
			// The lone shard shares the global request channel: one loop,
			// one serialization order, exactly the pre-shard server.
			sh.reqs = s.reqs
		}
		s.shards = append(s.shards, sh)
	}
	if s.sharded {
		s.router = &router{n: nshards, obj: make(map[couple.ObjectRef]int), ev: make(map[uint64]int)}
	}
	s.mShards.Set(int64(nshards))
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// loop runs every state mutation in one goroutine. Each dequeue samples the
// channel depth and each closure is bracketed with busy-time accounting
// (server.global.busy_ns / .queue_depth) — both no-ops under obs.Disabled,
// where Start returns the zero time without reading the clock. With one
// shard this loop also carries shard 0's traffic, so its time shows up here
// rather than under server.shard.0.busy_ns.
func (s *Server) loop() {
	defer s.wg.Done()
	for {
		select {
		case fn := <-s.reqs:
			s.mGlobalDepth.Set(int64(len(s.reqs)))
			t0 := s.mGlobalBusy.Start()
			fn()
			s.mGlobalBusy.AddSince(t0)
		case <-s.quit:
			// Drain anything already queued, then stop.
			for {
				select {
				case fn := <-s.reqs:
					fn()
				default:
					return
				}
			}
		}
	}
}

// post schedules fn on the state loop. It reports false after Close.
func (s *Server) post(fn func()) bool {
	select {
	case <-s.quit:
		return false
	default:
	}
	select {
	case s.reqs <- fn:
		return true
	case <-s.quit:
		return false
	}
}

// Serve accepts connections from l until the listener fails or the server is
// closed. Each connection is handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.quit:
				return nil
			default:
				return fmt.Errorf("server: accept: %w", err)
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(wire.NewConn(conn))
		}()
	}
}

// HandleConn serves a single pre-established connection (in-process
// transports). It returns when the connection closes.
func (s *Server) HandleConn(c *wire.Conn) {
	s.handleConn(c)
}

// Close stops the server. Connected clients see their connections closed.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		// Ask the loop to close all client connections, then stop it.
		done := make(chan struct{})
		if s.post(func() {
			s.closing = true
			s.cmu.RLock()
			for _, c := range s.clients {
				c.out.close()
				c.conn.Close()
			}
			s.cmu.RUnlock()
			close(done)
		}) {
			<-done
		}
		close(s.quit)
	})
	s.wg.Wait()
	// Every loop has exited (wg.Wait is the happens-before edge), so the
	// pending maps are quiescent. Stop the deadline timers of unresolved
	// events — a timer left running would outlive the server, and its late
	// firing only posts (post refuses after quit), so stopping here is safe
	// and sufficient.
	for _, sh := range s.shards {
		for _, pe := range sh.pending {
			if pe.timer != nil {
				pe.timer.Stop()
			}
		}
		if sh.installCh == nil {
			continue
		}
		// A migration bundle the receiver never installed (it exited first)
		// still carries pending events with live timers.
		select {
		case m := <-sh.installCh:
			for _, pe := range m.events {
				if pe.timer != nil {
					pe.timer.Stop()
				}
			}
		default:
		}
	}
}

// Stats returns a consistent snapshot of the server counters.
func (s *Server) Stats() Stats {
	result := make(chan Stats, 1)
	if !s.post(func() {
		result <- Stats{
			Events:             s.mEvents.Value(),
			LockFailures:       s.mLockFails.Value(),
			ExecsSent:          s.mExecsSent.Value(),
			Copies:             s.mCopies.Value(),
			Instances:          s.reg.Len(),
			Links:              s.graph.Len(),
			EventRTT:           s.mEventRTT.Summary(),
			Fanout:             s.mFanout.Summary(),
			OutboxDepth:        s.mOutboxDepth.Value(),
			OutboxHighWater:    s.mOutboxDepth.HighWater(),
			LockAttempts:       s.mLockAttempts.Value(),
			LockUndone:         s.mLockUndone.Value(),
			EventTimeouts:      s.mEventTOs.Value(),
			Evictions:          s.mEvictions.Value(),
			LivenessTimeouts:   s.mLivenessTOs.Value(),
			Resumes:            s.mResumes.Value(),
			AcksCoalesced:      s.mAcksCoalesced.Value(),
			BatchSize:          s.mBatchSize.Summary(),
			BytesEncoded:       s.mBytesEncoded.Value(),
			BodyPoolHits:       s.mPoolHits.Value(),
			BodyPoolMisses:     s.mPoolMisses.Value(),
			PendingEvents:      s.pendingCount(),
			EventTimeoutWait:   s.mEventTOWait.Summary(),
			Shards:             s.mShards.Value(),
			CrossShardHandoffs: s.mHandoffs.Value(),
		}
	}) {
		return Stats{}
	}
	return <-result
}

// pendingCount sums still-pending events across shards. It runs on the
// global loop; on a sharded server each shard reports its count under its
// own serialization (shards never wait on the global loop, so the gather
// cannot deadlock).
func (s *Server) pendingCount() int {
	if !s.sharded {
		return len(s.shards[0].pending)
	}
	counts := make(chan int, len(s.shards))
	posted := 0
	for _, sh := range s.shards {
		sh := sh
		if s.postShard(sh, func() { counts <- len(sh.pending) }) {
			posted++
		}
	}
	total := 0
	for i := 0; i < posted; i++ {
		select {
		case c := <-counts:
			total += c
		case <-s.quit:
			return total
		}
	}
	return total
}

// clientOf returns the connected client of an instance. Callable from any
// goroutine: clients sits behind a read-mostly lock.
func (s *Server) clientOf(id couple.InstanceID) (*client, bool) {
	s.cmu.RLock()
	c, ok := s.clients[id]
	s.cmu.RUnlock()
	return c, ok
}

// Permissions returns the server's permission table for administrative
// setup before instances connect.
func (s *Server) Permissions() *perm.Table { return s.perms }

// handleConn runs the read loop for one connection: the first message must
// be Register (fresh instance) or Resume (reconnection presenting a session
// token); afterwards messages are posted to the state loop.
func (s *Server) handleConn(c *wire.Conn) {
	c.CountEncodedBytes(s.mBytesEncoded)
	env, err := c.Read()
	if err != nil {
		c.Close()
		return
	}
	cl := &client{
		conn: c,
		name: c.RemoteAddr().String(),
	}
	cl.out = newOutbox(c, s.mOutboxDepth, s.opts.OutboxLimit, s.opts.BatchLimit, s.mBatchSize, s.outboxRecorder(cl))
	var joinErr string
	switch m := env.Msg.(type) {
	case wire.Register:
		joinErr = s.admitRegister(cl, env, m)
	case wire.Resume:
		joinErr = s.admitResume(cl, env, m)
	default:
		joinErr = "server: first message must be Register or Resume"
	}
	if joinErr != "" {
		_ = c.Write(wire.Envelope{RefSeq: env.Seq, Msg: wire.Err{Text: joinErr}})
		cl.out.close()
		c.Close()
		return
	}

	for {
		env, err := c.Read()
		if err != nil {
			break
		}
		cl.touch()
		if !s.dispatchEnv(cl, env) {
			break
		}
	}
	// Connection gone: clean up on the loop.
	s.post(func() { s.dropClient(cl, "connection closed") })
	cl.out.close()
	c.Close()
}

// admitRegister performs the fresh-registration handshake on the state
// loop, returning an error text for the client ("" on success).
func (s *Server) admitRegister(cl *client, env wire.Envelope, reg wire.Register) string {
	cl.user = reg.User
	registered := make(chan bool, 1)
	if !s.post(func() {
		cl.id = s.reg.NewID(reg.AppType)
		rec := registry.Record{ID: cl.id, AppType: reg.AppType, Host: reg.Host, User: reg.User}
		if err := s.reg.Register(rec); err != nil {
			registered <- false
			return
		}
		s.logAppend(eventlog.KindRegister, cl.id, "", reg)
		s.admit(cl, env)
		registered <- true
	}) {
		return "server: shutting down"
	}
	if !<-registered {
		return "server: registration failed"
	}
	s.logf("server: %s registered (user=%s host=%s)", cl.id, reg.User, reg.Host)
	s.slog.Info("instance registered",
		"inst", string(cl.id), "user", reg.User, "host", reg.Host, "app", reg.AppType)
	return ""
}

// admitResume reclaims a session by token on the state loop: any still-open
// previous connection for the instance is superseded (dropped exactly as a
// disconnect would), and the new connection re-registers under the original
// instance ID. The client is expected to re-declare its objects, re-create
// its couple links, and resynchronize state afterwards.
func (s *Server) admitResume(cl *client, env wire.Envelope, m wire.Resume) string {
	result := make(chan string, 1)
	if !s.post(func() {
		sess, ok := s.sessions[m.Token]
		if !ok {
			result <- "server: unknown session token"
			return
		}
		// Tokens are single-use: consume it now so a stale copy cannot later
		// hijack the resumed session. The client re-mints after resuming.
		delete(s.sessions, m.Token)
		if s.sessionTok[sess.id] == m.Token {
			delete(s.sessionTok, sess.id)
		}
		if old, connected := s.clientOf(sess.id); connected {
			s.dropClient(old, "superseded by resume")
			old.conn.Close()
		}
		// The registry may still hold the instance's record: after a server
		// crash and log replay, the pre-crash incarnation was never seen
		// disconnecting, so its record — declared objects and couple links
		// included — survives as the session's ghost. Resume adopts it
		// rather than re-registering, which is exactly what makes a kill -9
		// restart invisible to the reconnecting client.
		if _, err := s.reg.Lookup(sess.id); err != nil {
			rec := registry.Record{ID: sess.id, AppType: sess.appType, Host: sess.host, User: sess.user}
			if err := s.reg.Register(rec); err != nil {
				result <- "server: resume failed: " + err.Error()
				return
			}
		}
		s.logAppend(eventlog.KindResume, sess.id, "", m)
		cl.id = sess.id
		cl.user = sess.user
		s.mResumes.Inc()
		s.admit(cl, env)
		result <- ""
	}) {
		return "server: shutting down"
	}
	if errText := <-result; errText != "" {
		return errText
	}
	s.logf("server: %s resumed (user=%s)", cl.id, cl.user)
	s.slog.Info("instance resumed", "inst", string(cl.id), "user", cl.user)
	return ""
}

// admit installs a freshly identified client and acknowledges the
// handshake. It runs on the state loop.
func (s *Server) admit(cl *client, env wire.Envelope) {
	// Resolve the member's health entry once; shard loops then attribute
	// acks through the cached pointer without touching the family lock.
	cl.health = s.mMember.Get(string(cl.id))
	s.cmu.Lock()
	s.clients[cl.id] = cl
	s.cmu.Unlock()
	s.mClients.Add(1)
	cl.name = string(cl.id)
	cl.touch()
	s.recordFlight(cl, "recv", env)
	cl.out.send(wire.Envelope{RefSeq: env.Seq, Msg: wire.Registered{ID: cl.id}})
}

// outboxRecorder returns the outbox send hook that feeds the flight
// recorder, or nil when recording is disabled so sends stay cost-free.
func (s *Server) outboxRecorder(cl *client) func(wire.Envelope) {
	if s.flight == nil {
		return nil
	}
	return func(env wire.Envelope) { s.recordFlight(cl, "send", env) }
}

// recordFlight logs one envelope against cl's connection. cl.name is read
// without synchronization: both the rename and every recorded envelope
// happen on the state loop (or before the connection is shared).
func (s *Server) recordFlight(cl *client, dir string, env wire.Envelope) {
	if s.flight == nil {
		return
	}
	s.flight.Record(cl.name, obs.FlightEntry{
		Dir:    dir,
		Type:   env.Msg.MsgType().String(),
		Seq:    env.Seq,
		RefSeq: env.RefSeq,
		Trace:  env.Trace.Trace,
		Note:   flightNote(env.Msg),
	})
}

// flightNote summarizes a message for the flight recorder without retaining
// payloads.
func flightNote(m wire.Message) string {
	switch m := m.(type) {
	case wire.Event:
		return m.Path + " " + m.Name
	case wire.Exec:
		return m.TargetPath + " " + m.Name
	case wire.EventResult:
		if m.OK {
			return "ok"
		}
		return "denied: " + m.Reason
	case wire.Declare:
		return m.Path + " (" + m.Class + ")"
	case wire.Retract:
		return m.Path
	case wire.Register:
		return m.AppType + "/" + m.User + "@" + m.Host
	case wire.Registered:
		return string(m.ID)
	case wire.Couple:
		return stateID(m.From) + " -> " + stateID(m.To)
	case wire.Decouple:
		return stateID(m.From) + " x " + stateID(m.To)
	case wire.Command:
		return m.Name
	case wire.CommandDeliver:
		return m.Name + " from " + string(m.From)
	case wire.Err:
		return m.Text
	case wire.Batch:
		return fmt.Sprintf("%d envelopes", len(m.Envelopes))
	case wire.BatchAck:
		return fmt.Sprintf("%d acks", len(m.Acks))
	default:
		return ""
	}
}

// outbox decouples the state loop from connection back-pressure: the loop
// enqueues, a writer goroutine drains. The queue never blocks the sender —
// the server is the ordering authority and must never stall on a slow
// client — but when a limit is configured the outbox remembers how long the
// backlog has stayed above it so the sweeper can evict the client instead
// of buffering without bound.
type outbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []wire.Outgoing
	closed bool
	done   chan struct{}
	depth  *obs.Gauge          // shared across outboxes: total server backlog
	onSend func(wire.Envelope) // flight-recorder hook; nil when disabled
	limit  int                 // high-water mark; 0 = unbounded
	// inflight counts envelopes handed to the writer but not yet written;
	// inflight+len(queue) is the true backlog the eviction limit measures.
	inflight int
	// batchLimit caps envelopes per packed Batch frame; <=1 disables packing.
	batchLimit int
	batchSize  *obs.Histogram // envelopes per packed frame (server.batch_size)
	// overSince is when the backlog last rose above limit; zero while at or
	// under the mark.
	overSince time.Time
}

func newOutbox(c *wire.Conn, depth *obs.Gauge, limit, batchLimit int, batchSize *obs.Histogram, onSend func(wire.Envelope)) *outbox {
	if batchLimit > wire.MaxBatch {
		batchLimit = wire.MaxBatch
	}
	o := &outbox{done: make(chan struct{}), depth: depth, limit: limit,
		batchLimit: batchLimit, batchSize: batchSize, onSend: onSend}
	o.cond = sync.NewCond(&o.mu)
	go func() {
		defer close(o.done)
		for {
			o.mu.Lock()
			for len(o.queue) == 0 && !o.closed {
				o.cond.Wait()
			}
			if len(o.queue) == 0 && o.closed {
				o.mu.Unlock()
				return
			}
			// Hand the whole backlog to the writer in one slice: everything
			// that queued up while the previous flush blocked becomes one
			// flush, which is what gives flush-time packing a run to pack.
			take := o.queue
			o.queue = nil
			o.inflight = len(take)
			o.mu.Unlock()
			err := o.flush(c, take)
			o.mu.Lock()
			if err != nil {
				// Connection broken; drop remaining output. flush released
				// the shared bodies of everything it took, so only the
				// still-queued records hold references here.
				o.depth.Add(-int64(o.inflight + len(o.queue)))
				releaseOutgoing(o.queue)
				o.inflight = 0
				o.queue = nil
				o.closed = true
				o.mu.Unlock()
				return
			}
			o.inflight = 0
			if o.limit > 0 && len(o.queue) <= o.limit {
				o.overSince = time.Time{}
			}
			o.mu.Unlock()
		}
	}()
	return o
}

// flush writes one drained backlog. For a batch-aware peer, runs of queued
// records are packed into Batch frames of up to batchLimit records each;
// otherwise (or when packing is disabled) every record goes out as its own
// frame. Either way the records reach the wire in queue order, and shared
// broadcast bodies are spliced in by reference rather than re-encoded. Every
// record flush takes is released exactly once — after its frame is written,
// or on the error path — so eviction or a broken connection can never leak
// or double-release a shared body.
func (o *outbox) flush(c *wire.Conn, recs []wire.Outgoing) error {
	for len(recs) > 0 {
		n := 1
		if o.batchLimit > 1 && len(recs) > 1 && c.BatchAware() {
			n = min(len(recs), o.batchLimit)
		}
		var err error
		for {
			if n == 1 {
				err = c.WriteOutgoing(recs[0])
				break
			}
			err = c.WriteBatch(recs[:n])
			if !errors.Is(err, wire.ErrFrameTooLarge) {
				if err == nil {
					o.batchSize.Observe(int64(n))
				}
				break
			}
			// The packed body overflowed MaxFrame even though each envelope
			// fits on its own (WriteBatch rejects oversized frames before
			// touching the wire, so nothing was sent). Halve the run and
			// retry rather than tearing down a connection the unbatched path
			// would serve.
			n /= 2
		}
		releaseOutgoing(recs[:n])
		if err != nil {
			releaseOutgoing(recs[n:])
			return err
		}
		o.depth.Add(-int64(n))
		o.mu.Lock()
		o.inflight -= n
		if o.limit > 0 && o.inflight+len(o.queue) <= o.limit {
			// The true backlog (in-flight plus re-queued) is back under the
			// eviction mark; clear the stopwatch per chunk so a long flush of
			// a draining peer is not mistaken for a stuck one.
			o.overSince = time.Time{}
		}
		o.mu.Unlock()
		recs = recs[n:]
	}
	return nil
}

// releaseOutgoing drops the shared-body reference of every record that holds
// one, exactly once: released entries are nilled so overlapping error paths
// cannot release twice.
func releaseOutgoing(recs []wire.Outgoing) {
	for i := range recs {
		if recs[i].Shared != nil {
			recs[i].Shared.Release()
			recs[i].Shared = nil
		}
	}
}

func (o *outbox) send(env wire.Envelope) {
	o.enqueue(wire.Outgoing{Env: env})
}

// sendShared queues one member's frame of an encode-once broadcast: env
// carries the correlation numbers and trace context (its Msg stays nil — the
// Exec is never materialized on the hot path), target the member's path, se
// the shared body suffix. The outbox takes its own reference — the caller
// must still hold one, and releases it when done enqueueing.
func (o *outbox) sendShared(env wire.Envelope, target string, se *wire.SharedExec) {
	o.enqueue(wire.Outgoing{Env: env, Shared: se, Target: target})
}

func (o *outbox) enqueue(rec wire.Outgoing) {
	o.mu.Lock()
	if !o.closed {
		if rec.Shared != nil {
			rec.Shared.Ref()
		}
		o.queue = append(o.queue, rec)
		o.depth.Add(1)
		if o.limit > 0 && o.inflight+len(o.queue) > o.limit && o.overSince.IsZero() {
			o.overSince = time.Now()
		}
		o.cond.Signal()
	}
	o.mu.Unlock()
	if o.onSend != nil {
		// Only the flight recorder needs the decoded message; Envelope
		// materializes the member's Exec on demand for shared records.
		o.onSend(rec.Envelope())
	}
}

// overLimitSince reports when the backlog rose above the configured limit,
// or a zero time if it is currently at or under it (or unbounded).
func (o *outbox) overLimitSince() time.Time {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.overSince
}

func (o *outbox) close() {
	o.mu.Lock()
	o.closed = true
	o.cond.Broadcast()
	o.mu.Unlock()
	<-o.done
}

// sweepPeriod returns how often the liveness/backpressure sweeper should
// run, or zero when neither feature is enabled.
func (s *Server) sweepPeriod() time.Duration {
	var period time.Duration
	if s.opts.Heartbeat > 0 {
		period = s.opts.Heartbeat
	}
	if s.opts.OutboxLimit > 0 {
		if g := s.outboxGrace() / 2; period == 0 || g < period {
			period = g
		}
	}
	if period > 0 && period < time.Millisecond {
		period = time.Millisecond
	}
	return period
}

// livenessTimeout returns the configured silence deadline, defaulting to
// three heartbeat intervals.
func (s *Server) livenessTimeout() time.Duration {
	if s.opts.LivenessTimeout > 0 {
		return s.opts.LivenessTimeout
	}
	return 3 * s.opts.Heartbeat
}

// outboxGrace returns how long a backlog may stay over OutboxLimit.
func (s *Server) outboxGrace() time.Duration {
	if s.opts.OutboxGrace > 0 {
		return s.opts.OutboxGrace
	}
	return time.Second
}

// sweeper periodically posts a liveness/backpressure sweep onto the state
// loop until the server closes.
func (s *Server) sweeper(period time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !s.post(func() { s.sweep() }) {
				return
			}
		case <-s.quit:
			return
		}
	}
}

// sweep runs on the state loop: it evicts clients whose backlog has
// exceeded OutboxLimit for longer than OutboxGrace, declares silent
// clients dead after the liveness timeout, and pings the survivors.
// Killing the connection lets the normal handleConn teardown release locks
// and resolve pending events, so both failure paths share one cleanup.
func (s *Server) sweep() {
	now := time.Now()
	// Snapshot under the read lock, then release it: dropClient re-takes
	// the write lock.
	s.cmu.RLock()
	snapshot := make([]*client, 0, len(s.clients))
	for _, cl := range s.clients {
		snapshot = append(snapshot, cl)
	}
	s.cmu.RUnlock()
	for _, cl := range snapshot {
		if s.opts.OutboxLimit > 0 {
			if since := cl.out.overLimitSince(); !since.IsZero() && now.Sub(since) > s.outboxGrace() {
				s.mEvictions.Inc()
				s.slog.Warn("client evicted: outbox over limit",
					"inst", string(cl.id), "limit", s.opts.OutboxLimit,
					"over_for", now.Sub(since).String())
				s.dropClient(cl, "evicted: outbox over limit")
				cl.conn.Close()
				continue
			}
		}
		if s.opts.Heartbeat > 0 {
			if silent := now.Sub(time.Unix(0, cl.lastSeen.Load())); silent > s.livenessTimeout() {
				s.mLivenessTOs.Inc()
				s.slog.Warn("client declared dead: liveness timeout",
					"inst", string(cl.id), "silent_for", silent.String())
				s.dropClient(cl, "liveness timeout")
				cl.conn.Close()
				continue
			}
			s.nextPing++
			cl.out.send(wire.Envelope{Msg: wire.Ping{Nonce: s.nextPing}})
		}
	}
}

// mintToken returns a fresh random session token.
func mintToken() (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(buf[:]), nil
}

// errPerm tags permission failures.
var errPerm = errors.New("permission denied")

// now returns the server clock reading used for history timestamps.
func (s *Server) now() time.Time { return time.Now() }
