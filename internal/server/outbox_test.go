package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

// outboxPair builds an outbox writing into one end of an in-process pipe and
// returns the peer-side conn to read frames from. When peerBatch is set, the
// peer opts into the batch extension and speaks one frame first so the
// outbox's conn latches the capability before anything is queued (mirroring
// the real handshake, where the client's Hello precedes all fan-out).
func outboxPair(t *testing.T, peerBatch bool, limit, batchLimit int) (*outbox, *wire.Conn) {
	t.Helper()
	rawA, rawB := net.Pipe()
	t.Cleanup(func() { rawA.Close(); rawB.Close() })
	c, peer := wire.NewConn(rawA), wire.NewConn(rawB)
	if peerBatch {
		peer.EnableBatch()
		go func() { peer.Write(wire.Envelope{Seq: 1, Msg: wire.OK{}}) }()
		if _, err := c.Read(); err != nil {
			t.Fatalf("capability frame: %v", err)
		}
		if !c.BatchAware() {
			t.Fatal("conn did not latch the peer's batch capability")
		}
	}
	reg := obs.NewRegistry()
	o := newOutbox(c, reg.Gauge("depth"), limit, batchLimit, reg.Histogram("batch"), nil)
	return o, peer
}

// waitDrained polls until the outbox writer has taken every queued envelope
// into its in-flight slice and is (presumably) blocked writing it.
func waitDrained(t *testing.T, o *outbox, inflight int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		o.mu.Lock()
		ok := o.inflight == inflight && len(o.queue) == 0
		o.mu.Unlock()
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("writer never took the backlog (want inflight=%d)", inflight)
}

// TestOutboxBlockedWriterDrainsBacklogAsOneFlush is the regression test for
// the per-envelope wakeup bug: envelopes that queue while the writer is
// blocked on a slow connection must be handed over as one slice on the next
// wakeup, which for a batch-aware peer means one packed frame, not N.
func TestOutboxBlockedWriterDrainsBacklogAsOneFlush(t *testing.T) {
	const queued = 5
	o, peer := outboxPair(t, true, 0, 8)
	defer o.close()

	// First envelope: the writer takes it and blocks in Write (net.Pipe has
	// no buffer), leaving the queue empty.
	o.send(wire.Envelope{Msg: wire.Exec{EventID: 100}})
	waitDrained(t, o, 1)
	// These pile up behind the blocked writer.
	for i := uint64(1); i <= queued; i++ {
		o.send(wire.Envelope{Msg: wire.Exec{EventID: 100 + i}})
	}

	// Unblock: the first frame is the single Exec the writer was holding.
	env, err := peer.Read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if m, ok := env.Msg.(wire.Exec); !ok || m.EventID != 100 {
		t.Fatalf("first frame = %T %+v, want the blocked single Exec", env.Msg, env.Msg)
	}
	// The entire backlog follows as one Batch frame, in queue order.
	env, err = peer.Read()
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	batch, ok := env.Msg.(wire.Batch)
	if !ok {
		t.Fatalf("second frame = %T, want one Batch for the whole backlog", env.Msg)
	}
	if len(batch.Envelopes) != queued {
		t.Fatalf("batch carries %d envelopes, want %d", len(batch.Envelopes), queued)
	}
	for i, inner := range batch.Envelopes {
		m, ok := inner.Msg.(wire.Exec)
		if !ok || m.EventID != 100+uint64(i)+1 {
			t.Fatalf("batch[%d] = %T %+v, want Exec in queue order", i, inner.Msg, inner.Msg)
		}
	}
	waitDrained(t, o, 0)
}

// TestOutboxLegacyPeerGetsSingles: with packing configured but the peer not
// batch-aware, the same blocked-writer backlog still drains in one wakeup but
// reaches the wire as individual frames in queue order.
func TestOutboxLegacyPeerGetsSingles(t *testing.T) {
	const queued = 4
	o, peer := outboxPair(t, false, 0, 8)
	defer o.close()

	for i := uint64(0); i < queued; i++ {
		o.send(wire.Envelope{Msg: wire.Exec{EventID: 200 + i}})
	}
	for i := uint64(0); i < queued; i++ {
		env, err := peer.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		m, ok := env.Msg.(wire.Exec)
		if !ok {
			t.Fatalf("frame %d = %T, want a single Exec for a legacy peer", i, env.Msg)
		}
		if m.EventID != 200+i {
			t.Fatalf("frame %d EventID = %d, want %d (queue order)", i, m.EventID, 200+i)
		}
	}
	waitDrained(t, o, 0)
}

// TestOutboxBatchLimitSplitsLongRuns: a backlog longer than the configured
// limit is split into consecutive Batch frames of at most limit records.
func TestOutboxBatchLimitSplitsLongRuns(t *testing.T) {
	const limit, queued = 3, 7
	o, peer := outboxPair(t, true, 0, limit)
	defer o.close()

	o.send(wire.Envelope{Msg: wire.Exec{EventID: 300}})
	waitDrained(t, o, 1)
	for i := uint64(1); i <= queued; i++ {
		o.send(wire.Envelope{Msg: wire.Exec{EventID: 300 + i}})
	}
	if env, err := peer.Read(); err != nil {
		t.Fatalf("read: %v", err)
	} else if _, ok := env.Msg.(wire.Exec); !ok {
		t.Fatalf("first frame = %T, want the blocked single Exec", env.Msg)
	}
	next := uint64(301)
	for sizes := []int{limit, limit, 1}; len(sizes) > 0; sizes = sizes[1:] {
		env, err := peer.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		batch, isBatch := env.Msg.(wire.Batch)
		if sizes[0] == 1 {
			// A run of one is not worth an envelope: it goes out plain.
			m, ok := env.Msg.(wire.Exec)
			if !ok || m.EventID != next {
				t.Fatalf("tail frame = %T %+v, want single Exec %d", env.Msg, env.Msg, next)
			}
			next++
			continue
		}
		if !isBatch || len(batch.Envelopes) != sizes[0] {
			t.Fatalf("frame = %T (%d records), want Batch of %d", env.Msg, len(batch.Envelopes), sizes[0])
		}
		for _, inner := range batch.Envelopes {
			if m := inner.Msg.(wire.Exec); m.EventID != next {
				t.Fatalf("EventID = %d, want %d", m.EventID, next)
			}
			next++
		}
	}
	waitDrained(t, o, 0)
}

// TestOutboxOversizedBatchFallsBackToSingles is the regression test for the
// frame-size teardown bug: a run whose packed Batch body would exceed
// wire.MaxFrame must still reach the peer — split down to singles if need
// be — instead of being treated as a broken connection.
func TestOutboxOversizedBatchFallsBackToSingles(t *testing.T) {
	o, peer := outboxPair(t, true, 0, 8)
	defer o.close()

	// Each envelope fits comfortably in a frame of its own; packed together
	// their one Batch body would overflow MaxFrame.
	big := strings.Repeat("x", wire.MaxFrame/2+1<<20)
	o.send(wire.Envelope{Msg: wire.Exec{EventID: 400}})
	waitDrained(t, o, 1)
	o.send(wire.Envelope{Msg: wire.Err{Text: big}})
	o.send(wire.Envelope{Msg: wire.Err{Text: big}})

	if env, err := peer.Read(); err != nil {
		t.Fatalf("read: %v", err)
	} else if _, ok := env.Msg.(wire.Exec); !ok {
		t.Fatalf("first frame = %T, want the blocked single Exec", env.Msg)
	}
	for i := 0; i < 2; i++ {
		env, err := peer.Read()
		if err != nil {
			t.Fatalf("read big frame %d: %v", i, err)
		}
		m, ok := env.Msg.(wire.Err)
		if !ok || len(m.Text) != len(big) {
			t.Fatalf("big frame %d = %T, want the full single Err", i, env.Msg)
		}
	}
	waitDrained(t, o, 0)

	// The connection survived the oversized run: later traffic still flows.
	o.send(wire.Envelope{Msg: wire.Exec{EventID: 401}})
	env, err := peer.Read()
	if err != nil {
		t.Fatalf("read after fallback: %v", err)
	}
	if m, ok := env.Msg.(wire.Exec); !ok || m.EventID != 401 {
		t.Fatalf("frame after fallback = %T %+v", env.Msg, env.Msg)
	}
}

// TestOutboxFlushClearsOverSinceMidFlush: eviction accounting must track the
// true backlog while a long flush is still draining. Once in-flight plus
// queued falls back to the limit the over-limit stopwatch clears, even
// though the writer is still blocked on a later chunk of the same flush.
func TestOutboxFlushClearsOverSinceMidFlush(t *testing.T) {
	o, peer := outboxPair(t, false, 2, 8)
	defer o.close()

	o.send(wire.Envelope{Msg: wire.Exec{EventID: 500}})
	waitDrained(t, o, 1)
	for i := uint64(1); i <= 3; i++ {
		o.send(wire.Envelope{Msg: wire.Exec{EventID: 500 + i}})
	}
	if o.overLimitSince().IsZero() {
		t.Fatal("backlog over the limit but overSince not set")
	}

	// Drain the blocked single plus the first chunk of the follow-up flush:
	// the remaining backlog (two in flight) is then back at the limit, so
	// the stopwatch must clear while that flush is still blocked on its
	// next chunk.
	for i := 0; i < 2; i++ {
		if _, err := peer.Read(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for !o.overLimitSince().IsZero() {
		if time.Now().After(deadline) {
			t.Fatal("overSince not cleared while the flush was still draining")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		if _, err := peer.Read(); err != nil {
			t.Fatalf("tail read %d: %v", i, err)
		}
	}
	waitDrained(t, o, 0)
}
