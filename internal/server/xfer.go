package server

import (
	"errors"
	"fmt"

	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/hist"
	"cosoft/internal/perm"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// fetch tracks one outstanding StateRequest to a client.
type fetch struct {
	target    couple.InstanceID
	requester couple.InstanceID
	onReply   func(state widget.TreeState)
	onFail    func(reason string)
}

// requestState sends a StateRequest to the owner of ref and registers the
// continuation. It runs on the state loop.
func (s *Server) requestState(requester *client, ref couple.ObjectRef, relevantOnly bool,
	onReply func(widget.TreeState), onFail func(string)) {
	s.requestStateOpt(requester, ref, relevantOnly, false, onReply, onFail)
}

// requestStateOpt additionally controls shallow capture.
func (s *Server) requestStateOpt(requester *client, ref couple.ObjectRef, relevantOnly, shallow bool,
	onReply func(widget.TreeState), onFail func(string)) {
	target, ok := s.clientOf(ref.Instance)
	if !ok {
		onFail(fmt.Sprintf("instance %s not connected", ref.Instance))
		return
	}
	s.nextFetchID++
	id := s.nextFetchID
	s.pendingFetch[id] = &fetch{
		target:    ref.Instance,
		requester: requester.id,
		onReply:   onReply,
		onFail:    onFail,
	}
	target.out.send(wire.Envelope{Msg: wire.StateRequest{
		RequestID:    id,
		Path:         ref.Path,
		RelevantOnly: relevantOnly,
		Shallow:      shallow,
	}})
}

// handleStateReply resumes the continuation waiting for this reply.
func (s *Server) handleStateReply(cl *client, m wire.StateReply) {
	f, ok := s.pendingFetch[m.RequestID]
	if !ok || f.target != cl.id {
		return // stale or spoofed reply
	}
	delete(s.pendingFetch, m.RequestID)
	if !m.OK {
		f.onFail(m.Reason)
		return
	}
	f.onReply(m.State)
}

func (s *Server) failFetch(id uint64, f *fetch, reason string) {
	delete(s.pendingFetch, id)
	f.onFail(reason)
}

// handleFetchState serves a client's read of any declared object's state.
func (s *Server) handleFetchState(cl *client, seq uint64, m wire.FetchState) {
	if _, err := s.checkDeclared(m.Ref); err != nil {
		s.reply(cl, seq, err)
		return
	}
	if err := s.checkPerm(cl, m.Ref, perm.RightView); err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.requestState(cl, m.Ref, m.RelevantOnly,
		func(state widget.TreeState) {
			cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.StateReply{OK: true, State: state}})
		},
		func(reason string) {
			cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.StateReply{OK: false, Reason: reason}})
		})
}

// validateCopy checks declarations, permissions and compatibility for a copy
// from -> to requested by cl, returning the attribute mapping to translate
// primitive states across classes (nil when classes are equal).
func (s *Server) validateCopy(cl *client, from, to couple.ObjectRef) (map[string]string, error) {
	classFrom, err := s.checkDeclared(from)
	if err != nil {
		return nil, err
	}
	classTo, err := s.checkDeclared(to)
	if err != nil {
		return nil, err
	}
	if err := s.checkPerm(cl, from, perm.RightView); err != nil {
		return nil, err
	}
	if err := s.checkPerm(cl, to, perm.RightCopy); err != nil {
		return nil, err
	}
	mapping, ok := s.checker.Direct(classFrom, classTo)
	if !ok {
		return nil, fmt.Errorf("server: classes %q and %q are not compatible", classFrom, classTo)
	}
	if classFrom == classTo {
		return nil, nil // identity: pass tree states through untranslated
	}
	return mapping, nil
}

// completeCopy backs up the destination's current state into the historical
// database, then applies the new state at the destination. It implements the
// tail shared by CopyTo, CopyFrom and RemoteCopy.
func (s *Server) completeCopy(cl *client, seq uint64, from, to couple.ObjectRef,
	state widget.TreeState, mapping map[string]string, destructive bool) {
	if mapping != nil {
		if len(state.Children) != 0 {
			s.reply(cl, seq, fmt.Errorf("server: cross-class copy of complex objects is not supported"))
			return
		}
		state = widget.TreeState{
			Class: mustClass(s, to),
			Name:  state.Name,
			Attrs: compat.TranslateState(state.Attrs, mapping),
		}
	}
	s.requestState(cl, to, false,
		func(old widget.TreeState) {
			// The backup lands in the destination group's shard-owned
			// history, so the write hops onto that shard's loop (inline on a
			// single-shard server).
			sh := s.shardForRef(to)
			s.runOnShard(sh, func() {
				sh.history.Record(hist.Snapshot{Ref: to, State: old, Origin: cl.id, At: s.now()})
				// The logged CopyTo carries the overwritten state: replaying
				// it re-records exactly this backup.
				s.logAppend(eventlog.KindHist, cl.id, stateID(to), wire.CopyTo{To: to, State: old})
				target, ok := s.clientOf(to.Instance)
				if !ok {
					s.reply(cl, seq, fmt.Errorf("server: instance %s disconnected", to.Instance))
					return
				}
				target.out.send(wire.Envelope{Msg: wire.ApplyState{
					Path:        to.Path,
					State:       state,
					Origin:      cl.id,
					Destructive: destructive,
				}})
				s.mCopies.Inc()
				s.reply(cl, seq, nil)
			})
		},
		func(reason string) {
			s.reply(cl, seq, fmt.Errorf("server: backing up %s: %s", stateID(to), reason))
		})
}

func mustClass(s *Server, ref couple.ObjectRef) string {
	class, _ := s.reg.ObjectClass(ref)
	return class
}

// handleCopyTo implements passive synchronization: the sender pushes its own
// captured state onto the destination ("one person lets another person see
// his or her work", §3.1).
func (s *Server) handleCopyTo(cl *client, seq uint64, m wire.CopyTo) {
	from := couple.ObjectRef{Instance: cl.id, Path: m.FromPath}
	mapping, err := s.validateCopy(cl, from, m.To)
	if err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.completeCopy(cl, seq, from, m.To, m.State, mapping, m.Destructive)
}

// handleCopyFrom implements active synchronization: the requester pulls a
// remote object's state onto a local object ("monitoring another person's
// activities", §3.1).
func (s *Server) handleCopyFrom(cl *client, seq uint64, m wire.CopyFrom) {
	to := couple.ObjectRef{Instance: cl.id, Path: m.ToPath}
	mapping, err := s.validateCopy(cl, m.From, to)
	if err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.requestStateOpt(cl, m.From, true, m.Shallow,
		func(state widget.TreeState) {
			s.completeCopy(cl, seq, m.From, to, state, mapping, m.Destructive)
		},
		func(reason string) {
			s.reply(cl, seq, fmt.Errorf("server: fetching %s: %s", stateID(m.From), reason))
		})
}

// handleRemoteCopy lets a third instance copy state between two remote
// objects (the RemoteCopy primitive, §3.1).
func (s *Server) handleRemoteCopy(cl *client, seq uint64, m wire.RemoteCopy) {
	mapping, err := s.validateCopy(cl, m.From, m.To)
	if err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.requestState(cl, m.From, true,
		func(state widget.TreeState) {
			s.completeCopy(cl, seq, m.From, m.To, state, mapping, m.Destructive)
		},
		func(reason string) {
			s.reply(cl, seq, fmt.Errorf("server: fetching %s: %s", stateID(m.From), reason))
		})
}

// handleUndoRedo restores a historical state of the client's own object.
func (s *Server) handleUndoRedo(cl *client, seq uint64, path string, undo bool) {
	ref := couple.ObjectRef{Instance: cl.id, Path: path}
	if _, err := s.checkDeclared(ref); err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.requestState(cl, ref, false,
		func(current widget.TreeState) {
			// Undo/redo mutates the object's shard-owned history stacks.
			sh := s.shardForRef(ref)
			s.runOnShard(sh, func() {
				var snap hist.Snapshot
				var err error
				if undo {
					snap, err = sh.history.Undo(ref, current)
				} else {
					snap, err = sh.history.Redo(ref, current)
				}
				if err == nil {
					// The logged CopyTo carries the pre-walk current state —
					// the value the walk pushed on the opposite stack — so
					// replaying the walk reproduces both stacks.
					kind := eventlog.KindRedo
					if undo {
						kind = eventlog.KindUndo
					}
					s.logAppend(kind, cl.id, stateID(ref), wire.CopyTo{To: ref, State: current})
				}
				if err != nil {
					if errors.Is(err, hist.ErrEmpty) {
						s.reply(cl, seq, fmt.Errorf("server: no state to restore for %s", stateID(ref)))
						return
					}
					s.reply(cl, seq, err)
					return
				}
				cl.out.send(wire.Envelope{Msg: wire.ApplyState{
					Path:        path,
					State:       snap.State,
					Origin:      snap.Origin,
					Destructive: true,
				}})
				s.reply(cl, seq, nil)
			})
		},
		func(reason string) {
			s.reply(cl, seq, fmt.Errorf("server: reading current state of %s: %s", stateID(ref), reason))
		})
}
