// Durable-log integration: append hooks, startup replay, and late-join tail
// replay. Every state-mutating hop appends one record before its
// acknowledgement is enqueued; replaying those records through the same
// mutations (without clients, notifications, or broadcasts) rebuilds the
// server's databases after a crash or restart.
//
// Ordering: appends block the calling loop until the record is written (and
// fsynced under the `always` policy), and global-loop records (register,
// couple, declare) complete before any dependent event can reach a shard
// loop — so the single log's record order always respects the causality the
// loops established, even though shard streams interleave freely between
// causally unrelated records.
//
// Replay deliberately does NOT restore the lock table or pending-event wait
// sets: a logged event was committed (its group lock granted and broadcast
// begun), and its waiters died with the crashed process — holding its lock
// after recovery would wedge the group waiting for acknowledgements no one
// will send. Locks are transient floor control; the log persists the
// decisions, not the floor.
package server

import (
	"sort"

	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/hist"
	"cosoft/internal/perm"
	"cosoft/internal/registry"
	"cosoft/internal/wire"
)

// logAppend appends one record to the durable event log, blocking until it
// reaches the configured durability — callers place it before the
// transition's acknowledgement is enqueued. A failed append is logged and
// dropped: the server keeps serving (durability degrades, live consistency
// does not). No-op when durability is off.
func (s *Server) logAppend(kind eventlog.Kind, origin couple.InstanceID, group string, msg wire.Message) {
	if s.elog == nil {
		return
	}
	err := s.elog.Append(eventlog.Record{
		Kind:   kind,
		Origin: string(origin),
		Group:  group,
		Env:    wire.Envelope{Msg: msg},
	})
	if err != nil {
		s.slog.Warn("event log append failed",
			"kind", int(kind), "inst", string(origin), "err", err)
	}
}

// replayLog rebuilds the server databases from the durable log. It runs in
// New before any loop goroutine starts, so every mutation below touches the
// freshly built shards single-threaded. Replay starts from the newest
// decodable snapshot when one exists (reading only post-snapshot bytes),
// falling back to older snapshots and finally to offset zero. Individually
// damaged or stale records are skipped with a warning; replay never aborts
// recovery.
func (s *Server) replayLog() {
	from := int64(0)
	usedSnap := false
	if snaps, err := s.elog.Snapshots(); err != nil {
		s.slog.Warn("snapshot scan failed; replaying from offset zero", "err", err)
	} else {
		for _, ref := range snaps {
			st, derr := decodeState(ref.Payload)
			if derr != nil {
				s.slog.Warn("snapshot undecodable; falling back",
					"offset", ref.Offset, "err", derr)
				continue
			}
			s.installState(st)
			from = ref.Offset
			usedSnap = true
			break
		}
	}
	n := 0
	apply := func(rec eventlog.Record) error {
		s.replayRecord(rec)
		n++
		return nil
	}
	var err error
	if usedSnap {
		_, err = s.elog.ReplayFrom(from, apply)
	} else {
		err = s.elog.Replay(apply)
	}
	if err != nil {
		s.slog.Warn("event log replay stopped early", "records", n, "err", err)
	}
	if n > 0 || usedSnap {
		s.slog.Info("event log replayed", "records", n, "snapshot_offset", from,
			"instances", s.reg.Len(), "links", s.graph.Len())
	}
}

// replayRecord applies one logged transition. Mutations mirror the live
// handlers minus everything connection-shaped: no clients exist yet, so
// there are no notifications, broadcasts, or replies to reproduce.
func (s *Server) replayRecord(rec eventlog.Record) {
	origin := couple.InstanceID(rec.Origin)
	warn := func(why string) {
		s.slog.Warn("event log record skipped",
			"kind", int(rec.Kind), "inst", rec.Origin, "why", why)
	}
	switch rec.Kind {
	case eventlog.KindRegister:
		m, ok := rec.Env.Msg.(wire.Register)
		if !ok {
			warn("payload is not Register")
			return
		}
		// Advance the ID allocator past every recovered ID so post-restart
		// registrations can never collide with pre-crash instances.
		s.reg.RestoreSeq(origin)
		r := registry.Record{ID: origin, AppType: m.AppType, Host: m.Host, User: m.User}
		if err := s.reg.Register(r); err != nil {
			warn(err.Error())
		}
	case eventlog.KindDisconnect:
		s.replayDisconnect(origin)
	case eventlog.KindToken:
		m, ok := rec.Env.Msg.(wire.SessionToken)
		if !ok {
			warn("payload is not SessionToken")
			return
		}
		r, err := s.reg.Lookup(origin)
		if err != nil {
			warn(err.Error())
			return
		}
		if old, ok := s.sessionTok[origin]; ok {
			delete(s.sessions, old)
		}
		s.sessionTok[origin] = m.Token
		s.sessions[m.Token] = sessionRec{id: r.ID, appType: r.AppType, host: r.Host, user: r.User}
	case eventlog.KindTokenDrop:
		if tok, ok := s.sessionTok[origin]; ok {
			delete(s.sessions, tok)
			delete(s.sessionTok, origin)
		}
	case eventlog.KindResume:
		m, ok := rec.Env.Msg.(wire.Resume)
		if !ok {
			warn("payload is not Resume")
			return
		}
		sess, ok := s.sessions[m.Token]
		if !ok {
			warn("resume of unknown token")
			return
		}
		delete(s.sessions, m.Token)
		if s.sessionTok[sess.id] == m.Token {
			delete(s.sessionTok, sess.id)
		}
		if _, err := s.reg.Lookup(sess.id); err != nil {
			r := registry.Record{ID: sess.id, AppType: sess.appType, Host: sess.host, User: sess.user}
			if err := s.reg.Register(r); err != nil {
				warn(err.Error())
			}
		}
	case eventlog.KindDeclare:
		m, ok := rec.Env.Msg.(wire.Declare)
		if !ok {
			warn("payload is not Declare")
			return
		}
		if err := s.reg.DeclareObject(origin, m.Path, m.Class); err != nil {
			warn(err.Error())
		}
	case eventlog.KindRetract:
		m, ok := rec.Env.Msg.(wire.Retract)
		if !ok {
			warn("payload is not Retract")
			return
		}
		ref := couple.ObjectRef{Instance: origin, Path: m.Path}
		s.graph.RemoveObject(ref)
		s.reg.RetractObject(origin, m.Path)
		sh := s.shardForRef(ref)
		sh.history.Forget(ref)
		delete(sh.tails, ref)
		s.router.dropRef(ref)
	case eventlog.KindCouple:
		m, ok := rec.Env.Msg.(wire.Couple)
		if !ok {
			warn("payload is not Couple")
			return
		}
		if s.sharded {
			s.replayMergeShards(m.From, m.To)
		}
		if err := s.graph.AddLink(couple.Link{From: m.From, To: m.To, Creator: origin}); err != nil {
			warn(err.Error())
		}
	case eventlog.KindDecouple:
		m, ok := rec.Env.Msg.(wire.Decouple)
		if !ok {
			warn("payload is not Decouple")
			return
		}
		if !s.graph.RemoveLink(m.From, m.To) {
			s.graph.RemoveLink(m.To, m.From)
		}
	case eventlog.KindEvent:
		m, ok := rec.Env.Msg.(wire.Exec)
		if !ok {
			warn("payload is not Exec")
			return
		}
		// Restore the birth shard's sequence so post-restart events get IDs
		// strictly greater than every logged one. The event itself was
		// fully resolved or died with its waiters — only the ID allocation
		// and the late-join tail survive it.
		sh := s.birthShard(m.EventID)
		if q := (m.EventID-1)/uint64(len(s.shards)) + 1; q > sh.seq {
			sh.seq = q
		}
		if s.opts.ReplayTail {
			s.shardForRef(m.Origin).pushTail(m.Origin, m)
		}
	case eventlog.KindHist:
		m, ok := rec.Env.Msg.(wire.CopyTo)
		if !ok {
			warn("payload is not CopyTo")
			return
		}
		sh := s.shardForRef(m.To)
		sh.history.Record(hist.Snapshot{Ref: m.To, State: m.State, Origin: origin})
	case eventlog.KindUndo, eventlog.KindRedo:
		m, ok := rec.Env.Msg.(wire.CopyTo)
		if !ok {
			warn("payload is not CopyTo")
			return
		}
		sh := s.shardForRef(m.To)
		var err error
		if rec.Kind == eventlog.KindUndo {
			_, err = sh.history.Undo(m.To, m.State)
		} else {
			_, err = sh.history.Redo(m.To, m.State)
		}
		if err != nil {
			warn(err.Error())
		}
	case eventlog.KindPerm:
		switch m := rec.Env.Msg.(type) {
		case wire.GrantPerm:
			s.perms.Grant(perm.Rule{User: m.User, State: m.State, Right: perm.Right(m.Right)})
		case wire.RevokePerm:
			s.perms.Revoke(perm.Rule{User: m.User, State: m.State, Right: perm.Right(m.Right)})
		default:
			warn("payload is not GrantPerm or RevokePerm")
		}
	default:
		warn("unknown record kind")
	}
}

// replayDisconnect prunes an instance exactly as dropClient does, minus the
// connection-shaped parts (outboxes, notifications, pending events — none
// exist during replay). Session tokens deliberately survive, matching live
// behavior: a disconnected instance may still resume.
func (s *Server) replayDisconnect(id couple.InstanceID) {
	s.graph.RemoveInstance(id)
	for _, sh := range s.shards {
		sh.locks.ReleaseInstance(id)
		sh.history.ForgetInstance(id)
		for ref := range sh.tails {
			if ref.Instance == id {
				delete(sh.tails, ref)
			}
		}
	}
	s.router.dropInstance(id)
	s.reg.Deregister(id)
}

// replayMergeShards is mergeShards for replay time: no loops are running,
// so the group state moves synchronously instead of via hold markers and
// install channels. Locks and pending events do not exist during replay;
// only histories, tails and routes migrate.
func (s *Server) replayMergeShards(from, to couple.ObjectRef) {
	shFrom := s.shardForRef(from)
	shTo := s.shardForRef(to)
	if shFrom == shTo {
		return
	}
	gFrom := s.graph.Group(from)
	gTo := s.graph.Group(to)
	winner, loser, refs := shFrom, shTo, gTo
	if len(gTo) > len(gFrom) {
		winner, loser, refs = shTo, shFrom, gFrom
	}
	refset := make(map[couple.ObjectRef]bool, len(refs))
	for _, ref := range refs {
		refset[ref] = true
	}
	s.router.setRoutes(refs, winner.idx)
	winner.history.Install(loser.history.Extract(refset))
	for ref := range refset {
		if t, ok := loser.tails[ref]; ok {
			winner.tails[ref] = t
			delete(loser.tails, ref)
		}
	}
}

// replayTails catches a fresh couple link's two sides up on each other's
// retained event tails: each side's members receive the other side's recent
// committed events as ordinary Exec messages through their outboxes, so a
// late joiner converges from the log tail instead of pulling CopyFrom state
// from a live peer. gFrom and gTo are the pre-merge groups (nil when
// ReplayTail is off); it runs on the global loop after AddLink, and the
// sends hop onto the merged group's shard where the tails live.
func (s *Server) replayTails(gFrom, gTo []couple.ObjectRef) {
	if !s.opts.ReplayTail || len(gFrom) == 0 || len(gTo) == 0 {
		return
	}
	sh := s.shardForRef(gFrom[0])
	s.runOnShard(sh, func() {
		s.sendTail(sh, gFrom, gTo)
		s.sendTail(sh, gTo, gFrom)
	})
}

// sendTail streams the sources' retained events, in event-ID order, to
// every receiver. Acks for the replayed Execs hit the stale-ack tolerance
// in ackExec (the events resolved long ago), so the catch-up path needs no
// bookkeeping of its own.
func (s *Server) sendTail(sh *shard, sources, receivers []couple.ObjectRef) {
	var evs []wire.Exec
	for _, ref := range sources {
		for _, te := range sh.tails[ref] {
			evs = append(evs, te.exec)
		}
	}
	if len(evs) == 0 {
		return
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].EventID < evs[j].EventID })
	for _, member := range receivers {
		target, ok := s.clientOf(member.Instance)
		if !ok {
			continue
		}
		for _, e := range evs {
			if member == e.Origin {
				continue
			}
			e.TargetPath = member.Path
			target.out.send(wire.Envelope{Msg: e})
		}
	}
}
