package server

import (
	"fmt"
	"testing"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/wire"
)

// waitNoLiveBodies polls until every shared broadcast body in the process
// has been released — the quiescence invariant of the encode-once path.
func waitNoLiveBodies(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if wire.LiveSharedBodies() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("LiveSharedBodies = %d at quiescence, want 0 (leaked shared body)", wire.LiveSharedBodies())
}

// TestOutboxDeathReleasesSharedBodiesExactlyOnce is the regression test for
// the eviction decref bug class: when a connection dies (the eviction path
// kills it out from under the writer) while shared-body records are both
// in flight and still queued, every reference must be dropped exactly once.
// A double release panics in bodyBuf.unref, a leak trips the liveBodies
// oracle — and -race checks the release ordering.
func TestOutboxDeathReleasesSharedBodiesExactlyOnce(t *testing.T) {
	o, peer := outboxPair(t, false, 0, 8)
	se := wire.NewSharedExec(7, "set", nil, couple.ObjectRef{Instance: "a", Path: "/n"})

	// The writer takes the first record and blocks writing it (net.Pipe has
	// no buffer and nobody reads) — a broadcast caught mid-flush.
	o.sendShared(wire.Envelope{}, "/m0", se)
	waitDrained(t, o, 1)
	// The rest of the fan-out piles up behind the blocked writer.
	for i := 1; i <= 4; i++ {
		o.sendShared(wire.Envelope{}, fmt.Sprintf("/m%d", i), se)
	}
	se.Release() // creator is done enqueueing

	// Kill the connection out from under the writer, exactly as dropClient
	// does on eviction: the blocked write errors, flush releases the record
	// it held, and the writer loop releases the still-queued backlog.
	peer.Close()
	o.close()

	waitNoLiveBodies(t)

	// Sends after death must not take references the dead writer would
	// never release.
	o.sendShared(wire.Envelope{}, "/late", se)
	waitNoLiveBodies(t)
}
