package server_test

import (
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// These tests inject protocol-level misbehaviour a correct client never
// produces, and assert the server stays consistent and responsive.

func TestSpoofedStateReplyIgnored(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x value="target"`, client.Options{})
	mustOK(t, a.Declare("/x"))
	// The attacker replies to a StateRequest id that was never issued (and
	// later, one issued to someone else).
	rc := newRawClient(t, h, "app", "mallory")
	if err := rc.conn.Write(wire.Envelope{Msg: wire.StateReply{RequestID: 999, OK: true}}); err != nil {
		t.Fatal(err)
	}
	// The server must still serve normal traffic afterwards.
	rc.mustOK(wire.Declare{Path: "/y", Class: "textfield"})

	// Now create a real fetch to a, and have mallory race a spoofed reply
	// for a plausible id. The server only accepts replies from the fetch's
	// target instance.
	done := make(chan error, 1)
	go func() {
		_, err := a.FetchState(a.Ref("/x"), true)
		done <- err
	}()
	// Burst of spoofed replies over plausible request ids.
	for id := uint64(1); id < 10; id++ {
		if err := rc.conn.Write(wire.Envelope{Msg: wire.StateReply{
			RequestID: id, OK: true,
			State: widget.TreeState{Class: "textfield", Name: "x",
				Attrs: attr.Set{widget.AttrValue: attr.String("EVIL")}},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("legitimate fetch failed: %v", err)
	}
}

func TestStaleAndForeignExecAcks(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	rc := newRawClient(t, h, "app", "u3")
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	mustOK(t, a.Couple("/x", couple.ObjectRef{Instance: rc.id, Path: "/x"}))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "group", func() bool { return len(a.CO("/x")) == 2 })

	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	exec := nextEvent[wire.Exec](rc)
	// Acks for nonexistent events and duplicate acks must be harmless.
	for _, id := range []uint64{0, 42, exec.EventID} {
		if err := rc.conn.Write(wire.Envelope{Msg: wire.ExecAck{EventID: id}}); err != nil {
			t.Fatal(err)
		}
	}
	// b's real ack plus rc's ack complete the event; extra duplicates after
	// completion are ignored.
	waitFor(t, "unlocked", func() bool {
		_, held := h.srv.Stats(), false
		// Probe by dispatching another event from a.
		err := a.DispatchChecked(&widget.Event{
			Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("w")},
		})
		if err == nil {
			held = true
			// Complete this second event too so the test can exit cleanly.
			ex := nextEvent[wire.Exec](rc)
			rc.conn.Write(wire.Envelope{Msg: wire.ExecAck{EventID: ex.EventID}}) //nolint:errcheck
		}
		return held
	})
	if err := rc.conn.Write(wire.Envelope{Msg: wire.ExecAck{EventID: exec.EventID}}); err != nil {
		t.Fatal(err)
	}
}

func TestUnexpectedMessageGetsError(t *testing.T) {
	h := newHarness(t, server.Options{})
	rc := newRawClient(t, h, "app", "u1")
	// Registered is a server-to-client message; sending it to the server is
	// a protocol violation answered with Err.
	env := rc.call(wire.Registered{ID: "fake"})
	if _, isErr := env.Msg.(wire.Err); !isErr {
		t.Fatalf("expected Err, got %s", env.Msg.MsgType())
	}
	// The connection survives.
	rc.mustOK(wire.Declare{Path: "/x", Class: "button"})
}

func TestDeregisterThenTrafficIsRejected(t *testing.T) {
	h := newHarness(t, server.Options{})
	rc := newRawClient(t, h, "app", "u1")
	rc.mustOK(wire.Declare{Path: "/x", Class: "button"})
	rc.mustOK(wire.Deregister{})
	// After deregistering, declares fail because the registration record is
	// gone.
	env := rc.call(wire.Declare{Path: "/y", Class: "button"})
	if _, isErr := env.Msg.(wire.Err); !isErr {
		t.Fatalf("expected Err after deregister, got %s", env.Msg.MsgType())
	}
}

func TestCoupleToDeadInstanceFails(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	mustOK(t, a.Declare("/x"))
	ghost := couple.ObjectRef{Instance: "ghost-1", Path: "/x"}
	if err := a.Couple("/x", ghost); err == nil {
		t.Fatal("coupling to unknown instance must fail")
	}
	if err := a.CopyTo("/x", ghost, false); err == nil {
		t.Fatal("copy to unknown instance must fail")
	}
	if _, err := a.FetchState(ghost, true); err == nil {
		t.Fatal("fetch from unknown instance must fail")
	}
}

func TestEventOnUndeclaredObjectStillLocal(t *testing.T) {
	// An event on an object the client never declared (and never coupled)
	// must run locally without server involvement.
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("local")},
	}))
	if got := attrOf(t, a, "/x", widget.AttrValue).AsString(); got != "local" {
		t.Errorf("value = %q", got)
	}
	if h.srv.Stats().Events != 0 {
		t.Error("server saw the event")
	}
}

func TestServerPermissionsPreconfigured(t *testing.T) {
	// The Permissions() accessor allows administrative setup before any
	// instance connects.
	srv := server.New(server.Options{})
	defer srv.Close()
	if srv.Permissions() == nil {
		t.Fatal("Permissions nil")
	}
	if srv.Permissions().Len() != 0 {
		t.Fatal("fresh table not empty")
	}
}

func TestStatsAfterClose(t *testing.T) {
	srv := server.New(server.Options{})
	srv.Close()
	if got := srv.Stats(); got != (server.Stats{}) {
		t.Errorf("Stats after close = %+v", got)
	}
	srv.Close() // idempotent
}

func TestRegistrationAfterServerClosed(t *testing.T) {
	srv := server.New(server.Options{})
	srv.Close()
	link := netsim.NewLink(0)
	defer link.Close()
	go srv.HandleConn(wire.NewConn(link.B))
	reg := widget.NewRegistry()
	if _, err := client.New(link.A, client.Options{
		Registry: reg, RPCTimeout: 500 * time.Millisecond,
	}); err == nil {
		t.Fatal("registration against a closed server must fail")
	}
}
