package server_test

// Chaos soak for snapshots + compaction (make chaos-compact): the server is
// killed and restarted repeatedly under live traffic while a tight snapshot
// cadence continuously snapshots the log and compacts segments underneath
// it. Afterwards every client must still be functional under its original
// identity (no acked transition lost to a snapshot or a deleted segment),
// the directory must pass fsck, compaction must actually have run, and the
// segment bytes left on disk must be bounded well below everything appended.

import (
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

func TestChaosCompactSoak(t *testing.T) {
	const restarts = 4
	// The metrics registry is shared across every incarnation, so the
	// counters accumulate over the whole soak.
	reg := obs.NewRegistry()
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelWarn}))
	d := newDurableLogServer(t,
		server.Options{SnapshotInterval: 25 * time.Millisecond, SnapshotBytes: 4096, Logger: logger},
		eventlog.Options{Sync: eventlog.SyncAlways, SegmentBytes: 4096, Metrics: reg})

	specs := []struct{ user, val string }{{"u1", "a"}, {"u2", "b"}, {"u3", "c"}}
	clients := make([]*client.Client, len(specs))
	for i, sp := range specs {
		clients[i] = d.dial("app", sp.user, `textfield x value=""`)
		mustOK(t, clients[i].Declare("/x"))
	}
	for i := 1; i < len(clients); i++ {
		mustOK(t, clients[0].Couple("/x", clients[i].Ref("/x")))
	}
	waitFor(t, "group formed", func() bool {
		for _, c := range clients {
			if len(c.CO("/x")) != len(clients)-1 {
				return false
			}
		}
		return true
	})
	ids := make([]couple.InstanceID, len(clients))
	for i, c := range clients {
		ids[i] = c.ID()
	}

	var acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := c.DispatchChecked(&widget.Event{
					Path: "/x", Name: widget.EventChanged,
					Args: []attr.Value{attr.String(specs[i].val)},
				})
				if err == nil {
					acked.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	for i := 0; i < restarts; i++ {
		time.Sleep(130 * time.Millisecond)
		d.restart()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every client must still be alive under its original identity — each
	// restart replayed snapshot + tail, so a state gap would surface here.
	for i, c := range clients {
		i, c := i, c
		var lastMsg string
		waitFor(t, "client functional after soak", func() bool {
			err := c.DispatchChecked(&widget.Event{
				Path: "/x", Name: widget.EventChanged,
				Args: []attr.Value{attr.String("final-" + specs[i].user)},
			})
			if err != nil && err.Error() != lastMsg {
				lastMsg = err.Error()
				t.Logf("client %d (%s) dispatch: %v", i, specs[i].user, err)
			}
			return err == nil
		})
		if c.ID() != ids[i] {
			t.Fatalf("client %d changed identity: %s -> %s", i, ids[i], c.ID())
		}
	}

	d.stop()
	rep, err := eventlog.Fsck(d.dir)
	if err != nil {
		t.Fatalf("fsck after soak: %v", err)
	}
	if rep.Corrupt {
		t.Fatalf("log corrupt after soak: %s", rep.Detail)
	}

	counters := reg.Snapshot().Counters
	if counters["server.log.snapshots"] == 0 {
		t.Fatal("soak wrote no snapshots despite the tight cadence")
	}
	if counters["server.log.compacted_segments"] == 0 {
		t.Fatal("soak compacted no segments despite the small segment size")
	}

	// Bounded disk: compaction keeps only the segments behind the retained
	// snapshots, so the segment bytes surviving on disk must be strictly
	// less than everything the soak appended.
	var segBytes, snapBytes int64
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".seg":
			segBytes += info.Size()
		case ".snap":
			snapBytes += info.Size()
		}
	}
	appended := int64(counters["server.log.bytes"])
	if segBytes >= appended {
		t.Fatalf("disk not bounded: %d segment bytes on disk, %d appended (compacted=%d)",
			segBytes, appended, counters["server.log.compacted_segments"])
	}
	t.Logf("soak: %d restarts, %d acked events, %d bytes appended, %d segment + %d snapshot bytes on disk, %d snapshots, %d segments compacted, %d snapshot restores",
		restarts, acked.Load(), appended, segBytes, snapBytes,
		counters["server.log.snapshots"], counters["server.log.compacted_segments"],
		counters["server.log.replay_from_snapshot"])
}
