package server_test

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/compat"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/netsim"
	"cosoft/internal/perm"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// envBatchLimit lets CI soak the whole suite in batched mode: when
// COSOFT_BATCH_LIMIT=<n> is set, every harness server defaults to that
// BatchLimit and every dialed client opts into the batch extension, so all
// integration and chaos scenarios exercise the packed fan-out path.
var envBatchLimit = func() int {
	n, _ := strconv.Atoi(os.Getenv("COSOFT_BATCH_LIMIT"))
	return n
}()

// envShards lets CI soak the whole suite in sharded mode: when
// COSOFT_SHARDS=<n> is set, every harness server defaults to that shard
// count, so all integration and chaos scenarios exercise the per-group
// shard loops and cross-shard handoffs.
var envShards = func() int {
	n, _ := strconv.Atoi(os.Getenv("COSOFT_SHARDS"))
	return n
}()

// envLogDir lets CI soak the whole suite with durability on: when
// COSOFT_LOG_DIR=<dir> is set, every harness server appends to its own
// event log under that directory, so every integration and chaos scenario
// also exercises the append-before-ack path.
var envLogDir = os.Getenv("COSOFT_LOG_DIR")

// envSnapshotBytes lets CI soak the whole suite with snapshotting and
// compaction on: when COSOFT_SNAPSHOT_BYTES=<n> is set alongside
// COSOFT_LOG_DIR, every harness log rotates segments at n bytes and its
// server snapshots + compacts on the same byte cadence, so every
// integration and chaos scenario runs against a log that is continuously
// snapshotted and compacted underneath it.
var envSnapshotBytes = func() int64 {
	n, _ := strconv.ParseInt(os.Getenv("COSOFT_SNAPSHOT_BYTES"), 10, 64)
	return n
}()

// harness runs one server and dials clients over in-process links.
type harness struct {
	t   *testing.T
	srv *server.Server
	wg  sync.WaitGroup
}

func newHarness(t *testing.T, opts server.Options) *harness {
	t.Helper()
	if opts.BatchLimit == 0 {
		opts.BatchLimit = envBatchLimit
	}
	if opts.Shards == 0 {
		opts.Shards = envShards
	}
	if envLogDir != "" && opts.EventLog == nil {
		dir, err := os.MkdirTemp(envLogDir, "cosoft-log-*")
		if err != nil {
			t.Fatalf("log dir under COSOFT_LOG_DIR: %v", err)
		}
		elog, err := eventlog.Open(eventlog.Options{Dir: dir, SegmentBytes: envSnapshotBytes})
		if err != nil {
			t.Fatalf("open event log: %v", err)
		}
		// Registered before the server cleanup below, so (LIFO) the server
		// closes — and finishes its in-flight appends — before the log does.
		t.Cleanup(func() {
			elog.Close()
			os.RemoveAll(dir)
		})
		opts.EventLog = elog
		if envSnapshotBytes > 0 {
			opts.SnapshotBytes = envSnapshotBytes
			if opts.SnapshotInterval == 0 {
				opts.SnapshotInterval = 20 * time.Millisecond
			}
		}
	}
	h := &harness{t: t, srv: server.New(opts)}
	t.Cleanup(func() {
		h.srv.Close()
		h.wg.Wait()
	})
	return h
}

// dial connects a new client with its own widget registry built from spec.
func (h *harness) dial(appType, user, spec string, copts client.Options) *client.Client {
	h.t.Helper()
	reg := widget.NewRegistry()
	if spec != "" {
		widget.MustBuild(reg, "/", spec)
	}
	link := netsim.NewLink(0)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(link.B))
	}()
	copts.AppType = appType
	copts.User = user
	copts.Host = "testhost"
	copts.Registry = reg
	if copts.RPCTimeout == 0 {
		copts.RPCTimeout = 5 * time.Second
	}
	if envBatchLimit > 0 {
		copts.Batching = true
	}
	c, err := client.New(link.A, copts)
	if err != nil {
		h.t.Fatalf("dial %s: %v", appType, err)
	}
	h.t.Cleanup(c.Close)
	return c
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func attrOf(t *testing.T, c *client.Client, path, name string) attr.Value {
	t.Helper()
	w, err := c.Registry().Lookup(path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	return w.Attr(name)
}

func TestCoupleAndEventPropagation(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{})
	b := h.dial("editor", "bob", `textfield note value=""`, client.Options{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))

	waitFor(t, "coupling mirrored at A", func() bool { return a.Coupled("/note") })
	waitFor(t, "coupling mirrored at B", func() bool { return b.Coupled("/note") })

	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("shared text")},
	}))
	if got := attrOf(t, a, "/note", widget.AttrValue).AsString(); got != "shared text" {
		t.Errorf("origin value = %q", got)
	}
	waitFor(t, "value replicated to B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "shared text"
	})

	stats := h.srv.Stats()
	if stats.Events != 1 || stats.ExecsSent != 1 || stats.Links != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestTransitiveClosurePropagation(t *testing.T) {
	h := newHarness(t, server.Options{})
	spec := `scale s min=0 max=100`
	a := h.dial("app", "u1", spec, client.Options{})
	b := h.dial("app", "u2", spec, client.Options{})
	c := h.dial("app", "u3", spec, client.Options{})
	for _, cl := range []*client.Client{a, b, c} {
		mustOK(t, cl.Declare("/s"))
	}
	// Chain a—b—c: CO(a) must include c through the closure.
	mustOK(t, a.Couple("/s", b.Ref("/s")))
	mustOK(t, b.Couple("/s", c.Ref("/s")))
	waitFor(t, "closure at A", func() bool { return len(a.CO("/s")) == 2 })

	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/s", Name: widget.EventMoved, Args: []attr.Value{attr.Int(42)},
	}))
	for name, cl := range map[string]*client.Client{"B": b, "C": c} {
		cl := cl
		waitFor(t, "position at "+name, func() bool {
			return attrOf(t, cl, "/s", widget.AttrPosition).AsInt() == 42
		})
	}
}

func TestHeterogeneousCouplingWithCorrespondence(t *testing.T) {
	corr := compat.NewCorrespondences()
	corr.Declare("textfield", "label", map[string]string{widget.AttrValue: widget.AttrLabel})
	h := newHarness(t, server.Options{Correspondences: corr})
	// Note: events across heterogeneous classes re-execute the *event*; a
	// textfield 'changed' cannot re-execute on a label, so heterogeneous
	// coupling is exercised through state copies here (as TORI does for
	// result forms).
	a := h.dial("editor", "alice", `textfield src value="hello"`, client.Options{Correspondences: corr})
	b := h.dial("viewer", "bob", `label dst label=""`, client.Options{Correspondences: corr})
	mustOK(t, a.Declare("/src"))
	mustOK(t, b.Declare("/dst"))

	mustOK(t, a.CopyTo("/src", b.Ref("/dst"), false))
	waitFor(t, "translated state at B", func() bool {
		return attrOf(t, b, "/dst", widget.AttrLabel).AsString() == "hello"
	})

	// Coupling heterogeneous-but-compatible classes is permitted.
	mustOK(t, a.Couple("/src", b.Ref("/dst")))
}

func TestIncompatibleCouplingRejected(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `canvas c`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/c"))
	err := a.Couple("/x", b.Ref("/c"))
	if err == nil || !strings.Contains(err.Error(), "not compatible") {
		t.Fatalf("err = %v", err)
	}
	// Undeclared objects cannot be coupled either.
	if err := a.Couple("/x", b.Ref("/nowhere")); err == nil {
		t.Fatal("coupling undeclared object must fail")
	}
}

func TestCopyFromAndUndoRedo(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x value="mine"`, client.Options{})
	b := h.dial("app", "u2", `textfield x value="theirs"`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))

	// Active synchronization: A pulls B's state.
	mustOK(t, a.CopyFrom(b.Ref("/x"), "/x", false))
	waitFor(t, "pulled state", func() bool {
		return attrOf(t, a, "/x", widget.AttrValue).AsString() == "theirs"
	})

	// The overwritten state is in the historical database: undo restores it.
	mustOK(t, a.Undo("/x"))
	waitFor(t, "undone state", func() bool {
		return attrOf(t, a, "/x", widget.AttrValue).AsString() == "mine"
	})
	mustOK(t, a.Redo("/x"))
	waitFor(t, "redone state", func() bool {
		return attrOf(t, a, "/x", widget.AttrValue).AsString() == "theirs"
	})
	// Undo past the bottom fails cleanly.
	mustOK(t, a.Undo("/x"))
	waitFor(t, "second undo", func() bool {
		return attrOf(t, a, "/x", widget.AttrValue).AsString() == "mine"
	})
	if err := a.Undo("/x"); err == nil {
		t.Fatal("undo past bottom must fail")
	}
}

func TestRemoteCopyByThirdInstance(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("student", "s1", `textfield answer value="42"`, client.Options{})
	b := h.dial("student", "s2", `textfield answer value=""`, client.Options{})
	teacher := h.dial("teacher", "t", "", client.Options{})
	mustOK(t, a.Declare("/answer"))
	mustOK(t, b.Declare("/answer"))

	mustOK(t, teacher.RemoteCopy(a.Ref("/answer"), b.Ref("/answer"), false))
	waitFor(t, "state copied s1→s2", func() bool {
		return attrOf(t, b, "/answer", widget.AttrValue).AsString() == "42"
	})
}

const queryFormSpec = `form query title="Query"
  textfield author value=""
  menu op items=[eq,substring] selection="eq"
  button go label="Search"`

func TestCoupleTreeWithInitialPush(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("tori", "u1", queryFormSpec, client.Options{})
	// B's form has identical structure but different names and states.
	bSpec := `form query title="Other"
  textfield writer value="old"
  menu operator items=[eq,substring] selection="substring"
  button submit label="Go"`
	b := h.dial("tori", "u2", bSpec, client.Options{})
	mustOK(t, a.DeclareTree("/query"))
	mustOK(t, b.DeclareTree("/query"))

	n, err := a.CoupleTree("/query", b.Ref("/query"), client.SyncPush)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("links created = %d, want 4", n)
	}
	// Initial push aligned the relevant state.
	waitFor(t, "initial push", func() bool {
		return attrOf(t, b, "/query/writer", widget.AttrValue).AsString() == "" &&
			attrOf(t, b, "/query/operator", widget.AttrSelection).AsString() == "eq"
	})
	// Events on a child now propagate to the mapped child.
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/query/author", Name: widget.EventChanged, Args: []attr.Value{attr.String("knuth")},
	}))
	waitFor(t, "child event propagated", func() bool {
		return attrOf(t, b, "/query/writer", widget.AttrValue).AsString() == "knuth"
	})

	// DecoupleTree removes all pair links.
	removed, err := a.DecoupleTree("/query", b.Ref("/query"))
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Errorf("links removed = %d, want 4", removed)
	}
	waitFor(t, "decoupled", func() bool { return !a.Coupled("/query/author") })
	// Objects persist after decoupling, with their last state.
	if got := attrOf(t, b, "/query/writer", widget.AttrValue).AsString(); got != "knuth" {
		t.Errorf("decoupled object state = %q", got)
	}
}

func TestDecoupleStopsPropagation(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `toggle t`, client.Options{})
	b := h.dial("app", "u2", `toggle t`, client.Options{})
	mustOK(t, a.Declare("/t"))
	mustOK(t, b.Declare("/t"))
	mustOK(t, a.Couple("/t", b.Ref("/t")))
	waitFor(t, "coupled", func() bool { return b.Coupled("/t") })

	mustOK(t, a.Registry().Dispatch(&widget.Event{Path: "/t", Name: widget.EventToggled}))
	waitFor(t, "toggle replicated", func() bool {
		return attrOf(t, b, "/t", widget.AttrState).AsBool()
	})

	mustOK(t, a.Decouple("/t", b.Ref("/t")))
	waitFor(t, "decoupled", func() bool { return !a.Coupled("/t") && !b.Coupled("/t") })

	mustOK(t, a.Registry().Dispatch(&widget.Event{Path: "/t", Name: widget.EventToggled}))
	time.Sleep(20 * time.Millisecond)
	if !attrOf(t, b, "/t", widget.AttrState).AsBool() {
		t.Error("B's toggle must keep its last state after decoupling")
	}
	if attrOf(t, a, "/t", widget.AttrState).AsBool() {
		t.Error("A's local toggle must have flipped back off")
	}
}

func TestDestroyAutoDecouples(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `form f
  textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	mustOK(t, a.DeclareTree("/f"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/f/x", b.Ref("/x")))
	waitFor(t, "coupled", func() bool { return b.Coupled("/x") })

	mustOK(t, a.Registry().Destroy("/f/x"))
	waitFor(t, "auto-decoupled", func() bool { return !b.Coupled("/x") })
}

func TestDisconnectAutoDecouples(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "coupled", func() bool { return b.Coupled("/x") })

	a.Close()
	waitFor(t, "auto-decoupled on disconnect", func() bool { return !b.Coupled("/x") })
	waitFor(t, "deregistered", func() bool { return h.srv.Stats().Instances == 1 })
}

func TestCommands(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", "", client.Options{})
	b := h.dial("app", "u2", "", client.Options{})
	c := h.dial("app", "u3", "", client.Options{})

	type rcvd struct {
		from    couple.InstanceID
		payload string
	}
	var mu sync.Mutex
	got := map[string][]rcvd{}
	record := func(name string) client.CommandHandler {
		return func(from couple.InstanceID, payload []byte) {
			mu.Lock()
			defer mu.Unlock()
			got[name] = append(got[name], rcvd{from, string(payload)})
		}
	}
	b.OnCommand("refresh", record("b"))
	c.OnCommand("refresh", record("c"))

	// Broadcast reaches both.
	mustOK(t, a.SendCommand("refresh", []byte("all")))
	waitFor(t, "broadcast", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got["b"]) == 1 && len(got["c"]) == 1
	})
	// Targeted reaches only b.
	mustOK(t, a.SendCommand("refresh", []byte("only-b"), b.ID()))
	waitFor(t, "targeted", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got["b"]) == 2 && len(got["c"]) == 1
	})
	mu.Lock()
	if got["b"][1].payload != "only-b" || got["b"][1].from != a.ID() {
		t.Errorf("targeted = %+v", got["b"][1])
	}
	mu.Unlock()
	// Unknown target errors.
	if err := a.SendCommand("refresh", nil, couple.InstanceID("ghost")); err == nil {
		t.Error("unknown target must fail")
	}
}

func TestPermissions(t *testing.T) {
	h := newHarness(t, server.Options{})
	teacher := h.dial("teacher", "teacher", `textfield board value="lesson"`, client.Options{})
	student := h.dial("student", "student", `textfield desk value="hw"`, client.Options{})
	mustOK(t, teacher.Declare("/board"))
	mustOK(t, student.Declare("/desk"))

	// Install a restrictive rule set: teacher may do everything on student
	// objects; the student gets nothing on the teacher's.
	for _, right := range []perm.Right{perm.RightView, perm.RightCopy, perm.RightCouple, perm.RightControl} {
		mustOK(t, teacher.GrantPerm("teacher", "*", uint8(right)))
	}

	// Student cannot copy onto the teacher's board...
	if err := student.CopyTo("/desk", teacher.Ref("/board"), false); err == nil {
		t.Fatal("student CopyTo must be denied")
	}
	// ...nor read it, nor couple to it.
	if _, err := student.FetchState(teacher.Ref("/board"), true); err == nil {
		t.Fatal("student FetchState must be denied")
	}
	if err := student.Couple("/desk", teacher.Ref("/board")); err == nil {
		t.Fatal("student Couple must be denied")
	}
	// The teacher can do all three.
	mustOK(t, teacher.CopyFrom(student.Ref("/desk"), "/board", false))
	waitFor(t, "teacher pulled student state", func() bool {
		return attrOf(t, teacher, "/board", widget.AttrValue).AsString() == "hw"
	})
	// Granting the student view access opens exactly that.
	mustOK(t, teacher.GrantPerm("student", string(teacher.ID())+":*", uint8(perm.RightView)))
	if _, err := student.FetchState(teacher.Ref("/board"), true); err != nil {
		t.Fatalf("student FetchState after grant: %v", err)
	}
	if err := student.Couple("/desk", teacher.Ref("/board")); err == nil {
		t.Fatal("view grant must not allow coupling")
	}
}

func TestInstancesListing(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("tori", "u1", `textfield x`, client.Options{})
	_ = h.dial("cosoft", "u2", "", client.Options{})
	mustOK(t, a.Declare("/x"))
	infos, err := a.Instances()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("instances = %d", len(infos))
	}
	byType := map[string]wire.InstanceInfo{}
	for _, info := range infos {
		byType[info.AppType] = info
	}
	if len(byType["tori"].Objects) != 1 || byType["tori"].Objects[0].Class != "textfield" {
		t.Errorf("tori objects = %+v", byType["tori"].Objects)
	}
	if byType["cosoft"].User != "u2" {
		t.Errorf("cosoft info = %+v", byType["cosoft"])
	}
}

// rawClient speaks the wire protocol directly, to create protocol-level
// conditions a real client never would (held acks, malformed traffic).
type rawClient struct {
	t    *testing.T
	conn *wire.Conn
	id   couple.InstanceID
	seq  uint64
	mu   sync.Mutex
	// inbox of server-initiated messages; replies keyed by RefSeq.
	events  chan wire.Envelope
	replies map[uint64]chan wire.Envelope
	done    chan struct{}
}

func newRawClient(t *testing.T, h *harness, appType, user string) *rawClient {
	t.Helper()
	link := netsim.NewLink(0)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(link.B))
	}()
	rc := &rawClient{
		t:       t,
		conn:    wire.NewConn(link.A),
		seq:     1,
		events:  make(chan wire.Envelope, 64),
		replies: make(map[uint64]chan wire.Envelope),
		done:    make(chan struct{}),
	}
	if err := rc.conn.Write(wire.Envelope{Seq: 1, Msg: wire.Register{AppType: appType, User: user, Host: "raw"}}); err != nil {
		t.Fatal(err)
	}
	env, err := rc.conn.Read()
	if err != nil {
		t.Fatal(err)
	}
	rc.id = env.Msg.(wire.Registered).ID
	go func() {
		for {
			env, err := rc.conn.Read()
			if err != nil {
				close(rc.events)
				return
			}
			if env.RefSeq != 0 {
				rc.mu.Lock()
				ch := rc.replies[env.RefSeq]
				delete(rc.replies, env.RefSeq)
				rc.mu.Unlock()
				if ch != nil {
					ch <- env
					continue
				}
			}
			select {
			case rc.events <- env:
			case <-rc.done:
				return
			}
		}
	}()
	t.Cleanup(func() {
		close(rc.done)
		rc.conn.Close()
	})
	return rc
}

func (rc *rawClient) call(msg wire.Message) wire.Envelope {
	rc.t.Helper()
	rc.mu.Lock()
	rc.seq++
	seq := rc.seq
	ch := make(chan wire.Envelope, 1)
	rc.replies[seq] = ch
	rc.mu.Unlock()
	if err := rc.conn.Write(wire.Envelope{Seq: seq, Msg: msg}); err != nil {
		rc.t.Fatalf("raw write: %v", err)
	}
	select {
	case env := <-ch:
		return env
	case <-time.After(5 * time.Second):
		rc.t.Fatalf("raw call %s timed out", msg.MsgType())
		return wire.Envelope{}
	}
}

// send fires an uncorrelated message (no reply expected). Safe concurrently
// with call: wire.Conn serializes writers.
func (rc *rawClient) send(msg wire.Message) {
	rc.t.Helper()
	if err := rc.conn.Write(wire.Envelope{Msg: msg}); err != nil {
		rc.t.Errorf("raw send: %v", err)
	}
}

func (rc *rawClient) mustOK(msg wire.Message) {
	rc.t.Helper()
	env := rc.call(msg)
	if e, bad := env.Msg.(wire.Err); bad {
		rc.t.Fatalf("raw %s: %s", msg.MsgType(), e.Text)
	}
}

// nextEvent returns the next server-initiated message of the wanted type,
// discarding others.
func nextEvent[T wire.Message](rc *rawClient) T {
	rc.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case env, ok := <-rc.events:
			if !ok {
				rc.t.Fatal("raw connection closed")
			}
			if m, isWanted := env.Msg.(T); isWanted {
				return m
			}
		case <-deadline:
			var zero T
			rc.t.Fatalf("timed out waiting for %T", zero)
			return zero
		}
	}
}

func TestFloorControlLockRejection(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x value="init"`, client.Options{})
	// The raw client holds its Exec ack, keeping the group locked.
	rc := newRawClient(t, h, "app", "u2")
	rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	mustOK(t, a.Declare("/x"))
	mustOK(t, a.Couple("/x", couple.ObjectRef{Instance: rc.id, Path: "/x"}))

	// A's event locks rc's object; rc never acks, so the lock stays held.
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("first")},
	}))
	exec := nextEvent[wire.Exec](rc)
	if exec.Name != widget.EventChanged || exec.TargetPath != "/x" {
		t.Fatalf("exec = %+v", exec)
	}

	// rc now fires its own event on the group: CO(rc:/x) = {a:/x}, which is
	// NOT locked (the lock covers rc:/x only), so it succeeds — but an
	// event from a THIRD member coupled to the locked object must fail.
	third := h.dial("app", "u3", `textfield x`, client.Options{})
	mustOK(t, third.Declare("/x"))
	mustOK(t, third.Couple("/x", couple.ObjectRef{Instance: rc.id, Path: "/x"}))
	waitFor(t, "third coupled", func() bool { return len(third.CO("/x")) == 2 })

	err := third.DispatchChecked(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("conflict")},
	})
	if !errors.Is(err, client.ErrRejected) {
		t.Fatalf("expected rejection, got %v", err)
	}
	// The rejected event's feedback was undone.
	if got := attrOf(t, third, "/x", widget.AttrValue).AsString(); got != "" {
		t.Errorf("feedback not undone: %q", got)
	}

	// Now rc acks; the group unlocks and the third event goes through.
	if err := rc.conn.Write(wire.Envelope{Msg: wire.ExecAck{EventID: exec.EventID}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "lock released", func() bool {
		return third.DispatchChecked(&widget.Event{
			Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("after unlock")},
		}) == nil
	})
	stats := h.srv.Stats()
	if stats.LockFailures == 0 {
		t.Error("expected recorded lock failures")
	}
}

func TestSetLocksDisablesWidgets(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	rc := newRawClient(t, h, "app", "u3")
	rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	mustOK(t, a.Couple("/x", couple.ObjectRef{Instance: rc.id, Path: "/x"}))
	waitFor(t, "group of three", func() bool { return len(a.CO("/x")) == 2 })

	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	exec := nextEvent[wire.Exec](rc)
	// While rc holds the ack, B's widget is disabled by SetLocks.
	waitFor(t, "B disabled", func() bool {
		w, err := b.Registry().Lookup("/x")
		return err == nil && w.Disabled()
	})
	if err := rc.conn.Write(wire.Envelope{Msg: wire.ExecAck{EventID: exec.EventID}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "B re-enabled", func() bool {
		w, err := b.Registry().Lookup("/x")
		return err == nil && !w.Disabled()
	})
}

func TestRawClientDisconnectReleasesLocks(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	rc := newRawClient(t, h, "app", "u2")
	rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	mustOK(t, a.Declare("/x"))
	mustOK(t, a.Couple("/x", couple.ObjectRef{Instance: rc.id, Path: "/x"}))
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	nextEvent[wire.Exec](rc)
	// rc vanishes without acking: the pending event must resolve and the
	// coupling must dissolve.
	rc.conn.Close()
	waitFor(t, "link removed", func() bool { return !a.Coupled("/x") })
	waitFor(t, "instance dropped", func() bool { return h.srv.Stats().Instances == 1 })
	// New events on the now-uncoupled object run locally without error.
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("solo")},
	}))
}

func TestMalformedFirstMessageRejected(t *testing.T) {
	h := newHarness(t, server.Options{})
	link := netsim.NewLink(0)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(link.B))
	}()
	conn := wire.NewConn(link.A)
	defer conn.Close()
	if err := conn.Write(wire.Envelope{Seq: 1, Msg: wire.Declare{Path: "/x", Class: "button"}}); err != nil {
		t.Fatal(err)
	}
	env, err := conn.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, isErr := env.Msg.(wire.Err); !isErr {
		t.Fatalf("expected Err, got %s", env.Msg.MsgType())
	}
}

func TestServerOverTCP(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	lis, err := netListen(t)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis) //nolint:errcheck
	defer lis.Close()

	dial := func(user, spec string) *client.Client {
		conn, err := netDial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		reg := widget.NewRegistry()
		widget.MustBuild(reg, "/", spec)
		c, err := client.New(conn, client.Options{
			AppType: "tcpapp", User: user, Host: "local", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		return c
	}
	a := dial("u1", `textfield x`)
	b := dial("u2", `textfield x`)
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "coupled over TCP", func() bool { return b.Coupled("/x") })
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("tcp")},
	}))
	waitFor(t, "replicated over TCP", func() bool {
		return attrOf(t, b, "/x", widget.AttrValue).AsString() == "tcp"
	})
}

func TestSemanticStoreLoad(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x value="ui"`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))

	a.RegisterSemantics("/x", client.Semantics{
		Store: func() ([]byte, error) { return []byte("internal-model-v7"), nil },
	})
	var mu sync.Mutex
	var loaded string
	b.RegisterSemantics("/x", client.Semantics{
		Load: func(p []byte) error {
			mu.Lock()
			defer mu.Unlock()
			loaded = string(p)
			return nil
		},
	})
	mustOK(t, a.CopyTo("/x", b.Ref("/x"), false))
	waitFor(t, "semantic data transferred", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return loaded == "internal-model-v7"
	})
	// The hidden attribute never lands in the widget state.
	w, err := b.Registry().Lookup("/x")
	if err != nil {
		t.Fatal(err)
	}
	if w.State().Has("_semantic") {
		t.Error("semantic attribute leaked into widget state")
	}
	if got := attrOf(t, b, "/x", widget.AttrValue).AsString(); got != "ui" {
		t.Errorf("UI state = %q", got)
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
