package server_test

import (
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/faultnet"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// TestHealthStragglerAttribution drives a 3-member coupling group with one
// member's link degraded by faultnet and asserts the health plane names that
// member as the critical path: highest ack-latency EWMA (and therefore the
// group's reported straggler) and the most last-acker credits.
func TestHealthStragglerAttribution(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{})
	b := h.dial("editor", "bob", `textfield note value=""`, client.Options{})
	// Every Exec the server sends toward C is held back 25ms, so C's acks
	// arrive a full delay after A's and B's.
	c, _ := h.dialChaos("editor", "carol", `textfield note value=""`, client.Options{},
		faultnet.Schedule{Delay: 25 * time.Millisecond})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, c.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	mustOK(t, a.Couple("/note", c.Ref("/note")))
	waitFor(t, "coupling mirrored at C", func() bool { return c.Coupled("/note") })

	const events = 5
	for i := 0; i < events; i++ {
		mustOK(t, a.Registry().Dispatch(&widget.Event{
			Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
		}))
		waitFor(t, "event resolved", func() bool { return h.srv.Stats().PendingEvents == 0 })
	}

	rep := h.srv.Health()
	if !rep.MemberAttribution {
		t.Fatal("member attribution should be on by default")
	}
	if rep.UptimeNS <= 0 {
		t.Errorf("uptime = %d", rep.UptimeNS)
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	g := rep.Groups[0]
	if len(g.Refs) != 3 || len(g.Members) != 3 {
		t.Fatalf("group = %+v", g)
	}
	if g.PendingEvents != 0 || g.LockHolder != "" {
		t.Errorf("quiescent group shows pending=%d holder=%q", g.PendingEvents, g.LockHolder)
	}
	if g.Straggler != string(c.ID()) {
		t.Fatalf("straggler = %q, want %q (members %+v)", g.Straggler, c.ID(), g.Members)
	}
	// Members are sorted slowest-first, so the straggler leads the list.
	slow := g.Members[0]
	if slow.Instance != string(c.ID()) || !slow.Connected {
		t.Fatalf("slowest member = %+v", slow)
	}
	// The origin never acks its own events: B and C each acked all of them.
	if slow.Acks != events {
		t.Errorf("straggler acks = %d, want %d", slow.Acks, events)
	}
	// Every event's unlock waited on C, so C holds every last-acker credit.
	if slow.LastAcks != events {
		t.Errorf("straggler last_acks = %d, want %d", slow.LastAcks, events)
	}
	if slow.Timeouts != 0 {
		t.Errorf("straggler timeouts = %d", slow.Timeouts)
	}
	const delayNS = float64(25 * time.Millisecond)
	if slow.AckEWMANS < delayNS {
		t.Errorf("straggler ack EWMA = %.0fns, want >= the injected %.0fns delay", slow.AckEWMANS, delayNS)
	}
	for _, m := range g.Members[1:] {
		if m.AckEWMANS > slow.AckEWMANS {
			t.Errorf("member %s EWMA %.0f exceeds straggler's %.0f", m.Instance, m.AckEWMANS, slow.AckEWMANS)
		}
		if m.LastAcks != 0 {
			t.Errorf("member %s last_acks = %d, want 0", m.Instance, m.LastAcks)
		}
		if m.Instance == string(a.ID()) && m.Acks != 0 {
			t.Errorf("origin acks = %d, want 0", m.Acks)
		}
	}
	if slow.AckP99NS < slow.AckP50NS || slow.AckP50NS <= 0 {
		t.Errorf("straggler quantiles p50=%.0f p99=%.0f", slow.AckP50NS, slow.AckP99NS)
	}

	// Loop accounting: the global loop (which carries shard 0 when
	// unsharded) must have accumulated busy time and sane utilization.
	if len(rep.Loops) < 2 || rep.Loops[0].Name != "global" {
		t.Fatalf("loops = %+v", rep.Loops)
	}
	gl := rep.Loops[0]
	if envShards <= 1 && gl.BusyNS == 0 {
		t.Error("global loop busy_ns = 0 after traffic")
	}
	if gl.Utilization < 0 || gl.Utilization > 1 {
		t.Errorf("global utilization = %g", gl.Utilization)
	}
	var shardEvents, shardBusy uint64
	for _, lp := range rep.Loops[1:] {
		shardEvents += lp.Events
		shardBusy += lp.BusyNS
	}
	if shardEvents != events {
		t.Errorf("shard events = %d, want %d", shardEvents, events)
	}
	if envShards > 1 && shardBusy == 0 {
		t.Error("sharded loops busy_ns = 0 after traffic")
	}
}

// TestHealthTimeoutAttribution wedges one member entirely so the event
// deadline fires, and asserts the timeout is charged to that member.
func TestHealthTimeoutAttribution(t *testing.T) {
	h := newHarness(t, server.Options{EventDeadline: 30 * time.Millisecond})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{})
	b, fc := h.dialChaos("editor", "bob", `textfield note value=""`, client.Options{}, faultnet.Schedule{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored at B", func() bool { return b.Coupled("/note") })

	fc.Blackhole() // B never sees the Exec, so it can never ack
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	waitFor(t, "deadline resolution", func() bool { return h.srv.Stats().EventTimeouts == 1 })

	rep := h.srv.Health()
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	for _, m := range rep.Groups[0].Members {
		want := uint64(0)
		if m.Instance == string(b.ID()) {
			want = 1
		}
		if m.Timeouts != want {
			t.Errorf("member %s timeouts = %d, want %d", m.Instance, m.Timeouts, want)
		}
	}
}

// TestHealthAttributionDisabled runs the same traffic with the ablation
// switch set and asserts the family stays inert while topology still reports.
func TestHealthAttributionDisabled(t *testing.T) {
	h := newHarness(t, server.Options{DisableMemberAttribution: true})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{})
	b := h.dial("editor", "bob", `textfield note value=""`, client.Options{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored at B", func() bool { return b.Coupled("/note") })
	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	waitFor(t, "event resolved", func() bool { return h.srv.Stats().PendingEvents == 0 })

	rep := h.srv.Health()
	if rep.MemberAttribution {
		t.Fatal("attribution should be disabled")
	}
	if len(rep.Groups) != 1 {
		t.Fatalf("groups = %+v", rep.Groups)
	}
	g := rep.Groups[0]
	if g.Straggler != "" {
		t.Errorf("straggler = %q with attribution off", g.Straggler)
	}
	if len(g.Members) != 2 {
		t.Fatalf("members = %+v", g.Members)
	}
	for _, m := range g.Members {
		if m.Acks != 0 || m.AckEWMANS != 0 {
			t.Errorf("member %s has stats with attribution off: %+v", m.Instance, m)
		}
		if !m.Connected {
			t.Errorf("member %s should report connected", m.Instance)
		}
	}
}
