package server

import (
	"fmt"
	"sort"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/lock"
	"cosoft/internal/obs"
	"cosoft/internal/perm"
	"cosoft/internal/wire"
)

// handle dispatches one message from a registered client. It runs on the
// state loop.
func (s *Server) handle(cl *client, env wire.Envelope) {
	switch m := env.Msg.(type) {
	case wire.Declare:
		err := s.reg.DeclareObject(cl.id, m.Path, m.Class)
		if err == nil {
			s.logAppend(eventlog.KindDeclare, cl.id, "", m)
		}
		s.reply(cl, env.Seq, err)
	case wire.Retract:
		s.handleRetract(cl, env.Seq, m)
	case wire.Deregister:
		// Deregistration invalidates any outstanding session token: an
		// instance that left on purpose must not be resumable.
		if tok, ok := s.sessionTok[cl.id]; ok {
			delete(s.sessions, tok)
			delete(s.sessionTok, cl.id)
			s.logAppend(eventlog.KindTokenDrop, cl.id, "", m)
		}
		s.dropClient(cl, "deregistered")
		s.reply(cl, env.Seq, nil)
	case wire.Couple:
		s.handleCouple(cl, env.Seq, m)
	case wire.Decouple:
		s.handleDecouple(cl, env.Seq, m)
	case wire.Event:
		// Reached only on a single-shard server: when sharded, dispatchEnv
		// routes event traffic straight to the owning shard loop and handle
		// never sees these three message types.
		s.handleEvent(s.shards[0], cl, env.Seq, m, env.Trace)
	case wire.ExecAck:
		s.ackExec(s.shards[0], cl, m.EventID, env.Trace, time.Time{})
	case wire.BatchAck:
		s.handleBatchAck(s.shards[0], cl, m)
	case wire.CopyTo:
		s.handleCopyTo(cl, env.Seq, m)
	case wire.CopyFrom:
		s.handleCopyFrom(cl, env.Seq, m)
	case wire.RemoteCopy:
		s.handleRemoteCopy(cl, env.Seq, m)
	case wire.StateReply:
		s.handleStateReply(cl, m)
	case wire.Command:
		s.handleCommand(cl, env.Seq, m)
	case wire.FetchState:
		s.handleFetchState(cl, env.Seq, m)
	case wire.Undo:
		s.handleUndoRedo(cl, env.Seq, m.Path, true)
	case wire.Redo:
		s.handleUndoRedo(cl, env.Seq, m.Path, false)
	case wire.ListInstances:
		s.handleListInstances(cl, env.Seq)
	case wire.GrantPerm:
		s.perms.Grant(perm.Rule{User: m.User, State: m.State, Right: perm.Right(m.Right)})
		s.logAppend(eventlog.KindPerm, cl.id, "", m)
		s.reply(cl, env.Seq, nil)
	case wire.RevokePerm:
		s.perms.Revoke(perm.Rule{User: m.User, State: m.State, Right: perm.Right(m.Right)})
		s.logAppend(eventlog.KindPerm, cl.id, "", m)
		s.reply(cl, env.Seq, nil)
	case wire.Ping:
		// Client-initiated probe: answer so it can measure liveness too.
		cl.out.send(wire.Envelope{RefSeq: env.Seq, Msg: wire.Pong{Nonce: m.Nonce}})
	case wire.Pong:
		// Liveness reply; lastSeen was already refreshed on arrival.
	case wire.SessionToken:
		s.handleSessionToken(cl, env.Seq)
	default:
		s.reply(cl, env.Seq, fmt.Errorf("server: unexpected message %s", env.Msg.MsgType()))
	}
}

// reply sends OK or Err correlated to the request.
func (s *Server) reply(cl *client, seq uint64, err error) {
	if err != nil {
		cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.Err{Text: err.Error()}})
		return
	}
	cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.OK{}})
}

// stateID renders the permission identifier of an object.
func stateID(ref couple.ObjectRef) string {
	return string(ref.Instance) + ":" + ref.Path
}

// checkPerm verifies cl's right on ref; rights on the client's own objects
// are implicit.
func (s *Server) checkPerm(cl *client, ref couple.ObjectRef, right perm.Right) error {
	if ref.Instance == cl.id {
		return nil
	}
	if !s.perms.Allowed(cl.user, stateID(ref), right) {
		return fmt.Errorf("server: %w: user %q lacks %s on %s", errPerm, cl.user, right, stateID(ref))
	}
	return nil
}

// checkDeclared verifies the object is registered as couplable and returns
// its class.
func (s *Server) checkDeclared(ref couple.ObjectRef) (string, error) {
	class, ok := s.reg.ObjectClass(ref)
	if !ok {
		return "", fmt.Errorf("server: object %s not declared", stateID(ref))
	}
	return class, nil
}

func (s *Server) handleRetract(cl *client, seq uint64, m wire.Retract) {
	ref := couple.ObjectRef{Instance: cl.id, Path: m.Path}
	// Collect the group *before* removal, as handleDecouple does: computing
	// it afterwards loses the members connected only through the retracted
	// object, so the split halves would keep stale mirrored links.
	members := s.graph.Group(ref)
	sh := s.shardForRef(ref)
	removed := s.graph.RemoveObject(ref)
	for _, l := range removed {
		s.notifyLink(members, l, false)
	}
	s.reg.RetractObject(cl.id, m.Path)
	s.runOnShard(sh, func() {
		sh.history.Forget(ref)
		delete(sh.tails, ref)
	})
	s.router.dropRef(ref)
	s.logAppend(eventlog.KindRetract, cl.id, "", m)
	s.reply(cl, seq, nil)
}

func (s *Server) handleCouple(cl *client, seq uint64, m wire.Couple) {
	if err := s.coupleRefs(cl, m.From, m.To); err != nil {
		s.reply(cl, seq, err)
		return
	}
	s.reply(cl, seq, nil)
}

// coupleRefs validates and installs a link created by cl. It implements
// both the local Couple primitive and RemoteCouple: the creator need not own
// either endpoint (§3.3 "allow a third application instance to couple
// objects in remote instances").
func (s *Server) coupleRefs(cl *client, from, to couple.ObjectRef) error {
	classFrom, err := s.checkDeclared(from)
	if err != nil {
		return err
	}
	classTo, err := s.checkDeclared(to)
	if err != nil {
		return err
	}
	if err := s.checkPerm(cl, from, perm.RightCouple); err != nil {
		return err
	}
	if err := s.checkPerm(cl, to, perm.RightCouple); err != nil {
		return err
	}
	if _, ok := s.checker.Direct(classFrom, classTo); !ok {
		return fmt.Errorf("server: classes %q and %q are not compatible", classFrom, classTo)
	}
	l := couple.Link{From: from, To: to, Creator: cl.id}
	// Snapshot the two pre-merge groups: after AddLink they are one group,
	// and the late-join tail replay needs to know which members are new to
	// which side's event stream.
	var gFrom, gTo []couple.ObjectRef
	if s.opts.ReplayTail {
		gFrom = s.graph.Group(from)
		gTo = s.graph.Group(to)
	}
	if s.sharded {
		// Co-locate the two endpoint groups before the link merges them:
		// every member of one coupling group serializes on one shard loop.
		s.mergeShards(from, to)
	}
	if err := s.graph.AddLink(l); err != nil {
		return err
	}
	s.logAppend(eventlog.KindCouple, cl.id, stateID(from), wire.Couple{From: from, To: to})
	s.replayTails(gFrom, gTo)
	// Replicate the complete transitive closure: every instance owning a
	// member of the merged group receives every link of the group, so that
	// "objects already connected to o2 are added to the list of targets, and
	// objects already connected to o1 are added to the source" (§3.2).
	// AddLink is idempotent at the mirrors, so re-sending known links is
	// harmless.
	members := s.graph.Group(l.From)
	linkSet := make(map[couple.Link]struct{})
	for _, m := range members {
		for _, gl := range s.graph.LinksOf(m) {
			linkSet[gl] = struct{}{}
		}
	}
	for gl := range linkSet {
		s.notifyLink(members, gl, true)
	}
	return nil
}

func (s *Server) handleDecouple(cl *client, seq uint64, m wire.Decouple) {
	if err := s.checkPerm(cl, m.From, perm.RightCouple); err != nil {
		s.reply(cl, seq, err)
		return
	}
	if err := s.checkPerm(cl, m.To, perm.RightCouple); err != nil {
		s.reply(cl, seq, err)
		return
	}
	// Collect the group *before* removal so both halves hear about it.
	members := s.graph.Group(m.From)
	// The notification must carry the direction the stored link actually
	// has, or the members' replicated coupling info keeps a stale entry.
	var l couple.Link
	switch {
	case s.graph.RemoveLink(m.From, m.To):
		l = couple.Link{From: m.From, To: m.To, Creator: cl.id}
	case s.graph.RemoveLink(m.To, m.From):
		l = couple.Link{From: m.To, To: m.From, Creator: cl.id}
	default:
		s.reply(cl, seq, fmt.Errorf("server: no link between %s and %s", stateID(m.From), stateID(m.To)))
		return
	}
	s.notifyLink(members, l, false)
	s.logAppend(eventlog.KindDecouple, cl.id, stateID(l.From), wire.Decouple{From: l.From, To: l.To})
	s.reply(cl, seq, nil)
}

func (s *Server) notifyLink(members []couple.ObjectRef, l couple.Link, added bool) {
	seen := make(map[couple.InstanceID]bool)
	for _, m := range members {
		if seen[m.Instance] {
			continue
		}
		seen[m.Instance] = true
		if c, ok := s.clientOf(m.Instance); ok {
			if added {
				c.out.send(wire.Envelope{Msg: wire.LinkAdded{Link: l}})
			} else {
				c.out.send(wire.Envelope{Msg: wire.LinkRemoved{Link: l}})
			}
		}
	}
}

func (s *Server) handleCommand(cl *client, seq uint64, m wire.Command) {
	targets := m.Targets
	if len(targets) == 0 {
		s.cmu.RLock()
		for id := range s.clients {
			if id != cl.id {
				targets = append(targets, id)
			}
		}
		s.cmu.RUnlock()
	}
	// Validate every target before delivering to any: a failure after
	// partial delivery would tell the sender "error" while some targets
	// already received the command.
	for _, id := range targets {
		if _, ok := s.clientOf(id); !ok {
			s.reply(cl, seq, fmt.Errorf("server: unknown target instance %q", id))
			return
		}
	}
	deliver := wire.CommandDeliver{Name: m.Name, From: cl.id, Payload: m.Payload}
	for _, id := range targets {
		if c, ok := s.clientOf(id); ok {
			c.out.send(wire.Envelope{Msg: deliver})
		}
	}
	s.reply(cl, seq, nil)
}

func (s *Server) handleListInstances(cl *client, seq uint64) {
	var list wire.InstanceList
	for _, id := range s.reg.Instances() {
		rec, err := s.reg.Lookup(id)
		if err != nil {
			continue
		}
		info := wire.InstanceInfo{ID: rec.ID, AppType: rec.AppType, Host: rec.Host, User: rec.User}
		for path, class := range rec.Objects {
			info.Objects = append(info.Objects, wire.DeclaredObject{Path: path, Class: class})
		}
		sort.Slice(info.Objects, func(i, j int) bool {
			return info.Objects[i].Path < info.Objects[j].Path
		})
		list.Instances = append(list.Instances, info)
	}
	cl.out.send(wire.Envelope{RefSeq: seq, Msg: list})
}

// handleSessionToken mints a resumable session token bound to cl's
// registration record and sends it back. A reconnecting client presents the
// token in a Resume handshake to reclaim the same instance ID.
func (s *Server) handleSessionToken(cl *client, seq uint64) {
	rec, err := s.reg.Lookup(cl.id)
	if err != nil {
		s.reply(cl, seq, err)
		return
	}
	tok, err := mintToken()
	if err != nil {
		s.reply(cl, seq, err)
		return
	}
	// One outstanding token per instance: re-minting replaces the previous
	// token, so sessions is bounded by the number of registered instances
	// and a superseded token can never resume the session.
	if old, ok := s.sessionTok[cl.id]; ok {
		delete(s.sessions, old)
	}
	s.sessionTok[cl.id] = tok
	s.sessions[tok] = sessionRec{id: rec.ID, appType: rec.AppType, host: rec.Host, user: rec.User}
	// The token is durable before the client holds it: a token the client
	// could present after a server restart is always one replay can honor.
	s.logAppend(eventlog.KindToken, cl.id, "", wire.SessionToken{Token: tok})
	cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.SessionToken{Token: tok}})
}

// dropClient removes a disconnected or deregistering instance: its couple
// links are removed (the automatic decoupling of §3.2), its locks are
// released, pending work is resolved, and its records are dropped.
func (s *Server) dropClient(cl *client, reason string) {
	// Identity check, not just key presence: after a Resume takeover the
	// instance ID maps to the NEW client, and the superseded connection's
	// deferred drop must not tear that one down.
	if cur, ok := s.clientOf(cl.id); !ok || cur != cl {
		return // already dropped or superseded
	}
	// Durable before any database mutation below: replay prunes the
	// instance the same way. Session tokens deliberately survive (resume
	// works across a disconnect); only Deregister revokes them. Drops
	// provoked by Close itself are not departures — nothing is logged, so
	// a restart finds every instance still registered and resumable.
	if !s.closing {
		s.logAppend(eventlog.KindDisconnect, cl.id, "", wire.Err{Text: reason})
	}
	s.logf("server: %s leaving (%s)", cl.id, reason)
	s.slog.Info("instance leaving", "inst", string(cl.id), "reason", reason)
	s.cmu.Lock()
	delete(s.clients, cl.id)
	s.cmu.Unlock()
	s.mClients.Add(-1)

	// Decouple everything the instance participated in, notifying survivors.
	// The affected groups are snapshotted *before* the links are removed:
	// computing them afterwards loses the members connected to a peer only
	// through the departed instance (the chain A–B–C where B leaves: after
	// removal A and C are in separate components, and each would miss the
	// removal of the other's link), leaving stale mirrored links — the same
	// ordering bug handleRetract fixed.
	removed := s.graph.InstanceLinks(cl.id)
	pre := make(map[couple.ObjectRef][]couple.ObjectRef)
	for _, l := range removed {
		if _, ok := pre[l.From]; !ok {
			pre[l.From] = s.graph.Group(l.From)
		}
	}
	s.graph.RemoveInstance(cl.id)
	for _, l := range removed {
		s.notifyLink(pre[l.From], l, false)
	}

	// Resolve group-scoped state on every shard: events the instance
	// originated are finished, events awaiting its ack are acked by absence,
	// and its locks and histories are dropped.
	for _, sh := range s.shards {
		sh := sh
		s.runOnShard(sh, func() {
			for id, pe := range sh.pending {
				if pe.origin == cl.id {
					s.finishEvent(sh, id, pe, false)
					continue
				}
				if pe.waiting[cl.id] > 0 {
					delete(pe.waiting, cl.id)
					if len(pe.waiting) == 0 {
						s.finishEvent(sh, id, pe, false)
					}
				}
			}
			sh.locks.ReleaseInstance(cl.id)
			sh.history.ForgetInstance(cl.id)
			for ref := range sh.tails {
				if ref.Instance == cl.id {
					delete(sh.tails, ref)
				}
			}
		})
	}
	// Resolve pending state fetches involving the instance.
	for id, f := range s.pendingFetch {
		if f.target == cl.id {
			s.failFetch(id, f, fmt.Sprintf("instance %s disconnected", cl.id))
		} else if f.requester == cl.id {
			delete(s.pendingFetch, id)
		}
	}
	s.router.dropInstance(cl.id)
	s.reg.Deregister(cl.id)
}

// notifyLockChange tells each instance owning locked members to disable or
// re-enable those widgets. SetLocks envelopes carry the event's trace
// context so member instances can attribute the disable/enable to the event.
func (s *Server) notifyLockChange(tc obs.TraceContext, members []couple.ObjectRef, locked bool, skip couple.ObjectRef) {
	perInstance := make(map[couple.InstanceID][]string)
	for _, m := range members {
		if m == skip {
			continue
		}
		perInstance[m.Instance] = append(perInstance[m.Instance], m.Path)
	}
	for id, paths := range perInstance {
		if c, ok := s.clientOf(id); ok {
			c.out.send(wire.Envelope{Trace: tc, Msg: wire.SetLocks{Paths: paths, Locked: locked}})
		}
	}
}

// lockGroup applies the configured group-locking variant on the given
// shard's table, recording a "lock.acquire" span under tc when tracing.
func (s *Server) lockGroup(t *lock.Table, tc obs.TraceContext, refs []couple.ObjectRef, owner lock.Owner) (bool, int) {
	if s.opts.OrderedLocking {
		return t.TryLockGroupOrderedCtx(tc, refs, owner)
	}
	return t.TryLockGroupCtx(tc, refs, owner)
}
