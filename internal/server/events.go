package server

import (
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/lock"
	"cosoft/internal/wire"
)

// pendingEvent tracks one broadcast event until every member instance has
// acknowledged re-execution, at which point the group is unlocked ("They are
// unlocked when the processing of this event is completed", §3.2).
type pendingEvent struct {
	origin  couple.InstanceID
	source  couple.ObjectRef
	members []couple.ObjectRef // CO(o): everyone except the source
	owner   lock.Owner
	// waiting counts outstanding Exec acknowledgements per instance (an
	// instance may hold several coupled members).
	waiting map[couple.InstanceID]int
	// start is the Event's arrival time for the round-trip histogram; zero
	// when latency measurement is disabled.
	start time.Time
}

// handleEvent implements the multiple-execution algorithm of §3.2. The
// originating client has already applied the event's built-in feedback
// locally; the server locks CO(o), broadcasts Exec to every coupled member,
// and tells the origin whether to keep or undo its feedback.
func (s *Server) handleEvent(cl *client, seq uint64, m wire.Event) {
	s.mEvents.Inc()
	start := s.mEventRTT.Start()
	source := couple.ObjectRef{Instance: cl.id, Path: m.Path}
	members := s.graph.CO(source)
	if len(members) == 0 {
		// Uncoupled object: nothing to synchronize; the local feedback
		// stands.
		cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.EventResult{OK: true}})
		return
	}

	s.nextEventID++
	eventID := s.nextEventID
	owner := lock.Owner{Instance: cl.id, Seq: eventID}
	ok, _ := s.lockGroup(members, owner)
	if !ok {
		// Lock failed: the origin must undo the event's syntactic feedback.
		s.mLockFails.Inc()
		cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.EventResult{OK: false, Reason: "group locked"}})
		return
	}

	pe := &pendingEvent{
		origin:  cl.id,
		source:  source,
		members: members,
		owner:   owner,
		waiting: make(map[couple.InstanceID]int),
		start:   start,
	}
	// Disable the locked objects at their instances, then broadcast the
	// event for re-execution.
	s.notifyLockChange(members, true, source)
	fanout := 0
	for _, member := range members {
		target, connected := s.clients[member.Instance]
		if !connected {
			continue
		}
		target.out.send(wire.Envelope{Msg: wire.Exec{
			EventID:    eventID,
			TargetPath: member.Path,
			Name:       m.Name,
			Args:       m.Args,
			Origin:     source,
		}})
		fanout++
		pe.waiting[member.Instance]++
	}
	s.mExecsSent.Add(uint64(fanout))
	s.mFanout.Observe(int64(fanout))
	cl.out.send(wire.Envelope{RefSeq: seq, Msg: wire.EventResult{OK: true}})
	if len(pe.waiting) == 0 {
		// All members belonged to disconnected instances.
		s.unlockEvent(pe)
		return
	}
	s.pendingEvents[eventID] = pe
}

// handleExecAck records one member instance's completion of an Exec.
func (s *Server) handleExecAck(cl *client, m wire.ExecAck) {
	pe, ok := s.pendingEvents[m.EventID]
	if !ok {
		return // stale ack (event already resolved by a disconnect)
	}
	if pe.waiting[cl.id] == 0 {
		return // ack from an instance we were not waiting for
	}
	pe.waiting[cl.id]--
	if pe.waiting[cl.id] == 0 {
		delete(pe.waiting, cl.id)
	}
	if len(pe.waiting) == 0 {
		s.finishEvent(m.EventID, pe)
	}
}

func (s *Server) finishEvent(id uint64, pe *pendingEvent) {
	delete(s.pendingEvents, id)
	s.unlockEvent(pe)
}

func (s *Server) unlockEvent(pe *pendingEvent) {
	s.locks.UnlockGroup(pe.members, pe.owner)
	s.notifyLockChange(pe.members, false, pe.source)
	s.mEventRTT.ObserveSince(pe.start)
}
