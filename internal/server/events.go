package server

import (
	"sort"
	"strings"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/lock"
	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

// pendingEvent tracks one broadcast event until every member instance has
// acknowledged re-execution, at which point the group is unlocked ("They are
// unlocked when the processing of this event is completed", §3.2).
type pendingEvent struct {
	origin  couple.InstanceID
	source  couple.ObjectRef
	members []couple.ObjectRef // CO(o): everyone except the source
	owner   lock.Owner
	// waiting counts outstanding Exec acknowledgements per instance (an
	// instance may hold several coupled members).
	waiting map[couple.InstanceID]int
	// start is the Event's arrival time for the round-trip histogram; zero
	// when latency measurement is disabled.
	start time.Time
	// tc is the arrival span's trace context: the parent of the ack and
	// unlock spans recorded when the round trip completes (zero when the
	// event was not traced).
	tc obs.TraceContext
	// timer fires the event deadline (nil when deadlines are disabled). It
	// is stopped when the event resolves normally.
	timer *time.Timer
}

// handleEvent implements the multiple-execution algorithm of §3.2. The
// originating client has already applied the event's built-in feedback
// locally; the server locks CO(o), broadcasts Exec to every coupled member,
// and tells the origin whether to keep or undo its feedback.
//
// tc is the trace context the Event envelope carried (the origin's
// "client.event_send" span); every hop recorded here descends from it.
func (s *Server) handleEvent(cl *client, seq uint64, m wire.Event, tc obs.TraceContext) {
	s.mEvents.Inc()
	start := s.mEventRTT.Start()
	arrival := s.tr.StartSpan(tc, "server.event_arrival", "server")
	if arrival.Active() {
		arrival.SetNote(m.Path + " " + m.Name)
	}
	actx := arrival.Context()
	source := couple.ObjectRef{Instance: cl.id, Path: m.Path}
	members := s.graph.CO(source)
	if len(members) == 0 {
		// Uncoupled object: nothing to synchronize; the local feedback
		// stands.
		cl.out.send(wire.Envelope{
			RefSeq: seq,
			Trace:  s.tr.Point(actx, "server.event_result", "server", "ok uncoupled"),
			Msg:    wire.EventResult{OK: true},
		})
		arrival.EndNote("uncoupled")
		return
	}

	s.nextEventID++
	eventID := s.nextEventID
	owner := lock.Owner{Instance: cl.id, Seq: eventID}
	ok, _ := s.lockGroup(actx, members, owner)
	if !ok {
		// Lock failed: the origin must undo the event's syntactic feedback.
		s.mLockFails.Inc()
		s.slog.Debug("event denied: group locked",
			"inst", string(cl.id), "path", m.Path, "event", m.Name, "trace", tc.Trace)
		cl.out.send(wire.Envelope{
			RefSeq: seq,
			Trace:  s.tr.Point(actx, "server.event_result", "server", "denied: group locked"),
			Msg:    wire.EventResult{OK: false, Reason: "group locked"},
		})
		arrival.EndNote("lock denied")
		return
	}

	pe := &pendingEvent{
		origin:  cl.id,
		source:  source,
		members: members,
		owner:   owner,
		waiting: make(map[couple.InstanceID]int),
		start:   start,
		tc:      actx,
	}
	// Disable the locked objects at their instances, then broadcast the
	// event for re-execution. The member-independent suffix of the Exec body
	// (Name, Args, Origin) is encoded once into a shared refcounted buffer;
	// each member's outbox queues a reference and splices it in at flush, so
	// the broadcast costs O(1) body encodes regardless of fan-out.
	s.notifyLockChange(actx, members, true, source)
	var se *wire.SharedExec
	if !s.opts.DisableEncodeOnce {
		se = wire.NewSharedExec(eventID, m.Name, m.Args, source)
		s.mBytesEncoded.Add(uint64(se.TailLen()))
	}
	fanout := 0
	for _, member := range members {
		target, connected := s.clients[member.Instance]
		if !connected {
			continue
		}
		var execTC obs.TraceContext
		if actx.Valid() {
			execTC = s.tr.Point(actx, "server.exec_send", "server",
				string(member.Instance)+" "+member.Path)
		}
		if se != nil {
			target.out.sendShared(wire.Envelope{Trace: execTC}, member.Path, se)
		} else {
			target.out.send(wire.Envelope{
				Trace: execTC,
				Msg: wire.Exec{
					EventID:    eventID,
					TargetPath: member.Path,
					Name:       m.Name,
					Args:       m.Args,
					Origin:     source,
				},
			})
		}
		fanout++
		pe.waiting[member.Instance]++
	}
	if se != nil {
		se.Release()
	}
	s.mExecsSent.Add(uint64(fanout))
	s.mFanout.Observe(int64(fanout))
	cl.out.send(wire.Envelope{
		RefSeq: seq,
		Trace:  s.tr.Point(actx, "server.event_result", "server", "ok"),
		Msg:    wire.EventResult{OK: true},
	})
	arrival.End()
	if len(pe.waiting) == 0 {
		// All members belonged to disconnected instances.
		s.unlockEvent(pe)
		return
	}
	s.pendingEvents[eventID] = pe
	if d := s.opts.EventDeadline; d > 0 {
		// AfterFunc posts back to the state loop; post refuses after Close,
		// so a late firing is harmless.
		pe.timer = time.AfterFunc(d, func() {
			s.post(func() { s.timeoutEvent(eventID) })
		})
	}
}

// timeoutEvent resolves an event whose deadline expired before every member
// acknowledged: the stragglers are dropped from the wait set and the group
// unlocks, so one hung member cannot wedge the whole coupling group.
func (s *Server) timeoutEvent(id uint64) {
	pe, ok := s.pendingEvents[id]
	if !ok {
		return // resolved in the meantime
	}
	stragglers := make([]string, 0, len(pe.waiting))
	for inst := range pe.waiting {
		stragglers = append(stragglers, string(inst))
	}
	sort.Strings(stragglers)
	s.mEventTOs.Inc()
	s.tr.Point(pe.tc, "server.event_timeout", "server", strings.Join(stragglers, " "))
	s.slog.Warn("event deadline expired",
		"event_id", id, "origin", string(pe.origin), "path", pe.source.Path,
		"stragglers", strings.Join(stragglers, " "), "trace", pe.tc.Trace)
	s.finishEvent(id, pe)
}

// handleExecAck records one member instance's completion of an Exec. tc is
// the context the ExecAck envelope carried (the member's "client.exec_apply"
// span), so the ack point descends from the member's re-execution.
func (s *Server) handleExecAck(cl *client, m wire.ExecAck, tc obs.TraceContext) {
	s.ackExec(cl, m.EventID, tc)
}

// handleBatchAck resolves a coalesced run of Exec acknowledgements. Each
// entry carries its own event ID and apply-span context, so resolving the
// run entry by entry is identical to receiving the same ExecAcks singly —
// including the stale-ack tolerance: an entry for an event already resolved
// by a deadline or disconnect is skipped without disturbing its batch-mates.
func (s *Server) handleBatchAck(cl *client, m wire.BatchAck) {
	s.mAcksCoalesced.Add(uint64(len(m.Acks)))
	for _, a := range m.Acks {
		s.ackExec(cl, a.EventID, a.Trace)
	}
}

// ackExec is the shared ack-resolution core: decrement cl's outstanding
// count for the event and unlock the group when the wait set empties.
func (s *Server) ackExec(cl *client, eventID uint64, tc obs.TraceContext) {
	pe, ok := s.pendingEvents[eventID]
	if !ok {
		return // stale ack (event already resolved by a disconnect)
	}
	if pe.waiting[cl.id] == 0 {
		return // ack from an instance we were not waiting for
	}
	s.tr.Point(tc, "server.exec_ack", "server", string(cl.id))
	pe.waiting[cl.id]--
	if pe.waiting[cl.id] == 0 {
		delete(pe.waiting, cl.id)
	}
	if len(pe.waiting) == 0 {
		s.finishEvent(eventID, pe)
	}
}

func (s *Server) finishEvent(id uint64, pe *pendingEvent) {
	delete(s.pendingEvents, id)
	if pe.timer != nil {
		pe.timer.Stop()
	}
	s.unlockEvent(pe)
}

func (s *Server) unlockEvent(pe *pendingEvent) {
	s.locks.UnlockGroup(pe.members, pe.owner)
	s.tr.Point(pe.tc, "server.unlock", "server", "")
	s.notifyLockChange(pe.tc, pe.members, false, pe.source)
	s.mEventRTT.ObserveSince(pe.start)
}
