package server

import (
	"sort"
	"strings"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/lock"
	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

// pendingEvent tracks one broadcast event until every member instance has
// acknowledged re-execution, at which point the group is unlocked ("They are
// unlocked when the processing of this event is completed", §3.2).
type pendingEvent struct {
	origin  couple.InstanceID
	source  couple.ObjectRef
	members []couple.ObjectRef // CO(o): everyone except the source
	owner   lock.Owner
	// waiting counts outstanding Exec acknowledgements per instance (an
	// instance may hold several coupled members).
	waiting map[couple.InstanceID]int
	// start is the Event's arrival time for the round-trip histogram; zero
	// when latency measurement is disabled.
	start time.Time
	// tc is the arrival span's trace context: the parent of the ack and
	// unlock spans recorded when the round trip completes (zero when the
	// event was not traced).
	tc obs.TraceContext
	// timer fires the event deadline (nil when deadlines are disabled). It
	// is stopped when the event resolves normally.
	timer *time.Timer
	// migrated marks an event carried to another shard by a group
	// migration; its router forwarding entry is cleared on resolution.
	migrated bool
}

// handleEvent implements the multiple-execution algorithm of §3.2. The
// originating client has already applied the event's built-in feedback
// locally; the server locks CO(o), broadcasts Exec to every coupled member,
// and tells the origin whether to keep or undo its feedback. It runs on sh's
// loop — the shard owning the source object's coupling group.
//
// tc is the trace context the Event envelope carried (the origin's
// "client.event_send" span); every hop recorded here descends from it.
func (s *Server) handleEvent(sh *shard, cl *client, seq uint64, m wire.Event, tc obs.TraceContext) {
	source := couple.ObjectRef{Instance: cl.id, Path: m.Path}
	if s.sharded {
		// Ownership recheck: the group may have migrated between the read
		// goroutine's routing decision and this closure running. Forward to
		// the current owner rather than touching the wrong shard's state.
		if own := s.shardForRef(source); own != sh {
			s.postShard(own, func() { s.handleEvent(own, cl, seq, m, tc) })
			return
		}
	}
	s.mEvents.Inc()
	sh.mEvents.Inc()
	start := s.mEventRTT.Start()
	arrival := s.tr.StartSpan(tc, "server.event_arrival", "server")
	if arrival.Active() {
		arrival.SetNote(m.Path + " " + m.Name)
	}
	actx := arrival.Context()
	members := s.graph.CO(source)
	if len(members) == 0 {
		// Uncoupled object: nothing to synchronize; the local feedback
		// stands.
		cl.out.send(wire.Envelope{
			RefSeq: seq,
			Trace:  s.tr.Point(actx, "server.event_result", "server", "ok uncoupled"),
			Msg:    wire.EventResult{OK: true},
		})
		arrival.EndNote("uncoupled")
		return
	}

	// Event IDs interleave across shards: shard i allocates i+1, i+1+N,
	// i+1+2N, … so IDs stay globally unique, the birth shard is recoverable
	// as (id-1) mod N, and a single shard counts 1,2,3… exactly as the
	// unsharded server did.
	sh.seq++
	eventID := (sh.seq-1)*uint64(len(s.shards)) + uint64(sh.idx) + 1
	owner := lock.Owner{Instance: cl.id, Seq: eventID}
	ok, _ := s.lockGroup(sh.locks, actx, members, owner)
	if !ok {
		// Lock failed: the origin must undo the event's syntactic feedback.
		s.mLockFails.Inc()
		s.slog.Debug("event denied: group locked",
			"inst", string(cl.id), "path", m.Path, "event", m.Name, "trace", tc.Trace)
		cl.out.send(wire.Envelope{
			RefSeq: seq,
			Trace:  s.tr.Point(actx, "server.event_result", "server", "denied: group locked"),
			Msg:    wire.EventResult{OK: false, Reason: "group locked"},
		})
		arrival.EndNote("lock denied")
		return
	}

	// The event is committed: the group lock is held and the broadcast is
	// about to fan out. Make it durable before any member — including the
	// origin's EventResult — hears about it, so an acked event is always in
	// the replayable stream. The append runs on this shard's loop but the
	// file I/O happens on the log's writer goroutine; concurrent shards
	// group-commit into one write+fsync.
	exec := wire.Exec{
		EventID:    eventID,
		TargetPath: m.Path,
		Name:       m.Name,
		Args:       m.Args,
		Origin:     source,
	}
	s.logAppend(eventlog.KindEvent, cl.id, stateID(source), exec)
	if s.opts.ReplayTail {
		sh.pushTail(source, exec)
	}

	pe := &pendingEvent{
		origin:  cl.id,
		source:  source,
		members: members,
		owner:   owner,
		waiting: make(map[couple.InstanceID]int),
		start:   start,
		tc:      actx,
	}
	// Disable the locked objects at their instances, then broadcast the
	// event for re-execution. The member-independent suffix of the Exec body
	// (Name, Args, Origin) is encoded once into a shared refcounted buffer;
	// each member's outbox queues a reference and splices it in at flush, so
	// the broadcast costs O(1) body encodes regardless of fan-out.
	s.notifyLockChange(actx, members, true, source)
	var se *wire.SharedExec
	if !s.opts.DisableEncodeOnce {
		se = wire.NewSharedExec(eventID, m.Name, m.Args, source)
		s.mBytesEncoded.Add(uint64(se.TailLen()))
	}
	fanout := 0
	for _, member := range members {
		target, connected := s.clientOf(member.Instance)
		if !connected {
			continue
		}
		var execTC obs.TraceContext
		if actx.Valid() {
			execTC = s.tr.Point(actx, "server.exec_send", "server",
				string(member.Instance)+" "+member.Path)
		}
		if se != nil {
			target.out.sendShared(wire.Envelope{Trace: execTC}, member.Path, se)
		} else {
			target.out.send(wire.Envelope{
				Trace: execTC,
				Msg: wire.Exec{
					EventID:    eventID,
					TargetPath: member.Path,
					Name:       m.Name,
					Args:       m.Args,
					Origin:     source,
				},
			})
		}
		fanout++
		pe.waiting[member.Instance]++
	}
	if se != nil {
		se.Release()
	}
	s.mExecsSent.Add(uint64(fanout))
	s.mFanout.Observe(int64(fanout))
	cl.out.send(wire.Envelope{
		RefSeq: seq,
		Trace:  s.tr.Point(actx, "server.event_result", "server", "ok"),
		Msg:    wire.EventResult{OK: true},
	})
	arrival.End()
	if len(pe.waiting) == 0 {
		// All members belonged to disconnected instances.
		s.unlockEvent(sh, pe, false)
		return
	}
	sh.pending[eventID] = pe
	if d := s.opts.EventDeadline; d > 0 {
		// AfterFunc posts back to the birth shard's loop; post refuses after
		// Close, so a late firing is harmless, and if the event migrated the
		// miss-forward in timeoutEvent chases it.
		pe.timer = time.AfterFunc(d, func() {
			s.postShard(sh, func() { s.timeoutEvent(sh, eventID) })
		})
	}
}

// timeoutEvent resolves an event whose deadline expired before every member
// acknowledged: the stragglers are dropped from the wait set and the group
// unlocks, so one hung member cannot wedge the whole coupling group.
func (s *Server) timeoutEvent(sh *shard, id uint64) {
	pe, ok := sh.pending[id]
	if !ok {
		s.forwardEventMiss(sh, id, func(to *shard) { s.timeoutEvent(to, id) })
		return
	}
	stragglers := make([]string, 0, len(pe.waiting))
	for inst := range pe.waiting {
		stragglers = append(stragglers, string(inst))
		// Deadline drops are attributed per member: every instance still in
		// the wait set when the deadline fires gets a timeout mark. This is
		// a cold path, so the family lookup's lock is fine.
		s.mMember.Get(string(inst)).Counter(memberTimeouts).Inc()
	}
	sort.Strings(stragglers)
	s.mEventTOs.Inc()
	s.tr.Point(pe.tc, "server.event_timeout", "server", strings.Join(stragglers, " "))
	s.slog.Warn("event deadline expired",
		"event_id", id, "origin", string(pe.origin), "path", pe.source.Path,
		"stragglers", strings.Join(stragglers, " "), "trace", pe.tc.Trace)
	s.finishEvent(sh, id, pe, true)
}

// handleBatchAck resolves a coalesced run of Exec acknowledgements. Each
// entry carries its own event ID and apply-span context, so resolving the
// run entry by entry is identical to receiving the same ExecAcks singly —
// including the stale-ack tolerance: an entry for an event already resolved
// by a deadline or disconnect is skipped without disturbing its batch-mates.
// (Sharded servers split BatchAcks per birth shard in dispatchEnv and never
// reach this path.)
func (s *Server) handleBatchAck(sh *shard, cl *client, m wire.BatchAck) {
	s.mAcksCoalesced.Add(uint64(len(m.Acks)))
	now := s.ackClock()
	for _, a := range m.Acks {
		s.ackExec(sh, cl, a.EventID, a.Trace, now)
	}
}

// ackClock reads the clock once for a coalesced run of acks, so per-member
// latency attribution costs one clock read per BatchAck frame rather than one
// per entry. Zero when attribution is off — ackExec then reads the clock
// itself if metrics need it (and skips it entirely when they are disabled).
func (s *Server) ackClock() time.Time {
	if s.mMember == nil {
		return time.Time{}
	}
	return time.Now()
}

// ackExec is the shared ack-resolution core: decrement cl's outstanding
// count for the event and unlock the group when the wait set empties. It
// runs on the event's birth shard; if the event migrated with its group, the
// ack is forwarded to the current owner. now is the batch-hoisted ack clock
// (see ackClock); zero means read it here if attribution needs it.
func (s *Server) ackExec(sh *shard, cl *client, eventID uint64, tc obs.TraceContext, now time.Time) {
	pe, ok := sh.pending[eventID]
	if !ok {
		// Stale ack (event already resolved by a deadline or disconnect) —
		// unless the event migrated, in which case chase it.
		s.forwardEventMiss(sh, eventID, func(to *shard) { s.ackExec(to, cl, eventID, tc, now) })
		return
	}
	if pe.waiting[cl.id] == 0 {
		return // ack from an instance we were not waiting for
	}
	s.tr.Point(tc, "server.exec_ack", "server", string(cl.id))
	pe.waiting[cl.id]--
	if pe.waiting[cl.id] == 0 {
		delete(pe.waiting, cl.id)
	}
	// Straggler attribution: charge this ack's latency (Event arrival →
	// now) to the acking member, and when the wait set just emptied, credit
	// it as the event's last acker — the member the whole group blocked on.
	// cl.health is the entry cached at admission, so this is lock-free; it
	// is nil when attribution or metrics are disabled, and pe.start is zero
	// then too, so the clock is never read on the disabled path.
	if e := cl.health; e != nil && !pe.start.IsZero() {
		if now.IsZero() {
			now = time.Now()
		}
		lat := int64(now.Sub(pe.start))
		e.Hist().Observe(lat)
		e.EWMA().Observe(float64(lat))
		e.Counter(memberAcks).Inc()
		if len(pe.waiting) == 0 {
			e.Counter(memberLastAcks).Inc()
		}
	}
	if len(pe.waiting) == 0 {
		s.finishEvent(sh, eventID, pe, false)
	}
}

// forwardEventMiss re-posts an operation on a pending event that is not in
// sh's map: a migrated event leaves a forwarding entry in the router until
// it resolves. Without an entry the miss is final (stale ack / stale timer).
func (s *Server) forwardEventMiss(sh *shard, id uint64, op func(*shard)) {
	if !s.sharded {
		return
	}
	if idx, ok := s.router.eventShard(id); ok && s.shards[idx] != sh {
		to := s.shards[idx]
		s.postShard(to, func() { op(to) })
	}
}

func (s *Server) finishEvent(sh *shard, id uint64, pe *pendingEvent, timedOut bool) {
	delete(sh.pending, id)
	if pe.timer != nil {
		pe.timer.Stop()
	}
	if pe.migrated {
		s.router.clearEvent(id)
	}
	s.unlockEvent(sh, pe, timedOut)
}

func (s *Server) unlockEvent(sh *shard, pe *pendingEvent, timedOut bool) {
	sh.locks.UnlockGroup(pe.members, pe.owner)
	s.tr.Point(pe.tc, "server.unlock", "server", "")
	s.notifyLockChange(pe.tc, pe.members, false, pe.source)
	// Deadline-resolved events waited the full deadline by construction;
	// folding them into the round-trip histogram would inject an outlier
	// equal to the deadline per expiry, so they get their own histogram.
	if timedOut {
		s.mEventTOWait.ObserveSince(pe.start)
	} else {
		s.mEventRTT.ObserveSince(pe.start)
	}
}
