package server_test

import (
	"testing"
	"time"

	"cosoft/internal/client"
	"cosoft/internal/faultnet"
	"cosoft/internal/server"
	"cosoft/internal/wire"
)

// TestChaosEvictionMidBroadcastReleasesSharedBody hangs a coupled member,
// broadcasts an event whose shared-body Exec wedges in the member's outbox,
// then floods the backlog until the sweeper evicts the member. The eviction
// must drop the queued shared-body references exactly once: a leak keeps
// wire.LiveSharedBodies above zero forever, a double release panics the
// writer — and -race audits the release ordering against the state loop.
func TestChaosEvictionMidBroadcastReleasesSharedBody(t *testing.T) {
	h := newHarness(t, server.Options{
		OutboxLimit:   8,
		OutboxGrace:   60 * time.Millisecond,
		EventDeadline: 200 * time.Millisecond,
	})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})
	b, fc := h.dialChaos("editor", "bob", spec, client.Options{}, faultnet.Schedule{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	fc.Hang() // bob's receive window closes for good

	// The broadcast's Exec is encoded once and queued to bob's wedged
	// outbox, where its shared-body reference is now stuck.
	dispatch(t, a, "/note", "v1")
	// Commands broadcast without group locking, so the flood drives bob's
	// backlog over the limit while the shared body is still queued.
	for i := 0; i < 30; i++ {
		mustOK(t, a.SendCommand("noop", nil))
	}
	waitFor(t, "slow member evicted mid-broadcast", func() bool {
		st := h.srv.Stats()
		return st.Evictions >= 1 && st.Instances == 1 && st.PendingEvents == 0
	})
	waitFor(t, "shared body released exactly once", func() bool {
		return wire.LiveSharedBodies() == 0
	})
}
