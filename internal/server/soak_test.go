package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// TestSoakConvergence drives a population of clients through a random mix
// of events, couplings and decouplings, then asserts the floor-control
// invariant: after the system quiesces, every coupling group's members hold
// identical relevant state. Accepted events cannot overlap within a group
// (the lock is held until every member acknowledged), so replacement events
// must leave all members equal.
func TestSoakConvergence(t *testing.T) {
	const (
		clients = 6
		rounds  = 40
	)
	h := newHarness(t, server.Options{})
	cls := make([]*client.Client, clients)
	for i := range cls {
		cls[i] = h.dial("soak", fmt.Sprintf("u%d", i), `textfield pad value=""`, client.Options{})
		mustOK(t, cls[i].Declare("/pad"))
	}

	var wg sync.WaitGroup
	for i := range cls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(i) * 7919))
			for round := 0; round < rounds; round++ {
				switch op := r.Intn(100); {
				case op < 70:
					// A replacement event; denial and retry are normal.
					ev := &widget.Event{Path: "/pad", Name: widget.EventChanged,
						Args: []attr.Value{attr.String(fmt.Sprintf("c%d-r%d", i, round))}}
					deadline := time.Now().Add(5 * time.Second)
					for {
						if err := cls[i].DispatchChecked(ev); err == nil {
							break
						}
						if time.Now().After(deadline) {
							t.Errorf("client %d: event never accepted", i)
							return
						}
						time.Sleep(200 * time.Microsecond)
					}
				case op < 85:
					peer := r.Intn(clients)
					if peer == i {
						continue
					}
					// Coupling can race with identical links; both outcomes
					// are legal.
					_ = cls[i].Couple("/pad", cls[peer].Ref("/pad")) //nolint:errcheck
				default:
					peer := r.Intn(clients)
					if peer == i {
						continue
					}
					_ = cls[i].Decouple("/pad", cls[peer].Ref("/pad")) //nolint:errcheck
				}
			}
		}(i)
	}
	wg.Wait()

	// Quiesce: no client is acting anymore; wait until in-flight execs have
	// drained, then check every group's members agree.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if groupsConverged(cls) {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Report the divergence in detail.
	for i, c := range cls {
		w, err := c.Registry().Lookup("/pad")
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		t.Logf("client %d (%s): value=%q group=%v",
			i, c.ID(), w.Attr(widget.AttrValue).AsString(), c.CO("/pad"))
	}
	t.Fatal("coupling groups did not converge")
}

// groupsConverged checks that for every client, all members of its mirrored
// coupling group report the same pad value.
func groupsConverged(cls []*client.Client) bool {
	byID := make(map[string]*client.Client, len(cls))
	for _, c := range cls {
		byID[string(c.ID())] = c
	}
	for _, c := range cls {
		w, err := c.Registry().Lookup("/pad")
		if err != nil {
			return false
		}
		mine := w.Attr(widget.AttrValue).AsString()
		for _, member := range c.CO("/pad") {
			peer, ok := byID[string(member.Instance)]
			if !ok {
				return false
			}
			pw, err := peer.Registry().Lookup(member.Path)
			if err != nil {
				return false
			}
			if pw.Attr(widget.AttrValue).AsString() != mine {
				return false
			}
		}
	}
	return true
}
