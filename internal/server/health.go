// The group health plane: a structured, JSON-ready report of per-group
// topology and per-member event health, built from the couple graph, the
// shard lock tables and pending maps, and the server.member metric family.
// cosoftd serves it at /debug/groups and cosoft-repl renders it as the
// `groups` command — the evidence surface for "which member is the chronic
// critical path?", the question the §3.2 floor lock makes matter: every
// event blocks its whole coupling group on the slowest acker.
package server

import (
	"sort"
	"strconv"
	"time"

	"cosoft/internal/couple"
)

// MemberHealth is one instance's event-path health. Stats are per instance,
// not per group: an instance coupled into several groups shows the same
// numbers in each.
type MemberHealth struct {
	// Instance is the member's instance ID.
	Instance string `json:"instance"`
	// Connected reports whether the instance currently has a connection.
	Connected bool `json:"connected"`
	// Acks counts ExecAcks received from the member; LastAcks counts the
	// events where this member acked last — the member the group's unlock
	// waited on. Timeouts counts events that hit their deadline while still
	// waiting on this member.
	Acks     uint64 `json:"acks"`
	LastAcks uint64 `json:"last_acks"`
	Timeouts uint64 `json:"timeouts"`
	// AckEWMANS is the exponentially weighted moving average of the
	// member's ack latency (Event arrival → this member's ExecAck) in
	// nanoseconds; AckP50NS/AckP99NS are quantiles over the same latency.
	AckEWMANS float64 `json:"ack_ewma_ns"`
	AckP50NS  float64 `json:"ack_p50_ns"`
	AckP99NS  float64 `json:"ack_p99_ns"`
}

// GroupHealth is one coupling group's topology plus its members' health.
type GroupHealth struct {
	// Refs lists the group's member objects as "instance:path", in the
	// graph's deterministic order.
	Refs []string `json:"refs"`
	// Shard is the index of the shard loop serializing this group's events.
	Shard int `json:"shard"`
	// LockHolder is the instance currently holding the group's floor lock
	// ("" when unlocked).
	LockHolder string `json:"lock_holder,omitempty"`
	// PendingEvents counts broadcast events of this group still awaiting
	// acknowledgements.
	PendingEvents int `json:"pending_events"`
	// Straggler names the member with the highest ack-latency EWMA — the
	// chronic critical path ("" until someone has acked, or when member
	// attribution is disabled).
	Straggler string `json:"straggler,omitempty"`
	// Members holds one entry per distinct instance in the group, sorted by
	// ack-latency EWMA descending (slowest first).
	Members []MemberHealth `json:"members"`
}

// LoopHealth is one serialization loop's utilization numbers.
type LoopHealth struct {
	// Name is "global" or "shard.<i>".
	Name string `json:"name"`
	// BusyNS is the cumulative time the loop spent executing posted
	// closures; Utilization is BusyNS over the server's uptime.
	BusyNS      uint64  `json:"busy_ns"`
	Utilization float64 `json:"utilization"`
	// QueueDepth is the inbox depth at the last dequeue; QueueHighWater the
	// deepest backlog ever sampled.
	QueueDepth     int64 `json:"queue_depth"`
	QueueHighWater int64 `json:"queue_high_water"`
	// Events counts events processed by this shard loop (0 for "global",
	// whose event work is counted by the shards — except with one shard,
	// where shard 0 shares the global loop and the split is the reverse:
	// busy time accrues to "global" and events to "shard.0").
	Events uint64 `json:"events"`
	// PendingEvents counts this shard's events still awaiting acks (always
	// 0 for "global": pending state lives on shards).
	PendingEvents int `json:"pending_events"`
}

// HealthReport is the /debug/groups payload.
type HealthReport struct {
	// UptimeNS is time since the server started.
	UptimeNS int64 `json:"uptime_ns"`
	// MemberAttribution reports whether the per-member family is active;
	// when false every member's stats read zero by construction.
	MemberAttribution bool `json:"member_attribution"`
	// Loops lists the global loop first, then each shard loop.
	Loops []LoopHealth `json:"loops"`
	// Groups lists every coupling group (two or more members).
	Groups []GroupHealth `json:"groups"`
}

// Health assembles the group health report. Callable from any goroutine: the
// graph, lock tables, client map and metric handles are all individually
// synchronized, and per-shard pending counts are gathered under each shard's
// own serialization (the same non-blocking pattern as pendingCount).
func (s *Server) Health() HealthReport {
	rep := HealthReport{
		UptimeNS:          int64(time.Since(s.started)),
		MemberAttribution: s.mMember != nil,
	}

	// Per-shard pending snapshot: event counts keyed by source ref, taken
	// on the owning loop so the maps are never read concurrently.
	type pendingSnap struct {
		idx     int
		bySrc   map[couple.ObjectRef]int
		pending int
	}
	snaps := make(chan pendingSnap, len(s.shards))
	posted := 0
	for _, sh := range s.shards {
		sh := sh
		if s.postShard(sh, func() {
			ps := pendingSnap{idx: sh.idx, bySrc: make(map[couple.ObjectRef]int, len(sh.pending))}
			for _, pe := range sh.pending {
				ps.bySrc[pe.source]++
				ps.pending++
			}
			snaps <- ps
		}) {
			posted++
		}
	}
	pendingBySrc := make(map[couple.ObjectRef]int)
	pendingByShard := make(map[int]int)
	for i := 0; i < posted; i++ {
		select {
		case ps := <-snaps:
			pendingByShard[ps.idx] = ps.pending
			for src, n := range ps.bySrc {
				pendingBySrc[src] += n
			}
		case <-s.quit:
			i = posted // shutting down: report what we have
		}
	}

	uptime := float64(rep.UptimeNS)
	rep.Loops = append(rep.Loops, LoopHealth{
		Name:           "global",
		BusyNS:         s.mGlobalBusy.Value(),
		Utilization:    utilization(s.mGlobalBusy.Value(), uptime),
		QueueDepth:     s.mGlobalDepth.Value(),
		QueueHighWater: s.mGlobalDepth.HighWater(),
	})
	for _, sh := range s.shards {
		rep.Loops = append(rep.Loops, LoopHealth{
			Name:           "shard." + strconv.Itoa(sh.idx),
			BusyNS:         sh.mBusy.Value(),
			Utilization:    utilization(sh.mBusy.Value(), uptime),
			QueueDepth:     sh.mDepth.Value(),
			QueueHighWater: sh.mDepth.HighWater(),
			Events:         sh.mEvents.Value(),
			PendingEvents:  pendingByShard[sh.idx],
		})
	}

	for _, refs := range s.graph.Groups() {
		g := GroupHealth{Shard: s.shardForRef(refs[0]).idx}
		seen := make(map[couple.InstanceID]bool)
		sh := s.shards[g.Shard]
		for _, ref := range refs {
			g.Refs = append(g.Refs, ref.String())
			g.PendingEvents += pendingBySrc[ref]
			if g.LockHolder == "" {
				// The lock table carries its own mutex, so holders can be
				// read from here without entering the shard loop.
				if owner, held := sh.locks.HeldBy(ref); held {
					g.LockHolder = string(owner.Instance)
				}
			}
			if seen[ref.Instance] {
				continue
			}
			seen[ref.Instance] = true
			g.Members = append(g.Members, s.memberHealth(ref.Instance))
		}
		sort.SliceStable(g.Members, func(i, j int) bool {
			return g.Members[i].AckEWMANS > g.Members[j].AckEWMANS
		})
		if len(g.Members) > 0 && g.Members[0].AckEWMANS > 0 {
			g.Straggler = g.Members[0].Instance
		}
		rep.Groups = append(rep.Groups, g)
	}
	// Deterministic group order: by first ref.
	sort.Slice(rep.Groups, func(i, j int) bool { return rep.Groups[i].Refs[0] < rep.Groups[j].Refs[0] })
	return rep
}

// memberHealth reads one instance's entry from the member family. Peek
// neither creates entries nor disturbs the LRU, so reporting cannot inflate
// the family past members that actually acked.
func (s *Server) memberHealth(id couple.InstanceID) MemberHealth {
	_, connected := s.clientOf(id)
	mh := MemberHealth{Instance: string(id), Connected: connected}
	e := s.mMember.Peek(string(id))
	if e == nil {
		return mh
	}
	mh.Acks = e.Counter(memberAcks).Value()
	mh.LastAcks = e.Counter(memberLastAcks).Value()
	mh.Timeouts = e.Counter(memberTimeouts).Value()
	mh.AckEWMANS = e.EWMA().Value()
	sum := e.Hist().Summary()
	mh.AckP50NS = sum.P50
	mh.AckP99NS = sum.P99
	return mh
}

func utilization(busy uint64, uptimeNS float64) float64 {
	if uptimeNS <= 0 {
		return 0
	}
	return float64(busy) / uptimeNS
}
