// Sharded state loops: group-scoped server state (the lock table, the
// historical-states database, and the pending-event wait sets) is partitioned
// across N shard loops, routed by coupling group, while the registry, session
// table, couple graph and client/outbox map stay on the global loop. The
// paper's floor lock makes the coupling group the natural unit of
// serialization (§3.2): events of one group must serialize against each
// other, but events of disjoint groups never share state, so they can run on
// different loops.
//
// With one shard (the default for existing callers), shard 0 *is* the global
// loop — same channel, same goroutine — so every request serializes in
// exactly the order the single-loop server processed it, and the whole
// existing suite doubles as the equivalence oracle for the sharded refactor.
//
// Cross-shard operations are explicit two-shard handoffs. When a new couple
// link joins two groups living on different shards, the smaller group
// migrates to the larger one's shard before the link is installed:
//
//  1. The global loop queues a hold marker on the receiving shard. Every
//     request routed there after the route flip lands behind the marker and
//     is parked until the migrated state arrives.
//  2. The routes of the migrating refs flip to the receiving shard.
//  3. The donor shard extracts the group's locks, histories and pending
//     events — everything queued ahead of the extraction still ran against
//     the full state — and hands the bundle to the receiver on a dedicated
//     install channel.
//  4. The receiver installs the bundle, lifts the hold, and replays the
//     parked requests in arrival order.
//
// No loop ever blocks waiting for another loop: the receiver keeps draining
// its queue (into the parked list) while holding, the donor's handoff channel
// is buffered, and the global loop's wait for the install is the only
// synchronous edge — shards never wait on the global loop, so the wait graph
// stays acyclic.
package server

import (
	"hash/fnv"
	"sync"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/hist"
	"cosoft/internal/lock"
	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

// shard owns the group-scoped state of the coupling groups routed to it. The
// holding/held fields are loop-local: only the owning loop goroutine touches
// them.
type shard struct {
	idx  int
	reqs chan func()
	// installCh delivers the state bundle of an in-flight migration. One
	// migration is in flight at a time (the global loop serializes them and
	// waits for the install), so capacity 1 means the donor never blocks.
	installCh chan migrated

	holding bool     // parked behind an in-flight migration
	held    []func() // requests parked while holding, in arrival order

	locks   *lock.Table
	history *hist.DB
	pending map[uint64]*pendingEvent
	// tails keeps, per source object, the most recent committed events of
	// its coupling group — the in-memory mirror of the durable log's tail,
	// rebuilt by replay on restart. Late joiners receive the merged tail at
	// couple time (Options.ReplayTail). Bounded by maxTailEvents per ref.
	tails map[couple.ObjectRef][]tailEvent
	// seq counts events born on this shard; the wire-visible event ID is
	// (seq-1)*nshards + idx + 1, so IDs are unique across shards and reduce
	// to the plain counter 1,2,3,… with one shard.
	seq uint64

	mEvents *obs.Counter // per-shard event counter (server.shard.<idx>.events)
	mBusy   *obs.Counter // server.shard.<idx>.busy_ns: time spent executing closures
	mDepth  *obs.Gauge   // server.shard.<idx>.queue_depth: inbox depth, sampled per dequeue
}

// tailEvent is one committed event retained for late-join replay: the full
// Exec as broadcast, keyed in shard.tails by its source object.
type tailEvent struct {
	exec wire.Exec
}

// maxTailEvents bounds the per-source late-join tail.
const maxTailEvents = 32

// pushTail retains one committed event in the source object's tail. Runs on
// the owning shard's loop.
func (sh *shard) pushTail(source couple.ObjectRef, exec wire.Exec) {
	t := append(sh.tails[source], tailEvent{exec: exec})
	if len(t) > maxTailEvents {
		copy(t, t[1:])
		t = t[:maxTailEvents]
	}
	sh.tails[source] = t
}

// migrated is the state bundle of one cross-shard group migration.
type migrated struct {
	locks   map[couple.ObjectRef]lock.Owner
	history hist.Extracted
	events  map[uint64]*pendingEvent
	tails   map[couple.ObjectRef][]tailEvent
	done    chan struct{} // closed by the receiver once installed
}

// router maps refs and migrated events to shards. It exists only on sharded
// servers (nil with one shard; every method is nil-safe) and is read from
// connection read loops, so it carries its own lock.
type router struct {
	mu sync.RWMutex
	n  int
	// obj holds explicit route overrides created by migrations. Refs without
	// an override route by hash, so the map stays small: only groups that
	// ever crossed a shard boundary are listed.
	obj map[couple.ObjectRef]int
	// ev forwards acks/timeouts of migrated pending events from their birth
	// shard (encoded in the event ID) to their current shard. Entries exist
	// only while a migrated event is pending.
	ev map[uint64]int
}

func (r *router) refShard(ref couple.ObjectRef) int {
	r.mu.RLock()
	i, ok := r.obj[ref]
	r.mu.RUnlock()
	if ok {
		return i
	}
	return int(hashRef(ref) % uint32(r.n))
}

func (r *router) setRoutes(refs []couple.ObjectRef, idx int) {
	r.mu.Lock()
	for _, ref := range refs {
		if int(hashRef(ref)%uint32(r.n)) == idx {
			delete(r.obj, ref) // override would restate the hash
		} else {
			r.obj[ref] = idx
		}
	}
	r.mu.Unlock()
}

func (r *router) dropRef(ref couple.ObjectRef) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.obj, ref)
	r.mu.Unlock()
}

func (r *router) dropInstance(id couple.InstanceID) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for ref := range r.obj {
		if ref.Instance == id {
			delete(r.obj, ref)
		}
	}
	r.mu.Unlock()
}

func (r *router) setEventRoutes(ids []uint64, idx int) {
	r.mu.Lock()
	for _, id := range ids {
		r.ev[id] = idx
	}
	r.mu.Unlock()
}

func (r *router) eventShard(id uint64) (int, bool) {
	r.mu.RLock()
	i, ok := r.ev[id]
	r.mu.RUnlock()
	return i, ok
}

func (r *router) clearEvent(id uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	delete(r.ev, id)
	r.mu.Unlock()
}

// hashRef is the default ref→shard placement (FNV-1a over the global object
// name). All members of a group must agree on a shard; migrations record
// overrides when coupling breaks the hash placement.
func hashRef(ref couple.ObjectRef) uint32 {
	h := fnv.New32a()
	h.Write([]byte(ref.Instance))
	h.Write([]byte{0})
	h.Write([]byte(ref.Path))
	return h.Sum32()
}

// shardForRef returns the shard owning ref's coupling group.
func (s *Server) shardForRef(ref couple.ObjectRef) *shard {
	if !s.sharded {
		return s.shards[0]
	}
	return s.shards[s.router.refShard(ref)]
}

// birthShard decodes the shard an event ID was allocated on.
func (s *Server) birthShard(eventID uint64) *shard {
	return s.shards[int((eventID-1)%uint64(len(s.shards)))]
}

// postShard schedules fn on sh's loop. With one shard this is exactly post:
// shard 0 shares the global request channel.
func (s *Server) postShard(sh *shard, fn func()) bool {
	select {
	case <-s.quit:
		return false
	default:
	}
	select {
	case sh.reqs <- fn:
		return true
	case <-s.quit:
		return false
	}
}

// runOnShard executes fn under sh's serialization. It must be called from
// the global loop. With one shard the global loop IS the shard loop, so fn
// runs inline — preserving the single-loop execution order exactly.
func (s *Server) runOnShard(sh *shard, fn func()) {
	if !s.sharded {
		fn()
		return
	}
	s.postShard(sh, fn)
}

// shardLoop runs one shard's requests (sharded servers only). While a
// migration into this shard is in flight, requests are parked rather than
// run, and replayed in order once the migrated state is installed — the loop
// itself never blocks, which keeps the cross-loop wait graph acyclic.
//
// Each dequeue samples the inbox depth and brackets the work with busy-time
// accounting (server.shard.<i>.busy_ns / .queue_depth); the Gauge's
// high-water mark doubles as the worst backlog ever seen. Both are no-ops
// under obs.Disabled, whose Start never reads the clock.
func (s *Server) shardLoop(sh *shard) {
	defer s.wg.Done()
	for {
		select {
		case fn := <-sh.reqs:
			sh.mDepth.Set(int64(len(sh.reqs)))
			t0 := sh.mBusy.Start()
			sh.run(fn)
			sh.mBusy.AddSince(t0)
		case m := <-sh.installCh:
			t0 := sh.mBusy.Start()
			sh.install(m)
			sh.mBusy.AddSince(t0)
		case <-s.quit:
			for {
				select {
				case fn := <-sh.reqs:
					sh.run(fn)
				case m := <-sh.installCh:
					sh.install(m)
				default:
					return
				}
			}
		}
	}
}

func (sh *shard) run(fn func()) {
	if sh.holding {
		sh.held = append(sh.held, fn)
		return
	}
	fn()
}

// install merges a migrated group into this shard and replays the parked
// backlog.
func (sh *shard) install(m migrated) {
	sh.locks.Install(m.locks)
	sh.history.Install(m.history)
	for id, pe := range m.events {
		sh.pending[id] = pe
	}
	for ref, t := range m.tails {
		sh.tails[ref] = t
	}
	sh.holding = false
	close(m.done)
	held := sh.held
	sh.held = nil
	for _, fn := range held {
		fn()
	}
}

// mergeShards co-locates the two endpoint groups of a new couple link before
// the link merges them: every member of one coupling group must serialize on
// one shard loop. The smaller pre-merge group migrates to the larger one's
// shard (ties keep the from side in place). It runs on the global loop,
// before graph.AddLink.
func (s *Server) mergeShards(from, to couple.ObjectRef) {
	shFrom := s.shardForRef(from)
	shTo := s.shardForRef(to)
	if shFrom == shTo {
		return // same shard — includes the already-same-group case
	}
	gFrom := s.graph.Group(from)
	gTo := s.graph.Group(to)
	winner, loser, refs := shFrom, shTo, gTo
	if len(gTo) > len(gFrom) {
		winner, loser, refs = shTo, shFrom, gFrom
	}
	s.migrateGroup(loser, winner, refs)
}

// migrateGroup moves the group made of refs from one shard to another. It
// runs on the global loop and returns once the receiving shard has installed
// the state (or the server is shutting down).
func (s *Server) migrateGroup(from, to *shard, refs []couple.ObjectRef) {
	s.mHandoffs.Inc()
	refset := make(map[couple.ObjectRef]bool, len(refs))
	for _, ref := range refs {
		refset[ref] = true
	}
	done := make(chan struct{})
	// The hold marker's queue position is the correctness pivot: requests
	// routed to the receiver after the flip necessarily enqueue behind it,
	// so none of them can run before the migrated state is installed.
	if !s.postShard(to, func() { to.holding = true }) {
		return // shutting down
	}
	s.router.setRoutes(refs, to.idx)
	if s.postShard(from, func() { s.extractMigrated(from, to, refset, done) }) {
		select {
		case <-done:
		case <-s.quit:
		}
	}
}

// extractMigrated runs on the donor shard: everything queued ahead of it
// already ran against the full state, everything routed after the flip goes
// to the receiver. Locks are extracted both by ref and by owning event, so a
// migrating event's lock on a since-retracted object cannot strand on the
// donor.
func (s *Server) extractMigrated(from, to *shard, refs map[couple.ObjectRef]bool, done chan struct{}) {
	m := migrated{events: make(map[uint64]*pendingEvent), done: done}
	owners := make(map[lock.Owner]bool)
	var ids []uint64
	for id, pe := range from.pending {
		if refs[pe.source] {
			delete(from.pending, id)
			pe.migrated = true
			m.events[id] = pe
			owners[pe.owner] = true
			ids = append(ids, id)
		}
	}
	m.locks = from.locks.Extract(refs, owners)
	m.history = from.history.Extract(refs)
	m.tails = make(map[couple.ObjectRef][]tailEvent)
	for ref := range refs {
		if t, ok := from.tails[ref]; ok {
			m.tails[ref] = t
			delete(from.tails, ref)
		}
	}
	s.router.setEventRoutes(ids, to.idx)
	to.installCh <- m
}

// dispatchEnv routes one decoded envelope from a connection read loop. On a
// single-shard server everything goes to the global loop, exactly as before.
// On a sharded server, Event/ExecAck/BatchAck traffic goes straight to the
// owning shard; everything else (registration, coupling, copies, commands,
// permissions) stays on the global loop.
func (s *Server) dispatchEnv(cl *client, env wire.Envelope) bool {
	if !s.sharded {
		return s.post(func() {
			s.recordFlight(cl, "recv", env)
			s.handle(cl, env)
		})
	}
	switch m := env.Msg.(type) {
	case wire.Event:
		sh := s.shardForRef(couple.ObjectRef{Instance: cl.id, Path: m.Path})
		return s.postShard(sh, func() {
			s.recordFlight(cl, "recv", env)
			s.handleEvent(sh, cl, env.Seq, m, env.Trace)
		})
	case wire.ExecAck:
		sh := s.birthShard(m.EventID)
		return s.postShard(sh, func() {
			s.recordFlight(cl, "recv", env)
			s.ackExec(sh, cl, m.EventID, env.Trace, time.Time{})
		})
	case wire.BatchAck:
		// Split the coalesced run by birth shard, preserving within-shard
		// entry order — resolving entries shard by shard is identical to the
		// same ExecAcks arriving singly.
		s.recordFlight(cl, "recv", env)
		s.mAcksCoalesced.Add(uint64(len(m.Acks)))
		perShard := make(map[*shard][]wire.BatchAckEntry)
		for _, a := range m.Acks {
			sh := s.birthShard(a.EventID)
			perShard[sh] = append(perShard[sh], a)
		}
		ok := true
		for sh, acks := range perShard {
			sh, acks := sh, acks
			if !s.postShard(sh, func() {
				now := s.ackClock()
				for _, a := range acks {
					s.ackExec(sh, cl, a.EventID, a.Trace, now)
				}
			}) {
				ok = false
			}
		}
		return ok
	}
	return s.post(func() {
		s.recordFlight(cl, "recv", env)
		s.handle(cl, env)
	})
}
