package server_test

import (
	"net"
	"testing"
)

// netListen and netDial isolate the TCP specifics of TestServerOverTCP.

func netListen(t *testing.T) (net.Listener, error) {
	t.Helper()
	return net.Listen("tcp", "127.0.0.1:0")
}

func netDial(addr string) (net.Conn, error) {
	return net.Dial("tcp", addr)
}
