package server_test

// Durable-log end-to-end tests: server restarts that are invisible to
// resuming clients, the session-token lifecycle across a restart, late-join
// catch-up from the replayed log tail, and a chaos soak that kills and
// restarts the server repeatedly under live traffic.

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// durableServer runs a restartable durable server: each incarnation opens
// the same log directory, replays it, and serves in-process connections.
// Dial targets whichever incarnation is current, so reconnecting clients
// ride through a restart.
type durableServer struct {
	t       *testing.T
	dir     string
	opts    server.Options
	logOpts eventlog.Options
	inc     int

	mu   sync.Mutex
	srv  *server.Server
	elog *eventlog.Log
	wg   sync.WaitGroup
}

func newDurableServer(t *testing.T, opts server.Options) *durableServer {
	return newDurableLogServer(t, opts, eventlog.Options{Sync: eventlog.SyncAlways})
}

// newDurableLogServer is newDurableServer with explicit event-log options
// (segment size, metrics sink, sync policy) that every incarnation reuses.
func newDurableLogServer(t *testing.T, opts server.Options, logOpts eventlog.Options) *durableServer {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = envShards
	}
	if opts.BatchLimit == 0 {
		opts.BatchLimit = envBatchLimit
	}
	opts.ReplayTail = true
	d := &durableServer{t: t, dir: t.TempDir(), opts: opts, logOpts: logOpts}
	d.start()
	t.Cleanup(func() {
		d.stop()
		d.wg.Wait()
	})
	return d
}

func (d *durableServer) start() {
	d.t.Helper()
	logOpts := d.logOpts
	logOpts.Dir = d.dir
	elog, err := eventlog.Open(logOpts)
	if err != nil {
		d.t.Fatalf("open event log: %v", err)
	}
	opts := d.opts
	opts.EventLog = elog
	d.mu.Lock()
	d.inc++
	if opts.Logger != nil {
		opts.Logger = opts.Logger.With("inc", d.inc)
	}
	d.srv = server.New(opts)
	d.elog = elog
	d.mu.Unlock()
}

// stop tears down the current incarnation: server first (its shutdown drops
// are not logged — the instances did not leave, the server did), then the
// log, which flushes and closes the segment files.
func (d *durableServer) stop() {
	d.mu.Lock()
	srv, elog := d.srv, d.elog
	d.srv, d.elog = nil, nil
	d.mu.Unlock()
	if srv != nil {
		srv.Close()
	}
	if elog != nil {
		elog.Close()
	}
}

func (d *durableServer) restart() {
	d.stop()
	d.start()
}

// dialConn opens an in-process connection to the current incarnation. During
// the instant between stop and start the old server still answers (and
// immediately drops the conn), which is exactly the refused-dial window a
// reconnecting client retries through.
func (d *durableServer) dialConn() (net.Conn, error) {
	d.mu.Lock()
	srv := d.srv
	d.mu.Unlock()
	link := netsim.NewLink(0)
	if srv == nil {
		link.B.Close()
		return link.A, nil
	}
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		srv.HandleConn(wire.NewConn(link.B))
	}()
	return link.A, nil
}

// dial connects a reconnect-enabled client that resumes by session token
// across restarts and relies on the server's log-tail replay instead of a
// peer state pull.
func (d *durableServer) dial(appType, user, spec string) *client.Client {
	d.t.Helper()
	reg := widget.NewRegistry()
	if spec != "" {
		widget.MustBuild(reg, "/", spec)
	}
	conn, _ := d.dialConn()
	c, err := client.New(conn, client.Options{
		AppType: appType, User: user, Host: "durable", Registry: reg,
		RPCTimeout: 5 * time.Second,
		Batching:   envBatchLimit > 0,
		Reconnect: &client.ReconnectOptions{
			Dial:          d.dialConn,
			MaxAttempts:   50,
			BaseDelay:     2 * time.Millisecond,
			MaxDelay:      50 * time.Millisecond,
			SkipStatePull: true,
		},
	})
	if err != nil {
		d.t.Fatalf("dial %s: %v", user, err)
	}
	d.t.Cleanup(c.Close)
	return c
}

// rawConn speaks the wire protocol directly against a durable server, for
// token-lifecycle steps a full client would hide.
type rawConn struct {
	t    *testing.T
	conn *wire.Conn
	seq  uint64
}

func newRawConn(t *testing.T, d *durableServer) *rawConn {
	t.Helper()
	c, _ := d.dialConn()
	conn := wire.NewConn(c)
	// Unregistered (or refused) connections are not in the server's client
	// map, so Close never reaches them; close from this side or the
	// HandleConn goroutine outlives the test.
	t.Cleanup(func() { conn.Close() })
	return &rawConn{t: t, conn: conn}
}

// call writes msg and returns the next reply envelope (these flows have no
// server-initiated traffic interleaved).
func (rc *rawConn) call(msg wire.Message) wire.Message {
	rc.t.Helper()
	rc.seq++
	if err := rc.conn.Write(wire.Envelope{Seq: rc.seq, Msg: msg}); err != nil {
		rc.t.Fatalf("raw write %s: %v", msg.MsgType(), err)
	}
	env, err := rc.conn.Read()
	if err != nil {
		rc.t.Fatalf("raw read after %s: %v", msg.MsgType(), err)
	}
	return env.Msg
}

func (rc *rawConn) register(appType, user string) couple.InstanceID {
	rc.t.Helper()
	m, ok := rc.call(wire.Register{AppType: appType, User: user, Host: "raw"}).(wire.Registered)
	if !ok {
		rc.t.Fatal("registration refused")
	}
	return m.ID
}

func (rc *rawConn) token() string {
	rc.t.Helper()
	m, ok := rc.call(wire.SessionToken{}).(wire.SessionToken)
	if !ok {
		rc.t.Fatal("token mint refused")
	}
	return m.Token
}

// resume attempts a Resume handshake, returning the reclaimed ID or "" when
// the server refused the token.
func (rc *rawConn) resume(tok string) couple.InstanceID {
	rc.t.Helper()
	switch m := rc.call(wire.Resume{Token: tok}).(type) {
	case wire.Registered:
		return m.ID
	case wire.Err:
		return ""
	default:
		rc.t.Fatalf("unexpected resume reply %T", m)
		return ""
	}
}

// TestRestartResumeInvisible kills the server mid-session and restarts it
// from the log: both clients resume by token, their declarations, coupling
// and event flow intact — no re-registration, no state pull from a peer.
func TestRestartResumeInvisible(t *testing.T) {
	d := newDurableServer(t, server.Options{})
	a := d.dial("editor", "alice", `textfield note value=""`)
	b := d.dial("editor", "bob", `textfield note value=""`)
	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupled", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	mustOK(t, a.Registry().Dispatch(&widget.Event{
		Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("before restart")},
	}))
	waitFor(t, "replicated before restart", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "before restart"
	})
	idA, idB := a.ID(), b.ID()

	d.restart()

	// Both clients must ride through: same IDs, coupling intact, events flow.
	waitFor(t, "A dispatches after restart", func() bool {
		return a.DispatchChecked(&widget.Event{
			Path: "/note", Name: widget.EventChanged, Args: []attr.Value{attr.String("after restart")},
		}) == nil
	})
	waitFor(t, "replicated after restart", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "after restart"
	})
	if a.ID() != idA || b.ID() != idB {
		t.Fatalf("instance IDs changed across restart: %s/%s -> %s/%s", idA, idB, a.ID(), b.ID())
	}
}

// TestSessionTokenLifecycleAcrossRestart covers satellite S3: a pre-crash
// token is honored exactly once after replay, a resumed session can re-mint,
// and a token dropped by Deregister before the crash is rejected after it.
func TestSessionTokenLifecycleAcrossRestart(t *testing.T) {
	d := newDurableServer(t, server.Options{})

	// Mint a token, then "crash".
	rc := newRawConn(t, d)
	id := rc.register("app", "u1")
	tok := rc.token()

	// A deregistered instance's token is revoked durably before the crash.
	rcGone := newRawConn(t, d)
	rcGone.register("app", "u2")
	tokGone := rcGone.token()
	rc2 := rcGone.call(wire.Deregister{})
	if _, isErr := rc2.(wire.Err); isErr {
		t.Fatalf("deregister failed: %v", rc2)
	}

	d.restart()

	// The pre-crash token is honored exactly once.
	r1 := newRawConn(t, d)
	if got := r1.resume(tok); got != id {
		t.Fatalf("resume with pre-crash token: got %q, want %q", got, id)
	}
	r2 := newRawConn(t, d)
	if got := r2.resume(tok); got != "" {
		t.Fatalf("second resume with consumed token succeeded as %q", got)
	}
	// The token dropped by Deregister before the crash stays dead.
	r3 := newRawConn(t, d)
	if got := r3.resume(tokGone); got != "" {
		t.Fatalf("deregistered token resumed as %q after restart", got)
	}

	// The resumed session re-mints and the new token survives the next crash.
	tok2 := r1.token()
	d.restart()
	r4 := newRawConn(t, d)
	if got := r4.resume(tok2); got != id {
		t.Fatalf("resume with re-minted token: got %q, want %q", got, id)
	}
}

// TestLateJoinReplaysLogTail: a client that couples into an active group
// converges through replayed Exec events from the group's retained log tail,
// with no CopyFrom state pull — including a joiner arriving only after a
// server restart, whose tail was rebuilt purely from the log.
func TestLateJoinReplaysLogTail(t *testing.T) {
	d := newDurableServer(t, server.Options{})
	a := d.dial("app", "u1", `textfield x value=""`)
	b := d.dial("app", "u2", `textfield x value=""`)
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "coupled", func() bool { return a.Coupled("/x") && b.Coupled("/x") })

	for _, v := range []string{"v1", "v2", "v3"} {
		v := v
		waitFor(t, "dispatch "+v, func() bool {
			return a.DispatchChecked(&widget.Event{
				Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String(v)},
			}) == nil
		})
	}
	waitFor(t, "B converged live", func() bool {
		return attrOf(t, b, "/x", widget.AttrValue).AsString() == "v3"
	})

	// C joins late: coupling alone must deliver the tail as ordinary Execs.
	c := d.dial("app", "u3", `textfield x value=""`)
	mustOK(t, c.Declare("/x"))
	mustOK(t, c.Couple("/x", a.Ref("/x")))
	waitFor(t, "late joiner caught up from log tail", func() bool {
		return attrOf(t, c, "/x", widget.AttrValue).AsString() == "v3"
	})

	// Restart: the tail now exists only in the log. A joiner arriving after
	// replay must still catch up the same way.
	d.restart()
	waitFor(t, "A resumed", func() bool {
		return a.DispatchChecked(&widget.Event{
			Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v4")},
		}) == nil
	})
	e := d.dial("app", "u4", `textfield x value=""`)
	mustOK(t, e.Declare("/x"))
	mustOK(t, e.Couple("/x", a.Ref("/x")))
	waitFor(t, "post-restart joiner caught up from replayed tail", func() bool {
		return attrOf(t, e, "/x", widget.AttrValue).AsString() == "v4"
	})
}

// TestChaosRestartSoak (make chaos-restart) kills and restarts the server
// repeatedly under live traffic. Clients ride through on session-token
// resume; afterwards every client must still be functional under its
// original ID, and every event acknowledged to any client must be in the
// durable log — zero acked events lost.
func TestChaosRestartSoak(t *testing.T) {
	const restarts = 4
	d := newDurableServer(t, server.Options{})

	specs := []struct{ user, val string }{{"u1", "a"}, {"u2", "b"}, {"u3", "c"}}
	clients := make([]*client.Client, len(specs))
	for i, sp := range specs {
		clients[i] = d.dial("app", sp.user, `textfield x value=""`)
		mustOK(t, clients[i].Declare("/x"))
	}
	for i := 1; i < len(clients); i++ {
		mustOK(t, clients[0].Couple("/x", clients[i].Ref("/x")))
	}
	waitFor(t, "group formed", func() bool {
		for _, c := range clients {
			if len(c.CO("/x")) != len(clients)-1 {
				return false
			}
		}
		return true
	})
	ids := make([]couple.InstanceID, len(clients))
	for i, c := range clients {
		ids[i] = c.ID()
	}

	// Traffic: every client dispatches as fast as rejections and restarts
	// allow; only server-acknowledged events count.
	var acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				err := c.DispatchChecked(&widget.Event{
					Path: "/x", Name: widget.EventChanged,
					Args: []attr.Value{attr.String(specs[i].val)},
				})
				if err == nil {
					acked.Add(1)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	for i := 0; i < restarts; i++ {
		time.Sleep(120 * time.Millisecond)
		d.restart()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every client must still be alive under its original identity.
	for i, c := range clients {
		i, c := i, c
		waitFor(t, "client functional after soak", func() bool {
			return c.DispatchChecked(&widget.Event{
				Path: "/x", Name: widget.EventChanged,
				Args: []attr.Value{attr.String("final-" + specs[i].user)},
			}) == nil
		})
		acked.Add(1)
		if c.ID() != ids[i] {
			t.Fatalf("client %d changed identity: %s -> %s", i, ids[i], c.ID())
		}
	}

	// Zero acked events lost: every acknowledged event has a log record.
	d.stop()
	logged := uint64(0)
	if err := eventlog.ReplayDir(d.dir, func(rec eventlog.Record) error {
		if rec.Kind == eventlog.KindEvent {
			logged++
		}
		return nil
	}); err != nil {
		t.Fatalf("replay after soak: %v", err)
	}
	if got := acked.Load(); logged < got {
		t.Fatalf("acked %d events but only %d are in the log — acked events lost", got, logged)
	}
	t.Logf("soak: %d restarts, %d acked events, %d logged", restarts, acked.Load(), logged)
}
