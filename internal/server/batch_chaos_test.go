package server_test

import (
	"sync"
	"testing"
	"time"

	"cosoft/internal/client"
	"cosoft/internal/faultnet"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// Batch-mode chaos scenarios: the packed fan-out path under injected
// faults. Beyond these, `make chaos` runs the entire chaos suite a second
// time with COSOFT_BATCH_LIMIT set, so every pre-existing failure scenario
// (hang, partition, eviction, reconnect, mid-event disconnect) also soaks
// against a batching server with batch-aware clients.

// TestChaosBatchedDupDelayPreservesEventOrder drives a sequence of events
// through a batching server over a link that duplicates every frame and
// delays writes: the member must observe the events in origin order (each
// possibly more than once, since duplicated Execs re-apply), and the group
// must converge unlocked after every round.
func TestChaosBatchedDupDelayPreservesEventOrder(t *testing.T) {
	sched := faultnet.Schedule{Seed: 23, DupProb: 1, Delay: time.Millisecond, Jitter: 2 * time.Millisecond}
	h := newHarness(t, server.Options{BatchLimit: 8})
	spec := `textfield note value=""`
	a, _ := h.dialChaos("editor", "alice", spec, client.Options{Batching: true}, sched)

	var mu sync.Mutex
	var applied []string
	bopts := client.Options{
		Batching: true,
		OnRemoteEvent: func(e *widget.Event) {
			mu.Lock()
			applied = append(applied, e.Args[0].AsString())
			mu.Unlock()
		},
	}
	b, _ := h.dialChaos("editor", "bob", spec, bopts, sched)

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	want := []string{"v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8"}
	for _, v := range want {
		// Wait out the previous round first: dispatching into a still-locked
		// group would be rejected, which is contention, not corruption.
		waitFor(t, "group idle before "+v, func() bool { return h.srv.Stats().PendingEvents == 0 })
		waitFor(t, "group unlocked before "+v, func() bool { return !disabled(t, a, "/note") })
		dispatch(t, a, "/note", v)
	}
	waitFor(t, "final value at B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == want[len(want)-1]
	})
	waitFor(t, "all events resolved", func() bool { return h.srv.Stats().PendingEvents == 0 })
	waitFor(t, "group unlocked", func() bool { return !disabled(t, b, "/note") })

	// Collapse adjacent duplicates (a duplicated frame re-applies the same
	// event); what remains must be exactly the origin's sequence.
	mu.Lock()
	var seq []string
	for _, v := range applied {
		if len(seq) == 0 || seq[len(seq)-1] != v {
			seq = append(seq, v)
		}
	}
	mu.Unlock()
	if len(seq) != len(want) {
		t.Fatalf("B observed sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("B observed sequence %v, want %v (diverges at %d)", seq, want, i)
		}
	}
}

// TestChaosBatchStragglerDoesNotPoisonCoalescedAcks runs the deadline
// scenario against the coalescer: bob holds two members of the group (his
// two Execs arrive packed and he acks them in one BatchAck), while carol
// hangs and is dropped by the event deadline. The straggler's timeout must
// not disturb the coalesced acknowledgements of her batch-mates: the event
// resolves, the group unlocks, and a follow-up event converges everywhere.
func TestChaosBatchStragglerDoesNotPoisonCoalescedAcks(t *testing.T) {
	h := newHarness(t, server.Options{
		BatchLimit:    8,
		EventDeadline: 300 * time.Millisecond,
	})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{Batching: true})
	bspec := `textfield x value=""
textfield y value=""`
	b, bFault := h.dialChaos("editor", "bob", bspec, client.Options{Batching: true}, faultnet.Schedule{})
	c, cFault := h.dialChaos("editor", "carol", `textfield note value=""`, client.Options{Batching: true}, faultnet.Schedule{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, b.Declare("/y"))
	mustOK(t, c.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/x")))
	mustOK(t, a.Couple("/note", b.Ref("/y")))
	mustOK(t, a.Couple("/note", c.Ref("/note")))
	waitFor(t, "group mirrored", func() bool {
		return a.Coupled("/note") && b.Coupled("/x") && b.Coupled("/y") && c.Coupled("/note")
	})

	// Wedge both members and park a filler broadcast in front of them, so
	// their outbox writers are already blocked mid-write when the event
	// fans out; then restore only bob. His SetLocks and two Execs flush as
	// one packed frame, and he answers the adjacent Execs with a single
	// coalesced BatchAck. Carol stays hung past the deadline.
	bFault.Hang()
	cFault.Hang()
	mustOK(t, a.SendCommand("filler", nil))
	dispatch(t, a, "/note", "v1")
	waitFor(t, "fan-out queued", func() bool { return h.srv.Stats().ExecsSent >= 3 })
	bFault.Restore()

	waitFor(t, "bob applies both members", func() bool {
		return attrOf(t, b, "/x", widget.AttrValue).AsString() == "v1" &&
			attrOf(t, b, "/y", widget.AttrValue).AsString() == "v1"
	})
	waitFor(t, "bob's acks arrive coalesced", func() bool {
		return h.srv.Stats().AcksCoalesced >= 2
	})
	waitFor(t, "deadline drops the straggler", func() bool {
		st := h.srv.Stats()
		return st.EventTimeouts >= 1 && st.PendingEvents == 0
	})
	waitFor(t, "group unlocked", func() bool {
		return !disabled(t, b, "/x") && !disabled(t, b, "/y")
	})

	// The group lock is free: the next event converges everywhere, including
	// at the recovered straggler.
	cFault.Restore()
	dispatch(t, a, "/note", "v2")
	waitFor(t, "follow-up event converges", func() bool {
		return attrOf(t, b, "/x", widget.AttrValue).AsString() == "v2" &&
			attrOf(t, b, "/y", widget.AttrValue).AsString() == "v2" &&
			attrOf(t, c, "/note", widget.AttrValue).AsString() == "v2"
	})
	waitFor(t, "everything resolved", func() bool { return h.srv.Stats().PendingEvents == 0 })
}
