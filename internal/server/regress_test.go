package server_test

// Regression tests for protocol bugs found while instrumenting the server
// (see CHANGES.md): stale mirrored coupling information after retracting a
// middle group member, partial command delivery on a bad target, and the
// observability counters exposed through the extended Stats.

import (
	"testing"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// TestRetractMiddleNotifiesBothHalves retracts the middle object of a
// three-instance chain a–b–c and verifies both detached halves heard about
// *every* removed link. The server used to compute the notification group
// after removing the object, so a never learned that b–c died (and c never
// learned about a–b), leaving stale entries in their replicated coupling
// info. The staleness is observable by re-coupling a to c: the mirrored
// group must then contain exactly the two live objects, not the retracted
// one.
func TestRetractMiddleNotifiesBothHalves(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	c := h.dial("app", "u3", `textfield x`, client.Options{})
	for _, cl := range []*client.Client{a, b, c} {
		mustOK(t, cl.Declare("/x"))
	}
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	mustOK(t, b.Couple("/x", c.Ref("/x")))
	waitFor(t, "full chain mirrored at a", func() bool { return len(a.CO("/x")) == 2 })
	waitFor(t, "full chain mirrored at c", func() bool { return len(c.CO("/x")) == 2 })

	// Destroying the widget triggers the automatic Retract (§3.2).
	if err := b.Registry().Destroy("/x"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a decoupled", func() bool { return !a.Coupled("/x") })
	waitFor(t, "c decoupled", func() bool { return !c.Coupled("/x") })

	// Couple the two surviving halves directly. Any stale b-link left in a
	// mirror would now resurface as a phantom group member.
	mustOK(t, a.Couple("/x", c.Ref("/x")))
	waitFor(t, "new link mirrored at a", func() bool { return a.Coupled("/x") })
	assertCO(t, "a", a.CO("/x"), c.Ref("/x"))
	waitFor(t, "new link mirrored at c", func() bool { return c.Coupled("/x") })
	assertCO(t, "c", c.CO("/x"), a.Ref("/x"))
}

func assertCO(t *testing.T, who string, got []couple.ObjectRef, want couple.ObjectRef) {
	t.Helper()
	if len(got) != 1 || got[0] != want {
		t.Errorf("%s's mirrored group = %v, want exactly [%v]", who, got, want)
	}
}

// TestCommandBadTargetDeliversNothing sends a command to one live and one
// unknown target. The server must reject it without delivering to anybody:
// it used to deliver to the targets preceding the bad one and then report
// failure to the sender.
func TestCommandBadTargetDeliversNothing(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", "", client.Options{})
	b := h.dial("app", "u2", "", client.Options{})
	got := make(chan string, 4)
	b.OnCommand("ping", func(from couple.InstanceID, payload []byte) {
		got <- string(payload)
	})

	if err := a.SendCommand("ping", []byte("partial"), b.ID(), "no-such-instance"); err == nil {
		t.Fatal("command with unknown target must fail")
	}
	// A follow-up command on the same connections delivers in order: if the
	// rejected command had leaked to b, it would arrive first.
	if err := a.SendCommand("ping", []byte("clean"), b.ID()); err != nil {
		t.Fatal(err)
	}
	if first := <-got; first != "clean" {
		t.Errorf("b received %q first; the rejected command leaked", first)
	}
}

// TestStatsExposeLatencySummaries drives one coupled event end-to-end and
// checks the new observability fields: round-trip and fan-out histograms,
// lock counters, and the outbox high-water mark.
func TestStatsExposeLatencySummaries(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/x") })
	mustOK(t, a.DispatchChecked(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	waitFor(t, "event round trip completed", func() bool {
		return h.srv.Stats().EventRTT.Count == 1
	})
	stats := h.srv.Stats()
	if stats.EventRTT.P50 <= 0 || stats.EventRTT.P99 < stats.EventRTT.P50 {
		t.Errorf("EventRTT = %+v", stats.EventRTT)
	}
	if stats.Fanout.Count != 1 || stats.Fanout.Max != 1 {
		t.Errorf("Fanout = %+v", stats.Fanout)
	}
	if stats.LockAttempts == 0 {
		t.Errorf("LockAttempts = 0, want > 0")
	}
	if stats.OutboxHighWater == 0 {
		t.Error("OutboxHighWater = 0, want > 0")
	}
}

// TestDisabledMetricsKeepServerWorking runs the event path under
// obs.Disabled: every handle is nil and Stats reports zeros, but the
// protocol must behave identically.
func TestDisabledMetricsKeepServerWorking(t *testing.T) {
	h := newHarness(t, server.Options{Metrics: obs.Disabled})
	a := h.dial("app", "u1", `textfield x`, client.Options{})
	b := h.dial("app", "u2", `textfield x`, client.Options{})
	mustOK(t, a.Declare("/x"))
	mustOK(t, b.Declare("/x"))
	mustOK(t, a.Couple("/x", b.Ref("/x")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/x") })
	mustOK(t, a.DispatchChecked(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String("v")},
	}))
	waitFor(t, "value replicated", func() bool {
		return attrOf(t, b, "/x", widget.AttrValue).AsString() == "v"
	})
	if stats := h.srv.Stats(); stats.Events != 0 || stats.EventRTT.Count != 0 {
		t.Errorf("disabled metrics must read zero, got %+v", stats)
	}
}
