package server_test

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"encoding/binary"

	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/faultnet"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// snoopConn records every byte the wrapped connection delivers to Read, so a
// test can assert on the raw frames a client actually received — which
// message types arrived, and whether they were packed.
type snoopConn struct {
	net.Conn
	mu  sync.Mutex
	buf []byte
}

func (s *snoopConn) Read(p []byte) (int, error) {
	n, err := s.Conn.Read(p)
	if n > 0 {
		s.mu.Lock()
		s.buf = append(s.buf, p[:n]...)
		s.mu.Unlock()
	}
	return n, err
}

// rawFrameTypes parses the recorded server-to-client byte stream into the
// raw u16 type field of each complete frame, capability flag bits included
// (frame layout: [u32 length][u16 type|flags]...).
func (s *snoopConn) rawFrameTypes(t *testing.T) []uint16 {
	t.Helper()
	s.mu.Lock()
	data := append([]byte(nil), s.buf...)
	s.mu.Unlock()
	var types []uint16
	for len(data) >= 4 {
		n := binary.LittleEndian.Uint32(data)
		if len(data) < 4+int(n) {
			break // trailing partial frame still in flight
		}
		if n < 2 {
			t.Fatalf("recorded frame with %d-byte body", n)
		}
		types = append(types, binary.LittleEndian.Uint16(data[4:]))
		data = data[4+int(n):]
	}
	return types
}

// dialSnooped is harness.dial with the server side wrapped in a fault
// injector and the client side wrapped in a byte recorder. The batch opt-in
// is taken verbatim from copts (no COSOFT_BATCH_LIMIT override): interop
// tests need a client that is genuinely legacy.
func (h *harness) dialSnooped(appType, user, spec string, copts client.Options) (*client.Client, *faultnet.Conn, *snoopConn) {
	h.t.Helper()
	reg := widget.NewRegistry()
	if spec != "" {
		widget.MustBuild(reg, "/", spec)
	}
	link := netsim.NewLink(0)
	fc := faultnet.Wrap(link.B, faultnet.Schedule{})
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(fc))
	}()
	snoop := &snoopConn{Conn: link.A}
	copts.AppType = appType
	copts.User = user
	copts.Host = "testhost"
	copts.Registry = reg
	if copts.RPCTimeout == 0 {
		copts.RPCTimeout = 5 * time.Second
	}
	c, err := client.New(snoop, copts)
	if err != nil {
		h.t.Fatalf("dial %s: %v", appType, err)
	}
	h.t.Cleanup(c.Close)
	h.t.Cleanup(func() { fc.Close() })
	return c, fc, snoop
}

// TestBatchInteropLegacyPeerInMixedGroup puts one legacy client in a
// three-member coupling group on a batching server: the batch-aware member
// must receive its backlog as packed Batch frames while the legacy member
// keeps receiving plain singles (and never even sees the capability bit),
// and the event must resolve for everyone.
func TestBatchInteropLegacyPeerInMixedGroup(t *testing.T) {
	h := newHarness(t, server.Options{BatchLimit: 8})
	spec := `textfield note value=""`
	a, _, _ := h.dialSnooped("editor", "alice", spec, client.Options{Batching: true})
	b, bFault, bSnoop := h.dialSnooped("editor", "bob", spec, client.Options{Batching: true})
	c, _, cSnoop := h.dialSnooped("editor", "carol", spec, client.Options{}) // legacy: no opt-in

	var carolCommands atomic.Int32
	c.OnCommand("filler", func(couple.InstanceID, []byte) { carolCommands.Add(1) })

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, c.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	mustOK(t, a.Couple("/note", c.Ref("/note")))
	waitFor(t, "group mirrored", func() bool {
		return a.Coupled("/note") && b.Coupled("/note") && c.Coupled("/note")
	})

	// Wedge bob's connection, then generate an event plus filler broadcasts:
	// his SetLocks, Exec and CommandDelivers pile up behind the blocked
	// writer, so restoring the link flushes a multi-envelope backlog — which
	// for a batch-aware peer means packed frames.
	bFault.Hang()
	const filler = 4
	dispatch(t, a, "/note", "batched")
	for i := 0; i < filler; i++ {
		mustOK(t, a.SendCommand("filler", nil))
	}
	// Carol's copies arriving proves the state loop has queued bob's too.
	waitFor(t, "legacy member applies the event", func() bool {
		return attrOf(t, c, "/note", widget.AttrValue).AsString() == "batched"
	})
	waitFor(t, "legacy member got the filler", func() bool {
		return carolCommands.Load() == filler
	})
	bFault.Restore()

	waitFor(t, "batching member applies the event", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "batched"
	})
	waitFor(t, "event resolves", func() bool { return h.srv.Stats().PendingEvents == 0 })
	waitFor(t, "group unlocked", func() bool {
		return !disabled(t, b, "/note") && !disabled(t, c, "/note")
	})

	sawBatch := false
	for _, raw := range bSnoop.rawFrameTypes(t) {
		if wire.Type(raw&^0xc000) == wire.TBatch {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Error("batch-aware member never received a Batch frame")
	}
	for _, raw := range cSnoop.rawFrameTypes(t) {
		if wire.Type(raw&^0xc000) == wire.TBatch {
			t.Fatalf("legacy member received a Batch frame (raw type %#x)", raw)
		}
		if raw&0x4000 != 0 {
			t.Fatalf("frame to legacy member advertises the batch bit (raw type %#x)", raw)
		}
	}
	if st := h.srv.Stats(); st.BatchSize.Count == 0 {
		t.Errorf("server.batch_size recorded no packed frames")
	}

	// The mixed group keeps working both ways after the packed flush.
	dispatch(t, c, "/note", "from-legacy")
	waitFor(t, "legacy-origin event converges", func() bool {
		return attrOf(t, a, "/note", widget.AttrValue).AsString() == "from-legacy" &&
			attrOf(t, b, "/note", widget.AttrValue).AsString() == "from-legacy"
	})
}
