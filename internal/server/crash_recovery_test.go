package server

// Crash-point recovery harness: a scripted session runs against a durable
// server whose event log is armed to "crash" — abandon an I/O operation
// mid-flight and fail every later append — at one exact write or fsync
// boundary. The log directory is then reopened and replayed into a fresh
// server, whose databases must equal those of a shadow server driven live
// with exactly the operations the log managed to make durable. Sweeping the
// crash point across every boundary of the script proves no append site
// acknowledges state the replay cannot rebuild.
//
// The record⇄operation correspondence the harness relies on: every scripted
// operation appends exactly one log record before its acknowledgement (the
// clients do not enable Reconnect, so no token records interleave), and under
// the `always` sync policy each record costs one write plus one fsync
// boundary. A crash at a write boundary loses that record (torn or absent
// tail); a crash at an fsync boundary leaves the record fully written — the
// harness does not model page-cache loss — so the durable prefix is always
// ops[0:R] with R read back by Fsck, never an interior gap.

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	coclient "cosoft/internal/client"
	"cosoft/internal/eventlog"
	"cosoft/internal/hist"
	"cosoft/internal/perm"
	"cosoft/internal/widget"
	"cosoft/internal/wire"

	"cosoft/internal/netsim"
)

// crashShards mirrors the external harness's COSOFT_SHARDS hook so the CI
// sharded soak sweeps the crash points through the multi-loop server too.
var crashShards = func() int {
	n, _ := strconv.Atoi(os.Getenv("COSOFT_SHARDS"))
	return n
}()

// crashRig is an in-package client harness (the white-box twin of the
// server_test harness; a separate type because this file needs Server
// internals for the state digest).
type crashRig struct {
	t   *testing.T
	srv *Server
	wg  sync.WaitGroup
	cl  map[string]*coclient.Client
}

func newCrashRig(t *testing.T, opts Options) *crashRig {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = crashShards
	}
	return &crashRig{t: t, srv: New(opts), cl: make(map[string]*coclient.Client)}
}

func (r *crashRig) dial(name, user string) {
	r.t.Helper()
	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", `textfield x value=""`)
	link := netsim.NewLink(0)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.srv.HandleConn(wire.NewConn(link.B))
	}()
	c, err := coclient.New(link.A, coclient.Options{
		AppType: "app", User: user, Host: "crash", Registry: reg,
		RPCTimeout: 5 * time.Second,
	})
	if err != nil {
		r.t.Fatalf("dial %s: %v", name, err)
	}
	r.cl[name] = c
}

// shutdown closes the server first — its shutdown-provoked drops are not
// logged — and only then the clients, so no Deregister can reach the log and
// the record stream stays exactly the scripted operations.
func (r *crashRig) shutdown() {
	r.srv.Close()
	for _, c := range r.cl {
		c.Close()
	}
	r.wg.Wait()
}

func (r *crashRig) mustOK(err error) {
	r.t.Helper()
	if err != nil {
		r.t.Fatal(err)
	}
}

func (r *crashRig) wait(what string, cond func() bool) {
	r.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	r.t.Fatalf("timed out waiting for %s", what)
}

func (r *crashRig) value(name string) string {
	r.t.Helper()
	w, err := r.cl[name].Registry().Lookup("/x")
	if err != nil {
		r.t.Fatalf("lookup /x at %s: %v", name, err)
	}
	return w.Attr(widget.AttrValue).AsString()
}

// dispatchTo fires a changed event at origin and waits until every member in
// peers mirrors the value — the quiesce point that makes the next operation's
// server-side inputs (fetched states, group membership) deterministic.
func (r *crashRig) dispatchTo(origin, val string, peers ...string) {
	r.t.Helper()
	// The previous event's SetLocks re-enable notification is asynchronous;
	// dispatching from a still-disabled widget would fail locally.
	r.wait(origin+" re-enabled", func() bool {
		w, err := r.cl[origin].Registry().Lookup("/x")
		return err == nil && !w.Disabled()
	})
	r.mustOK(r.cl[origin].DispatchChecked(&widget.Event{
		Path: "/x", Name: widget.EventChanged, Args: []attr.Value{attr.String(val)},
	}))
	for _, p := range peers {
		p := p
		r.wait(p+" mirrors "+val, func() bool { return r.value(p) == val })
	}
}

// crashOps is the scripted session. Each op appends exactly one log record
// (kind in the comment) and leaves the system quiescent, so the durable
// record count R maps back to the op prefix ops[0:R].
func crashOps() []func(r *crashRig) {
	return []func(r *crashRig){
		func(r *crashRig) { r.dial("A", "u1") },                 // Register
		func(r *crashRig) { r.dial("B", "u2") },                 // Register
		func(r *crashRig) { r.mustOK(r.cl["A"].Declare("/x")) }, // Declare
		func(r *crashRig) { r.mustOK(r.cl["B"].Declare("/x")) }, // Declare
		func(r *crashRig) { // Couple
			r.mustOK(r.cl["A"].Couple("/x", r.cl["B"].Ref("/x")))
			r.wait("A coupled", func() bool { return r.cl["A"].Coupled("/x") })
			r.wait("B coupled", func() bool { return r.cl["B"].Coupled("/x") })
		},
		func(r *crashRig) { r.dispatchTo("A", "one", "B") }, // Event
		func(r *crashRig) { r.dispatchTo("B", "two", "A") }, // Event
		func(r *crashRig) { // Hist (CopyTo backs up B's state)
			r.mustOK(r.cl["A"].CopyTo("/x", r.cl["B"].Ref("/x"), false))
		},
		func(r *crashRig) { r.mustOK(r.cl["B"].Undo("/x")) },    // Undo
		func(r *crashRig) { r.mustOK(r.cl["B"].Redo("/x")) },    // Redo
		func(r *crashRig) { r.dial("C", "u3") },                 // Register
		func(r *crashRig) { r.mustOK(r.cl["C"].Declare("/x")) }, // Declare
		func(r *crashRig) { // Couple (second group merge; migrates when sharded)
			r.mustOK(r.cl["C"].Couple("/x", r.cl["A"].Ref("/x")))
			r.wait("C sees group of 3", func() bool { return len(r.cl["C"].CO("/x")) == 2 })
		},
		func(r *crashRig) { r.dispatchTo("C", "three", "A", "B") }, // Event
		func(r *crashRig) { // Decouple
			r.mustOK(r.cl["A"].Decouple("/x", r.cl["B"].Ref("/x")))
		},
		func(r *crashRig) { // Perm
			r.mustOK(r.cl["A"].GrantPerm("u3", "*", uint8(perm.RightControl)))
		},
		func(r *crashRig) { // Retract (Destroy auto-retracts)
			r.mustOK(r.cl["C"].Registry().Destroy("/x"))
		},
	}
}

// renderGlobalState writes the digest lines for the global databases:
// registration records with declared objects, couple links, permission
// rules. It reads the databases directly — crashDigest posts it onto the
// live global loop; foldDigest (snapshot_recovery_test.go) calls it on
// loop-less fold replicas.
func renderGlobalState(b *strings.Builder, s *Server) {
	ids := s.reg.Instances()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		rec, err := s.reg.Lookup(id)
		if err != nil {
			continue
		}
		paths := make([]string, 0, len(rec.Objects))
		for p := range rec.Objects {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		fmt.Fprintf(b, "inst %s type=%s host=%s user=%s objs=[", rec.ID, rec.AppType, rec.Host, rec.User)
		for _, p := range paths {
			fmt.Fprintf(b, " %s:%s", p, rec.Objects[p])
		}
		fmt.Fprint(b, " ]\n")
	}
	for _, l := range s.graph.Links() {
		fmt.Fprintf(b, "link %s by %s\n", l, l.Creator)
	}
	for _, rule := range s.perms.Rules() {
		fmt.Fprintf(b, "perm %s\n", rule)
	}
}

// renderShardState writes the digest lines for one shard: its event-ID
// sequence and history stacks.
func renderShardState(b *strings.Builder, i int, sh *shard) {
	fmt.Fprintf(b, "shard %d seq=%d\n", i, sh.seq)
	for _, ref := range sh.history.Refs() {
		undo, redo := sh.history.Stacks(ref)
		fmt.Fprintf(b, "hist %s undo=%s redo=%s\n", ref, renderHistStack(undo), renderHistStack(redo))
	}
}

func renderHistStack(list []hist.Snapshot) string {
	var sb strings.Builder
	for _, sn := range list {
		fmt.Fprintf(&sb, "{%s|%v|%s}", sn.Ref, sn.State, sn.Origin) // At excluded: wall clock
	}
	return sb.String()
}

// crashDigest renders the replayable server databases — registration records
// with declared objects, couple links, permission rules, per-shard event
// sequences and history stacks — into a canonical string. Everything
// excluded is deliberately not replayed: lock tables and pending events
// (transient floor control), session tokens (random per run), connection
// state, timestamps.
func crashDigest(s *Server) string {
	var b strings.Builder
	done := make(chan struct{})
	s.post(func() {
		defer close(done)
		renderGlobalState(&b, s)
	})
	<-done
	for i, sh := range s.shards {
		i, sh := i, sh
		done := make(chan struct{})
		s.postShard(sh, func() {
			defer close(done)
			renderShardState(&b, i, sh)
		})
		<-done
	}
	return b.String()
}

// TestCrashPointRecovery sweeps the crash point across every write and fsync
// boundary the scripted session generates. For each boundary: run the script
// (the server keeps serving after the log dies — durability degrades, live
// consistency does not), reopen the log directory (truncating any torn
// tail), replay it into a fresh server, and require its digest to equal a
// shadow server driven live with exactly the durable op prefix.
func TestCrashPointRecovery(t *testing.T) {
	ops := crashOps()
	for op := 1; ; op++ {
		// Alternate a clean abandon (nothing reaches the file) with a torn
		// partial write, so both tail signatures are recovered from.
		partial := 0
		if op%2 == 0 {
			partial = 5
		}
		dir := t.TempDir()
		elog, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		elog.CrashPoint(op, partial)

		rig := newCrashRig(t, Options{EventLog: elog})
		for _, run := range ops {
			run(rig)
		}
		rig.shutdown()
		fired := elog.CrashFired()
		if err := elog.Close(); err != nil && !fired {
			t.Fatalf("boundary %d: close: %v", op, err)
		}

		rep, err := eventlog.Fsck(dir)
		if err != nil {
			t.Fatalf("boundary %d: fsck: %v", op, err)
		}
		if rep.Records > len(ops) {
			t.Fatalf("boundary %d: %d durable records for %d ops", op, rep.Records, len(ops))
		}
		if !fired && rep.Records != len(ops) {
			t.Fatalf("no crash, yet %d records for %d ops — an op logged more or less than one record", rep.Records, len(ops))
		}

		// Replay into a fresh server.
		elog2, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways})
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", op, err)
		}
		recovered := newCrashRig(t, Options{EventLog: elog2})
		got := crashDigest(recovered.srv)
		recovered.shutdown()
		if err := elog2.Close(); err != nil {
			t.Fatalf("boundary %d: close reopened: %v", op, err)
		}

		// Shadow: a plain in-memory server driven with the durable prefix.
		shadow := newCrashRig(t, Options{})
		for _, run := range ops[:rep.Records] {
			run(shadow)
		}
		want := crashDigest(shadow.srv)
		shadow.shutdown()

		if got != want {
			t.Fatalf("boundary %d (partial=%d, fired=%v, durable=%d/%d):\nreplayed state:\n%s\nshadow state:\n%s",
				op, partial, fired, rep.Records, len(ops), got, want)
		}
		if !fired {
			t.Logf("swept %d crash boundaries (%d ops, %d records)", op-1, len(ops), rep.Records)
			return
		}
	}
}
