package server_test

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/faultnet"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// Chaos tests drive the fault-tolerance layer with injected network
// failures. They are named TestChaos* so CI can soak them repeatedly
// (go test -race -run Chaos -count=3). All assertions are on convergence
// (state, counters), never on elapsed wall time.

// dialChaos is harness.dial with the server side of the connection wrapped
// in a fault injector, so tests can hang, partition or degrade the link the
// server sees. A hung server-side write models a peer whose TCP receive
// window is closed — the classic wedged-client scenario.
func (h *harness) dialChaos(appType, user, spec string, copts client.Options, sched faultnet.Schedule) (*client.Client, *faultnet.Conn) {
	h.t.Helper()
	reg := widget.NewRegistry()
	if spec != "" {
		widget.MustBuild(reg, "/", spec)
	}
	link := netsim.NewLink(0)
	fc := faultnet.Wrap(link.B, sched)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(fc))
	}()
	copts.AppType = appType
	copts.User = user
	copts.Host = "testhost"
	copts.Registry = reg
	if copts.RPCTimeout == 0 {
		copts.RPCTimeout = 5 * time.Second
	}
	if envBatchLimit > 0 {
		copts.Batching = true
	}
	c, err := client.New(link.A, copts)
	if err != nil {
		h.t.Fatalf("dial %s: %v", appType, err)
	}
	h.t.Cleanup(c.Close)
	// Runs before c.Close (LIFO): a still-faulty connection must not stall
	// the orderly Deregister wait.
	h.t.Cleanup(func() { fc.Close() })
	return c, fc
}

func dispatch(t *testing.T, c *client.Client, path, value string) {
	t.Helper()
	mustOK(t, c.Registry().Dispatch(&widget.Event{
		Path: path, Name: widget.EventChanged, Args: []attr.Value{attr.String(value)},
	}))
}

func disabled(t *testing.T, c *client.Client, path string) bool {
	t.Helper()
	w, err := c.Registry().Lookup(path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	return w.Disabled()
}

// TestChaosHungMemberMidEvent wedges one member of a three-way coupling
// group mid-event: the event deadline must fire, drop the straggler from
// the wait set, unlock the group and re-enable the survivors — and after
// the member recovers, coupling must work again.
func TestChaosHungMemberMidEvent(t *testing.T) {
	h := newHarness(t, server.Options{EventDeadline: 150 * time.Millisecond})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})
	b := h.dial("editor", "bob", spec, client.Options{})
	c, fc := h.dialChaos("editor", "carol", spec, client.Options{}, faultnet.Schedule{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, c.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	mustOK(t, a.Couple("/note", c.Ref("/note")))
	waitFor(t, "group mirrored", func() bool {
		return a.Coupled("/note") && b.Coupled("/note") && c.Coupled("/note")
	})

	fc.Hang() // carol's connection wedges: Exec undeliverable, no ack coming

	dispatch(t, a, "/note", "v1")
	waitFor(t, "value at B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v1"
	})
	waitFor(t, "event deadline resolves the wedged event", func() bool {
		st := h.srv.Stats()
		return st.EventTimeouts >= 1 && st.PendingEvents == 0
	})
	waitFor(t, "survivor re-enabled", func() bool { return !disabled(t, b, "/note") })

	// The group lock must be free again: a second event goes through.
	fc.Restore()
	dispatch(t, a, "/note", "v2")
	waitFor(t, "second event reaches B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v2"
	})
	waitFor(t, "recovered member catches up", func() bool {
		return attrOf(t, c, "/note", widget.AttrValue).AsString() == "v2"
	})
}

// TestChaosMidEventDisconnectUnwedgesGroup kills a member that received an
// Exec and never acknowledged it (no event deadline configured): the
// disconnect alone must resolve the pending event, release the group lock,
// re-enable the surviving members and leak nothing.
func TestChaosMidEventDisconnectUnwedgesGroup(t *testing.T) {
	h := newHarness(t, server.Options{})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})
	b := h.dial("editor", "bob", spec, client.Options{})

	// A raw wire-level member that declares an object and then ignores every
	// Exec: a client whose process stopped making progress but whose
	// connection is still up.
	link := netsim.NewLink(0)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(link.B))
	}()
	rc := wire.NewConn(link.A)
	t.Cleanup(func() { rc.Close() })
	if err := rc.Write(wire.Envelope{Seq: 1, Msg: wire.Register{AppType: "zombie", Host: "h", User: "mallory"}}); err != nil {
		t.Fatalf("register: %v", err)
	}
	env, err := rc.Read()
	if err != nil {
		t.Fatalf("registered reply: %v", err)
	}
	fakeID := env.Msg.(wire.Registered).ID
	if err := rc.Write(wire.Envelope{Seq: 2, Msg: wire.Declare{Path: "/note", Class: "textfield"}}); err != nil {
		t.Fatalf("declare: %v", err)
	}
	gotExec := make(chan struct{}, 8)
	go func() {
		// Swallow everything; never acknowledge.
		for {
			env, err := rc.Read()
			if err != nil {
				return
			}
			if _, ok := env.Msg.(wire.Exec); ok {
				gotExec <- struct{}{}
			}
		}
	}()

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	mustOK(t, a.Couple("/note", couple.ObjectRef{Instance: fakeID, Path: "/note"}))
	waitFor(t, "group mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	dispatch(t, a, "/note", "v1")
	<-gotExec // the zombie received the Exec and sits on it
	waitFor(t, "event pending on the zombie", func() bool {
		return h.srv.Stats().PendingEvents == 1
	})
	waitFor(t, "survivor locked while pending", func() bool { return disabled(t, b, "/note") })

	rc.Close() // the zombie dies mid-event

	waitFor(t, "pending event resolved by disconnect", func() bool {
		st := h.srv.Stats()
		return st.PendingEvents == 0 && st.Instances == 2
	})
	waitFor(t, "survivor re-enabled", func() bool { return !disabled(t, b, "/note") })
	waitFor(t, "value at B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v1"
	})

	// The surviving pair keeps cooperating.
	dispatch(t, a, "/note", "v2")
	waitFor(t, "second event reaches B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v2"
	})
}

// TestChaosSlowClientEvicted stops a client's connection from draining and
// floods it: once its outbox backlog stays over the configured limit for
// longer than the grace period, the server must evict it instead of
// buffering forever.
func TestChaosSlowClientEvicted(t *testing.T) {
	h := newHarness(t, server.Options{
		OutboxLimit: 8,
		OutboxGrace: 60 * time.Millisecond,
	})
	a := h.dial("editor", "alice", `textfield note value=""`, client.Options{})
	_, fc := h.dialChaos("viewer", "bob", `textfield note value=""`, client.Options{}, faultnet.Schedule{})

	fc.Hang() // bob's receive window closes for good

	// Commands broadcast without group locking, so the flood is not
	// serialized by event acknowledgements.
	for i := 0; i < 30; i++ {
		mustOK(t, a.SendCommand("noop", nil))
	}
	waitFor(t, "slow client evicted", func() bool {
		st := h.srv.Stats()
		return st.Evictions >= 1 && st.Instances == 1
	})
}

// TestChaosPartitionedMemberDeclaredDead black-holes a member (its packets
// die silently in both directions) mid-event: the liveness sweep must
// declare it dead, release its locks, resolve the pending event and notify
// the survivors of the lost coupling.
func TestChaosPartitionedMemberDeclaredDead(t *testing.T) {
	h := newHarness(t, server.Options{Heartbeat: 20 * time.Millisecond})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})
	b, fc := h.dialChaos("editor", "bob", spec, client.Options{}, faultnet.Schedule{})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	fc.Blackhole()

	// The Exec to the partitioned member dies on the wire; only the liveness
	// timeout can resolve the event.
	dispatch(t, a, "/note", "v1")
	waitFor(t, "partitioned member declared dead", func() bool {
		st := h.srv.Stats()
		return st.LivenessTimeouts >= 1 && st.Instances == 1 && st.PendingEvents == 0
	})
	waitFor(t, "survivor decoupled", func() bool { return !a.Coupled("/note") })
	waitFor(t, "survivor re-enabled", func() bool { return !disabled(t, a, "/note") })

	// The survivor's object now behaves like any uncoupled widget.
	dispatch(t, a, "/note", "v2")
	if got := attrOf(t, a, "/note", widget.AttrValue).AsString(); got != "v2" {
		t.Errorf("survivor value = %q, want v2", got)
	}
}

// TestChaosReconnectResync kills a client's connection and lets the
// reconnect supervisor resume the session: same instance ID, re-declared
// objects, re-created couple links, and state pulled from the surviving
// peer so changes made while the client was gone converge.
func TestChaosReconnectResync(t *testing.T) {
	h := newHarness(t, server.Options{})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})

	var resyncs atomic.Int32
	copts := client.Options{
		Reconnect: &client.ReconnectOptions{
			Dial: func() (net.Conn, error) {
				link := netsim.NewLink(0)
				h.wg.Add(1)
				go func() {
					defer h.wg.Done()
					h.srv.HandleConn(wire.NewConn(link.B))
				}()
				return link.A, nil
			},
			BaseDelay: 5 * time.Millisecond,
			Seed:      7,
			OnResync: func(err error) {
				if err == nil {
					resyncs.Add(1)
				}
			},
		},
	}
	b, fc := h.dialChaos("editor", "bob", spec, copts, faultnet.Schedule{})
	bID := b.ID()

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, b.Couple("/note", a.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })
	dispatch(t, a, "/note", "v1")
	waitFor(t, "value at B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v1"
	})

	fc.Close() // bob's connection dies

	// Alice keeps editing; bob misses this change and must pull it on
	// resync (or receive it as a normal broadcast if the resume won the
	// race — both paths converge).
	dispatch(t, a, "/note", "v2")

	waitFor(t, "resync completed", func() bool { return resyncs.Load() >= 1 })
	if got := b.ID(); got != bID {
		t.Errorf("instance ID changed across reconnect: %s -> %s", bID, got)
	}
	waitFor(t, "missed change converged at B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v2"
	})
	waitFor(t, "coupling restored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	// Live coupling works again after the resume.
	dispatch(t, a, "/note", "v3")
	waitFor(t, "post-resync event reaches B", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v3"
	})
	if st := h.srv.Stats(); st.Resumes < 1 {
		t.Errorf("Resumes = %d, want >= 1", st.Resumes)
	}
}

// TestChaosDuplicatedFramesConverge delivers every server-to-client frame
// twice on both members: duplicated Execs, EventResults, SetLocks and link
// notifications must leave the group consistent and fully unlocked.
func TestChaosDuplicatedFramesConverge(t *testing.T) {
	dup := faultnet.Schedule{Seed: 11, DupProb: 1}
	h := newHarness(t, server.Options{})
	spec := `textfield note value=""`
	a, _ := h.dialChaos("editor", "alice", spec, client.Options{}, dup)
	b, _ := h.dialChaos("editor", "bob", spec, client.Options{}, dup)

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	dispatch(t, a, "/note", "v1")
	waitFor(t, "value at B despite duplication", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v1"
	})
	waitFor(t, "no pending events", func() bool { return h.srv.Stats().PendingEvents == 0 })
	waitFor(t, "group unlocked", func() bool { return !disabled(t, b, "/note") })

	dispatch(t, b, "/note", "v2")
	waitFor(t, "reverse event converges", func() bool {
		return attrOf(t, a, "/note", widget.AttrValue).AsString() == "v2"
	})
}

// TestChaosPanickingCallbacksContained exercises the panic-recovery guards
// (S1): a panicking remote-event callback must not kill the client, must
// not wedge the group (the ExecAck still goes out), and a panicking command
// handler must leave later commands deliverable.
func TestChaosPanickingCallbacksContained(t *testing.T) {
	h := newHarness(t, server.Options{})
	spec := `textfield note value=""`
	a := h.dial("editor", "alice", spec, client.Options{})

	var events atomic.Int32
	bopts := client.Options{
		OnRemoteEvent: func(e *widget.Event) {
			events.Add(1)
			panic("remote event callback exploded")
		},
	}
	b := h.dial("editor", "bob", spec, bopts)

	var commands atomic.Int32
	b.OnCommand("boom", func(from couple.InstanceID, payload []byte) {
		commands.Add(1)
		panic("command handler exploded")
	})

	mustOK(t, a.Declare("/note"))
	mustOK(t, b.Declare("/note"))
	mustOK(t, a.Couple("/note", b.Ref("/note")))
	waitFor(t, "coupling mirrored", func() bool { return a.Coupled("/note") && b.Coupled("/note") })

	dispatch(t, a, "/note", "v1")
	waitFor(t, "event applied despite panicking callback", func() bool {
		return events.Load() >= 1 &&
			attrOf(t, b, "/note", widget.AttrValue).AsString() == "v1"
	})
	// The ack must have gone out even though the callback panicked.
	waitFor(t, "event acknowledged", func() bool { return h.srv.Stats().PendingEvents == 0 })
	waitFor(t, "group unlocked", func() bool { return !disabled(t, b, "/note") })

	mustOK(t, a.SendCommand("boom", []byte("x")))
	waitFor(t, "panicking command handler ran", func() bool { return commands.Load() >= 1 })

	// The client survived both panics: it still answers RPCs and commands.
	mustOK(t, a.SendCommand("boom", []byte("y")))
	waitFor(t, "second command delivered", func() bool { return commands.Load() >= 2 })
	dispatch(t, a, "/note", "v2")
	waitFor(t, "later events still propagate", func() bool {
		return attrOf(t, b, "/note", widget.AttrValue).AsString() == "v2"
	})
	if _, err := b.Instances(); err != nil {
		t.Errorf("Instances after panics: %v", err)
	}
}

// TestChaosSlowDispatchDoesNotBlockReplies is the regression test for the
// read-loop backpressure hazard (S2): with the dispatch consumer stuck in
// an application handler and hundreds of messages queued behind it, the
// read loop must keep draining the connection and routing RPC replies —
// under the old bounded inbox the 257th push wedged the read loop and
// every outstanding call timed out.
func TestChaosSlowDispatchDoesNotBlockReplies(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := h.dial("editor", "alice", "", client.Options{})
	b := h.dial("editor", "bob", "", client.Options{RPCTimeout: 2 * time.Second})

	release := make(chan struct{})
	var delivered atomic.Int32
	b.OnCommand("flood", func(from couple.InstanceID, payload []byte) {
		delivered.Add(1)
		<-release // the first delivery wedges the dispatch consumer
	})

	// Far more traffic than the old 256-slot inbox could absorb.
	const floodN = 300
	for i := 0; i < floodN; i++ {
		mustOK(t, a.SendCommand("flood", nil))
	}
	waitFor(t, "dispatch consumer wedged", func() bool { return delivered.Load() >= 1 })

	// The reply to this call arrives on the same connection behind ~299
	// queued commands; it must be routed without waiting for the handler.
	if _, err := b.Instances(); err != nil {
		t.Fatalf("Instances while dispatch is wedged: %v", err)
	}

	close(release)
	waitFor(t, "flood fully delivered", func() bool { return delivered.Load() == floodN })
}
