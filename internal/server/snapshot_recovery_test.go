package server

// Snapshot equivalence harness. Three angles on the same invariant — a
// snapshot at offset N is *defined* as fold(records[0:N)), so snapshotting
// must never change what a restart reconstructs:
//
//   - a testing/quick property at the fold level: for a generated record
//     script and an arbitrary cut point, (snapshot at the cut + tail replay)
//     rebuilds byte-for-byte the state of a full replay from zero;
//   - a crash-point sweep over every snapshot-write, snapshot-rename and
//     segment-delete boundary of a live server's snapshot+compaction cycle,
//     requiring the replayed digest to ALWAYS equal the full-script shadow
//     (snapshots sit beside the log; crashing one may only lose the
//     shortcut, never an acked record);
//   - a restart-equivalence check, sharded and unsharded, that a
//     post-snapshot restart replays zero log records yet lands on the same
//     digest as a live server driven with the whole script.

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// foldDigest renders a fold replica's state directly (fold servers run no
// loops, so the posting crashDigest would hang) and widens the crash digest
// with every other input the snapshot codec must preserve: the registry ID
// sequence, resumable sessions, route overrides and late-join event tails.
func foldDigest(s *Server) string {
	var b strings.Builder
	fmt.Fprintf(&b, "regseq %d\n", s.reg.Seq())
	renderGlobalState(&b, s)
	toks := make([]string, 0, len(s.sessions))
	for tok := range s.sessions {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		rec := s.sessions[tok]
		fmt.Fprintf(&b, "session %s id=%s type=%s host=%s user=%s\n",
			tok, rec.id, rec.appType, rec.host, rec.user)
	}
	if s.router != nil {
		s.router.mu.RLock()
		routes := make([]snapRoute, 0, len(s.router.obj))
		for ref, idx := range s.router.obj {
			routes = append(routes, snapRoute{ref: ref, shard: idx})
		}
		s.router.mu.RUnlock()
		sort.Slice(routes, func(i, j int) bool { return routes[i].ref.Less(routes[j].ref) })
		for _, rt := range routes {
			fmt.Fprintf(&b, "route %s -> %d\n", rt.ref, rt.shard)
		}
	}
	for i, sh := range s.shards {
		renderShardState(&b, i, sh)
		trefs := make([]couple.ObjectRef, 0, len(sh.tails))
		for ref := range sh.tails {
			trefs = append(trefs, ref)
		}
		sort.Slice(trefs, func(a, c int) bool { return trefs[a].Less(trefs[c]) })
		for _, ref := range trefs {
			fmt.Fprintf(&b, "tail %s [", ref)
			for _, te := range sh.tails[ref] {
				fmt.Fprintf(&b, " %x", wire.AppendEnvelope(nil, wire.Envelope{Msg: te.exec}))
			}
			fmt.Fprint(&b, " ]\n")
		}
	}
	return b.String()
}

// genRecords derives a deterministic record script from rng: a weighted walk
// over every replayable record kind, tracking registered instances and
// declared refs so most records are valid while some deliberately dangle
// (reference disconnected instances, undo empty stacks, couple a ref to
// itself) — replay must skip those identically on both sides of the cut.
func genRecords(rng *rand.Rand) []eventlog.Record {
	var (
		recs    []eventlog.Record
		insts   []couple.InstanceID
		refs    []couple.ObjectRef
		tokens  []string
		seq     int
		eventID uint64
	)
	paths := []string{"/a", "/b", "/c"}
	pickInst := func() couple.InstanceID { return insts[rng.Intn(len(insts))] }
	pickRef := func() couple.ObjectRef { return refs[rng.Intn(len(refs))] }
	state := func() widget.TreeState {
		return widget.TreeState{Class: "textfield", Name: "x",
			Attrs: attr.Set{widget.AttrValue: attr.String(fmt.Sprintf("v%d", rng.Intn(100)))}}
	}
	rec := func(kind eventlog.Kind, origin couple.InstanceID, msg wire.Message) {
		recs = append(recs, eventlog.Record{
			Kind: kind, Origin: string(origin), Env: wire.Envelope{Msg: msg},
		})
	}
	n := 20 + rng.Intn(60)
	for len(recs) < n {
		switch k := rng.Intn(20); {
		case k < 3 || len(insts) == 0:
			seq++
			id := couple.InstanceID(fmt.Sprintf("app-%d", seq))
			insts = append(insts, id)
			rec(eventlog.KindRegister, id,
				wire.Register{AppType: "app", Host: "h", User: fmt.Sprintf("u%d", seq%3)})
		case k < 6 || len(refs) == 0:
			id := pickInst()
			p := paths[rng.Intn(len(paths))]
			refs = append(refs, couple.ObjectRef{Instance: id, Path: p})
			rec(eventlog.KindDeclare, id, wire.Declare{Path: p, Class: "textfield"})
		case k < 9:
			a, c := pickRef(), pickRef()
			rec(eventlog.KindCouple, a.Instance, wire.Couple{From: a, To: c})
		case k < 10:
			a, c := pickRef(), pickRef()
			rec(eventlog.KindDecouple, a.Instance, wire.Decouple{From: a, To: c})
		case k < 14:
			eventID++
			ref := pickRef()
			rec(eventlog.KindEvent, ref.Instance, wire.Exec{
				EventID: eventID, TargetPath: ref.Path, Name: "changed",
				Args:   []attr.Value{attr.String(fmt.Sprintf("e%d", eventID))},
				Origin: ref,
			})
		case k < 16:
			ref := pickRef()
			rec(eventlog.KindHist, ref.Instance, wire.CopyTo{To: ref, State: state()})
		case k < 17:
			kind := eventlog.KindUndo
			if rng.Intn(2) == 0 {
				kind = eventlog.KindRedo
			}
			ref := pickRef()
			rec(kind, ref.Instance, wire.CopyTo{To: ref, State: state()})
		case k < 18:
			user := fmt.Sprintf("u%d", rng.Intn(3))
			if rng.Intn(3) == 0 {
				rec(eventlog.KindPerm, "", wire.RevokePerm{User: user, State: "*", Right: 1})
			} else {
				rec(eventlog.KindPerm, "", wire.GrantPerm{User: user, State: "*", Right: uint8(1 + rng.Intn(3))})
			}
		case k < 19:
			if len(tokens) > 0 && rng.Intn(2) == 0 {
				rec(eventlog.KindResume, "", wire.Resume{Token: tokens[rng.Intn(len(tokens))]})
			} else {
				tok := fmt.Sprintf("tok-%d", len(tokens)+1)
				tokens = append(tokens, tok)
				rec(eventlog.KindToken, pickInst(), wire.SessionToken{Token: tok})
			}
		default:
			switch rng.Intn(3) {
			case 0:
				ref := pickRef()
				rec(eventlog.KindRetract, ref.Instance, wire.Retract{Path: ref.Path})
			case 1:
				rec(eventlog.KindTokenDrop, pickInst(), nil)
			default:
				rec(eventlog.KindDisconnect, pickInst(), nil)
			}
		}
	}
	return recs
}

// TestSnapshotCutEquivalence is the quick property: for any generated record
// script and any cut point, folding the prefix, round-tripping it through
// the snapshot codec, and replaying the tail yields exactly the state of a
// full replay from zero — same digest, same canonical encoding bytes.
func TestSnapshotCutEquivalence(t *testing.T) {
	for _, shards := range []int{1, 3} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			prop := func(seed int64, rawCut uint16) bool {
				rng := rand.New(rand.NewSource(seed))
				recs := genRecords(rng)
				cut := int(rawCut) % (len(recs) + 1)
				opts := Options{Shards: shards, ReplayTail: true}

				full := newFoldServer(opts)
				for _, r := range recs {
					full.replayRecord(r)
				}

				base := newFoldServer(opts)
				for _, r := range recs[:cut] {
					base.replayRecord(r)
				}
				st, err := decodeState(base.encodeState())
				if err != nil {
					t.Logf("seed %d cut %d/%d: decode: %v", seed, cut, len(recs), err)
					return false
				}
				restored := newFoldServer(opts)
				restored.installState(st)
				for _, r := range recs[cut:] {
					restored.replayRecord(r)
				}

				if got, want := foldDigest(restored), foldDigest(full); got != want {
					t.Logf("seed %d cut %d/%d:\nsnapshot+tail:\n%s\nfull replay:\n%s",
						seed, cut, len(recs), got, want)
					return false
				}
				if !bytes.Equal(restored.encodeState(), full.encodeState()) {
					t.Logf("seed %d cut %d/%d: digests match but canonical encodings differ", seed, cut, len(recs))
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotCrashPointRecovery sweeps a crash across every snapshot-write,
// snapshot-rename, segment-delete and directory-sync boundary of a live
// server's forced snapshot+compaction cycle. The scripted session has fully
// acked before the cycle starts, so whatever boundary dies, the reopened
// directory must never be corrupt and must replay to the full script's
// state: a crashed snapshot may lose the replay shortcut, never a record.
func TestSnapshotCrashPointRecovery(t *testing.T) {
	ops := crashOps()
	for op := 1; ; op++ {
		partial := 0
		if op%2 == 0 {
			partial = 5
		}
		dir := t.TempDir()
		// Small segments so the post-snapshot compaction has several
		// segment-delete boundaries to die at.
		elog, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways, SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}

		rig := newCrashRig(t, Options{EventLog: elog})
		for _, run := range ops {
			run(rig)
		}
		elog.SnapCrashPoint(op, partial)
		snapErr := rig.srv.Snapshot()
		rig.shutdown()
		fired := elog.SnapCrashFired()
		if err := elog.Close(); err != nil && !fired {
			t.Fatalf("boundary %d: close: %v", op, err)
		}
		if !fired && snapErr != nil {
			t.Fatalf("boundary %d: snapshot failed without a crash: %v", op, snapErr)
		}

		rep, err := eventlog.Fsck(dir)
		if err != nil {
			t.Fatalf("boundary %d: fsck: %v", op, err)
		}
		if rep.Corrupt {
			t.Fatalf("boundary %d (partial=%d): directory corrupt after snapshot crash: %s", op, partial, rep.Detail)
		}

		elog2, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways, SegmentBytes: 256})
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", op, err)
		}
		recovered := newCrashRig(t, Options{EventLog: elog2})
		got := crashDigest(recovered.srv)
		recovered.shutdown()
		if err := elog2.Close(); err != nil {
			t.Fatalf("boundary %d: close reopened: %v", op, err)
		}

		shadow := newCrashRig(t, Options{})
		for _, run := range ops {
			run(shadow)
		}
		want := crashDigest(shadow.srv)
		shadow.shutdown()

		if got != want {
			t.Fatalf("boundary %d (partial=%d, fired=%v, snapshots=%d, segments=%d):\nreplayed state:\n%s\nshadow state:\n%s",
				op, partial, fired, rep.Snapshots, rep.Segments, got, want)
		}
		if !fired {
			t.Logf("swept %d snapshot crash boundaries (%d snapshots, %d segments survive a clean cycle)",
				op-1, rep.Snapshots, rep.Segments)
			return
		}
	}
}

// TestSnapshotRestartEquivalence restarts a snapshotted server, sharded and
// unsharded, and requires the replay to start from the snapshot — zero log
// records read — while landing on exactly the digest of a live server
// driven with the whole script.
func TestSnapshotRestartEquivalence(t *testing.T) {
	ops := crashOps()
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			elog, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			rig := newCrashRig(t, Options{EventLog: elog, Shards: shards})
			for _, run := range ops {
				run(rig)
			}
			rig.mustOK(rig.srv.Snapshot())
			rig.shutdown()
			if err := elog.Close(); err != nil {
				t.Fatal(err)
			}

			reg := obs.NewRegistry()
			elog2, err := eventlog.Open(eventlog.Options{Dir: dir, Sync: eventlog.SyncAlways, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			recovered := newCrashRig(t, Options{EventLog: elog2, Shards: shards})
			got := crashDigest(recovered.srv)
			recovered.shutdown()
			if err := elog2.Close(); err != nil {
				t.Fatal(err)
			}

			counters := reg.Snapshot().Counters
			if n := counters["server.log.replay_from_snapshot"]; n < 1 {
				t.Fatalf("restart did not replay from the snapshot (replay_from_snapshot=%d)", n)
			}
			if n := counters["server.log.replayed"]; n != 0 {
				t.Fatalf("snapshot restart replayed %d log records; want 0 (snapshot covers the whole log)", n)
			}

			shadow := newCrashRig(t, Options{Shards: shards})
			for _, run := range ops {
				run(shadow)
			}
			want := crashDigest(shadow.srv)
			shadow.shutdown()

			if got != want {
				t.Fatalf("snapshot restart diverged:\nreplayed state:\n%s\nshadow state:\n%s", got, want)
			}
		})
	}
}
