// State snapshots: periodic durable captures of the full replayable server
// state, so restart replay begins at the snapshot's log offset instead of
// zero and the eventlog compactor can delete everything older.
//
// Consistency without stalls: instead of freezing the live loops to copy
// their state, the snapshot goroutine maintains an offline *fold replica* —
// a second Server built by the same constructor, never started, advanced
// only by replaying the durable log's records through the very replayRecord
// used at startup. A snapshot at offset N is therefore *defined* as
// fold(records[0:N)) — exactly what a restarting server computes — so
// snapshot-then-tail-replay equals full replay by construction, and the live
// shard loops never block on snapshot work.
//
// The snapshot payload (opaque bytes to the eventlog) carries, in order: the
// format version, the shard count, the registry ID-allocator sequence, the
// per-shard event-ID sequences, the registration records with their declared
// objects, the couple links, the permission rules (insertion order — rule
// order is semantic), the resumable sessions, the router's explicit route
// overrides (they persist past decouple and are not derivable from the
// graph), the per-object undo/redo history stacks, and the bounded per-object
// late-join event tails.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/eventlog"
	"cosoft/internal/hist"
	"cosoft/internal/obs"
	"cosoft/internal/perm"
	"cosoft/internal/registry"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

// stateVersion versions the snapshot payload layout.
const stateVersion = 1

// newFoldServer builds the offline replica the snapshotter folds log records
// into: same databases, same shard count, no goroutines, no measurement.
func newFoldServer(opts Options) *Server {
	opts.EventLog = nil
	opts.Metrics = obs.Disabled
	opts.Tracer = nil
	opts.Flight = nil
	if opts.Logger != nil {
		opts.Logger = opts.Logger.With("replica", "fold")
	}
	opts.Logf = nil
	opts.foldReplica = true
	return newServer(opts)
}

// snapshotter owns the fold replica and the snapshot/compaction cycle. All
// methods serialize on mu, so the periodic loop and a forced Snapshot never
// interleave.
type snapshotter struct {
	s    *Server
	mu   sync.Mutex
	fold *Server
	// off is the log byte offset the fold replica has consumed.
	off int64
	// lastSnapOff is the offset of the newest snapshot written (or seeded
	// from at construction); the SnapshotBytes trigger measures against it.
	lastSnapOff int64
}

// newSnapshotter builds the fold replica, seeding it from the newest
// decodable snapshot exactly as replayLog seeds the live server.
func newSnapshotter(s *Server) *snapshotter {
	sn := &snapshotter{s: s, fold: newFoldServer(s.opts)}
	if snaps, err := s.elog.Snapshots(); err == nil {
		for _, ref := range snaps {
			st, derr := decodeState(ref.Payload)
			if derr != nil {
				continue
			}
			sn.fold.installState(st)
			sn.off = ref.Offset
			sn.lastSnapOff = ref.Offset
			break
		}
	}
	return sn
}

// once runs one snapshot cycle: fold the log's new durable records into the
// replica, write a snapshot at the folded offset if the cadence (or force)
// says so, then compact. Reading stops cleanly at a torn or in-flight
// record — the next cycle resumes there.
func (sn *snapshotter) once(force bool) error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	end, err := eventlog.ReplayDirFrom(sn.s.elog.Dir(), sn.off, func(rec eventlog.Record) error {
		sn.fold.replayRecord(rec)
		return nil
	})
	if err != nil {
		return err
	}
	sn.off = end
	if !force {
		if end <= sn.lastSnapOff {
			return nil
		}
		iv, bytes := sn.s.opts.SnapshotInterval, sn.s.opts.SnapshotBytes
		// The loop ticks at SnapshotInterval when one is set, so reaching
		// here with new bytes is itself the time trigger; with only a byte
		// cadence, wait for the volume threshold.
		if iv <= 0 && (bytes <= 0 || end-sn.lastSnapOff < bytes) {
			return nil
		}
	}
	if err := sn.s.elog.WriteSnapshot(end, sn.fold.encodeState()); err != nil {
		return err
	}
	sn.lastSnapOff = end
	_, err = sn.s.elog.Compact()
	return err
}

// snapshotLoop drives the periodic snapshot/compaction cycle.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	period := s.opts.SnapshotInterval
	if period <= 0 {
		// Byte-cadence only: poll the log size briefly.
		period = 100 * time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			err := s.snap.once(false)
			if err != nil && !errors.Is(err, eventlog.ErrClosed) {
				s.slog.Warn("snapshot cycle failed", "err", err)
			}
		case <-s.quit:
			return
		}
	}
}

// Snapshot forces one synchronous snapshot+compaction cycle at the log's
// current durable offset. Errors if the server has no event log.
func (s *Server) Snapshot() error {
	if s.snap == nil {
		return errors.New("server: no event log configured")
	}
	return s.snap.once(true)
}

// snapState is the decoded form of a snapshot payload.
type snapState struct {
	nshards   int
	regSeq    uint64
	shardSeqs []uint64
	insts     []snapInst
	links     []couple.Link
	rules     []perm.Rule
	sessions  []snapSession
	routes    []snapRoute
	hists     []snapHist
	tails     []snapTail
}

type snapInst struct {
	id                  couple.InstanceID
	appType, host, user string
	objs                [][2]string // path, class
}

type snapSession struct {
	token string
	rec   sessionRec
}

type snapRoute struct {
	ref   couple.ObjectRef
	shard int
}

type snapHist struct {
	ref        couple.ObjectRef
	undo, redo []hist.Snapshot
}

type snapTail struct {
	ref   couple.ObjectRef
	execs []wire.Exec
}

// encodeState serializes the server's replayable state. It reads the
// databases directly, so the caller must own them quiescently — it is only
// ever called on the snapshotter's fold replica (never the live server).
func (s *Server) encodeState() []byte {
	buf := []byte{stateVersion}
	buf = binary.AppendUvarint(buf, uint64(len(s.shards)))
	buf = binary.AppendUvarint(buf, s.reg.Seq())
	for _, sh := range s.shards {
		buf = binary.AppendUvarint(buf, sh.seq)
	}

	ids := s.reg.Instances() // sorted
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		r, _ := s.reg.Lookup(id)
		buf = appendSnapStr(buf, string(r.ID))
		buf = appendSnapStr(buf, r.AppType)
		buf = appendSnapStr(buf, r.Host)
		buf = appendSnapStr(buf, r.User)
		paths := make([]string, 0, len(r.Objects))
		for p := range r.Objects {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		buf = binary.AppendUvarint(buf, uint64(len(paths)))
		for _, p := range paths {
			buf = appendSnapStr(buf, p)
			buf = appendSnapStr(buf, r.Objects[p])
		}
	}

	links := s.graph.Links() // sorted
	buf = binary.AppendUvarint(buf, uint64(len(links)))
	for _, l := range links {
		buf = appendSnapRef(buf, l.From)
		buf = appendSnapRef(buf, l.To)
		buf = appendSnapStr(buf, string(l.Creator))
	}

	rules := s.perms.Rules() // insertion order — order is semantic, keep it
	buf = binary.AppendUvarint(buf, uint64(len(rules)))
	for _, r := range rules {
		buf = appendSnapStr(buf, r.User)
		buf = appendSnapStr(buf, r.State)
		buf = binary.AppendUvarint(buf, uint64(r.Right))
	}

	toks := make([]string, 0, len(s.sessions))
	for tok := range s.sessions {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	buf = binary.AppendUvarint(buf, uint64(len(toks)))
	for _, tok := range toks {
		rec := s.sessions[tok]
		buf = appendSnapStr(buf, tok)
		buf = appendSnapStr(buf, string(rec.id))
		buf = appendSnapStr(buf, rec.appType)
		buf = appendSnapStr(buf, rec.host)
		buf = appendSnapStr(buf, rec.user)
	}

	var routes []snapRoute
	if s.router != nil {
		s.router.mu.RLock()
		for ref, idx := range s.router.obj {
			routes = append(routes, snapRoute{ref: ref, shard: idx})
		}
		s.router.mu.RUnlock()
		sort.Slice(routes, func(i, j int) bool { return routes[i].ref.Less(routes[j].ref) })
	}
	buf = binary.AppendUvarint(buf, uint64(len(routes)))
	for _, rt := range routes {
		buf = appendSnapRef(buf, rt.ref)
		buf = binary.AppendUvarint(buf, uint64(rt.shard))
	}

	var hrefs []couple.ObjectRef
	for _, sh := range s.shards {
		hrefs = append(hrefs, sh.history.Refs()...)
	}
	sort.Slice(hrefs, func(i, j int) bool { return hrefs[i].Less(hrefs[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(hrefs)))
	for _, ref := range hrefs {
		undo, redo := s.shardForRef(ref).history.Stacks(ref)
		buf = appendSnapRef(buf, ref)
		buf = appendSnapStack(buf, undo)
		buf = appendSnapStack(buf, redo)
	}

	var trefs []couple.ObjectRef
	for _, sh := range s.shards {
		for ref := range sh.tails {
			trefs = append(trefs, ref)
		}
	}
	sort.Slice(trefs, func(i, j int) bool { return trefs[i].Less(trefs[j]) })
	buf = binary.AppendUvarint(buf, uint64(len(trefs)))
	for _, ref := range trefs {
		tail := s.shardForRef(ref).tails[ref]
		buf = binary.AppendUvarint(buf, uint64(len(tail)))
		buf = appendSnapRef(buf, ref)
		for _, te := range tail {
			env := wire.AppendEnvelope(nil, wire.Envelope{Msg: te.exec})
			buf = appendSnapBytes(buf, env)
		}
	}
	return buf
}

func appendSnapStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendSnapBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendSnapRef(b []byte, ref couple.ObjectRef) []byte {
	b = appendSnapStr(b, string(ref.Instance))
	return appendSnapStr(b, ref.Path)
}

func appendSnapStack(b []byte, snaps []hist.Snapshot) []byte {
	b = binary.AppendUvarint(b, uint64(len(snaps)))
	for _, sn := range snaps {
		b = appendSnapStr(b, string(sn.Origin))
		at := int64(0)
		if !sn.At.IsZero() {
			at = sn.At.UnixNano()
		}
		b = binary.AppendVarint(b, at)
		b = appendSnapBytes(b, widget.AppendTreeState(nil, sn.State))
	}
	return b
}

// stateReader decodes a snapshot payload with sticky error handling.
type stateReader struct {
	b   []byte
	err error
}

func (r *stateReader) fail(why string) {
	if r.err == nil {
		r.err = errors.New("server: snapshot: " + why)
	}
}

func (r *stateReader) uv() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *stateReader) vi() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *stateReader) str() string {
	n := r.uv()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)) < n {
		r.fail("string overruns payload")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *stateReader) bytes() []byte {
	n := r.uv()
	if r.err != nil {
		return nil
	}
	if uint64(len(r.b)) < n {
		r.fail("bytes overrun payload")
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

func (r *stateReader) ref() couple.ObjectRef {
	inst := r.str()
	path := r.str()
	return couple.ObjectRef{Instance: couple.InstanceID(inst), Path: path}
}

// count bounds a length prefix by the bytes actually remaining, so a
// corrupt length can't make decode allocate unboundedly.
func (r *stateReader) count() int {
	n := r.uv()
	if r.err == nil && n > uint64(len(r.b)) {
		r.fail("count overruns payload")
		return 0
	}
	return int(n)
}

func (r *stateReader) stack(ref couple.ObjectRef) []hist.Snapshot {
	n := r.count()
	if r.err != nil || n == 0 {
		return nil
	}
	snaps := make([]hist.Snapshot, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		origin := r.str()
		at := r.vi()
		stateBytes := r.bytes()
		st, rest, err := widget.DecodeTreeState(stateBytes)
		if err != nil {
			r.fail("tree state: " + err.Error())
			return nil
		}
		if len(rest) != 0 {
			r.fail("tree state has trailing bytes")
			return nil
		}
		sn := hist.Snapshot{Ref: ref, State: st, Origin: couple.InstanceID(origin)}
		if at != 0 {
			sn.At = time.Unix(0, at)
		}
		snaps = append(snaps, sn)
	}
	return snaps
}

// decodeState parses a snapshot payload. It is all-or-nothing: any error
// rejects the whole payload so installState never applies a partial state.
func decodeState(payload []byte) (*snapState, error) {
	if len(payload) < 1 {
		return nil, errors.New("server: snapshot: empty payload")
	}
	if payload[0] != stateVersion {
		return nil, fmt.Errorf("server: snapshot: unknown state version %d", payload[0])
	}
	r := &stateReader{b: payload[1:]}
	st := &snapState{}
	st.nshards = int(r.uv())
	if r.err == nil && (st.nshards < 1 || st.nshards > 1<<16) {
		r.fail("implausible shard count")
	}
	st.regSeq = r.uv()
	if r.err != nil {
		return nil, r.err
	}
	st.shardSeqs = make([]uint64, st.nshards)
	for i := range st.shardSeqs {
		st.shardSeqs[i] = r.uv()
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		in := snapInst{
			id:      couple.InstanceID(r.str()),
			appType: r.str(),
			host:    r.str(),
			user:    r.str(),
		}
		for j, m := 0, r.count(); j < m && r.err == nil; j++ {
			in.objs = append(in.objs, [2]string{r.str(), r.str()})
		}
		st.insts = append(st.insts, in)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.links = append(st.links, couple.Link{
			From:    r.ref(),
			To:      r.ref(),
			Creator: couple.InstanceID(r.str()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		st.rules = append(st.rules, perm.Rule{
			User:  r.str(),
			State: r.str(),
			Right: perm.Right(r.uv()),
		})
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		ss := snapSession{token: r.str()}
		ss.rec = sessionRec{
			id:      couple.InstanceID(r.str()),
			appType: r.str(),
			host:    r.str(),
			user:    r.str(),
		}
		st.sessions = append(st.sessions, ss)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		rt := snapRoute{ref: r.ref(), shard: int(r.uv())}
		if r.err == nil && (rt.shard < 0 || rt.shard >= st.nshards) {
			r.fail("route shard out of range")
		}
		st.routes = append(st.routes, rt)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		h := snapHist{ref: r.ref()}
		h.undo = r.stack(h.ref)
		h.redo = r.stack(h.ref)
		st.hists = append(st.hists, h)
	}
	for i, n := 0, r.count(); i < n && r.err == nil; i++ {
		m := r.count()
		tl := snapTail{ref: r.ref()}
		for j := 0; j < m && r.err == nil; j++ {
			env, err := wire.DecodeEnvelope(r.bytes())
			if err != nil {
				r.fail("tail envelope: " + err.Error())
				break
			}
			exec, ok := env.Msg.(wire.Exec)
			if !ok {
				r.fail("tail envelope is not Exec")
				break
			}
			tl.execs = append(tl.execs, exec)
		}
		st.tails = append(st.tails, tl)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, errors.New("server: snapshot: trailing bytes")
	}
	return st, nil
}

// installState applies a decoded snapshot to a freshly built server (live at
// startup before any loop runs, or the fold replica at seeding). Mutations
// mirror replayRecord's: same databases, same placement rules. When the
// snapshot's shard count differs from this server's, per-shard sequences are
// re-based conservatively past the largest possible allocated event ID and
// every multi-member group is re-colocated, so event IDs stay unique and
// groups stay single-shard under any -shards change across a restart.
func (s *Server) installState(st *snapState) {
	warn := func(what string, err error) {
		s.slog.Warn("snapshot install skipped "+what, "err", err)
	}
	s.reg.SetSeq(st.regSeq)
	for _, in := range st.insts {
		r := registry.Record{ID: in.id, AppType: in.appType, Host: in.host, User: in.user}
		if err := s.reg.Register(r); err != nil {
			warn("registration", err)
			continue
		}
		s.reg.RestoreSeq(in.id)
		for _, obj := range in.objs {
			if err := s.reg.DeclareObject(in.id, obj[0], obj[1]); err != nil {
				warn("declaration", err)
			}
		}
	}
	for _, l := range st.links {
		if err := s.graph.AddLink(l); err != nil {
			warn("couple link", err)
		}
	}
	for _, r := range st.rules {
		s.perms.Grant(r)
	}
	for _, ss := range st.sessions {
		if old, ok := s.sessionTok[ss.rec.id]; ok {
			delete(s.sessions, old)
		}
		s.sessions[ss.token] = ss.rec
		s.sessionTok[ss.rec.id] = ss.token
	}
	if st.nshards == len(s.shards) {
		for i, sh := range s.shards {
			sh.seq = st.shardSeqs[i]
		}
		if s.sharded {
			for _, rt := range st.routes {
				s.router.setRoutes([]couple.ObjectRef{rt.ref}, rt.shard)
			}
		}
	} else {
		// Shard-count change across restart: stored sequences and routes are
		// meaningless here. Re-base every shard's sequence past the largest
		// event ID the stored sequences could have allocated, and re-colocate
		// each coupling group on its first member's hash shard.
		var maxID uint64
		for i, q := range st.shardSeqs {
			if q == 0 {
				continue
			}
			if id := (q-1)*uint64(st.nshards) + uint64(i) + 1; id > maxID {
				maxID = id
			}
		}
		n := uint64(len(s.shards))
		base := (maxID + n - 1) / n
		for _, sh := range s.shards {
			sh.seq = base
		}
		if s.sharded {
			for _, group := range s.graph.Groups() {
				refs := append([]couple.ObjectRef(nil), group...)
				sort.Slice(refs, func(i, j int) bool { return refs[i].Less(refs[j]) })
				target := int(hashRef(refs[0]) % uint32(len(s.shards)))
				s.router.setRoutes(refs, target)
			}
		}
	}
	// Histories and tails place by shardForRef, which consults the routes
	// installed above — so they land exactly where replay would put them.
	for _, h := range st.hists {
		s.shardForRef(h.ref).history.Restore(h.ref, h.undo, h.redo)
	}
	for _, tl := range st.tails {
		sh := s.shardForRef(tl.ref)
		tes := make([]tailEvent, 0, len(tl.execs))
		for _, e := range tl.execs {
			tes = append(tes, tailEvent{exec: e})
		}
		sh.tails[tl.ref] = tes
	}
}
