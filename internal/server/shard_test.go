package server_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/wire"
)

// TestDropClientNotifiesChainSurvivors is the regression test for the
// disconnect stale-link split: in the chain A–B–C, when B disconnects, both
// A and C must hear that BOTH links died. The buggy dropClient computed the
// survivor groups after RemoveInstance, by which time A and C sat in
// separate components, so each missed the removal of the other's link and
// kept a stale mirrored entry forever.
func TestDropClientNotifiesChainSurvivors(t *testing.T) {
	h := newHarness(t, server.Options{})
	a := newRawClient(t, h, "app", "alice")
	b := newRawClient(t, h, "app", "bob")
	c := newRawClient(t, h, "app", "carol")
	for _, rc := range []*rawClient{a, b, c} {
		rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	}
	refA := couple.ObjectRef{Instance: a.id, Path: "/x"}
	refB := couple.ObjectRef{Instance: b.id, Path: "/x"}
	refC := couple.ObjectRef{Instance: c.id, Path: "/x"}
	a.mustOK(wire.Couple{From: refA, To: refB})
	b.mustOK(wire.Couple{From: refB, To: refC})
	// Both ends of the chain must know both links before B leaves.
	for _, rc := range []*rawClient{a, c} {
		seen := map[couple.Link]bool{}
		for len(seen) < 2 {
			seen[nextEvent[wire.LinkAdded](rc).Link] = true
		}
	}

	b.conn.Close()

	// A and C each must see LinkRemoved for BOTH links of the chain, even
	// though after B's removal they are no longer connected to each other.
	want := map[couple.Link]bool{
		{From: refA, To: refB, Creator: a.id}: true,
		{From: refB, To: refC, Creator: b.id}: true,
	}
	for _, rc := range []*rawClient{a, c} {
		got := map[couple.Link]bool{}
		for len(got) < 2 {
			got[nextEvent[wire.LinkRemoved](rc).Link] = true
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s saw removals %v, want %v", rc.id, got, want)
		}
	}
}

// resumeAttempt opens a fresh connection and presents token in a Resume
// handshake, returning the server's first reply.
func resumeAttempt(t *testing.T, h *harness, token string) (wire.Envelope, *wire.Conn) {
	t.Helper()
	link := netsim.NewLink(0)
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		h.srv.HandleConn(wire.NewConn(link.B))
	}()
	conn := wire.NewConn(link.A)
	if err := conn.Write(wire.Envelope{Seq: 1, Msg: wire.Resume{Token: token}}); err != nil {
		t.Fatal(err)
	}
	env, err := conn.Read()
	if err != nil {
		t.Fatal(err)
	}
	return env, conn
}

// call performs one correlated request/reply on a bare resumed connection.
func connCall(t *testing.T, conn *wire.Conn, seq uint64, msg wire.Message) wire.Envelope {
	t.Helper()
	if err := conn.Write(wire.Envelope{Seq: seq, Msg: msg}); err != nil {
		t.Fatal(err)
	}
	for {
		env, err := conn.Read()
		if err != nil {
			t.Fatal(err)
		}
		if env.RefSeq == seq {
			return env
		}
	}
}

// TestSessionTokenLifecycle covers the token lifecycle fixes: re-minting
// invalidates the previous token, a resume consumes the token it presented,
// and Deregister drops the outstanding token — so the sessions map is
// bounded and no stale token can hijack a session.
func TestSessionTokenLifecycle(t *testing.T) {
	h := newHarness(t, server.Options{})
	rc := newRawClient(t, h, "app", "alice")

	tok1 := rc.call(wire.SessionToken{}).Msg.(wire.SessionToken).Token
	tok2 := rc.call(wire.SessionToken{}).Msg.(wire.SessionToken).Token

	// Re-minting replaced tok1: it must not resume anything.
	if env, conn := resumeAttempt(t, h, tok1); true {
		conn.Close()
		if _, isErr := env.Msg.(wire.Err); !isErr {
			t.Fatalf("superseded token resumed: got %s", env.Msg.MsgType())
		}
	}

	// The current token resumes the session (superseding rc's connection).
	env, conn := resumeAttempt(t, h, tok2)
	defer conn.Close()
	reg, ok := env.Msg.(wire.Registered)
	if !ok || reg.ID != rc.id {
		t.Fatalf("resume with live token: got %v, want Registered{%s}", env.Msg, rc.id)
	}

	// Tokens are single-use: the consumed token must not resume again (that
	// would hijack the live resumed session).
	if env, conn := resumeAttempt(t, h, tok2); true {
		conn.Close()
		if _, isErr := env.Msg.(wire.Err); !isErr {
			t.Fatalf("consumed token resumed again: got %s", env.Msg.MsgType())
		}
	}

	// Deregister drops the outstanding token with the registration.
	tok3 := connCall(t, conn, 2, wire.SessionToken{}).Msg.(wire.SessionToken).Token
	if e, isErr := connCall(t, conn, 3, wire.Deregister{}).Msg.(wire.Err); isErr {
		t.Fatalf("deregister: %s", e.Text)
	}
	if env, conn := resumeAttempt(t, h, tok3); true {
		conn.Close()
		if _, isErr := env.Msg.(wire.Err); !isErr {
			t.Fatalf("token survived Deregister: got %s", env.Msg.MsgType())
		}
	}
}

// TestEventTimeoutHistogram checks that deadline-resolved events land in the
// event_timeout_wait histogram and never pollute the round-trip histogram
// with deadline-sized outliers.
func TestEventTimeoutHistogram(t *testing.T) {
	h := newHarness(t, server.Options{EventDeadline: 40 * time.Millisecond})
	origin := newRawClient(t, h, "app", "alice")
	member := newRawClient(t, h, "app", "bob") // never acks its Execs
	origin.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	member.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	origin.mustOK(wire.Couple{
		From: couple.ObjectRef{Instance: origin.id, Path: "/x"},
		To:   couple.ObjectRef{Instance: member.id, Path: "/x"},
	})

	res := origin.call(wire.Event{Path: "/x", Name: "changed", Args: []attr.Value{attr.String("v")}})
	if r, ok := res.Msg.(wire.EventResult); !ok || !r.OK {
		t.Fatalf("event not accepted: %v", res.Msg)
	}
	waitFor(t, "event deadline to fire", func() bool {
		return h.srv.Stats().EventTimeouts >= 1
	})
	st := h.srv.Stats()
	if st.EventTimeoutWait.Count != 1 {
		t.Errorf("EventTimeoutWait.Count = %d, want 1", st.EventTimeoutWait.Count)
	}
	if st.EventRTT.Count != 0 {
		t.Errorf("EventRTT.Count = %d, want 0 (timeout must not feed the RTT histogram)", st.EventRTT.Count)
	}
}

// participant is one raw client in the routing-equivalence trace, with an
// ack pump that records the Exec names it re-executed, in arrival order.
type participant struct {
	rc  *rawClient
	mu  sync.Mutex
	got []string
}

func newParticipant(t *testing.T, h *harness, user string) *participant {
	p := &participant{rc: newRawClient(t, h, "app", user)}
	p.rc.mustOK(wire.Declare{Path: "/x", Class: "textfield"})
	go func() {
		for env := range p.rc.events {
			if ex, ok := env.Msg.(wire.Exec); ok {
				p.mu.Lock()
				p.got = append(p.got, ex.Name)
				p.mu.Unlock()
				p.rc.send(wire.ExecAck{EventID: ex.EventID})
			}
		}
	}()
	return p
}

func (p *participant) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.got)
}

func (p *participant) sequence() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.got...)
}

func (p *participant) ref() couple.ObjectRef {
	return couple.ObjectRef{Instance: p.rc.id, Path: "/x"}
}

// sendEvent dispatches one named event, retrying while the group lock is
// held by a still-unacknowledged predecessor.
func (p *participant) sendEvent(t *testing.T, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		env := p.rc.call(wire.Event{Path: "/x", Name: name})
		res, ok := env.Msg.(wire.EventResult)
		if !ok {
			t.Fatalf("event %s: unexpected reply %s", name, env.Msg.MsgType())
		}
		if res.OK {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("event %s never accepted", name)
}

// runShardTrace drives the same multi-group trace against a server with the
// given shard count and returns every participant's per-member Exec order:
// 8 two-instance groups run 4 events each concurrently, pairs of groups are
// then merged (forcing cross-shard migrations when sharded), and each merged
// group runs 4 more events across the new four-member group.
func runShardTrace(t *testing.T, shards int) (map[string][]string, server.Stats) {
	const groups = 8
	const eventsPerPhase = 4
	h := newHarness(t, server.Options{Shards: shards})
	origins := make([]*participant, groups)
	members := make([]*participant, groups)
	for g := 0; g < groups; g++ {
		origins[g] = newParticipant(t, h, fmt.Sprintf("origin%d", g))
		members[g] = newParticipant(t, h, fmt.Sprintf("member%d", g))
	}
	for g := 0; g < groups; g++ {
		origins[g].rc.mustOK(wire.Couple{From: origins[g].ref(), To: members[g].ref()})
	}

	// Phase 1: every group streams events concurrently with the others.
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < eventsPerPhase; e++ {
				origins[g].sendEvent(t, fmt.Sprintf("g%d.e%d", g, e))
			}
		}()
	}
	wg.Wait()
	for g := 0; g < groups; g++ {
		g := g
		waitFor(t, fmt.Sprintf("phase-1 execs at member%d", g), func() bool {
			return members[g].count() >= eventsPerPhase
		})
	}

	// Merge phase: pair up the groups. When sharded, any pair whose groups
	// hash to different shards migrates — an explicit two-shard handoff.
	for g := 0; g < groups; g += 2 {
		origins[g].rc.mustOK(wire.Couple{From: origins[g].ref(), To: origins[g+1].ref()})
	}

	// Phase 2: the left origin of each merged group streams events that now
	// fan out to all three other participants.
	for g := 0; g < groups; g += 2 {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < eventsPerPhase; e++ {
				origins[g].sendEvent(t, fmt.Sprintf("m%d.e%d", g, e))
			}
		}()
	}
	wg.Wait()

	sequences := make(map[string][]string)
	collect := func(name string, p *participant, want int) {
		waitFor(t, fmt.Sprintf("%d execs at %s", want, name), func() bool {
			return p.count() >= want
		})
		sequences[name] = p.sequence()
	}
	for g := 0; g < groups; g++ {
		memberWant := eventsPerPhase * 2 // own group's phase 1 + merged phase 2
		collect(fmt.Sprintf("member%d", g), members[g], memberWant)
		originWant := 0
		if g%2 == 1 {
			originWant = eventsPerPhase // hears the left origin's phase 2
		}
		collect(fmt.Sprintf("origin%d", g), origins[g], originWant)
	}
	// The last Exec being delivered does not mean its acks have landed back
	// at the server yet; wait for quiescence so the caller's PendingEvents
	// assertion is not racing the tail of the ack stream.
	waitFor(t, "all events resolved", func() bool {
		return h.srv.Stats().PendingEvents == 0
	})
	return sequences, h.srv.Stats()
}

// TestShardRoutingEquivalence is the shard-routing property test: the same
// trace on a single-loop server and a 4-shard server must yield identical
// per-member Exec orderings, and the sharded run must have exercised at
// least one cross-shard group migration.
func TestShardRoutingEquivalence(t *testing.T) {
	seq1, _ := runShardTrace(t, 1)
	seq4, st4 := runShardTrace(t, 4)
	if !reflect.DeepEqual(seq1, seq4) {
		t.Errorf("per-member Exec orderings diverge between -shards=1 and -shards=4:\n1: %v\n4: %v", seq1, seq4)
	}
	if st4.Shards != 4 {
		t.Errorf("Stats.Shards = %d, want 4", st4.Shards)
	}
	if st4.CrossShardHandoffs == 0 {
		t.Error("expected at least one cross-shard handoff during the merge phase")
	}
	if st4.PendingEvents != 0 {
		t.Errorf("PendingEvents = %d at quiescence, want 0", st4.PendingEvents)
	}
}
