// Package lock implements the server's lock table (§2.1, §3.2): the floor
// control that guarantees actions occur serially within each group of
// coupled objects.
//
// Locking is non-blocking by design — "Actions on locked objects are
// disabled" rather than queued — so the API is try/fail, never wait.
package lock

import (
	"sort"
	"strconv"
	"sync"

	"cosoft/internal/couple"
	"cosoft/internal/obs"
)

// Owner identifies the holder of a lock: the instance processing an event
// and a sequence number distinguishing its events.
type Owner struct {
	Instance couple.InstanceID
	Seq      uint64
}

// Table is the lock table. The zero value is not usable; call NewTable.
type Table struct {
	mu   sync.Mutex
	held map[couple.ObjectRef]Owner

	// Metric handles (nil-safe; see Instrument).
	mAttempts *obs.Counter
	mFailures *obs.Counter
	mUndone   *obs.Counter

	// tracer records one "lock.acquire" span per traced group acquisition
	// (nil disables; see TraceWith).
	tracer *obs.Tracer
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{held: make(map[couple.ObjectRef]Owner)}
}

// Instrument attaches metric handles for group-locking behaviour: attempts
// counts TryLockGroup calls, failures counts group acquisitions lost to
// contention, and undone counts locks rolled back by the paper's
// undo-locking ("on the first failure all locks acquired so far are
// undone"). Nil handles (the obs.Disabled sink) keep the table metric-free.
// Call before the table is shared between goroutines.
func (t *Table) Instrument(attempts, failures, undone *obs.Counter) {
	t.mAttempts = attempts
	t.mFailures = failures
	t.mUndone = undone
}

// TraceWith attaches a causal tracer: each TryLockGroupCtx call with a valid
// parent context records a "lock.acquire" span covering the table mutex wait
// plus the probe, with the outcome in the note. Call before the table is
// shared between goroutines.
func (t *Table) TraceWith(tr *obs.Tracer) { t.tracer = tr }

// TryLockGroupCtx is TryLockGroup with causal tracing: the acquisition is
// recorded as a child span of parent. Without a tracer or trace context it
// is exactly TryLockGroup.
func (t *Table) TryLockGroupCtx(parent obs.TraceContext, refs []couple.ObjectRef, owner Owner) (bool, int) {
	sp := t.tracer.StartSpan(parent, "lock.acquire", string(owner.Instance))
	ok, attempted := t.TryLockGroup(refs, owner)
	t.endAcquireSpan(sp, ok, attempted, len(refs))
	return ok, attempted
}

// TryLockGroupOrderedCtx is TryLockGroupOrdered with causal tracing.
func (t *Table) TryLockGroupOrderedCtx(parent obs.TraceContext, refs []couple.ObjectRef, owner Owner) (bool, int) {
	sp := t.tracer.StartSpan(parent, "lock.acquire", string(owner.Instance))
	ok, attempted := t.TryLockGroupOrdered(refs, owner)
	t.endAcquireSpan(sp, ok, attempted, len(refs))
	return ok, attempted
}

func (t *Table) endAcquireSpan(sp obs.SpanHandle, ok bool, attempted, group int) {
	if !sp.Active() {
		return
	}
	outcome := "granted n="
	if !ok {
		outcome = "denied after="
	}
	sp.EndNote(outcome + strconv.Itoa(attempted) + "/" + strconv.Itoa(group))
}

// TryLock attempts to lock one object for owner. It succeeds when the object
// is free or already held by the same owner (re-entrant within one event).
func (t *Table) TryLock(ref couple.ObjectRef, owner Owner) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tryLockLocked(ref, owner)
}

func (t *Table) tryLockLocked(ref couple.ObjectRef, owner Owner) bool {
	if cur, ok := t.held[ref]; ok {
		return cur == owner
	}
	t.held[ref] = owner
	return true
}

// Unlock releases one object if held by owner, reporting whether it did.
func (t *Table) Unlock(ref couple.ObjectRef, owner Owner) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.held[ref]; ok && cur == owner {
		delete(t.held, ref)
		return true
	}
	return false
}

// TryLockGroup locks all refs for owner, or none. This is the paper's
// published algorithm (§3.2): objects are attempted *in the given order*;
// on the first failure all locks acquired so far are undone ("undo locking")
// and the call reports failure together with how many objects were locked
// before the conflict (useful for instrumentation).
func (t *Table) TryLockGroup(refs []couple.ObjectRef, owner Owner) (ok bool, attempted int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.mAttempts.Inc()
	var acquired []couple.ObjectRef
	for _, ref := range refs {
		if cur, held := t.held[ref]; held && cur != owner {
			for _, a := range acquired {
				delete(t.held, a)
			}
			t.mFailures.Inc()
			t.mUndone.Add(uint64(len(acquired)))
			return false, len(acquired)
		}
		if _, held := t.held[ref]; !held {
			t.held[ref] = owner
			acquired = append(acquired, ref)
		}
	}
	return true, len(acquired)
}

// TryLockGroupOrdered is the ablation variant: it sorts the refs into the
// global total order before attempting, so two competing groups always probe
// their shared prefix in the same order. Under the server's serialized state
// loop both variants are atomic; the ordered variant exists to quantify the
// ordering cost and to stay safe if locking were ever performed
// incrementally.
func (t *Table) TryLockGroupOrdered(refs []couple.ObjectRef, owner Owner) (ok bool, attempted int) {
	sorted := make([]couple.ObjectRef, len(refs))
	copy(sorted, refs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	return t.TryLockGroup(sorted, owner)
}

// UnlockGroup releases every ref held by owner in refs, returning the count
// released.
func (t *Table) UnlockGroup(refs []couple.ObjectRef, owner Owner) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, ref := range refs {
		if cur, ok := t.held[ref]; ok && cur == owner {
			delete(t.held, ref)
			n++
		}
	}
	return n
}

// ReleaseOwner releases every lock held by owner (used when an instance
// disconnects mid-event), returning the released refs in deterministic
// order.
func (t *Table) ReleaseOwner(owner Owner) []couple.ObjectRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []couple.ObjectRef
	for ref, cur := range t.held {
		if cur == owner {
			delete(t.held, ref)
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ReleaseInstance releases every lock whose owner belongs to the instance,
// regardless of event sequence number.
func (t *Table) ReleaseInstance(id couple.InstanceID) []couple.ObjectRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []couple.ObjectRef
	for ref, cur := range t.held {
		if cur.Instance == id {
			delete(t.held, ref)
			out = append(out, ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Extract removes and returns every held entry whose ref is in refs or whose
// owner is in owners (either set may be nil). It is the donor half of a
// cross-shard group migration: the extracted entries are Installed into the
// receiving shard's table so the merged group serializes on one table.
func (t *Table) Extract(refs map[couple.ObjectRef]bool, owners map[Owner]bool) map[couple.ObjectRef]Owner {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[couple.ObjectRef]Owner)
	for ref, cur := range t.held {
		if refs[ref] || owners[cur] {
			delete(t.held, ref)
			out[ref] = cur
		}
	}
	return out
}

// Install adds extracted entries to the table. Entries for refs already held
// must not occur (the migration protocol guarantees the receiving shard has
// processed no event on the migrating refs yet); an existing entry is
// overwritten rather than merged.
func (t *Table) Install(m map[couple.ObjectRef]Owner) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for ref, owner := range m {
		t.held[ref] = owner
	}
}

// HeldBy returns the current owner of ref, if locked.
func (t *Table) HeldBy(ref couple.ObjectRef) (Owner, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.held[ref]
	return o, ok
}

// Len returns the number of currently held locks.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.held)
}
