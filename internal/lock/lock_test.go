package lock

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"cosoft/internal/couple"
	"cosoft/internal/obs"
)

func ref(inst, path string) couple.ObjectRef {
	return couple.ObjectRef{Instance: couple.InstanceID(inst), Path: path}
}

func TestTryLockUnlock(t *testing.T) {
	tbl := NewTable()
	a := ref("i1", "/a")
	o1 := Owner{Instance: "i1", Seq: 1}
	o2 := Owner{Instance: "i2", Seq: 1}
	if !tbl.TryLock(a, o1) {
		t.Fatal("first lock must succeed")
	}
	if !tbl.TryLock(a, o1) {
		t.Fatal("re-entrant lock by same owner must succeed")
	}
	if tbl.TryLock(a, o2) {
		t.Fatal("conflicting lock must fail")
	}
	if got, ok := tbl.HeldBy(a); !ok || got != o1 {
		t.Errorf("HeldBy = %v, %v", got, ok)
	}
	if tbl.Unlock(a, o2) {
		t.Error("unlock by non-owner must fail")
	}
	if !tbl.Unlock(a, o1) {
		t.Error("unlock by owner must succeed")
	}
	if tbl.Unlock(a, o1) {
		t.Error("double unlock must fail")
	}
	if !tbl.TryLock(a, o2) {
		t.Error("lock after release must succeed")
	}
}

func TestTryLockGroupAllOrNothing(t *testing.T) {
	tbl := NewTable()
	refs := []couple.ObjectRef{ref("i1", "/a"), ref("i2", "/b"), ref("i3", "/c")}
	o1 := Owner{Instance: "i1", Seq: 1}
	o2 := Owner{Instance: "i2", Seq: 5}
	// o2 pre-holds the middle object.
	if !tbl.TryLock(refs[1], o2) {
		t.Fatal("setup lock failed")
	}
	ok, attempted := tbl.TryLockGroup(refs, o1)
	if ok {
		t.Fatal("group lock must fail with a held member")
	}
	if attempted != 1 {
		t.Errorf("attempted = %d, want 1 (locked /a before hitting /b)", attempted)
	}
	// The undo must have released /a.
	if _, held := tbl.HeldBy(refs[0]); held {
		t.Error("failed group lock leaked a lock")
	}
	tbl.Unlock(refs[1], o2)
	ok, attempted = tbl.TryLockGroup(refs, o1)
	if !ok || attempted != 3 {
		t.Fatalf("group lock = %v, %d", ok, attempted)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if n := tbl.UnlockGroup(refs, o1); n != 3 {
		t.Errorf("UnlockGroup = %d", n)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d after unlock", tbl.Len())
	}
}

func TestTryLockGroupReentrant(t *testing.T) {
	tbl := NewTable()
	a, b := ref("i1", "/a"), ref("i1", "/b")
	o := Owner{Instance: "i1", Seq: 1}
	if !tbl.TryLock(a, o) {
		t.Fatal("setup failed")
	}
	ok, attempted := tbl.TryLockGroup([]couple.ObjectRef{a, b}, o)
	if !ok {
		t.Fatal("re-entrant group lock must succeed")
	}
	if attempted != 1 {
		t.Errorf("attempted = %d, want 1 (a already held)", attempted)
	}
}

func TestTryLockGroupOrdered(t *testing.T) {
	tbl := NewTable()
	refs := []couple.ObjectRef{ref("i3", "/c"), ref("i1", "/a"), ref("i2", "/b")}
	o := Owner{Instance: "i1", Seq: 1}
	ok, attempted := tbl.TryLockGroupOrdered(refs, o)
	if !ok || attempted != 3 {
		t.Fatalf("ordered lock = %v, %d", ok, attempted)
	}
	// Input slice must not be reordered.
	if refs[0] != ref("i3", "/c") {
		t.Error("caller slice was mutated")
	}
}

func TestReleaseOwnerAndInstance(t *testing.T) {
	tbl := NewTable()
	o1 := Owner{Instance: "i1", Seq: 1}
	o1b := Owner{Instance: "i1", Seq: 2}
	o2 := Owner{Instance: "i2", Seq: 1}
	tbl.TryLock(ref("x", "/1"), o1)
	tbl.TryLock(ref("x", "/2"), o1b)
	tbl.TryLock(ref("x", "/3"), o2)
	got := tbl.ReleaseOwner(o1)
	if !reflect.DeepEqual(got, []couple.ObjectRef{ref("x", "/1")}) {
		t.Errorf("ReleaseOwner = %v", got)
	}
	got = tbl.ReleaseInstance("i1")
	if !reflect.DeepEqual(got, []couple.ObjectRef{ref("x", "/2")}) {
		t.Errorf("ReleaseInstance = %v", got)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

// Property: a group lock never leaves partial state — after any sequence of
// competing group attempts, every held lock belongs to an owner whose whole
// group succeeded.
func TestPropGroupLockAtomicity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := NewTable()
		objs := make([]couple.ObjectRef, 6)
		for i := range objs {
			objs[i] = ref("x", string(rune('a'+i)))
		}
		type attempt struct {
			owner Owner
			refs  []couple.ObjectRef
			ok    bool
		}
		var attempts []attempt
		for i := 0; i < 8; i++ {
			o := Owner{Instance: couple.InstanceID(rune('A' + i)), Seq: uint64(i)}
			n := r.Intn(len(objs)) + 1
			perm := r.Perm(len(objs))[:n]
			refs := make([]couple.ObjectRef, n)
			for j, p := range perm {
				refs[j] = objs[p]
			}
			ok, _ := tbl.TryLockGroup(refs, o)
			attempts = append(attempts, attempt{o, refs, ok})
		}
		// Every successful attempt must still hold all its refs; every
		// failed attempt must hold none.
		for _, a := range attempts {
			for _, rf := range a.refs {
				holder, held := tbl.HeldBy(rf)
				if a.ok && (!held || holder != a.owner) {
					return false
				}
				if !a.ok && held && holder == a.owner {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: concurrent group attempts on overlapping sets never double-grant.
func TestConcurrentGroupLocks(t *testing.T) {
	tbl := NewTable()
	objs := []couple.ObjectRef{ref("x", "/a"), ref("x", "/b"), ref("x", "/c")}
	var wg sync.WaitGroup
	var mu sync.Mutex
	holders := 0
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := Owner{Instance: couple.InstanceID(rune('A' + i)), Seq: uint64(i)}
			if ok, _ := tbl.TryLockGroup(objs, o); ok {
				mu.Lock()
				holders++
				mu.Unlock()
				tbl.UnlockGroup(objs, o)
			}
		}(i)
	}
	wg.Wait()
	if holders == 0 {
		t.Error("at least one attempt should have succeeded")
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d after all released", tbl.Len())
	}
}

func BenchmarkTryLockGroup(b *testing.B) {
	tbl := NewTable()
	refs := make([]couple.ObjectRef, 16)
	for i := range refs {
		refs[i] = ref("x", string(rune('a'+i)))
	}
	o := Owner{Instance: "i", Seq: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if ok, _ := tbl.TryLockGroup(refs, o); !ok {
			b.Fatal("lock failed")
		}
		tbl.UnlockGroup(refs, o)
	}
}

func TestInstrumentCountsContentionAndUndo(t *testing.T) {
	reg := obs.NewRegistry()
	attempts := reg.Counter("lock.group_attempts")
	failures := reg.Counter("lock.group_failures")
	undone := reg.Counter("lock.undo_locked")
	tbl := NewTable()
	tbl.Instrument(attempts, failures, undone)

	refs := []couple.ObjectRef{ref("i1", "/a"), ref("i1", "/b"), ref("i1", "/c")}
	o1 := Owner{Instance: "i1", Seq: 1}
	o2 := Owner{Instance: "i2", Seq: 1}
	if ok, _ := tbl.TryLockGroup(refs, o1); !ok {
		t.Fatal("first group lock must succeed")
	}
	// o2 probes /x, /y (free, acquired), then /a (held): two undo-locks.
	if ok, _ := tbl.TryLockGroup([]couple.ObjectRef{ref("i2", "/x"), ref("i2", "/y"), refs[0]}, o2); ok {
		t.Fatal("contended group lock must fail")
	}
	// The ordered variant shares the counters.
	if ok, _ := tbl.TryLockGroupOrdered(refs, o2); ok {
		t.Fatal("ordered contended lock must fail")
	}
	if got := attempts.Value(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if got := failures.Value(); got != 2 {
		t.Errorf("failures = %d, want 2", got)
	}
	if got := undone.Value(); got != 2 {
		t.Errorf("undone = %d, want 2", got)
	}
}

func TestUninstrumentedTableWorks(t *testing.T) {
	tbl := NewTable() // no Instrument call: nil handles must be no-ops
	o := Owner{Instance: "i1", Seq: 1}
	if ok, _ := tbl.TryLockGroup([]couple.ObjectRef{ref("i1", "/a")}, o); !ok {
		t.Fatal("lock must succeed")
	}
	if ok, _ := tbl.TryLockGroup([]couple.ObjectRef{ref("i1", "/a")}, Owner{Instance: "i2"}); ok {
		t.Fatal("contended lock must fail")
	}
}
