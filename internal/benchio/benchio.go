// Package benchio maintains the BENCH_obs.json performance trajectory: an
// append-only JSON array of benchmark rows accumulated across PRs, written
// by the go-test benchmarks and the cosoft-load generator. Rows from earlier
// sessions are never rewritten — the file is a history, not a report.
package benchio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// AppendRow appends row to the JSON-array trajectory at path, creating the
// file if needed and absorbing a legacy single-object file as the first row.
//
// When replaceTrailingBench is non-empty and the file's last row carries
// that value in its "bench" field, the last row is replaced instead of
// appended to: callers that write several times per process (the benchmark
// framework's N-calibration reruns) pass their bench name on the second and
// later writes so only the final measurement survives.
func AppendRow(path string, row any, replaceTrailingBench string) error {
	var rows []json.RawMessage
	if prev, err := os.ReadFile(path); err == nil {
		trimmed := bytes.TrimSpace(prev)
		if len(trimmed) > 0 && trimmed[0] == '[' {
			if err := json.Unmarshal(trimmed, &rows); err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
		} else if len(trimmed) > 0 {
			rows = append(rows, json.RawMessage(trimmed))
		}
	}
	data, err := json.Marshal(row)
	if err != nil {
		return fmt.Errorf("marshal trajectory row: %w", err)
	}
	if n := len(rows); n > 0 && replaceTrailingBench != "" {
		var last struct {
			Bench string `json:"bench"`
		}
		if json.Unmarshal(rows[n-1], &last) == nil && last.Bench == replaceTrailingBench {
			rows = rows[:n-1]
		}
	}
	rows = append(rows, data)
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal trajectory: %w", err)
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
