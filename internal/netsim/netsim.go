// Package netsim provides instrumented in-process transports for the
// benchmark harness: connection pairs with configurable one-way propagation
// latency and per-direction traffic counters.
//
// The paper's experiments ran on a LAN between an electronic blackboard and
// student workstations; the architecture comparisons depend on message
// counts and propagation delay, which this package reproduces
// deterministically on one machine.
package netsim

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts traffic over one direction of a link.
type Stats struct {
	// Messages is the number of Write calls (frames, for the wire package's
	// one-flush-per-frame usage).
	Messages atomic.Int64
	// Bytes is the total payload volume.
	Bytes atomic.Int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() (messages, bytes int64) {
	return s.Messages.Load(), s.Bytes.Load()
}

// Link is a bidirectional in-process connection pair with one-way latency.
type Link struct {
	// A and B are the two endpoints.
	A, B net.Conn
	// AtoB counts traffic written at A; BtoA counts traffic written at B.
	AtoB, BtoA *Stats
}

// NewLink returns a connected pair with the given one-way propagation
// latency (0 for none).
func NewLink(latency time.Duration) *Link {
	ab := newQueue(latency)
	ba := newQueue(latency)
	l := &Link{AtoB: &Stats{}, BtoA: &Stats{}}
	l.A = &conn{send: ab, recv: ba, stats: l.AtoB, local: addr("netsim-a"), remote: addr("netsim-b")}
	l.B = &conn{send: ba, recv: ab, stats: l.BtoA, local: addr("netsim-b"), remote: addr("netsim-a")}
	return l
}

// TotalMessages returns the total frames sent in both directions.
func (l *Link) TotalMessages() int64 {
	return l.AtoB.Messages.Load() + l.BtoA.Messages.Load()
}

// TotalBytes returns the total bytes sent in both directions.
func (l *Link) TotalBytes() int64 {
	return l.AtoB.Bytes.Load() + l.BtoA.Bytes.Load()
}

// Close closes both endpoints.
func (l *Link) Close() {
	l.A.Close()
	l.B.Close()
}

type packet struct {
	data []byte
	due  time.Time
}

// queue is one direction of a link: an unbounded FIFO of timestamped
// packets.
type queue struct {
	latency time.Duration
	mu      sync.Mutex
	cond    *sync.Cond
	packets []packet
	closed  bool
}

func newQueue(latency time.Duration) *queue {
	q := &queue{latency: latency}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return io.ErrClosedPipe
	}
	q.packets = append(q.packets, packet{data: cp, due: time.Now().Add(q.latency)})
	q.cond.Signal()
	return nil
}

// pop blocks until a packet is available (respecting its due time) or the
// queue is closed and drained.
func (q *queue) pop() ([]byte, error) {
	q.mu.Lock()
	for len(q.packets) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.packets) == 0 {
		q.mu.Unlock()
		return nil, io.EOF
	}
	p := q.packets[0]
	q.packets = q.packets[1:]
	q.mu.Unlock()
	if d := time.Until(p.due); d > 0 {
		time.Sleep(d)
	}
	return p.data, nil
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// conn is one endpoint of a Link.
type conn struct {
	send    *queue
	recv    *queue
	stats   *Stats
	pending []byte // unread remainder of the last popped packet
	local   addr
	remote  addr
	closed  atomic.Bool
}

var _ net.Conn = (*conn)(nil)

func (c *conn) Read(p []byte) (int, error) {
	if len(c.pending) == 0 {
		data, err := c.recv.pop()
		if err != nil {
			return 0, err
		}
		c.pending = data
	}
	n := copy(p, c.pending)
	c.pending = c.pending[n:]
	return n, nil
}

func (c *conn) Write(p []byte) (int, error) {
	if c.closed.Load() {
		return 0, io.ErrClosedPipe
	}
	if err := c.send.push(p); err != nil {
		return 0, err
	}
	c.stats.Messages.Add(1)
	c.stats.Bytes.Add(int64(len(p)))
	return len(p), nil
}

func (c *conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.send.close()
	c.recv.close()
	return nil
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// Deadlines are not supported; the protocol layers above use blocking reads
// terminated by Close.
func (c *conn) SetDeadline(time.Time) error      { return errNoDeadline }
func (c *conn) SetReadDeadline(time.Time) error  { return errNoDeadline }
func (c *conn) SetWriteDeadline(time.Time) error { return errNoDeadline }

var errNoDeadline = errors.New("netsim: deadlines not supported")

type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// Listener is an in-process net.Listener whose accepted connections are
// netsim links, so a server can be benchmarked with per-client latency and
// counters.
type Listener struct {
	latency time.Duration
	mu      sync.Mutex
	queue   chan *Link
	links   []*Link
	closed  bool
}

// NewListener returns a listener creating links with the given latency.
func NewListener(latency time.Duration) *Listener {
	return &Listener{latency: latency, queue: make(chan *Link, 64)}
}

// Dial creates a new link; the A side is returned to the caller and the B
// side is delivered to Accept.
func (l *Listener) Dial() (net.Conn, error) {
	link := NewLink(l.latency)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, errors.New("netsim: listener closed")
	}
	l.links = append(l.links, link)
	l.mu.Unlock()
	l.queue <- link
	return link.A, nil
}

// Accept returns the server side of the next dialed link.
func (l *Listener) Accept() (net.Conn, error) {
	link, ok := <-l.queue
	if !ok {
		return nil, errors.New("netsim: listener closed")
	}
	return link.B, nil
}

// Close closes the listener and every link it created.
func (l *Listener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	links := l.links
	l.mu.Unlock()
	close(l.queue)
	for _, link := range links {
		link.Close()
	}
	return nil
}

// Addr returns a placeholder address.
func (l *Listener) Addr() net.Addr { return addr("netsim-listener") }

// Links returns all links created so far (for counter inspection).
func (l *Listener) Links() []*Link {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Link, len(l.links))
	copy(out, l.links)
	return out
}
