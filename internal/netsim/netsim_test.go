package netsim

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	msg := []byte("hello over the simulated wire")
	go func() {
		if _, err := l.A.Write(msg); err != nil {
			t.Errorf("write: %v", err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(l.B, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
	// Other direction.
	go l.B.Write([]byte("pong"))
	buf = make([]byte, 4)
	if _, err := io.ReadFull(l.A, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pong" {
		t.Errorf("got %q", buf)
	}
}

func TestPartialReads(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	go l.A.Write([]byte("abcdef"))
	one := make([]byte, 2)
	var got []byte
	for len(got) < 6 {
		n, err := l.B.Read(one)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, one[:n]...)
	}
	if string(got) != "abcdef" {
		t.Errorf("got %q", got)
	}
}

func TestLatency(t *testing.T) {
	const lat = 30 * time.Millisecond
	l := NewLink(lat)
	defer l.Close()
	start := time.Now()
	go l.A.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(l.B, buf); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < lat {
		t.Errorf("delivery after %v, want >= %v", elapsed, lat)
	}
}

func TestCounters(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 10)
		io.ReadFull(l.B, buf)
	}()
	l.A.Write([]byte("12345"))
	l.A.Write([]byte("67890"))
	<-done
	msgs, bts := l.AtoB.Snapshot()
	if msgs != 2 || bts != 10 {
		t.Errorf("AtoB = %d msgs, %d bytes", msgs, bts)
	}
	if l.TotalMessages() != 2 || l.TotalBytes() != 10 {
		t.Errorf("totals = %d, %d", l.TotalMessages(), l.TotalBytes())
	}
}

func TestCloseUnblocksReader(t *testing.T) {
	l := NewLink(0)
	errc := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := l.B.Read(buf)
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.A.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, io.EOF) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader not unblocked")
	}
	if _, err := l.A.Write([]byte("x")); err == nil {
		t.Error("write after close must fail")
	}
	if err := l.A.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestDeadlinesUnsupported(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	if err := l.A.SetDeadline(time.Now()); err == nil {
		t.Error("deadlines should report unsupported")
	}
	if l.A.LocalAddr().String() != "netsim-a" || l.A.RemoteAddr().String() != "netsim-b" {
		t.Error("addresses wrong")
	}
	if l.A.LocalAddr().Network() != "netsim" {
		t.Error("network wrong")
	}
}

func TestListener(t *testing.T) {
	lis := NewListener(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := lis.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		buf := make([]byte, 2)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Errorf("read: %v", err)
			return
		}
		conn.Write(buf)
	}()
	client, err := lis.Dial()
	if err != nil {
		t.Fatal(err)
	}
	client.Write([]byte("hi"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(client, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hi" {
		t.Errorf("echo = %q", buf)
	}
	wg.Wait()
	if len(lis.Links()) != 1 {
		t.Errorf("links = %d", len(lis.Links()))
	}
	if err := lis.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lis.Dial(); err == nil {
		t.Error("dial after close must fail")
	}
	if _, err := lis.Accept(); err == nil {
		t.Error("accept after close must fail")
	}
	if err := lis.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	_ = lis.Addr()
}

func TestConcurrentTraffic(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	const writers, msgs = 4, 100
	var wg sync.WaitGroup
	received := make(chan int, 1)
	go func() {
		total := 0
		buf := make([]byte, 256)
		for total < writers*msgs {
			n, err := l.B.Read(buf)
			if err != nil {
				break
			}
			total += n
		}
		received <- total
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < msgs; i++ {
				l.A.Write([]byte{1})
			}
		}()
	}
	wg.Wait()
	if got := <-received; got != writers*msgs {
		t.Errorf("received %d bytes, want %d", got, writers*msgs)
	}
}

func TestWriteDeadlinesUnsupported(t *testing.T) {
	l := NewLink(0)
	defer l.Close()
	if err := l.A.SetReadDeadline(time.Now()); err == nil {
		t.Error("SetReadDeadline should report unsupported")
	}
	if err := l.A.SetWriteDeadline(time.Now()); err == nil {
		t.Error("SetWriteDeadline should report unsupported")
	}
}
