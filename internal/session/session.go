// Package session implements moderated dynamic grouping on top of the
// coupling primitives: named sessions whose membership changes at runtime,
// managed by a facilitator — the paper's "guided group meeting" (§1), where
// a moderator couples selected participants "according to sub-groups"
// defined at runtime rather than before the session (§2.2, dynamic
// population).
//
// A session is a star of couple links anchored at its first member; the
// transitive closure of the couple relation turns the star into one coupling
// group. The facilitator needs the couple right on every member object (or
// an open permission table).
package session

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"cosoft/internal/client"
	"cosoft/internal/couple"
)

// Errors returned by session operations.
var (
	ErrExists    = errors.New("session: session already exists")
	ErrNotFound  = errors.New("session: no such session")
	ErrMember    = errors.New("session: already a member")
	ErrNotMember = errors.New("session: not a member")
)

// Facilitator manages named sessions through one coupling client (the
// moderator's instance — in the classroom, the teacher's environment).
type Facilitator struct {
	cli *client.Client

	mu       sync.Mutex
	sessions map[string]*state
}

// state tracks one session's members in join order. The anchor (first
// member) carries the star's links.
type state struct {
	members []couple.ObjectRef
}

// NewFacilitator returns a facilitator using the given client for the
// remote couple/decouple operations.
func NewFacilitator(cli *client.Client) *Facilitator {
	return &Facilitator{cli: cli, sessions: make(map[string]*state)}
}

// Create registers an empty session.
func (f *Facilitator) Create(name string) error {
	if name == "" {
		return errors.New("session: empty name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.sessions[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	f.sessions[name] = &state{}
	return nil
}

// Add joins an object to the session: the facilitator couples it with the
// session's anchor, which (by transitive closure) couples it with every
// member.
func (f *Facilitator) Add(name string, ref couple.ObjectRef) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sessions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, m := range s.members {
		if m == ref {
			return fmt.Errorf("%w: %s", ErrMember, ref)
		}
	}
	if len(s.members) > 0 {
		if err := f.cli.RemoteCouple(s.members[0], ref); err != nil {
			return fmt.Errorf("session: coupling %s into %q: %w", ref, name, err)
		}
	}
	s.members = append(s.members, ref)
	return nil
}

// AddWithSync joins an object to the session like Add, but first aligns the
// newcomer's state with the session's anchor by a remote state copy — the
// "initially synchronized by copying the UI state" step (§3.2) applied to
// late joiners.
func (f *Facilitator) AddWithSync(name string, ref couple.ObjectRef) error {
	f.mu.Lock()
	var anchor *couple.ObjectRef
	if s, ok := f.sessions[name]; ok && len(s.members) > 0 {
		a := s.members[0]
		anchor = &a
	}
	f.mu.Unlock()
	if anchor != nil {
		if err := f.cli.RemoteCopy(*anchor, ref, false); err != nil {
			return fmt.Errorf("session: aligning %s with %q: %w", ref, name, err)
		}
	}
	return f.Add(name, ref)
}

// Remove takes an object out of the session. Removing the anchor re-anchors
// the star: every remaining member is re-linked to the new anchor before
// the old anchor's links are dropped, so the survivors stay one group
// throughout.
func (f *Facilitator) Remove(name string, ref couple.ObjectRef) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sessions[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	idx := -1
	for i, m := range s.members {
		if m == ref {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %s", ErrNotMember, ref)
	}
	if idx == 0 && len(s.members) > 2 {
		// Re-anchor on the second member first.
		newAnchor := s.members[1]
		for _, m := range s.members[2:] {
			if err := f.cli.RemoteCouple(newAnchor, m); err != nil {
				return fmt.Errorf("session: re-anchoring %q: %w", name, err)
			}
		}
	}
	// Drop the departing member's links into the group.
	for i, m := range s.members {
		if i == idx {
			continue
		}
		// Only links that exist need removing: anchor links and, after
		// re-anchoring, second-member links. RemoteDecouple on a missing
		// link reports an error we can ignore.
		if err := f.cli.RemoteDecouple(ref, m); err != nil {
			if err2 := f.cli.RemoteDecouple(m, ref); err2 != nil {
				continue // no link in either direction
			}
		}
	}
	s.members = append(s.members[:idx], s.members[idx+1:]...)
	return nil
}

// Dissolve ends the session, decoupling every member.
func (f *Facilitator) Dissolve(name string) error {
	f.mu.Lock()
	s, ok := f.sessions[name]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	members := append([]couple.ObjectRef(nil), s.members...)
	delete(f.sessions, name)
	f.mu.Unlock()
	// Remove all pairwise links that may exist (anchor stars plus
	// re-anchoring leftovers).
	for i := range members {
		for j := i + 1; j < len(members); j++ {
			if err := f.cli.RemoteDecouple(members[i], members[j]); err != nil {
				_ = f.cli.RemoteDecouple(members[j], members[i]) //nolint:errcheck
			}
		}
	}
	return nil
}

// Members returns the session's member objects in join order.
func (f *Facilitator) Members(name string) ([]couple.ObjectRef, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.sessions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	out := make([]couple.ObjectRef, len(s.members))
	copy(out, s.members)
	return out, nil
}

// Sessions lists the session names, sorted.
func (f *Facilitator) Sessions() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.sessions))
	for n := range f.sessions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
