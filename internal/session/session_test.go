package session

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

type fixture struct {
	t       *testing.T
	srv     *server.Server
	wg      sync.WaitGroup
	clients []*client.Client
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	f := &fixture{t: t, srv: server.New(server.Options{})}
	t.Cleanup(func() {
		f.srv.Close()
		f.wg.Wait()
	})
	for i := 0; i < n; i++ {
		link := netsim.NewLink(0)
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			f.srv.HandleConn(wire.NewConn(link.B))
		}()
		reg := widget.NewRegistry()
		widget.MustBuild(reg, "/", `textfield pad value=""`)
		cli, err := client.New(link.A, client.Options{
			AppType: "pad", User: "u", Host: "h", Registry: reg,
			RPCTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(cli.Close)
		if err := cli.Declare("/pad"); err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, cli)
	}
	return f
}

func (f *fixture) ref(i int) couple.ObjectRef { return f.clients[i].Ref("/pad") }

func (f *fixture) waitGroupSize(i, others int) {
	f.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(f.clients[i].CO("/pad")) == others {
			return
		}
		time.Sleep(time.Millisecond)
	}
	f.t.Fatalf("client %d group size = %d, want %d", i, len(f.clients[i].CO("/pad")), others)
}

func (f *fixture) typeAt(i int, text string) {
	f.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := f.clients[i].DispatchChecked(&widget.Event{
			Path: "/pad", Name: widget.EventChanged, Args: []attr.Value{attr.String(text)},
		})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			f.t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
}

func (f *fixture) valueAt(i int) string {
	w, err := f.clients[i].Registry().Lookup("/pad")
	if err != nil {
		f.t.Fatal(err)
	}
	return w.Attr(widget.AttrValue).AsString()
}

func (f *fixture) waitValue(i int, want string) {
	f.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if f.valueAt(i) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	f.t.Fatalf("client %d value = %q, want %q", i, f.valueAt(i), want)
}

func TestCreateValidation(t *testing.T) {
	f := newFixture(t, 1)
	fac := NewFacilitator(f.clients[0])
	if err := fac.Create(""); err == nil {
		t.Error("empty name must fail")
	}
	if err := fac.Create("s"); err != nil {
		t.Fatal(err)
	}
	if err := fac.Create("s"); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: %v", err)
	}
	if got := fac.Sessions(); !reflect.DeepEqual(got, []string{"s"}) {
		t.Errorf("Sessions = %v", got)
	}
	if _, err := fac.Members("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Members: %v", err)
	}
	if err := fac.Add("nope", f.ref(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("Add: %v", err)
	}
	if err := fac.Remove("nope", f.ref(0)); !errors.Is(err, ErrNotFound) {
		t.Errorf("Remove: %v", err)
	}
	if err := fac.Dissolve("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Dissolve: %v", err)
	}
}

func TestSessionGrowsAndSynchronizes(t *testing.T) {
	f := newFixture(t, 4)
	fac := NewFacilitator(f.clients[3]) // the facilitator is a third party
	if err := fac.Create("workgroup"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fac.Add("workgroup", f.ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := fac.Add("workgroup", f.ref(0)); !errors.Is(err, ErrMember) {
		t.Errorf("double add: %v", err)
	}
	members, err := fac.Members("workgroup")
	if err != nil || len(members) != 3 {
		t.Fatalf("members = %v, %v", members, err)
	}
	// All three form one coupling group by transitive closure.
	for i := 0; i < 3; i++ {
		f.waitGroupSize(i, 2)
	}
	f.typeAt(1, "session text")
	for i := 0; i < 3; i++ {
		f.waitValue(i, "session text")
	}
	// The facilitator's own pad is untouched.
	if f.valueAt(3) != "" {
		t.Error("facilitator pad must stay private")
	}
}

func TestRemoveMember(t *testing.T) {
	f := newFixture(t, 4)
	fac := NewFacilitator(f.clients[3])
	if err := fac.Create("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fac.Add("g", f.ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.waitGroupSize(2, 2)
	// Remove a non-anchor member.
	if err := fac.Remove("g", f.ref(2)); err != nil {
		t.Fatal(err)
	}
	f.waitGroupSize(0, 1)
	f.waitGroupSize(2, 0)
	if err := fac.Remove("g", f.ref(2)); !errors.Is(err, ErrNotMember) {
		t.Errorf("double remove: %v", err)
	}
	// The survivors still synchronize.
	f.typeAt(0, "still shared")
	f.waitValue(1, "still shared")
	if f.valueAt(2) == "still shared" {
		t.Error("removed member must not receive events")
	}
}

func TestRemoveAnchorReanchors(t *testing.T) {
	f := newFixture(t, 4)
	fac := NewFacilitator(f.clients[3])
	if err := fac.Create("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fac.Add("g", f.ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.waitGroupSize(2, 2)
	// Remove the anchor (member 0): members 1 and 2 must remain one group.
	if err := fac.Remove("g", f.ref(0)); err != nil {
		t.Fatal(err)
	}
	f.waitGroupSize(0, 0)
	f.waitGroupSize(1, 1)
	f.waitGroupSize(2, 1)
	f.typeAt(1, "after reanchor")
	f.waitValue(2, "after reanchor")
	if f.valueAt(0) == "after reanchor" {
		t.Error("removed anchor must not receive events")
	}
	members, _ := fac.Members("g")
	if len(members) != 2 {
		t.Errorf("members = %v", members)
	}
}

func TestDissolve(t *testing.T) {
	f := newFixture(t, 4)
	fac := NewFacilitator(f.clients[3])
	if err := fac.Create("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fac.Add("g", f.ref(i)); err != nil {
			t.Fatal(err)
		}
	}
	f.waitGroupSize(2, 2)
	if err := fac.Dissolve("g"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f.waitGroupSize(i, 0)
	}
	if len(fac.Sessions()) != 0 {
		t.Error("session not forgotten")
	}
	// Objects persist with their last state after dissolution.
	for i := 0; i < 3; i++ {
		if f.clients[i].Registry() == nil {
			t.Error("registry gone")
		}
	}
}

func TestAddWithSyncAlignsLateJoiner(t *testing.T) {
	f := newFixture(t, 3)
	fac := NewFacilitator(f.clients[2])
	if err := fac.Create("g"); err != nil {
		t.Fatal(err)
	}
	if err := fac.Add("g", f.ref(0)); err != nil {
		t.Fatal(err)
	}
	f.typeAt(0, "existing work")
	// The late joiner starts blank; AddWithSync copies the anchor's state
	// before coupling.
	if err := fac.AddWithSync("g", f.ref(1)); err != nil {
		t.Fatal(err)
	}
	f.waitValue(1, "existing work")
	f.waitGroupSize(1, 1)
	// From now on events replicate.
	f.typeAt(0, "and more")
	f.waitValue(1, "and more")
	// AddWithSync into an empty session is just Add.
	if err := fac.Create("empty"); err != nil {
		t.Fatal(err)
	}
	if err := fac.AddWithSync("empty", f.ref(2)); err != nil {
		t.Fatal(err)
	}
	if err := fac.AddWithSync("nope", f.ref(2)); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddWithSync to unknown session: %v", err)
	}
}
