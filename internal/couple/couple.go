// Package couple implements the couple relation of the paper (§3): directed
// couple links between UI objects of (possibly different) application
// instances, and the transitive closure CO(o) that defines which objects a
// given object is synchronized with.
package couple

import (
	"fmt"
	"sort"
	"sync"
)

// InstanceID identifies a registered application instance.
type InstanceID string

// ObjectRef globally identifies a UI object across application instances as
// the pair <instance-id, pathname> (§3).
type ObjectRef struct {
	Instance InstanceID
	Path     string
}

// String renders the reference as instance:path.
func (o ObjectRef) String() string { return string(o.Instance) + ":" + o.Path }

// Less orders references lexicographically (instance, then path).
func (o ObjectRef) Less(p ObjectRef) bool {
	if o.Instance != p.Instance {
		return o.Instance < p.Instance
	}
	return o.Path < p.Path
}

// Link is a directed arc from a source UI object to a destination UI object,
// labeled with the application instance that created it (§3).
type Link struct {
	From, To ObjectRef
	Creator  InstanceID
}

// String renders the link.
func (l Link) String() string {
	return fmt.Sprintf("%s -> %s (by %s)", l.From, l.To, l.Creator)
}

// Graph maintains the couple relation C and answers transitive-closure
// queries. The zero value is not usable; call NewGraph.
//
// Groups are the connected components of the undirected view of C: coupling
// is symmetric in effect ("the link from o2 to o1 is created" at the
// destination) even though links are stored directed with their creator.
type Graph struct {
	mu    sync.RWMutex
	links map[Link]struct{}
	// adj counts undirected edges between pairs, so duplicate links (from
	// different creators) keep the pair connected until all are removed.
	adj map[ObjectRef]map[ObjectRef]int
}

// NewGraph returns an empty couple graph.
func NewGraph() *Graph {
	return &Graph{
		links: make(map[Link]struct{}),
		adj:   make(map[ObjectRef]map[ObjectRef]int),
	}
}

// AddLink inserts a couple link. Inserting an identical link (same source,
// destination and creator) is idempotent. Self-links are rejected. The two
// endpoints' groups merge, implementing "objects already connected to o2 are
// added to the list of targets, and objects already connected to o1 are
// added to the source" (§3.2).
func (g *Graph) AddLink(l Link) error {
	if l.From == l.To {
		return fmt.Errorf("couple: self link %s", l.From)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.links[l]; dup {
		return nil
	}
	g.links[l] = struct{}{}
	g.bump(l.From, l.To, 1)
	g.bump(l.To, l.From, 1)
	return nil
}

// RemoveLink deletes a couple link regardless of creator. It reports whether
// any link was removed. When the removed link was a bridge, the group splits
// into two components.
func (g *Graph) RemoveLink(from, to ObjectRef) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := false
	for l := range g.links {
		if l.From == from && l.To == to {
			delete(g.links, l)
			g.bump(l.From, l.To, -1)
			g.bump(l.To, l.From, -1)
			removed = true
		}
	}
	return removed
}

// RemoveObject deletes every link incident to ref — the automatic decoupling
// applied "when a UI object is destroyed" (§3.2). It returns the removed
// links.
func (g *Graph) RemoveObject(ref ObjectRef) []Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	var removed []Link
	for l := range g.links {
		if l.From == ref || l.To == ref {
			delete(g.links, l)
			g.bump(l.From, l.To, -1)
			g.bump(l.To, l.From, -1)
			removed = append(removed, l)
		}
	}
	sortLinks(removed)
	return removed
}

// RemoveInstance deletes every link incident to any object of the instance —
// the automatic decoupling applied when "an application instance terminates"
// (§3.2). It returns the removed links.
func (g *Graph) RemoveInstance(id InstanceID) []Link {
	g.mu.Lock()
	defer g.mu.Unlock()
	var removed []Link
	for l := range g.links {
		if l.From.Instance == id || l.To.Instance == id {
			delete(g.links, l)
			g.bump(l.From, l.To, -1)
			g.bump(l.To, l.From, -1)
			removed = append(removed, l)
		}
	}
	sortLinks(removed)
	return removed
}

func (g *Graph) bump(a, b ObjectRef, delta int) {
	m := g.adj[a]
	if m == nil {
		if delta <= 0 {
			return
		}
		m = make(map[ObjectRef]int)
		g.adj[a] = m
	}
	m[b] += delta
	if m[b] <= 0 {
		delete(m, b)
		if len(m) == 0 {
			delete(g.adj, a)
		}
	}
}

// CO returns the set of UI objects coupled with o — the transitive closure
// of the couple relation, excluding o itself — in deterministic order.
func (g *Graph) CO(o ObjectRef) []ObjectRef {
	members := g.Group(o)
	out := members[:0]
	for _, m := range members {
		if m != o {
			out = append(out, m)
		}
	}
	return out
}

// Group returns the coupling group containing o (o's connected component,
// including o) in deterministic order. An uncoupled object's group is just
// itself.
func (g *Graph) Group(o ObjectRef) []ObjectRef {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[ObjectRef]bool{o: true}
	queue := []ObjectRef{o}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for next := range g.adj[cur] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	out := make([]ObjectRef, 0, len(seen))
	for ref := range seen {
		out = append(out, ref)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Coupled reports whether o participates in any couple link.
func (g *Graph) Coupled(o ObjectRef) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.adj[o]) > 0
}

// Links returns all current links in deterministic order.
func (g *Graph) Links() []Link {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Link, 0, len(g.links))
	for l := range g.links {
		out = append(out, l)
	}
	sortLinks(out)
	return out
}

// LinksOf returns the links incident to o in deterministic order.
func (g *Graph) LinksOf(o ObjectRef) []Link {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Link
	for l := range g.links {
		if l.From == o || l.To == o {
			out = append(out, l)
		}
	}
	sortLinks(out)
	return out
}

// InstanceLinks returns the links incident to any object of the instance in
// deterministic order — exactly the set RemoveInstance would remove — without
// removing them. Callers use it to snapshot the affected groups before the
// removal actually splits them.
func (g *Graph) InstanceLinks(id InstanceID) []Link {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Link
	for l := range g.links {
		if l.From.Instance == id || l.To.Instance == id {
			out = append(out, l)
		}
	}
	sortLinks(out)
	return out
}

// Groups returns every coupling group with at least two members, in
// deterministic order.
func (g *Graph) Groups() [][]ObjectRef {
	g.mu.RLock()
	objs := make([]ObjectRef, 0, len(g.adj))
	for o := range g.adj {
		objs = append(objs, o)
	}
	g.mu.RUnlock()
	sort.Slice(objs, func(i, j int) bool { return objs[i].Less(objs[j]) })
	var groups [][]ObjectRef
	seen := make(map[ObjectRef]bool)
	for _, o := range objs {
		if seen[o] {
			continue
		}
		grp := g.Group(o)
		for _, m := range grp {
			seen[m] = true
		}
		if len(grp) > 1 {
			groups = append(groups, grp)
		}
	}
	return groups
}

// Len returns the number of links.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.links)
}

func sortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].From != ls[j].From {
			return ls[i].From.Less(ls[j].From)
		}
		if ls[i].To != ls[j].To {
			return ls[i].To.Less(ls[j].To)
		}
		return ls[i].Creator < ls[j].Creator
	})
}
