package couple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refModel is a brute-force oracle for the couple graph: it stores edges in
// a set and computes groups with Warshall's transitive closure over the
// symmetric relation.
type refModel struct {
	objs  []ObjectRef
	edges map[[2]ObjectRef]int
}

func newRefModel(objs []ObjectRef) *refModel {
	return &refModel{objs: objs, edges: make(map[[2]ObjectRef]int)}
}

func (m *refModel) add(a, b ObjectRef) {
	m.edges[[2]ObjectRef{a, b}]++
}

func (m *refModel) removeAll(a, b ObjectRef) bool {
	k := [2]ObjectRef{a, b}
	had := m.edges[k] > 0
	delete(m.edges, k)
	return had
}

func (m *refModel) removeObject(o ObjectRef) {
	for k := range m.edges {
		if k[0] == o || k[1] == o {
			delete(m.edges, k)
		}
	}
}

func (m *refModel) removeInstance(id InstanceID) {
	for k := range m.edges {
		if k[0].Instance == id || k[1].Instance == id {
			delete(m.edges, k)
		}
	}
}

// co computes the closure from o by Warshall over the symmetric adjacency.
func (m *refModel) co(o ObjectRef) []ObjectRef {
	idx := map[ObjectRef]int{}
	for i, obj := range m.objs {
		idx[obj] = i
	}
	n := len(m.objs)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
		adj[i][i] = true
	}
	for k, count := range m.edges {
		if count <= 0 {
			continue
		}
		i, j := idx[k[0]], idx[k[1]]
		adj[i][j], adj[j][i] = true, true
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !adj[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if adj[k][j] {
					adj[i][j] = true
				}
			}
		}
	}
	var out []ObjectRef
	oi := idx[o]
	for j, obj := range m.objs {
		if j != oi && adj[oi][j] {
			out = append(out, obj)
		}
	}
	return out
}

// TestPropGraphMatchesReferenceModel drives the real graph and the oracle
// with the same random operation sequence and compares CO(o) for every
// object after every step.
func TestPropGraphMatchesReferenceModel(t *testing.T) {
	objs := make([]ObjectRef, 0, 9)
	for i := 0; i < 3; i++ {
		for p := 0; p < 3; p++ {
			objs = append(objs, ObjectRef{
				Instance: InstanceID(rune('A' + i)),
				Path:     "/" + string(rune('a'+p)),
			})
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		ref := newRefModel(objs)
		for step := 0; step < 30; step++ {
			switch r.Intn(5) {
			case 0, 1: // add link (biased toward adds)
				a, b := objs[r.Intn(len(objs))], objs[r.Intn(len(objs))]
				if a == b {
					continue
				}
				if err := g.AddLink(Link{From: a, To: b, Creator: a.Instance}); err == nil {
					ref.add(a, b)
				}
			case 2: // remove link
				a, b := objs[r.Intn(len(objs))], objs[r.Intn(len(objs))]
				got := g.RemoveLink(a, b)
				want := ref.removeAll(a, b)
				if got != want {
					t.Logf("seed %d step %d: RemoveLink(%v,%v) = %v, oracle %v", seed, step, a, b, got, want)
					return false
				}
			case 3: // remove object
				o := objs[r.Intn(len(objs))]
				g.RemoveObject(o)
				ref.removeObject(o)
			case 4: // remove instance
				id := InstanceID(rune('A' + r.Intn(3)))
				g.RemoveInstance(id)
				ref.removeInstance(id)
			}
			for _, o := range objs {
				got := g.CO(o)
				want := ref.co(o)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Logf("seed %d step %d: CO(%v) = %v, oracle %v", seed, step, o, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
