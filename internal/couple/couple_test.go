package couple

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func ref(inst, path string) ObjectRef {
	return ObjectRef{Instance: InstanceID(inst), Path: path}
}

func TestAddLinkAndCO(t *testing.T) {
	g := NewGraph()
	a, b, c := ref("i1", "/x"), ref("i2", "/y"), ref("i3", "/z")
	if err := g.AddLink(Link{From: a, To: b, Creator: "i1"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: b, To: c, Creator: "i2"}); err != nil {
		t.Fatal(err)
	}
	// Transitive closure: a is coupled with c through b.
	if got := g.CO(a); !reflect.DeepEqual(got, []ObjectRef{b, c}) {
		t.Errorf("CO(a) = %v", got)
	}
	if got := g.CO(c); !reflect.DeepEqual(got, []ObjectRef{a, b}) {
		t.Errorf("CO(c) = %v", got)
	}
	if got := g.Group(b); len(got) != 3 {
		t.Errorf("Group(b) = %v", got)
	}
	if !g.Coupled(a) || g.Coupled(ref("i9", "/none")) {
		t.Error("Coupled wrong")
	}
	if g.Len() != 2 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestSelfLinkRejected(t *testing.T) {
	g := NewGraph()
	a := ref("i1", "/x")
	if err := g.AddLink(Link{From: a, To: a, Creator: "i1"}); err == nil {
		t.Error("self link must fail")
	}
}

func TestDuplicateLinkIdempotent(t *testing.T) {
	g := NewGraph()
	a, b := ref("i1", "/x"), ref("i2", "/y")
	l := Link{From: a, To: b, Creator: "i1"}
	if err := g.AddLink(l); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(l); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	g.RemoveLink(a, b)
	if g.Coupled(a) {
		t.Error("still coupled after removal")
	}
}

func TestParallelLinksDifferentCreators(t *testing.T) {
	g := NewGraph()
	a, b := ref("i1", "/x"), ref("i2", "/y")
	if err := g.AddLink(Link{From: a, To: b, Creator: "i1"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(Link{From: a, To: b, Creator: "i3"}); err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
	// RemoveLink removes both directed a->b links.
	if !g.RemoveLink(a, b) {
		t.Fatal("RemoveLink reported nothing removed")
	}
	if g.Coupled(a) || g.Coupled(b) {
		t.Error("objects still coupled")
	}
}

func TestDecouplingSplitsGroup(t *testing.T) {
	g := NewGraph()
	a, b, c := ref("i1", "/a"), ref("i2", "/b"), ref("i3", "/c")
	g.AddLink(Link{From: a, To: b, Creator: "i1"})
	g.AddLink(Link{From: b, To: c, Creator: "i1"})
	if !g.RemoveLink(b, c) {
		t.Fatal("remove failed")
	}
	if got := g.CO(a); !reflect.DeepEqual(got, []ObjectRef{b}) {
		t.Errorf("CO(a) = %v", got)
	}
	if got := g.CO(c); len(got) != 0 {
		t.Errorf("CO(c) = %v, want empty", got)
	}
	// Objects do not cease to exist when decoupled — the graph simply no
	// longer relates them (paper contrast with shared window systems).
	if g.RemoveLink(b, c) {
		t.Error("second removal must report false")
	}
}

func TestRemoveObject(t *testing.T) {
	g := NewGraph()
	a, b, c := ref("i1", "/a"), ref("i2", "/b"), ref("i3", "/c")
	g.AddLink(Link{From: a, To: b, Creator: "i1"})
	g.AddLink(Link{From: b, To: c, Creator: "i2"})
	removed := g.RemoveObject(b)
	if len(removed) != 2 {
		t.Fatalf("removed %d links, want 2", len(removed))
	}
	if g.Coupled(a) || g.Coupled(c) {
		t.Error("neighbors must be uncoupled")
	}
	if g.Len() != 0 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestRemoveInstance(t *testing.T) {
	g := NewGraph()
	a1, a2 := ref("gone", "/a"), ref("gone", "/b")
	b, c := ref("i2", "/x"), ref("i3", "/y")
	g.AddLink(Link{From: a1, To: b, Creator: "gone"})
	g.AddLink(Link{From: a2, To: c, Creator: "i3"})
	g.AddLink(Link{From: b, To: c, Creator: "i2"})
	removed := g.RemoveInstance("gone")
	if len(removed) != 2 {
		t.Fatalf("removed %d links, want 2", len(removed))
	}
	// The b—c link survives.
	if got := g.CO(b); !reflect.DeepEqual(got, []ObjectRef{c}) {
		t.Errorf("CO(b) = %v", got)
	}
}

func TestLinksAndLinksOf(t *testing.T) {
	g := NewGraph()
	a, b, c := ref("i1", "/a"), ref("i2", "/b"), ref("i3", "/c")
	l1 := Link{From: b, To: a, Creator: "i2"}
	l2 := Link{From: a, To: c, Creator: "i1"}
	g.AddLink(l1)
	g.AddLink(l2)
	if got := g.Links(); !reflect.DeepEqual(got, []Link{l2, l1}) {
		t.Errorf("Links = %v", got)
	}
	if got := g.LinksOf(c); !reflect.DeepEqual(got, []Link{l2}) {
		t.Errorf("LinksOf(c) = %v", got)
	}
}

func TestGroups(t *testing.T) {
	g := NewGraph()
	g.AddLink(Link{From: ref("i1", "/a"), To: ref("i2", "/b"), Creator: "i1"})
	g.AddLink(Link{From: ref("i3", "/c"), To: ref("i4", "/d"), Creator: "i3"})
	g.AddLink(Link{From: ref("i4", "/d"), To: ref("i5", "/e"), Creator: "i3"})
	groups := g.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if len(groups[0]) != 2 || len(groups[1]) != 3 {
		t.Errorf("group sizes = %d, %d", len(groups[0]), len(groups[1]))
	}
}

func TestObjectRefString(t *testing.T) {
	if got := ref("i1", "/a/b").String(); got != "i1:/a/b" {
		t.Errorf("String = %q", got)
	}
	l := Link{From: ref("i1", "/a"), To: ref("i2", "/b"), Creator: "i1"}
	if got := l.String(); got != "i1:/a -> i2:/b (by i1)" {
		t.Errorf("Link.String = %q", got)
	}
}

// Property: group membership is symmetric and reflexive-closed — for any
// random link set, b ∈ Group(a) iff a ∈ Group(b), and every member of
// Group(a) has the same group.
func TestPropGroupConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		objs := make([]ObjectRef, 8)
		for i := range objs {
			objs[i] = ref(string(rune('A'+i%4)), "/"+string(rune('a'+i)))
		}
		for i, n := 0, r.Intn(12); i < n; i++ {
			a, b := objs[r.Intn(len(objs))], objs[r.Intn(len(objs))]
			if a != b {
				g.AddLink(Link{From: a, To: b, Creator: a.Instance})
			}
		}
		for _, o := range objs {
			grp := g.Group(o)
			for _, m := range grp {
				if !reflect.DeepEqual(g.Group(m), grp) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: adding then removing the same links leaves the graph empty.
func TestPropAddRemoveInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph()
		var links []Link
		for i, n := 0, r.Intn(10)+1; i < n; i++ {
			a := ref(string(rune('A'+r.Intn(3))), "/"+string(rune('a'+r.Intn(5))))
			b := ref(string(rune('A'+r.Intn(3))), "/"+string(rune('a'+r.Intn(5))))
			if a == b {
				continue
			}
			l := Link{From: a, To: b, Creator: a.Instance}
			if g.AddLink(l) == nil {
				links = append(links, l)
			}
		}
		for _, l := range links {
			g.RemoveLink(l.From, l.To)
		}
		return g.Len() == 0 && len(g.Groups()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCOChain(b *testing.B) {
	g := NewGraph()
	const n = 100
	for i := 0; i < n-1; i++ {
		g.AddLink(Link{
			From:    ref("i", string(rune('a'+i%26))+string(rune('0'+i/26))),
			To:      ref("i", string(rune('a'+(i+1)%26))+string(rune('0'+(i+1)/26))),
			Creator: "i",
		})
	}
	start := ref("i", "a0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := g.CO(start); len(got) != n-1 {
			b.Fatalf("CO = %d members", len(got))
		}
	}
}
