// Package perm implements the server's access-permission database (§2.1):
// "Access permissions are three-valued tuples with user ID, UI state
// identifier, and access right category."
package perm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Right is an access-right category.
type Right uint8

// Access-right categories. A right covers the operations of the coupling
// protocol that read, overwrite, or serialize the named UI state.
const (
	// RightView allows reading an object's state (CopyFrom by others).
	RightView Right = iota + 1
	// RightCopy allows overwriting an object's state (CopyTo by others).
	RightCopy
	// RightCouple allows establishing couple links to the object.
	RightCouple
	// RightControl allows remote operations (RemoteCouple, RemoteCopy,
	// undo/redo) on the object.
	RightControl
)

var rightNames = map[Right]string{
	RightView:    "view",
	RightCopy:    "copy",
	RightCouple:  "couple",
	RightControl: "control",
}

// String returns the right's lower-case name.
func (r Right) String() string {
	if s, ok := rightNames[r]; ok {
		return s
	}
	return fmt.Sprintf("right(%d)", uint8(r))
}

// Rule is one permission tuple. User and State may end in "*" to match any
// suffix; the bare "*" matches everything.
type Rule struct {
	// User is the user ID the rule applies to.
	User string
	// State identifies UI states as instance:path patterns.
	State string
	// Right is the granted category.
	Right Right
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("(%s, %s, %s)", r.User, r.State, r.Right)
}

// Table is the permission database. A table with no rules at all is open
// (every check passes): permissions are an opt-in restriction, matching the
// paper's training scenario where the default is free coupling and the
// teacher restricts as needed. As soon as one rule exists, checks are
// default-deny. The zero value is not usable; call NewTable.
type Table struct {
	mu    sync.RWMutex
	rules []Rule
}

// NewTable returns an empty (open) permission table.
func NewTable() *Table { return &Table{} }

// Grant adds a rule. Duplicate rules are ignored.
func (t *Table) Grant(r Rule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, existing := range t.rules {
		if existing == r {
			return
		}
	}
	t.rules = append(t.rules, r)
}

// Revoke removes every rule equal to r, reporting whether any was removed.
func (t *Table) Revoke(r Rule) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.rules[:0]
	removed := false
	for _, existing := range t.rules {
		if existing == r {
			removed = true
			continue
		}
		kept = append(kept, existing)
	}
	t.rules = kept
	return removed
}

// Allowed reports whether user holds the right on the state identifier.
// An empty table allows everything.
func (t *Table) Allowed(user, state string, right Right) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.rules) == 0 {
		return true
	}
	for _, r := range t.rules {
		if r.Right == right && matchPattern(r.User, user) && matchPattern(r.State, state) {
			return true
		}
	}
	return false
}

// Rules returns a deterministic copy of the rule list.
func (t *Table) Rules() []Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Rule, len(t.rules))
	copy(out, t.rules)
	sort.Slice(out, func(i, j int) bool {
		if out[i].User != out[j].User {
			return out[i].User < out[j].User
		}
		if out[i].State != out[j].State {
			return out[i].State < out[j].State
		}
		return out[i].Right < out[j].Right
	})
	return out
}

// Len returns the number of rules.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rules)
}

// matchPattern matches s against pattern, where a trailing '*' in pattern
// matches any suffix.
func matchPattern(pattern, s string) bool {
	if strings.HasSuffix(pattern, "*") {
		return strings.HasPrefix(s, pattern[:len(pattern)-1])
	}
	return pattern == s
}
