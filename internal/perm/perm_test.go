package perm

import (
	"testing"
)

func TestEmptyTableIsOpen(t *testing.T) {
	tbl := NewTable()
	if !tbl.Allowed("anyone", "i1:/x", RightCopy) {
		t.Error("empty table must allow everything")
	}
}

func TestDefaultDenyWithRules(t *testing.T) {
	tbl := NewTable()
	tbl.Grant(Rule{User: "teacher", State: "student1:/exercise", Right: RightView})
	if !tbl.Allowed("teacher", "student1:/exercise", RightView) {
		t.Error("granted rule must allow")
	}
	if tbl.Allowed("teacher", "student1:/exercise", RightCopy) {
		t.Error("other right must be denied")
	}
	if tbl.Allowed("student2", "student1:/exercise", RightView) {
		t.Error("other user must be denied")
	}
	if tbl.Allowed("teacher", "student1:/other", RightView) {
		t.Error("other state must be denied")
	}
}

func TestWildcards(t *testing.T) {
	tbl := NewTable()
	tbl.Grant(Rule{User: "teacher", State: "student1:*", Right: RightCouple})
	tbl.Grant(Rule{User: "*", State: "board:/public*", Right: RightView})
	if !tbl.Allowed("teacher", "student1:/any/path", RightCouple) {
		t.Error("state prefix wildcard failed")
	}
	if tbl.Allowed("teacher", "student2:/any", RightCouple) {
		t.Error("wildcard leaked across instances")
	}
	if !tbl.Allowed("whoever", "board:/public/slide1", RightView) {
		t.Error("user wildcard failed")
	}
	if tbl.Allowed("whoever", "board:/private", RightView) {
		t.Error("pattern matched wrong path")
	}
}

func TestGrantDuplicateAndRevoke(t *testing.T) {
	tbl := NewTable()
	r := Rule{User: "u", State: "i:/x", Right: RightControl}
	tbl.Grant(r)
	tbl.Grant(r)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
	if !tbl.Revoke(r) {
		t.Error("Revoke must report removal")
	}
	if tbl.Revoke(r) {
		t.Error("second Revoke must report false")
	}
	// Table is empty again — back to open.
	if !tbl.Allowed("other", "i:/y", RightView) {
		t.Error("empty table must be open again")
	}
}

func TestRulesSorted(t *testing.T) {
	tbl := NewTable()
	tbl.Grant(Rule{User: "b", State: "s", Right: RightView})
	tbl.Grant(Rule{User: "a", State: "s", Right: RightCopy})
	tbl.Grant(Rule{User: "a", State: "s", Right: RightView})
	rules := tbl.Rules()
	if len(rules) != 3 || rules[0].User != "a" || rules[0].Right != RightView || rules[2].User != "b" {
		t.Errorf("Rules = %v", rules)
	}
}

func TestRightString(t *testing.T) {
	cases := map[Right]string{
		RightView:    "view",
		RightCopy:    "copy",
		RightCouple:  "couple",
		RightControl: "control",
		Right(42):    "right(42)",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	rule := Rule{User: "u", State: "i:/x", Right: RightCopy}
	if got := rule.String(); got != "(u, i:/x, copy)" {
		t.Errorf("Rule.String = %q", got)
	}
}
