package widget

import (
	"encoding/binary"
	"fmt"
	"strings"

	"cosoft/internal/attr"
)

// TreeState is the serializable state of a complex UI object: the class,
// name and attributes of the root plus the states of all children in order.
// It is what RemoteCopy and destructive merging transfer between instances.
type TreeState struct {
	Class    string
	Name     string
	Attrs    attr.Set
	Children []TreeState
}

// CaptureTree records the state of the subtree rooted at path. When
// relevantOnly is true, only each class's relevant attributes are captured
// (the normal coupling projection); otherwise the full attribute sets are
// captured (used by the historical-state database).
func (r *Registry) CaptureTree(path string, relevantOnly bool) (TreeState, error) {
	w, err := r.Lookup(path)
	if err != nil {
		return TreeState{}, err
	}
	return captureWidget(w, relevantOnly), nil
}

func captureWidget(w *Widget, relevantOnly bool) TreeState {
	var attrs attr.Set
	if relevantOnly {
		attrs = w.RelevantState()
	} else {
		attrs = w.State()
	}
	ts := TreeState{Class: w.Class().Name, Name: w.Name(), Attrs: attrs}
	for _, c := range w.Children() {
		ts.Children = append(ts.Children, captureWidget(c, relevantOnly))
	}
	return ts
}

// BuildTree instantiates the tree state as a new subtree under parentPath.
// The created root keeps ts.Name unless name overrides it.
func (r *Registry) BuildTree(parentPath, name string, ts TreeState) (*Widget, error) {
	if name == "" {
		name = ts.Name
	}
	w, err := r.Create(parentPath, name, ts.Class, ts.Attrs)
	if err != nil {
		return nil, err
	}
	for _, c := range ts.Children {
		if _, err := r.BuildTree(w.Path(), "", c); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// CountNodes returns the number of widgets described by the tree state.
func (ts TreeState) CountNodes() int {
	n := 1
	for _, c := range ts.Children {
		n += c.CountNodes()
	}
	return n
}

// Equal reports deep equality of two tree states.
func (ts TreeState) Equal(o TreeState) bool {
	if ts.Class != o.Class || ts.Name != o.Name || !ts.Attrs.Equal(o.Attrs) ||
		len(ts.Children) != len(o.Children) {
		return false
	}
	for i := range ts.Children {
		if !ts.Children[i].Equal(o.Children[i]) {
			return false
		}
	}
	return true
}

// String renders the tree state as an indented outline.
func (ts TreeState) String() string {
	var b strings.Builder
	ts.write(&b, 0)
	return b.String()
}

func (ts TreeState) write(b *strings.Builder, depth int) {
	fmt.Fprintf(b, "%s%s %s %s\n", strings.Repeat("  ", depth), ts.Class, ts.Name, ts.Attrs)
	for _, c := range ts.Children {
		c.write(b, depth+1)
	}
}

const maxTreeChildren = 1 << 16

// AppendTreeState appends the binary encoding of a tree state.
func AppendTreeState(buf []byte, ts TreeState) []byte {
	buf = appendString(buf, ts.Class)
	buf = appendString(buf, ts.Name)
	buf = attr.AppendSet(buf, ts.Attrs)
	buf = binary.AppendUvarint(buf, uint64(len(ts.Children)))
	for _, c := range ts.Children {
		buf = AppendTreeState(buf, c)
	}
	return buf
}

// DecodeTreeState decodes a tree state, returning it and the remaining
// bytes.
func DecodeTreeState(buf []byte) (TreeState, []byte, error) {
	var ts TreeState
	var err error
	ts.Class, buf, err = decodeString(buf)
	if err != nil {
		return ts, nil, err
	}
	ts.Name, buf, err = decodeString(buf)
	if err != nil {
		return ts, nil, err
	}
	ts.Attrs, buf, err = attr.DecodeSet(buf)
	if err != nil {
		return ts, nil, err
	}
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > maxTreeChildren {
		return ts, nil, fmt.Errorf("%w: bad child count", attr.ErrCorrupt)
	}
	buf = buf[sz:]
	for i := uint64(0); i < n; i++ {
		var c TreeState
		c, buf, err = DecodeTreeState(buf)
		if err != nil {
			return ts, nil, err
		}
		ts.Children = append(ts.Children, c)
	}
	return ts, buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func decodeString(buf []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > 1<<24 || uint64(len(buf)-sz) < n {
		return "", nil, fmt.Errorf("%w: bad string", attr.ErrCorrupt)
	}
	return string(buf[sz : sz+int(n)]), buf[sz+int(n):], nil
}
