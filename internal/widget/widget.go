package widget

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cosoft/internal/attr"
)

// Errors returned by registry operations.
var (
	ErrNotFound  = errors.New("widget: object not found")
	ErrDestroyed = errors.New("widget: object destroyed")
	ErrDisabled  = errors.New("widget: object disabled")
)

// Callback is an application handler attached to a widget event. Handlers
// run on the dispatching goroutine, matching the single UI thread of the
// original toolkit.
type Callback func(e *Event)

// Event is a high-level callback event occurring on a UI object, the unit of
// synchronization-by-action: "most events are high-level callback events of
// UI objects" (§3.2).
type Event struct {
	// Path is the hierarchical pathname of the object the event occurred on.
	Path string
	// Name is the event name (EventActivate, EventChanged, ...).
	Name string
	// Args carries the event parameters that are "packed with the event"
	// when it is sent to the server.
	Args []attr.Value
	// Remote marks events that were received from the coupling server and
	// are being re-executed locally; applications can use it to avoid
	// loops or to render remote actions differently (congruence relaxation).
	Remote bool
}

// String renders the event for logs and transcripts.
func (e *Event) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	tag := ""
	if e.Remote {
		tag = " (remote)"
	}
	return fmt.Sprintf("%s!%s(%s)%s", e.Path, e.Name, strings.Join(parts, ", "), tag)
}

// Widget is a primitive UI object: an instance of a Class, a node in the
// widget tree, and a carrier of attribute state and callbacks.
type Widget struct {
	reg      *Registry
	class    *Class
	name     string
	path     string
	parent   *Widget
	children []*Widget
	attrs    attr.Set
	cbs      map[string][]Callback
	disabled bool
	dead     bool
}

// Class returns the widget's class definition.
func (w *Widget) Class() *Class { return w.class }

// Name returns the widget's name within its parent.
func (w *Widget) Name() string { return w.name }

// Path returns the hierarchical pathname, e.g. "/query/ok".
func (w *Widget) Path() string { return w.path }

// Parent returns the parent widget; nil for the root.
func (w *Widget) Parent() *Widget { return w.parent }

// Attr returns the current value of the named attribute.
func (w *Widget) Attr(name string) attr.Value {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	return w.attrs.Get(name)
}

// SetAttr sets the named attribute, firing the registry's attribute-change
// hook.
func (w *Widget) SetAttr(name string, v attr.Value) {
	w.reg.mu.Lock()
	w.setAttr(name, v)
	w.reg.mu.Unlock()
	w.reg.flushNotifications()
}

// setAttr must be called with the registry lock held (feedback funcs run
// under Dispatch, which holds it). Change notifications are queued and
// delivered after the lock is released, so hooks may freely manipulate
// other widgets.
func (w *Widget) setAttr(name string, v attr.Value) {
	old := w.attrs.Get(name)
	if old.Equal(v) {
		return
	}
	w.attrs.Put(name, v)
	if w.reg.onAttrChange != nil {
		w.reg.pending = append(w.reg.pending, attrChange{w: w, name: name, old: old, new: v})
	}
}

// State returns a deep copy of the full attribute set.
func (w *Widget) State() attr.Set {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	return w.attrs.Clone()
}

// RelevantState returns the attribute set projected to the class's relevant
// attributes — the portion transferred by CopyTo/CopyFrom.
func (w *Widget) RelevantState() attr.Set {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	return w.attrs.Project(w.class.Relevant)
}

// ApplyState merges the given attributes into the widget (used when a
// UI-state copy arrives).
func (w *Widget) ApplyState(s attr.Set) {
	w.reg.mu.Lock()
	for _, n := range s.Names() {
		w.setAttr(n, s.Get(n))
	}
	w.reg.mu.Unlock()
	w.reg.flushNotifications()
}

// AddCallback attaches a handler for the named event.
func (w *Widget) AddCallback(event string, cb Callback) error {
	if !w.class.EmitsEvent(event) {
		return fmt.Errorf("widget: class %q does not emit %q", w.class.Name, event)
	}
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	if w.cbs == nil {
		w.cbs = make(map[string][]Callback)
	}
	w.cbs[event] = append(w.cbs[event], cb)
	return nil
}

// Children returns the widget's children in creation order.
func (w *Widget) Children() []*Widget {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	cp := make([]*Widget, len(w.children))
	copy(cp, w.children)
	return cp
}

// Child returns the named child, or nil.
func (w *Widget) Child(name string) *Widget {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	for _, c := range w.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Disabled reports whether the widget is currently disabled (locked by the
// floor-control mechanism).
func (w *Widget) Disabled() bool {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	return w.disabled
}

// SetDisabled enables or disables the widget. Events on disabled objects are
// rejected: "Actions on locked objects are disabled" (§3.2).
func (w *Widget) SetDisabled(d bool) {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	w.disabled = d
}

// Destroyed reports whether the widget has been destroyed.
func (w *Widget) Destroyed() bool {
	w.reg.mu.Lock()
	defer w.reg.mu.Unlock()
	return w.dead
}

// Registry holds the widget tree of one application instance. UI objects in
// an application instance are organized as a tree along the parent/child
// relationship, addressed by hierarchical pathnames (§3).
type Registry struct {
	mu      sync.Mutex
	classes *ClassRegistry
	root    *Widget
	byPath  map[string]*Widget

	onAttrChange func(w *Widget, name string, old, new attr.Value)
	onCreate     func(w *Widget)
	onDestroy    func(w *Widget)
	onEvent      func(e *Event) // pre-dispatch interception (coupling hook)

	// pending holds queued attribute-change notifications; notifying marks
	// an active flush so re-entrant mutations drain through the outer one.
	pending   []attrChange
	notifying bool
}

// attrChange is one queued attribute-change notification.
type attrChange struct {
	w        *Widget
	name     string
	old, new attr.Value
}

// flushNotifications delivers queued attribute-change notifications. It must
// be called WITHOUT the registry lock held. Hooks run outside the lock and
// may mutate widgets; resulting notifications drain in the same flush.
func (r *Registry) flushNotifications() {
	r.mu.Lock()
	if r.notifying {
		r.mu.Unlock()
		return
	}
	r.notifying = true
	for len(r.pending) > 0 {
		c := r.pending[0]
		r.pending = r.pending[1:]
		h := r.onAttrChange
		r.mu.Unlock()
		if h != nil {
			h(c.w, c.name, c.old, c.new)
		}
		r.mu.Lock()
	}
	r.notifying = false
	r.mu.Unlock()
}

// NewRegistry returns a registry with a root form widget at "/" using the
// standard class set.
func NewRegistry() *Registry {
	return NewRegistryWithClasses(NewClassRegistry())
}

// NewRegistryWithClasses returns a registry using the given class registry.
func NewRegistryWithClasses(classes *ClassRegistry) *Registry {
	r := &Registry{classes: classes, byPath: make(map[string]*Widget)}
	rootClass, err := classes.Lookup("form")
	if err != nil {
		panic("widget: standard class set lacks form: " + err.Error())
	}
	r.root = &Widget{reg: r, class: rootClass, name: "", path: "/", attrs: rootClass.Defaults.Clone()}
	r.byPath["/"] = r.root
	return r
}

// Classes returns the class registry in use.
func (r *Registry) Classes() *ClassRegistry { return r.classes }

// Root returns the root widget.
func (r *Registry) Root() *Widget { return r.root }

// OnAttrChange installs the attribute-change hook (one per registry).
func (r *Registry) OnAttrChange(h func(w *Widget, name string, old, new attr.Value)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onAttrChange = h
}

// OnCreate installs the widget-creation hook.
func (r *Registry) OnCreate(h func(w *Widget)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onCreate = h
}

// OnDestroy installs the widget-destruction hook. It fires once per
// destroyed widget, leaves first.
func (r *Registry) OnDestroy(h func(w *Widget)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onDestroy = h
}

// OnEvent installs the event-interception hook. When set, Dispatch routes
// every event through it *instead of* local processing; the hook decides
// whether to call Deliver (the coupling extension point). Hooks set by the
// coupling client make the toolkit multi-user without changing applications.
func (r *Registry) OnEvent(h func(e *Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvent = h
}

// JoinPath joins a parent path and a child name.
func JoinPath(parent, name string) string {
	if parent == "/" {
		return "/" + name
	}
	return parent + "/" + name
}

// ValidName reports whether s is a legal widget name (non-empty, no '/').
func ValidName(s string) bool {
	return s != "" && !strings.ContainsRune(s, '/')
}

// Create makes a new widget under the parent path. Attribute overrides are
// merged over the class defaults.
func (r *Registry) Create(parentPath, name, className string, overrides attr.Set) (*Widget, error) {
	class, err := r.classes.Lookup(className)
	if err != nil {
		return nil, err
	}
	if !ValidName(name) {
		return nil, fmt.Errorf("widget: invalid name %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	parent, ok := r.byPath[parentPath]
	if !ok {
		return nil, fmt.Errorf("%w: parent %q", ErrNotFound, parentPath)
	}
	if !parent.class.Container {
		return nil, fmt.Errorf("widget: class %q cannot contain children", parent.class.Name)
	}
	path := JoinPath(parentPath, name)
	if _, exists := r.byPath[path]; exists {
		return nil, fmt.Errorf("widget: %q already exists", path)
	}
	attrs := class.Defaults.Clone()
	attrs.Merge(overrides)
	w := &Widget{reg: r, class: class, name: name, path: path, parent: parent, attrs: attrs}
	parent.children = append(parent.children, w)
	r.byPath[path] = w
	hook := r.onCreate
	r.mu.Unlock()
	if hook != nil {
		hook(w)
	}
	r.mu.Lock()
	return w, nil
}

// MustCreate is Create for static UI construction; it panics on error.
func (r *Registry) MustCreate(parentPath, name, className string, overrides attr.Set) *Widget {
	w, err := r.Create(parentPath, name, className, overrides)
	if err != nil {
		panic(err)
	}
	return w
}

// Destroy removes the widget at path and its entire subtree. The destroy
// hook fires for every removed widget, leaves first — the coupling client
// uses it to apply the automatic decoupling of destroyed objects (§3.2).
func (r *Registry) Destroy(path string) error {
	r.mu.Lock()
	w, ok := r.byPath[path]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if w == r.root {
		r.mu.Unlock()
		return errors.New("widget: cannot destroy root")
	}
	var removed []*Widget
	var collect func(*Widget)
	collect = func(x *Widget) {
		for _, c := range x.children {
			collect(c)
		}
		removed = append(removed, x) // leaves first
	}
	collect(w)
	for _, x := range removed {
		x.dead = true
		delete(r.byPath, x.path)
	}
	// Unlink from parent.
	p := w.parent
	for i, c := range p.children {
		if c == w {
			p.children = append(p.children[:i], p.children[i+1:]...)
			break
		}
	}
	hook := r.onDestroy
	r.mu.Unlock()
	if hook != nil {
		for _, x := range removed {
			hook(x)
		}
	}
	return nil
}

// Lookup returns the widget at path.
func (r *Registry) Lookup(path string) (*Widget, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.byPath[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	return w, nil
}

// Paths returns all live pathnames, sorted.
func (r *Registry) Paths() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	paths := make([]string, 0, len(r.byPath))
	for p := range r.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Walk visits the subtree rooted at path in depth-first pre-order.
func (r *Registry) Walk(path string, fn func(w *Widget) error) error {
	w, err := r.Lookup(path)
	if err != nil {
		return err
	}
	return walk(w, fn)
}

func walk(w *Widget, fn func(w *Widget) error) error {
	if err := fn(w); err != nil {
		return err
	}
	for _, c := range w.Children() {
		if err := walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// Dispatch processes an event as if the user performed it: when an
// interception hook is installed (the multi-user extension) the event is
// handed to the hook; otherwise it is delivered locally.
func (r *Registry) Dispatch(e *Event) error {
	r.mu.Lock()
	hook := r.onEvent
	r.mu.Unlock()
	if hook != nil && !e.Remote {
		hook(e)
		return nil
	}
	_, err := r.Deliver(e)
	return err
}

// Deliver applies the event's built-in feedback and runs its callbacks
// locally, returning the undo function for the feedback. It rejects events
// on disabled or destroyed objects.
func (r *Registry) Deliver(e *Event) (undo func(), err error) {
	undo, err = r.ApplyFeedback(e)
	if err != nil {
		return nil, err
	}
	r.RunCallbacks(e)
	return undo, nil
}

// ApplyFeedback applies only the built-in syntactic feedback of the event
// and returns its undo function. The coupling client uses the split
// (feedback now, callbacks after the lock is granted) to implement the
// multiple-execution algorithm of §3.2, including "undo syntactic built-in
// feedback of the event e" when locking fails.
func (r *Registry) ApplyFeedback(e *Event) (undo func(), err error) {
	r.mu.Lock()
	w, ok := r.byPath[e.Path]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, e.Path)
	}
	if w.dead {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDestroyed, e.Path)
	}
	if w.disabled && !e.Remote {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDisabled, e.Path)
	}
	if !w.class.EmitsEvent(e.Name) {
		r.mu.Unlock()
		return nil, fmt.Errorf("widget: class %q does not emit %q", w.class.Name, e.Name)
	}
	if w.class.Feedback == nil {
		r.mu.Unlock()
		return func() {}, nil
	}
	rawUndo, err := w.class.Feedback(w, e)
	r.mu.Unlock()
	r.flushNotifications()
	if err != nil {
		return nil, err
	}
	// The undo closure produced by the feedback func mutates attributes and
	// therefore needs the lock and a notification flush of its own.
	return func() {
		r.mu.Lock()
		rawUndo()
		r.mu.Unlock()
		r.flushNotifications()
	}, nil
}

// RunCallbacks invokes the application callbacks registered for the event.
// Callbacks run without the registry lock so they may freely manipulate
// widgets.
func (r *Registry) RunCallbacks(e *Event) {
	r.mu.Lock()
	w, ok := r.byPath[e.Path]
	if !ok || w.dead {
		r.mu.Unlock()
		return
	}
	cbs := make([]Callback, len(w.cbs[e.Name]))
	copy(cbs, w.cbs[e.Name])
	r.mu.Unlock()
	for _, cb := range cbs {
		cb(e)
	}
}
