package widget

import (
	"fmt"
	"strconv"
	"strings"

	"cosoft/internal/attr"
)

// Build constructs a widget subtree from a declarative textual spec, the
// stand-in for CENTER's interactive builder ("an interactive builder for
// users who are not experienced programmers"). The spec is line-oriented;
// indentation (two spaces per level) expresses nesting:
//
//	form query title="Query"
//	  label caption label="Author"
//	  textfield author width=40
//	  menu op items=[eq,substring,like-one-of] selection="eq"
//	  button submit label="Search"
//
// Each line is: class name [attr=value ...]. Values are quoted strings,
// integers, floats, true/false, or [a,b,c] string lists. Blank lines and
// lines starting with '#' are ignored. The first line's widget is created
// under parentPath and returned.
func Build(r *Registry, parentPath, spec string) (*Widget, error) {
	type frame struct {
		path  string
		depth int
	}
	var root *Widget
	stack := []frame{{path: parentPath, depth: -1}}
	for lineNo, raw := range strings.Split(spec, "\n") {
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(trimmed)
		if indent%2 != 0 {
			return nil, fmt.Errorf("widget: line %d: odd indentation", lineNo+1)
		}
		depth := indent / 2
		for len(stack) > 1 && stack[len(stack)-1].depth >= depth {
			stack = stack[:len(stack)-1]
		}
		if stack[len(stack)-1].depth != depth-1 {
			return nil, fmt.Errorf("widget: line %d: indentation jumps levels", lineNo+1)
		}
		class, name, attrs, err := parseSpecLine(trimmed)
		if err != nil {
			return nil, fmt.Errorf("widget: line %d: %w", lineNo+1, err)
		}
		w, err := r.Create(stack[len(stack)-1].path, name, class, attrs)
		if err != nil {
			return nil, fmt.Errorf("widget: line %d: %w", lineNo+1, err)
		}
		if root == nil {
			root = w
		}
		stack = append(stack, frame{path: w.Path(), depth: depth})
	}
	if root == nil {
		return nil, fmt.Errorf("widget: empty spec")
	}
	return root, nil
}

// MustBuild is Build for static UI construction; it panics on error.
func MustBuild(r *Registry, parentPath, spec string) *Widget {
	w, err := Build(r, parentPath, spec)
	if err != nil {
		panic(err)
	}
	return w
}

func parseSpecLine(line string) (class, name string, attrs attr.Set, err error) {
	tokens, err := tokenizeSpecLine(line)
	if err != nil {
		return "", "", nil, err
	}
	if len(tokens) < 2 {
		return "", "", nil, fmt.Errorf("want 'class name [attr=value ...]', got %q", line)
	}
	class, name = tokens[0], tokens[1]
	attrs = attr.NewSet()
	for _, tok := range tokens[2:] {
		eq := strings.IndexByte(tok, '=')
		if eq <= 0 {
			return "", "", nil, fmt.Errorf("bad attribute %q", tok)
		}
		v, err := parseSpecValue(tok[eq+1:])
		if err != nil {
			return "", "", nil, fmt.Errorf("attribute %q: %w", tok[:eq], err)
		}
		attrs.Put(tok[:eq], v)
	}
	return class, name, attrs, nil
}

// tokenizeSpecLine splits on spaces, keeping quoted strings and bracketed
// lists intact.
func tokenizeSpecLine(line string) ([]string, error) {
	var tokens []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote, inBracket := false, false
		for i < len(line) {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case '[':
				if !inQuote {
					inBracket = true
				}
			case ']':
				if !inQuote {
					inBracket = false
				}
			case ' ':
				if !inQuote && !inBracket {
					goto done
				}
			}
			i++
		}
	done:
		if inQuote {
			return nil, fmt.Errorf("unterminated quote in %q", line)
		}
		if inBracket {
			return nil, fmt.Errorf("unterminated bracket in %q", line)
		}
		tokens = append(tokens, line[start:i])
	}
	return tokens, nil
}

func parseSpecValue(s string) (attr.Value, error) {
	switch {
	case s == "":
		return attr.Value{}, fmt.Errorf("empty value")
	case s == "true":
		return attr.Bool(true), nil
	case s == "false":
		return attr.Bool(false), nil
	case s[0] == '"':
		unq, err := strconv.Unquote(s)
		if err != nil {
			return attr.Value{}, fmt.Errorf("bad string %s: %w", s, err)
		}
		return attr.String(unq), nil
	case s[0] == '[':
		if s[len(s)-1] != ']' {
			return attr.Value{}, fmt.Errorf("bad list %s", s)
		}
		body := s[1 : len(s)-1]
		if body == "" {
			return attr.StringList(), nil
		}
		items := strings.Split(body, ",")
		for i := range items {
			items[i] = strings.TrimSpace(items[i])
		}
		return attr.StringList(items...), nil
	case s[0] == '#':
		return attr.Color(s), nil
	default:
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			return attr.Int(n), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return attr.Float(f), nil
		}
		// Bare word: treat as string (color names, font names, ...).
		return attr.String(s), nil
	}
}
