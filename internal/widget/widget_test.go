package widget

import (
	"errors"
	"reflect"
	"testing"

	"cosoft/internal/attr"
)

func TestCreateLookupPath(t *testing.T) {
	r := NewRegistry()
	f, err := r.Create("/", "panel", "form", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f.Path() != "/panel" {
		t.Errorf("path = %q", f.Path())
	}
	b, err := r.Create("/panel", "ok", "button", attr.Set{AttrLabel: attr.String("OK")})
	if err != nil {
		t.Fatal(err)
	}
	if b.Path() != "/panel/ok" {
		t.Errorf("path = %q", b.Path())
	}
	got, err := r.Lookup("/panel/ok")
	if err != nil || got != b {
		t.Fatalf("Lookup = %v, %v", got, err)
	}
	if b.Attr(AttrLabel).AsString() != "OK" {
		t.Error("override not applied")
	}
	if b.Attr(AttrBg).AsString() != "lightgray" {
		t.Error("default not applied")
	}
	if b.Parent() != f || f.Child("ok") != b {
		t.Error("parent/child links wrong")
	}
}

func TestCreateErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Create("/", "x", "nosuch", nil); err == nil {
		t.Error("unknown class must fail")
	}
	if _, err := r.Create("/", "a/b", "button", nil); err == nil {
		t.Error("name with slash must fail")
	}
	if _, err := r.Create("/", "", "button", nil); err == nil {
		t.Error("empty name must fail")
	}
	if _, err := r.Create("/missing", "x", "button", nil); err == nil {
		t.Error("missing parent must fail")
	}
	r.MustCreate("/", "b", "button", nil)
	if _, err := r.Create("/", "b", "button", nil); err == nil {
		t.Error("duplicate path must fail")
	}
	if _, err := r.Create("/b", "x", "button", nil); err == nil {
		t.Error("non-container parent must fail")
	}
}

func TestDestroySubtree(t *testing.T) {
	r := NewRegistry()
	r.MustCreate("/", "panel", "form", nil)
	r.MustCreate("/panel", "inner", "form", nil)
	r.MustCreate("/panel/inner", "ok", "button", nil)
	var destroyed []string
	r.OnDestroy(func(w *Widget) { destroyed = append(destroyed, w.Path()) })
	if err := r.Destroy("/panel"); err != nil {
		t.Fatal(err)
	}
	want := []string{"/panel/inner/ok", "/panel/inner", "/panel"} // leaves first
	if !reflect.DeepEqual(destroyed, want) {
		t.Errorf("destroy order = %v, want %v", destroyed, want)
	}
	for _, p := range want {
		if _, err := r.Lookup(p); !errors.Is(err, ErrNotFound) {
			t.Errorf("Lookup(%q) after destroy: %v", p, err)
		}
	}
	if len(r.Root().Children()) != 0 {
		t.Error("root still has children")
	}
	if err := r.Destroy("/panel"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double destroy: %v", err)
	}
	if err := r.Destroy("/"); err == nil {
		t.Error("destroying root must fail")
	}
}

func TestPathsAndWalk(t *testing.T) {
	r := NewRegistry()
	r.MustCreate("/", "a", "form", nil)
	r.MustCreate("/a", "b", "button", nil)
	r.MustCreate("/", "c", "label", nil)
	want := []string{"/", "/a", "/a/b", "/c"}
	if got := r.Paths(); !reflect.DeepEqual(got, want) {
		t.Errorf("Paths = %v", got)
	}
	var visited []string
	if err := r.Walk("/a", func(w *Widget) error {
		visited = append(visited, w.Path())
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(visited, []string{"/a", "/a/b"}) {
		t.Errorf("Walk = %v", visited)
	}
	sentinel := errors.New("stop")
	if err := r.Walk("/", func(w *Widget) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Walk error propagation: %v", err)
	}
}

func TestAttrChangeHook(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", nil)
	var fired int
	r.OnAttrChange(func(cw *Widget, name string, old, new attr.Value) {
		fired++
		if cw != w || name != AttrValue {
			t.Errorf("hook got %s %s", cw.Path(), name)
		}
	})
	w.SetAttr(AttrValue, attr.String("x"))
	w.SetAttr(AttrValue, attr.String("x")) // no-op: equal value
	if fired != 1 {
		t.Errorf("hook fired %d times, want 1", fired)
	}
}

func TestDispatchFeedbackAndCallbacks(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", nil)
	var got []string
	if err := w.AddCallback(EventChanged, func(e *Event) {
		got = append(got, e.Args[0].AsString())
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Dispatch(&Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("hello")}}); err != nil {
		t.Fatal(err)
	}
	if w.Attr(AttrValue).AsString() != "hello" {
		t.Error("feedback not applied")
	}
	if !reflect.DeepEqual(got, []string{"hello"}) {
		t.Errorf("callbacks = %v", got)
	}
}

func TestDispatchErrors(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", nil)
	if err := r.Dispatch(&Event{Path: "/missing", Name: EventChanged}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
	if err := r.Dispatch(&Event{Path: "/t", Name: "bogus"}); err == nil {
		t.Error("bogus event must fail")
	}
	if err := r.Dispatch(&Event{Path: "/t", Name: EventChanged}); err == nil {
		t.Error("missing args must fail")
	}
	w.SetDisabled(true)
	err := r.Dispatch(&Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("x")}})
	if !errors.Is(err, ErrDisabled) {
		t.Errorf("disabled: %v", err)
	}
	// Remote events bypass the disabled check (the lock holder's event must
	// still be applied at lockers).
	if _, err := r.Deliver(&Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("y")}, Remote: true}); err != nil {
		t.Errorf("remote on disabled: %v", err)
	}
	w.SetDisabled(false)
	if err := r.Destroy("/t"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ApplyFeedback(&Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("x")}}); !errors.Is(err, ErrNotFound) {
		t.Errorf("destroyed: %v", err)
	}
}

func TestUndoFeedback(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", attr.Set{AttrValue: attr.String("before")})
	undo, err := r.ApplyFeedback(&Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("after")}})
	if err != nil {
		t.Fatal(err)
	}
	if w.Attr(AttrValue).AsString() != "after" {
		t.Error("feedback not applied")
	}
	undo()
	if w.Attr(AttrValue).AsString() != "before" {
		t.Error("undo did not restore")
	}
}

func TestOnEventInterception(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", nil)
	var intercepted *Event
	r.OnEvent(func(e *Event) { intercepted = e })
	ev := &Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("x")}}
	if err := r.Dispatch(ev); err != nil {
		t.Fatal(err)
	}
	if intercepted != ev {
		t.Fatal("hook not called")
	}
	if w.Attr(AttrValue).AsString() != "" {
		t.Error("interception must suppress local processing")
	}
	// Remote events are never intercepted (they come *from* the hook owner).
	intercepted = nil
	rev := &Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("y")}, Remote: true}
	if err := r.Dispatch(rev); err != nil {
		t.Fatal(err)
	}
	if intercepted != nil {
		t.Error("remote event must not be intercepted")
	}
	if w.Attr(AttrValue).AsString() != "y" {
		t.Error("remote event must be processed locally")
	}
}

func TestClassFeedbacks(t *testing.T) {
	r := NewRegistry()
	toggle := r.MustCreate("/", "tg", "toggle", nil)
	if err := r.Dispatch(&Event{Path: "/tg", Name: EventToggled}); err != nil {
		t.Fatal(err)
	}
	if !toggle.Attr(AttrState).AsBool() {
		t.Error("toggle did not flip")
	}

	menu := r.MustCreate("/", "m", "menu", attr.Set{AttrItems: attr.StringList("a", "b")})
	if err := r.Dispatch(&Event{Path: "/m", Name: EventSelect, Args: []attr.Value{attr.String("b")}}); err != nil {
		t.Fatal(err)
	}
	if menu.Attr(AttrSelection).AsString() != "b" {
		t.Error("menu selection not set")
	}

	scale := r.MustCreate("/", "s", "scale", attr.Set{AttrMin: attr.Int(0), AttrMax: attr.Int(10)})
	if err := r.Dispatch(&Event{Path: "/s", Name: EventMoved, Args: []attr.Value{attr.Int(99)}}); err != nil {
		t.Fatal(err)
	}
	if got := scale.Attr(AttrPosition).AsInt(); got != 10 {
		t.Errorf("scale position = %d, want clamped 10", got)
	}

	canvas := r.MustCreate("/", "c", "canvas", nil)
	stroke := attr.PointList(attr.Point{X: 1, Y: 2}, attr.Point{X: 3, Y: 4})
	if err := r.Dispatch(&Event{Path: "/c", Name: EventDraw, Args: []attr.Value{stroke}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Dispatch(&Event{Path: "/c", Name: EventDraw, Args: []attr.Value{attr.PointList(attr.Point{X: 5, Y: 6})}}); err != nil {
		t.Fatal(err)
	}
	if got := len(canvas.Attr(AttrStrokes).AsPointList()); got != 3 {
		t.Errorf("strokes = %d points, want 3", got)
	}

	btn := r.MustCreate("/", "b", "button", nil)
	fired := false
	if err := btn.AddCallback(EventActivate, func(e *Event) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := r.Dispatch(&Event{Path: "/b", Name: EventActivate}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("button callback not fired")
	}
}

func TestTextareaEdit(t *testing.T) {
	r := NewRegistry()
	ta := r.MustCreate("/", "ta", "textarea", attr.Set{AttrText: attr.String("hello world")})
	edit := func(pos, del int64, ins string) error {
		return r.Dispatch(&Event{Path: "/ta", Name: EventEdit,
			Args: []attr.Value{attr.Int(pos), attr.Int(del), attr.String(ins)}})
	}
	if err := edit(5, 6, ", go"); err != nil {
		t.Fatal(err)
	}
	if got := ta.Attr(AttrText).AsString(); got != "hello, go" {
		t.Errorf("text = %q", got)
	}
	if err := edit(100, 0, "x"); err == nil {
		t.Error("out-of-range edit must fail")
	}
	if err := edit(0, 100, ""); err == nil {
		t.Error("over-delete must fail")
	}
	if err := edit(-1, 0, ""); err == nil {
		t.Error("negative pos must fail")
	}
	undo, err := r.ApplyFeedback(&Event{Path: "/ta", Name: EventEdit,
		Args: []attr.Value{attr.Int(0), attr.Int(5), attr.String("HI")}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ta.Attr(AttrText).AsString(); got != "HI, go" {
		t.Errorf("text = %q", got)
	}
	undo()
	if got := ta.Attr(AttrText).AsString(); got != "hello, go" {
		t.Errorf("after undo text = %q", got)
	}
}

func TestRelevantState(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "t", "textfield", attr.Set{AttrValue: attr.String("v"), AttrWidth: attr.Int(99)})
	rel := w.RelevantState()
	if len(rel) != 1 || rel.Get(AttrValue).AsString() != "v" {
		t.Errorf("RelevantState = %v", rel)
	}
	full := w.State()
	if !full.Has(AttrWidth) || !full.Has(AttrFont) {
		t.Errorf("State = %v", full)
	}
}

func TestClassRegistryCustom(t *testing.T) {
	cr := NewClassRegistry()
	custom := &Class{Name: "gauge", Relevant: []string{AttrPosition}, Events: []string{EventMoved}}
	if err := cr.Register(custom); err != nil {
		t.Fatal(err)
	}
	if err := cr.Register(custom); err == nil {
		t.Error("duplicate register must fail")
	}
	if err := cr.Register(nil); err == nil {
		t.Error("nil register must fail")
	}
	got, err := cr.Lookup("gauge")
	if err != nil || got != custom {
		t.Fatalf("Lookup: %v %v", got, err)
	}
	found := false
	for _, n := range cr.Names() {
		if n == "gauge" {
			found = true
		}
	}
	if !found {
		t.Error("Names missing custom class")
	}
	if !custom.EmitsEvent(EventMoved) || custom.EmitsEvent("x") {
		t.Error("EmitsEvent wrong")
	}
	if !custom.IsRelevant(AttrPosition) || custom.IsRelevant("x") {
		t.Error("IsRelevant wrong")
	}
}

func TestEventString(t *testing.T) {
	e := &Event{Path: "/t", Name: EventChanged, Args: []attr.Value{attr.String("x")}}
	if got := e.String(); got != `/t!changed("x")` {
		t.Errorf("String = %q", got)
	}
	e.Remote = true
	if got := e.String(); got != `/t!changed("x") (remote)` {
		t.Errorf("String = %q", got)
	}
}

func TestCallbackOnUnknownEvent(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "b", "button", nil)
	if err := w.AddCallback("bogus", func(e *Event) {}); err == nil {
		t.Error("AddCallback for undeclared event must fail")
	}
}

func TestRadioGroup(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "rg", "radiogroup", attr.Set{AttrItems: attr.StringList("red", "green")})
	if err := r.Dispatch(&Event{Path: "/rg", Name: EventSelect, Args: []attr.Value{attr.String("green")}}); err != nil {
		t.Fatal(err)
	}
	if w.Attr(AttrSelection).AsString() != "green" {
		t.Error("selection not applied")
	}
	if err := r.Dispatch(&Event{Path: "/rg", Name: EventSelect, Args: []attr.Value{attr.String("blue")}}); err == nil {
		t.Error("selection outside items must fail")
	}
	if err := r.Dispatch(&Event{Path: "/rg", Name: EventSelect}); err == nil {
		t.Error("missing arg must fail")
	}
}

func TestSpinbox(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "sp", "spinbox", attr.Set{
		AttrValue: attr.String("5"), AttrMin: attr.Int(0), AttrMax: attr.Int(10)})
	spin := func(d int64) error {
		return r.Dispatch(&Event{Path: "/sp", Name: EventSpun, Args: []attr.Value{attr.Int(d)}})
	}
	if err := spin(3); err != nil {
		t.Fatal(err)
	}
	if got := w.Attr(AttrValue).AsString(); got != "8" {
		t.Errorf("value = %q", got)
	}
	if err := spin(100); err != nil {
		t.Fatal(err)
	}
	if got := w.Attr(AttrValue).AsString(); got != "10" {
		t.Errorf("clamped value = %q", got)
	}
	if err := spin(-100); err != nil {
		t.Fatal(err)
	}
	if got := w.Attr(AttrValue).AsString(); got != "0" {
		t.Errorf("clamped value = %q", got)
	}
	// Undo restores the previous value.
	undo, err := r.ApplyFeedback(&Event{Path: "/sp", Name: EventSpun, Args: []attr.Value{attr.Int(4)}})
	if err != nil {
		t.Fatal(err)
	}
	undo()
	if got := w.Attr(AttrValue).AsString(); got != "0" {
		t.Errorf("after undo = %q", got)
	}
	// Garbage value resets to 0 before stepping.
	w.SetAttr(AttrValue, attr.String("junk"))
	if err := spin(2); err != nil {
		t.Fatal(err)
	}
	if got := w.Attr(AttrValue).AsString(); got != "2" {
		t.Errorf("from junk = %q", got)
	}
	if err := r.Dispatch(&Event{Path: "/sp", Name: EventSpun, Args: []attr.Value{attr.String("x")}}); err == nil {
		t.Error("non-int arg must fail")
	}
}

func TestProgressHasNoEvents(t *testing.T) {
	r := NewRegistry()
	w := r.MustCreate("/", "p", "progress", nil)
	if len(w.Class().Events) != 0 {
		t.Error("progress must emit no events")
	}
	if !w.Class().IsRelevant(AttrPosition) {
		t.Error("position must be relevant")
	}
}
