package widget

import (
	"strings"
	"testing"

	"cosoft/internal/attr"
)

const sampleSpec = `
# A query form like TORI generates.
form query title="Query"
  label caption label="Author"
  textfield author width=40 value=""
  menu op items=[eq,substring,like-one-of] selection="eq"
  form buttons
    button submit label="Search"
    button clear label="Clear"
`

func TestBuildSpec(t *testing.T) {
	r := NewRegistry()
	root, err := Build(r, "/", sampleSpec)
	if err != nil {
		t.Fatal(err)
	}
	if root.Path() != "/query" {
		t.Errorf("root = %q", root.Path())
	}
	w, err := r.Lookup("/query/buttons/submit")
	if err != nil {
		t.Fatal(err)
	}
	if w.Attr(AttrLabel).AsString() != "Search" {
		t.Error("nested attr wrong")
	}
	m, err := r.Lookup("/query/op")
	if err != nil {
		t.Fatal(err)
	}
	items := m.Attr(AttrItems).AsStringList()
	if len(items) != 3 || items[1] != "substring" {
		t.Errorf("items = %v", items)
	}
	if m.Attr(AttrSelection).AsString() != "eq" {
		t.Error("selection wrong")
	}
	tf, _ := r.Lookup("/query/author")
	if tf.Attr(AttrWidth).AsInt() != 40 {
		t.Error("int attr wrong")
	}
}

func TestBuildValueTypes(t *testing.T) {
	r := NewRegistry()
	spec := `form f title="T"
  toggle t1 state=true
  toggle t2 state=false
  scale s min=-5 max=5 position=2
  label l label="quoted \"str\"" foreground=#102030
  textfield tf value=plainword`
	if _, err := Build(r, "/", spec); err != nil {
		t.Fatal(err)
	}
	get := func(p, a string) attr.Value {
		w, err := r.Lookup(p)
		if err != nil {
			t.Fatalf("lookup %s: %v", p, err)
		}
		return w.Attr(a)
	}
	if !get("/f/t1", AttrState).Equal(attr.Bool(true)) {
		t.Error("bool true")
	}
	if !get("/f/t2", AttrState).Equal(attr.Bool(false)) {
		t.Error("bool false")
	}
	if !get("/f/s", AttrMin).Equal(attr.Int(-5)) {
		t.Error("negative int")
	}
	if got := get("/f/l", AttrLabel).AsString(); got != `quoted "str"` {
		t.Errorf("quoted = %q", got)
	}
	if !get("/f/l", AttrFg).Equal(attr.Color("#102030")) {
		t.Error("color literal")
	}
	if !get("/f/tf", AttrValue).Equal(attr.String("plainword")) {
		t.Error("bare word")
	}
}

func TestBuildErrors(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		name, spec string
	}{
		{"empty", "\n\n# only comments\n"},
		{"odd indent", "form f\n   button b"},
		{"jump levels", "form f\n    button b"},
		{"missing name", "form"},
		{"bad attr", "form f junk"},
		{"bad class", "frobnicator f"},
		{"unterminated quote", `form f title="oops`},
		{"unterminated bracket", "menu m items=[a,b"},
		{"child of leaf", "button b\n  label l"},
		{"empty value", "form f title="},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Build(NewRegistry(), "/", c.spec); err == nil {
				t.Errorf("spec %q: expected error", c.spec)
			}
		})
	}
	_ = r
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild must panic on error")
		}
	}()
	MustBuild(NewRegistry(), "/", "bogusclass x")
}

func TestCaptureAndBuildTree(t *testing.T) {
	r := NewRegistry()
	MustBuild(r, "/", sampleSpec)
	ts, err := r.CaptureTree("/query", false)
	if err != nil {
		t.Fatal(err)
	}
	if ts.CountNodes() != 7 {
		t.Errorf("CountNodes = %d, want 7", ts.CountNodes())
	}
	// Rebuild in a fresh registry and compare captures.
	r2 := NewRegistry()
	if _, err := r2.BuildTree("/", "", ts); err != nil {
		t.Fatal(err)
	}
	ts2, err := r2.CaptureTree("/query", false)
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Equal(ts2) {
		t.Errorf("rebuilt tree differs:\n%s\nvs\n%s", ts, ts2)
	}
	// Name override.
	if _, err := r2.BuildTree("/", "copy", ts); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Lookup("/copy/author"); err != nil {
		t.Error("renamed copy missing children")
	}
}

func TestCaptureRelevantOnly(t *testing.T) {
	r := NewRegistry()
	MustBuild(r, "/", "textfield t width=33 value=\"v\"")
	ts, err := r.CaptureTree("/t", true)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Attrs.Has(AttrWidth) {
		t.Error("relevant capture must exclude width")
	}
	if !ts.Attrs.Get(AttrValue).Equal(attr.String("v")) {
		t.Error("relevant capture must include value")
	}
}

func TestTreeStateCodec(t *testing.T) {
	r := NewRegistry()
	MustBuild(r, "/", sampleSpec)
	ts, err := r.CaptureTree("/query", false)
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendTreeState(nil, ts)
	got, rest, err := DecodeTreeState(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if !got.Equal(ts) {
		t.Errorf("round trip mismatch")
	}
	// Corruption must error, not panic.
	for i := 1; i < len(buf); i += 7 {
		if _, _, err := DecodeTreeState(buf[:i]); err == nil && i < len(buf)-1 {
			// Some prefixes may decode as a smaller valid tree; only require
			// no panic.
			continue
		}
	}
	if _, _, err := DecodeTreeState(nil); err == nil {
		t.Error("nil decode must fail")
	}
}

func TestTreeStateString(t *testing.T) {
	ts := TreeState{Class: "form", Name: "f", Attrs: attr.Set{"title": attr.String("x")},
		Children: []TreeState{{Class: "button", Name: "b", Attrs: attr.NewSet()}}}
	s := ts.String()
	if !strings.Contains(s, "form f") || !strings.Contains(s, "  button b") {
		t.Errorf("String = %q", s)
	}
}

func TestCaptureTreeMissing(t *testing.T) {
	r := NewRegistry()
	if _, err := r.CaptureTree("/missing", false); err == nil {
		t.Error("expected error")
	}
}
