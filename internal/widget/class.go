// Package widget implements the headless user-interface toolkit that stands
// in for the paper's OSF/Motif-based CENTER toolbox.
//
// The coupling mechanism of the paper operates entirely on the toolkit
// surface: widget trees with hierarchical pathnames, typed attributes,
// high-level callback events, and built-in "syntactic" feedback that can be
// undone when a floor-control lock is denied. This package provides exactly
// that surface, without a display server: a primitive UI object is an
// instance of a pre-defined class (form, button, menu, ...), encapsulates
// low-level events, and exposes high-level interaction callbacks.
package widget

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"cosoft/internal/attr"
)

// Event names emitted by the built-in classes.
const (
	EventActivate = "activate" // button pressed
	EventChanged  = "changed"  // textfield value replaced
	EventEdit     = "edit"     // textarea splice edit
	EventToggled  = "toggled"  // toggle flipped
	EventSelect   = "select"   // menu/list selection
	EventMoved    = "moved"    // scale position
	EventDraw     = "draw"     // canvas stroke appended
	EventSpun     = "spun"     // spinbox stepped or set
)

// Common attribute names.
const (
	AttrLabel     = "label"
	AttrValue     = "value"
	AttrText      = "text"
	AttrState     = "state"
	AttrItems     = "items"
	AttrSelection = "selection"
	AttrPosition  = "position"
	AttrMin       = "min"
	AttrMax       = "max"
	AttrStrokes   = "strokes"
	AttrWidth     = "width"
	AttrHeight    = "height"
	AttrFg        = "foreground"
	AttrBg        = "background"
	AttrFont      = "font"
	AttrTitle     = "title"
)

// FeedbackFunc applies the built-in syntactic feedback of an event to a
// widget and returns a function that undoes it. It returns an error when the
// event arguments do not fit the class.
type FeedbackFunc func(w *Widget, e *Event) (undo func(), err error)

// Class describes a pre-defined UI object type: its default attributes, the
// subset of attributes that are *relevant* for coupling (made identical when
// instances are coupled, §3.1), and the callback events it emits.
type Class struct {
	// Name identifies the class ("button", "form", ...).
	Name string
	// Defaults holds the initial attribute values of new instances.
	Defaults attr.Set
	// Relevant lists the attributes shared when objects of this class are
	// coupled or copied. Presentation attributes (size, font, colors) are
	// deliberately not relevant: "two text input fields may have different
	// size and fonts, but just share the same content".
	Relevant []string
	// Events lists the callback event names instances emit.
	Events []string
	// Container reports whether instances may have children.
	Container bool
	// Feedback applies built-in syntactic feedback; nil means events carry
	// no state change.
	Feedback FeedbackFunc
}

// EmitsEvent reports whether the class declares the named event.
func (c *Class) EmitsEvent(name string) bool {
	for _, e := range c.Events {
		if e == name {
			return true
		}
	}
	return false
}

// IsRelevant reports whether the named attribute is in the class's relevant
// set.
func (c *Class) IsRelevant(name string) bool {
	for _, r := range c.Relevant {
		if r == name {
			return true
		}
	}
	return false
}

// ClassRegistry maps class names to definitions. A registry is shared by all
// application instances of a process; RegisterClass may be called during
// initialization to add application-specific classes.
type ClassRegistry struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewClassRegistry returns a registry pre-populated with the standard
// classes.
func NewClassRegistry() *ClassRegistry {
	r := &ClassRegistry{classes: make(map[string]*Class)}
	for _, c := range standardClasses() {
		r.classes[c.Name] = c
	}
	return r
}

// Register adds a class definition. It returns an error when the name is
// already taken.
func (r *ClassRegistry) Register(c *Class) error {
	if c == nil || c.Name == "" {
		return fmt.Errorf("widget: invalid class")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.classes[c.Name]; ok {
		return fmt.Errorf("widget: class %q already registered", c.Name)
	}
	r.classes[c.Name] = c
	return nil
}

// Lookup returns the class definition for name.
func (r *ClassRegistry) Lookup(name string) (*Class, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[name]
	if !ok {
		return nil, fmt.Errorf("widget: unknown class %q", name)
	}
	return c, nil
}

// Names returns the registered class names, sorted.
func (r *ClassRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.classes))
	for n := range r.classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func standardClasses() []*Class {
	return []*Class{
		{
			Name:      "form",
			Defaults:  attr.Set{AttrTitle: attr.String(""), AttrWidth: attr.Int(400), AttrHeight: attr.Int(300), AttrBg: attr.Color("gray")},
			Relevant:  []string{AttrTitle},
			Container: true,
		},
		{
			Name:     "label",
			Defaults: attr.Set{AttrLabel: attr.String(""), AttrFont: attr.String("fixed"), AttrFg: attr.Color("black")},
			Relevant: []string{AttrLabel},
		},
		{
			Name:     "separator",
			Defaults: attr.Set{AttrWidth: attr.Int(1)},
		},
		{
			Name:     "button",
			Defaults: attr.Set{AttrLabel: attr.String("Button"), AttrFont: attr.String("fixed"), AttrFg: attr.Color("black"), AttrBg: attr.Color("lightgray")},
			Relevant: []string{AttrLabel},
			Events:   []string{EventActivate},
		},
		{
			Name:     "textfield",
			Defaults: attr.Set{AttrValue: attr.String(""), AttrWidth: attr.Int(20), AttrFont: attr.String("fixed")},
			Relevant: []string{AttrValue},
			Events:   []string{EventChanged},
			Feedback: textfieldFeedback,
		},
		{
			Name:     "textarea",
			Defaults: attr.Set{AttrText: attr.String(""), AttrWidth: attr.Int(80), AttrHeight: attr.Int(24), AttrFont: attr.String("fixed")},
			Relevant: []string{AttrText},
			Events:   []string{EventEdit},
			Feedback: textareaFeedback,
		},
		{
			Name:     "toggle",
			Defaults: attr.Set{AttrLabel: attr.String(""), AttrState: attr.Bool(false)},
			Relevant: []string{AttrState},
			Events:   []string{EventToggled},
			Feedback: toggleFeedback,
		},
		{
			Name:     "menu",
			Defaults: attr.Set{AttrItems: attr.StringList(), AttrSelection: attr.String("")},
			Relevant: []string{AttrItems, AttrSelection},
			Events:   []string{EventSelect},
			Feedback: selectFeedback,
		},
		{
			Name:     "list",
			Defaults: attr.Set{AttrItems: attr.StringList(), AttrSelection: attr.String(""), AttrHeight: attr.Int(10)},
			Relevant: []string{AttrItems, AttrSelection},
			Events:   []string{EventSelect},
			Feedback: selectFeedback,
		},
		{
			Name:     "scale",
			Defaults: attr.Set{AttrPosition: attr.Int(0), AttrMin: attr.Int(0), AttrMax: attr.Int(100)},
			Relevant: []string{AttrPosition},
			Events:   []string{EventMoved},
			Feedback: scaleFeedback,
		},
		{
			Name:     "radiogroup",
			Defaults: attr.Set{AttrItems: attr.StringList(), AttrSelection: attr.String("")},
			Relevant: []string{AttrItems, AttrSelection},
			Events:   []string{EventSelect},
			Feedback: radioFeedback,
		},
		{
			Name:     "spinbox",
			Defaults: attr.Set{AttrValue: attr.String("0"), AttrMin: attr.Int(0), AttrMax: attr.Int(100)},
			Relevant: []string{AttrValue},
			Events:   []string{EventSpun},
			Feedback: spinboxFeedback,
		},
		{
			Name:     "progress",
			Defaults: attr.Set{AttrPosition: attr.Int(0), AttrMax: attr.Int(100)},
			Relevant: []string{AttrPosition},
		},
		{
			Name:     "canvas",
			Defaults: attr.Set{AttrStrokes: attr.PointList(), AttrWidth: attr.Int(640), AttrHeight: attr.Int(480), AttrBg: attr.Color("white")},
			Relevant: []string{AttrStrokes},
			Events:   []string{EventDraw},
			Feedback: canvasFeedback,
		},
	}
}

func textfieldFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindString {
		return nil, fmt.Errorf("widget: %s wants one string arg", EventChanged)
	}
	old := w.attrs.Get(AttrValue)
	w.setAttr(AttrValue, e.Args[0])
	return func() { w.setAttr(AttrValue, old) }, nil
}

// textareaFeedback splices text: args are [pos int, deleteCount int,
// insert string].
func textareaFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 3 ||
		e.Args[0].Kind() != attr.KindInt ||
		e.Args[1].Kind() != attr.KindInt ||
		e.Args[2].Kind() != attr.KindString {
		return nil, fmt.Errorf("widget: %s wants (int, int, string) args", EventEdit)
	}
	text := w.attrs.Get(AttrText).AsString()
	pos := int(e.Args[0].AsInt())
	del := int(e.Args[1].AsInt())
	ins := e.Args[2].AsString()
	if pos < 0 || pos > len(text) || del < 0 || pos+del > len(text) {
		return nil, fmt.Errorf("widget: edit splice (%d,%d) out of range for %d bytes", pos, del, len(text))
	}
	old := w.attrs.Get(AttrText)
	w.setAttr(AttrText, attr.String(text[:pos]+ins+text[pos+del:]))
	return func() { w.setAttr(AttrText, old) }, nil
}

func toggleFeedback(w *Widget, e *Event) (func(), error) {
	old := w.attrs.Get(AttrState)
	w.setAttr(AttrState, attr.Bool(!old.AsBool()))
	return func() { w.setAttr(AttrState, old) }, nil
}

func selectFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindString {
		return nil, fmt.Errorf("widget: %s wants one string arg", EventSelect)
	}
	old := w.attrs.Get(AttrSelection)
	w.setAttr(AttrSelection, e.Args[0])
	return func() { w.setAttr(AttrSelection, old) }, nil
}

func scaleFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindInt {
		return nil, fmt.Errorf("widget: %s wants one int arg", EventMoved)
	}
	pos := e.Args[0].AsInt()
	if min := w.attrs.Get(AttrMin).AsInt(); pos < min {
		pos = min
	}
	if max := w.attrs.Get(AttrMax).AsInt(); pos > max {
		pos = max
	}
	old := w.attrs.Get(AttrPosition)
	w.setAttr(AttrPosition, attr.Int(pos))
	return func() { w.setAttr(AttrPosition, old) }, nil
}

// canvasFeedback appends a stroke (a point list) to the strokes attribute.
func canvasFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindPointList {
		return nil, fmt.Errorf("widget: %s wants one point-list arg", EventDraw)
	}
	old := w.attrs.Get(AttrStrokes)
	pts := append(old.AsPointList(), e.Args[0].AsPointList()...)
	w.setAttr(AttrStrokes, attr.PointList(pts...))
	return func() { w.setAttr(AttrStrokes, old) }, nil
}

// radioFeedback is selectFeedback restricted to the declared items: a
// radio group rejects selections outside its item list.
func radioFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindString {
		return nil, fmt.Errorf("widget: %s wants one string arg", EventSelect)
	}
	sel := e.Args[0].AsString()
	found := false
	for _, item := range w.attrs.Get(AttrItems).AsStringList() {
		if item == sel {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("widget: %q is not an item of %s", sel, w.Path())
	}
	old := w.attrs.Get(AttrSelection)
	w.setAttr(AttrSelection, e.Args[0])
	return func() { w.setAttr(AttrSelection, old) }, nil
}

// spinboxFeedback steps the numeric value by the int argument, clamped to
// [min, max]. The value attribute stays a string (it is a text entry in the
// original toolkit) but must parse as an integer.
func spinboxFeedback(w *Widget, e *Event) (func(), error) {
	if len(e.Args) != 1 || e.Args[0].Kind() != attr.KindInt {
		return nil, fmt.Errorf("widget: %s wants one int arg", EventSpun)
	}
	cur, err := strconv.ParseInt(w.attrs.Get(AttrValue).AsString(), 10, 64)
	if err != nil {
		cur = 0
	}
	next := cur + e.Args[0].AsInt()
	if min := w.attrs.Get(AttrMin).AsInt(); next < min {
		next = min
	}
	if max := w.attrs.Get(AttrMax).AsInt(); next > max {
		next = max
	}
	old := w.attrs.Get(AttrValue)
	w.setAttr(AttrValue, attr.String(strconv.FormatInt(next, 10)))
	return func() { w.setAttr(AttrValue, old) }, nil
}
