package widget

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cosoft/internal/attr"
)

// randomTree builds a random widget tree in reg under "/" and returns the
// root path.
func randomTree(r *rand.Rand, reg *Registry) string {
	name := fmt.Sprintf("r%d", r.Intn(1<<30))
	root := reg.MustCreate("/", name, "form", randomAttrs(r))
	populate(r, reg, root.Path(), 2)
	return root.Path()
}

var leafClasses = []string{"button", "label", "textfield", "toggle", "menu", "list", "scale", "canvas", "textarea", "separator"}

func populate(r *rand.Rand, reg *Registry, parent string, depth int) {
	n := r.Intn(4)
	for i := 0; i < n; i++ {
		if depth > 0 && r.Intn(3) == 0 {
			w := reg.MustCreate(parent, fmt.Sprintf("f%d", i), "form", randomAttrs(r))
			populate(r, reg, w.Path(), depth-1)
			continue
		}
		class := leafClasses[r.Intn(len(leafClasses))]
		reg.MustCreate(parent, fmt.Sprintf("c%d", i), class, randomAttrs(r))
	}
}

func randomAttrs(r *rand.Rand) attr.Set {
	s := attr.NewSet()
	if r.Intn(2) == 0 {
		s.Put(AttrTitle, attr.String(fmt.Sprintf("t%d", r.Intn(100))))
	}
	if r.Intn(2) == 0 {
		s.Put(AttrWidth, attr.Int(int64(r.Intn(500))))
	}
	return s
}

// Property: capture -> encode -> decode -> rebuild reproduces the tree
// exactly (full-state capture).
func TestPropCaptureCodecBuildRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reg := NewRegistry()
		rootPath := randomTree(r, reg)
		ts, err := reg.CaptureTree(rootPath, false)
		if err != nil {
			return false
		}
		decoded, rest, err := DecodeTreeState(AppendTreeState(nil, ts))
		if err != nil || len(rest) != 0 || !decoded.Equal(ts) {
			return false
		}
		reg2 := NewRegistry()
		if _, err := reg2.BuildTree("/", "", decoded); err != nil {
			return false
		}
		ts2, err := reg2.CaptureTree(rootPath, false)
		if err != nil {
			return false
		}
		return ts2.Equal(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: feedback followed by its undo is an identity on the full widget
// state, for every stateful class and random starting states.
func TestPropFeedbackUndoIdentity(t *testing.T) {
	type eventMaker func(r *rand.Rand) *Event
	cases := []struct {
		spec string
		mk   eventMaker
	}{
		{"textfield w", func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventChanged,
				Args: []attr.Value{attr.String(fmt.Sprintf("v%d", r.Intn(100)))}}
		}},
		{"toggle w", func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventToggled}
		}},
		{"menu w items=[a,b,c]", func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventSelect,
				Args: []attr.Value{attr.String(string(rune('a' + r.Intn(3))))}}
		}},
		{"scale w min=0 max=100", func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventMoved,
				Args: []attr.Value{attr.Int(int64(r.Intn(150) - 20))}}
		}},
		{"canvas w", func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventDraw,
				Args: []attr.Value{attr.PointList(attr.Point{X: int32(r.Intn(10)), Y: int32(r.Intn(10))})}}
		}},
		{`textarea w text="hello world"`, func(r *rand.Rand) *Event {
			return &Event{Path: "/w", Name: EventEdit,
				Args: []attr.Value{attr.Int(int64(r.Intn(5))), attr.Int(int64(r.Intn(3))), attr.String("X")}}
		}},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, c := range cases {
			reg := NewRegistry()
			MustBuild(reg, "/", c.spec)
			w, err := reg.Lookup("/w")
			if err != nil {
				return false
			}
			// Random warm-up events to randomize the starting state.
			for i := 0; i < r.Intn(4); i++ {
				_, _ = reg.Deliver(c.mk(r))
			}
			before := w.State()
			undo, err := reg.ApplyFeedback(c.mk(r))
			if err != nil {
				continue // out-of-range edits are legal rejections
			}
			undo()
			if !w.State().Equal(before) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the registry path index and the tree structure agree after any
// sequence of creates and destroys.
func TestPropPathIndexConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		reg := NewRegistry()
		var live []string
		for step := 0; step < 40; step++ {
			if r.Intn(3) != 0 || len(live) == 0 {
				parent := "/"
				if len(live) > 0 && r.Intn(2) == 0 {
					parent = live[r.Intn(len(live))]
				}
				name := fmt.Sprintf("w%d", step)
				class := "form"
				if r.Intn(2) == 0 {
					class = "button"
				}
				if w, err := reg.Create(parent, name, class, nil); err == nil {
					live = append(live, w.Path())
				}
			} else {
				victim := live[r.Intn(len(live))]
				if err := reg.Destroy(victim); err != nil {
					return false
				}
				var kept []string
				for _, p := range live {
					if p != victim && !isUnder(p, victim) {
						kept = append(kept, p)
					}
				}
				live = kept
			}
			// Index must contain exactly root + live paths.
			paths := reg.Paths()
			if len(paths) != len(live)+1 {
				return false
			}
			// Every path must be reachable by tree walk.
			count := 0
			if err := reg.Walk("/", func(*Widget) error { count++; return nil }); err != nil {
				return false
			}
			if count != len(paths) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func isUnder(p, root string) bool {
	return len(p) > len(root) && p[:len(root)] == root && p[len(root)] == '/'
}

func TestWidgetAccessors(t *testing.T) {
	reg := NewRegistry()
	w := reg.MustCreate("/", "b", "button", nil)
	if w.Destroyed() {
		t.Error("new widget reported destroyed")
	}
	var created []string
	reg.OnCreate(func(w *Widget) { created = append(created, w.Path()) })
	reg.MustCreate("/", "c", "label", nil)
	if len(created) != 1 || created[0] != "/c" {
		t.Errorf("OnCreate = %v", created)
	}
	if err := reg.Destroy("/b"); err != nil {
		t.Fatal(err)
	}
	if !w.Destroyed() {
		t.Error("destroyed widget reported live")
	}
}
