// Package multiplex implements the single-instance ("multiplex")
// architecture of Figure 1, the SharedX/XTV reference point: several users
// interact with ONE centralized application instance; only the I/O level is
// replicated. The multiplexor copies the application's display output to
// every participant and dispatches user events sequentially.
//
// The package exists as a baseline for the architecture comparison (E1/E2):
// it reproduces the information flow — every interaction crosses the network
// twice and all input is serialized through the single instance — not pixel
// rendering.
package multiplex

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

// DisplayOp is one display update sent to a user's terminal: an attribute of
// a widget changed (the I/O-level unit shared between users — "the basic
// unit shared between users is a window").
type DisplayOp struct {
	Path  string
	Attr  string
	Value attr.Value
}

// Display is one participant's virtual screen: the mirrored attribute state
// plus traffic counters.
type Display struct {
	mu    sync.Mutex
	state map[string]attr.Set
	ops   atomic.Int64
	gone  bool
}

func newDisplay() *Display {
	return &Display{state: make(map[string]attr.Set)}
}

// apply lands one display op.
func (d *Display) apply(op DisplayOp) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.gone {
		return
	}
	set, ok := d.state[op.Path]
	if !ok {
		set = attr.NewSet()
		d.state[op.Path] = set
	}
	set.Put(op.Attr, op.Value)
	d.ops.Add(1)
}

// Attr reads the mirrored value of a widget attribute on this display.
func (d *Display) Attr(path, name string) attr.Value {
	d.mu.Lock()
	defer d.mu.Unlock()
	if set, ok := d.state[path]; ok {
		return set.Get(name)
	}
	return attr.Value{}
}

// Ops returns the number of display updates received.
func (d *Display) Ops() int64 { return d.ops.Load() }

// clear wipes the display: when a participant leaves a shared-window
// session, the shared window "disappears in the personal environment" —
// unlike decoupled COSOFT objects, nothing persists locally.
func (d *Display) clear() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = make(map[string]attr.Set)
	d.gone = true
}

// Options configures the multiplex system.
type Options struct {
	// Users is the number of participants.
	Users int
	// Latency is the one-way network latency between a user terminal and
	// the central instance.
	Latency time.Duration
	// Spec builds the single application instance's widget tree.
	Spec string
}

// System is the running single-instance architecture.
type System struct {
	opts     Options
	reg      *widget.Registry
	displays []*Display
	events   chan request
	quitOnce sync.Once
	quit     chan struct{}
	wg       sync.WaitGroup

	eventsIn    atomic.Int64
	displayMsgs atomic.Int64
}

type request struct {
	user int
	ev   *widget.Event
	done chan error
}

// New builds and starts the system.
func New(opts Options) (*System, error) {
	if opts.Users <= 0 {
		return nil, errors.New("multiplex: need at least one user")
	}
	reg := widget.NewRegistry()
	if opts.Spec != "" {
		if _, err := widget.Build(reg, "/", opts.Spec); err != nil {
			return nil, err
		}
	}
	s := &System{
		opts:   opts,
		reg:    reg,
		events: make(chan request),
		quit:   make(chan struct{}),
	}
	for i := 0; i < opts.Users; i++ {
		s.displays = append(s.displays, newDisplay())
	}
	// Every attribute change is multiplexed to every participant's display.
	reg.OnAttrChange(func(w *widget.Widget, name string, _, value attr.Value) {
		op := DisplayOp{Path: w.Path(), Attr: name, Value: value}
		for _, d := range s.displays {
			s.displayMsgs.Add(1)
			d.apply(op)
		}
	})
	// Initial mirror of the full UI state ("the application's output is
	// multiplexed to each participant's display").
	_ = reg.Walk("/", func(w *widget.Widget) error {
		st := w.State()
		for _, n := range st.Names() {
			op := DisplayOp{Path: w.Path(), Attr: n, Value: st.Get(n)}
			for _, d := range s.displays {
				d.apply(op)
			}
		}
		return nil
	})
	s.wg.Add(1)
	go s.dispatcher()
	return s, nil
}

// dispatcher serializes all user input through the single instance.
func (s *System) dispatcher() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.events:
			// Uplink latency: the event crosses the network to the central
			// instance.
			sleep(s.opts.Latency)
			err := s.reg.Dispatch(req.ev)
			// Downlink latency: display updates cross back. All users
			// receive them concurrently; one propagation delay covers the
			// fan-out.
			sleep(s.opts.Latency)
			req.done <- err
		case <-s.quit:
			return
		}
	}
}

// Do performs a user interaction and blocks until the user's own display
// reflects it — the earliest moment the user perceives the effect. Every
// interaction pays the round trip; nothing executes locally.
func (s *System) Do(user int, ev *widget.Event) error {
	if user < 0 || user >= len(s.displays) {
		return fmt.Errorf("multiplex: no user %d", user)
	}
	s.eventsIn.Add(1)
	req := request{user: user, ev: ev, done: make(chan error, 1)}
	select {
	case s.events <- req:
	case <-s.quit:
		return errors.New("multiplex: stopped")
	}
	select {
	case err := <-req.done:
		return err
	case <-s.quit:
		return errors.New("multiplex: stopped")
	}
}

// Display returns a participant's virtual screen.
func (s *System) Display(user int) *Display { return s.displays[user] }

// Registry exposes the single application instance (for probes).
func (s *System) Registry() *widget.Registry { return s.reg }

// Leave disconnects a participant: their shared display disappears.
func (s *System) Leave(user int) {
	if user >= 0 && user < len(s.displays) {
		s.displays[user].clear()
	}
}

// Messages returns (events received, display messages sent).
func (s *System) Messages() (events, displayMsgs int64) {
	return s.eventsIn.Load(), s.displayMsgs.Load()
}

// Stop shuts the system down.
func (s *System) Stop() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
