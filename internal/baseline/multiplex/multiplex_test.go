package multiplex

import (
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

func TestSharedDisplay(t *testing.T) {
	s, err := New(Options{Users: 3, Spec: `textfield x value="init"`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	// Initial mirror: every display shows the startup state.
	for i := 0; i < 3; i++ {
		if got := s.Display(i).Attr("/x", widget.AttrValue).AsString(); got != "init" {
			t.Errorf("display %d initial = %q", i, got)
		}
	}

	// User 1's interaction lands on every display — strict WYSIWIS.
	if err := s.Do(1, &widget.Event{Path: "/x", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("typed")}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := s.Display(i).Attr("/x", widget.AttrValue).AsString(); got != "typed" {
			t.Errorf("display %d = %q", i, got)
		}
	}
	events, displayMsgs := s.Messages()
	if events != 1 {
		t.Errorf("events = %d", events)
	}
	// One change × three displays.
	if displayMsgs != 3 {
		t.Errorf("displayMsgs = %d", displayMsgs)
	}
}

func TestLatencyPaidByEveryInteraction(t *testing.T) {
	const lat = 10 * time.Millisecond
	s, err := New(Options{Users: 1, Latency: lat, Spec: `textfield x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	start := time.Now()
	if err := s.Do(0, &widget.Event{Path: "/x", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("v")}}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 2*lat {
		t.Errorf("interaction took %v, want >= %v (full round trip)", elapsed, 2*lat)
	}
}

func TestInputSerialized(t *testing.T) {
	const lat = 5 * time.Millisecond
	s, err := New(Options{Users: 4, Latency: lat, Spec: `textfield x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := s.Do(u, &widget.Event{Path: "/x", Name: widget.EventChanged,
				Args: []attr.Value{attr.String("v")}}); err != nil {
				t.Errorf("user %d: %v", u, err)
			}
		}(u)
	}
	wg.Wait()
	// Four serialized events each pay 2×lat: total >= 8×lat; a parallel
	// architecture would finish in ~2×lat.
	if elapsed := time.Since(start); elapsed < 8*lat {
		t.Errorf("4 concurrent events took %v, want >= %v (serialized)", elapsed, 8*lat)
	}
}

func TestLeaveClearsDisplay(t *testing.T) {
	s, err := New(Options{Users: 2, Spec: `textfield x value="shared"`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Leave(1)
	// The shared window disappears from the leaver's environment — nothing
	// persists (the contrast with COSOFT decoupling).
	if got := s.Display(1).Attr("/x", widget.AttrValue); got.IsValid() {
		t.Errorf("leaver still sees %v", got)
	}
	// Remaining users are unaffected.
	if got := s.Display(0).Attr("/x", widget.AttrValue).AsString(); got != "shared" {
		t.Errorf("remaining display = %q", got)
	}
	// Updates after leaving do not resurrect the leaver's display.
	if err := s.Do(0, &widget.Event{Path: "/x", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("later")}}); err != nil {
		t.Fatal(err)
	}
	if got := s.Display(1).Attr("/x", widget.AttrValue); got.IsValid() {
		t.Errorf("leaver received update %v", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(Options{Users: 0}); err == nil {
		t.Error("zero users must fail")
	}
	if _, err := New(Options{Users: 1, Spec: "bogus"}); err == nil {
		t.Error("bad spec must fail")
	}
	s, err := New(Options{Users: 1, Spec: `textfield x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.Do(5, &widget.Event{Path: "/x", Name: widget.EventChanged}); err == nil {
		t.Error("unknown user must fail")
	}
	if err := s.Do(0, &widget.Event{Path: "/x", Name: "bogus"}); err == nil {
		t.Error("bad event must fail")
	}
}

func TestAccessors(t *testing.T) {
	s, err := New(Options{Users: 1, Spec: `textfield x value="v"`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if s.Registry() == nil {
		t.Error("Registry nil")
	}
	if s.Display(0).Ops() == 0 {
		t.Error("initial mirror produced no ops")
	}
	s.Leave(-1) // out of range must be a no-op
	s.Leave(99)
}
