// Package timestamp implements the optimistic, timestamp-ordered variant of
// the fully replicated architecture — the dependency-detection approach the
// paper attributes to GROVE (§2.1): "each user action is timestamped in
// order to detect conflicting actions."
//
// Operations apply locally at once (no floor control, no server round trip)
// and are broadcast to all replicas. Each operation records which value
// version it overwrote; a receiver that sees an operation whose recorded
// predecessor is not its current version has detected concurrent conflicting
// actions. Conflicts resolve deterministically by (Lamport timestamp, node
// id), undoing the losing value. The package exists as the E8 ablation
// opposite centralized-control locking.
package timestamp

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Version identifies one written value: the writer's Lamport timestamp and
// node id form a total order.
type Version struct {
	TS   uint64
	Node int
}

// less orders versions by (timestamp, node).
func (v Version) less(o Version) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.Node < o.Node
}

// Op is one replicated write: object key, new value, the writer's version,
// and the version the writer observed it overwriting (the dependency).
type Op struct {
	Key   string
	Value string
	Ver   Version
	Prev  Version
}

// Cell is one replicated register.
type cell struct {
	value string
	ver   Version
}

// Node is one replica in the optimistic scheme.
type Node struct {
	id  int
	sys *System

	mu    sync.Mutex
	clock uint64
	cells map[string]cell
}

// Apply performs a local write and broadcasts it: the user sees the effect
// immediately (zero blocking), and conflicts are repaired after the fact.
func (n *Node) Apply(key, value string) {
	n.mu.Lock()
	n.clock++
	prev := n.cells[key].ver
	ver := Version{TS: n.clock, Node: n.id}
	n.cells[key] = cell{value: value, ver: ver}
	n.mu.Unlock()
	n.sys.broadcast(n.id, Op{Key: key, Value: value, Ver: ver, Prev: prev})
}

// receive integrates a remote operation, detecting and resolving conflicts.
func (n *Node) receive(op Op) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if op.Ver.TS > n.clock {
		n.clock = op.Ver.TS
	}
	cur := n.cells[op.Key]
	// Dependency detection: the sender recorded which version it overwrote.
	// If that is not our current version, the sender did not see our value —
	// the two actions were concurrent.
	if cur.ver != op.Prev && cur.ver != (Version{}) && cur.ver != op.Ver {
		n.sys.conflicts.Add(1)
		if op.Ver.less(cur.ver) {
			// Our value wins the total order: the arriving action is
			// discarded (its effect is undone everywhere it applied).
			n.sys.undos.Add(1)
			return
		}
		// The arriving value wins: our local value is undone.
		n.sys.undos.Add(1)
	}
	if cur.ver.less(op.Ver) {
		n.cells[op.Key] = cell{value: op.Value, ver: op.Ver}
	}
}

// Value reads the node's current value of key.
func (n *Node) Value(key string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cells[key].value
}

// version reads the node's current version of key.
func (n *Node) version(key string) Version {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cells[key].ver
}

// System wires N replicas with an in-process broadcast bus.
type System struct {
	nodes []*Node
	bus   chan busMsg
	delay time.Duration
	wg    sync.WaitGroup
	once  sync.Once

	broadcasts atomic.Int64
	conflicts  atomic.Int64
	undos      atomic.Int64
}

type busMsg struct {
	from  int
	op    Op
	due   time.Time     // earliest delivery time (propagation delay)
	flush chan struct{} // when set, the pump signals and skips delivery
}

// New builds and starts a system of n replicas with immediate delivery.
func New(n int) (*System, error) {
	return NewWithDelay(n, 0)
}

// NewWithDelay builds a system whose broadcasts deliver after the given
// propagation delay. A non-zero delay opens genuine concurrency windows —
// replicas keep writing before they see each other's operations, which is
// where timestamped dependency detection earns its keep.
func NewWithDelay(n int, delay time.Duration) (*System, error) {
	if n <= 0 {
		return nil, errors.New("timestamp: need at least one node")
	}
	s := &System{bus: make(chan busMsg, 4096), delay: delay}
	for i := 0; i < n; i++ {
		s.nodes = append(s.nodes, &Node{id: i, sys: s, cells: make(map[string]cell)})
	}
	s.wg.Add(1)
	go s.pump()
	return s, nil
}

// Node returns replica i.
func (s *System) Node(i int) *Node { return s.nodes[i] }

func (s *System) broadcast(from int, op Op) {
	s.broadcasts.Add(1)
	s.bus <- busMsg{from: from, op: op, due: time.Now().Add(s.delay)}
}

// pump delivers each broadcast to every other replica. A single pump
// goroutine gives a total delivery order, mimicking a reliable ordered
// multicast; conflicts still arise because senders apply locally *before*
// broadcasting.
func (s *System) pump() {
	defer s.wg.Done()
	for msg := range s.bus {
		if msg.flush != nil {
			close(msg.flush)
			continue
		}
		if wait := time.Until(msg.due); wait > 0 {
			time.Sleep(wait)
		}
		for _, n := range s.nodes {
			if n.id != msg.from {
				n.receive(msg.op)
			}
		}
	}
}

// Quiesce blocks until all broadcasts enqueued before the call have been
// delivered (a flush marker travels through the ordered bus).
func (s *System) Quiesce() {
	done := make(chan struct{})
	s.bus <- busMsg{flush: done}
	<-done
}

// Converged reports whether all replicas agree on the value of key.
func (s *System) Converged(key string) bool {
	want := s.nodes[0].version(key)
	for _, n := range s.nodes[1:] {
		if n.version(key) != want {
			return false
		}
	}
	return true
}

// Stats returns (broadcast count, detected conflicts, undos performed).
func (s *System) Stats() (broadcasts, conflicts, undos int64) {
	return s.broadcasts.Load(), s.conflicts.Load(), s.undos.Load()
}

// Stop shuts the bus down.
func (s *System) Stop() {
	s.once.Do(func() { close(s.bus) })
	s.wg.Wait()
}
