package timestamp

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSequentialWritesConverge(t *testing.T) {
	s, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Node(0).Apply("x", "a")
	s.Quiesce()
	s.Node(1).Apply("x", "b")
	s.Quiesce()
	for i := 0; i < 3; i++ {
		if got := s.Node(i).Value("x"); got != "b" {
			t.Errorf("node %d = %q", i, got)
		}
	}
	if !s.Converged("x") {
		t.Error("not converged")
	}
	_, conflicts, _ := s.Stats()
	if conflicts != 0 {
		t.Errorf("sequential writes produced %d conflicts", conflicts)
	}
}

func TestConcurrentWritesDetected(t *testing.T) {
	// The delivery delay guarantees both writes happen before either is
	// seen — a deterministic conflict.
	s, err := NewWithDelay(2, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	// Both nodes write before either sees the other: a genuine conflict.
	s.Node(0).Apply("x", "from0")
	s.Node(1).Apply("x", "from1")
	s.Quiesce()
	if !s.Converged("x") {
		t.Fatal("conflict resolution must converge")
	}
	// The total order (ts=1,node=1) > (ts=1,node=0): node 1's value wins.
	if got := s.Node(0).Value("x"); got != "from1" {
		t.Errorf("winner = %q, want from1", got)
	}
	_, conflicts, undos := s.Stats()
	if conflicts == 0 || undos == 0 {
		t.Errorf("conflicts = %d, undos = %d; want both > 0", conflicts, undos)
	}
}

func TestNoConflictOnDistinctKeys(t *testing.T) {
	s, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	s.Node(0).Apply("a", "x")
	s.Node(1).Apply("b", "y")
	s.Quiesce()
	if s.Node(1).Value("a") != "x" || s.Node(0).Value("b") != "y" {
		t.Error("values not replicated")
	}
	_, conflicts, _ := s.Stats()
	if conflicts != 0 {
		t.Errorf("independent writes produced %d conflicts", conflicts)
	}
}

func TestManyConcurrentWritersConverge(t *testing.T) {
	const nodes, writes = 4, 25
	s, err := New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	var wg sync.WaitGroup
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < writes; i++ {
				s.Node(n).Apply("hot", fmt.Sprintf("n%d-%d", n, i))
			}
		}(n)
	}
	wg.Wait()
	s.Quiesce()
	if !s.Converged("hot") {
		vals := make([]string, nodes)
		for i := range vals {
			vals[i] = s.Node(i).Value("hot")
		}
		t.Fatalf("diverged: %v", vals)
	}
	broadcasts, _, _ := s.Stats()
	if broadcasts != nodes*writes {
		t.Errorf("broadcasts = %d, want %d", broadcasts, nodes*writes)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero nodes must fail")
	}
}
