// Package uirepl implements the UI-replicated ("partially replicated")
// architecture of Figure 2, the Suite/Rendezvous reference point: each user
// owns a full UI replica, but ONE shared semantic component executes all
// application actions, buffered and sequential.
//
// "Concurrency on the user interface level is gained through buffering and
// sequential execution of those user actions that affect the semantics of
// the application. If such a semantic action is time-consuming, it may of
// course block the execution of other user's actions for an unacceptably
// long period of time."
package uirepl

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

// SemanticAction is an application operation executed by the shared semantic
// process. It receives the shared semantic state and returns UI updates to
// broadcast to every replica.
type SemanticAction func(state map[string]string) []Update

// Update is one UI change pushed to all replicas after a semantic action.
type Update struct {
	Path string
	Name string // attribute to set
	Text string // string value (the common case for this baseline)
}

// Options configures the system.
type Options struct {
	// Users is the number of UI replicas.
	Users int
	// Latency is the one-way latency between a UI replica and the semantic
	// process.
	Latency time.Duration
	// SemanticCost is the execution time of each semantic action.
	SemanticCost time.Duration
	// Spec builds each user's UI replica.
	Spec string
	// Buffer is the semantic queue depth (0 = 64).
	Buffer int
}

// System is the running UI-replicated architecture.
type System struct {
	opts     Options
	replicas []*widget.Registry
	semantic chan semReq
	state    map[string]string // shared application data, semantic-side only
	quitOnce sync.Once
	quit     chan struct{}
	wg       sync.WaitGroup

	semActions atomic.Int64
	updatesOut atomic.Int64
}

type semReq struct {
	action SemanticAction
	done   chan struct{}
}

// New builds and starts the system.
func New(opts Options) (*System, error) {
	if opts.Users <= 0 {
		return nil, errors.New("uirepl: need at least one user")
	}
	if opts.Buffer == 0 {
		opts.Buffer = 64
	}
	s := &System{
		opts:     opts,
		semantic: make(chan semReq, opts.Buffer),
		state:    make(map[string]string),
		quit:     make(chan struct{}),
	}
	for i := 0; i < opts.Users; i++ {
		reg := widget.NewRegistry()
		if opts.Spec != "" {
			if _, err := widget.Build(reg, "/", opts.Spec); err != nil {
				return nil, err
			}
		}
		s.replicas = append(s.replicas, reg)
	}
	s.wg.Add(1)
	go s.semanticLoop()
	return s, nil
}

// semanticLoop is the single shared semantic process.
func (s *System) semanticLoop() {
	defer s.wg.Done()
	for {
		select {
		case req := <-s.semantic:
			sleep(s.opts.Latency) // uplink to the semantic process
			if s.opts.SemanticCost > 0 {
				time.Sleep(s.opts.SemanticCost)
			}
			updates := req.action(s.state)
			s.semActions.Add(1)
			// Broadcast resulting UI updates to every replica; one
			// propagation delay covers the concurrent fan-out.
			sleep(s.opts.Latency)
			for _, u := range updates {
				for _, reg := range s.replicas {
					s.updatesOut.Add(1)
					if w, err := reg.Lookup(u.Path); err == nil {
						w.SetAttr(u.Name, attr.String(u.Text))
					}
				}
			}
			close(req.done)
		case <-s.quit:
			return
		}
	}
}

// DoLocal performs a purely syntactic interaction: it executes on the user's
// own replica immediately, without involving the semantic process. This is
// the architecture's advantage over the multiplex scheme.
func (s *System) DoLocal(user int, ev *widget.Event) error {
	if user < 0 || user >= len(s.replicas) {
		return errors.New("uirepl: no such user")
	}
	return s.replicas[user].Dispatch(ev)
}

// DoSemantic submits a semantic action and blocks until the shared semantic
// process executed it and broadcast the updates. Semantic actions from all
// users serialize here.
func (s *System) DoSemantic(user int, action SemanticAction) error {
	if user < 0 || user >= len(s.replicas) {
		return errors.New("uirepl: no such user")
	}
	req := semReq{action: action, done: make(chan struct{})}
	select {
	case s.semantic <- req:
	case <-s.quit:
		return errors.New("uirepl: stopped")
	}
	select {
	case <-req.done:
		return nil
	case <-s.quit:
		return errors.New("uirepl: stopped")
	}
}

// Replica returns a user's UI replica.
func (s *System) Replica(user int) *widget.Registry { return s.replicas[user] }

// Messages returns (semantic actions executed, UI updates sent).
func (s *System) Messages() (semActions, updates int64) {
	return s.semActions.Load(), s.updatesOut.Load()
}

// Stop shuts the system down.
func (s *System) Stop() {
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
}

func sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}
