package uirepl

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

func TestLocalActionsAreLocal(t *testing.T) {
	s, err := New(Options{Users: 2, Spec: `textfield draft value=""`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.DoLocal(0, &widget.Event{Path: "/draft", Name: widget.EventChanged,
		Args: []attr.Value{attr.String("private typing")}}); err != nil {
		t.Fatal(err)
	}
	w0, _ := s.Replica(0).Lookup("/draft")
	if w0.Attr(widget.AttrValue).AsString() != "private typing" {
		t.Error("local replica not updated")
	}
	// The other replica is untouched: syntactic actions do not cross the
	// network in this architecture.
	w1, _ := s.Replica(1).Lookup("/draft")
	if w1.Attr(widget.AttrValue).AsString() != "" {
		t.Error("local action leaked to another replica")
	}
	sem, _ := s.Messages()
	if sem != 0 {
		t.Errorf("semantic actions = %d", sem)
	}
}

func TestSemanticActionBroadcasts(t *testing.T) {
	s, err := New(Options{Users: 3, Spec: `label total label="0"`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	err = s.DoSemantic(0, func(state map[string]string) []Update {
		state["count"] = "7"
		return []Update{{Path: "/total", Name: widget.AttrLabel, Text: state["count"]}}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		w, _ := s.Replica(i).Lookup("/total")
		if got := w.Attr(widget.AttrLabel).AsString(); got != "7" {
			t.Errorf("replica %d = %q", i, got)
		}
	}
	sem, updates := s.Messages()
	if sem != 1 || updates != 3 {
		t.Errorf("messages = %d, %d", sem, updates)
	}
}

func TestSlowSemanticActionBlocksOthers(t *testing.T) {
	const cost = 10 * time.Millisecond
	s, err := New(Options{Users: 4, SemanticCost: cost, Spec: `label x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if err := s.DoSemantic(u, func(map[string]string) []Update { return nil }); err != nil {
				t.Errorf("user %d: %v", u, err)
			}
		}(u)
	}
	wg.Wait()
	// Four semantic actions serialize: >= 4×cost. This is the failure mode
	// the paper cites against the UI-replicated architecture.
	if elapsed := time.Since(start); elapsed < 4*cost {
		t.Errorf("4 semantic actions took %v, want >= %v", elapsed, 4*cost)
	}
}

func TestSharedSemanticState(t *testing.T) {
	s, err := New(Options{Users: 2, Spec: `label x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for i := 0; i < 5; i++ {
		user := i % 2
		if err := s.DoSemantic(user, func(state map[string]string) []Update {
			state["n"] = fmt.Sprintf("%d", i+1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Verify through a final read action that all writers hit one state.
	var got string
	if err := s.DoSemantic(0, func(state map[string]string) []Update {
		got = state["n"]
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got != "5" {
		t.Errorf("shared state n = %q", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := New(Options{Users: 0}); err == nil {
		t.Error("zero users must fail")
	}
	if _, err := New(Options{Users: 1, Spec: "bogus"}); err == nil {
		t.Error("bad spec must fail")
	}
	s, err := New(Options{Users: 1, Spec: `label x`})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if err := s.DoLocal(9, nil); err == nil {
		t.Error("bad user must fail")
	}
	if err := s.DoSemantic(9, nil); err == nil {
		t.Error("bad user must fail")
	}
}
