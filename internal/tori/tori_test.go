package tori

import (
	"strings"
	"testing"

	"cosoft/internal/db"
	"cosoft/internal/widget"
)

func newApp(t testing.TB, rows int) *App {
	t.Helper()
	database, err := Bibliography(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(database, BibliographyDesc())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestFormGeneration(t *testing.T) {
	app := newApp(t, 50)
	reg := app.Registry()
	for _, path := range []string{
		"/query", "/query/view", "/query/a_author/value", "/query/a_author/op",
		"/query/a_year/caption", "/query/go",
		"/result", "/result/rows", "/result/count", "/result/newquery",
	} {
		if _, err := reg.Lookup(path); err != nil {
			t.Errorf("missing %s: %v", path, err)
		}
	}
	// Operator menu carries TORI's comparison operators.
	op, _ := reg.Lookup("/query/a_author/op")
	items := op.Attr(widget.AttrItems).AsStringList()
	if len(items) != len(db.Ops()) {
		t.Errorf("op menu = %v", items)
	}
	// View menu includes "all" plus the declared views, sorted.
	view, _ := reg.Lookup("/query/view")
	got := view.Attr(widget.AttrItems).AsStringList()
	want := []string{"all", "by-author", "by-venue"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("views = %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(db.New(), FormDesc{}); err == nil {
		t.Error("empty description must fail")
	}
}

func TestQueryExecution(t *testing.T) {
	app := newApp(t, 200)
	if err := app.SetField("author", "zhao"); err != nil {
		t.Fatal(err)
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	rows := app.ResultRows()
	if len(rows) == 0 {
		t.Fatal("no results for author=zhao")
	}
	for _, row := range rows {
		if !strings.HasPrefix(row, "zhao |") {
			t.Errorf("row %q does not match predicate", row)
		}
	}
	if app.QueriesRun() != 1 {
		t.Errorf("queries = %d", app.QueriesRun())
	}
	count, _ := app.Registry().Lookup("/result/count")
	if !strings.HasSuffix(count.Attr(widget.AttrLabel).AsString(), "rows") {
		t.Errorf("count label = %q", count.Attr(widget.AttrLabel))
	}
}

func TestOperatorsInForm(t *testing.T) {
	app := newApp(t, 200)
	if err := app.SetField("year", "1980"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetOp("year", db.OpLT); err != nil {
		t.Fatal(err)
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	for _, row := range app.ResultRows() {
		cells := strings.Split(row, " | ")
		if cells[3] >= "1980" {
			t.Errorf("row year %s not < 1980", cells[3])
		}
	}
}

func TestViewsRestrictPredicates(t *testing.T) {
	app := newApp(t, 200)
	// Fill two fields, then select a view that only includes author: the
	// journal predicate must be ignored.
	if err := app.SetField("author", "zhao"); err != nil {
		t.Fatal(err)
	}
	if err := app.SetField("journal", "NOSUCH"); err != nil {
		t.Fatal(err)
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	if len(app.ResultRows()) != 0 {
		t.Fatal("conjunction should have matched nothing")
	}
	if err := app.SelectView("by-author"); err != nil {
		t.Fatal(err)
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	if len(app.ResultRows()) == 0 {
		t.Error("by-author view must ignore the journal predicate")
	}
}

func TestNewQueryFromSelection(t *testing.T) {
	app := newApp(t, 200)
	if err := app.SetField("author", "zhao"); err != nil {
		t.Fatal(err)
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	rows := app.ResultRows()
	if len(rows) == 0 {
		t.Fatal("need results")
	}
	if err := app.SelectResult(rows[0]); err != nil {
		t.Fatal(err)
	}
	if err := app.NewQueryFromSelection(); err != nil {
		t.Fatal(err)
	}
	cells := strings.Split(rows[0], " | ")
	if got := app.Field("author"); got != cells[0] {
		t.Errorf("author field = %q, want %q", got, cells[0])
	}
	if got := app.Field("title"); got != cells[1] {
		t.Errorf("title field = %q, want %q", got, cells[1])
	}
	// Re-submitting the instantiated query matches at least the row itself.
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	if len(app.ResultRows()) == 0 {
		t.Error("instantiated query found nothing")
	}
}

func TestNewQueryWithoutSelectionIsNoop(t *testing.T) {
	app := newApp(t, 10)
	if err := app.NewQueryFromSelection(); err != nil {
		t.Fatal(err)
	}
	if got := app.Field("author"); got != "" {
		t.Errorf("field = %q", got)
	}
}

func TestBibliographyDeterministic(t *testing.T) {
	a, err := Bibliography(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bibliography(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	qa, _ := a.Run(db.Query{Table: "pubs"})
	qb, _ := b.Run(db.Query{Table: "pubs"})
	if len(qa.Rows) != 100 || len(qb.Rows) != 100 {
		t.Fatal("wrong sizes")
	}
	for i := range qa.Rows {
		if strings.Join(qa.Rows[i], "|") != strings.Join(qb.Rows[i], "|") {
			t.Fatal("dataset not deterministic")
		}
	}
}

func TestRowsFoundAccumulates(t *testing.T) {
	app := newApp(t, 100)
	if app.RowsFound() != 0 {
		t.Fatal("fresh app has rows")
	}
	if err := app.Submit(); err != nil {
		t.Fatal(err)
	}
	if app.RowsFound() == 0 {
		t.Error("RowsFound did not accumulate")
	}
	if app.Database() == nil {
		t.Error("Database nil")
	}
}
