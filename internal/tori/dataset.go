package tori

import (
	"fmt"
	"math/rand"

	"cosoft/internal/db"
)

// BibliographyColumns is the schema of the synthetic bibliography dataset.
func BibliographyColumns() []db.Column {
	return []db.Column{
		{Name: "author", Kind: db.KindString},
		{Name: "title", Kind: db.KindString},
		{Name: "journal", Kind: db.KindString},
		{Name: "year", Kind: db.KindInt},
	}
}

// BibliographyDesc is the standard query-form description for the dataset.
func BibliographyDesc() FormDesc {
	return FormDesc{
		Title: "Bibliography retrieval",
		Table: "pubs",
		Attributes: []AttrDesc{
			{Name: "author", Label: "Author"},
			{Name: "title", Label: "Title"},
			{Name: "journal", Label: "Journal"},
			{Name: "year", Label: "Year"},
		},
		Views: map[string][]string{
			"by-author": {"author"},
			"by-venue":  {"journal", "year"},
		},
	}
}

var (
	bibAuthors = []string{
		"zhao", "hoppe", "lamport", "hoare", "knuth", "liskov", "gray",
		"stonebraker", "dijkstra", "ritchie", "thompson", "engelbart",
		"kay", "sutherland", "corbato", "hamming",
	}
	bibTopics = []string{
		"Distributed Systems", "Groupware", "User Interfaces", "Databases",
		"Operating Systems", "Hypertext", "Collaboration", "Networks",
		"Synchronization", "Replication",
	}
	bibJournals = []string{
		"CACM", "TOCS", "TODS", "TOG", "IEEE Computer", "ICDCS", "CSCW",
		"CHI", "UIST",
	}
)

// Bibliography builds a deterministic synthetic bibliography of n rows
// (seeded), indexed on author — the controllable-cost corpus for the TORI
// coupling experiment.
func Bibliography(n int, seed int64) (*db.DB, error) {
	d := db.New()
	if err := d.CreateTable("pubs", BibliographyColumns()); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		author := bibAuthors[r.Intn(len(bibAuthors))]
		title := fmt.Sprintf("%s Considered %s (%d)",
			bibTopics[r.Intn(len(bibTopics))],
			[]string{"Helpful", "Harmful", "Again", "at Scale"}[r.Intn(4)], i)
		journal := bibJournals[r.Intn(len(bibJournals))]
		year := fmt.Sprintf("%d", 1968+r.Intn(27))
		if err := d.Insert("pubs", author, title, journal, year); err != nil {
			return nil, err
		}
	}
	if err := d.CreateIndex("pubs", "author"); err != nil {
		return nil, err
	}
	return d, nil
}
