// Package tori implements TORI, the "Task-Oriented database Retrieval
// Interface" the paper converted to a cooperative application (§4): query
// and result forms generated from high-level descriptions, operator menus,
// view selection, query invocation, and partial instantiation of new queries
// from result rows.
//
// Coupling TORI instances synchronizes the *forms*, not the results: a
// coupled query re-executes in every participant's environment against that
// participant's own database — "multiple evaluation is more flexible in that
// it allows queries to be different ... also, queries can be sent to
// different databases."
package tori

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"cosoft/internal/attr"
	"cosoft/internal/db"
	"cosoft/internal/widget"
)

// AttrDesc describes one query attribute of the form.
type AttrDesc struct {
	// Name is the database column.
	Name string
	// Label is the human caption.
	Label string
}

// FormDesc is the high-level description TORI generates its forms from.
type FormDesc struct {
	// Title captions the query form.
	Title string
	// Table is the database relation queried.
	Table string
	// Attributes lists the query attributes in display order.
	Attributes []AttrDesc
	// Views maps view names to attribute subsets ("a set of query
	// attributes"); the "all" view always exists.
	Views map[string][]string
	// Limit bounds result rows (0 = 100).
	Limit int
}

// App is one TORI application instance.
type App struct {
	reg      *widget.Registry
	database *db.DB
	desc     FormDesc

	queriesRun atomic.Int64
	rowsFound  atomic.Int64
}

// Paths of the generated UI objects.
const (
	QueryPath  = "/query"
	ResultPath = "/result"
)

// New generates the query and result forms and wires the retrieval logic.
func New(database *db.DB, desc FormDesc) (*App, error) {
	if len(desc.Attributes) == 0 {
		return nil, errors.New("tori: form needs at least one attribute")
	}
	if desc.Limit == 0 {
		desc.Limit = 100
	}
	a := &App{reg: widget.NewRegistry(), database: database, desc: desc}
	if err := a.buildForms(); err != nil {
		return nil, err
	}
	return a, nil
}

// buildForms generates the widget trees from the form description.
func (a *App) buildForms() error {
	ops := make([]string, 0, len(db.Ops()))
	for _, op := range db.Ops() {
		ops = append(ops, string(op))
	}
	query, err := a.reg.Create("/", "query", "form",
		attr.Set{widget.AttrTitle: attr.String(a.desc.Title)})
	if err != nil {
		return err
	}
	views := append([]string{"all"}, a.viewNames()...)
	if _, err := a.reg.Create(query.Path(), "view", "menu", attr.Set{
		widget.AttrItems:     attr.StringList(views...),
		widget.AttrSelection: attr.String("all"),
	}); err != nil {
		return err
	}
	for _, ad := range a.desc.Attributes {
		group, err := a.reg.Create(query.Path(), "a_"+ad.Name, "form",
			attr.Set{widget.AttrTitle: attr.String(ad.Label)})
		if err != nil {
			return err
		}
		if _, err := a.reg.Create(group.Path(), "caption", "label",
			attr.Set{widget.AttrLabel: attr.String(ad.Label)}); err != nil {
			return err
		}
		if _, err := a.reg.Create(group.Path(), "op", "menu", attr.Set{
			widget.AttrItems:     attr.StringList(ops...),
			widget.AttrSelection: attr.String(string(db.OpEq)),
		}); err != nil {
			return err
		}
		if _, err := a.reg.Create(group.Path(), "value", "textfield", nil); err != nil {
			return err
		}
	}
	goBtn, err := a.reg.Create(query.Path(), "go", "button",
		attr.Set{widget.AttrLabel: attr.String("Search")})
	if err != nil {
		return err
	}
	if err := goBtn.AddCallback(widget.EventActivate, func(*widget.Event) {
		a.runQuery()
	}); err != nil {
		return err
	}

	result, err := a.reg.Create("/", "result", "form",
		attr.Set{widget.AttrTitle: attr.String(a.desc.Title + " — results")})
	if err != nil {
		return err
	}
	if _, err := a.reg.Create(result.Path(), "rows", "list",
		attr.Set{widget.AttrItems: attr.StringList()}); err != nil {
		return err
	}
	if _, err := a.reg.Create(result.Path(), "count", "label",
		attr.Set{widget.AttrLabel: attr.String("no query yet")}); err != nil {
		return err
	}
	newBtn, err := a.reg.Create(result.Path(), "newquery", "button",
		attr.Set{widget.AttrLabel: attr.String("New query from selection")})
	if err != nil {
		return err
	}
	if err := newBtn.AddCallback(widget.EventActivate, func(*widget.Event) {
		a.instantiateFromSelection()
	}); err != nil {
		return err
	}
	return nil
}

func (a *App) viewNames() []string {
	names := make([]string, 0, len(a.desc.Views))
	for n := range a.desc.Views {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry exposes the application's widget tree.
func (a *App) Registry() *widget.Registry { return a.reg }

// Database exposes the instance's database (each participant may use a
// different one).
func (a *App) Database() *db.DB { return a.database }

// fieldPath returns the textfield path of a query attribute.
func fieldPath(name string) string { return QueryPath + "/a_" + name + "/value" }

// opPath returns the operator-menu path of a query attribute.
func opPath(name string) string { return QueryPath + "/a_" + name + "/op" }

// SetField types a value into a query attribute (a high-level 'changed'
// event that replicates when coupled).
func (a *App) SetField(name, value string) error {
	return a.reg.Dispatch(&widget.Event{
		Path: fieldPath(name), Name: widget.EventChanged,
		Args: []attr.Value{attr.String(value)},
	})
}

// SetOp selects a comparison operator for a query attribute.
func (a *App) SetOp(name string, op db.Op) error {
	return a.reg.Dispatch(&widget.Event{
		Path: opPath(name), Name: widget.EventSelect,
		Args: []attr.Value{attr.String(string(op))},
	})
}

// SelectView picks a named attribute subset.
func (a *App) SelectView(view string) error {
	return a.reg.Dispatch(&widget.Event{
		Path: QueryPath + "/view", Name: widget.EventSelect,
		Args: []attr.Value{attr.String(view)},
	})
}

// Submit invokes the query (the synchronized invocation of §4).
func (a *App) Submit() error {
	return a.reg.Dispatch(&widget.Event{Path: QueryPath + "/go", Name: widget.EventActivate})
}

// activeAttrs returns the attribute names of the current view.
func (a *App) activeAttrs() []string {
	view := "all"
	if w, err := a.reg.Lookup(QueryPath + "/view"); err == nil {
		view = w.Attr(widget.AttrSelection).AsString()
	}
	if view == "all" || a.desc.Views[view] == nil {
		names := make([]string, len(a.desc.Attributes))
		for i, ad := range a.desc.Attributes {
			names[i] = ad.Name
		}
		return names
	}
	return a.desc.Views[view]
}

// buildQuery reads the form state into a database query.
func (a *App) buildQuery() db.Query {
	q := db.Query{Table: a.desc.Table, Limit: a.desc.Limit}
	for _, name := range a.activeAttrs() {
		w, err := a.reg.Lookup(fieldPath(name))
		if err != nil {
			continue
		}
		value := w.Attr(widget.AttrValue).AsString()
		if value == "" {
			continue
		}
		op := db.OpEq
		if ow, err := a.reg.Lookup(opPath(name)); err == nil {
			if sel := ow.Attr(widget.AttrSelection).AsString(); sel != "" {
				op = db.Op(sel)
			}
		}
		q.Where = append(q.Where, db.Predicate{Column: name, Op: op, Value: value})
	}
	return q
}

// runQuery executes the current form against the local database and fills
// the result form. It runs in every coupled environment, implementing
// multiple evaluation.
func (a *App) runQuery() {
	a.queriesRun.Add(1)
	res, err := a.database.Run(a.buildQuery())
	countLabel, lerr := a.reg.Lookup(ResultPath + "/count")
	if err != nil {
		if lerr == nil {
			countLabel.SetAttr(widget.AttrLabel, attr.String("error: "+err.Error()))
		}
		return
	}
	a.rowsFound.Add(int64(len(res.Rows)))
	items := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		items[i] = strings.Join(row, " | ")
	}
	if rows, err := a.reg.Lookup(ResultPath + "/rows"); err == nil {
		rows.SetAttr(widget.AttrItems, attr.StringList(items...))
	}
	if lerr == nil {
		countLabel.SetAttr(widget.AttrLabel, attr.String(fmt.Sprintf("%d rows", len(res.Rows))))
	}
}

// SelectResult picks a result row (a high-level 'select' event).
func (a *App) SelectResult(row string) error {
	return a.reg.Dispatch(&widget.Event{
		Path: ResultPath + "/rows", Name: widget.EventSelect,
		Args: []attr.Value{attr.String(row)},
	})
}

// NewQueryFromSelection uses the selected result row "to partially
// instantiate new query forms" (§4).
func (a *App) NewQueryFromSelection() error {
	return a.reg.Dispatch(&widget.Event{Path: ResultPath + "/newquery", Name: widget.EventActivate})
}

// instantiateFromSelection fills the query fields from the selected result
// row.
func (a *App) instantiateFromSelection() {
	rows, err := a.reg.Lookup(ResultPath + "/rows")
	if err != nil {
		return
	}
	selected := rows.Attr(widget.AttrSelection).AsString()
	if selected == "" {
		return
	}
	cells := strings.Split(selected, " | ")
	for i, ad := range a.desc.Attributes {
		if i >= len(cells) {
			break
		}
		if w, err := a.reg.Lookup(fieldPath(ad.Name)); err == nil {
			w.SetAttr(widget.AttrValue, attr.String(cells[i]))
		}
		if ow, err := a.reg.Lookup(opPath(ad.Name)); err == nil {
			ow.SetAttr(widget.AttrSelection, attr.String(string(db.OpEq)))
		}
	}
}

// ResultRows returns the current result list items.
func (a *App) ResultRows() []string {
	w, err := a.reg.Lookup(ResultPath + "/rows")
	if err != nil {
		return nil
	}
	return w.Attr(widget.AttrItems).AsStringList()
}

// Field returns the current value of a query attribute field.
func (a *App) Field(name string) string {
	w, err := a.reg.Lookup(fieldPath(name))
	if err != nil {
		return ""
	}
	return w.Attr(widget.AttrValue).AsString()
}

// QueriesRun returns the number of query evaluations performed in this
// environment (each coupled Submit re-executes here).
func (a *App) QueriesRun() int64 { return a.queriesRun.Load() }

// RowsFound returns the cumulative result rows produced in this environment.
func (a *App) RowsFound() int64 { return a.rowsFound.Load() }
