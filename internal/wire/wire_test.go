package wire

import (
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
)

func sampleTreeState() widget.TreeState {
	return widget.TreeState{
		Class: "form", Name: "query",
		Attrs: attr.Set{"title": attr.String("Q")},
		Children: []widget.TreeState{
			{Class: "textfield", Name: "author", Attrs: attr.Set{"value": attr.String("knuth")}},
			{Class: "menu", Name: "op", Attrs: attr.Set{"items": attr.StringList("eq", "substring")}},
		},
	}
}

func allMessages() []Message {
	refA := couple.ObjectRef{Instance: "i1", Path: "/a"}
	refB := couple.ObjectRef{Instance: "i2", Path: "/b"}
	return []Message{
		Register{AppType: "tori", Host: "h", User: "u"},
		Registered{ID: "tori-1"},
		Deregister{},
		Declare{Path: "/q", Class: "textfield"},
		Retract{Path: "/q"},
		Couple{From: refA, To: refB},
		Decouple{From: refA, To: refB},
		LinkAdded{Link: couple.Link{From: refA, To: refB, Creator: "i3"}},
		LinkRemoved{Link: couple.Link{From: refB, To: refA, Creator: "i1"}},
		Event{Path: "/q", Name: "changed", Args: []attr.Value{attr.String("x"), attr.Int(3)}},
		Event{Path: "/q", Name: "activate"},
		Exec{EventID: 7, TargetPath: "/q2", Name: "changed",
			Args: []attr.Value{attr.String("x")}, Origin: refA},
		ExecAck{EventID: 7},
		EventResult{OK: true},
		EventResult{OK: false, Reason: "locked"},
		SetLocks{Paths: []string{"/a", "/b"}, Locked: true},
		SetLocks{Paths: nil, Locked: false},
		CopyTo{FromPath: "/a", To: refB, State: sampleTreeState(), Destructive: true},
		CopyFrom{From: refA, ToPath: "/b"},
		RemoteCopy{From: refA, To: refB, Destructive: true},
		ApplyState{Path: "/b", State: sampleTreeState(), Origin: "i1"},
		StateRequest{RequestID: 9, Path: "/a"},
		StateReply{RequestID: 9, OK: true, State: sampleTreeState()},
		StateReply{RequestID: 10, OK: false, Reason: "gone"},
		Command{Name: "refresh", Targets: []couple.InstanceID{"i1", "i2"}, Payload: []byte{1, 2, 3}},
		Command{Name: "broadcast"},
		CommandDeliver{Name: "refresh", From: "i3", Payload: []byte("data")},
		FetchState{Ref: refA, RelevantOnly: true},
		StateRequest{RequestID: 3, Path: "/x", RelevantOnly: true},
		Undo{Path: "/a"},
		Redo{Path: "/a"},
		ListInstances{},
		InstanceList{Instances: []InstanceInfo{
			{ID: "i1", AppType: "tori", Host: "h", User: "u",
				Objects: []DeclaredObject{{Path: "/q", Class: "form"}}},
			{ID: "i2", AppType: "cosoft"},
		}},
		GrantPerm{User: "u", State: "i1:*", Right: 2},
		RevokePerm{User: "u", State: "i1:*", Right: 2},
		Ping{Nonce: 42},
		Pong{Nonce: 42},
		SessionToken{},
		SessionToken{Token: "f00dcafe"},
		Resume{Token: "f00dcafe"},
		Batch{Envelopes: []Envelope{
			{Seq: 4, Msg: SetLocks{Paths: []string{"/a", "/b"}, Locked: true}},
			{Trace: obs.TraceContext{Trace: 7, Span: 8},
				Msg: Exec{EventID: 7, TargetPath: "/q", Name: "changed",
					Args: []attr.Value{attr.String("x")}, Origin: refA}},
			{RefSeq: 3, Msg: OK{}},
		}},
		Batch{Envelopes: []Envelope{{Msg: Exec{EventID: 9, TargetPath: "/q", Name: "activate"}}}},
		BatchAck{Acks: []BatchAckEntry{
			{EventID: 7, Trace: obs.TraceContext{Trace: 7, Span: 9}},
			{EventID: 8},
		}},
		OK{},
		Err{Text: "boom"},
	}
}

// messagesEqual compares messages, treating nil and empty slices alike.
func messagesEqual(a, b Message) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case Event:
		if len(v.Args) == 0 {
			v.Args = nil
		}
		return v
	case Exec:
		if len(v.Args) == 0 {
			v.Args = nil
		}
		return v
	case Command:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
		if len(v.Targets) == 0 {
			v.Targets = nil
		}
		return v
	case CommandDeliver:
		if len(v.Payload) == 0 {
			v.Payload = nil
		}
		return v
	case SetLocks:
		if len(v.Paths) == 0 {
			v.Paths = nil
		}
		return v
	case Batch:
		envs := make([]Envelope, len(v.Envelopes))
		for i, e := range v.Envelopes {
			e.Msg = normalize(e.Msg)
			envs[i] = e
		}
		v.Envelopes = envs
		return v
	case CopyTo:
		v.State = normalizeTS(v.State)
		return v
	case ApplyState:
		v.State = normalizeTS(v.State)
		return v
	case StateReply:
		v.State = normalizeTS(v.State)
		return v
	default:
		return m
	}
}

// normalizeTS maps nil attribute sets to empty ones: the codec cannot
// distinguish them and neither can any consumer.
func normalizeTS(ts widget.TreeState) widget.TreeState {
	if ts.Attrs == nil {
		ts.Attrs = attr.NewSet()
	}
	for i := range ts.Children {
		ts.Children[i] = normalizeTS(ts.Children[i])
	}
	return ts
}

func TestMessageRoundTripOverPipe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	msgs := allMessages()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, want := range msgs {
			env, err := b.Read()
			if err != nil {
				t.Errorf("read %d: %v", i, err)
				return
			}
			if env.Seq != uint64(i+1) || env.RefSeq != uint64(i) {
				t.Errorf("msg %d: seq=%d refSeq=%d", i, env.Seq, env.RefSeq)
			}
			if !messagesEqual(env.Msg, want) {
				t.Errorf("msg %d (%s): got %#v, want %#v", i, want.MsgType(), env.Msg, want)
			}
		}
	}()
	for i, m := range msgs {
		if err := a.Write(Envelope{Seq: uint64(i + 1), RefSeq: uint64(i), Msg: m}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	wg.Wait()
}

func TestTypeString(t *testing.T) {
	if got := TEvent.String(); got != "Event" {
		t.Errorf("String = %q", got)
	}
	if got := Type(999).String(); got != "Type(999)" {
		t.Errorf("String = %q", got)
	}
	// Every declared message type must have a name and every message's
	// MsgType must be named.
	for _, m := range allMessages() {
		if _, ok := typeNames[m.MsgType()]; !ok {
			t.Errorf("type %d has no name", m.MsgType())
		}
	}
}

func TestReadEOF(t *testing.T) {
	a, b := Pipe()
	go a.Close()
	if _, err := b.Read(); !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) {
		t.Errorf("err = %v", err)
	}
	b.Close()
}

func TestWriteNilMessage(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Write(Envelope{}); err == nil {
		t.Error("nil message must fail")
	}
}

func TestCorruptFrames(t *testing.T) {
	send := func(t *testing.T, raw []byte) error {
		t.Helper()
		ca, cb := net.Pipe()
		defer ca.Close()
		conn := NewConn(cb)
		defer conn.Close()
		go func() {
			ca.Write(raw)
			ca.Close()
		}()
		_, err := conn.Read()
		return err
	}
	// Oversized frame announcement.
	if err := send(t, []byte{0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized: %v", err)
	}
	// Too-short frame.
	if err := send(t, []byte{2, 0, 0, 0, 1, 2}); err == nil {
		t.Error("short frame must fail")
	}
	// Unknown type.
	if err := send(t, []byte{4, 0, 0, 0, 0xff, 0x7f, 0, 0}); err == nil {
		t.Error("unknown type must fail")
	}
	// Truncated body for a known type (Register wants three strings).
	if err := send(t, []byte{4, 0, 0, 0, byte(TRegister), 0, 0, 0}); err == nil {
		t.Error("truncated register must fail")
	}
	// Trailing garbage after a valid body.
	if err := send(t, []byte{6, 0, 0, 0, byte(TOK), 0, 0, 0, 9, 9}); err == nil {
		t.Error("trailing bytes must fail")
	}
}

func TestDecodeTrailingAndTruncated(t *testing.T) {
	for _, m := range allMessages() {
		body := m.encode(nil)
		// Trailing byte must be rejected.
		if _, err := decodeMessage(m.MsgType(), append(append([]byte{}, body...), 0)); err == nil {
			// Messages whose last field is variable-length may absorb one
			// extra byte legally only if encoding is ambiguous — none are.
			t.Errorf("%s: trailing byte accepted", m.MsgType())
		}
		// Every strict prefix must error or decode to something different,
		// and must never panic.
		for cut := 0; cut < len(body); cut++ {
			got, err := decodeMessage(m.MsgType(), body[:cut])
			if err == nil && messagesEqual(got, m) {
				t.Errorf("%s: prefix %d decoded to identical message", m.MsgType(), cut)
			}
		}
	}
}

func TestConcurrentWrites(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	const n = 50
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2*n; i++ {
			if _, err := b.Read(); err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := a.Write(Envelope{Seq: 1, Msg: OK{}}); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

func BenchmarkEventRoundTrip(b *testing.B) {
	ca, cb := Pipe()
	defer ca.Close()
	defer cb.Close()
	msg := Event{Path: "/query/author", Name: "changed",
		Args: []attr.Value{attr.String("some typical field content")}}
	go func() {
		for {
			env, err := cb.Read()
			if err != nil {
				return
			}
			if err := cb.Write(Envelope{RefSeq: env.Seq, Msg: OK{}}); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ca.Write(Envelope{Seq: uint64(i + 1), Msg: msg}); err != nil {
			b.Fatal(err)
		}
		if _, err := ca.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRemoteAddr(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if a.RemoteAddr() == nil {
		t.Error("RemoteAddr nil")
	}
}
