package wire

import (
	"encoding/binary"
	"testing"

	"cosoft/internal/obs"
)

// FuzzDecodeMessage asserts the message decoder never panics on arbitrary
// bodies of every known type, and that accepted messages re-encode to an
// equal message.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(uint16(m.MsgType()), m.encode(nil))
	}
	// Hand-built malformed Batch bodies: truncated record, zero record
	// count, over-cap count, nested batch — all must be rejected, never
	// panic.
	for _, body := range malformedBatchBodies() {
		f.Add(uint16(TBatch), body)
	}
	f.Fuzz(func(t *testing.T, rawType uint16, body []byte) {
		m, err := decodeMessage(Type(rawType), body)
		if err != nil {
			return
		}
		again, err := decodeMessage(m.MsgType(), m.encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !messagesEqual(m, again) {
			t.Fatalf("re-encode changed the message: %#v vs %#v", m, again)
		}
	})
}

// FuzzConnRead asserts the framed reader never panics on arbitrary streams.
// The corpus seeds both envelope encodings: the pre-trace layout and the
// traceFlag layout with trace/span varints after refSeq.
func FuzzConnRead(f *testing.F) {
	env := Envelope{Seq: 3, Msg: OK{}}
	var frame []byte
	body := binary.LittleEndian.AppendUint16(nil, uint16(TOK))
	body = binary.AppendUvarint(body, env.Seq)
	body = binary.AppendUvarint(body, 0)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	f.Add(frame)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	// Traced frame: flag bit set, trace/span varints present.
	tbody := binary.LittleEndian.AppendUint16(nil, uint16(TExecAck)|traceFlag)
	tbody = binary.AppendUvarint(tbody, 1)      // seq
	tbody = binary.AppendUvarint(tbody, 0)      // refSeq
	tbody = binary.AppendUvarint(tbody, 0xbeef) // trace id
	tbody = binary.AppendUvarint(tbody, 0xcafe) // span id
	tbody = ExecAck{EventID: 9}.encode(tbody)
	tframe := binary.LittleEndian.AppendUint32(nil, uint32(len(tbody)))
	tframe = append(tframe, tbody...)
	f.Add(tframe)
	// Flag bit set but trace varints truncated.
	hbody := binary.LittleEndian.AppendUint16(nil, uint16(TOK)|traceFlag)
	hbody = binary.AppendUvarint(hbody, 1)
	hbody = binary.AppendUvarint(hbody, 0)
	hframe := binary.LittleEndian.AppendUint32(nil, uint32(len(hbody)))
	hframe = append(hframe, hbody...)
	f.Add(hframe)
	// Batch frames: a well-formed two-record batch (with the batchFlag
	// capability bit set, as a batching sender would emit it) plus every
	// malformed body from the rejection corpus, framed.
	bbody := binary.LittleEndian.AppendUint16(nil, uint16(TBatch)|batchFlag)
	bbody = binary.AppendUvarint(bbody, 0)
	bbody = binary.AppendUvarint(bbody, 0)
	bbody = Batch{Envelopes: []Envelope{
		{Msg: Exec{EventID: 1, TargetPath: "/a", Name: "changed"}},
		{Trace: obs.TraceContext{Trace: 5, Span: 6}, Msg: ExecAck{EventID: 1}},
	}}.encode(bbody)
	bframe := binary.LittleEndian.AppendUint32(nil, uint32(len(bbody)))
	f.Add(append(bframe, bbody...))
	for _, body := range malformedBatchBodies() {
		mb := binary.LittleEndian.AppendUint16(nil, uint16(TBatch))
		mb = binary.AppendUvarint(mb, 0)
		mb = binary.AppendUvarint(mb, 0)
		mb = append(mb, body...)
		mf := binary.LittleEndian.AppendUint32(nil, uint32(len(mb)))
		f.Add(append(mf, mb...))
	}
	f.Fuzz(func(t *testing.T, stream []byte) {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			defer a.Close()
			raw := make([]byte, len(stream))
			copy(raw, stream)
			// Feed the raw bytes beneath the framing layer.
			if len(raw) > 0 {
				_ = writeRaw(a, raw)
			}
		}()
		for {
			if _, err := b.Read(); err != nil {
				return
			}
		}
	})
}

// writeRaw injects unframed bytes by writing a frame whose body is the raw
// stream? No — it must bypass framing entirely, so it uses the underlying
// connection.
func writeRaw(c *Conn, raw []byte) error {
	_, err := c.conn.Write(raw)
	return err
}

// FuzzEnvelopeHeader proves the envelope header codec is a bijection in
// both encodings: arbitrary (seq, refSeq, trace, span) values written by a
// trace-enabled Conn decode back exactly, and the same envelope written
// without the extension decodes with the trace dropped — never corrupting
// the message body in either direction.
func FuzzEnvelopeHeader(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0xbeef), uint64(0xcafe), true)
	f.Add(uint64(0), uint64(7), uint64(0), uint64(0), false)
	f.Add(^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0), true)
	f.Fuzz(func(t *testing.T, seq, refSeq, traceID, spanID uint64, traced bool) {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		if traced {
			a.EnableTrace()
		}
		env := Envelope{
			Seq:    seq,
			RefSeq: refSeq,
			Trace:  obs.TraceContext{Trace: obs.TraceID(traceID), Span: obs.SpanID(spanID)},
			Msg:    ExecAck{EventID: 42},
		}
		errc := make(chan error, 1)
		go func() { errc <- a.Write(env) }()
		got, err := b.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("write: %v", err)
		}
		if got.Seq != seq || got.RefSeq != refSeq {
			t.Fatalf("seq/refSeq = %d/%d, want %d/%d", got.Seq, got.RefSeq, seq, refSeq)
		}
		if traced && traceID != 0 {
			if got.Trace != env.Trace {
				t.Fatalf("trace = %+v, want %+v", got.Trace, env.Trace)
			}
		} else if got.Trace.Valid() {
			t.Fatalf("untraced write decoded trace %+v", got.Trace)
		}
		if ack, ok := got.Msg.(ExecAck); !ok || ack.EventID != 42 {
			t.Fatalf("body corrupted: %+v", got.Msg)
		}
	})
}
