package wire

import (
	"encoding/binary"
	"testing"
)

// FuzzDecodeMessage asserts the message decoder never panics on arbitrary
// bodies of every known type, and that accepted messages re-encode to an
// equal message.
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range allMessages() {
		f.Add(uint16(m.MsgType()), m.encode(nil))
	}
	f.Fuzz(func(t *testing.T, rawType uint16, body []byte) {
		m, err := decodeMessage(Type(rawType), body)
		if err != nil {
			return
		}
		again, err := decodeMessage(m.MsgType(), m.encode(nil))
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if !messagesEqual(m, again) {
			t.Fatalf("re-encode changed the message: %#v vs %#v", m, again)
		}
	})
}

// FuzzConnRead asserts the framed reader never panics on arbitrary streams.
func FuzzConnRead(f *testing.F) {
	env := Envelope{Seq: 3, Msg: OK{}}
	var frame []byte
	body := binary.LittleEndian.AppendUint16(nil, uint16(TOK))
	body = binary.AppendUvarint(body, env.Seq)
	body = binary.AppendUvarint(body, 0)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	f.Add(frame)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, stream []byte) {
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		go func() {
			defer a.Close()
			raw := make([]byte, len(stream))
			copy(raw, stream)
			// Feed the raw bytes beneath the framing layer.
			if len(raw) > 0 {
				_ = writeRaw(a, raw)
			}
		}()
		for {
			if _, err := b.Read(); err != nil {
				return
			}
		}
	})
}

// writeRaw injects unframed bytes by writing a frame whose body is the raw
// stream? No — it must bypass framing entirely, so it uses the underlying
// connection.
func writeRaw(c *Conn, raw []byte) error {
	_, err := c.conn.Write(raw)
	return err
}
