package wire

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
)

// sinkConn is a net.Conn that records every byte written to it, so a test
// can compare the raw frames two encode paths produce. Reads always report
// EOF; the snooped direction is write-only.
type sinkConn struct {
	mu  sync.Mutex
	buf []byte
}

func (s *sinkConn) Write(p []byte) (int, error) {
	s.mu.Lock()
	s.buf = append(s.buf, p...)
	s.mu.Unlock()
	return len(p), nil
}

func (s *sinkConn) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf...)
}

func (s *sinkConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (s *sinkConn) Close() error                       { return nil }
func (s *sinkConn) LocalAddr() net.Addr                { return nil }
func (s *sinkConn) RemoteAddr() net.Addr               { return nil }
func (s *sinkConn) SetDeadline(t time.Time) error      { return nil }
func (s *sinkConn) SetReadDeadline(t time.Time) error  { return nil }
func (s *sinkConn) SetWriteDeadline(t time.Time) error { return nil }

// randomSharedExec builds a random broadcast: a SharedExec plus the member
// target paths it fans out to.
func randomSharedExec(r *rand.Rand) (*SharedExec, []string) {
	str := func() string {
		b := make([]byte, r.Intn(16))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return string(b)
	}
	args := make([]attr.Value, r.Intn(4))
	for i := range args {
		switch r.Intn(3) {
		case 0:
			args[i] = attr.Int(r.Int63() - r.Int63())
		case 1:
			args[i] = attr.String(str())
		default:
			args[i] = attr.Bool(r.Intn(2) == 0)
		}
	}
	if len(args) == 0 {
		args = nil
	}
	origin := couple.ObjectRef{Instance: couple.InstanceID(str()), Path: str()}
	se := NewSharedExec(r.Uint64(), str(), args, origin)
	paths := make([]string, 1+r.Intn(5))
	for i := range paths {
		paths[i] = str()
	}
	return se, paths
}

// randomEnvTrace picks a trace context: zero half the time, random IDs
// otherwise, exercising both the flagged-with-zero-IDs and the
// context-carrying encodings.
func randomEnvTrace(r *rand.Rand) obs.TraceContext {
	if r.Intn(2) == 0 {
		return obs.TraceContext{}
	}
	return obs.TraceContext{Trace: obs.TraceID(r.Uint64() | 1), Span: obs.SpanID(r.Uint64())}
}

// Property: for every random broadcast and capability configuration, the
// encode-once path — WriteOutgoing splicing the shared suffix with a
// vectored write — puts byte-for-byte the same frames on the wire as the
// legacy per-member Conn.Write of the materialized Exec, snooped at the raw
// byte level below the Conn.
func TestPropSharedWriteByteIdentical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		legacySink, sharedSink := &sinkConn{}, &sinkConn{}
		legacy, shared := NewConn(legacySink), NewConn(sharedSink)
		if r.Intn(2) == 0 {
			legacy.EnableTrace()
			shared.EnableTrace()
		}
		if r.Intn(2) == 0 {
			legacy.EnableBatch()
			shared.EnableBatch()
		}
		se, paths := randomSharedExec(r)
		for _, p := range paths {
			env := Envelope{Seq: r.Uint64() % 1000, Trace: randomEnvTrace(r), Msg: se.Exec(p)}
			if err := legacy.Write(env); err != nil {
				t.Logf("legacy write: %v", err)
				return false
			}
			// The shared record carries correlation numbers and trace only;
			// Msg stays nil as on the server's hot path.
			if err := shared.WriteOutgoing(Outgoing{
				Env:    Envelope{Seq: env.Seq, Trace: env.Trace},
				Shared: se, Target: p,
			}); err != nil {
				t.Logf("shared write: %v", err)
				return false
			}
		}
		se.Release()
		return bytes.Equal(legacySink.bytes(), sharedSink.bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if n := LiveSharedBodies(); n != 0 {
		t.Fatalf("LiveSharedBodies = %d after all releases, want 0", n)
	}
}

// Property: the writev Batch form — WriteBatch over a run mixing shared-body
// Exec records with plain envelopes — is byte-identical to the legacy
// Conn.Write of the materialized Batch message.
func TestPropSharedBatchByteIdentical(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		legacySink, sharedSink := &sinkConn{}, &sinkConn{}
		legacy, shared := NewConn(legacySink), NewConn(sharedSink)
		if r.Intn(2) == 0 {
			legacy.EnableTrace()
			shared.EnableTrace()
		}
		legacy.EnableBatch()
		shared.EnableBatch()
		se, paths := randomSharedExec(r)
		var recs []Outgoing
		for _, p := range paths {
			recs = append(recs, Outgoing{
				Env:    Envelope{Seq: r.Uint64() % 1000, Trace: randomEnvTrace(r)},
				Shared: se, Target: p,
			})
			if r.Intn(3) == 0 {
				// Interleave a plain (re-encoded per flush) record, as a real
				// outbox backlog would around lock notifications.
				recs = append(recs, Outgoing{Env: Envelope{
					Seq:   r.Uint64() % 1000,
					Trace: randomEnvTrace(r),
					Msg:   SetLocks{Paths: []string{p}, Locked: r.Intn(2) == 0},
				}})
			}
		}
		envs := make([]Envelope, len(recs))
		for i := range recs {
			envs[i] = recs[i].Envelope() // materializes the shared records' Execs
		}
		if err := legacy.Write(Envelope{Msg: Batch{Envelopes: envs}}); err != nil {
			t.Logf("legacy batch write: %v", err)
			return false
		}
		if err := shared.WriteBatch(recs); err != nil {
			t.Logf("shared batch write: %v", err)
			return false
		}
		se.Release()
		return bytes.Equal(legacySink.bytes(), sharedSink.bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if n := LiveSharedBodies(); n != 0 {
		t.Fatalf("LiveSharedBodies = %d after all releases, want 0", n)
	}
}

// An Outgoing whose shared suffix would push the frame past MaxFrame must be
// rejected before any bytes reach the wire, both singly and batched — the
// outbox's split-and-retry depends on that.
func TestSharedWriteOversizeRejectedBeforeWire(t *testing.T) {
	sink := &sinkConn{}
	c := NewConn(sink)
	big := string(make([]byte, MaxFrame))
	se := NewSharedExec(1, "e", []attr.Value{attr.String(big)}, couple.ObjectRef{})
	defer se.Release()
	o := Outgoing{Shared: se, Target: "/x"}
	if err := c.WriteOutgoing(o); err != ErrFrameTooLarge {
		t.Fatalf("WriteOutgoing oversize: err = %v, want ErrFrameTooLarge", err)
	}
	if err := c.WriteBatch([]Outgoing{o, o}); err != ErrFrameTooLarge {
		t.Fatalf("WriteBatch oversize: err = %v, want ErrFrameTooLarge", err)
	}
	if got := sink.bytes(); len(got) != 0 {
		t.Fatalf("%d bytes reached the wire despite rejection", len(got))
	}
}

// Shared bodies must enforce the refcount discipline: releasing the last
// reference recycles the buffer, over-releasing panics.
func TestSharedExecRefcountPanics(t *testing.T) {
	se := NewSharedExec(1, "e", nil, couple.ObjectRef{})
	se.Ref()
	se.Release()
	se.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	se.Release()
}
