package wire

import (
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"cosoft/internal/attr"
	"cosoft/internal/obs"
)

// envelopesEqual compares decoded envelopes field by field, with the usual
// nil/empty-slice tolerance on the message payload.
func envelopesEqual(a, b Envelope) bool {
	return a.Seq == b.Seq && a.RefSeq == b.RefSeq && a.Trace == b.Trace &&
		messagesEqual(a.Msg, b.Msg)
}

// appendBatchRecord hand-builds one Batch record in the wire byte layout,
// independent of the encoder, for frame-pinning tests and fuzz seeds.
func appendBatchRecord(buf []byte, t Type, seq, refSeq uint64, tc obs.TraceContext, body []byte) []byte {
	raw := uint16(t)
	if tc.Trace != 0 || tc.Span != 0 {
		raw |= traceFlag
	}
	buf = binary.LittleEndian.AppendUint16(buf, raw)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, refSeq)
	if raw&traceFlag != 0 {
		buf = binary.AppendUvarint(buf, uint64(tc.Trace))
		buf = binary.AppendUvarint(buf, uint64(tc.Span))
	}
	buf = binary.AppendUvarint(buf, uint64(len(body)))
	return append(buf, body...)
}

// Property: a random run of envelopes packed into one Batch frame decodes
// to exactly the envelopes the same run produces when sent singly over a
// trace-enabled connection — same order, same correlation numbers, same
// trace contexts (zero stays zero, non-zero survives exactly).
func TestPropBatchRoundTripMatchesSingles(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(8) + 1
		envs := make([]Envelope, n)
		for i := range envs {
			env := Envelope{Seq: r.Uint64() % 1000, RefSeq: r.Uint64() % 1000, Msg: randomMessage(r)}
			if r.Intn(2) == 0 {
				env.Trace = obs.TraceContext{Trace: obs.TraceID(r.Uint64() | 1), Span: obs.SpanID(r.Uint64())}
			}
			envs[i] = env
		}

		// Singles path: each envelope as its own frame.
		sa, sb := Pipe()
		defer sa.Close()
		defer sb.Close()
		sa.EnableTrace()
		singles := readN(sb, n)
		for _, env := range envs {
			if err := sa.Write(env); err != nil {
				return false
			}
		}
		got := <-singles
		if len(got) != n {
			return false
		}

		// Batched path: the same run in one frame.
		ba, bb := Pipe()
		defer ba.Close()
		defer bb.Close()
		ba.EnableBatch()
		batched := readN(bb, 1)
		if err := ba.Write(Envelope{Msg: Batch{Envelopes: envs}}); err != nil {
			return false
		}
		frames := <-batched
		if len(frames) != 1 {
			return false
		}
		batch, ok := frames[0].Msg.(Batch)
		if !ok || len(batch.Envelopes) != n {
			return false
		}
		for i := range got {
			if !envelopesEqual(batch.Envelopes[i], got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBatchFrameBytesDecode hand-builds a Batch frame and asserts the
// decoder unpacks it — the record byte layout pinned independently of the
// encoder.
func TestBatchFrameBytesDecode(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	exec := Exec{EventID: 12, TargetPath: "/f", Name: "changed",
		Args: []attr.Value{attr.String("v")}}
	var body []byte
	body = binary.LittleEndian.AppendUint16(body, uint16(TBatch))
	body = binary.AppendUvarint(body, 0) // seq
	body = binary.AppendUvarint(body, 0) // refSeq
	body = binary.AppendUvarint(body, 2) // record count
	body = appendBatchRecord(body, TSetLocks, 0, 0, obs.TraceContext{},
		SetLocks{Paths: []string{"/f"}, Locked: true}.encode(nil))
	body = appendBatchRecord(body, TExec, 0, 0,
		obs.TraceContext{Trace: 777, Span: 888}, exec.encode(nil))
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)

	got := readN(b, 1)
	if err := writeRaw(a, frame); err != nil {
		t.Fatal(err)
	}
	envs := <-got
	if len(envs) != 1 {
		t.Fatal("batch frame rejected")
	}
	batch, ok := envs[0].Msg.(Batch)
	if !ok || len(batch.Envelopes) != 2 {
		t.Fatalf("decoded %+v", envs[0].Msg)
	}
	if sl, ok := batch.Envelopes[0].Msg.(SetLocks); !ok || !sl.Locked || len(sl.Paths) != 1 {
		t.Fatalf("record 0 = %+v", batch.Envelopes[0].Msg)
	}
	if batch.Envelopes[0].Trace.Valid() {
		t.Fatalf("untraced record decoded trace %+v", batch.Envelopes[0].Trace)
	}
	want := obs.TraceContext{Trace: 777, Span: 888}
	if batch.Envelopes[1].Trace != want {
		t.Fatalf("record 1 trace = %+v, want %+v", batch.Envelopes[1].Trace, want)
	}
	if ex, ok := batch.Envelopes[1].Msg.(Exec); !ok || ex.EventID != 12 || ex.TargetPath != "/f" {
		t.Fatalf("record 1 = %+v", batch.Envelopes[1].Msg)
	}
}

// malformedBatchBodies builds the rejection corpus: zero record count, a
// count far over the cap, a truncated record, a nested batch, and a nested
// batch ack.
func malformedBatchBodies() map[string][]byte {
	okRecord := appendBatchRecord(nil, TExecAck, 0, 0, obs.TraceContext{},
		ExecAck{EventID: 1}.encode(nil))
	truncated := binary.AppendUvarint(nil, 2)
	truncated = append(truncated, okRecord...) // second record missing
	nested := binary.AppendUvarint(nil, 1)
	nested = appendBatchRecord(nested, TBatch, 0, 0, obs.TraceContext{},
		Batch{Envelopes: []Envelope{{Msg: OK{}}}}.encode(nil))
	nestedAck := binary.AppendUvarint(nil, 1)
	nestedAck = appendBatchRecord(nestedAck, TBatchAck, 0, 0, obs.TraceContext{},
		BatchAck{Acks: []BatchAckEntry{{EventID: 1}}}.encode(nil))
	shortRecord := binary.AppendUvarint(nil, 1)
	shortRecord = append(shortRecord, 0xff) // not even a full type field
	return map[string][]byte{
		"zero-count":   binary.AppendUvarint(nil, 0),
		"over-count":   binary.AppendUvarint(nil, MaxBatch+1),
		"truncated":    truncated,
		"nested":       nested,
		"nested-ack":   nestedAck,
		"short-record": shortRecord,
	}
}

func TestBatchDecodeRejectsMalformed(t *testing.T) {
	for name, body := range malformedBatchBodies() {
		if _, err := decodeMessage(TBatch, body); err == nil {
			t.Errorf("%s batch accepted", name)
		}
	}
	// BatchAck rejections share the count rules.
	if _, err := decodeMessage(TBatchAck, binary.AppendUvarint(nil, 0)); err == nil {
		t.Error("zero-count batch ack accepted")
	}
	if _, err := decodeMessage(TBatchAck, binary.AppendUvarint(nil, MaxBatch+1)); err == nil {
		t.Error("over-count batch ack accepted")
	}
	if _, err := decodeMessage(TBatchAck, binary.AppendUvarint(nil, 2)); err == nil {
		t.Error("truncated batch ack accepted")
	}
}

// TestBatchAutoDetectFromPeer asserts the acceptor side of the capability
// handshake: after reading one flagged frame, the acceptor may pack its own
// frames, and the initiator unpacks them.
func TestBatchAutoDetectFromPeer(t *testing.T) {
	cli, srv := Pipe()
	defer cli.Close()
	defer srv.Close()
	cli.EnableBatch()

	if srv.BatchAware() {
		t.Fatal("acceptor batch-aware before any frame")
	}
	srvGot := readN(srv, 1)
	if err := cli.Write(Envelope{Seq: 1, Msg: Register{User: "u"}}); err != nil {
		t.Fatal(err)
	}
	<-srvGot
	if !srv.BatchAware() {
		t.Fatal("server conn did not detect batch-aware peer")
	}
	cliGot := readN(cli, 1)
	batch := Batch{Envelopes: []Envelope{
		{Msg: Exec{EventID: 4, TargetPath: "/x", Name: "changed"}},
		{Msg: Exec{EventID: 5, TargetPath: "/y", Name: "changed"}},
	}}
	if err := srv.Write(Envelope{Msg: batch}); err != nil {
		t.Fatal(err)
	}
	envs := <-cliGot
	if len(envs) != 1 {
		t.Fatal("batched reply rejected")
	}
	got, ok := envs[0].Msg.(Batch)
	if !ok || len(got.Envelopes) != 2 {
		t.Fatalf("decoded %+v", envs[0].Msg)
	}
}

// TestBatchFlagSuppressedForLegacyConn pins the raw bytes: a connection that
// never opted in emits frames without the batchFlag bit, and an opted-in
// connection sets it (alongside traceFlag when that is negotiated too).
func TestBatchFlagSuppressedForLegacyConn(t *testing.T) {
	frameType := func(enableBatch, enableTrace bool) uint16 {
		ca, cb := net.Pipe()
		defer ca.Close()
		defer cb.Close()
		c := NewConn(ca)
		if enableBatch {
			c.EnableBatch()
		}
		if enableTrace {
			c.EnableTrace()
		}
		go c.Write(Envelope{Seq: 1, Msg: OK{}}) //nolint:errcheck
		var lenbuf [4]byte
		if _, err := io.ReadFull(cb, lenbuf[:]); err != nil {
			t.Fatal(err)
		}
		body := make([]byte, binary.LittleEndian.Uint32(lenbuf[:]))
		if _, err := io.ReadFull(cb, body); err != nil {
			t.Fatal(err)
		}
		return binary.LittleEndian.Uint16(body)
	}
	if raw := frameType(false, false); raw&flagMask != 0 {
		t.Errorf("legacy frame type %#x carries extension flags", raw)
	}
	if raw := frameType(true, false); raw&batchFlag == 0 || raw&traceFlag != 0 {
		t.Errorf("batch-only frame type = %#x", raw)
	}
	if raw := frameType(true, true); raw&batchFlag == 0 || raw&traceFlag == 0 {
		t.Errorf("batch+trace frame type = %#x", raw)
	}
}
