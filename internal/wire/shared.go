package wire

import (
	"sync"
	"sync/atomic"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
)

// This file implements the encode-once broadcast path. A §3.2 event fans an
// Exec out to every coupled member, and all of those frames share one large
// body suffix — the event name, arguments and origin — while only a small
// prefix (frame header, correlation numbers, trace context, event ID and the
// member's own target path) differs per connection. SharedExec encodes the
// common suffix exactly once into a pooled, refcounted buffer; every member
// outbox queues a reference and the flush path scatter-gathers
// [header+prefix][shared suffix] onto the wire with net.Buffers, so the
// broadcast costs O(1) body encodes and zero body copies regardless of
// fan-out. The bytes that reach each peer are identical to what a plain
// Conn.Write of the materialized Exec would have produced, so the wire
// format — and every legacy peer — is untouched.

// maxPooledBody caps the capacity of buffers returned to the shared-body
// pool, so one huge broadcast does not pin megabytes inside sync.Pool.
const maxPooledBody = 64 << 10

// bodyBuf is a pooled, refcounted encode buffer. The buffer is reused only
// after the last reference releases it, and release order is enforced: a
// negative refcount (double release) or a ref of a released body panics,
// because either would let two broadcasts scribble on the same bytes.
type bodyBuf struct {
	buf  []byte
	refs atomic.Int32
}

var bodyPool sync.Pool

// liveBodies counts shared bodies handed out and not yet fully released —
// a leak/double-release oracle for tests.
var liveBodies atomic.Int64

// poolHits/poolMisses are the optional pool instrumentation handles. The
// pool is process-global, so the counters are too: InstrumentBodyPool
// last-writer-wins when several servers run in one process.
var (
	poolHits   atomic.Pointer[obs.Counter]
	poolMisses atomic.Pointer[obs.Counter]
)

// InstrumentBodyPool routes shared-body pool hit/miss counts into the given
// counters (nil handles disable counting at zero cost). The pool is shared
// by every Conn in the process, so the most recent instrumentation wins.
func InstrumentBodyPool(hits, misses *obs.Counter) {
	poolHits.Store(hits)
	poolMisses.Store(misses)
}

// LiveSharedBodies reports how many shared bodies are currently referenced
// anywhere in the process. At quiescence — no broadcast in flight, every
// outbox drained — it must be zero; tests use it as a leak detector.
func LiveSharedBodies() int64 { return liveBodies.Load() }

func newBodyBuf() *bodyBuf {
	liveBodies.Add(1)
	if v := bodyPool.Get(); v != nil {
		poolHits.Load().Inc()
		b := v.(*bodyBuf)
		b.buf = b.buf[:0]
		b.refs.Store(1)
		return b
	}
	poolMisses.Load().Inc()
	b := &bodyBuf{}
	b.refs.Store(1)
	return b
}

func (b *bodyBuf) ref() {
	if b.refs.Add(1) <= 1 {
		panic("wire: shared body referenced after release")
	}
}

func (b *bodyBuf) unref() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic("wire: shared body over-released")
	}
	if n == 0 {
		liveBodies.Add(-1)
		if cap(b.buf) <= maxPooledBody {
			bodyPool.Put(b)
		}
	}
}

// SharedExec is one broadcast's Exec payload encoded once. The
// member-independent suffix of the Exec body — Name, Args, Origin — lives in
// a pooled refcounted buffer shared by every member's outbox; only the event
// ID and the member's TargetPath are encoded per member. (EventID is also
// member-independent, but it precedes TargetPath in the Exec body layout, so
// it rides in the per-member head to keep the shared suffix contiguous.)
//
// Lifecycle: NewSharedExec returns the creator's reference. Each outbox that
// enqueues the broadcast takes one more with Ref, and releases it with
// Release exactly once — after the frame is written, or when the record is
// dropped by a connection error, eviction, or a closed outbox. The creator
// calls Release when it has finished enqueueing. When the last reference
// releases, the buffer returns to the pool.
type SharedExec struct {
	eventID uint64
	name    string
	args    []attr.Value
	origin  couple.ObjectRef
	body    *bodyBuf
}

// NewSharedExec encodes the shared suffix of the broadcast's Exec body and
// returns it holding one (the creator's) reference.
func NewSharedExec(eventID uint64, name string, args []attr.Value, origin couple.ObjectRef) *SharedExec {
	b := newBodyBuf()
	b.buf = appendString(b.buf, name)
	b.buf = appendValues(b.buf, args)
	b.buf = appendObjectRef(b.buf, origin)
	return &SharedExec{eventID: eventID, name: name, args: args, origin: origin, body: b}
}

// Exec materializes the full message for one member — a struct copy sharing
// the Args slice, no encoding. Encoding the result yields exactly
// head(targetPath) + the shared suffix.
func (se *SharedExec) Exec(targetPath string) Exec {
	return Exec{EventID: se.eventID, TargetPath: targetPath, Name: se.name,
		Args: se.args, Origin: se.origin}
}

// Ref takes one additional reference. Callers must hold a live reference
// (the creator's, typically) while taking new ones.
func (se *SharedExec) Ref() { se.body.ref() }

// Release drops one reference; the last release returns the buffer to the
// pool. Releasing more times than Ref+NewSharedExec granted panics.
func (se *SharedExec) Release() { se.body.unref() }

// Refs reports the current reference count (for tests and diagnostics).
func (se *SharedExec) Refs() int32 { return se.body.refs.Load() }

// TailLen is the size of the shared (encoded-once) suffix in bytes.
func (se *SharedExec) TailLen() int { return len(se.body.buf) }

// tail returns the shared suffix bytes. Valid only while a reference is held.
func (se *SharedExec) tail() []byte { return se.body.buf }

// appendHead appends the per-member head of the Exec body: the event ID and
// the member's target path.
func (se *SharedExec) appendHead(buf []byte, targetPath string) []byte {
	buf = appendUvarint(buf, se.eventID)
	return appendString(buf, targetPath)
}

// headLen is the encoded size of appendHead's output for targetPath.
func (se *SharedExec) headLen(targetPath string) int {
	return uvarintLen(se.eventID) + uvarintLen(uint64(len(targetPath))) + len(targetPath)
}

// uvarintLen is the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Outgoing is one queued outbound frame. A plain record carries the full
// envelope in Env. A shared record (Shared non-nil) is one member's frame of
// an encode-once broadcast: Target is the member's path, the per-member head
// is encoded from it, and Shared's suffix is spliced in without copying.
// Env.Msg may be left nil on shared records — materializing the Exec boxes
// it onto the heap, so the hot path skips it and only observability code
// asks for Envelope() — but when set it must equal Shared.Exec(Target).
type Outgoing struct {
	Env    Envelope
	Shared *SharedExec
	Target string
}

// Envelope returns the fully materialized envelope, building the member's
// Exec on demand for shared records queued without one. Only paths that need
// the decoded message (the flight recorder) should call it: the
// materialization costs one interface boxing per call.
func (o *Outgoing) Envelope() Envelope {
	if o.Shared != nil && o.Env.Msg == nil {
		env := o.Env
		env.Msg = o.Shared.Exec(o.Target)
		return env
	}
	return o.Env
}
