package wire

import (
	"reflect"
	"testing"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []Envelope{
		{Seq: 7, Msg: Register{AppType: "editor", Host: "h", User: "u"}},
		{Seq: 1, RefSeq: 7, Msg: Registered{ID: "editor-1"}},
		{Msg: Exec{
			EventID:    42,
			TargetPath: "/field",
			Name:       "changed",
			Args:       []attr.Value{attr.String("x")},
			Origin:     couple.ObjectRef{Instance: "editor-1", Path: "/field"},
		}},
		{
			Trace: obs.TraceContext{Trace: 99, Span: 7},
			Msg:   Couple{From: couple.ObjectRef{Instance: "a", Path: "/x"}, To: couple.ObjectRef{Instance: "b", Path: "/y"}},
		},
		{Msg: SessionToken{Token: "deadbeef"}},
	}
	for _, env := range cases {
		buf := AppendEnvelope(nil, env)
		got, err := DecodeEnvelope(buf)
		if err != nil {
			t.Fatalf("decode %T: %v", env.Msg, err)
		}
		if !reflect.DeepEqual(got, env) {
			t.Fatalf("round trip %T:\n got %#v\nwant %#v", env.Msg, got, env)
		}
	}
}

func TestDecodeEnvelopeRejects(t *testing.T) {
	good := AppendEnvelope(nil, Envelope{Msg: Retract{Path: "/x"}})
	if _, err := DecodeEnvelope(good[:len(good)-1]); err == nil {
		t.Fatal("truncated record decoded")
	}
	if _, err := DecodeEnvelope(append(good, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A nested Batch is a connection-only frame, never a standalone record.
	batch := AppendEnvelope(nil, Envelope{Msg: Retract{Path: "/x"}})
	batch[0] = byte(TBatch)
	if _, err := DecodeEnvelope(batch); err == nil {
		t.Fatal("batch record accepted")
	}
}
