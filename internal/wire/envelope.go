package wire

import "encoding/binary"

// AppendEnvelope appends one envelope in the Batch inner-record layout
// ([u16 type(|traceFlag)][uvarint seq][uvarint refSeq][trace?][uvarint
// bodyLen][body]). It is the standalone form of that framing, used wherever a
// single already-decoded envelope must be persisted or re-framed outside a
// connection — the durable event log stores exactly these bytes, so a logged
// record and a batch record share one parser.
func AppendEnvelope(buf []byte, env Envelope) []byte {
	t := uint16(env.Msg.MsgType())
	traced := env.Trace.Trace != 0 || env.Trace.Span != 0
	if traced {
		t |= traceFlag
	}
	buf = binary.LittleEndian.AppendUint16(buf, t)
	buf = appendUvarint(buf, env.Seq)
	buf = appendUvarint(buf, env.RefSeq)
	if traced {
		buf = appendUvarint(buf, uint64(env.Trace.Trace))
		buf = appendUvarint(buf, uint64(env.Trace.Span))
	}
	return appendBytes(buf, env.Msg.encode(nil))
}

// DecodeEnvelope decodes one envelope produced by AppendEnvelope. The buffer
// must contain exactly one record; trailing bytes are an error, exactly as
// frame decoding rejects them.
func DecodeEnvelope(buf []byte) (Envelope, error) {
	d := &decoder{buf: buf}
	env, ok := d.innerEnvelope()
	if !ok {
		return Envelope{}, d.err
	}
	if err := d.done(); err != nil {
		return Envelope{}, err
	}
	return env, nil
}
