package wire

import (
	"encoding/binary"
	"fmt"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
)

// decoder consumes a message body sequentially, latching the first error so
// message decoders can read field after field and check once at the end.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: corrupt %s", what)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) bool() bool { return d.uvarint() != 0 }

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("bytes")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[:n])
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) instanceID() couple.InstanceID {
	return couple.InstanceID(d.string())
}

func (d *decoder) objectRef() couple.ObjectRef {
	return couple.ObjectRef{Instance: d.instanceID(), Path: d.string()}
}

func (d *decoder) link() couple.Link {
	return couple.Link{From: d.objectRef(), To: d.objectRef(), Creator: d.instanceID()}
}

func (d *decoder) values() []attr.Value {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > 4096 {
		d.fail("value count")
		return nil
	}
	vals := make([]attr.Value, n)
	for i := range vals {
		v, rest, err := attr.DecodeValue(d.buf)
		if err != nil {
			d.err = err
			return nil
		}
		vals[i] = v
		d.buf = rest
	}
	return vals
}

func (d *decoder) stringList() []string {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > 1<<16 {
		d.fail("string count")
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.string()
	}
	return out
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(d.buf))
	}
	return nil
}

func appendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendObjectRef(buf []byte, r couple.ObjectRef) []byte {
	buf = appendString(buf, string(r.Instance))
	return appendString(buf, r.Path)
}

func appendLink(buf []byte, l couple.Link) []byte {
	buf = appendObjectRef(buf, l.From)
	buf = appendObjectRef(buf, l.To)
	return appendString(buf, string(l.Creator))
}

func appendValues(buf []byte, vals []attr.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vals)))
	for _, v := range vals {
		buf = attr.AppendValue(buf, v)
	}
	return buf
}

func appendStringList(buf []byte, ss []string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ss)))
	for _, s := range ss {
		buf = appendString(buf, s)
	}
	return buf
}
