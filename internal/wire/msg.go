package wire

import (
	"fmt"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/widget"
)

// Type identifies a protocol message.
type Type uint16

// Protocol message types.
const (
	// Session management.
	TRegister Type = iota + 1
	TRegistered
	TDeregister
	TDeclare
	TRetract
	// Coupling.
	TCouple
	TDecouple
	TLinkAdded
	TLinkRemoved
	// Synchronization by multiple execution (§3.2).
	TEvent
	TExec
	TExecAck
	TEventResult
	TSetLocks
	// Synchronization by UI state (§3.1).
	TCopyTo
	TCopyFrom
	TRemoteCopy
	TApplyState
	TStateRequest
	TStateReply
	// Protocol extension (§3.4).
	TCommand
	TCommandDeliver
	// Historical UI states.
	TUndo
	TRedo
	// Introspection and administration.
	TListInstances
	TInstanceList
	TGrantPerm
	TRevokePerm
	// Generic replies.
	TOK
	TErr
	// TFetchState asks the server for the (relevant) state of any declared
	// object; the reply is a StateReply correlated by RefSeq.
	TFetchState
	// Liveness and session resumption (fault tolerance).
	TPing
	TPong
	TSessionToken
	TResume
	// Frame batching: wire-level aggregation of the Exec fan-out hot path
	// (see batch.go and the package comment's batch-extension section).
	TBatch
	TBatchAck
)

var typeNames = map[Type]string{
	TRegister: "Register", TRegistered: "Registered", TDeregister: "Deregister",
	TDeclare: "Declare", TRetract: "Retract",
	TCouple: "Couple", TDecouple: "Decouple", TLinkAdded: "LinkAdded", TLinkRemoved: "LinkRemoved",
	TEvent: "Event", TExec: "Exec", TExecAck: "ExecAck", TEventResult: "EventResult", TSetLocks: "SetLocks",
	TCopyTo: "CopyTo", TCopyFrom: "CopyFrom", TRemoteCopy: "RemoteCopy",
	TApplyState: "ApplyState", TStateRequest: "StateRequest", TStateReply: "StateReply",
	TCommand: "Command", TCommandDeliver: "CommandDeliver",
	TUndo: "Undo", TRedo: "Redo",
	TListInstances: "ListInstances", TInstanceList: "InstanceList",
	TGrantPerm: "GrantPerm", TRevokePerm: "RevokePerm",
	TOK: "OK", TErr: "Err", TFetchState: "FetchState",
	TPing: "Ping", TPong: "Pong", TSessionToken: "SessionToken", TResume: "Resume",
	TBatch: "Batch", TBatchAck: "BatchAck",
}

// String returns the message type's name.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint16(t))
}

// Message is a decoded protocol message.
type Message interface {
	// MsgType returns the protocol type tag.
	MsgType() Type
	// encode appends the message body.
	encode(buf []byte) []byte
}

// Register announces a new application instance to the server.
type Register struct {
	AppType string
	Host    string
	User    string
}

// Registered is the server's reply carrying the allocated instance id.
type Registered struct {
	ID couple.InstanceID
}

// Deregister announces orderly instance shutdown.
type Deregister struct{}

// Declare makes one UI object couplable, announcing its widget class.
type Declare struct {
	Path  string
	Class string
}

// Retract withdraws a declared object (widget destroyed).
type Retract struct {
	Path string
}

// Couple requests a couple link from A (owned by any instance) to B. The
// creator is the sending instance, which implements both the local Couple
// primitive (A owned by sender) and RemoteCouple (third-party).
type Couple struct {
	From, To couple.ObjectRef
}

// Decouple removes the link(s) between From and To.
type Decouple struct {
	From, To couple.ObjectRef
}

// LinkAdded notifies group members of a new link, so that "the coupling
// information is replicated for each object (to be completely available
// locally)" (§3.2).
type LinkAdded struct {
	Link couple.Link
}

// LinkRemoved notifies group members of a removed link.
type LinkRemoved struct {
	Link couple.Link
}

// Event reports a user action on a coupled object to the server.
type Event struct {
	Path string
	Name string
	Args []attr.Value
}

// Exec instructs an instance to re-execute an event on its local member of
// the coupling group.
type Exec struct {
	EventID    uint64
	TargetPath string
	Name       string
	Args       []attr.Value
	Origin     couple.ObjectRef
}

// ExecAck confirms completion of an Exec; the server unlocks the group when
// all members acknowledged.
type ExecAck struct {
	EventID uint64
}

// EventResult tells the originating instance whether its event was accepted
// (lock granted and broadcast) or must be undone (lock failed).
type EventResult struct {
	OK     bool
	Reason string
}

// SetLocks instructs an instance to disable (or re-enable) local objects
// that participate in a locked coupling group.
type SetLocks struct {
	Paths  []string
	Locked bool
}

// CopyTo pushes the state of a local object onto a remote object (passive
// synchronization for the receiver, §3.1).
type CopyTo struct {
	FromPath    string
	To          couple.ObjectRef
	State       widget.TreeState
	Destructive bool
}

// CopyFrom requests the state of a remote object for a local object (active
// synchronization, §3.1).
type CopyFrom struct {
	From        couple.ObjectRef
	ToPath      string
	Destructive bool
	// Shallow copies only the source object's own attributes.
	Shallow bool
}

// RemoteCopy lets a third instance copy state between two remote objects
// (§3.1's RemoteCopy primitive).
type RemoteCopy struct {
	From, To    couple.ObjectRef
	Destructive bool
}

// ApplyState delivers a UI state to be applied to a local object.
type ApplyState struct {
	Path        string
	State       widget.TreeState
	Origin      couple.InstanceID
	Destructive bool
}

// StateRequest asks an instance for the current state of one of its
// objects. RelevantOnly selects the coupling projection (each class's
// relevant attributes); the full state is used for history backups.
type StateRequest struct {
	RequestID    uint64
	Path         string
	RelevantOnly bool
	// Shallow requests only the object's own attributes, without children
	// (used for per-pair initial synchronization of mapped components).
	Shallow bool
}

// StateReply returns a requested state.
type StateReply struct {
	RequestID uint64
	OK        bool
	Reason    string
	State     widget.TreeState
}

// Command carries an application-defined command (§3.4, CoSendCommand): a
// symbolic function name plus an opaque packed message. Empty Targets means
// every other registered instance.
type Command struct {
	Name    string
	Targets []couple.InstanceID
	Payload []byte
}

// CommandDeliver hands a command to a receiving instance.
type CommandDeliver struct {
	Name    string
	From    couple.InstanceID
	Payload []byte
}

// FetchState asks the server for the current (relevant) state of any
// declared object — used by clients to compute s-compatibility mappings
// before coupling complex objects.
type FetchState struct {
	Ref          couple.ObjectRef
	RelevantOnly bool
}

// Undo asks the server to restore the last overwritten state of a local
// object from the historical UI states.
type Undo struct {
	Path string
}

// Redo re-applies the most recently undone state.
type Redo struct {
	Path string
}

// ListInstances asks for the registration records.
type ListInstances struct{}

// InstanceInfo is the wire form of a registration record.
type InstanceInfo struct {
	ID      couple.InstanceID
	AppType string
	Host    string
	User    string
	Objects []DeclaredObject
}

// DeclaredObject pairs a declared pathname with its widget class.
type DeclaredObject struct {
	Path  string
	Class string
}

// InstanceList is the reply to ListInstances.
type InstanceList struct {
	Instances []InstanceInfo
}

// GrantPerm adds an access-permission rule.
type GrantPerm struct {
	User  string
	State string
	Right uint8
}

// RevokePerm removes an access-permission rule.
type RevokePerm struct {
	User  string
	State string
	Right uint8
}

// Ping is a liveness probe. Either side may send one at any time; the peer
// answers with a Pong echoing the nonce. Pings are fire-and-forget (Seq 0)
// so they never collide with request/reply correlation.
type Ping struct {
	Nonce uint64
}

// Pong answers a Ping, echoing its nonce.
type Pong struct {
	Nonce uint64
}

// SessionToken is both the request for and the reply carrying a resumable
// session token. A client sends it with an empty Token after registering;
// the server replies with the minted token. Presenting the token in a
// Resume handshake on a fresh connection reclaims the instance identity.
type SessionToken struct {
	Token string
}

// Resume replaces Register as the first message of a reconnecting client:
// the token proves ownership of a previous registration, and the server
// re-registers the connection under the original instance ID (superseding
// any half-open previous connection).
type Resume struct {
	Token string
}

// OK is the generic success reply.
type OK struct{}

// Err is the generic failure reply.
type Err struct {
	Text string
}

// MsgType implementations.

func (Register) MsgType() Type       { return TRegister }
func (Registered) MsgType() Type     { return TRegistered }
func (Deregister) MsgType() Type     { return TDeregister }
func (Declare) MsgType() Type        { return TDeclare }
func (Retract) MsgType() Type        { return TRetract }
func (Couple) MsgType() Type         { return TCouple }
func (Decouple) MsgType() Type       { return TDecouple }
func (LinkAdded) MsgType() Type      { return TLinkAdded }
func (LinkRemoved) MsgType() Type    { return TLinkRemoved }
func (Event) MsgType() Type          { return TEvent }
func (Exec) MsgType() Type           { return TExec }
func (ExecAck) MsgType() Type        { return TExecAck }
func (EventResult) MsgType() Type    { return TEventResult }
func (SetLocks) MsgType() Type       { return TSetLocks }
func (CopyTo) MsgType() Type         { return TCopyTo }
func (CopyFrom) MsgType() Type       { return TCopyFrom }
func (RemoteCopy) MsgType() Type     { return TRemoteCopy }
func (ApplyState) MsgType() Type     { return TApplyState }
func (StateRequest) MsgType() Type   { return TStateRequest }
func (StateReply) MsgType() Type     { return TStateReply }
func (Command) MsgType() Type        { return TCommand }
func (CommandDeliver) MsgType() Type { return TCommandDeliver }
func (Undo) MsgType() Type           { return TUndo }
func (Redo) MsgType() Type           { return TRedo }
func (ListInstances) MsgType() Type  { return TListInstances }
func (InstanceList) MsgType() Type   { return TInstanceList }
func (GrantPerm) MsgType() Type      { return TGrantPerm }
func (RevokePerm) MsgType() Type     { return TRevokePerm }
func (FetchState) MsgType() Type     { return TFetchState }
func (Ping) MsgType() Type           { return TPing }
func (Pong) MsgType() Type           { return TPong }
func (SessionToken) MsgType() Type   { return TSessionToken }
func (Resume) MsgType() Type         { return TResume }
func (OK) MsgType() Type             { return TOK }
func (Err) MsgType() Type            { return TErr }

// Encoders.

func (m Register) encode(buf []byte) []byte {
	buf = appendString(buf, m.AppType)
	buf = appendString(buf, m.Host)
	return appendString(buf, m.User)
}

func (m Registered) encode(buf []byte) []byte {
	return appendString(buf, string(m.ID))
}

func (Deregister) encode(buf []byte) []byte { return buf }

func (m Declare) encode(buf []byte) []byte {
	buf = appendString(buf, m.Path)
	return appendString(buf, m.Class)
}

func (m Retract) encode(buf []byte) []byte { return appendString(buf, m.Path) }

func (m Couple) encode(buf []byte) []byte {
	buf = appendObjectRef(buf, m.From)
	return appendObjectRef(buf, m.To)
}

func (m Decouple) encode(buf []byte) []byte {
	buf = appendObjectRef(buf, m.From)
	return appendObjectRef(buf, m.To)
}

func (m LinkAdded) encode(buf []byte) []byte   { return appendLink(buf, m.Link) }
func (m LinkRemoved) encode(buf []byte) []byte { return appendLink(buf, m.Link) }

func (m Event) encode(buf []byte) []byte {
	buf = appendString(buf, m.Path)
	buf = appendString(buf, m.Name)
	return appendValues(buf, m.Args)
}

func (m Exec) encode(buf []byte) []byte {
	buf = appendUvarint(buf, m.EventID)
	buf = appendString(buf, m.TargetPath)
	buf = appendString(buf, m.Name)
	buf = appendValues(buf, m.Args)
	return appendObjectRef(buf, m.Origin)
}

func (m ExecAck) encode(buf []byte) []byte { return appendUvarint(buf, m.EventID) }

func (m EventResult) encode(buf []byte) []byte {
	buf = appendBool(buf, m.OK)
	return appendString(buf, m.Reason)
}

func (m SetLocks) encode(buf []byte) []byte {
	buf = appendStringList(buf, m.Paths)
	return appendBool(buf, m.Locked)
}

func (m CopyTo) encode(buf []byte) []byte {
	buf = appendString(buf, m.FromPath)
	buf = appendObjectRef(buf, m.To)
	buf = widget.AppendTreeState(buf, m.State)
	return appendBool(buf, m.Destructive)
}

func (m CopyFrom) encode(buf []byte) []byte {
	buf = appendObjectRef(buf, m.From)
	buf = appendString(buf, m.ToPath)
	buf = appendBool(buf, m.Destructive)
	return appendBool(buf, m.Shallow)
}

func (m RemoteCopy) encode(buf []byte) []byte {
	buf = appendObjectRef(buf, m.From)
	buf = appendObjectRef(buf, m.To)
	return appendBool(buf, m.Destructive)
}

func (m ApplyState) encode(buf []byte) []byte {
	buf = appendString(buf, m.Path)
	buf = widget.AppendTreeState(buf, m.State)
	buf = appendString(buf, string(m.Origin))
	return appendBool(buf, m.Destructive)
}

func (m StateRequest) encode(buf []byte) []byte {
	buf = appendUvarint(buf, m.RequestID)
	buf = appendString(buf, m.Path)
	buf = appendBool(buf, m.RelevantOnly)
	return appendBool(buf, m.Shallow)
}

func (m StateReply) encode(buf []byte) []byte {
	buf = appendUvarint(buf, m.RequestID)
	buf = appendBool(buf, m.OK)
	buf = appendString(buf, m.Reason)
	return widget.AppendTreeState(buf, m.State)
}

func (m Command) encode(buf []byte) []byte {
	buf = appendString(buf, m.Name)
	buf = appendUvarint(buf, uint64(len(m.Targets)))
	for _, t := range m.Targets {
		buf = appendString(buf, string(t))
	}
	return appendBytes(buf, m.Payload)
}

func (m CommandDeliver) encode(buf []byte) []byte {
	buf = appendString(buf, m.Name)
	buf = appendString(buf, string(m.From))
	return appendBytes(buf, m.Payload)
}

func (m Undo) encode(buf []byte) []byte { return appendString(buf, m.Path) }
func (m Redo) encode(buf []byte) []byte { return appendString(buf, m.Path) }

func (ListInstances) encode(buf []byte) []byte { return buf }

func (m InstanceList) encode(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(len(m.Instances)))
	for _, inst := range m.Instances {
		buf = appendString(buf, string(inst.ID))
		buf = appendString(buf, inst.AppType)
		buf = appendString(buf, inst.Host)
		buf = appendString(buf, inst.User)
		buf = appendUvarint(buf, uint64(len(inst.Objects)))
		for _, o := range inst.Objects {
			buf = appendString(buf, o.Path)
			buf = appendString(buf, o.Class)
		}
	}
	return buf
}

func (m GrantPerm) encode(buf []byte) []byte {
	buf = appendString(buf, m.User)
	buf = appendString(buf, m.State)
	return append(buf, m.Right)
}

func (m RevokePerm) encode(buf []byte) []byte {
	buf = appendString(buf, m.User)
	buf = appendString(buf, m.State)
	return append(buf, m.Right)
}

func (m FetchState) encode(buf []byte) []byte {
	buf = appendObjectRef(buf, m.Ref)
	return appendBool(buf, m.RelevantOnly)
}

func (m Ping) encode(buf []byte) []byte         { return appendUvarint(buf, m.Nonce) }
func (m Pong) encode(buf []byte) []byte         { return appendUvarint(buf, m.Nonce) }
func (m SessionToken) encode(buf []byte) []byte { return appendString(buf, m.Token) }
func (m Resume) encode(buf []byte) []byte       { return appendString(buf, m.Token) }

func (OK) encode(buf []byte) []byte    { return buf }
func (m Err) encode(buf []byte) []byte { return appendString(buf, m.Text) }

// decodeMessage decodes a message body by type tag.
func decodeMessage(t Type, body []byte) (Message, error) {
	d := &decoder{buf: body}
	var m Message
	switch t {
	case TRegister:
		m = Register{AppType: d.string(), Host: d.string(), User: d.string()}
	case TRegistered:
		m = Registered{ID: d.instanceID()}
	case TDeregister:
		m = Deregister{}
	case TDeclare:
		m = Declare{Path: d.string(), Class: d.string()}
	case TRetract:
		m = Retract{Path: d.string()}
	case TCouple:
		m = Couple{From: d.objectRef(), To: d.objectRef()}
	case TDecouple:
		m = Decouple{From: d.objectRef(), To: d.objectRef()}
	case TLinkAdded:
		m = LinkAdded{Link: d.link()}
	case TLinkRemoved:
		m = LinkRemoved{Link: d.link()}
	case TEvent:
		m = Event{Path: d.string(), Name: d.string(), Args: d.values()}
	case TExec:
		m = Exec{EventID: d.uvarint(), TargetPath: d.string(), Name: d.string(),
			Args: d.values(), Origin: d.objectRef()}
	case TExecAck:
		m = ExecAck{EventID: d.uvarint()}
	case TEventResult:
		m = EventResult{OK: d.bool(), Reason: d.string()}
	case TSetLocks:
		m = SetLocks{Paths: d.stringList(), Locked: d.bool()}
	case TCopyTo:
		m = CopyTo{FromPath: d.string(), To: d.objectRef(),
			State: d.treeState(), Destructive: d.bool()}
	case TCopyFrom:
		m = CopyFrom{From: d.objectRef(), ToPath: d.string(), Destructive: d.bool(), Shallow: d.bool()}
	case TRemoteCopy:
		m = RemoteCopy{From: d.objectRef(), To: d.objectRef(), Destructive: d.bool()}
	case TApplyState:
		m = ApplyState{Path: d.string(), State: d.treeState(),
			Origin: d.instanceID(), Destructive: d.bool()}
	case TStateRequest:
		m = StateRequest{RequestID: d.uvarint(), Path: d.string(), RelevantOnly: d.bool(), Shallow: d.bool()}
	case TStateReply:
		m = StateReply{RequestID: d.uvarint(), OK: d.bool(), Reason: d.string(),
			State: d.treeState()}
	case TCommand:
		cmd := Command{Name: d.string()}
		n := d.uvarint()
		if n > 1<<16 {
			d.fail("target count")
		} else {
			for i := uint64(0); i < n && d.err == nil; i++ {
				cmd.Targets = append(cmd.Targets, d.instanceID())
			}
		}
		cmd.Payload = d.bytes()
		m = cmd
	case TCommandDeliver:
		m = CommandDeliver{Name: d.string(), From: d.instanceID(), Payload: d.bytes()}
	case TUndo:
		m = Undo{Path: d.string()}
	case TRedo:
		m = Redo{Path: d.string()}
	case TListInstances:
		m = ListInstances{}
	case TInstanceList:
		list := InstanceList{}
		n := d.uvarint()
		if n > 1<<16 {
			d.fail("instance count")
		} else {
			for i := uint64(0); i < n && d.err == nil; i++ {
				info := InstanceInfo{ID: d.instanceID(), AppType: d.string(),
					Host: d.string(), User: d.string()}
				k := d.uvarint()
				if k > 1<<16 {
					d.fail("object count")
					break
				}
				for j := uint64(0); j < k && d.err == nil; j++ {
					info.Objects = append(info.Objects,
						DeclaredObject{Path: d.string(), Class: d.string()})
				}
				list.Instances = append(list.Instances, info)
			}
		}
		m = list
	case TGrantPerm:
		m = GrantPerm{User: d.string(), State: d.string(), Right: d.byte()}
	case TRevokePerm:
		m = RevokePerm{User: d.string(), State: d.string(), Right: d.byte()}
	case TFetchState:
		m = FetchState{Ref: d.objectRef(), RelevantOnly: d.bool()}
	case TPing:
		m = Ping{Nonce: d.uvarint()}
	case TPong:
		m = Pong{Nonce: d.uvarint()}
	case TSessionToken:
		m = SessionToken{Token: d.string()}
	case TResume:
		m = Resume{Token: d.string()}
	case TBatch:
		m = decodeBatch(d)
	case TBatchAck:
		m = decodeBatchAck(d)
	case TOK:
		m = OK{}
	case TErr:
		m = Err{Text: d.string()}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("%s: %w", t, err)
	}
	return m, nil
}

func (d *decoder) byte() uint8 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) treeState() widget.TreeState {
	if d.err != nil {
		return widget.TreeState{}
	}
	ts, rest, err := widget.DecodeTreeState(d.buf)
	if err != nil {
		d.err = err
		return widget.TreeState{}
	}
	d.buf = rest
	return ts
}
