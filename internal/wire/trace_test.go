package wire

import (
	"encoding/binary"
	"sync"
	"testing"

	"cosoft/internal/obs"
)

// readN reads n envelopes from c on a goroutine.
func readN(c *Conn, n int) <-chan []Envelope {
	out := make(chan []Envelope, 1)
	go func() {
		var envs []Envelope
		for i := 0; i < n; i++ {
			env, err := c.Read()
			if err != nil {
				break
			}
			envs = append(envs, env)
		}
		out <- envs
	}()
	return out
}

func TestTraceRoundTripWhenEnabled(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.EnableTrace()

	tc := obs.TraceContext{Trace: 0xdeadbeef, Span: 0x1234}
	got := readN(b, 1)
	if err := a.Write(Envelope{Seq: 7, Trace: tc, Msg: Event{Path: "/f", Name: "changed"}}); err != nil {
		t.Fatal(err)
	}
	envs := <-got
	if len(envs) != 1 {
		t.Fatal("read failed")
	}
	if envs[0].Trace != tc {
		t.Fatalf("trace = %+v, want %+v", envs[0].Trace, tc)
	}
	if envs[0].Seq != 7 {
		t.Fatalf("seq = %d, want 7", envs[0].Seq)
	}
	if !b.TraceAware() {
		t.Error("receiver did not latch peer trace awareness")
	}
}

// TestTraceSuppressedForLegacyPeer asserts the legacy-compat invariant: a
// connection that has neither opted in nor seen a traced frame emits frames
// byte-identical to the pre-trace encoding, even when the envelope carries
// trace context.
func TestTraceSuppressedForLegacyPeer(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	// No EnableTrace on a; b never writes. a must strip the trace.
	got := readN(b, 1)
	tc := obs.TraceContext{Trace: 42, Span: 43}
	if err := a.Write(Envelope{Seq: 1, Trace: tc, Msg: OK{}}); err != nil {
		t.Fatal(err)
	}
	envs := <-got
	if len(envs) != 1 {
		t.Fatal("read failed")
	}
	if envs[0].Trace.Valid() {
		t.Fatalf("legacy-mode frame carried trace %+v", envs[0].Trace)
	}
}

// TestTraceAutoDetectFromPeer asserts the acceptor side: after reading one
// traced frame, replies on the same connection may carry traces.
func TestTraceAutoDetectFromPeer(t *testing.T) {
	cli, srv := Pipe()
	defer cli.Close()
	defer srv.Close()
	cli.EnableTrace()

	tc := obs.TraceContext{Trace: 9, Span: 10}
	srvGot := readN(srv, 1)
	if err := cli.Write(Envelope{Seq: 1, Trace: tc, Msg: Register{User: "u"}}); err != nil {
		t.Fatal(err)
	}
	<-srvGot
	if !srv.TraceAware() {
		t.Fatal("server conn did not detect trace-aware peer")
	}
	// Server replies with trace; client must receive it.
	reply := obs.TraceContext{Trace: 9, Span: 11}
	cliGot := readN(cli, 1)
	if err := srv.Write(Envelope{RefSeq: 1, Trace: reply, Msg: Registered{ID: "i1"}}); err != nil {
		t.Fatal(err)
	}
	envs := <-cliGot
	if len(envs) != 1 || envs[0].Trace != reply {
		t.Fatalf("reply trace = %+v, want %+v", envs, reply)
	}
}

// TestLegacyFrameBytesDecode hand-builds a pre-trace frame (no flag bit, no
// trace varints) and asserts the new decoder accepts it unchanged — the
// "new reader, old writer" direction of the compatibility matrix.
func TestLegacyFrameBytesDecode(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var body []byte
	body = binary.LittleEndian.AppendUint16(body, uint16(TEvent))
	body = binary.AppendUvarint(body, 5) // seq
	body = binary.AppendUvarint(body, 0) // refSeq
	body = Event{Path: "/f", Name: "changed"}.encode(body)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)

	got := readN(b, 1)
	if err := writeRaw(a, frame); err != nil {
		t.Fatal(err)
	}
	envs := <-got
	if len(envs) != 1 {
		t.Fatal("legacy frame rejected")
	}
	env := envs[0]
	if env.Trace.Valid() {
		t.Fatalf("legacy frame decoded with trace %+v", env.Trace)
	}
	ev, ok := env.Msg.(Event)
	if !ok || ev.Path != "/f" || ev.Name != "changed" || env.Seq != 5 {
		t.Fatalf("decoded %+v", env)
	}
	if b.TraceAware() {
		t.Error("legacy frame must not latch trace awareness")
	}
}

// TestTracedFrameBytesDecode hand-builds a flagged frame and asserts the
// decoder extracts the context — the "new reader, new writer" byte layout
// pinned independently of the encoder.
func TestTracedFrameBytesDecode(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var body []byte
	body = binary.LittleEndian.AppendUint16(body, uint16(TExecAck)|traceFlag)
	body = binary.AppendUvarint(body, 0)   // seq
	body = binary.AppendUvarint(body, 0)   // refSeq
	body = binary.AppendUvarint(body, 777) // trace id
	body = binary.AppendUvarint(body, 888) // span id
	body = ExecAck{EventID: 12}.encode(body)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)

	got := readN(b, 1)
	if err := writeRaw(a, frame); err != nil {
		t.Fatal(err)
	}
	envs := <-got
	if len(envs) != 1 {
		t.Fatal("traced frame rejected")
	}
	want := obs.TraceContext{Trace: 777, Span: 888}
	if envs[0].Trace != want {
		t.Fatalf("trace = %+v, want %+v", envs[0].Trace, want)
	}
	if ack, ok := envs[0].Msg.(ExecAck); !ok || ack.EventID != 12 {
		t.Fatalf("decoded %+v", envs[0].Msg)
	}
}

// TestTracedFrameTruncatedHeader asserts a flagged frame whose trace varints
// are missing is rejected, not misparsed into the body.
func TestTracedFrameTruncatedHeader(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	var body []byte
	body = binary.LittleEndian.AppendUint16(body, uint16(TOK)|traceFlag)
	body = binary.AppendUvarint(body, 0) // seq
	body = binary.AppendUvarint(body, 0) // refSeq
	// No trace varints, no body: decoding the trace id must fail cleanly.
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	frame = append(frame, body...)

	errc := make(chan error, 1)
	go func() {
		_, err := b.Read()
		errc <- err
	}()
	if err := writeRaw(a, frame); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err == nil {
		t.Fatal("truncated traced frame accepted")
	}
}

// TestConcurrentTracedWrites exercises the write path's atomics under
// concurrency: mixed traced/untraced envelopes from many goroutines all
// arrive intact.
func TestConcurrentTracedWrites(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.EnableTrace()

	const n = 64
	got := readN(b, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			env := Envelope{Seq: uint64(i + 1), Msg: OK{}}
			if i%2 == 0 {
				env.Trace = obs.TraceContext{Trace: obs.TraceID(i + 1), Span: obs.SpanID(i + 1)}
			}
			if err := a.Write(env); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	envs := <-got
	if len(envs) != n {
		t.Fatalf("read %d envelopes, want %d", len(envs), n)
	}
	traced := 0
	for _, env := range envs {
		if env.Trace.Valid() {
			traced++
			if uint64(env.Trace.Trace) != env.Seq {
				t.Errorf("seq %d carried trace %d", env.Seq, env.Trace.Trace)
			}
		}
	}
	if traced != n/2 {
		t.Errorf("got %d traced envelopes, want %d", traced, n/2)
	}
}
