package wire

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
)

// randomMessage builds a random protocol message with random payloads.
func randomMessage(r *rand.Rand) Message {
	str := func() string {
		b := make([]byte, r.Intn(16))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return string(b)
	}
	ref := func() couple.ObjectRef {
		return couple.ObjectRef{Instance: couple.InstanceID(str()), Path: str()}
	}
	vals := func() []attr.Value {
		out := make([]attr.Value, r.Intn(4))
		for i := range out {
			switch r.Intn(4) {
			case 0:
				out[i] = attr.Int(r.Int63() - r.Int63())
			case 1:
				out[i] = attr.String(str())
			case 2:
				out[i] = attr.Bool(r.Intn(2) == 0)
			default:
				out[i] = attr.PointList(attr.Point{X: r.Int31(), Y: r.Int31()})
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	ts := func() widget.TreeState {
		root := widget.TreeState{Class: str(), Name: str(), Attrs: attr.NewSet()}
		for i, n := 0, r.Intn(3); i < n; i++ {
			root.Attrs.Put(str(), attr.String(str()))
		}
		for i, n := 0, r.Intn(3); i < n; i++ {
			root.Children = append(root.Children,
				widget.TreeState{Class: str(), Name: str(), Attrs: attr.NewSet()})
		}
		return root
	}
	payload := func() []byte {
		b := make([]byte, r.Intn(32))
		r.Read(b)
		if len(b) == 0 {
			return nil
		}
		return b
	}
	switch r.Intn(16) {
	case 0:
		return Register{AppType: str(), Host: str(), User: str()}
	case 1:
		return Declare{Path: str(), Class: str()}
	case 2:
		return Couple{From: ref(), To: ref()}
	case 3:
		return Event{Path: str(), Name: str(), Args: vals()}
	case 4:
		return Exec{EventID: r.Uint64(), TargetPath: str(), Name: str(), Args: vals(), Origin: ref()}
	case 5:
		return EventResult{OK: r.Intn(2) == 0, Reason: str()}
	case 6:
		paths := make([]string, r.Intn(4))
		for i := range paths {
			paths[i] = str()
		}
		if len(paths) == 0 {
			paths = nil
		}
		return SetLocks{Paths: paths, Locked: r.Intn(2) == 0}
	case 7:
		return CopyTo{FromPath: str(), To: ref(), State: ts(), Destructive: r.Intn(2) == 0}
	case 8:
		return CopyFrom{From: ref(), ToPath: str(), Destructive: r.Intn(2) == 0, Shallow: r.Intn(2) == 0}
	case 9:
		return ApplyState{Path: str(), State: ts(), Origin: couple.InstanceID(str()), Destructive: r.Intn(2) == 0}
	case 10:
		return StateRequest{RequestID: r.Uint64(), Path: str(), RelevantOnly: r.Intn(2) == 0, Shallow: r.Intn(2) == 0}
	case 11:
		return StateReply{RequestID: r.Uint64(), OK: r.Intn(2) == 0, Reason: str(), State: ts()}
	case 12:
		targets := make([]couple.InstanceID, r.Intn(3))
		for i := range targets {
			targets[i] = couple.InstanceID(str())
		}
		if len(targets) == 0 {
			targets = nil
		}
		return Command{Name: str(), Targets: targets, Payload: payload()}
	case 13:
		return CommandDeliver{Name: str(), From: couple.InstanceID(str()), Payload: payload()}
	case 14:
		return LinkAdded{Link: couple.Link{From: ref(), To: ref(), Creator: couple.InstanceID(str())}}
	default:
		return Err{Text: str()}
	}
}

// Property: every random message survives an encode/decode round trip
// through the framed connection.
func TestPropRandomMessagesRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomMessage(r)
		errc := make(chan error, 1)
		go func() {
			errc <- a.Write(Envelope{Seq: r.Uint64()%1000 + 1, Msg: want})
		}()
		env, err := b.Read()
		if err != nil || <-errc != nil {
			return false
		}
		return messagesEqual(env.Msg, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: on a trace-enabled connection, every random message round-trips
// with and without trace context, and the received context matches what was
// sent (zero stays zero, non-zero survives exactly).
func TestPropRandomMessagesRoundTripTraced(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	a.EnableTrace()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomMessage(r)
		var tc obs.TraceContext
		if r.Intn(2) == 0 {
			tc = obs.TraceContext{Trace: obs.TraceID(r.Uint64() | 1), Span: obs.SpanID(r.Uint64())}
		}
		errc := make(chan error, 1)
		go func() {
			errc <- a.Write(Envelope{Seq: r.Uint64()%1000 + 1, Trace: tc, Msg: want})
		}()
		env, err := b.Read()
		if err != nil || <-errc != nil {
			return false
		}
		return messagesEqual(env.Msg, want) && env.Trace == tc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the legacy framing of every random message — built by hand
// without the trace extension — is accepted by the new decoder, decodes to
// an equal message, and never reports trace context. This pins the
// old-writer/new-reader direction of the compatibility matrix.
func TestPropLegacyFramingDecodes(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		want := randomMessage(r)
		seq := r.Uint64() % 1000
		var body []byte
		body = appendLegacyHeader(body, uint16(want.MsgType()), seq, 0)
		body = want.encode(body)
		frame := appendFrameLen(nil, len(body))
		frame = append(frame, body...)
		errc := make(chan error, 1)
		go func() { errc <- writeRaw(a, frame) }()
		env, err := b.Read()
		if err != nil || <-errc != nil {
			return false
		}
		return messagesEqual(env.Msg, want) && env.Seq == seq && !env.Trace.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// appendLegacyHeader writes the pre-trace envelope header byte layout.
func appendLegacyHeader(buf []byte, msgType uint16, seq, refSeq uint64) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, msgType)
	buf = binary.AppendUvarint(buf, seq)
	return binary.AppendUvarint(buf, refSeq)
}

// appendFrameLen writes the u32 frame length prefix.
func appendFrameLen(buf []byte, n int) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(n))
}
