package wire

import (
	"encoding/binary"

	"cosoft/internal/obs"
)

// MaxBatch bounds the record count of a Batch or BatchAck frame. A peer
// announcing more records than this is treated as corrupt rather than as an
// allocation request; senders must split longer runs across frames.
const MaxBatch = 4096

// Batch packs a contiguous run of envelopes bound for the same peer into a
// single wire frame. Each record keeps its own type, correlation numbers,
// and (when present) trace context, so unpacking a Batch yields exactly the
// envelopes that would otherwise have arrived as individual frames, in the
// same order. Batch frames may only be sent once BatchAware reports true;
// a Batch may not nest another Batch or a BatchAck.
//
// Record layout, repeated Count times after a leading uvarint count:
//
//	[u16 type(|traceFlag)][uvarint seq][uvarint refSeq]
//	[uvarint traceID][uvarint spanID]   (only when traceFlag set)
//	[uvarint bodyLen][body]
type Batch struct {
	Envelopes []Envelope
}

// BatchAckEntry acknowledges one applied Exec, carrying the trace context
// of the apply span so coalescing does not sever per-event causal chains.
type BatchAckEntry struct {
	EventID uint64
	Trace   obs.TraceContext
}

// BatchAck coalesces the acknowledgements for a contiguous run of applied
// Execs into one frame. It is semantically identical to sending the same
// ExecAcks singly in entry order.
type BatchAck struct {
	Acks []BatchAckEntry
}

func (Batch) MsgType() Type    { return TBatch }
func (BatchAck) MsgType() Type { return TBatchAck }

func (m Batch) encode(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(len(m.Envelopes)))
	for _, env := range m.Envelopes {
		t := uint16(env.Msg.MsgType())
		// Inner records flag trace context by presence, independent of the
		// connection's trace negotiation: a Batch only ever goes to a peer
		// that negotiated batching, which postdates the trace extension.
		traced := env.Trace.Trace != 0 || env.Trace.Span != 0
		if traced {
			t |= traceFlag
		}
		buf = binary.LittleEndian.AppendUint16(buf, t)
		buf = appendUvarint(buf, env.Seq)
		buf = appendUvarint(buf, env.RefSeq)
		if traced {
			buf = appendUvarint(buf, uint64(env.Trace.Trace))
			buf = appendUvarint(buf, uint64(env.Trace.Span))
		}
		buf = appendBytes(buf, env.Msg.encode(nil))
	}
	return buf
}

func (m BatchAck) encode(buf []byte) []byte {
	buf = appendUvarint(buf, uint64(len(m.Acks)))
	for _, a := range m.Acks {
		buf = appendUvarint(buf, a.EventID)
		buf = appendUvarint(buf, uint64(a.Trace.Trace))
		buf = appendUvarint(buf, uint64(a.Trace.Span))
	}
	return buf
}

func decodeBatch(d *decoder) Batch {
	var m Batch
	n := d.uvarint()
	if d.err != nil {
		return m
	}
	if n == 0 {
		d.fail("empty batch")
		return m
	}
	if n > MaxBatch {
		d.fail("batch count")
		return m
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		env, ok := d.innerEnvelope()
		if !ok {
			break
		}
		m.Envelopes = append(m.Envelopes, env)
	}
	return m
}

// innerEnvelope decodes one Batch record.
func (d *decoder) innerEnvelope() (Envelope, bool) {
	raw := d.u16()
	t := Type(raw &^ flagMask)
	env := Envelope{Seq: d.uvarint(), RefSeq: d.uvarint()}
	if raw&traceFlag != 0 {
		env.Trace = obs.TraceContext{
			Trace: obs.TraceID(d.uvarint()),
			Span:  obs.SpanID(d.uvarint()),
		}
	}
	body := d.bytes()
	if d.err != nil {
		return Envelope{}, false
	}
	if t == TBatch {
		d.fail("nested batch")
		return Envelope{}, false
	}
	if t == TBatchAck {
		d.fail("nested batch ack")
		return Envelope{}, false
	}
	msg, err := decodeMessage(t, body)
	if err != nil {
		d.err = err
		return Envelope{}, false
	}
	env.Msg = msg
	return env, true
}

func decodeBatchAck(d *decoder) BatchAck {
	var m BatchAck
	n := d.uvarint()
	if d.err != nil {
		return m
	}
	if n == 0 {
		d.fail("empty batch ack")
		return m
	}
	if n > MaxBatch {
		d.fail("batch ack count")
		return m
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Acks = append(m.Acks, BatchAckEntry{
			EventID: d.uvarint(),
			Trace: obs.TraceContext{
				Trace: obs.TraceID(d.uvarint()),
				Span:  obs.SpanID(d.uvarint()),
			},
		})
	}
	return m
}

func (d *decoder) u16() uint16 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 2 {
		d.fail("u16")
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf)
	d.buf = d.buf[2:]
	return v
}
