// Package wire implements the framed binary protocol spoken between
// application instances and the central coupling server.
//
// Frame layout:
//
//	[u32 length][u16 type][uvarint seq][uvarint refSeq][body]
//
// length counts everything after the length field. seq is a sender-assigned
// message number; replies carry the request's seq in refSeq so callers can
// correlate responses without per-message bookkeeping fields.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame is the largest accepted frame body. Larger length prefixes are
// treated as protocol errors rather than allocation requests.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Envelope is one framed message with its correlation numbers.
type Envelope struct {
	// Seq is the sender-assigned message number (0 allowed for
	// fire-and-forget messages).
	Seq uint64
	// RefSeq echoes the Seq of the request this message replies to; 0 when
	// the message is not a reply.
	RefSeq uint64
	// Msg is the decoded payload.
	Msg Message
}

// Conn wraps a stream connection with framing and concurrent-safe writes.
// Reads must be performed by a single goroutine.
type Conn struct {
	wmu  sync.Mutex
	rw   *bufio.ReadWriter
	conn net.Conn
}

// NewConn wraps a net.Conn. The caller retains responsibility for closing.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		rw:   bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c)),
		conn: c,
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Write encodes and sends one envelope. It is safe for concurrent use.
func (c *Conn) Write(env Envelope) error {
	if env.Msg == nil {
		return errors.New("wire: nil message")
	}
	body := make([]byte, 0, 64)
	body = binary.LittleEndian.AppendUint16(body, uint16(env.Msg.MsgType()))
	body = binary.AppendUvarint(body, env.Seq)
	body = binary.AppendUvarint(body, env.RefSeq)
	body = env.Msg.encode(body)
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(body)))

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(lenbuf[:]); err != nil {
		return fmt.Errorf("wire: write frame length: %w", err)
	}
	if _, err := c.rw.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Read reads and decodes one envelope. It returns io.EOF (possibly wrapped)
// when the peer closed cleanly between frames.
func (c *Conn) Read() (Envelope, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(c.rw, lenbuf[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if n < 4 {
		return Envelope{}, fmt.Errorf("wire: frame too short (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return Envelope{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	t := Type(binary.LittleEndian.Uint16(body))
	body = body[2:]
	seq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad seq")
	}
	body = body[sz:]
	refSeq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad refSeq")
	}
	body = body[sz:]
	msg, err := decodeMessage(t, body)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Seq: seq, RefSeq: refSeq, Msg: msg}, nil
}

// Pipe returns a connected pair of Conns backed by net.Pipe, for in-process
// transports in tests and benchmarks.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
