// Package wire implements the framed binary protocol spoken between
// application instances and the central coupling server.
//
// Frame layout:
//
//	[u32 length][u16 type][uvarint seq][uvarint refSeq][body]
//
// length counts everything after the length field. seq is a sender-assigned
// message number; replies carry the request's seq in refSeq so callers can
// correlate responses without per-message bookkeeping fields.
//
// # Trace extension
//
// Frames may carry causal-trace context. The extension is signalled by the
// traceFlag bit in the type field; when set, two uvarints — trace ID and
// parent span ID — follow refSeq:
//
//	[u32 length][u16 type|traceFlag][uvarint seq][uvarint refSeq]
//	[uvarint traceID][uvarint spanID][body]
//
// The encoding is backward compatible both ways: untraced frames are
// byte-identical to the pre-trace protocol, and a Conn only emits flagged
// frames to peers that have proven they understand them. A side that opted
// in with EnableTrace (connection initiators, which speak first) flags every
// frame it writes — context-free frames carry zero IDs — which announces
// the capability to the acceptor from the first frame onward; an acceptor
// latches that on Read and from then on flags the frames that carry
// context. A legacy peer neither opts in nor sends flagged frames, so it
// never sees the flag and a legacy stream decodes exactly as before.
//
// # Batch extension
//
// The batchFlag bit in the type field is negotiated exactly like traceFlag:
// an initiator that opts in with EnableBatch flags every frame it writes,
// announcing that it understands the Batch and BatchAck message types; an
// acceptor latches the capability on Read. The flag itself changes nothing
// about the frame layout — it is pure capability advertisement. Only once
// BatchAware reports true may a side send a Batch frame, which packs a run
// of envelopes (each with its own type, correlation numbers, and optional
// trace context) into one wire frame. Legacy peers never advertise the bit
// and therefore keep receiving plain single-message frames.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cosoft/internal/obs"
)

// traceFlag marks a frame whose header carries trace context. It lives in
// the type field's high bit, far above any assigned message type.
const traceFlag uint16 = 0x8000

// batchFlag advertises the batch capability (see the package comment). Like
// traceFlag it lives far above any assigned message type; unlike traceFlag
// it never changes the layout of the frame that carries it.
const batchFlag uint16 = 0x4000

// flagMask covers every extension bit that may decorate the type field.
const flagMask = traceFlag | batchFlag

// MaxFrame is the largest accepted frame body. Larger length prefixes are
// treated as protocol errors rather than allocation requests.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Envelope is one framed message with its correlation numbers.
type Envelope struct {
	// Seq is the sender-assigned message number (0 allowed for
	// fire-and-forget messages).
	Seq uint64
	// RefSeq echoes the Seq of the request this message replies to; 0 when
	// the message is not a reply.
	RefSeq uint64
	// Trace is the causal-trace context the frame carried (zero when the
	// sender attached none). On outgoing envelopes it is only encoded for
	// trace-aware peers; see the package comment.
	Trace obs.TraceContext
	// Msg is the decoded payload.
	Msg Message
}

// Conn wraps a stream connection with framing and concurrent-safe writes.
// Reads must be performed by a single goroutine.
type Conn struct {
	wmu  sync.Mutex
	rw   *bufio.ReadWriter
	conn net.Conn

	// sendTrace is the local opt-in (connection initiators call EnableTrace
	// before speaking); peerTrace latches once the peer sends a traced
	// frame. Either one licenses traced output.
	sendTrace atomic.Bool
	peerTrace atomic.Bool

	// sendBatch/peerBatch mirror the trace pair for the batch capability:
	// the local opt-in flags every outgoing frame with batchFlag, and the
	// peer's flag latches on Read. Either one licenses Batch frames.
	sendBatch atomic.Bool
	peerBatch atomic.Bool
}

// NewConn wraps a net.Conn. The caller retains responsibility for closing.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		rw:   bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c)),
		conn: c,
	}
}

// EnableTrace opts this side into the trace extension: every outgoing
// envelope is encoded with the traceFlag (zero IDs when it carries no
// context), announcing the capability to the peer. Only connection
// initiators (who speak first) should call it; acceptors instead wait for
// the peer to prove trace awareness, which Read latches automatically. Do
// not enable when the remote peer may predate the extension.
func (c *Conn) EnableTrace() { c.sendTrace.Store(true) }

// TraceAware reports whether traced frames may be sent on this connection:
// the local side opted in, or the peer has already sent one.
func (c *Conn) TraceAware() bool { return c.sendTrace.Load() || c.peerTrace.Load() }

// EnableBatch opts this side into the batch extension: every outgoing frame
// carries the batchFlag capability bit, announcing that Batch frames are
// understood. Like EnableTrace it is for connection initiators only; do not
// enable when the remote peer may predate the extension.
func (c *Conn) EnableBatch() { c.sendBatch.Store(true) }

// BatchAware reports whether Batch frames may be sent on this connection:
// the local side opted in, or the peer has advertised the capability.
func (c *Conn) BatchAware() bool { return c.sendBatch.Load() || c.peerBatch.Load() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// Write encodes and sends one envelope. It is safe for concurrent use.
func (c *Conn) Write(env Envelope) error {
	if env.Msg == nil {
		return errors.New("wire: nil message")
	}
	// An opted-in side flags every frame — even context-free ones (the IDs
	// encode as two zero bytes) — so the peer learns the capability from the
	// very first frame, before any traced traffic exists. A side that only
	// detected the peer flags just the frames that actually carry context.
	traced := c.sendTrace.Load() || (c.peerTrace.Load() && env.Trace.Trace != 0)
	t := uint16(env.Msg.MsgType())
	if traced {
		t |= traceFlag
	}
	if c.sendBatch.Load() {
		t |= batchFlag
	}
	body := make([]byte, 0, 64)
	body = binary.LittleEndian.AppendUint16(body, t)
	body = binary.AppendUvarint(body, env.Seq)
	body = binary.AppendUvarint(body, env.RefSeq)
	if traced {
		body = binary.AppendUvarint(body, uint64(env.Trace.Trace))
		body = binary.AppendUvarint(body, uint64(env.Trace.Span))
	}
	body = env.Msg.encode(body)
	if len(body) > MaxFrame {
		return ErrFrameTooLarge
	}
	var lenbuf [4]byte
	binary.LittleEndian.PutUint32(lenbuf[:], uint32(len(body)))

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.rw.Write(lenbuf[:]); err != nil {
		return fmt.Errorf("wire: write frame length: %w", err)
	}
	if _, err := c.rw.Write(body); err != nil {
		return fmt.Errorf("wire: write frame body: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Read reads and decodes one envelope. It returns io.EOF (possibly wrapped)
// when the peer closed cleanly between frames.
func (c *Conn) Read() (Envelope, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(c.rw, lenbuf[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if n < 4 {
		return Envelope{}, fmt.Errorf("wire: frame too short (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return Envelope{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	rawType := binary.LittleEndian.Uint16(body)
	t := Type(rawType &^ flagMask)
	body = body[2:]
	if rawType&batchFlag != 0 {
		// The peer advertises batch capability; replies may pack frames.
		c.peerBatch.Store(true)
	}
	seq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad seq")
	}
	body = body[sz:]
	refSeq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad refSeq")
	}
	body = body[sz:]
	var tc obs.TraceContext
	if rawType&traceFlag != 0 {
		traceID, sz := binary.Uvarint(body)
		if sz <= 0 {
			return Envelope{}, errors.New("wire: bad trace id")
		}
		body = body[sz:]
		spanID, sz := binary.Uvarint(body)
		if sz <= 0 {
			return Envelope{}, errors.New("wire: bad span id")
		}
		body = body[sz:]
		tc = obs.TraceContext{Trace: obs.TraceID(traceID), Span: obs.SpanID(spanID)}
		// The peer speaks the extension; replies to it may carry traces.
		c.peerTrace.Store(true)
	}
	msg, err := decodeMessage(t, body)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Seq: seq, RefSeq: refSeq, Trace: tc, Msg: msg}, nil
}

// Pipe returns a connected pair of Conns backed by net.Pipe, for in-process
// transports in tests and benchmarks.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
