// Package wire implements the framed binary protocol spoken between
// application instances and the central coupling server.
//
// Frame layout:
//
//	[u32 length][u16 type][uvarint seq][uvarint refSeq][body]
//
// length counts everything after the length field. seq is a sender-assigned
// message number; replies carry the request's seq in refSeq so callers can
// correlate responses without per-message bookkeeping fields.
//
// # Trace extension
//
// Frames may carry causal-trace context. The extension is signalled by the
// traceFlag bit in the type field; when set, two uvarints — trace ID and
// parent span ID — follow refSeq:
//
//	[u32 length][u16 type|traceFlag][uvarint seq][uvarint refSeq]
//	[uvarint traceID][uvarint spanID][body]
//
// The encoding is backward compatible both ways: untraced frames are
// byte-identical to the pre-trace protocol, and a Conn only emits flagged
// frames to peers that have proven they understand them. A side that opted
// in with EnableTrace (connection initiators, which speak first) flags every
// frame it writes — context-free frames carry zero IDs — which announces
// the capability to the acceptor from the first frame onward; an acceptor
// latches that on Read and from then on flags the frames that carry
// context. A legacy peer neither opts in nor sends flagged frames, so it
// never sees the flag and a legacy stream decodes exactly as before.
//
// # Batch extension
//
// The batchFlag bit in the type field is negotiated exactly like traceFlag:
// an initiator that opts in with EnableBatch flags every frame it writes,
// announcing that it understands the Batch and BatchAck message types; an
// acceptor latches the capability on Read. The flag itself changes nothing
// about the frame layout — it is pure capability advertisement. Only once
// BatchAware reports true may a side send a Batch frame, which packs a run
// of envelopes (each with its own type, correlation numbers, and optional
// trace context) into one wire frame. Legacy peers never advertise the bit
// and therefore keep receiving plain single-message frames.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cosoft/internal/obs"
)

// traceFlag marks a frame whose header carries trace context. It lives in
// the type field's high bit, far above any assigned message type.
const traceFlag uint16 = 0x8000

// batchFlag advertises the batch capability (see the package comment). Like
// traceFlag it lives far above any assigned message type; unlike traceFlag
// it never changes the layout of the frame that carries it.
const batchFlag uint16 = 0x4000

// flagMask covers every extension bit that may decorate the type field.
const flagMask = traceFlag | batchFlag

// MaxFrame is the largest accepted frame body. Larger length prefixes are
// treated as protocol errors rather than allocation requests.
const MaxFrame = 16 << 20

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// Envelope is one framed message with its correlation numbers.
type Envelope struct {
	// Seq is the sender-assigned message number (0 allowed for
	// fire-and-forget messages).
	Seq uint64
	// RefSeq echoes the Seq of the request this message replies to; 0 when
	// the message is not a reply.
	RefSeq uint64
	// Trace is the causal-trace context the frame carried (zero when the
	// sender attached none). On outgoing envelopes it is only encoded for
	// trace-aware peers; see the package comment.
	Trace obs.TraceContext
	// Msg is the decoded payload.
	Msg Message
}

// maxConnScratch caps the capacity of the per-conn encode buffers retained
// between writes, so one oversized frame does not pin its buffer forever.
const maxConnScratch = 64 << 10

// Conn wraps a stream connection with framing and concurrent-safe writes.
// Reads must be performed by a single goroutine.
type Conn struct {
	wmu  sync.Mutex
	rw   *bufio.ReadWriter
	conn net.Conn

	// scratch is the reusable frame-encode buffer; scratch2 stages Batch
	// record bodies (whose length prefixes the bytes). Both are guarded by
	// wmu and shed oversized capacity after use.
	scratch  []byte
	scratch2 []byte
	// vec and cuts are the reusable vectored-write assembly for shared-body
	// frames; vecw is the consumable copy WriteTo advances (a field so the
	// header does not escape per write); coalesce flattens the assembly into
	// one Write on transports without writev support (all guarded by wmu).
	vec      net.Buffers
	vecw     net.Buffers
	cuts     []bodyCut
	coalesce []byte

	// encoded, when non-nil, accumulates the bytes this Conn serialized
	// (frame headers and bodies, excluding shared-body suffixes it spliced
	// in without encoding). Set it before the Conn is written concurrently.
	encoded *obs.Counter

	// sendTrace is the local opt-in (connection initiators call EnableTrace
	// before speaking); peerTrace latches once the peer sends a traced
	// frame. Either one licenses traced output.
	sendTrace atomic.Bool
	peerTrace atomic.Bool

	// sendBatch/peerBatch mirror the trace pair for the batch capability:
	// the local opt-in flags every outgoing frame with batchFlag, and the
	// peer's flag latches on Read. Either one licenses Batch frames.
	sendBatch atomic.Bool
	peerBatch atomic.Bool
}

// bodyCut marks where a shared-body suffix splices into the contiguous
// scratch bytes of a frame under assembly.
type bodyCut struct {
	off  int    // scratch offset the tail is inserted at
	tail []byte // the shared suffix bytes
}

// NewConn wraps a net.Conn. The caller retains responsibility for closing.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		rw:   bufio.NewReadWriter(bufio.NewReader(c), bufio.NewWriter(c)),
		conn: c,
	}
}

// EnableTrace opts this side into the trace extension: every outgoing
// envelope is encoded with the traceFlag (zero IDs when it carries no
// context), announcing the capability to the peer. Only connection
// initiators (who speak first) should call it; acceptors instead wait for
// the peer to prove trace awareness, which Read latches automatically. Do
// not enable when the remote peer may predate the extension.
func (c *Conn) EnableTrace() { c.sendTrace.Store(true) }

// TraceAware reports whether traced frames may be sent on this connection:
// the local side opted in, or the peer has already sent one.
func (c *Conn) TraceAware() bool { return c.sendTrace.Load() || c.peerTrace.Load() }

// EnableBatch opts this side into the batch extension: every outgoing frame
// carries the batchFlag capability bit, announcing that Batch frames are
// understood. Like EnableTrace it is for connection initiators only; do not
// enable when the remote peer may predate the extension.
func (c *Conn) EnableBatch() { c.sendBatch.Store(true) }

// BatchAware reports whether Batch frames may be sent on this connection:
// the local side opted in, or the peer has advertised the capability.
func (c *Conn) BatchAware() bool { return c.sendBatch.Load() || c.peerBatch.Load() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// CountEncodedBytes routes the byte count of everything this Conn encodes
// (frame headers and bodies; spliced-in shared suffixes are excluded, they
// were counted when first encoded) into ctr. Call before the Conn is
// written concurrently; a nil counter (the default) disables counting.
func (c *Conn) CountEncodedBytes(ctr *obs.Counter) { c.encoded = ctr }

// outFlags computes the type field of an outgoing frame: the message type
// decorated with the trace flag (an opted-in side flags every frame — even
// context-free ones, whose IDs encode as two zero bytes — so the peer learns
// the capability from the very first frame; a side that only detected the
// peer flags just the frames that actually carry context) and the batch
// capability bit.
func (c *Conn) outFlags(t Type, tc obs.TraceContext) (raw uint16, traced bool) {
	traced = c.sendTrace.Load() || (c.peerTrace.Load() && tc.Trace != 0)
	raw = uint16(t)
	if traced {
		raw |= traceFlag
	}
	if c.sendBatch.Load() {
		raw |= batchFlag
	}
	return raw, traced
}

// appendFrameHeader appends the envelope header after the (already
// reserved) length prefix: type word, correlation numbers, trace context.
func appendFrameHeader(buf []byte, raw uint16, traced bool, env Envelope) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, raw)
	buf = binary.AppendUvarint(buf, env.Seq)
	buf = binary.AppendUvarint(buf, env.RefSeq)
	if traced {
		buf = binary.AppendUvarint(buf, uint64(env.Trace.Trace))
		buf = binary.AppendUvarint(buf, uint64(env.Trace.Span))
	}
	return buf
}

// keepScratch retains buf as the conn's reusable encode buffer unless it
// grew past the retention cap.
func keepScratch(slot *[]byte, buf []byte) {
	if cap(buf) > maxConnScratch {
		*slot = nil
		return
	}
	*slot = buf[:0]
}

// Write encodes and sends one envelope. It is safe for concurrent use. The
// frame is encoded into a per-conn scratch buffer reused across writes, so
// steady-state traffic allocates nothing.
func (c *Conn) Write(env Envelope) error {
	if env.Msg == nil {
		return errors.New("wire: nil message")
	}
	raw, traced := c.outFlags(env.Msg.MsgType(), env.Trace)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	frame := append(c.scratch[:0], 0, 0, 0, 0) // length prefix, patched below
	frame = appendFrameHeader(frame, raw, traced, env)
	frame = env.Msg.encode(frame)
	keepScratch(&c.scratch, frame)
	n := len(frame) - 4
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(frame[:4], uint32(n))
	if _, err := c.rw.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	if err := c.rw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	c.encoded.Add(uint64(n))
	return nil
}

// WriteOutgoing sends one queued record. A record without a shared body is
// a plain Write; one with a shared body is framed as [header+head][shared
// suffix] and flushed with a vectored write, so the suffix bytes are neither
// re-encoded nor copied. Either way the bytes on the wire are identical to
// Write(o.Env).
func (c *Conn) WriteOutgoing(o Outgoing) error {
	if o.Shared == nil {
		return c.Write(o.Env)
	}
	raw, traced := c.outFlags(TExec, o.Env.Trace)

	c.wmu.Lock()
	defer c.wmu.Unlock()
	head := append(c.scratch[:0], 0, 0, 0, 0)
	head = appendFrameHeader(head, raw, traced, o.Env)
	head = o.Shared.appendHead(head, o.Target)
	keepScratch(&c.scratch, head)
	tail := o.Shared.tail()
	n := len(head) - 4 + len(tail)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(head[:4], uint32(n))
	if err := c.writeVectored(append(c.vec[:0], head, tail)); err != nil {
		return err
	}
	c.encoded.Add(uint64(len(head) - 4))
	return nil
}

// WriteBatch packs a run of records into one Batch frame, byte-identical to
// Write(Envelope{Msg: Batch{Envelopes: materialized}}) but with every shared
// body suffix spliced in by reference: the contiguous parts (outer header,
// record headers, per-member heads, plain bodies) are encoded into scratch
// and the suffixes are scatter-gathered between them with net.Buffers. A
// run whose packed body would exceed MaxFrame is rejected with
// ErrFrameTooLarge before anything reaches the wire, so callers can split
// and retry.
func (c *Conn) WriteBatch(recs []Outgoing) error {
	if len(recs) == 0 {
		return errors.New("wire: empty batch")
	}
	if len(recs) > MaxBatch {
		return errors.New("wire: batch too long")
	}
	// The outer envelope is fire-and-forget and never carries context of its
	// own (each record keeps its own), matching the materialized form.
	raw, traced := c.outFlags(TBatch, obs.TraceContext{})

	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf := append(c.scratch[:0], 0, 0, 0, 0)
	buf = appendFrameHeader(buf, raw, traced, Envelope{})
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	cuts := c.cuts[:0]
	spliced := 0
	for i := range recs {
		env := &recs[i].Env
		se := recs[i].Shared
		var it uint16
		if se != nil {
			it = uint16(TExec)
		} else if env.Msg != nil {
			it = uint16(env.Msg.MsgType())
		} else {
			keepScratch(&c.scratch, buf)
			c.cuts = cuts[:0]
			return errors.New("wire: nil message in batch")
		}
		// Inner records flag trace context by presence, independent of the
		// connection's negotiation — exactly as Batch.encode does.
		rt := env.Trace.Trace != 0 || env.Trace.Span != 0
		if rt {
			it |= traceFlag
		}
		buf = binary.LittleEndian.AppendUint16(buf, it)
		buf = binary.AppendUvarint(buf, env.Seq)
		buf = binary.AppendUvarint(buf, env.RefSeq)
		if rt {
			buf = binary.AppendUvarint(buf, uint64(env.Trace.Trace))
			buf = binary.AppendUvarint(buf, uint64(env.Trace.Span))
		}
		if se != nil {
			target := recs[i].Target
			buf = binary.AppendUvarint(buf, uint64(se.headLen(target)+se.TailLen()))
			buf = se.appendHead(buf, target)
			cuts = append(cuts, bodyCut{off: len(buf), tail: se.tail()})
			spliced += se.TailLen()
		} else {
			body := env.Msg.encode(c.scratch2[:0])
			keepScratch(&c.scratch2, body)
			buf = binary.AppendUvarint(buf, uint64(len(body)))
			buf = append(buf, body...)
		}
	}
	keepScratch(&c.scratch, buf)
	c.cuts = cuts[:0]
	n := len(buf) - 4 + spliced
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(n))

	// Assemble the vectored write: contiguous scratch runs interleaved with
	// the shared suffixes, in wire order. buf is complete — no append moves
	// it — so the sub-slices stay valid.
	bufs := c.vec[:0]
	prev := 0
	for _, cut := range cuts {
		bufs = append(bufs, buf[prev:cut.off], cut.tail)
		prev = cut.off
	}
	if prev < len(buf) {
		bufs = append(bufs, buf[prev:])
	}
	if err := c.writeVectored(bufs); err != nil {
		return err
	}
	c.encoded.Add(uint64(len(buf) - 4))
	return nil
}

// vectoredConn reports whether conn supports true scatter-gather writes
// (writev). On anything else net.Buffers.WriteTo degrades to one Write call
// per span, which would break transports that treat each Write as one frame
// — faultnet's per-write fault injection and similar test wrappers — by
// letting a dropped or duplicated "frame" be half of a real one.
func vectoredConn(conn net.Conn) bool {
	switch conn.(type) {
	case *net.TCPConn, *net.UnixConn:
		return true
	}
	return false
}

// writeVectored flushes any buffered output, then writes the assembled
// spans directly to the underlying connection: one vectored write (writev)
// on TCP, or one coalesced Write on transports without writev so the
// frame-per-Write invariant holds everywhere. Callers must hold wmu and
// build bufs from c.vec[:0]; the backing array is retained for the next
// frame while WriteTo consumes bufs itself.
func (c *Conn) writeVectored(bufs net.Buffers) error {
	c.vec = bufs[:0]
	if err := c.rw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	if !vectoredConn(c.conn) {
		flat := c.coalesce[:0]
		for _, b := range bufs {
			flat = append(flat, b...)
		}
		keepScratch(&c.coalesce, flat)
		if _, err := c.conn.Write(flat); err != nil {
			return fmt.Errorf("wire: write frame: %w", err)
		}
		return nil
	}
	c.vecw = bufs
	if _, err := c.vecw.WriteTo(c.conn); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	return nil
}

// Read reads and decodes one envelope. It returns io.EOF (possibly wrapped)
// when the peer closed cleanly between frames.
func (c *Conn) Read() (Envelope, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(c.rw, lenbuf[:]); err != nil {
		return Envelope{}, err
	}
	n := binary.LittleEndian.Uint32(lenbuf[:])
	if n > MaxFrame {
		return Envelope{}, ErrFrameTooLarge
	}
	if n < 4 {
		return Envelope{}, fmt.Errorf("wire: frame too short (%d bytes)", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.rw, body); err != nil {
		return Envelope{}, fmt.Errorf("wire: read frame body: %w", err)
	}
	rawType := binary.LittleEndian.Uint16(body)
	t := Type(rawType &^ flagMask)
	body = body[2:]
	if rawType&batchFlag != 0 {
		// The peer advertises batch capability; replies may pack frames.
		c.peerBatch.Store(true)
	}
	seq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad seq")
	}
	body = body[sz:]
	refSeq, sz := binary.Uvarint(body)
	if sz <= 0 {
		return Envelope{}, errors.New("wire: bad refSeq")
	}
	body = body[sz:]
	var tc obs.TraceContext
	if rawType&traceFlag != 0 {
		traceID, sz := binary.Uvarint(body)
		if sz <= 0 {
			return Envelope{}, errors.New("wire: bad trace id")
		}
		body = body[sz:]
		spanID, sz := binary.Uvarint(body)
		if sz <= 0 {
			return Envelope{}, errors.New("wire: bad span id")
		}
		body = body[sz:]
		tc = obs.TraceContext{Trace: obs.TraceID(traceID), Span: obs.SpanID(spanID)}
		// The peer speaks the extension; replies to it may carry traces.
		c.peerTrace.Store(true)
	}
	msg, err := decodeMessage(t, body)
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Seq: seq, RefSeq: refSeq, Trace: tc, Msg: msg}, nil
}

// Pipe returns a connected pair of Conns backed by net.Pipe, for in-process
// transports in tests and benchmarks.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
