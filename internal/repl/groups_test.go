package repl

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cosoft/internal/server"
)

// serveHealth returns a REPL wired to a fake /debug/groups endpoint.
func serveHealth(t *testing.T, rep server.HealthReport) (*REPL, *strings.Builder) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/groups" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(rep)
	}))
	t.Cleanup(srv.Close)
	var out strings.Builder
	r := New(nil, &out)
	r.SetMetricsBase(srv.URL)
	return r, &out
}

func TestGroupsCommandPrintsStragglerAndLoops(t *testing.T) {
	rep := server.HealthReport{
		UptimeNS:          2_500_000_000,
		MemberAttribution: true,
		Loops: []server.LoopHealth{
			{Name: "global", BusyNS: 250_000_000, Utilization: 0.1, QueueDepth: 1, QueueHighWater: 4},
			{Name: "shard.0", Events: 7, PendingEvents: 1},
		},
		Groups: []server.GroupHealth{{
			Refs:          []string{"inst-a:/note", "inst-b:/note", "inst-c:/note"},
			Shard:         0,
			LockHolder:    "inst-a",
			PendingEvents: 1,
			Straggler:     "inst-c",
			Members: []server.MemberHealth{
				{Instance: "inst-c", Connected: true, Acks: 7, LastAcks: 7,
					AckEWMANS: 25_000_000, AckP50NS: 25_000_000, AckP99NS: 26_000_000},
				{Instance: "inst-b", Connected: true, Acks: 7, AckEWMANS: 90_000},
				{Instance: "inst-a", Connected: false},
			},
		}},
	}
	r, out := serveHealth(t, rep)
	if err := r.Execute("groups"); err != nil {
		t.Fatalf("groups: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"uptime 2.5s, member attribution on",
		"loop global: 10.0% busy, queue 1 (high water 4)",
		"loop shard.0: 0.0% busy, queue 0 (high water 0), events 7 (1 pending)",
		"group [inst-a:/note inst-b:/note inst-c:/note] shard 0",
		"locked by inst-a, 1 pending events",
		"straggler: inst-c",
		"inst-c acks=7 last=7 timeouts=0 ewma=25ms p50=25ms p99=26ms",
		"inst-b acks=7 last=0 timeouts=0 ewma=90µs",
		"inst-a (disconnected) acks=0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestGroupsCommandEmptyReport(t *testing.T) {
	r, out := serveHealth(t, server.HealthReport{MemberAttribution: true,
		Loops: []server.LoopHealth{{Name: "global"}}})
	if err := r.Execute("groups"); err != nil {
		t.Fatalf("groups: %v", err)
	}
	if !strings.Contains(out.String(), "no coupling groups") {
		t.Errorf("output = %q", out.String())
	}
}

func TestGroupsCommandWithoutEndpoint(t *testing.T) {
	var out strings.Builder
	r := New(nil, &out)
	if err := r.Execute("groups"); err == nil || !strings.Contains(err.Error(), "-metrics-url") {
		t.Fatalf("err = %v, want -metrics-url hint", err)
	}
}
