// Package repl implements the interactive control interface for a coupling
// session — the modern stand-in for the interactive coordination UIs the
// paper reports consumed most of the engineering effort ("the main amount of
// work went into the provision of an interactive interface to coordinate a
// joint retrieval session between several users", §4).
//
// It drives one application instance from a line-oriented command stream:
// building widgets, declaring them couplable, inspecting the classroom,
// coupling/decoupling, dispatching events, copying state, and walking the
// undo history.
package repl

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/widget"
)

// REPL executes commands against one client.
type REPL struct {
	cli *client.Client
	out io.Writer
	// metricsBase is the cosoftd observability endpoint the trace command
	// queries; empty disables it (see SetMetricsBase).
	metricsBase string
}

// New returns a REPL driving the given client.
func New(cli *client.Client, out io.Writer) *REPL {
	return &REPL{cli: cli, out: out}
}

// Run reads commands from r until EOF or the quit command. Errors from
// individual commands are printed, not fatal.
func (r *REPL) Run(in io.Reader) error {
	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 64*1024), 64*1024)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := r.Execute(line); err != nil {
			fmt.Fprintf(r.out, "error: %v\n", err)
		}
	}
	return scanner.Err()
}

// Execute runs a single command line.
func (r *REPL) Execute(line string) error {
	fields, err := fieldsQuoted(line)
	if err != nil {
		return err
	}
	if len(fields) == 0 {
		return nil
	}
	cmd, args := fields[0], fields[1:]
	handler, ok := commands[cmd]
	if !ok {
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
	return handler(r, args, line)
}

// fieldsQuoted splits on spaces but keeps double-quoted segments (with their
// quotes) as single tokens, so string event arguments survive.
func fieldsQuoted(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		if i >= len(line) {
			break
		}
		start := i
		inQuote := false
		for i < len(line) {
			switch line[i] {
			case '"':
				inQuote = !inQuote
			case ' ':
				if !inQuote {
					goto done
				}
			}
			i++
		}
	done:
		if inQuote {
			return nil, fmt.Errorf("unterminated quote in %q", line)
		}
		out = append(out, line[start:i])
	}
	return out, nil
}

type command func(r *REPL, args []string, raw string) error

var commands map[string]command

// init breaks the initialization cycle between the command table and the
// help command, which lists the table.
func init() {
	commands = map[string]command{
		"help":      (*REPL).cmdHelp,
		"id":        (*REPL).cmdID,
		"build":     (*REPL).cmdBuild,
		"tree":      (*REPL).cmdTree,
		"get":       (*REPL).cmdGet,
		"event":     (*REPL).cmdEvent,
		"declare":   (*REPL).cmdDeclare,
		"instances": (*REPL).cmdInstances,
		"links":     (*REPL).cmdLinks,
		"couple":    (*REPL).cmdCouple,
		"decouple":  (*REPL).cmdDecouple,
		"copyto":    (*REPL).cmdCopyTo,
		"copyfrom":  (*REPL).cmdCopyFrom,
		"inspect":   (*REPL).cmdInspect,
		"undo":      (*REPL).cmdUndo,
		"redo":      (*REPL).cmdRedo,
		"send":      (*REPL).cmdSend,
		"trace":     (*REPL).cmdTrace,
		"groups":    (*REPL).cmdGroups,
	}
}

var helpText = map[string]string{
	"help":      "help — list commands",
	"id":        "id — print this instance's identifier",
	"build":     "build <parent> <spec-line> — create a widget, e.g. build / textfield note value=\"\"",
	"tree":      "tree [path] — print the widget tree",
	"get":       "get <path> <attr> — read one attribute",
	"event":     "event <path> <name> [args...] — dispatch a high-level event (args: int, \"string\", true/false)",
	"declare":   "declare <path> — make the subtree couplable",
	"instances": "instances — list registered application instances",
	"links":     "links <path> — show the local object's coupling group",
	"couple":    "couple <localPath> <instance> <remotePath> — create a couple link",
	"decouple":  "decouple <localPath> <instance> <remotePath> — remove a couple link",
	"copyto":    "copyto <localPath> <instance> <remotePath> — push state (passive sync)",
	"copyfrom":  "copyfrom <instance> <remotePath> <localPath> — pull state (active sync)",
	"inspect":   "inspect <instance> <path> — print a remote object's relevant state",
	"undo":      "undo <path> — restore the last overwritten state",
	"redo":      "redo <path> — re-apply the last undone state",
	"send":      "send <command> [instance] <text> — CoSendCommand to one instance or broadcast",
	"trace":     "trace [trace-id] — fetch and pretty-print recent causal spans and flight-recorder entries (needs -metrics-url)",
	"groups":    "groups — fetch per-group health: lock holder, pending events, straggler attribution (needs -metrics-url)",
}

func (r *REPL) cmdHelp(args []string, raw string) error {
	names := make([]string, 0, len(helpText))
	for n := range helpText {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintln(r.out, helpText[n])
	}
	fmt.Fprintln(r.out, "quit — leave the session")
	return nil
}

func (r *REPL) cmdID(args []string, raw string) error {
	fmt.Fprintln(r.out, r.cli.ID())
	return nil
}

func (r *REPL) cmdBuild(args []string, raw string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: %s", helpText["build"])
	}
	parent := args[0]
	spec := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(raw), "build"))
	spec = strings.TrimSpace(strings.TrimPrefix(spec, parent))
	w, err := widget.Build(r.cli.Registry(), parent, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(r.out, "created %s (%s)\n", w.Path(), w.Class().Name)
	return nil
}

func (r *REPL) cmdTree(args []string, raw string) error {
	root := "/"
	if len(args) > 0 {
		root = args[0]
	}
	ts, err := r.cli.Registry().CaptureTree(root, false)
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, ts.String())
	return nil
}

func (r *REPL) cmdGet(args []string, raw string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: %s", helpText["get"])
	}
	w, err := r.cli.Registry().Lookup(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintln(r.out, w.Attr(args[1]).String())
	return nil
}

func (r *REPL) cmdEvent(args []string, raw string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: %s", helpText["event"])
	}
	vals, err := parseEventArgs(args[2:])
	if err != nil {
		return err
	}
	ev := &widget.Event{Path: args[0], Name: args[1], Args: vals}
	if err := r.cli.DispatchChecked(ev); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "dispatched %s\n", ev)
	return nil
}

func parseEventArgs(tokens []string) ([]attr.Value, error) {
	var vals []attr.Value
	for _, tok := range tokens {
		switch {
		case tok == "true":
			vals = append(vals, attr.Bool(true))
		case tok == "false":
			vals = append(vals, attr.Bool(false))
		case strings.HasPrefix(tok, `"`):
			unq, err := strconv.Unquote(tok)
			if err != nil {
				return nil, fmt.Errorf("bad string %s: %w", tok, err)
			}
			vals = append(vals, attr.String(unq))
		default:
			if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
				vals = append(vals, attr.Int(n))
				continue
			}
			vals = append(vals, attr.String(tok))
		}
	}
	return vals, nil
}

func (r *REPL) cmdDeclare(args []string, raw string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s", helpText["declare"])
	}
	if err := r.cli.DeclareTree(args[0]); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "declared %s\n", args[0])
	return nil
}

func (r *REPL) cmdInstances(args []string, raw string) error {
	infos, err := r.cli.Instances()
	if err != nil {
		return err
	}
	for _, info := range infos {
		marker := " "
		if info.ID == r.cli.ID() {
			marker = "*"
		}
		fmt.Fprintf(r.out, "%s %-16s %-14s user=%-10s %d objects\n",
			marker, info.ID, info.AppType, info.User, len(info.Objects))
	}
	return nil
}

func (r *REPL) cmdLinks(args []string, raw string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s", helpText["links"])
	}
	group := r.cli.CO(args[0])
	if len(group) == 0 {
		fmt.Fprintf(r.out, "%s is not coupled\n", args[0])
		return nil
	}
	for _, m := range group {
		fmt.Fprintf(r.out, "coupled with %s\n", m)
	}
	return nil
}

func (r *REPL) remoteRef(instance, path string) couple.ObjectRef {
	return couple.ObjectRef{Instance: couple.InstanceID(instance), Path: path}
}

func (r *REPL) cmdCouple(args []string, raw string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: %s", helpText["couple"])
	}
	if err := r.cli.Couple(args[0], r.remoteRef(args[1], args[2])); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "coupled %s with %s:%s\n", args[0], args[1], args[2])
	return nil
}

func (r *REPL) cmdDecouple(args []string, raw string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: %s", helpText["decouple"])
	}
	if err := r.cli.Decouple(args[0], r.remoteRef(args[1], args[2])); err != nil {
		return err
	}
	fmt.Fprintf(r.out, "decoupled %s from %s:%s\n", args[0], args[1], args[2])
	return nil
}

func (r *REPL) cmdCopyTo(args []string, raw string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: %s", helpText["copyto"])
	}
	if err := r.cli.CopyTo(args[0], r.remoteRef(args[1], args[2]), false); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "copied")
	return nil
}

func (r *REPL) cmdCopyFrom(args []string, raw string) error {
	if len(args) != 3 {
		return fmt.Errorf("usage: %s", helpText["copyfrom"])
	}
	if err := r.cli.CopyFrom(r.remoteRef(args[0], args[1]), args[2], false); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "copied")
	return nil
}

func (r *REPL) cmdInspect(args []string, raw string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: %s", helpText["inspect"])
	}
	ts, err := r.cli.FetchState(r.remoteRef(args[0], args[1]), true)
	if err != nil {
		return err
	}
	fmt.Fprint(r.out, ts.String())
	return nil
}

func (r *REPL) cmdUndo(args []string, raw string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s", helpText["undo"])
	}
	if err := r.cli.Undo(args[0]); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "undone")
	return nil
}

func (r *REPL) cmdRedo(args []string, raw string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: %s", helpText["redo"])
	}
	if err := r.cli.Redo(args[0]); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "redone")
	return nil
}

func (r *REPL) cmdSend(args []string, raw string) error {
	if len(args) < 2 {
		return fmt.Errorf("usage: %s", helpText["send"])
	}
	name := args[0]
	rest := args[1:]
	var targets []couple.InstanceID
	// A first token that looks like an instance id (contains '-') narrows
	// the broadcast.
	if len(rest) > 1 && strings.Contains(rest[0], "-") {
		targets = append(targets, couple.InstanceID(rest[0]))
		rest = rest[1:]
	}
	payload := strings.Join(rest, " ")
	if err := r.cli.SendCommand(name, []byte(payload), targets...); err != nil {
		return err
	}
	fmt.Fprintln(r.out, "sent")
	return nil
}
