package repl

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft/internal/client"
	"cosoft/internal/couple"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

type fixture struct {
	t   *testing.T
	srv *server.Server
	wg  sync.WaitGroup
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{t: t, srv: server.New(server.Options{})}
	t.Cleanup(func() {
		f.srv.Close()
		f.wg.Wait()
	})
	return f
}

func (f *fixture) dial(user string) *client.Client {
	f.t.Helper()
	link := netsim.NewLink(0)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		f.srv.HandleConn(wire.NewConn(link.B))
	}()
	cli, err := client.New(link.A, client.Options{
		AppType: "repl", User: user, Host: "h",
		Registry: widget.NewRegistry(), RPCTimeout: 5 * time.Second,
	})
	if err != nil {
		f.t.Fatal(err)
	}
	f.t.Cleanup(cli.Close)
	return cli
}

// run feeds a script and returns the combined output.
func run(t *testing.T, cli *client.Client, script string) string {
	t.Helper()
	var out bytes.Buffer
	r := New(cli, &out)
	if err := r.Run(strings.NewReader(script)); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	return out.String()
}

func TestBuildTreeGetEvent(t *testing.T) {
	f := newFixture(t)
	cli := f.dial("u1")
	out := run(t, cli, `
# comments and blank lines are skipped

build / textfield note value="start"
tree /note
get /note value
event /note changed "typed text"
get /note value
id
help
quit
get /note value
`)
	for _, want := range []string{
		"created /note (textfield)",
		`"start"`,
		"dispatched /note!changed",
		`"typed text"`,
		string(cli.ID()),
		"help — list commands",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// quit stops processing: the final get must not have run. The string
	// appears twice before quit (the event echo and one get).
	if strings.Count(out, `"typed text"`) != 2 {
		t.Errorf("commands after quit were executed:\n%s", out)
	}
}

func TestErrorsAreReportedNotFatal(t *testing.T) {
	f := newFixture(t)
	cli := f.dial("u1")
	out := run(t, cli, `
bogus
get /missing value
event /missing changed "x"
build /
couple /a
id
`)
	if got := strings.Count(out, "error:"); got != 5 {
		t.Errorf("expected 5 errors, got %d:\n%s", got, out)
	}
	if !strings.Contains(out, string(cli.ID())) {
		t.Error("REPL stopped after errors")
	}
}

func TestCoupleFlowBetweenTwoREPLs(t *testing.T) {
	f := newFixture(t)
	a := f.dial("alice")
	b := f.dial("bob")
	run(t, a, `
build / textfield pad value=""
declare /pad
`)
	run(t, b, `
build / textfield pad value="theirs"
declare /pad
`)
	out := run(t, a, "instances\n")
	if !strings.Contains(out, string(b.ID())) {
		t.Fatalf("instances missing %s:\n%s", b.ID(), out)
	}
	out = run(t, a, strings.Join([]string{
		"couple /pad " + string(b.ID()) + " /pad",
		"links /pad",
		`event /pad changed "shared"`,
	}, "\n"))
	if !strings.Contains(out, "coupled /pad") || !strings.Contains(out, "coupled with") {
		t.Fatalf("coupling output:\n%s", out)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w, err := b.Registry().Lookup("/pad")
		if err == nil && w.Attr(widget.AttrValue).AsString() == "shared" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// copyfrom + undo + inspect round trip.
	out = run(t, b, strings.Join([]string{
		"inspect " + string(a.ID()) + " /pad",
		"copyfrom " + string(a.ID()) + " /pad /pad",
		"undo /pad",
		"redo /pad",
		"decouple /pad " + string(a.ID()) + " /pad",
	}, "\n"))
	for _, want := range []string{"textfield pad", "copied", "undone", "redone", "decoupled"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSendCommand(t *testing.T) {
	f := newFixture(t)
	a := f.dial("alice")
	b := f.dial("bob")
	got := make(chan string, 2)
	b.OnCommand("note", func(from couple.InstanceID, payload []byte) {
		got <- string(from) + ":" + string(payload)
	})
	// Targeted send (the instance id contains '-').
	out := run(t, a, "send note "+string(b.ID())+" hello bob\n")
	if !strings.Contains(out, "sent") {
		t.Fatalf("output:\n%s", out)
	}
	select {
	case msg := <-got:
		if msg != string(a.ID())+":hello bob" {
			t.Errorf("delivered %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("command not delivered")
	}
	// Broadcast send (no instance token).
	run(t, a, "send note broadcast-text\n")
	select {
	case msg := <-got:
		if !strings.HasSuffix(msg, ":broadcast-text") {
			t.Errorf("delivered %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("broadcast not delivered")
	}
}
