package repl

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cosoft/internal/obs"
)

// serveDump returns a REPL wired to a fake /debug/trace endpoint.
func serveDump(t *testing.T, dump traceDump) (*REPL, *strings.Builder) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace" {
			http.NotFound(w, r)
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			var kept []obs.Span
			for _, s := range dump.Spans {
				if s.Trace.String() == id {
					kept = append(kept, s)
				}
			}
			dump = traceDump{Spans: kept}
		}
		json.NewEncoder(w).Encode(dump)
	}))
	t.Cleanup(srv.Close)
	var out strings.Builder
	r := New(nil, &out)
	r.SetMetricsBase(srv.URL)
	return r, &out
}

func TestTraceCommandPrintsSpanTreeAndFlight(t *testing.T) {
	dump := traceDump{
		Spans: []obs.Span{
			{Trace: 0xabc, ID: 1, Name: "client.event_send", Inst: "inst-a", Note: "/pad keypress", Start: 100, End: 9100},
			{Trace: 0xabc, ID: 2, Parent: 1, Name: "server.event_arrival", Inst: "server", Start: 200, End: 9000},
			{Trace: 0xabc, ID: 3, Parent: 2, Name: "client.exec_apply", Inst: "inst-b", Start: 300, End: 8000},
		},
		Flight: map[string][]obs.FlightEntry{
			"inst-a": {{Time: 100, Dir: "recv", Type: "Event", Seq: 4, Trace: 0xabc, Note: "/pad keypress"}},
		},
	}
	r, out := serveDump(t, dump)
	if err := r.Execute("trace"); err != nil {
		t.Fatalf("trace: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"trace 0000000000000abc (3 spans)",
		"  client.event_send [inst-a]",
		"    server.event_arrival [server]",
		"      client.exec_apply [inst-b]",
		"— /pad keypress",
		"flight inst-a (1 entries)",
		"recv Event",
		"seq=4",
		"trace=0000000000000abc",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestTraceCommandFiltersByID(t *testing.T) {
	dump := traceDump{
		Spans: []obs.Span{
			{Trace: 0x1, ID: 1, Name: "client.event_send", Inst: "inst-a", Start: 100, End: 200},
			{Trace: 0x2, ID: 2, Name: "client.event_send", Inst: "inst-b", Start: 300, End: 400},
		},
	}
	r, out := serveDump(t, dump)
	if err := r.Execute("trace " + obs.TraceID(0x2).String()); err != nil {
		t.Fatalf("trace: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "trace 0000000000000002") {
		t.Fatalf("output missing requested trace:\n%s", got)
	}
	if strings.Contains(got, "trace 0000000000000001") {
		t.Fatalf("output includes filtered-out trace:\n%s", got)
	}
}

func TestTraceCommandOrphanSpansPrintAtTopLevel(t *testing.T) {
	// A span whose parent fell out of the ring still prints (at top level)
	// instead of disappearing.
	dump := traceDump{Spans: []obs.Span{
		{Trace: 0x9, ID: 5, Parent: 99, Name: "server.exec_ack", Inst: "server", Start: 10, End: 10},
	}}
	r, out := serveDump(t, dump)
	if err := r.Execute("trace"); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(out.String(), "server.exec_ack") {
		t.Fatalf("orphan span missing:\n%s", out.String())
	}
}

func TestTraceCommandWithoutEndpoint(t *testing.T) {
	var out strings.Builder
	r := New(nil, &out)
	err := r.Execute("trace")
	if err == nil || !strings.Contains(err.Error(), "metrics endpoint") {
		t.Fatalf("err = %v, want metrics-endpoint error", err)
	}
}

func TestTraceCommandEmptyDump(t *testing.T) {
	r, out := serveDump(t, traceDump{})
	if err := r.Execute("trace"); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if !strings.Contains(out.String(), "no spans recorded") {
		t.Fatalf("output = %q", out.String())
	}
}
