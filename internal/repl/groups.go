package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cosoft/internal/server"
)

// cmdGroups fetches the server's group health report and renders it: one
// block per coupling group with topology, lock holder, pending events, the
// attributed straggler, and per-member ack-latency stats (slowest member
// first), preceded by the serialization loops' utilization.
func (r *REPL) cmdGroups(args []string, raw string) error {
	if r.metricsBase == "" {
		return fmt.Errorf("no metrics endpoint configured (start with -metrics-url)")
	}
	url := r.metricsBase + "/debug/groups"
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Get(url)
	if err != nil {
		return fmt.Errorf("fetch groups: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch groups: %s returned %s", url, resp.Status)
	}
	var rep server.HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return fmt.Errorf("fetch groups: decode: %w", err)
	}
	r.printHealth(rep)
	return nil
}

func (r *REPL) printHealth(rep server.HealthReport) {
	attribution := "on"
	if !rep.MemberAttribution {
		attribution = "off"
	}
	fmt.Fprintf(r.out, "uptime %v, member attribution %s\n",
		time.Duration(rep.UptimeNS).Round(time.Millisecond), attribution)
	for _, lp := range rep.Loops {
		line := fmt.Sprintf("loop %s: %.1f%% busy, queue %d (high water %d)",
			lp.Name, lp.Utilization*100, lp.QueueDepth, lp.QueueHighWater)
		if lp.Events > 0 || lp.PendingEvents > 0 {
			line += fmt.Sprintf(", events %d (%d pending)", lp.Events, lp.PendingEvents)
		}
		fmt.Fprintln(r.out, line)
	}
	if len(rep.Groups) == 0 {
		fmt.Fprintln(r.out, "no coupling groups")
		return
	}
	for _, g := range rep.Groups {
		fmt.Fprintf(r.out, "group [%s] shard %d\n", strings.Join(g.Refs, " "), g.Shard)
		status := "unlocked"
		if g.LockHolder != "" {
			status = "locked by " + g.LockHolder
		}
		fmt.Fprintf(r.out, "  %s, %d pending events\n", status, g.PendingEvents)
		if g.Straggler != "" {
			fmt.Fprintf(r.out, "  straggler: %s\n", g.Straggler)
		}
		for _, m := range g.Members {
			conn := ""
			if !m.Connected {
				conn = " (disconnected)"
			}
			fmt.Fprintf(r.out, "  %s%s acks=%d last=%d timeouts=%d ewma=%v p50=%v p99=%v\n",
				m.Instance, conn, m.Acks, m.LastAcks, m.Timeouts,
				roundNS(m.AckEWMANS), roundNS(m.AckP50NS), roundNS(m.AckP99NS))
		}
	}
}

// roundNS renders a float nanosecond stat as a human duration.
func roundNS(ns float64) time.Duration {
	return time.Duration(ns).Round(time.Microsecond)
}
