package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"cosoft/internal/obs"
)

// SetMetricsBase points the trace command at a cosoftd observability
// endpoint, e.g. "http://localhost:9090". Empty (the default) disables it.
func (r *REPL) SetMetricsBase(base string) {
	r.metricsBase = strings.TrimSuffix(base, "/")
}

// traceDump mirrors the JSON served by cosoftd's /debug/trace.
type traceDump struct {
	Spans  []obs.Span                   `json:"spans"`
	Flight map[string][]obs.FlightEntry `json:"flight"`
}

// cmdTrace fetches the server's recent causal spans and flight-recorder
// entries and pretty-prints them: spans grouped per trace and indented by
// parent link, flight entries grouped per connection.
func (r *REPL) cmdTrace(args []string, raw string) error {
	if r.metricsBase == "" {
		return fmt.Errorf("no metrics endpoint configured (start with -metrics-url)")
	}
	url := r.metricsBase + "/debug/trace"
	if len(args) > 0 {
		url += "?trace=" + args[0]
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Get(url)
	if err != nil {
		return fmt.Errorf("fetch traces: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch traces: %s returned %s", url, resp.Status)
	}
	var dump traceDump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		return fmt.Errorf("fetch traces: decode: %w", err)
	}
	r.printSpans(dump.Spans)
	r.printFlight(dump.Flight)
	return nil
}

// printSpans renders spans grouped by trace, each trace as a tree indented
// by parent/child links, oldest trace first.
func (r *REPL) printSpans(spans []obs.Span) {
	if len(spans) == 0 {
		fmt.Fprintln(r.out, "no spans recorded")
		return
	}
	byTrace := make(map[obs.TraceID][]obs.Span)
	var order []obs.TraceID
	for _, s := range spans {
		if _, seen := byTrace[s.Trace]; !seen {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}
	sort.Slice(order, func(i, j int) bool {
		return earliestStart(byTrace[order[i]]) < earliestStart(byTrace[order[j]])
	})
	for _, id := range order {
		group := byTrace[id]
		sort.Slice(group, func(i, j int) bool { return group[i].Start < group[j].Start })
		fmt.Fprintf(r.out, "trace %s (%d spans)\n", id, len(group))
		known := make(map[obs.SpanID]bool, len(group))
		for _, s := range group {
			known[s.ID] = true
		}
		children := make(map[obs.SpanID][]obs.Span)
		var roots []obs.Span
		for _, s := range group {
			if s.Parent != 0 && known[s.Parent] {
				children[s.Parent] = append(children[s.Parent], s)
			} else {
				// True roots, plus spans whose parent fell out of the
				// ring: both print at top level.
				roots = append(roots, s)
			}
		}
		for _, s := range roots {
			r.printSpanTree(s, children, 1)
		}
	}
}

func earliestStart(spans []obs.Span) int64 {
	min := spans[0].Start
	for _, s := range spans[1:] {
		if s.Start < min {
			min = s.Start
		}
	}
	return min
}

func (r *REPL) printSpanTree(s obs.Span, children map[obs.SpanID][]obs.Span, depth int) {
	line := strings.Repeat("  ", depth) + s.Name
	line += fmt.Sprintf(" [%s]", s.Inst)
	if d := s.Duration(); d > 0 {
		line += fmt.Sprintf(" %v", d.Round(time.Microsecond))
	}
	if s.Note != "" {
		line += " — " + s.Note
	}
	fmt.Fprintln(r.out, line)
	for _, c := range children[s.ID] {
		r.printSpanTree(c, children, depth+1)
	}
}

// printFlight renders the flight-recorder entries per connection.
func (r *REPL) printFlight(flight map[string][]obs.FlightEntry) {
	if len(flight) == 0 {
		return
	}
	conns := make([]string, 0, len(flight))
	for conn := range flight {
		conns = append(conns, conn)
	}
	sort.Strings(conns)
	for _, conn := range conns {
		fmt.Fprintf(r.out, "flight %s (%d entries)\n", conn, len(flight[conn]))
		for _, e := range flight[conn] {
			ts := time.Unix(0, e.Time).Format("15:04:05.000000")
			line := fmt.Sprintf("  %s %-4s %-12s", ts, e.Dir, e.Type)
			if e.Seq != 0 {
				line += fmt.Sprintf(" seq=%d", e.Seq)
			}
			if e.RefSeq != 0 {
				line += fmt.Sprintf(" ref=%d", e.RefSeq)
			}
			if e.Trace != 0 {
				line += " trace=" + e.Trace.String()
			}
			if e.Note != "" {
				line += " — " + e.Note
			}
			fmt.Fprintln(r.out, line)
		}
	}
}
