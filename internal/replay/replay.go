// Package replay implements the action-log alternative the paper weighs
// against synchronization by state (§3.1): "One approach is to record all
// actions occurring on the (copied and copying) complex objects while they
// are decoupled, and then re-execute these actions when they are coupled.
// ... The first approach is expensive, especially for long periods of
// decoupling."
//
// The package provides recording, replay, and a compaction pass, so the
// state-copy-vs-action-replay experiment (E3) can measure all three
// variants: naive replay, compacted replay, and the state copy the paper
// chose.
package replay

import (
	"sync"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

// Log records high-level events that occurred while an object (or group of
// objects) was decoupled. The zero value is not usable; call NewLog.
type Log struct {
	mu     sync.Mutex
	max    int
	events []widget.Event
	// dropped counts events discarded because the log was full — a full
	// log means replay can no longer reproduce the peer's state and the
	// caller must fall back to a state copy.
	dropped int
}

// NewLog returns a log holding up to max events (0 = unbounded).
func NewLog(max int) *Log {
	return &Log{max: max}
}

// Record appends one event. Events beyond the bound are counted as dropped.
func (l *Log) Record(e *widget.Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.max > 0 && len(l.events) >= l.max {
		l.dropped++
		return
	}
	cp := widget.Event{Path: e.Path, Name: e.Name, Remote: e.Remote}
	if len(e.Args) > 0 {
		cp.Args = make([]attr.Value, len(e.Args))
		for i, a := range e.Args {
			cp.Args[i] = a.Clone()
		}
	}
	l.events = append(l.events, cp)
}

// Len returns the number of recorded events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Dropped returns the number of events discarded over the bound.
func (l *Log) Dropped() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Events returns a copy of the recorded events in order.
func (l *Log) Events() []widget.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]widget.Event, len(l.events))
	copy(out, l.events)
	return out
}

// Clear empties the log.
func (l *Log) Clear() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = nil
	l.dropped = 0
}

// Replay re-executes the recorded events through dispatch, in order. It
// returns the number replayed; a dispatch error aborts the replay.
func (l *Log) Replay(dispatch func(*widget.Event) error) (int, error) {
	for i, e := range l.Events() {
		e := e
		if err := dispatch(&e); err != nil {
			return i, err
		}
	}
	return l.Len(), nil
}

// Compact collapses the log in place: for events whose effect is a full
// replacement of the object's state — 'changed' (textfield value), 'select'
// (menu/list selection), 'moved' (scale position), 'toggled' pairs — only
// the net effect per object survives. Accumulating events ('edit' splices,
// 'draw' strokes, 'activate') are order-dependent and kept. It returns the
// number of events removed.
func (l *Log) Compact() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	type key struct{ path, name string }
	// Walk backwards: keep the last replacement per (path, event) and count
	// toggles for parity.
	keepLastSeen := make(map[key]bool)
	toggleParity := make(map[string]int)
	kept := make([]widget.Event, 0, len(l.events))
	for i := len(l.events) - 1; i >= 0; i-- {
		e := l.events[i]
		switch e.Name {
		case widget.EventChanged, widget.EventSelect, widget.EventMoved:
			k := key{e.Path, e.Name}
			if keepLastSeen[k] {
				continue // an even later replacement survives
			}
			keepLastSeen[k] = true
			kept = append(kept, e)
		case widget.EventToggled:
			toggleParity[e.Path]++
			if toggleParity[e.Path] == 1 {
				kept = append(kept, e) // placeholder; dropped later if even
			}
		default:
			kept = append(kept, e)
		}
	}
	// Remove placeholder toggles with even parity.
	final := kept[:0]
	for _, e := range kept {
		if e.Name == widget.EventToggled && toggleParity[e.Path]%2 == 0 {
			continue
		}
		final = append(final, e)
	}
	// kept was built backwards; restore order.
	for i, j := 0, len(final)-1; i < j; i, j = i+1, j-1 {
		final[i], final[j] = final[j], final[i]
	}
	removed := len(l.events) - len(final)
	l.events = append([]widget.Event(nil), final...)
	return removed
}
