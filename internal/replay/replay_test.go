package replay

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

func changed(path, v string) *widget.Event {
	return &widget.Event{Path: path, Name: widget.EventChanged, Args: []attr.Value{attr.String(v)}}
}

func TestRecordAndReplay(t *testing.T) {
	l := NewLog(0)
	l.Record(changed("/a", "1"))
	l.Record(changed("/a", "2"))
	l.Record(changed("/b", "x"))
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}

	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", "textfield a")
	widget.MustBuild(reg, "/", "textfield b")
	n, err := l.Replay(reg.Dispatch)
	if err != nil || n != 3 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	wa, _ := reg.Lookup("/a")
	wb, _ := reg.Lookup("/b")
	if wa.Attr(widget.AttrValue).AsString() != "2" || wb.Attr(widget.AttrValue).AsString() != "x" {
		t.Error("replay did not reproduce the state")
	}
	l.Clear()
	if l.Len() != 0 || l.Dropped() != 0 {
		t.Error("Clear failed")
	}
}

func TestReplayAborts(t *testing.T) {
	l := NewLog(0)
	l.Record(changed("/a", "1"))
	l.Record(changed("/missing", "2"))
	l.Record(changed("/a", "3"))
	reg := widget.NewRegistry()
	widget.MustBuild(reg, "/", "textfield a")
	n, err := l.Replay(reg.Dispatch)
	if err == nil || n != 1 {
		t.Fatalf("Replay = %d, %v", n, err)
	}
	if !errors.Is(err, widget.ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestBoundedLogDrops(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 5; i++ {
		l.Record(changed("/a", "v"))
	}
	if l.Len() != 2 || l.Dropped() != 3 {
		t.Errorf("Len = %d, Dropped = %d", l.Len(), l.Dropped())
	}
}

func TestRecordCopiesArgs(t *testing.T) {
	l := NewLog(0)
	e := changed("/a", "orig")
	l.Record(e)
	e.Args[0] = attr.String("mutated")
	if got := l.Events()[0].Args[0].AsString(); got != "orig" {
		t.Errorf("recorded arg = %q", got)
	}
}

func TestCompactReplacements(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 10; i++ {
		l.Record(changed("/a", fmt.Sprintf("v%d", i)))
	}
	l.Record(&widget.Event{Path: "/m", Name: widget.EventSelect, Args: []attr.Value{attr.String("one")}})
	l.Record(&widget.Event{Path: "/m", Name: widget.EventSelect, Args: []attr.Value{attr.String("two")}})
	removed := l.Compact()
	if removed != 10 {
		t.Errorf("removed = %d, want 10 (9 stale values + 1 stale selection)", removed)
	}
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Args[0].AsString() != "v9" || events[1].Args[0].AsString() != "two" {
		t.Errorf("compacted to %v, %v", events[0], events[1])
	}
}

func TestCompactToggles(t *testing.T) {
	l := NewLog(0)
	for i := 0; i < 4; i++ { // even: net no-op
		l.Record(&widget.Event{Path: "/t", Name: widget.EventToggled})
	}
	for i := 0; i < 3; i++ { // odd: one survives
		l.Record(&widget.Event{Path: "/u", Name: widget.EventToggled})
	}
	l.Compact()
	events := l.Events()
	if len(events) != 1 || events[0].Path != "/u" {
		t.Fatalf("events = %v", events)
	}
}

func TestCompactKeepsAccumulating(t *testing.T) {
	l := NewLog(0)
	l.Record(&widget.Event{Path: "/ta", Name: widget.EventEdit,
		Args: []attr.Value{attr.Int(0), attr.Int(0), attr.String("a")}})
	l.Record(&widget.Event{Path: "/ta", Name: widget.EventEdit,
		Args: []attr.Value{attr.Int(1), attr.Int(0), attr.String("b")}})
	l.Record(&widget.Event{Path: "/c", Name: widget.EventDraw,
		Args: []attr.Value{attr.PointList(attr.Point{X: 1, Y: 1})}})
	if removed := l.Compact(); removed != 0 {
		t.Errorf("removed = %d accumulating events", removed)
	}
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
}

// Property: compaction preserves replay semantics for replacement events —
// replaying the full log and the compacted log yields identical widget
// state.
func TestPropCompactEquivalent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		full := NewLog(0)
		for i, n := 0, r.Intn(30); i < n; i++ {
			switch r.Intn(3) {
			case 0:
				full.Record(changed(fmt.Sprintf("/f%d", r.Intn(3)), fmt.Sprintf("v%d", i)))
			case 1:
				full.Record(&widget.Event{Path: fmt.Sprintf("/t%d", r.Intn(2)), Name: widget.EventToggled})
			default:
				full.Record(&widget.Event{Path: fmt.Sprintf("/m%d", r.Intn(2)), Name: widget.EventSelect,
					Args: []attr.Value{attr.String(fmt.Sprintf("s%d", i))}})
			}
		}
		compacted := NewLog(0)
		for _, e := range full.Events() {
			e := e
			compacted.Record(&e)
		}
		compacted.Compact()

		build := func() *widget.Registry {
			reg := widget.NewRegistry()
			for i := 0; i < 3; i++ {
				widget.MustBuild(reg, "/", fmt.Sprintf("textfield f%d", i))
			}
			for i := 0; i < 2; i++ {
				widget.MustBuild(reg, "/", fmt.Sprintf("toggle t%d", i))
				widget.MustBuild(reg, "/", fmt.Sprintf("menu m%d", i))
			}
			return reg
		}
		ra, rb := build(), build()
		if _, err := full.Replay(ra.Dispatch); err != nil {
			return false
		}
		if _, err := compacted.Replay(rb.Dispatch); err != nil {
			return false
		}
		for _, path := range ra.Paths() {
			wa, err := ra.Lookup(path)
			if err != nil {
				return false
			}
			wb, err := rb.Lookup(path)
			if err != nil {
				return false
			}
			if !wa.State().Equal(wb.State()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
