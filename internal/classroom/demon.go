package classroom

import (
	"cosoft/internal/widget"
	"encoding/json"
	"strings"
	"sync"
	"time"
)

// Demon is the "intelligent demon" of §4: a rule-based watcher of the
// student's exercise that generates automatic messages to the teacher when a
// rule triggers. Sessions with the teacher are "typically initiated either
// by a direct request sent by a student or by an automatic message generated
// by an intelligent demon".
type Demon struct {
	student *Student

	mu        sync.Mutex
	rules     []Rule
	triggered int
}

// Rule inspects the current answer text; a non-empty return is the message
// sent to the teacher.
type Rule func(answer string) string

// DefaultRules returns the built-in demon rules.
func DefaultRules() []Rule {
	return []Rule{
		// A question mark in an answer signals confusion.
		func(answer string) string {
			if strings.Contains(answer, "?") {
				return "student seems unsure: answer contains a question"
			}
			return ""
		},
		// Repeated deletions leave an empty answer after typing.
		func(answer string) string {
			if strings.TrimSpace(answer) == "" {
				return ""
			}
			if strings.Contains(strings.ToLower(answer), "help") {
				return "student asked for help in the answer field"
			}
			return ""
		},
	}
}

// newDemon attaches the demon to the student's answer field.
func newDemon(s *Student) *Demon {
	d := &Demon{student: s, rules: DefaultRules()}
	if w, err := s.reg.Lookup("/desk/answer"); err == nil {
		// The demon watches local typing only: remote re-executions are the
		// teacher's own edits and must not re-alert the teacher.
		_ = w.AddCallback(widget.EventChanged, func(e *widget.Event) {
			if e.Remote {
				return
			}
			d.check(e.Args[0].AsString())
		})
	}
	return d
}

// check runs the rules and sends automatic messages for every hit.
func (d *Demon) check(answer string) {
	d.mu.Lock()
	rules := d.rules
	d.mu.Unlock()
	for _, rule := range rules {
		text := rule(answer)
		if text == "" {
			continue
		}
		d.mu.Lock()
		d.triggered++
		d.mu.Unlock()
		teacher, err := d.student.teacherID()
		if err != nil {
			continue
		}
		payload, err := json.Marshal(Message{
			User: d.student.user(),
			Text: text,
			At:   time.Now(),
		})
		if err != nil {
			continue
		}
		_ = d.student.cli.SendCommand(CmdDemon, payload, teacher)
	}
}

// AddRule installs an additional rule.
func (d *Demon) AddRule(r Rule) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rules = append(d.rules, r)
}

// Triggered returns how many automatic messages the demon generated.
func (d *Demon) Triggered() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.triggered
}

// Demon returns the student's demon (nil before Attach).
func (s *Student) Demon() *Demon { return s.demon }
