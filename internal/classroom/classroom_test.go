package classroom

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"cosoft/internal/client"
	"cosoft/internal/netsim"
	"cosoft/internal/server"
	"cosoft/internal/widget"
	"cosoft/internal/wire"
)

type room struct {
	t       *testing.T
	srv     *server.Server
	wg      sync.WaitGroup
	teacher *Teacher
}

func newRoom(t *testing.T) *room {
	t.Helper()
	r := &room{t: t, srv: server.New(server.Options{})}
	t.Cleanup(func() {
		r.srv.Close()
		r.wg.Wait()
	})
	r.teacher = NewTeacher()
	if err := r.teacher.Attach(r.dial(), "teacher", client.Options{RPCTimeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.teacher.Detach)
	return r
}

func (r *room) dial() net.Conn {
	link := netsim.NewLink(0)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.srv.HandleConn(wire.NewConn(link.B))
	}()
	return link.A
}

func (r *room) addStudent(user, task string) *Student {
	r.t.Helper()
	s := NewStudent(task)
	if err := s.Attach(r.dial(), user, client.Options{RPCTimeout: 5 * time.Second}); err != nil {
		r.t.Fatal(err)
	}
	r.t.Cleanup(s.Detach)
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func attrStr(t *testing.T, reg *widget.Registry, path, name string) string {
	t.Helper()
	w, err := reg.Lookup(path)
	if err != nil {
		t.Fatalf("lookup %s: %v", path, err)
	}
	return w.Attr(name).AsString()
}

func TestRaiseHandBuffersMessage(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("nina", "plot 2x+1")
	if err := s.RaiseHand("I am stuck"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "inbox message", func() bool { return len(r.teacher.Inbox()) == 1 })
	msg := r.teacher.Inbox()[0]
	if msg.Text != "I am stuck" || msg.Auto || msg.From != s.Client().ID() {
		t.Errorf("message = %+v", msg)
	}
	if msg.User != "nina" {
		t.Errorf("user = %q", msg.User)
	}
	r.teacher.ClearInbox()
	if len(r.teacher.Inbox()) != 0 {
		t.Error("ClearInbox failed")
	}
}

func TestRaiseHandButton(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("nina", "plot 2x+1")
	if err := s.Registry().Dispatch(&widget.Event{Path: "/desk/raisehand", Name: widget.EventActivate}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "button-driven request", func() bool { return len(r.teacher.Inbox()) == 1 })
}

func TestDemonGeneratesAutomaticMessage(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("omar", "plot x^2")
	if err := s.SetAnswer("is it a parabola?"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "demon message", func() bool { return len(r.teacher.Inbox()) == 1 })
	msg := r.teacher.Inbox()[0]
	if !msg.Auto {
		t.Error("demon message must be marked automatic")
	}
	if !strings.Contains(msg.Text, "unsure") {
		t.Errorf("text = %q", msg.Text)
	}
	if s.Demon().Triggered() != 1 {
		t.Errorf("triggered = %d", s.Demon().Triggered())
	}
	// A confident answer triggers nothing further.
	if err := s.SetAnswer("a parabola with vertex 0"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if len(r.teacher.Inbox()) != 1 {
		t.Error("confident answer must not alert")
	}
	// Custom rule.
	s.Demon().AddRule(func(answer string) string {
		if strings.Contains(answer, "x^3") {
			return "wrong degree"
		}
		return ""
	})
	if err := s.SetAnswer("x^3"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "custom rule", func() bool { return len(r.teacher.Inbox()) == 2 })
}

func TestStudentsListing(t *testing.T) {
	r := newRoom(t)
	r.addStudent("a", "t1")
	r.addStudent("b", "t2")
	students, err := r.teacher.Students()
	if err != nil {
		t.Fatal(err)
	}
	if len(students) != 2 {
		t.Fatalf("students = %d", len(students))
	}
	for _, st := range students {
		if st.AppType != StudentAppType {
			t.Errorf("listing includes %s", st.AppType)
		}
	}
}

func TestJoinSessionCouplesTermAndDisplayRegenerates(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("pia", "plot a line")
	if err := r.teacher.JoinSession(s.Client().ID(), DefaultPairs()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "coupled term", func() bool { return s.Client().Coupled("/desk/term") })

	// The teacher writes a function term on the blackboard; the student's
	// term field replicates, and the student's *local* function display
	// regenerates from it (indirect coupling of the dependent object).
	if err := r.teacher.SetTerm("2*x+1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "student term", func() bool {
		return attrStr(t, s.Registry(), "/desk/term", widget.AttrValue) == "2*x+1"
	})
	waitFor(t, "student display regenerated", func() bool {
		w, err := s.Registry().Lookup("/desk/display")
		return err == nil && len(w.Attr(widget.AttrStrokes).AsPointList()) == 64
	})
	// Teacher display regenerated locally as well.
	tw, _ := r.teacher.Registry().Lookup("/board/display")
	if len(tw.Attr(widget.AttrStrokes).AsPointList()) != 64 {
		t.Error("teacher display not regenerated")
	}

	// The student's answer field is coupled to the teacher's notes via the
	// heterogeneous-name correspondence pair.
	if err := s.SetAnswer("slope 2, intercept 1"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "teacher notes", func() bool {
		return attrStr(t, r.teacher.Registry(), "/board/notes", widget.AttrValue) == "slope 2, intercept 1"
	})

	// End the session: decoupled, both keep their last states.
	if err := r.teacher.EndSession(s.Client().ID(), DefaultPairs()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "decoupled", func() bool { return !s.Client().Coupled("/desk/term") })
	if err := r.teacher.SetTerm("x^2"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := attrStr(t, s.Registry(), "/desk/term", widget.AttrValue); got != "2*x+1" {
		t.Errorf("student term after decouple = %q", got)
	}
}

func TestInspectStudent(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("kim", "differentiate x^2")
	if err := s.SetAnswer("2x"); err != nil {
		t.Fatal(err)
	}
	ts, err := r.teacher.InspectStudent(s.Client().ID())
	if err != nil {
		t.Fatal(err)
	}
	if ts.Class != "form" || ts.Name != "desk" {
		t.Errorf("root = %s %s", ts.Class, ts.Name)
	}
	var answer string
	for _, c := range ts.Children {
		if c.Name == "answer" {
			answer = c.Attrs.Get(widget.AttrValue).AsString()
		}
	}
	if answer != "2x" {
		t.Errorf("inspected answer = %q", answer)
	}
}

func TestRenderTermInvalid(t *testing.T) {
	s := NewStudent("t")
	// Invalid terms clear the canvas instead of erroring.
	if err := s.SetTerm("((("); err != nil {
		t.Fatal(err)
	}
	w, _ := s.Registry().Lookup("/desk/display")
	if len(w.Attr(widget.AttrStrokes).AsPointList()) != 0 {
		t.Error("invalid term must clear the display")
	}
	// Valid again.
	if err := s.SetTerm("x"); err != nil {
		t.Fatal(err)
	}
	if len(w.Attr(widget.AttrStrokes).AsPointList()) != 64 {
		t.Error("valid term must render")
	}
	// Unknown canvas path is a no-op.
	RenderTerm(s.Registry(), "/nowhere", "x", 8)
}

func TestRaiseHandWithoutTeacher(t *testing.T) {
	srv := server.New(server.Options{})
	defer srv.Close()
	var wg sync.WaitGroup
	defer wg.Wait()
	link := netsim.NewLink(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.HandleConn(wire.NewConn(link.B))
	}()
	s := NewStudent("t")
	if err := s.Attach(link.A, "solo", client.Options{RPCTimeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	defer s.Detach()
	if err := s.RaiseHand("anyone?"); err == nil {
		t.Error("raising hand without a teacher must fail")
	}
}

func TestAccessorsAndNotes(t *testing.T) {
	r := newRoom(t)
	s := r.addStudent("zoe", "task")
	if r.teacher.Client() == nil || s.Client() == nil {
		t.Fatal("Client accessor nil")
	}
	if err := r.teacher.SetNotes("public remark"); err != nil {
		t.Fatal(err)
	}
	if got := attrStr(t, r.teacher.Registry(), "/board/notes", widget.AttrValue); got != "public remark" {
		t.Errorf("notes = %q", got)
	}
	if err := s.SetAnswer("done"); err != nil {
		t.Fatal(err)
	}
	if s.Answer() != "done" {
		t.Errorf("Answer = %q", s.Answer())
	}
}
