package eventlog

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"cosoft/internal/obs"
)

// durableEnd returns the byte offset just past the last valid record — the
// offset a snapshot of the whole log would capture.
func durableEnd(t *testing.T, dir string) int64 {
	t.Helper()
	end, err := ReplayDirFrom(dir, 0, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return end
}

func mustAppend(t *testing.T, l *Log, recs ...Record) {
	t.Helper()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, sampleRecords()...)
	off := durableEnd(t, dir)
	if err := l.WriteSnapshot(off, []byte("state-v1")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snaps, err := l.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Offset != off || string(snaps[0].Payload) != "state-v1" {
		t.Fatalf("snapshots = %+v, want one at %d with payload state-v1", snaps, off)
	}
	// Newer snapshots list first.
	mustAppend(t, l, sampleRecords()...)
	off2 := durableEnd(t, dir)
	if err := l.WriteSnapshot(off2, []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	snaps, err = l.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Offset != off2 || snaps[1].Offset != off {
		t.Fatalf("snapshots = %+v, want newest-first [%d %d]", snaps, off2, off)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: snapshots survive, replay-from-snapshot counter ticks.
	reg := obs.NewRegistry()
	l2, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snaps, err = l2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Offset != off2 {
		t.Fatalf("after reopen snapshots = %+v", snaps)
	}
	if got := reg.Snapshot().Counters["server.log.replay_from_snapshot"]; got != 1 {
		t.Fatalf("replay_from_snapshot = %d, want 1", got)
	}
}

// A CRC-damaged newest snapshot is skipped: Snapshots falls back to the
// older one, and replay from its offset still reaches every record.
func TestSnapshotFallbackOnDamage(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, sampleRecords()...)
	off1 := durableEnd(t, dir)
	if err := l.WriteSnapshot(off1, []byte("good")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, sampleRecords()...)
	off2 := durableEnd(t, dir)
	if err := l.WriteSnapshot(off2, []byte("soon-damaged")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the newest snapshot.
	path := snapPath(dir, off2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snaps, err := l2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Offset != off1 || string(snaps[0].Payload) != "good" {
		t.Fatalf("snapshots = %+v, want only the older valid one at %d", snaps, off1)
	}
	var n int
	end, err := l2.ReplayFrom(off1, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if end != off2 || n != len(sampleRecords()) {
		t.Fatalf("ReplayFrom(%d) = (%d, %d records), want (%d, %d)", off1, end, n, off2, len(sampleRecords()))
	}
}

// ReplayFrom skips segments wholly below the offset and starts mid-segment
// when the offset lands inside one.
func TestReplayFromSkipsCoveredBytes(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so the log spans several files.
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wantTotal int
	for i := 0; i < 12; i++ {
		mustAppend(t, l, sampleRecords()...)
		wantTotal += len(sampleRecords())
	}
	end := durableEnd(t, dir)
	// Reconstruct every record boundary (encodeRecord includes framing),
	// then replay from each: counts must telescope down to zero.
	bounds := []int64{0}
	if _, err := l.ReplayFrom(0, func(r Record) error {
		bounds = append(bounds, bounds[len(bounds)-1]+int64(len(encodeRecord(r))))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bounds[len(bounds)-1] != end {
		t.Fatalf("boundary reconstruction drifted: %d vs end %d", bounds[len(bounds)-1], end)
	}
	for i, b := range bounds {
		n := 0
		got, err := l.ReplayFrom(b, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("ReplayFrom(%d): %v", b, err)
		}
		if got != end || n != wantTotal-i {
			t.Fatalf("ReplayFrom(%d) = (%d, %d records), want (%d, %d)", b, got, n, end, wantTotal-i)
		}
	}
}

// Compact keeps the two newest snapshots, deletes segments wholly covered by
// the older retained one, and never deletes the segment the writer holds.
func TestCompactRetention(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var offs []int64
	for i := 0; i < 4; i++ {
		mustAppend(t, l, sampleRecords()...)
		off := durableEnd(t, dir)
		if err := l.WriteSnapshot(off, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		offs = append(offs, off)
	}
	removed, err := l.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("Compact removed no segments; expected covered segments to go")
	}
	snaps, err := l.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Offset != offs[3] || snaps[1].Offset != offs[2] {
		t.Fatalf("snapshots after compact = %+v, want the two newest (%d, %d)", snaps, offs[3], offs[2])
	}
	bases, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) == 0 {
		t.Fatal("compaction deleted every segment including the writer's open one")
	}
	// Every remaining byte is needed: first remaining segment must cover the
	// older retained snapshot's offset.
	if bases[0] > offs[2] {
		t.Fatalf("first remaining segment %d starts past retained snapshot %d", bases[0], offs[2])
	}
	// Replay from the retained fallback snapshot still works.
	if _, err := l.ReplayFrom(offs[2], func(Record) error { return nil }); err != nil {
		t.Fatalf("ReplayFrom(retained): %v", err)
	}
	// Appends continue fine after compaction, and the dir passes fsck.
	mustAppend(t, l, sampleRecords()...)
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt || rep.TornTail {
		t.Fatalf("fsck after compact: %+v", rep)
	}
}

// The snapshot crash sweep at the log level: arm every snapshot/compaction
// I/O boundary in turn; whatever boundary the crash hits, reopening the
// directory must reach the full durable record set — from the newest valid
// snapshot when one exists, from offset zero otherwise — and fsck must
// never report corruption. Snapshot/compaction failure never loses data.
func TestSnapshotCrashPointSweep(t *testing.T) {
	round := len(sampleRecords())
	for op := 1; ; op++ {
		partial := 0
		if op%2 == 0 {
			partial = 3
		}
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-existing snapshot so compaction has work to do.
		for i := 0; i < 3; i++ {
			mustAppend(t, l, sampleRecords()...)
		}
		preOff := durableEnd(t, dir)
		if err := l.WriteSnapshot(preOff, []byte("pre")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			mustAppend(t, l, sampleRecords()...)
		}
		off := durableEnd(t, dir)
		l.SnapCrashPoint(op, partial)
		snapErr := l.WriteSnapshot(off, []byte("new"))
		var compErr error
		if snapErr == nil {
			_, compErr = l.Compact()
		}
		fired := l.SnapCrashFired()
		if !fired {
			if snapErr != nil || compErr != nil {
				t.Fatalf("op %d: unexpected errors without crash: snap=%v compact=%v", op, snapErr, compErr)
			}
			l.Close()
			break
		}
		l.Close()

		rep, err := Fsck(dir)
		if err != nil {
			t.Fatalf("op %d: fsck: %v", op, err)
		}
		if rep.Corrupt {
			t.Fatalf("op %d: fsck corrupt after snapshot crash: %+v", op, rep)
		}
		// Reopen and replay through the snapshot chain: every record below
		// the newest valid snapshot plus the tail must be reachable — i.e.
		// the recovered record set must always equal the full set.
		l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("op %d: reopen: %v", op, err)
		}
		snaps, err := l2.Snapshots()
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		from := int64(0)
		if len(snaps) > 0 {
			from = snaps[0].Offset
		}
		n := 0
		end, err := l2.ReplayFrom(from, func(Record) error { n++; return nil })
		if err != nil {
			t.Fatalf("op %d: replay: %v", op, err)
		}
		// Every append was durable before the crash was armed, so replay
		// must always reach the pre-crash end offset, and the record count
		// between the chosen snapshot and the end is exact: 6 rounds from
		// zero, 3 from the pre snapshot, 0 from the just-written one.
		if end != off {
			t.Fatalf("op %d: replay from %d reached %d, want %d", op, from, end, off)
		}
		want := map[int64]int{0: 6 * round, preOff: 3 * round, off: 0}[from]
		if from != 0 && from != preOff && from != off {
			t.Fatalf("op %d: replay starts at unexpected offset %d", op, from)
		}
		if n != want {
			t.Fatalf("op %d: replayed %d records from offset %d, want %d", op, n, from, want)
		}
		// No temp files may survive recovery.
		tmps, _ := filepath.Glob(filepath.Join(dir, "*.snap.tmp"))
		if len(tmps) != 0 {
			t.Fatalf("op %d: stale temp snapshot files after reopen: %v", op, tmps)
		}
		l2.Close()
	}
}

// Satellite: Close during an in-flight snapshot write. The blocked writer is
// abandoned cleanly — its temp file is removed, Close returns, and the older
// valid snapshot is still the one a reopen selects.
func TestCloseAbandonsInFlightSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, sampleRecords()...)
	off1 := durableEnd(t, dir)
	if err := l.WriteSnapshot(off1, []byte("older-valid")); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, sampleRecords()...)
	off2 := durableEnd(t, dir)

	gate := make(chan struct{})
	l.SnapshotGate(gate)
	writeDone := make(chan error, 1)
	go func() { writeDone <- l.WriteSnapshot(off2, []byte("in-flight")) }()
	// Wait until the writer is parked at the gate (temp file fully written).
	tmp := snapPath(dir, off2) + ".tmp"
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := os.Stat(tmp); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("snapshot writer never reached the gate")
		}
		time.Sleep(time.Millisecond)
	}
	closeDone := make(chan error, 1)
	go func() { closeDone <- l.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the in-flight snapshot writer")
	}
	if err := <-writeDone; err != ErrClosed {
		t.Fatalf("in-flight WriteSnapshot returned %v, want ErrClosed", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("abandoned temp snapshot still on disk: %v", err)
	}
	// The half-finished snapshot never shadows the older valid one.
	l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	snaps, err := l2.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Offset != off1 || string(snaps[0].Payload) != "older-valid" {
		t.Fatalf("snapshots after abandon = %+v, want only the older valid one", snaps)
	}
}

// Satellite: Fsck exit paths over the snapshot-era directory shapes.
func TestFsckSnapshotShapes(t *testing.T) {
	mkLog := func(t *testing.T, dir string, snapAt []int, extraAfter int) (offs []int64) {
		t.Helper()
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		next := 0
		for _, rounds := range snapAt {
			for i := 0; i < rounds; i++ {
				mustAppend(t, l, sampleRecords()...)
			}
			off := durableEnd(t, dir)
			if err := l.WriteSnapshot(off, []byte{byte(next)}); err != nil {
				t.Fatal(err)
			}
			offs = append(offs, off)
			next++
		}
		for i := 0; i < extraAfter; i++ {
			mustAppend(t, l, sampleRecords()...)
		}
		return offs
	}

	t.Run("empty-dir", func(t *testing.T) {
		rep, err := Fsck(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt || rep.TornTail || rep.Segments != 0 || rep.Snapshots != 0 || rep.SnapshotOffset != -1 {
			t.Fatalf("empty dir: %+v", rep)
		}
	})

	t.Run("snap-only", func(t *testing.T) {
		dir := t.TempDir()
		offs := mkLog(t, dir, []int{2}, 0)
		// Simulate full compaction: remove every segment (the log is closed).
		bases, err := segments(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bases {
			if err := os.Remove(segPath(dir, b)); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt || rep.TornTail || rep.Snapshots != 1 || rep.SnapshotOffset != offs[0] {
			t.Fatalf("snap-only dir must be clean: %+v", rep)
		}
		// And it must reopen: appends resume at the snapshot offset.
		l, err := Open(Options{Dir: dir, Sync: SyncAlways})
		if err != nil {
			t.Fatalf("reopen snap-only dir: %v", err)
		}
		mustAppend(t, l, sampleRecords()...)
		l.Close()
		bases, err = segments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(bases) != 1 || bases[0] != offs[0] {
			t.Fatalf("appends after snap-only reopen landed at %v, want [%d]", bases, offs[0])
		}
	})

	t.Run("torn-snap", func(t *testing.T) {
		dir := t.TempDir()
		offs := mkLog(t, dir, []int{1, 1}, 1)
		// Truncate the newest snapshot mid-payload.
		path := snapPath(dir, offs[1])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Segments still cover everything: torn snapshot is a fallback note,
		// not corruption.
		if rep.Corrupt || rep.TornTail {
			t.Fatalf("torn snapshot with full segment chain must be clean: %+v", rep)
		}
		if rep.Snapshots != 1 || rep.BadSnapshots != 1 || rep.SnapshotOffset != offs[0] {
			t.Fatalf("torn snapshot accounting: %+v", rep)
		}
	})

	t.Run("snap-plus-segments", func(t *testing.T) {
		dir := t.TempDir()
		offs := mkLog(t, dir, []int{2}, 2)
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt || rep.TornTail || rep.Snapshots != 1 || rep.SnapshotOffset != offs[0] {
			t.Fatalf("snap+segments: %+v", rep)
		}
		if rep.Records != len(sampleRecords())*4 {
			t.Fatalf("records = %d, want %d", rep.Records, len(sampleRecords())*4)
		}
	})

	t.Run("orphaned-pre-snapshot-segment", func(t *testing.T) {
		dir := t.TempDir()
		// Two snapshots then compact: segments wholly below the older
		// retained snapshot are gone, but some pre-snapshot segments may
		// survive (they end past the retained offset). Those orphans are
		// clean — replay simply starts at the snapshot.
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			mustAppend(t, l, sampleRecords()...)
		}
		off := durableEnd(t, dir)
		if err := l.WriteSnapshot(off, []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(off, []byte("a")); err != nil { // same offset twice: retain==newest
			t.Fatal(err)
		}
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, sampleRecords()...)
		l.Close()
		bases, err := segments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(bases) == 0 || bases[0] == 0 {
			t.Fatalf("compaction should have deleted the leading segments: %v", bases)
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt || rep.TornTail {
			t.Fatalf("compacted dir with covering snapshot must be clean: %+v", rep)
		}
		if rep.SnapshotOffset != off {
			t.Fatalf("snapshot offset = %d, want %d", rep.SnapshotOffset, off)
		}
	})

	t.Run("compacted-past-coverage", func(t *testing.T) {
		dir := t.TempDir()
		offs := mkLog(t, dir, []int{2}, 2)
		// Delete the snapshot: segments now start at a nonzero base with no
		// covering snapshot — acked state is unreachable.
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(offs[0], []byte("again")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Compact(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		for _, p := range [](string){snapPath(dir, offs[0])} {
			if err := os.Remove(p); err != nil {
				t.Fatal(err)
			}
		}
		bases, err := segments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(bases) == 0 || bases[0] == 0 {
			t.Skip("compaction left a full chain; nothing to orphan")
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Corrupt {
			t.Fatalf("segments starting past zero with no snapshot must be corrupt: %+v", rep)
		}
		// Open must refuse too.
		if _, err := Open(Options{Dir: dir, Sync: SyncAlways}); err == nil {
			t.Fatal("Open accepted a log compacted past its snapshot coverage")
		}
	})

	t.Run("segment-gap", func(t *testing.T) {
		dir := t.TempDir()
		l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			mustAppend(t, l, sampleRecords()...)
		}
		l.Close()
		bases, err := segments(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(bases) < 3 {
			t.Fatalf("want >=3 segments, got %v", bases)
		}
		if err := os.Remove(segPath(dir, bases[1])); err != nil {
			t.Fatal(err)
		}
		rep, err := Fsck(dir)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Corrupt {
			t.Fatalf("a hole in the segment chain must be corrupt: %+v", rep)
		}
	})
}
