package eventlog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

func rec(kind Kind, origin, group string, msg wire.Message) Record {
	return Record{Kind: kind, Origin: origin, Group: group, Env: wire.Envelope{Msg: msg}}
}

func sampleRecords() []Record {
	return []Record{
		rec(KindRegister, "editor-1", "", wire.Register{AppType: "editor", Host: "h", User: "u"}),
		rec(KindDeclare, "editor-1", "", wire.Declare{Path: "/field", Class: "text"}),
		rec(KindEvent, "editor-1", "editor-1|/field", wire.Exec{
			EventID:    1,
			TargetPath: "/field",
			Name:       "changed",
			Args:       []attr.Value{attr.String("x")},
			Origin:     couple.ObjectRef{Instance: "editor-1", Path: "/field"},
		}),
		rec(KindToken, "editor-1", "", wire.SessionToken{Token: "deadbeef"}),
	}
}

func replayAll(t *testing.T, dir string) []Record {
	t.Helper()
	var got []Record
	if err := ReplayDir(dir, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func checkRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Origin != want[i].Origin || got[i].Group != want[i].Group {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
		if got[i].Env.Msg.MsgType() != want[i].Env.Msg.MsgType() {
			t.Fatalf("record %d: msg type %v want %v", i, got[i].Env.Msg.MsgType(), want[i].Env.Msg.MsgType())
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	checkRecords(t, replayAll(t, dir), want)
}

// Reopening a cleanly closed log appends after the existing records.
func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	l, err := Open(Options{Dir: dir, Sync: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want[:2] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l, err = Open(Options{Dir: dir, Sync: SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want[2:] {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	checkRecords(t, replayAll(t, dir), want)
}

// Small SegmentBytes forces rotation; replay still sees one ordered stream
// and segment names are the cumulative base offsets.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncNone, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	var want []Record
	for i := 0; i < 20; i++ {
		r := rec(KindDeclare, "editor-1", "", wire.Declare{Path: "/field", Class: "text"})
		want = append(want, r)
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	bases, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bases) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(bases))
	}
	var off int64
	for _, base := range bases {
		if base != off {
			t.Fatalf("segment base %d, want cumulative offset %d", base, off)
		}
		st, err := os.Stat(segPath(dir, base))
		if err != nil {
			t.Fatal(err)
		}
		off += st.Size()
	}
	checkRecords(t, replayAll(t, dir), want)
}

// A torn tail — trailing garbage after the last good record — is truncated
// on open, counted in server.log.truncated_tail, and appends continue from
// the good prefix.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	path := segPath(dir, 0)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record: header plus a few payload bytes of a final append that
	// never completed.
	torn := append(append([]byte{}, good...), encodeRecord(want[0])[:recHeader+3]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	l, err = Open(Options{Dir: dir, Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("server.log.truncated_tail").Value(); got != 1 {
		t.Fatalf("truncated_tail = %d, want 1", got)
	}
	extra := rec(KindRetract, "editor-1", "", wire.Retract{Path: "/field"})
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	checkRecords(t, replayAll(t, dir), append(want, extra))
}

// A record whose CRC does not match is the end of replay — bytes after it
// are never surfaced.
func TestCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	path := segPath(dir, 0)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of the second record.
	firstLen := int64(len(encodeRecord(want[0])))
	buf[firstLen+recHeader] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	checkRecords(t, got, want[:1])
}

func TestSyncPolicyFsyncCounts(t *testing.T) {
	// always: one fsync per (group-committed) append batch. Sequential
	// appends → one fsync each.
	reg := obs.NewRegistry()
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("server.log.fsyncs").Value(); got != 4 {
		t.Fatalf("always: fsyncs = %d, want 4", got)
	}
	if got := reg.Counter("server.log.appends").Value(); got != 4 {
		t.Fatalf("appends = %d, want 4", got)
	}
	l.Close()

	// interval: appends return without fsync; the ticker (or close) flushes.
	reg = obs.NewRegistry()
	dir = t.TempDir()
	l, err = Open(Options{Dir: dir, Sync: SyncInterval, SyncEvery: time.Hour, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("server.log.fsyncs").Value(); got != 0 {
		t.Fatalf("interval: fsyncs = %d before close, want 0", got)
	}
	l.Close()
	if got := reg.Counter("server.log.fsyncs").Value(); got != 1 {
		t.Fatalf("interval: fsyncs = %d after close, want 1", got)
	}

	// none: never.
	reg = obs.NewRegistry()
	dir = t.TempDir()
	l, err = Open(Options{Dir: dir, Sync: SyncNone, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range sampleRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if got := reg.Counter("server.log.fsyncs").Value(); got != 0 {
		t.Fatalf("none: fsyncs = %d, want 0", got)
	}
}

// Crash points at every write/sync boundary: the failed append errors with
// ErrCrashed, later appends fail too, and reopening the dir recovers exactly
// the records whose durability boundary completed.
func TestCrashPoints(t *testing.T) {
	want := sampleRecords()
	for op := 1; ; op++ {
		for _, partial := range []int{0, 3, recHeader + 1} {
			dir := t.TempDir()
			l, err := Open(Options{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			l.CrashPoint(op, partial)
			appended := 0
			for _, r := range want {
				if err := l.Append(r); err != nil {
					break
				}
				appended++
			}
			fired := l.CrashFired()
			l.Close()
			if !fired {
				if appended != len(want) {
					t.Fatalf("op %d: crash never fired but only %d appends succeeded", op, appended)
				}
				if op <= 1 {
					t.Fatal("crash point 1 did not fire")
				}
				return // swept past the last boundary
			}
			got := replayAll(t, dir)
			// Sequential appends under SyncAlways: 2 boundaries per record.
			// A crash at record k's write boundary leaves at most a torn
			// tail (replay skips it); a crash at its fsync boundary leaves
			// the record fully written — durable in this test model even
			// though the append errored. Either way the durable set is a
			// clean prefix no shorter than the acked count.
			if len(got) < appended || len(got) > appended+1 {
				t.Fatalf("op %d partial %d: %d durable records for %d acked appends", op, partial, len(got), appended)
			}
			checkRecords(t, got, want[:len(got)])
			// The dir must also reopen cleanly (truncating any torn tail).
			l2, err := Open(Options{Dir: dir, Sync: SyncAlways})
			if err != nil {
				t.Fatalf("op %d partial %d: reopen after crash: %v", op, partial, err)
			}
			l2.Close()
		}
	}
}

func TestFsck(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != len(want) || rep.Corrupt || rep.TornTail {
		t.Fatalf("clean fsck: %+v", rep)
	}
	if rep.Segments < 2 {
		t.Fatalf("expected rotated segments, got %d", rep.Segments)
	}

	// Torn tail in the last segment: reported as TornTail, not Corrupt.
	bases, _ := segments(dir)
	last := segPath(dir, bases[len(bases)-1])
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{1, 2, 3})
	f.Close()
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail || rep.Corrupt || rep.Records != len(want) {
		t.Fatalf("torn fsck: %+v", rep)
	}

	// Damage in an earlier segment: Corrupt.
	first := segPath(dir, bases[0])
	buf, _ := os.ReadFile(first)
	buf[recHeader] ^= 0xff
	os.WriteFile(first, buf, 0o644)
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt {
		t.Fatalf("corrupt fsck: %+v", rep)
	}
}

// TestFsckInteriorCorruption distinguishes a flipped byte mid-segment from a
// crash tear: intact records resync behind the damage, so fsck must report
// Corrupt (acked records unreadable), not a clean TornTail.
func TestFsckInteriorCorruption(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	bases, _ := segments(dir)
	path := segPath(dir, bases[0])
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the second record: records one and three stay
	// intact, so a resync exists behind the break.
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt || rep.TornTail {
		t.Fatalf("interior corruption fsck: %+v", rep)
	}
	if !strings.Contains(rep.Detail, "interior corruption") {
		t.Fatalf("detail: %q", rep.Detail)
	}
}

func TestParseSync(t *testing.T) {
	for s, want := range map[string]Sync{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone} {
		got, err := ParseSync(s)
		if err != nil || got != want {
			t.Fatalf("ParseSync(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseSync("sometimes"); err == nil {
		t.Fatal("ParseSync accepted garbage")
	}
}

// Concurrent appenders must all land durably and replay in one total order.
func TestConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				r := rec(KindDeclare, "editor-1", "", wire.Declare{Path: filepath.Join("/w", string(rune('a'+w))), Class: "text"})
				if err := l.Append(r); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if got := replayAll(t, dir); len(got) != writers*per {
		t.Fatalf("replayed %d records, want %d", len(got), writers*per)
	}
}
