// Snapshots and compaction: a side `%016x.snap` file captures the server's
// full replayable state as of a log byte offset, so restart replay begins at
// the newest valid snapshot instead of offset zero, and segments every byte
// of which is older than a retained snapshot can be deleted.
//
// Snapshot file layout (one per file, named by the offset it captures):
//
//	[4-byte magic "CSNP"][u8 version][u64 offset][u32 payload len][u32 crc32c][payload]
//
// The payload is opaque to this package — the server encodes its own state
// into it. Crash safety comes from ordering, not locking: the payload is
// written to a `.snap.tmp` file, fsynced, renamed into place, and the
// directory fsynced. A crash before the rename leaves only a temp file that
// Open sweeps away; a crash after it leaves a fully-durable snapshot. Two
// snapshots are always retained so replay can fall back past a newest
// snapshot whose CRC fails.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cosoft/internal/obs"
)

const (
	snapSuffix  = ".snap"
	snapMagic   = "CSNP"
	snapVersion = 1
	snapHeader  = 4 + 1 + 8 + 4 + 4 // magic + version + offset + len + crc
)

// SnapshotRef is one durable snapshot: the log byte offset its payload
// captures state up to, plus the payload itself.
type SnapshotRef struct {
	Offset  int64
	Payload []byte
}

func snapPath(dir string, offset int64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", offset, snapSuffix))
}

// Dir returns the log directory (read-only access for offline fold replay).
func (l *Log) Dir() string { return l.dir }

// Snapshots returns the valid snapshots in the log directory, newest first.
// Torn or CRC-damaged snapshot files are skipped: the caller falls back to
// the next entry, then to a full replay from offset zero.
func (l *Log) Snapshots() ([]SnapshotRef, error) {
	l.snapMu.Lock()
	defer l.snapMu.Unlock()
	valid, _, err := snapshotInfos(l.dir)
	return valid, err
}

// WriteSnapshot durably publishes a snapshot of the state up to offset. The
// ordering — write temp, fsync temp, rename, fsync directory — guarantees a
// crash at any point leaves either no new snapshot (temp files are swept on
// Open) or a complete one; a half-written file can never shadow an older
// valid snapshot. Concurrent with appends (touches no segment files); safe
// from any goroutine.
func (l *Log) WriteSnapshot(offset int64, payload []byte) error {
	if err := l.snapBegin(); err != nil {
		return err
	}
	defer l.snapWG.Done()
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	buf := encodeSnapshotFile(offset, payload)
	final := snapPath(l.dir, offset)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: snapshot: %w", err)
	}
	// Crash boundary: the temp write.
	if partial, fire := l.snapBoundary(); fire {
		if partial > len(buf) {
			partial = len(buf)
		}
		if partial > 0 {
			f.Write(buf[:partial])
		}
		f.Close()
		return ErrCrashed
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("eventlog: snapshot write: %w", err)
	}
	// Crash boundary: the temp fsync.
	if _, fire := l.snapBoundary(); fire {
		f.Close()
		return ErrCrashed
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("eventlog: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("eventlog: snapshot: %w", err)
	}
	// Test hook: hold here, fully written but not yet promoted, until
	// released — or abandon if the log is closing under us.
	if gate := l.gate(); gate != nil {
		select {
		case <-gate:
		case <-l.quit:
			os.Remove(tmp)
			return ErrClosed
		}
	}
	if l.quitting() {
		os.Remove(tmp)
		return ErrClosed
	}
	// Crash boundary: the rename that promotes the snapshot.
	if _, fire := l.snapBoundary(); fire {
		return ErrCrashed // un-promoted temp file; Open sweeps it
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("eventlog: snapshot rename: %w", err)
	}
	// Crash boundary: the directory fsync that makes the rename durable.
	if _, fire := l.snapBoundary(); fire {
		return ErrCrashed
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	l.mSnapshots.Inc()
	l.mSnapBytes.Add(uint64(len(payload)))
	return nil
}

// Compact deletes state made redundant by durable snapshots: snapshot files
// older than the two newest valid ones, and segments every byte of which is
// older than the oldest retained snapshot. Deletions run oldest-first so a
// crash at any boundary leaves a contiguous replayable suffix. The
// highest-base segment is never deleted — the writer holds it open for
// append. Returns the number of segments removed.
func (l *Log) Compact() (int, error) {
	if err := l.snapBegin(); err != nil {
		return 0, err
	}
	defer l.snapWG.Done()
	l.snapMu.Lock()
	defer l.snapMu.Unlock()

	valid, bad, err := snapshotInfos(l.dir)
	if err != nil {
		return 0, err
	}
	if len(valid) == 0 {
		return 0, nil
	}
	keep := 2
	if len(valid) < keep {
		keep = len(valid)
	}
	retain := valid[keep-1].Offset
	del := func(path string) error {
		if l.quitting() {
			return ErrClosed
		}
		// Crash boundary: one unlink.
		if _, fire := l.snapBoundary(); fire {
			return ErrCrashed
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("eventlog: compact: %w", err)
		}
		return nil
	}
	for i := len(valid) - 1; i >= keep; i-- {
		if err := del(snapPath(l.dir, valid[i].Offset)); err != nil {
			return 0, err
		}
	}
	for _, off := range bad {
		if off < retain {
			if err := del(snapPath(l.dir, off)); err != nil {
				return 0, err
			}
		}
	}
	bases, err := segments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i < len(bases)-1; i++ {
		// A segment's end is the next segment's base (bases are cumulative
		// byte offsets); delete only when every byte predates the oldest
		// retained snapshot.
		if bases[i+1] > retain {
			break
		}
		if err := del(segPath(l.dir, bases[i])); err != nil {
			return removed, err
		}
		removed++
	}
	// Crash boundary: the directory fsync sealing the deletions.
	if _, fire := l.snapBoundary(); fire {
		return removed, ErrCrashed
	}
	if err := syncDir(l.dir); err != nil {
		return removed, err
	}
	l.mCompacted.Add(uint64(removed))
	return removed, nil
}

// ReplayFrom streams every durable record at byte offset >= from to fn in
// log order, returning the offset just past the last valid record. Segments
// wholly below from are skipped — with a snapshot at from, restart replay
// reads only post-snapshot bytes.
func (l *Log) ReplayFrom(from int64, fn func(Record) error) (int64, error) {
	return replayDirFrom(l.dir, from, l.mReplayed, fn)
}

// ReplayDirFrom replays a log directory from a byte offset without opening
// it for append and without touching any metrics sink (the snapshot fold
// path — fold reads must not inflate server.log.replayed).
func ReplayDirFrom(dir string, from int64, fn func(Record) error) (int64, error) {
	return replayDirFrom(dir, from, nil, fn)
}

func replayDirFrom(dir string, from int64, replayed *obs.Counter, fn func(Record) error) (int64, error) {
	bases, err := segments(dir)
	if err != nil {
		return from, err
	}
	pos := from
	for i, base := range bases {
		end := int64(math.MaxInt64)
		if i+1 < len(bases) {
			end = bases[i+1]
		}
		if end <= pos {
			continue
		}
		if base > pos {
			return pos, fmt.Errorf("eventlog: replay offset %d precedes first available byte %d (compacted past it)", pos, base)
		}
		next, clean, err := replaySegmentFrom(segPath(dir, base), base, pos-base, replayed, fn)
		pos = next
		if err != nil {
			return pos, err
		}
		if !clean {
			// Torn or damaged record: everything behind it is unreadable, so
			// stop here rather than resync into a later segment.
			break
		}
	}
	return pos, nil
}

// replaySegmentFrom replays one segment starting at start bytes in. clean
// reports whether the scan ended at an exact record boundary at EOF (false
// means a torn/invalid record stopped it).
func replaySegmentFrom(path string, base, start int64, replayed *obs.Counter, fn func(Record) error) (pos int64, clean bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return base + start, false, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	if start > 0 {
		if _, err := f.Seek(start, io.SeekStart); err != nil {
			return base + start, false, fmt.Errorf("eventlog: %w", err)
		}
	}
	pos = base + start
	var hdr [recHeader]byte
	for {
		if n, err := io.ReadFull(f, hdr[:]); err != nil {
			return pos, n == 0, nil
		}
		sz := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if sz == 0 || sz > maxPayload {
			return pos, false, nil
		}
		payload := make([]byte, sz)
		if _, err := io.ReadFull(f, payload); err != nil {
			return pos, false, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return pos, false, nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return pos, false, err
		}
		replayed.Inc()
		if err := fn(rec); err != nil {
			return pos, false, err
		}
		pos += recHeader + int64(sz)
	}
}

// encodeSnapshotFile frames one snapshot file image.
func encodeSnapshotFile(offset int64, payload []byte) []byte {
	buf := make([]byte, snapHeader, snapHeader+len(payload))
	copy(buf[0:4], snapMagic)
	buf[4] = snapVersion
	binary.LittleEndian.PutUint64(buf[5:13], uint64(offset))
	binary.LittleEndian.PutUint32(buf[13:17], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[17:21], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (SnapshotRef, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return SnapshotRef{}, fmt.Errorf("eventlog: %w", err)
	}
	if len(data) < snapHeader {
		return SnapshotRef{}, errors.New("eventlog: snapshot truncated")
	}
	if string(data[0:4]) != snapMagic {
		return SnapshotRef{}, errors.New("eventlog: bad snapshot magic")
	}
	if data[4] != snapVersion {
		return SnapshotRef{}, fmt.Errorf("eventlog: unknown snapshot version %d", data[4])
	}
	offset := int64(binary.LittleEndian.Uint64(data[5:13]))
	n := binary.LittleEndian.Uint32(data[13:17])
	crc := binary.LittleEndian.Uint32(data[17:21])
	payload := data[snapHeader:]
	if int(n) != len(payload) {
		return SnapshotRef{}, errors.New("eventlog: snapshot payload truncated")
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return SnapshotRef{}, errors.New("eventlog: snapshot CRC mismatch")
	}
	return SnapshotRef{Offset: offset, Payload: payload}, nil
}

// snapshotInfos scans dir for snapshot files, returning the valid ones
// newest-first (with payloads) and the offsets of unreadable ones.
func snapshotInfos(dir string) (valid []SnapshotRef, bad []int64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("eventlog: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != snapSuffix {
			continue
		}
		var off int64
		if _, err := fmt.Sscanf(name, "%016x"+snapSuffix, &off); err != nil {
			continue
		}
		ref, rerr := readSnapshotFile(filepath.Join(dir, name))
		if rerr != nil || ref.Offset != off {
			bad = append(bad, off)
			continue
		}
		valid = append(valid, ref)
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].Offset > valid[j].Offset })
	sort.Slice(bad, func(i, j int) bool { return bad[i] < bad[j] })
	return valid, bad, nil
}

// removeSnapTmp sweeps half-written snapshot temp files left by a crash.
// They were never promoted by rename, so they hold nothing durable.
func removeSnapTmp(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), snapSuffix+".tmp") {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("eventlog: %w", err)
			}
		}
	}
	return nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("eventlog: dir fsync: %w", err)
	}
	return nil
}

// snapBegin registers an in-flight snapshot/compaction op so Close can wait
// for it (or the op can observe the close and abandon cleanly).
func (l *Log) snapBegin() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.snapWG.Add(1)
	return nil
}

func (l *Log) quitting() bool {
	select {
	case <-l.quit:
		return true
	default:
		return false
	}
}

// SnapCrashPoint arms the snapshot-path fault hook: the op-th snapshot or
// compaction I/O boundary — temp write, temp fsync, rename, unlink, and dir
// fsync, counted together from 1 — is abandoned mid-flight (a write leaves
// only partial bytes), and every later append fails with ErrCrashed, the
// in-test stand-in for the whole process dying there. Counted separately
// from the append-path CrashPoint so both sweeps stay deterministic.
// Test-only.
func (l *Log) SnapCrashPoint(op, partial int) {
	l.crashMu.Lock()
	l.snapCrashAt = op
	l.snapCrashPartial = partial
	l.snapCrashOps = 0
	l.snapCrashFired = false
	l.crashMu.Unlock()
}

// SnapCrashFired reports whether the armed snapshot crash point was reached.
func (l *Log) SnapCrashFired() bool {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	return l.snapCrashFired
}

// SnapshotGate installs a test hook: WriteSnapshot blocks just before its
// rename until ch is closed (or the log closes, which abandons the
// snapshot). Models a slow in-flight snapshot writer.
func (l *Log) SnapshotGate(ch <-chan struct{}) {
	l.crashMu.Lock()
	l.snapGate = ch
	l.crashMu.Unlock()
}

func (l *Log) gate() <-chan struct{} {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	return l.snapGate
}

// snapBoundary counts one snapshot-path I/O op and reports whether the
// armed snapshot crash fires here. Firing sets the shared crashed flag — a
// real crash kills the appender too.
func (l *Log) snapBoundary() (partial int, fire bool) {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	if l.snapCrashAt <= 0 {
		return 0, false
	}
	l.snapCrashOps++
	if l.snapCrashOps == l.snapCrashAt {
		l.crashed = true
		l.snapCrashFired = true
		return l.snapCrashPartial, true
	}
	return 0, false
}
