// Package eventlog implements the server's durable per-group event log: a
// segmented append-only file set holding every state-mutating hop the server
// acknowledged, so a crashed or restarted server rebuilds its databases by
// replay (commutative event sourcing over the §3.2 event stream).
//
// Records are group-interleaved: each carries the coupling-group key it
// mutates, so one log serializes all shards' appends while replay can still
// attribute every record to its group. Appends are a lock-free handoff — the
// calling loop encodes the record, hands the bytes to a dedicated writer
// goroutine over a channel, and blocks only until its durability level is
// reached (write for `interval`/`none`, write+fsync for `always`). The writer
// drains whatever accumulated while the previous write was in flight into a
// single write (+ a single fsync), so concurrent shard loops group-commit.
//
// On-disk framing, repeated per record inside segments named by base offset
// (`%016x.seg`):
//
//	[u32 length][u32 crc32c of payload][payload]
//	payload = [u8 kind][uvarint origin][uvarint group][wire envelope record]
//
// The envelope bytes reuse the wire batch inner-record layout
// (wire.AppendEnvelope), so the log has no serialization format of its own.
// Open scans all segments and truncates the tail at the first bad CRC — a
// torn final write from a crash is discarded, everything before it replays.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cosoft/internal/obs"
	"cosoft/internal/wire"
)

// Kind tags what server transition a record captures. Replay dispatches on
// it; the envelope carries the transition's payload in ordinary wire form.
type Kind uint8

const (
	// KindRegister: a fresh instance registered. Origin is the allocated
	// instance ID; the envelope is the client's Register message.
	KindRegister Kind = iota + 1
	// KindDisconnect: an instance left (connection closed, eviction,
	// liveness timeout, deregister). Origin is the instance. Session tokens
	// survive a disconnect; KindTokenDrop revokes them.
	KindDisconnect
	// KindTokenDrop: an orderly Deregister invalidated the instance's
	// outstanding session token.
	KindTokenDrop
	// KindToken: a session token was minted. Origin is the instance; the
	// envelope is the SessionToken reply.
	KindToken
	// KindResume: a session token was consumed by a Resume handshake.
	KindResume
	// KindDeclare / KindRetract: couplable-object declarations.
	KindDeclare
	KindRetract
	// KindCouple / KindDecouple: couple-graph mutations.
	KindCouple
	KindDecouple
	// KindEvent: a broadcast event committed (group lock granted). The
	// envelope is the Exec form — event ID, name, args and source ref.
	KindEvent
	// KindHist: a state-copy backup entered the historical-states database.
	// The envelope is a CopyTo carrying the overwritten state.
	KindHist
	// KindUndo / KindRedo: history walks; the envelope's CopyTo carries the
	// object's pre-walk current state (pushed on the opposite stack).
	KindUndo
	KindRedo
	// KindPerm: an access-permission grant or revoke.
	KindPerm
)

// Sync selects when appends are forced to stable storage.
type Sync int

const (
	// SyncInterval fsyncs on a timer (Options.SyncEvery); an append returns
	// once its bytes are written.
	SyncInterval Sync = iota
	// SyncAlways fsyncs before every append returns: an acked record is on
	// stable storage before the client hears the ack.
	SyncAlways
	// SyncNone never fsyncs; durability is whatever the OS flushes.
	SyncNone
)

// ParseSync parses the -log-sync flag values always|interval|none.
func ParseSync(s string) (Sync, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("eventlog: unknown sync policy %q (want always|interval|none)", s)
}

func (p Sync) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	}
	return "interval"
}

// Options configures a Log.
type Options struct {
	// Dir is the log directory (one per server). Created if missing.
	Dir string
	// Sync is the durability policy.
	Sync Sync
	// SyncEvery is the SyncInterval fsync period (0 = 100ms).
	SyncEvery time.Duration
	// SegmentBytes rotates to a fresh segment once the current one exceeds
	// this size (0 = 64 MiB).
	SegmentBytes int64
	// Metrics receives the server.log.* counters. Nil disables measurement.
	Metrics obs.Sink
}

// Record is one logged server transition.
type Record struct {
	Kind Kind
	// Origin is the acting instance ID ("" when not applicable).
	Origin string
	// Group keys the coupling group the record mutates ("" for global
	// records such as registrations).
	Group string
	// Env is the transition payload in wire form.
	Env wire.Envelope
}

// ErrCrashed is returned by appends after an armed crash point fired: the
// in-test stand-in for the process image dying mid-write.
var ErrCrashed = errors.New("eventlog: crash point fired")

// ErrClosed is returned by appends on a closed log.
var ErrClosed = errors.New("eventlog: closed")

const (
	recHeader  = 8 // u32 length + u32 crc
	maxPayload = wire.MaxFrame
	segSuffix  = ".seg"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// pending is one append handed to the writer goroutine.
type pending struct {
	data []byte
	done chan error
}

// Log is an open event log. Append is safe from any goroutine; all file I/O
// happens on the writer goroutine.
type Log struct {
	opts Options
	dir  string

	appendCh chan pending
	quit     chan struct{}
	wg       sync.WaitGroup

	mu     sync.Mutex
	closed bool

	// In-flight snapshot/compaction ops; Close waits for them so a
	// half-written .snap.tmp never outlives the log handle.
	snapWG sync.WaitGroup
	// snapMu serializes WriteSnapshot/Compact/Snapshots against each other
	// (they share the snapshot file namespace; appends are unaffected).
	snapMu sync.Mutex

	// Writer-goroutine state.
	file    *os.File
	segBase int64 // byte offset of the current segment's first record
	segSize int64 // bytes written into the current segment
	dirty   bool  // bytes written since the last fsync

	// Crash-point fault injection (tests): at the armed I/O boundary —
	// writes and syncs counted from 1 — the operation is abandoned with only
	// crashPartial bytes reaching the file, and every later append fails
	// with ErrCrashed.
	crashMu      sync.Mutex
	crashAt      int
	crashPartial int
	crashOps     int
	crashed      bool
	// Snapshot-path fault injection: a separate boundary counter over
	// snapshot/compaction I/O (SnapCrashPoint) so the append sweep's
	// numbering stays deterministic; firing sets the shared crashed flag.
	snapCrashAt      int
	snapCrashPartial int
	snapCrashOps     int
	snapCrashFired   bool
	snapGate         <-chan struct{}

	mAppends    *obs.Counter // server.log.appends: records appended
	mBytes      *obs.Counter // server.log.bytes: record bytes written (incl. framing)
	mFsyncs     *obs.Counter // server.log.fsyncs: fsync calls issued
	mReplayed   *obs.Counter // server.log.replayed: records decoded by Replay
	mTruncated  *obs.Counter // server.log.truncated_tail: torn tails discarded on open
	mSnapshots  *obs.Counter // server.log.snapshots: snapshots durably written
	mSnapBytes  *obs.Counter // server.log.snapshot_bytes: snapshot payload bytes written
	mCompacted  *obs.Counter // server.log.compacted_segments: segments deleted by Compact
	mReplaySnap *obs.Counter // server.log.replay_from_snapshot: opens that found a valid snapshot
}

// Open opens (creating if needed) the log directory, recovers the tail —
// truncating the last segment at the first record whose length or CRC does
// not check out — and starts the writer goroutine.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("eventlog: Options.Dir is required")
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 64 << 20
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	metrics := obs.Or(opts.Metrics)
	l := &Log{
		opts:        opts,
		dir:         opts.Dir,
		appendCh:    make(chan pending, 256),
		quit:        make(chan struct{}),
		mAppends:    metrics.Counter("server.log.appends"),
		mBytes:      metrics.Counter("server.log.bytes"),
		mFsyncs:     metrics.Counter("server.log.fsyncs"),
		mReplayed:   metrics.Counter("server.log.replayed"),
		mTruncated:  metrics.Counter("server.log.truncated_tail"),
		mSnapshots:  metrics.Counter("server.log.snapshots"),
		mSnapBytes:  metrics.Counter("server.log.snapshot_bytes"),
		mCompacted:  metrics.Counter("server.log.compacted_segments"),
		mReplaySnap: metrics.Counter("server.log.replay_from_snapshot"),
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	l.wg.Add(1)
	go l.writer()
	return l, nil
}

// segments lists the segment base offsets present in dir, sorted.
func segments(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: %w", err)
	}
	var bases []int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != segSuffix {
			continue
		}
		var base int64
		if _, err := fmt.Sscanf(name, "%016x"+segSuffix, &base); err != nil {
			continue
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

func segPath(dir string, base int64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x%s", base, segSuffix))
}

// recover scans the existing segments, truncates a torn tail in the last
// one, and opens the last segment (or a fresh first segment) for append.
// Snapshot-aware: half-written snapshot temp files are swept, a snap-only
// directory resumes appending at the snapshot's offset, and a directory
// compacted past its snapshot coverage is refused rather than silently
// replayed with a hole.
func (l *Log) recover() error {
	if err := removeSnapTmp(l.dir); err != nil {
		return err
	}
	snaps, _, err := snapshotInfos(l.dir)
	if err != nil {
		return err
	}
	snapOff := int64(-1)
	if len(snaps) > 0 {
		snapOff = snaps[0].Offset
		l.mReplaySnap.Inc()
	}
	bases, err := segments(l.dir)
	if err != nil {
		return err
	}
	if len(bases) == 0 {
		base := int64(0)
		if snapOff >= 0 {
			// Snap-only directory (everything below the snapshot compacted
			// away): appends resume at the covered offset so segment names
			// stay global byte offsets.
			base = snapOff
		}
		return l.openSegment(base)
	}
	if bases[0] > 0 && snapOff < bases[0] {
		return fmt.Errorf("eventlog: segments begin at offset %d with no snapshot covering the compacted prefix", bases[0])
	}
	// Damage in a non-final segment is corruption, not a torn tail: the log
	// only ever appends to the last segment, so refuse rather than silently
	// dropping acknowledged records.
	for _, base := range bases[:len(bases)-1] {
		valid, total, err := scanSegment(segPath(l.dir, base))
		if err != nil {
			return err
		}
		if valid != total {
			return fmt.Errorf("eventlog: segment %016x corrupt at offset %d (not the tail segment)", base, valid)
		}
	}
	last := bases[len(bases)-1]
	path := segPath(l.dir, last)
	valid, total, err := scanSegment(path)
	if err != nil {
		return err
	}
	if valid != total {
		if err := os.Truncate(path, valid); err != nil {
			return fmt.Errorf("eventlog: truncate torn tail: %w", err)
		}
		l.mTruncated.Inc()
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	l.file = f
	l.segBase = last
	l.segSize = valid
	return nil
}

// scanSegment walks one segment's records, returning the byte offset of the
// last record that checks out (valid) and the file size (total). valid <
// total means a torn or corrupt tail starting at valid.
func scanSegment(path string) (valid, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("eventlog: %w", err)
	}
	total = st.Size()
	var hdr [recHeader]byte
	buf := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return valid, total, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return valid, total, nil
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(f, buf); err != nil {
			return valid, total, nil
		}
		if crc32.Checksum(buf, crcTable) != crc {
			return valid, total, nil
		}
		valid += recHeader + int64(n)
	}
}

func (l *Log) openSegment(base int64) error {
	f, err := os.OpenFile(segPath(l.dir, base), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	l.file = f
	l.segBase = base
	l.segSize = 0
	return nil
}

// encodeRecord frames one record for disk.
func encodeRecord(r Record) []byte {
	payload := []byte{byte(r.Kind)}
	payload = binary.AppendUvarint(payload, uint64(len(r.Origin)))
	payload = append(payload, r.Origin...)
	payload = binary.AppendUvarint(payload, uint64(len(r.Group)))
	payload = append(payload, r.Group...)
	payload = wire.AppendEnvelope(payload, r.Env)
	buf := make([]byte, recHeader, recHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// decodeRecord parses one payload (after length+CRC validation).
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < 1 {
		return Record{}, errors.New("eventlog: empty payload")
	}
	r := Record{Kind: Kind(payload[0])}
	rest := payload[1:]
	take := func() (string, error) {
		n, sz := binary.Uvarint(rest)
		if sz <= 0 || uint64(len(rest)-sz) < n {
			return "", errors.New("eventlog: bad string length")
		}
		s := string(rest[sz : sz+int(n)])
		rest = rest[sz+int(n):]
		return s, nil
	}
	var err error
	if r.Origin, err = take(); err != nil {
		return Record{}, err
	}
	if r.Group, err = take(); err != nil {
		return Record{}, err
	}
	if r.Env, err = wire.DecodeEnvelope(rest); err != nil {
		return Record{}, fmt.Errorf("eventlog: envelope: %w", err)
	}
	return r, nil
}

// Append makes r durable per the sync policy and returns. Safe from any
// goroutine; the bytes are encoded by the caller and written by the writer
// goroutine, which group-commits everything that accumulated while the
// previous write was in flight.
func (l *Log) Append(r Record) error {
	p := pending{data: encodeRecord(r), done: make(chan error, 1)}
	select {
	case l.appendCh <- p:
	case <-l.quit:
		return ErrClosed
	}
	select {
	case err := <-p.done:
		return err
	case <-l.quit:
		// The writer drains the channel before exiting, so done always gets
		// an answer; prefer it over racing the quit signal.
		return <-p.done
	}
}

// writer is the single goroutine touching the segment files.
func (l *Log) writer() {
	defer l.wg.Done()
	var ticker *time.Ticker
	var tick <-chan time.Time
	if l.opts.Sync == SyncInterval {
		ticker = time.NewTicker(l.opts.SyncEvery)
		defer ticker.Stop()
		tick = ticker.C
	}
	for {
		select {
		case p := <-l.appendCh:
			batch := []pending{p}
			// Group commit: everything queued while we were off-loop joins
			// this write and shares its fsync.
			for drained := false; !drained; {
				select {
				case q := <-l.appendCh:
					batch = append(batch, q)
				default:
					drained = true
				}
			}
			l.commit(batch)
		case <-tick:
			if l.dirty && !l.isCrashed() {
				if err := l.sync(); err == nil {
					l.dirty = false
				}
			}
		case <-l.quit:
			for {
				select {
				case p := <-l.appendCh:
					l.commit([]pending{p})
				default:
					if l.dirty && !l.isCrashed() && l.opts.Sync != SyncNone {
						if l.sync() == nil {
							l.dirty = false
						}
					}
					return
				}
			}
		}
	}
}

// commit writes one group-committed batch and answers every waiter.
func (l *Log) commit(batch []pending) {
	if l.isCrashed() {
		for _, p := range batch {
			p.done <- ErrCrashed
		}
		return
	}
	var total int
	for _, p := range batch {
		total += len(p.data)
	}
	if l.segSize > 0 && l.segSize+int64(total) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			for _, p := range batch {
				p.done <- err
			}
			return
		}
	}
	buf := make([]byte, 0, total)
	for _, p := range batch {
		buf = append(buf, p.data...)
	}
	err := l.write(buf)
	if err == nil {
		l.segSize += int64(total)
		l.dirty = true
		l.mAppends.Add(uint64(len(batch)))
		l.mBytes.Add(uint64(total))
		if l.opts.Sync == SyncAlways {
			if err = l.sync(); err == nil {
				l.dirty = false
			}
		}
	}
	for _, p := range batch {
		p.done <- err
	}
}

// rotate seals the current segment and opens the next one, named by the
// global byte offset of its first record.
func (l *Log) rotate() error {
	if l.opts.Sync != SyncNone && l.dirty {
		if err := l.sync(); err != nil {
			return err
		}
		l.dirty = false
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("eventlog: rotate: %w", err)
	}
	return l.openSegment(l.segBase + l.segSize)
}

// write is one counted I/O boundary: an armed crash point abandons it with
// only the configured partial byte count reaching the file.
func (l *Log) write(buf []byte) error {
	if partial, fire := l.crashBoundary(); fire {
		if partial > len(buf) {
			partial = len(buf)
		}
		if partial > 0 {
			l.file.Write(buf[:partial])
		}
		return ErrCrashed
	}
	if _, err := l.file.Write(buf); err != nil {
		return fmt.Errorf("eventlog: write: %w", err)
	}
	return nil
}

// sync is the other counted I/O boundary.
func (l *Log) sync() error {
	if _, fire := l.crashBoundary(); fire {
		return ErrCrashed
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("eventlog: fsync: %w", err)
	}
	l.mFsyncs.Inc()
	return nil
}

// CrashPoint arms the fault hook: the op-th I/O boundary (writes and syncs,
// counted together from 1) is abandoned mid-flight — a write puts only
// partial bytes in the file, a sync does nothing — and every later append
// fails with ErrCrashed. Test-only.
func (l *Log) CrashPoint(op, partial int) {
	l.crashMu.Lock()
	l.crashAt = op
	l.crashPartial = partial
	l.crashOps = 0
	l.crashed = false
	l.crashMu.Unlock()
}

// CrashFired reports whether the armed crash point was reached.
func (l *Log) CrashFired() bool {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	return l.crashed
}

func (l *Log) isCrashed() bool {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	return l.crashed
}

// crashBoundary counts one I/O op and reports whether the crash fires here.
func (l *Log) crashBoundary() (partial int, fire bool) {
	l.crashMu.Lock()
	defer l.crashMu.Unlock()
	if l.crashAt <= 0 {
		return 0, false
	}
	l.crashOps++
	if l.crashOps == l.crashAt {
		l.crashed = true
		return l.crashPartial, true
	}
	return 0, false
}

// Replay streams every durable record to fn in log order. It reads the
// segment files directly (safe before the first Append; during live appends
// it sees some prefix). A decode error in a record that passed its CRC is
// reported to fn's caller via the returned error.
func (l *Log) Replay(fn func(Record) error) error {
	return replayDir(l.dir, l.mReplayed, fn)
}

// ReplayDir replays a log directory without opening it for appending (the
// -log-fsck path and offline tooling).
func ReplayDir(dir string, fn func(Record) error) error {
	return replayDir(dir, nil, fn)
}

func replayDir(dir string, replayed *obs.Counter, fn func(Record) error) error {
	bases, err := segments(dir)
	if err != nil {
		return err
	}
	for _, base := range bases {
		if err := replaySegment(segPath(dir, base), replayed, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, replayed *obs.Counter, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	var hdr [recHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxPayload {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return nil
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		replayed.Inc()
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Close flushes, syncs (unless SyncNone) and closes the log. Pending appends
// are answered before the writer exits.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.quit)
	l.wg.Wait()
	// An in-flight snapshot writer observes quit and abandons (removing its
	// temp file); wait so no .snap.tmp outlives the handle.
	l.snapWG.Wait()
	if l.file != nil {
		return l.file.Close()
	}
	return nil
}

// FsckReport summarizes a scan of a log directory.
type FsckReport struct {
	Segments int
	Records  int
	Bytes    int64
	// Snapshots counts valid snapshot files; BadSnapshots counts torn or
	// CRC-damaged ones (not corruption by themselves as long as replay can
	// still reach the acked state some other way).
	Snapshots    int
	BadSnapshots int
	// SnapshotOffset is the newest valid snapshot's byte offset — where
	// restart replay begins — or -1 when no snapshot exists.
	SnapshotOffset int64
	// TornTail is set when the final segment ends in an incomplete or
	// CRC-damaged record with nothing but garbage behind it — the expected
	// signature of a crash mid-write.
	TornTail bool
	// Corrupt is set when damage appears before the final segment's tail,
	// or when intact records resync after a break in the final segment
	// (a crash tears at most one trailing record; damage with valid
	// records behind it is interior corruption) — either way,
	// acknowledged records are unreadable.
	Corrupt bool
	// Detail describes the first damage found.
	Detail string
}

// Fsck scans a log directory without modifying it, counting segments, valid
// records and snapshots, classifying any CRC damage, and validating the
// snapshot chain: segments must be contiguous, and a directory whose
// segments start past offset zero (compaction ran) must hold a valid
// snapshot covering the deleted prefix. A directory with only a snapshot
// and no segments is clean; a torn snapshot is clean as long as replay can
// still reach the acked state (an older snapshot or a full segment chain).
func Fsck(dir string) (FsckReport, error) {
	rep := FsckReport{SnapshotOffset: -1}
	validSnaps, badSnaps, err := snapshotInfos(dir)
	if err != nil {
		return rep, err
	}
	rep.Snapshots = len(validSnaps)
	rep.BadSnapshots = len(badSnaps)
	if len(validSnaps) > 0 {
		rep.SnapshotOffset = validSnaps[0].Offset
	}
	bases, err := segments(dir)
	if err != nil {
		return rep, err
	}
	rep.Segments = len(bases)
	if len(bases) == 0 {
		if len(validSnaps) == 0 && len(badSnaps) > 0 {
			rep.Corrupt = true
			rep.Detail = fmt.Sprintf("%d snapshot file(s) unreadable with no segments to replay", len(badSnaps))
		}
		return rep, nil
	}
	if bases[0] > 0 && (len(validSnaps) == 0 || validSnaps[0].Offset < bases[0]) {
		rep.Corrupt = true
		rep.Detail = fmt.Sprintf("segments begin at offset %d with no snapshot covering the compacted prefix", bases[0])
		return rep, nil
	}
	prevEnd := bases[0]
	for i, base := range bases {
		if base != prevEnd {
			rep.Corrupt = true
			rep.Detail = fmt.Sprintf("segment %016x does not begin where the previous segment ends (offset %d) — gap in the chain", base, prevEnd)
			return rep, nil
		}
		path := segPath(dir, base)
		valid, total, err := scanSegment(path)
		if err != nil {
			return rep, err
		}
		prevEnd = base + total
		n, err := countRecords(path, valid)
		if err != nil {
			return rep, err
		}
		rep.Records += n
		rep.Bytes += valid
		if valid != total {
			if i < len(bases)-1 {
				rep.Corrupt = true
				rep.Detail = fmt.Sprintf("segment %016x: damage at offset %d before the tail segment", base, valid)
				return rep, nil
			}
			sync, err := resyncOffset(path, valid, total)
			if err != nil {
				return rep, err
			}
			if sync >= 0 {
				rep.Corrupt = true
				rep.Detail = fmt.Sprintf("segment %016x: damage at offset %d with intact records resuming at %d — interior corruption, not a crash tear", base, valid, sync)
				return rep, nil
			}
			rep.TornTail = true
			rep.Detail = fmt.Sprintf("segment %016x: torn tail at offset %d (%d trailing bytes)", base, valid, total-valid)
		}
	}
	if len(badSnaps) > 0 && rep.Detail == "" {
		rep.Detail = fmt.Sprintf("%d snapshot file(s) unreadable (replay falls back to an older snapshot or offset zero)", len(badSnaps))
	}
	return rep, nil
}

// resyncOffset scans the damaged region of a segment for an offset where a
// well-formed record (sane length, matching CRC) begins, returning -1 when
// none exists. A crash mid-write tears at most the one record being
// appended, so any record that parses behind the break proves the damage is
// interior corruption rather than a torn tail.
func resyncOffset(path string, from, total int64) (int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return -1, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	region := make([]byte, total-from)
	if _, err := f.ReadAt(region, from); err != nil {
		return -1, fmt.Errorf("eventlog: %w", err)
	}
	// The break itself is the torn record; a resync at offset zero would be
	// the valid prefix again, so start one byte in.
	for off := int64(1); off+recHeader <= int64(len(region)); off++ {
		n := int64(binary.LittleEndian.Uint32(region[off : off+4]))
		if n == 0 || n > maxPayload || off+recHeader+n > int64(len(region)) {
			continue
		}
		crc := binary.LittleEndian.Uint32(region[off+4 : off+8])
		if crc32.Checksum(region[off+recHeader:off+recHeader+n], crcTable) == crc {
			return from + off, nil
		}
	}
	return -1, nil
}

// countRecords counts the records in the first valid bytes of a segment.
func countRecords(path string, valid int64) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("eventlog: %w", err)
	}
	defer f.Close()
	var hdr [recHeader]byte
	var off int64
	n := 0
	for off < valid {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return n, nil
		}
		sz := int64(binary.LittleEndian.Uint32(hdr[0:4]))
		if _, err := f.Seek(sz, io.SeekCurrent); err != nil {
			return n, fmt.Errorf("eventlog: %w", err)
		}
		off += recHeader + sz
		n++
	}
	return n, nil
}
