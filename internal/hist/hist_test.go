package hist

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/couple"
	"cosoft/internal/widget"
)

func ref(path string) couple.ObjectRef {
	return couple.ObjectRef{Instance: "i1", Path: path}
}

func state(v string) widget.TreeState {
	return widget.TreeState{Class: "textfield", Name: "t",
		Attrs: attr.Set{widget.AttrValue: attr.String(v)}}
}

func TestRecordUndoRedo(t *testing.T) {
	db := NewDB(8)
	r := ref("/t")
	db.Record(Snapshot{Ref: r, State: state("v1"), Origin: "i2", At: time.Unix(1, 0)})
	db.Record(Snapshot{Ref: r, State: state("v2"), Origin: "i2", At: time.Unix(2, 0)})

	// Current state is v3; undo yields v2, then v1.
	s, err := db.Undo(r, state("v3"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v2" {
		t.Errorf("undo 1 = %q", got)
	}
	s, err = db.Undo(r, s.State)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v1" {
		t.Errorf("undo 2 = %q", got)
	}
	if _, err := db.Undo(r, s.State); !errors.Is(err, ErrEmpty) {
		t.Errorf("undo past bottom: %v", err)
	}
	// Redo walks back up: v2, v3.
	s, err = db.Redo(r, s.State)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v2" {
		t.Errorf("redo 1 = %q", got)
	}
	s, err = db.Redo(r, s.State)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v3" {
		t.Errorf("redo 2 = %q", got)
	}
	if _, err := db.Redo(r, s.State); !errors.Is(err, ErrEmpty) {
		t.Errorf("redo past top: %v", err)
	}
}

func TestRecordClearsRedo(t *testing.T) {
	db := NewDB(8)
	r := ref("/t")
	db.Record(Snapshot{Ref: r, State: state("v1")})
	if _, err := db.Undo(r, state("v2")); err != nil {
		t.Fatal(err)
	}
	db.Record(Snapshot{Ref: r, State: state("v1b")})
	if _, err := db.Redo(r, state("x")); !errors.Is(err, ErrEmpty) {
		t.Errorf("redo after new record: %v", err)
	}
}

func TestDepthBound(t *testing.T) {
	db := NewDB(3)
	r := ref("/t")
	for i := 0; i < 10; i++ {
		db.Record(Snapshot{Ref: r, State: state(fmt.Sprintf("v%d", i))})
	}
	undo, redo := db.Depth(r)
	if undo != 3 || redo != 0 {
		t.Fatalf("Depth = %d, %d", undo, redo)
	}
	// Oldest retained is v7 (v0..v6 evicted).
	s, err := db.Undo(r, state("cur"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v9" {
		t.Errorf("top = %q", got)
	}
	db.Undo(r, s.State)
	s, err = db.Undo(r, state("x"))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.State.Attrs.Get(widget.AttrValue).AsString(); got != "v7" {
		t.Errorf("bottom = %q", got)
	}
}

func TestDefaultDepth(t *testing.T) {
	db := NewDB(0)
	r := ref("/t")
	for i := 0; i < DefaultDepth+5; i++ {
		db.Record(Snapshot{Ref: r, State: state("v")})
	}
	undo, _ := db.Depth(r)
	if undo != DefaultDepth {
		t.Errorf("depth = %d, want %d", undo, DefaultDepth)
	}
}

func TestForget(t *testing.T) {
	db := NewDB(4)
	db.Record(Snapshot{Ref: ref("/a"), State: state("x")})
	db.Record(Snapshot{Ref: ref("/b"), State: state("y")})
	other := couple.ObjectRef{Instance: "i2", Path: "/c"}
	db.Record(Snapshot{Ref: other, State: state("z")})
	db.Forget(ref("/a"))
	if u, _ := db.Depth(ref("/a")); u != 0 {
		t.Error("Forget failed")
	}
	db.ForgetInstance("i1")
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1", db.Len())
	}
	if u, _ := db.Depth(other); u != 1 {
		t.Error("ForgetInstance dropped another instance's history")
	}
}

func TestEmptyObject(t *testing.T) {
	db := NewDB(4)
	if _, err := db.Undo(ref("/nope"), state("x")); !errors.Is(err, ErrEmpty) {
		t.Errorf("undo on unknown: %v", err)
	}
	if _, err := db.Redo(ref("/nope"), state("x")); !errors.Is(err, ErrEmpty) {
		t.Errorf("redo on unknown: %v", err)
	}
	if u, r := db.Depth(ref("/nope")); u != 0 || r != 0 {
		t.Error("Depth on unknown")
	}
}

// Property: undo followed by redo restores the pre-undo current state, for
// any record/current sequence.
func TestPropUndoRedoIdentity(t *testing.T) {
	f := func(vals []string) bool {
		if len(vals) == 0 {
			return true
		}
		db := NewDB(64)
		r := ref("/t")
		for _, v := range vals {
			db.Record(Snapshot{Ref: r, State: state(v)})
		}
		cur := state("CURRENT")
		s, err := db.Undo(r, cur)
		if err != nil {
			return false
		}
		back, err := db.Redo(r, s.State)
		if err != nil {
			return false
		}
		return back.State.Equal(cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
