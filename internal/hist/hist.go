// Package hist implements the server's historical UI states database
// (§2.1): it backs up UI states that were overwritten when synchronizing by
// state, and provides undo/redo over them.
package hist

import (
	"errors"
	"sort"
	"sync"
	"time"

	"cosoft/internal/couple"
	"cosoft/internal/obs"
	"cosoft/internal/widget"
)

// ErrEmpty is returned by Undo/Redo when no state is available in that
// direction.
var ErrEmpty = errors.New("hist: no state available")

// Snapshot is one recorded UI state of an object: the captured tree state
// plus provenance.
type Snapshot struct {
	// Ref identifies the object whose state was overwritten.
	Ref couple.ObjectRef
	// State is the captured subtree state at the time of overwrite.
	State widget.TreeState
	// Origin is the instance whose copy operation caused the overwrite.
	Origin couple.InstanceID
	// At is the server time of the overwrite.
	At time.Time
}

// entry keeps the undo and redo stacks of one object.
type entry struct {
	undo []Snapshot
	redo []Snapshot
}

// DB is the historical-states store. It bounds the per-object depth so a
// long session cannot exhaust server memory. The zero value is not usable;
// call NewDB.
type DB struct {
	mu        sync.Mutex
	maxDepth  int
	objects   map[couple.ObjectRef]*entry
	evictions *obs.Counter
}

// DefaultDepth is the per-object history depth used when NewDB receives a
// non-positive depth.
const DefaultDepth = 32

// NewDB returns a store keeping up to depth snapshots per object.
func NewDB(depth int) *DB {
	if depth <= 0 {
		depth = DefaultDepth
	}
	return &DB{maxDepth: depth, objects: make(map[couple.ObjectRef]*entry)}
}

// Record stores the state that is about to be overwritten. It clears the
// object's redo stack: a new overwrite invalidates states that were undone.
func (d *DB) Record(s Snapshot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[s.Ref]
	if e == nil {
		e = &entry{}
		d.objects[s.Ref] = e
	}
	e.undo = append(e.undo, s)
	if len(e.undo) > d.maxDepth {
		copy(e.undo, e.undo[1:])
		e.undo = e.undo[:d.maxDepth]
		d.evictions.Inc()
	}
	e.redo = nil
}

// Restore installs ref's undo and redo stacks verbatim (oldest first) when
// rebuilding the database from a snapshot. Unlike Record it neither clears
// the redo stack nor evicts — the stacks were bounded when captured.
func (d *DB) Restore(ref couple.ObjectRef, undo, redo []Snapshot) {
	if len(undo) == 0 && len(redo) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[ref]
	if e == nil {
		e = &entry{}
		d.objects[ref] = e
	}
	e.undo = append([]Snapshot(nil), undo...)
	e.redo = append([]Snapshot(nil), redo...)
}

// Instrument counts depth-bound evictions — the oldest undo snapshot
// silently dropped when an object's history exceeds the depth bound — in c.
func (d *DB) Instrument(c *obs.Counter) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.evictions = c
}

// Refs returns every object with recorded history, sorted, and Stacks dumps
// one object's undo/redo stacks bottom-first — together a deterministic
// dump of the database, used by recovery tests to compare a replayed server
// against a shadow one.
func (d *DB) Refs() []couple.ObjectRef {
	d.mu.Lock()
	defer d.mu.Unlock()
	refs := make([]couple.ObjectRef, 0, len(d.objects))
	for ref := range d.objects {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Instance != refs[j].Instance {
			return refs[i].Instance < refs[j].Instance
		}
		return refs[i].Path < refs[j].Path
	})
	return refs
}

// Stacks returns copies of ref's undo and redo stacks, oldest first.
func (d *DB) Stacks(ref couple.ObjectRef) (undo, redo []Snapshot) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[ref]
	if e == nil {
		return nil, nil
	}
	return append([]Snapshot(nil), e.undo...), append([]Snapshot(nil), e.redo...)
}

// Undo pops the most recent overwritten state of ref. The caller supplies
// the object's current state, which is pushed on the redo stack.
func (d *DB) Undo(ref couple.ObjectRef, current widget.TreeState) (Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[ref]
	if e == nil || len(e.undo) == 0 {
		return Snapshot{}, ErrEmpty
	}
	s := e.undo[len(e.undo)-1]
	e.undo = e.undo[:len(e.undo)-1]
	e.redo = append(e.redo, Snapshot{Ref: ref, State: current, Origin: s.Origin, At: s.At})
	return s, nil
}

// Redo pops the most recently undone state of ref. The caller supplies the
// object's current state, which is pushed back on the undo stack.
func (d *DB) Redo(ref couple.ObjectRef, current widget.TreeState) (Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[ref]
	if e == nil || len(e.redo) == 0 {
		return Snapshot{}, ErrEmpty
	}
	s := e.redo[len(e.redo)-1]
	e.redo = e.redo[:len(e.redo)-1]
	e.undo = append(e.undo, Snapshot{Ref: ref, State: current, Origin: s.Origin, At: s.At})
	return s, nil
}

// Depth returns the undo and redo depths recorded for ref.
func (d *DB) Depth(ref couple.ObjectRef) (undo, redo int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.objects[ref]
	if e == nil {
		return 0, 0
	}
	return len(e.undo), len(e.redo)
}

// Forget drops all history for ref (object destroyed).
func (d *DB) Forget(ref couple.ObjectRef) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.objects, ref)
}

// ForgetInstance drops all history for every object of the instance.
func (d *DB) ForgetInstance(id couple.InstanceID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for ref := range d.objects {
		if ref.Instance == id {
			delete(d.objects, ref)
		}
	}
}

// Extracted is an opaque bundle of per-object histories removed from one DB,
// to be Installed into another (cross-shard group migration).
type Extracted struct {
	objects map[couple.ObjectRef]*entry
}

// Len returns the number of objects in the bundle.
func (x Extracted) Len() int { return len(x.objects) }

// Extract removes and returns the histories of every object in refs.
func (d *DB) Extract(refs map[couple.ObjectRef]bool) Extracted {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[couple.ObjectRef]*entry)
	for ref, e := range d.objects {
		if refs[ref] {
			delete(d.objects, ref)
			out[ref] = e
		}
	}
	return Extracted{objects: out}
}

// Install adds extracted histories to the store. An object present in both
// keeps the installed history (the migration protocol guarantees the
// receiving store has recorded nothing for the migrating refs).
func (d *DB) Install(x Extracted) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for ref, e := range x.objects {
		d.objects[ref] = e
	}
}

// Len returns the number of objects with recorded history.
func (d *DB) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.objects)
}
