package registry

import (
	"reflect"
	"testing"

	"cosoft/internal/couple"
)

func TestRegisterLookupDeregister(t *testing.T) {
	s := NewStore()
	r := Record{ID: "tori-1", AppType: "tori", Host: "board", User: "teacher"}
	if err := s.Register(r); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(r); err == nil {
		t.Error("duplicate register must fail")
	}
	if err := s.Register(Record{}); err == nil {
		t.Error("empty id must fail")
	}
	got, err := s.Lookup("tori-1")
	if err != nil {
		t.Fatal(err)
	}
	if got.User != "teacher" || got.Objects == nil {
		t.Errorf("Lookup = %+v", got)
	}
	if !s.Deregister("tori-1") {
		t.Error("Deregister must report true")
	}
	if s.Deregister("tori-1") {
		t.Error("second Deregister must report false")
	}
	if _, err := s.Lookup("tori-1"); err == nil {
		t.Error("lookup after deregister must fail")
	}
}

func TestNewIDUnique(t *testing.T) {
	s := NewStore()
	seen := make(map[couple.InstanceID]bool)
	for i := 0; i < 100; i++ {
		id := s.NewID("app")
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestDeclareRetractObjects(t *testing.T) {
	s := NewStore()
	if err := s.DeclareObject("nope", "/x", "button"); err == nil {
		t.Error("declare on unknown instance must fail")
	}
	if err := s.Register(Record{ID: "a", AppType: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareObject("a", "/q", "textfield"); err != nil {
		t.Fatal(err)
	}
	class, ok := s.ObjectClass(couple.ObjectRef{Instance: "a", Path: "/q"})
	if !ok || class != "textfield" {
		t.Errorf("ObjectClass = %q, %v", class, ok)
	}
	s.RetractObject("a", "/q")
	if _, ok := s.ObjectClass(couple.ObjectRef{Instance: "a", Path: "/q"}); ok {
		t.Error("retract failed")
	}
	if _, ok := s.ObjectClass(couple.ObjectRef{Instance: "zz", Path: "/q"}); ok {
		t.Error("unknown instance must report false")
	}
	s.RetractObject("zz", "/q") // must not panic
}

func TestLookupReturnsCopy(t *testing.T) {
	s := NewStore()
	if err := s.Register(Record{ID: "a", AppType: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := s.DeclareObject("a", "/q", "button"); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Lookup("a")
	got.Objects["/q"] = "mutated"
	class, _ := s.ObjectClass(couple.ObjectRef{Instance: "a", Path: "/q"})
	if class != "button" {
		t.Error("Lookup leaked internal map")
	}
}

func TestInstancesAndByUser(t *testing.T) {
	s := NewStore()
	s.Register(Record{ID: "b", User: "u1"})
	s.Register(Record{ID: "a", User: "u2"})
	s.Register(Record{ID: "c", User: "u1"})
	if got := s.Instances(); !reflect.DeepEqual(got, []couple.InstanceID{"a", "b", "c"}) {
		t.Errorf("Instances = %v", got)
	}
	if got := s.ByUser("u1"); !reflect.DeepEqual(got, []couple.InstanceID{"b", "c"}) {
		t.Errorf("ByUser = %v", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}
