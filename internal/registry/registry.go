// Package registry implements the server's registration records (§2.1):
// per-instance metadata — application instance identifier, application type,
// host name, user name — plus the objects each instance has declared
// couplable.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"cosoft/internal/couple"
)

// Record describes one registered application instance.
type Record struct {
	// ID is the unique application instance identifier.
	ID couple.InstanceID
	// AppType names the application ("tori", "cosoft-teacher", ...). Two
	// instances with different AppType values are *heterogeneous*.
	AppType string
	// Host is the machine the instance runs on.
	Host string
	// User is the human participant.
	User string
	// Since is the registration time.
	Since time.Time
	// Objects lists the pathnames the instance has declared couplable,
	// mapped to their widget class names (used for compatibility checks).
	Objects map[string]string
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	cp := r
	cp.Objects = make(map[string]string, len(r.Objects))
	for k, v := range r.Objects {
		cp.Objects[k] = v
	}
	return cp
}

// Store holds the registration records. The zero value is not usable; call
// NewStore.
type Store struct {
	mu      sync.RWMutex
	records map[couple.InstanceID]Record
	nextSeq uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{records: make(map[couple.InstanceID]Record)}
}

// NewID allocates a fresh unique instance identifier derived from the
// application type.
func (s *Store) NewID(appType string) couple.InstanceID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeq++
	return couple.InstanceID(fmt.Sprintf("%s-%d", appType, s.nextSeq))
}

// RestoreSeq advances the ID allocator past an identifier recovered from a
// durable log, so IDs minted after a restart never collide with pre-crash
// ones. IDs not shaped like NewID's output ("type-N") are ignored.
func (s *Store) RestoreSeq(id couple.InstanceID) {
	i := strings.LastIndexByte(string(id), '-')
	if i < 0 {
		return
	}
	n, err := strconv.ParseUint(string(id)[i+1:], 10, 64)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nextSeq {
		s.nextSeq = n
	}
}

// Seq returns the ID allocator's current sequence number (for snapshots).
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// SetSeq advances the ID allocator to at least n when installing a
// snapshot. Advance-only: the allocator never moves backwards, so a
// snapshot can only widen the range of IDs considered spent.
func (s *Store) SetSeq(n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > s.nextSeq {
		s.nextSeq = n
	}
}

// Register inserts a record. The record's ID must be set and unused.
func (s *Store) Register(r Record) error {
	if r.ID == "" {
		return fmt.Errorf("registry: empty instance id")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.records[r.ID]; ok {
		return fmt.Errorf("registry: instance %q already registered", r.ID)
	}
	if r.Objects == nil {
		r.Objects = make(map[string]string)
	}
	s.records[r.ID] = r
	return nil
}

// Deregister removes a record, reporting whether it existed.
func (s *Store) Deregister(id couple.InstanceID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.records[id]; !ok {
		return false
	}
	delete(s.records, id)
	return true
}

// Lookup returns a copy of the record for id.
func (s *Store) Lookup(id couple.InstanceID) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[id]
	if !ok {
		return Record{}, fmt.Errorf("registry: unknown instance %q", id)
	}
	return r.Clone(), nil
}

// DeclareObject records that the instance's object at path (of the given
// widget class) is couplable.
func (s *Store) DeclareObject(id couple.InstanceID, path, class string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.records[id]
	if !ok {
		return fmt.Errorf("registry: unknown instance %q", id)
	}
	r.Objects[path] = class
	return nil
}

// RetractObject removes a declared object (destroyed widgets).
func (s *Store) RetractObject(id couple.InstanceID, path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.records[id]; ok {
		delete(r.Objects, path)
	}
}

// ObjectClass returns the declared widget class of the object, if declared.
func (s *Store) ObjectClass(ref couple.ObjectRef) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[ref.Instance]
	if !ok {
		return "", false
	}
	class, ok := r.Objects[ref.Path]
	return class, ok
}

// Instances returns all registered IDs, sorted.
func (s *Store) Instances() []couple.InstanceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]couple.InstanceID, 0, len(s.records))
	for id := range s.records {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByUser returns the IDs registered by the given user, sorted.
func (s *Store) ByUser(user string) []couple.InstanceID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []couple.InstanceID
	for id, r := range s.records {
		if r.User == user {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the number of registered instances.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}
