package faultnet

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair returns a faultnet-wrapped side A and the raw side B of an
// in-process pipe.
func pipePair(sched Schedule) (*Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a, sched), b
}

// drain reads everything B receives until the pipe closes.
func drain(t *testing.T, b net.Conn) <-chan []byte {
	t.Helper()
	out := make(chan []byte, 1)
	go func() {
		var got []byte
		buf := make([]byte, 256)
		for {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				out <- got
				return
			}
		}
	}()
	return out
}

func TestDropEveryNth(t *testing.T) {
	fc, b := pipePair(Schedule{DropEveryNth: 2})
	got := drain(t, b)
	for i := 0; i < 6; i++ {
		if _, err := fc.Write([]byte{byte('a' + i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	fc.Close()
	if s := string(<-got); s != "ace" {
		t.Fatalf("delivered %q, want %q (every 2nd write dropped)", s, "ace")
	}
}

func TestSeededDropIsDeterministic(t *testing.T) {
	run := func() string {
		fc, b := pipePair(Schedule{Seed: 7, DropProb: 0.5})
		got := drain(t, b)
		for i := 0; i < 16; i++ {
			if _, err := fc.Write([]byte{byte('a' + i)}); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
		fc.Close()
		return string(<-got)
	}
	first := run()
	if second := run(); second != first {
		t.Fatalf("same seed produced different schedules: %q vs %q", first, second)
	}
	if len(first) == 16 || len(first) == 0 {
		t.Fatalf("p=0.5 schedule dropped nothing or everything: %q", first)
	}
}

func TestDuplicate(t *testing.T) {
	fc, b := pipePair(Schedule{Seed: 3, DupProb: 1})
	got := drain(t, b)
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatalf("write: %v", err)
	}
	fc.Close()
	if s := string(<-got); s != "xx" {
		t.Fatalf("delivered %q, want duplicated %q", s, "xx")
	}
}

func TestBlackholeDiscardsWritesAndStarvesReads(t *testing.T) {
	fc, b := pipePair(Schedule{})
	got := drain(t, b)
	fc.Blackhole()
	if _, err := fc.Write([]byte("lost")); err != nil {
		t.Fatalf("blackholed write must report success, got %v", err)
	}
	readDone := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		t.Fatalf("read completed during blackhole: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	// Peer data sent during the partition is delivered after Restore.
	go b.Write([]byte("z"))
	fc.Restore()
	if err := <-readDone; err != nil {
		t.Fatalf("read after restore: %v", err)
	}
	fc.Close()
	if s := string(<-got); s != "" {
		t.Fatalf("blackholed bytes leaked through: %q", s)
	}
}

func TestHangBlocksWritesUntilRestore(t *testing.T) {
	fc, b := pipePair(Schedule{})
	got := drain(t, b)
	fc.Hang()
	wrote := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("late"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed while hung: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	fc.Restore()
	if err := <-wrote; err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	fc.Close()
	if s := string(<-got); s != "late" {
		t.Fatalf("delivered %q after restore, want %q", s, "late")
	}
}

func TestCloseReleasesHungCallers(t *testing.T) {
	fc, _ := pipePair(Schedule{})
	fc.Hang()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := fc.Read(make([]byte, 1)); err == nil {
			t.Error("hung read returned nil error after close")
		}
	}()
	go func() {
		defer wg.Done()
		if _, err := fc.Write([]byte("x")); err == nil {
			t.Error("hung write returned nil error after close")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	fc.Close()
	wg.Wait()
}

func TestDelayStillDelivers(t *testing.T) {
	fc, b := pipePair(Schedule{Seed: 1, Delay: time.Millisecond, Jitter: time.Millisecond})
	got := drain(t, b)
	for i := 0; i < 3; i++ {
		if _, err := fc.Write([]byte{byte('0' + i)}); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	fc.Close()
	if s := string(<-got); s != "012" {
		t.Fatalf("delayed delivery reordered or lost data: %q", s)
	}
}

func TestReadPassesThroughEOF(t *testing.T) {
	fc, b := pipePair(Schedule{})
	b.Close()
	if _, err := fc.Read(make([]byte, 1)); err != io.EOF && err != io.ErrClosedPipe {
		t.Fatalf("read after peer close: %v", err)
	}
}
