// Package faultnet wraps a net.Conn with deterministic fault injection for
// chaos tests: seeded per-write drop/duplicate/delay schedules plus runtime
// controls that hang or black-hole the connection to simulate partitions
// and wedged processes.
//
// The wire package writes one frame per net.Conn Write (it buffers the
// length prefix and body and flushes once), so per-write faults behave as
// per-frame faults: dropping a write loses one whole envelope and leaves
// the stream decodable, and duplicating one delivers the same envelope
// twice — exactly the message-level faults the protocol must tolerate.
//
// All randomness comes from a seeded PCG generator, so a schedule replays
// identically for a given seed. Tests should assert on convergence (state,
// counters), never on elapsed wall time.
package faultnet

import (
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Schedule is a deterministic per-write fault plan. The zero value injects
// nothing.
type Schedule struct {
	// Seed initializes the PRNG behind the probabilistic faults. The same
	// seed replays the same fault sequence.
	Seed uint64
	// DropEveryNth drops every Nth write (1-based; 0 disables). Counting is
	// per connection, independent of the probabilistic faults.
	DropEveryNth int
	// DropProb drops each write with this probability.
	DropProb float64
	// DupProb writes each surviving write twice with this probability.
	DupProb float64
	// Delay pauses each write for this long before it reaches the inner
	// connection; Jitter adds a uniformly distributed extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
}

// Conn wraps an inner net.Conn with the fault schedule. It implements
// net.Conn; reads and writes degrade according to the schedule and the
// current mode.
type Conn struct {
	inner net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	rng    *rand.Rand
	sched  Schedule
	writes int
	mode   mode
	closed bool
}

type mode int

const (
	// modeClear passes traffic through (subject to the schedule).
	modeClear mode = iota
	// modeHang blocks reads and writes until Restore or Close: a wedged
	// process that still holds its TCP connection open.
	modeHang
	// modeBlackhole silently discards writes and starves reads: a network
	// partition where the sender cannot tell its packets are dying.
	modeBlackhole
)

// Wrap returns a fault-injecting wrapper around inner.
func Wrap(inner net.Conn, sched Schedule) *Conn {
	c := &Conn{
		inner: inner,
		rng:   rand.New(rand.NewPCG(sched.Seed, sched.Seed^0x9e3779b97f4a7c15)),
		sched: sched,
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Hang wedges the connection: subsequent reads and writes block until
// Restore or Close. In-flight reads on the inner connection are not
// interrupted; new ones do not start.
func (c *Conn) Hang() { c.setMode(modeHang) }

// Blackhole partitions the connection: writes are silently discarded
// (reporting success to the sender) and reads block. Data the peer sends
// meanwhile stays queued in the inner transport and is delivered after
// Restore — the retransmit-after-heal behaviour of a real partition.
func (c *Conn) Blackhole() { c.setMode(modeBlackhole) }

// Restore lifts a Hang or Blackhole.
func (c *Conn) Restore() { c.setMode(modeClear) }

func (c *Conn) setMode(m mode) {
	c.mu.Lock()
	c.mode = m
	c.cond.Broadcast()
	c.mu.Unlock()
}

// awaitReadable blocks while the connection is hung or black-holed. It
// reports false once the connection is closed.
func (c *Conn) awaitReadable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.mode != modeClear && !c.closed {
		c.cond.Wait()
	}
	return !c.closed
}

// writePlan decides one write's fate under the schedule and current mode.
type writePlan struct {
	drop   bool
	dup    bool
	hang   bool
	delay  time.Duration
	closed bool
}

func (c *Conn) planWrite() writePlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.mode == modeHang && !c.closed {
		c.cond.Wait()
	}
	p := writePlan{closed: c.closed}
	if c.closed {
		return p
	}
	if c.mode == modeBlackhole {
		p.drop = true
		return p
	}
	c.writes++
	if n := c.sched.DropEveryNth; n > 0 && c.writes%n == 0 {
		p.drop = true
	}
	if c.sched.DropProb > 0 && c.rng.Float64() < c.sched.DropProb {
		p.drop = true
	}
	if !p.drop && c.sched.DupProb > 0 && c.rng.Float64() < c.sched.DupProb {
		p.dup = true
	}
	p.delay = c.sched.Delay
	if c.sched.Jitter > 0 {
		p.delay += time.Duration(c.rng.Int64N(int64(c.sched.Jitter)))
	}
	return p
}

// Read implements net.Conn. While hung or black-holed it blocks without
// touching the inner connection; Close unblocks it with io.ErrClosedPipe
// from the inner Close.
func (c *Conn) Read(p []byte) (int, error) {
	if !c.awaitReadable() {
		return 0, net.ErrClosed
	}
	return c.inner.Read(p)
}

// Write implements net.Conn, applying the fault schedule. Dropped writes
// report full success so the sender cannot tell (as with a lossy network).
func (c *Conn) Write(p []byte) (int, error) {
	plan := c.planWrite()
	if plan.closed {
		return 0, net.ErrClosed
	}
	if plan.delay > 0 {
		time.Sleep(plan.delay)
	}
	if plan.drop {
		return len(p), nil
	}
	n, err := c.inner.Write(p)
	if err != nil || !plan.dup {
		return n, err
	}
	if _, err := c.inner.Write(p); err != nil {
		return n, err
	}
	return n, nil
}

// Close closes the inner connection and releases any goroutine blocked in
// a hung Read or Write.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.inner.Close()
}

// Writes returns how many writes the schedule has judged so far (dropped
// ones included, black-holed ones not).
func (c *Conn) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

func (c *Conn) LocalAddr() net.Addr                { return c.inner.LocalAddr() }
func (c *Conn) RemoteAddr() net.Addr               { return c.inner.RemoteAddr() }
func (c *Conn) SetDeadline(t time.Time) error      { return c.inner.SetDeadline(t) }
func (c *Conn) SetReadDeadline(t time.Time) error  { return c.inner.SetReadDeadline(t) }
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

var _ net.Conn = (*Conn)(nil)
