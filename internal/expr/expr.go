// Package expr implements a small arithmetic-expression evaluator for
// function terms in one variable x — the "function terms, or other data from
// which the content or behavior of other components can be generated" in the
// COSOFT classroom (§4). A teacher couples the *term field* (cheap) and each
// environment regenerates the function display locally, instead of coupling
// the rendered display (expensive) — the indirect-coupling experiment.
//
// Grammar (standard precedence, left-associative, ^ right-associative):
//
//	expr   = term { (+|-) term }
//	term   = unary { (*|/) unary }
//	unary  = [-] power
//	power  = atom [ ^ unary ]
//	atom   = number | x | ( expr )
package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a compiled expression ready for repeated evaluation.
type Expr struct {
	root node
	src  string
}

// node is one AST node.
type node interface {
	eval(x float64) float64
}

type numNode float64

func (n numNode) eval(float64) float64 { return float64(n) }

type varNode struct{}

func (varNode) eval(x float64) float64 { return x }

type unaryNode struct{ operand node }

func (n unaryNode) eval(x float64) float64 { return -n.operand.eval(x) }

type binNode struct {
	op   byte
	l, r node
}

func (n binNode) eval(x float64) float64 {
	a, b := n.l.eval(x), n.r.eval(x)
	switch n.op {
	case '+':
		return a + b
	case '-':
		return a - b
	case '*':
		return a * b
	case '/':
		return a / b
	case '^':
		return math.Pow(a, b)
	default:
		return math.NaN()
	}
}

// Parse compiles a function term.
func Parse(src string) (*Expr, error) {
	p := &parser{input: strings.TrimSpace(src)}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.input) {
		return nil, fmt.Errorf("expr: unexpected %q at position %d", p.input[p.pos], p.pos)
	}
	return &Expr{root: root, src: src}, nil
}

// MustParse is Parse for compile-time-constant terms; it panics on error.
func MustParse(src string) *Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Eval evaluates the expression at x.
func (e *Expr) Eval(x float64) float64 { return e.root.eval(x) }

// String returns the original source term.
func (e *Expr) String() string { return e.src }

// Sample evaluates the expression at n evenly spaced points across
// [from, to], returning (x, y) pairs — the data a function display renders.
func (e *Expr) Sample(from, to float64, n int) [][2]float64 {
	if n <= 0 {
		return nil
	}
	out := make([][2]float64, n)
	if n == 1 {
		out[0] = [2]float64{from, e.Eval(from)}
		return out
	}
	step := (to - from) / float64(n-1)
	for i := range out {
		x := from + float64(i)*step
		out[i] = [2]float64{x, e.Eval(x)}
	}
	return out
}

type parser struct {
	input string
	pos   int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return 0
	}
	return p.input[p.pos]
}

func (p *parser) parseExpr() (node, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '+', '-':
			op := p.input[p.pos]
			p.pos++
			right, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			left = binNode{op: op, l: left, r: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTerm() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*', '/':
			op := p.input[p.pos]
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = binNode{op: op, l: left, r: right}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.peek() == '-' {
		p.pos++
		operand, err := p.parsePower()
		if err != nil {
			return nil, err
		}
		return unaryNode{operand: operand}, nil
	}
	return p.parsePower()
}

func (p *parser) parsePower() (node, error) {
	base, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.peek() == '^' {
		p.pos++
		exp, err := p.parseUnary() // right-associative
		if err != nil {
			return nil, err
		}
		return binNode{op: '^', l: base, r: exp}, nil
	}
	return base, nil
}

func (p *parser) parseAtom() (node, error) {
	c := p.peek()
	switch {
	case c == 0:
		return nil, fmt.Errorf("expr: unexpected end of input")
	case c == '(':
		p.pos++
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("expr: missing ')' at position %d", p.pos)
		}
		p.pos++
		return inner, nil
	case c == 'x' || c == 'X':
		p.pos++
		return varNode{}, nil
	case c >= '0' && c <= '9' || c == '.':
		start := p.pos
		for p.pos < len(p.input) {
			ch := p.input[p.pos]
			if (ch < '0' || ch > '9') && ch != '.' {
				break
			}
			p.pos++
		}
		f, err := strconv.ParseFloat(p.input[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("expr: bad number %q", p.input[start:p.pos])
		}
		return numNode(f), nil
	default:
		return nil, fmt.Errorf("expr: unexpected %q at position %d", c, p.pos)
	}
}
