package expr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEval(t *testing.T) {
	cases := []struct {
		src  string
		x    float64
		want float64
	}{
		{"1+2", 0, 3},
		{"2*x+1", 3, 7},
		{"x^2", 4, 16},
		{"2^3^2", 0, 512}, // right-associative
		{"-x", 5, -5},
		{"-(x+1)", 2, -3},
		{"(1+2)*3", 0, 9},
		{"10/4", 0, 2.5},
		{"1 - 2 - 3", 0, -4}, // left-associative
		{"12/3/2", 0, 2},
		{"0.5*x", 10, 5},
		{"X", 7, 7},
		{"2*x^2 - 3*x + 1", 2, 3},
		{"-2^2", 0, -4}, // unary binds outside power
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			e, err := Parse(c.src)
			if err != nil {
				t.Fatal(err)
			}
			if got := e.Eval(c.x); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Eval(%v) = %v, want %v", c.x, got, c.want)
			}
			if e.String() != c.src {
				t.Errorf("String = %q", e.String())
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"", "1+", "(1", "y", "1..2", "1 2", "*3", "x)"}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse must panic")
		}
	}()
	MustParse("((")
}

func TestSample(t *testing.T) {
	e := MustParse("x")
	pts := e.Sample(0, 10, 11)
	if len(pts) != 11 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != [2]float64{0, 0} || pts[10] != [2]float64{10, 10} {
		t.Errorf("endpoints = %v, %v", pts[0], pts[10])
	}
	if pts[5][0] != 5 {
		t.Errorf("midpoint x = %v", pts[5][0])
	}
	if got := e.Sample(3, 9, 1); len(got) != 1 || got[0] != [2]float64{3, 3} {
		t.Errorf("single sample = %v", got)
	}
	if e.Sample(0, 1, 0) != nil {
		t.Error("n=0 must return nil")
	}
}

// Property: division never panics and parsing is deterministic.
func TestPropEvalTotal(t *testing.T) {
	e := MustParse("(x^2 - 1) / (x - 1)")
	f := func(x float64) bool {
		_ = e.Eval(x) // may be Inf/NaN at poles, must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEval(b *testing.B) {
	e := MustParse("2*x^2 - 3*x + 1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Eval(float64(i))
	}
}
