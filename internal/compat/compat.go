// Package compat implements the compatibility machinery of §3.3: direct
// compatibility between primitive UI objects (same type, or a declared
// correspondence relation over relevant attributes), structural
// compatibility (s-compatibility) between complex objects, and the two
// approaches for non-identical structures — destructive merging and flexible
// matching.
package compat

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

// Correspondences stores declared correspondence relations between widget
// classes: for a pair (A, B), a mapping from each relevant attribute of A to
// the attribute of B used for copying or coupling.
type Correspondences struct {
	mu sync.RWMutex
	m  map[[2]string]map[string]string
}

// NewCorrespondences returns an empty correspondence registry.
func NewCorrespondences() *Correspondences {
	return &Correspondences{m: make(map[[2]string]map[string]string)}
}

// Declare records a correspondence from class a to class b. attrMap maps
// attributes of a to attributes of b; it replaces any previous declaration
// for the pair.
func (c *Correspondences) Declare(a, b string, attrMap map[string]string) {
	cp := make(map[string]string, len(attrMap))
	for k, v := range attrMap {
		cp[k] = v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[[2]string{a, b}] = cp
}

// lookup returns the declared mapping from a to b, if any.
func (c *Correspondences) lookup(a, b string) (map[string]string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.m[[2]string{a, b}]
	return m, ok
}

// Checker answers compatibility questions against a class registry and a
// correspondence registry.
type Checker struct {
	classes *widget.ClassRegistry
	corr    *Correspondences
}

// NewChecker returns a checker over the given registries. corr may be nil
// for a checker that only accepts same-class compatibility.
func NewChecker(classes *widget.ClassRegistry, corr *Correspondences) *Checker {
	if corr == nil {
		corr = NewCorrespondences()
	}
	return &Checker{classes: classes, corr: corr}
}

// Direct reports whether primitive objects of class a can be coupled with or
// copied to objects of class b, returning the attribute mapping (from a's
// relevant attributes to b's attributes).
//
// "Primitive objects are compatible if they are of the same type or if a
// correspondence relation is declared for their relevant attributes."
func (k *Checker) Direct(a, b string) (map[string]string, bool) {
	classA, err := k.classes.Lookup(a)
	if err != nil {
		return nil, false
	}
	if a == b {
		ident := make(map[string]string, len(classA.Relevant))
		for _, r := range classA.Relevant {
			ident[r] = r
		}
		return ident, true
	}
	if m, ok := k.corr.lookup(a, b); ok {
		if coversRelevant(classA, m) {
			return m, true
		}
		return nil, false
	}
	// A declaration in the other direction works when it is invertible and
	// its inverse covers a's relevant attributes.
	if m, ok := k.corr.lookup(b, a); ok {
		inv, invertible := invert(m)
		if invertible && coversRelevant(classA, inv) {
			return inv, true
		}
	}
	return nil, false
}

// TranslateState rewrites an attribute set through a correspondence mapping:
// source attribute names become destination names; unmapped attributes are
// dropped.
func TranslateState(s attr.Set, mapping map[string]string) attr.Set {
	out := make(attr.Set, len(s))
	for name, v := range s {
		if dst, ok := mapping[name]; ok {
			out[dst] = v.Clone()
		}
	}
	return out
}

func coversRelevant(c *widget.Class, m map[string]string) bool {
	for _, r := range c.Relevant {
		if _, ok := m[r]; !ok {
			return false
		}
	}
	return true
}

func invert(m map[string]string) (map[string]string, bool) {
	inv := make(map[string]string, len(m))
	for k, v := range m {
		if _, dup := inv[v]; dup {
			return nil, false
		}
		inv[v] = k
	}
	return inv, true
}

// Pair couples a source subtree path with the destination subtree path it is
// mapped onto. Paths are relative to the complex objects' roots ("" denotes
// the roots themselves).
type Pair struct {
	A, B string
}

// Stats records the cost of an s-compatibility search, for the matching
// benchmarks ("calculating α over several levels of nesting may be costly in
// practice").
type Stats struct {
	// NodesVisited counts compatibility checks on node pairs.
	NodesVisited int
	// Backtracks counts abandoned partial assignments.
	Backtracks int
}

// MatchOptions tunes the s-compatibility search.
type MatchOptions struct {
	// Heuristic enables the signature/name pre-matching that avoids
	// combinatorial explosion on wide trees.
	Heuristic bool
	// MaxVisits aborts the search after this many node-pair checks
	// (0 = unlimited).
	MaxVisits int
}

// SCompatible decides whether complex objects a and b are structurally
// compatible: a one-to-one mapping α between their components such that
// primitives map to directly compatible primitives and containers map to
// s-compatible containers. On success it returns the component pairing.
func (k *Checker) SCompatible(a, b widget.TreeState, opts MatchOptions) ([]Pair, bool, Stats) {
	m := &matcher{k: k, opts: opts}
	pairs, ok := m.match(a, b, "", "")
	if m.aborted {
		return nil, false, m.stats
	}
	if !ok {
		return nil, false, m.stats
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].A < pairs[j].A })
	return pairs, true, m.stats
}

type matcher struct {
	k       *Checker
	opts    MatchOptions
	stats   Stats
	aborted bool
}

func (m *matcher) visit() bool {
	m.stats.NodesVisited++
	if m.opts.MaxVisits > 0 && m.stats.NodesVisited > m.opts.MaxVisits {
		m.aborted = true
		return false
	}
	return true
}

// match returns the pairing of the subtrees rooted at a and b, or false.
func (m *matcher) match(a, b widget.TreeState, pathA, pathB string) ([]Pair, bool) {
	if !m.visit() {
		return nil, false
	}
	if _, ok := m.k.Direct(a.Class, b.Class); !ok {
		return nil, false
	}
	pairs := []Pair{{A: pathA, B: pathB}}
	if len(a.Children) == 0 && len(b.Children) == 0 {
		return pairs, true
	}
	if len(a.Children) != len(b.Children) {
		return nil, false
	}
	var childPairs []Pair
	var ok bool
	if m.opts.Heuristic {
		childPairs, ok = m.matchChildrenHeuristic(a, b, pathA, pathB)
	} else {
		childPairs, ok = m.matchChildrenBacktrack(a, b, pathA, pathB)
	}
	if !ok {
		return nil, false
	}
	return append(pairs, childPairs...), true
}

// matchChildrenBacktrack searches all one-to-one child assignments.
func (m *matcher) matchChildrenBacktrack(a, b widget.TreeState, pathA, pathB string) ([]Pair, bool) {
	n := len(a.Children)
	used := make([]bool, n)
	assigned := make([][]Pair, n)
	var rec func(i int) bool
	rec = func(i int) bool {
		if m.aborted {
			return false
		}
		if i == n {
			return true
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			sub, ok := m.match(a.Children[i], b.Children[j],
				childPath(pathA, a.Children[i].Name), childPath(pathB, b.Children[j].Name))
			if ok {
				used[j] = true
				assigned[i] = sub
				if rec(i + 1) {
					return true
				}
				used[j] = false
				m.stats.Backtracks++
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	var out []Pair
	for _, sub := range assigned {
		out = append(out, sub...)
	}
	return out, true
}

// matchChildrenHeuristic avoids exponential search: children are first
// paired by identical name, then the remainder is grouped by structural
// signature and paired within groups in order. This finds a valid mapping
// whenever names or signatures disambiguate — the common case for generated
// UIs — at near-linear cost. It may miss exotic mappings that only full
// backtracking finds.
func (m *matcher) matchChildrenHeuristic(a, b widget.TreeState, pathA, pathB string) ([]Pair, bool) {
	n := len(a.Children)
	assignment := make([]int, n)
	for i := range assignment {
		assignment[i] = -1
	}
	usedB := make([]bool, n)

	// Pass 1: exact-name matches.
	byName := make(map[string]int, n)
	for j, c := range b.Children {
		byName[c.Name] = j
	}
	for i, c := range a.Children {
		if j, ok := byName[c.Name]; ok && !usedB[j] {
			assignment[i] = j
			usedB[j] = true
		}
	}
	// Pass 2: group remaining children by signature, pair in order.
	groupB := make(map[string][]int)
	for j := range b.Children {
		if !usedB[j] {
			sig := signature(b.Children[j])
			groupB[sig] = append(groupB[sig], j)
		}
	}
	for i := range a.Children {
		if assignment[i] >= 0 {
			continue
		}
		sig := signature(a.Children[i])
		cands := groupB[sig]
		if len(cands) == 0 {
			return nil, false
		}
		assignment[i] = cands[0]
		usedB[cands[0]] = true
		groupB[sig] = cands[1:]
	}
	// Verify the assignment recursively.
	var out []Pair
	for i, j := range assignment {
		sub, ok := m.match(a.Children[i], b.Children[j],
			childPath(pathA, a.Children[i].Name), childPath(pathB, b.Children[j].Name))
		if !ok {
			return nil, false
		}
		out = append(out, sub...)
	}
	return out, true
}

// signature summarizes a subtree's shape: the class plus the sorted
// signatures of its children. Two subtrees with equal signatures have
// identical class structure.
func signature(ts widget.TreeState) string {
	if len(ts.Children) == 0 {
		return ts.Class
	}
	parts := make([]string, len(ts.Children))
	for i, c := range ts.Children {
		parts[i] = signature(c)
	}
	sort.Strings(parts)
	return ts.Class + "(" + strings.Join(parts, ",") + ")"
}

func childPath(prefix, name string) string {
	if prefix == "" {
		return name
	}
	return prefix + "/" + name
}

// DestructiveMerge makes the live subtree at dstPath structurally identical
// to src, then applies src's attributes: "Not only the attribute values, but
// also the structure of the dominating complex object is copied to the
// dominated object. Copying structure includes destroying objects of the
// dominated complex object if they conflict ... and creating objects if they
// do not exist."
//
// It returns the numbers of destroyed and created widgets.
func DestructiveMerge(reg *widget.Registry, dstPath string, src widget.TreeState) (destroyed, created int, err error) {
	dst, err := reg.Lookup(dstPath)
	if err != nil {
		return 0, 0, err
	}
	if dst.Class().Name != src.Class {
		return 0, 0, fmt.Errorf("compat: destructive merge cannot change the root class (%s vs %s)",
			dst.Class().Name, src.Class)
	}
	return mergeInto(reg, dst, src, true)
}

// FlexibleMatch copies src into the live subtree at dstPath conserving
// differing substructures: matching children (same name and class) are
// synchronized recursively, src-only children are created, dst-only children
// are kept ("Differing substructures are conserved by merging").
//
// It returns the numbers of matched and created widgets.
func FlexibleMatch(reg *widget.Registry, dstPath string, src widget.TreeState) (matched, created int, err error) {
	dst, err := reg.Lookup(dstPath)
	if err != nil {
		return 0, 0, err
	}
	if dst.Class().Name != src.Class {
		return 0, 0, fmt.Errorf("compat: flexible match requires equal root classes (%s vs %s)",
			dst.Class().Name, src.Class)
	}
	d, c, err := mergeInto(reg, dst, src, false)
	if err != nil {
		return 0, 0, err
	}
	if d != 0 {
		return 0, 0, fmt.Errorf("compat: internal: flexible match destroyed %d widgets", d)
	}
	// matched = all nodes of src minus the created ones.
	return src.CountNodes() - c, c, nil
}

// mergeInto applies src onto dst. In destructive mode, conflicting and
// surplus destination children are destroyed; otherwise they are conserved.
func mergeInto(reg *widget.Registry, dst *widget.Widget, src widget.TreeState, destructive bool) (destroyed, created int, err error) {
	dst.ApplyState(src.Attrs)
	srcByName := make(map[string]widget.TreeState, len(src.Children))
	for _, c := range src.Children {
		srcByName[c.Name] = c
	}
	// Handle existing destination children.
	for _, child := range dst.Children() {
		sc, ok := srcByName[child.Name()]
		switch {
		case ok && sc.Class == child.Class().Name:
			d, c, err := mergeInto(reg, child, sc, destructive)
			if err != nil {
				return destroyed, created, err
			}
			destroyed += d
			created += c
			delete(srcByName, child.Name())
		case destructive:
			// Conflicting class or absent from src: destroy.
			n := countSubtree(child)
			if err := reg.Destroy(child.Path()); err != nil {
				return destroyed, created, err
			}
			destroyed += n
			if ok && sc.Class != child.Class().Name {
				// Recreate below with the dominating structure.
				continue
			}
		case ok:
			// Non-destructive with a class conflict: conserve the existing
			// child, do not create a duplicate.
			delete(srcByName, child.Name())
		}
	}
	// Create children that are still missing, in src order for determinism.
	for _, sc := range src.Children {
		if _, pending := srcByName[sc.Name]; !pending {
			continue
		}
		if dst.Child(sc.Name) != nil {
			continue
		}
		w, err := reg.BuildTree(dst.Path(), sc.Name, sc)
		if err != nil {
			return destroyed, created, err
		}
		created += countSubtree(w)
	}
	return destroyed, created, nil
}

func countSubtree(w *widget.Widget) int {
	n := 1
	for _, c := range w.Children() {
		n += countSubtree(c)
	}
	return n
}
