package compat

import (
	"fmt"
	"testing"

	"cosoft/internal/attr"
	"cosoft/internal/widget"
)

func newChecker(t testing.TB) *Checker {
	t.Helper()
	return NewChecker(widget.NewClassRegistry(), NewCorrespondences())
}

func TestDirectSameClass(t *testing.T) {
	k := newChecker(t)
	m, ok := k.Direct("textfield", "textfield")
	if !ok {
		t.Fatal("same class must be compatible")
	}
	if m[widget.AttrValue] != widget.AttrValue {
		t.Errorf("mapping = %v", m)
	}
	if _, ok := k.Direct("nosuch", "nosuch"); ok {
		t.Error("unknown class must be incompatible")
	}
}

func TestDirectDifferentClassesNeedCorrespondence(t *testing.T) {
	k := newChecker(t)
	if _, ok := k.Direct("textfield", "label"); ok {
		t.Fatal("no correspondence declared, must be incompatible")
	}
	// textfield's relevant attr "value" corresponds to label's "label".
	k.corr.Declare("textfield", "label", map[string]string{widget.AttrValue: widget.AttrLabel})
	m, ok := k.Direct("textfield", "label")
	if !ok {
		t.Fatal("declared correspondence must make classes compatible")
	}
	if m[widget.AttrValue] != widget.AttrLabel {
		t.Errorf("mapping = %v", m)
	}
	// Reverse direction uses the inverse automatically (label's relevant
	// attr "label" is covered by the inverse).
	m, ok = k.Direct("label", "textfield")
	if !ok {
		t.Fatal("inverse correspondence must apply")
	}
	if m[widget.AttrLabel] != widget.AttrValue {
		t.Errorf("inverse mapping = %v", m)
	}
}

func TestDirectIncompleteCorrespondence(t *testing.T) {
	k := newChecker(t)
	// menu has two relevant attrs (items, selection); mapping only one is
	// insufficient.
	k.corr.Declare("menu", "list", map[string]string{widget.AttrSelection: widget.AttrSelection})
	if _, ok := k.Direct("menu", "list"); ok {
		t.Error("incomplete correspondence must be rejected")
	}
	k.corr.Declare("menu", "list", map[string]string{
		widget.AttrSelection: widget.AttrSelection,
		widget.AttrItems:     widget.AttrItems,
	})
	if _, ok := k.Direct("menu", "list"); !ok {
		t.Error("complete correspondence must be accepted")
	}
}

func TestDirectNonInvertibleCorrespondence(t *testing.T) {
	k := newChecker(t)
	// Two attributes of scale map to the same attribute of textfield: the
	// correspondence cannot be inverted for the reverse direction.
	k.corr.Declare("scale", "textfield", map[string]string{
		widget.AttrPosition: widget.AttrValue,
		widget.AttrMin:      widget.AttrValue,
	})
	if _, ok := k.Direct("scale", "textfield"); !ok {
		t.Error("forward direction covers scale's relevant attr")
	}
	if _, ok := k.Direct("textfield", "scale"); ok {
		t.Error("non-invertible mapping must not apply in reverse")
	}
}

func TestTranslateState(t *testing.T) {
	s := attr.Set{"value": attr.String("x"), "extra": attr.Int(1)}
	out := TranslateState(s, map[string]string{"value": "label"})
	if len(out) != 1 || out.Get("label").AsString() != "x" {
		t.Errorf("TranslateState = %v", out)
	}
}

func ts(class, name string, children ...widget.TreeState) widget.TreeState {
	return widget.TreeState{Class: class, Name: name, Attrs: attr.NewSet(), Children: children}
}

func TestSCompatibleIdenticalStructure(t *testing.T) {
	k := newChecker(t)
	a := ts("form", "q",
		ts("textfield", "author"),
		ts("menu", "op"),
		ts("button", "go"))
	b := ts("form", "q2",
		ts("textfield", "writer"),
		ts("menu", "operator"),
		ts("button", "submit"))
	for _, heuristic := range []bool{false, true} {
		pairs, ok, _ := k.SCompatible(a, b, MatchOptions{Heuristic: heuristic})
		if !ok {
			t.Fatalf("heuristic=%v: must be s-compatible", heuristic)
		}
		if len(pairs) != 4 {
			t.Errorf("heuristic=%v: pairs = %v", heuristic, pairs)
		}
		// Root pair present.
		if pairs[0].A != "" || pairs[0].B != "" {
			t.Errorf("heuristic=%v: first pair = %v", heuristic, pairs[0])
		}
	}
}

func TestSCompatibleMappingIsBijection(t *testing.T) {
	k := newChecker(t)
	a := ts("form", "f",
		ts("textfield", "x1"), ts("textfield", "x2"), ts("button", "b1"))
	b := ts("form", "g",
		ts("button", "c1"), ts("textfield", "y1"), ts("textfield", "y2"))
	for _, heuristic := range []bool{false, true} {
		pairs, ok, _ := k.SCompatible(a, b, MatchOptions{Heuristic: heuristic})
		if !ok {
			t.Fatalf("heuristic=%v: must match", heuristic)
		}
		seenA, seenB := map[string]bool{}, map[string]bool{}
		for _, p := range pairs {
			if seenA[p.A] || seenB[p.B] {
				t.Fatalf("heuristic=%v: mapping not one-to-one: %v", heuristic, pairs)
			}
			seenA[p.A], seenB[p.B] = true, true
		}
	}
}

func TestSCompatibleRejectsStructuralMismatch(t *testing.T) {
	k := newChecker(t)
	cases := []struct {
		name string
		a, b widget.TreeState
	}{
		{"different counts", ts("form", "f", ts("button", "b")), ts("form", "g")},
		{"different classes", ts("form", "f", ts("button", "b")), ts("form", "g", ts("menu", "m"))},
		{"incompatible roots", ts("form", "f"), ts("canvas", "c")},
		{"nested mismatch",
			ts("form", "f", ts("form", "inner", ts("button", "b"))),
			ts("form", "g", ts("form", "inner", ts("menu", "m")))},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, heuristic := range []bool{false, true} {
				if _, ok, _ := k.SCompatible(c.a, c.b, MatchOptions{Heuristic: heuristic}); ok {
					t.Errorf("heuristic=%v: must reject", heuristic)
				}
			}
		})
	}
}

func TestSCompatibleWithCorrespondence(t *testing.T) {
	k := newChecker(t)
	k.corr.Declare("textfield", "label", map[string]string{widget.AttrValue: widget.AttrLabel})
	a := ts("form", "f", ts("textfield", "x"))
	b := ts("form", "g", ts("label", "y"))
	if _, ok, _ := k.SCompatible(a, b, MatchOptions{}); !ok {
		t.Error("correspondence must extend to s-compatibility")
	}
}

// wideTree builds a container with n structurally identical children whose
// only valid assignments are the n! permutations.
func wideTree(n, depth int) widget.TreeState {
	root := ts("form", "root")
	for i := 0; i < n; i++ {
		c := ts("form", fmt.Sprintf("a%d", i))
		cur := &c
		for d := 0; d < depth; d++ {
			child := ts("form", fmt.Sprintf("n%d", d), ts("button", "leaf"))
			cur.Children = append(cur.Children, child)
			cur = &cur.Children[len(cur.Children)-1]
		}
		root.Children = append(root.Children, c)
	}
	return root
}

func TestHeuristicCheaperThanBacktracking(t *testing.T) {
	k := newChecker(t)
	a, b := wideTree(6, 2), wideTree(6, 2)
	// Rename b's children so name matching cannot shortcut.
	for i := range b.Children {
		b.Children[i].Name = fmt.Sprintf("z%d", i)
	}
	_, ok, naive := k.SCompatible(a, b, MatchOptions{Heuristic: false})
	if !ok {
		t.Fatal("naive must match")
	}
	_, ok, heur := k.SCompatible(a, b, MatchOptions{Heuristic: true})
	if !ok {
		t.Fatal("heuristic must match")
	}
	if heur.NodesVisited > naive.NodesVisited {
		t.Errorf("heuristic visited %d nodes, naive %d", heur.NodesVisited, naive.NodesVisited)
	}
}

func TestMatchBudget(t *testing.T) {
	k := newChecker(t)
	a, b := wideTree(8, 1), wideTree(8, 1)
	_, ok, stats := k.SCompatible(a, b, MatchOptions{MaxVisits: 5})
	if ok {
		t.Error("budget exhaustion must report failure")
	}
	if stats.NodesVisited < 5 {
		t.Errorf("visited = %d", stats.NodesVisited)
	}
}

func buildLive(t *testing.T, spec string) *widget.Registry {
	t.Helper()
	r := widget.NewRegistry()
	widget.MustBuild(r, "/", spec)
	return r
}

func TestDestructiveMerge(t *testing.T) {
	r := buildLive(t, `form panel title="old"
  textfield keep value="local"
  button conflictme label="B"
  label surplus label="gone"`)
	src := widget.TreeState{Class: "form", Name: "panel",
		Attrs: attr.Set{widget.AttrTitle: attr.String("new")},
		Children: []widget.TreeState{
			{Class: "textfield", Name: "keep", Attrs: attr.Set{widget.AttrValue: attr.String("remote")}},
			{Class: "menu", Name: "conflictme", Attrs: attr.Set{widget.AttrSelection: attr.String("x")}},
			{Class: "button", Name: "created", Attrs: attr.Set{widget.AttrLabel: attr.String("new")}},
		}}
	destroyed, created, err := DestructiveMerge(r, "/panel", src)
	if err != nil {
		t.Fatal(err)
	}
	if destroyed != 2 { // conflictme (class change) + surplus
		t.Errorf("destroyed = %d, want 2", destroyed)
	}
	if created != 2 { // conflictme recreated as menu + created
		t.Errorf("created = %d, want 2", created)
	}
	// Structure now identical to src.
	got, err := r.CaptureTree("/panel", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Children) != 3 {
		t.Fatalf("children = %d", len(got.Children))
	}
	w, err := r.Lookup("/panel/conflictme")
	if err != nil {
		t.Fatal(err)
	}
	if w.Class().Name != "menu" {
		t.Errorf("conflictme class = %s", w.Class().Name)
	}
	if v, _ := r.Lookup("/panel/keep"); v.Attr(widget.AttrValue).AsString() != "remote" {
		t.Error("matched child attrs not applied")
	}
	if _, err := r.Lookup("/panel/surplus"); err == nil {
		t.Error("surplus child must be destroyed")
	}
	if v, _ := r.Lookup("/panel"); v.Attr(widget.AttrTitle).AsString() != "new" {
		t.Error("root attrs not applied")
	}
}

func TestDestructiveMergeRootClassMismatch(t *testing.T) {
	r := buildLive(t, "form panel")
	if _, _, err := DestructiveMerge(r, "/panel", ts("canvas", "x")); err == nil {
		t.Error("root class change must fail")
	}
	if _, _, err := DestructiveMerge(r, "/missing", ts("form", "x")); err == nil {
		t.Error("missing destination must fail")
	}
}

func TestFlexibleMatchConserves(t *testing.T) {
	r := buildLive(t, `form panel
  textfield shared value="local"
  label private label="mine"`)
	src := widget.TreeState{Class: "form", Name: "panel", Attrs: attr.NewSet(),
		Children: []widget.TreeState{
			{Class: "textfield", Name: "shared", Attrs: attr.Set{widget.AttrValue: attr.String("remote")}},
			{Class: "button", Name: "extra", Attrs: attr.Set{widget.AttrLabel: attr.String("E")}},
		}}
	matched, created, err := FlexibleMatch(r, "/panel", src)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 2 { // panel + shared
		t.Errorf("matched = %d, want 2", matched)
	}
	if created != 1 { // extra
		t.Errorf("created = %d, want 1", created)
	}
	// Conserved: private still present.
	if _, err := r.Lookup("/panel/private"); err != nil {
		t.Error("differing substructure must be conserved")
	}
	if w, _ := r.Lookup("/panel/shared"); w.Attr(widget.AttrValue).AsString() != "remote" {
		t.Error("identical substructure must be synchronized")
	}
	if _, err := r.Lookup("/panel/extra"); err != nil {
		t.Error("src-only substructure must be merged in")
	}
}

func TestFlexibleMatchClassConflictConserved(t *testing.T) {
	r := buildLive(t, `form panel
  button clash label="B"`)
	src := widget.TreeState{Class: "form", Name: "panel", Attrs: attr.NewSet(),
		Children: []widget.TreeState{
			{Class: "menu", Name: "clash", Attrs: attr.NewSet()},
		}}
	_, created, err := FlexibleMatch(r, "/panel", src)
	if err != nil {
		t.Fatal(err)
	}
	if created != 0 {
		t.Errorf("created = %d, want 0 (conflict conserved)", created)
	}
	w, err := r.Lookup("/panel/clash")
	if err != nil {
		t.Fatal(err)
	}
	if w.Class().Name != "button" {
		t.Error("existing child must be conserved on class conflict")
	}
}

func TestSignature(t *testing.T) {
	a := ts("form", "x", ts("button", "b"), ts("menu", "m"))
	b := ts("form", "y", ts("menu", "q"), ts("button", "c"))
	if signature(a) != signature(b) {
		t.Error("signature must be order-independent")
	}
	c := ts("form", "z", ts("button", "b"), ts("button", "c"))
	if signature(a) == signature(c) {
		t.Error("different class multisets must differ")
	}
}

func BenchmarkSCompatNaive(b *testing.B) {
	benchSCompat(b, false)
}

func BenchmarkSCompatHeuristic(b *testing.B) {
	benchSCompat(b, true)
}

func benchSCompat(b *testing.B, heuristic bool) {
	k := NewChecker(widget.NewClassRegistry(), NewCorrespondences())
	a, t2 := wideTree(5, 3), wideTree(5, 3)
	for i := range t2.Children {
		t2.Children[i].Name = fmt.Sprintf("z%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, _ := k.SCompatible(a, t2, MatchOptions{Heuristic: heuristic}); !ok {
			b.Fatal("must match")
		}
	}
}
