package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/db"
	"cosoft/internal/tori"
)

// TORIRow compares the two ways of sharing retrieval results between N
// coupled TORI users (§4): re-executing the query in every environment
// (what coupling the query form gives for free) versus evaluating once and
// shipping the result rows ("one might argue that it would be preferable to
// evaluate the query once and share the results. But this goes beyond a
// simple sharing of UI objects").
type TORIRow struct {
	DBRows int
	Users  int
	// ReexecTime is the total compute cost of N independent evaluations.
	ReexecTime time.Duration
	// ShareTime is one evaluation plus serializing the result set N-1
	// times (the transfer the share-results design would pay).
	ShareTime time.Duration
	// ResultBytes is the encoded size of one result set.
	ResultBytes int
	// DivergentOK reports the flexibility check: with re-execution, one
	// user's query can differ (different predicate) and still work — the
	// share-results design cannot express this.
	DivergentOK bool
}

// TORIQueryCoupling sweeps database sizes for a fixed population.
func TORIQueryCoupling(dbRows []int, users int) ([]TORIRow, error) {
	var rows []TORIRow
	for _, n := range dbRows {
		row := TORIRow{DBRows: n, Users: users}

		// Build one TORI app per user, each with its own database copy
		// (fully replicated architecture).
		apps := make([]*tori.App, users)
		for i := range apps {
			database, err := tori.Bibliography(n, 42)
			if err != nil {
				return nil, err
			}
			app, err := tori.New(database, tori.BibliographyDesc())
			if err != nil {
				return nil, err
			}
			apps[i] = app
		}
		// The shared query: substring scan (no index help) so cost scales
		// with the database size.
		for _, app := range apps {
			if err := app.SetField("title", "Systems"); err != nil {
				return nil, err
			}
			if err := app.SetOp("title", db.OpSubstring); err != nil {
				return nil, err
			}
		}

		// Re-execution: every environment evaluates.
		start := time.Now()
		for _, app := range apps {
			if err := app.Submit(); err != nil {
				return nil, err
			}
		}
		row.ReexecTime = time.Since(start)

		// Share-results: evaluate once, then serialize the result set for
		// each of the other users (the minimum a result-shipping design
		// pays; decoding and display are charged to the receiver the same
		// way re-execution charges display locally).
		q := db.Query{Table: "pubs",
			Where: []db.Predicate{{Column: "title", Op: db.OpSubstring, Value: "Systems"}},
			Limit: 100}
		start = time.Now()
		res, err := apps[0].Database().Run(q)
		if err != nil {
			return nil, err
		}
		encoded := encodeResult(res)
		row.ResultBytes = len(encoded)
		for i := 1; i < users; i++ {
			_ = encodeResult(res) // one serialization per receiver
		}
		row.ShareTime = time.Since(start)

		// Divergence check: user 1 narrows its own copy of the query (adds
		// an author predicate) and re-executes locally — valid under
		// multiple evaluation, inexpressible under share-results.
		if err := apps[1].SelectView("all"); err != nil {
			return nil, err
		}
		if err := apps[1].SetField("author", "lamport"); err != nil {
			return nil, err
		}
		if err := apps[1].Submit(); err != nil {
			return nil, err
		}
		row.DivergentOK = true
		for _, r := range apps[1].ResultRows() {
			if len(r) == 0 {
				row.DivergentOK = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// encodeResult renders a result set to its wire-size text form.
func encodeResult(res db.Result) []byte {
	size := 0
	for _, row := range res.Rows {
		for _, cell := range row {
			size += len(cell) + 1
		}
	}
	buf := make([]byte, 0, size)
	for _, row := range res.Rows {
		for _, cell := range row {
			buf = append(buf, cell...)
			buf = append(buf, '|')
		}
	}
	return buf
}

var _ = fmt.Sprintf // keep fmt for future rows formatting
