package experiments

import (
	"fmt"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/client"
	"cosoft/internal/replay"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// StateVsActionRow compares re-synchronization strategies after a decoupled
// period of N missed actions (§3.1): naive action replay, compacted replay,
// and the single state copy the paper chose.
type StateVsActionRow struct {
	MissedActions int
	ReplayTime    time.Duration
	ReplayMsgs    int64
	CompactTime   time.Duration
	CompactMsgs   int64
	CompactEvents int // events surviving compaction
	StateCopyTime time.Duration
	StateCopyMsgs int64
}

// StateVsAction measures the three strategies for each decoupled-period
// length. The scenario: two instances share a textfield; instance A keeps
// editing while B is decoupled; afterwards B must reach A's state.
func StateVsAction(missed []int) ([]StateVsActionRow, error) {
	var rows []StateVsActionRow
	for _, n := range missed {
		row := StateVsActionRow{MissedActions: n}

		// Record A's actions during the decoupled period once.
		log := replay.NewLog(0)
		for i := 0; i < n; i++ {
			log.Record(&widget.Event{Path: "/field", Name: widget.EventChanged,
				Args: []attr.Value{attr.String(fmt.Sprintf("edit-%d", i))}})
		}
		final := fmt.Sprintf("edit-%d", n-1)

		// Strategy 1: naive replay of every action through the coupled
		// group.
		t, msgs, err := runReplayStrategy(log, final)
		if err != nil {
			return nil, fmt.Errorf("replay(%d): %w", n, err)
		}
		row.ReplayTime, row.ReplayMsgs = t, msgs

		// Strategy 2: compacted replay.
		compacted := replay.NewLog(0)
		for _, e := range log.Events() {
			e := e
			compacted.Record(&e)
		}
		compacted.Compact()
		row.CompactEvents = compacted.Len()
		t, msgs, err = runReplayStrategy(compacted, final)
		if err != nil {
			return nil, fmt.Errorf("compact(%d): %w", n, err)
		}
		row.CompactTime, row.CompactMsgs = t, msgs

		// Strategy 3: one synchronization by state.
		t, msgs, err = runStateCopyStrategy(final)
		if err != nil {
			return nil, fmt.Errorf("statecopy(%d): %w", n, err)
		}
		row.StateCopyTime, row.StateCopyMsgs = t, msgs

		rows = append(rows, row)
	}
	return rows, nil
}

// runReplayStrategy sets up a fresh coupled pair, replays the log from A,
// and waits until B holds the final value.
func runReplayStrategy(log *replay.Log, final string) (time.Duration, int64, error) {
	cl, err := NewCluster(2, fieldSpec, 0, server.Options{}, client.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/field"); err != nil {
		return 0, 0, err
	}
	if err := cl.CoupleStar("/field"); err != nil {
		return 0, 0, err
	}
	a := cl.Clients[0]
	before := cl.TotalMessages()
	start := time.Now()
	if _, err := log.Replay(func(e *widget.Event) error {
		_, err := DispatchRetry(a, e)
		return err
	}); err != nil {
		return 0, 0, err
	}
	if err := cl.WaitValue("/field", widget.AttrValue, final); err != nil {
		return 0, 0, err
	}
	return time.Since(start), cl.TotalMessages() - before, nil
}

// runStateCopyStrategy sets up a fresh pair where A already holds the final
// state, then performs one CopyTo.
func runStateCopyStrategy(final string) (time.Duration, int64, error) {
	cl, err := NewCluster(2, fieldSpec, 0, server.Options{}, client.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/field"); err != nil {
		return 0, 0, err
	}
	a, b := cl.Clients[0], cl.Clients[1]
	w, err := a.Registry().Lookup("/field")
	if err != nil {
		return 0, 0, err
	}
	w.SetAttr(widget.AttrValue, attr.String(final))
	before := cl.TotalMessages()
	start := time.Now()
	if err := a.CopyTo("/field", b.Ref("/field"), false); err != nil {
		return 0, 0, err
	}
	if err := waitValue(b, "/field", widget.AttrValue, final); err != nil {
		return 0, 0, err
	}
	return time.Since(start), cl.TotalMessages() - before, nil
}
