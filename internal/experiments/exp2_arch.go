package experiments

import (
	"fmt"
	"sync"
	"time"

	"cosoft/internal/attr"
	"cosoft/internal/baseline/multiplex"
	"cosoft/internal/baseline/uirepl"
	"cosoft/internal/client"
	"cosoft/internal/server"
	"cosoft/internal/widget"
)

// ArchLatencyRow is one measurement of the architecture comparison (Figures
// 1–3 behaviour): per-interaction latency perceived by the acting user, and
// message cost, for a given architecture / population / network latency.
type ArchLatencyRow struct {
	Architecture string
	Users        int
	Latency      time.Duration // one-way network latency configured
	PerEvent     time.Duration // mean time until the actor sees the effect
	Events       int
	Messages     int64 // frames (COSOFT) or logical messages (baselines)
}

// ArchParams configures the architecture comparison sweep.
type ArchParams struct {
	Users     []int
	Latencies []time.Duration
	// EventsPerUser is the number of interactions each user performs.
	EventsPerUser int
	// SharedFraction is the fraction of interactions touching the shared
	// object; the rest edit the user's private field. The paper's training
	// scenario is mostly individual work with occasional shared actions.
	SharedFraction float64
	// SemanticCost is the execution time of each shared (semantic) action
	// in the UI-replicated architecture — the knob behind the paper's "if
	// such a semantic action is time-consuming, it may block the execution
	// of other user's actions".
	SemanticCost time.Duration
}

// DefaultArchParams returns the sweep used by cmd/experiments.
func DefaultArchParams() ArchParams {
	return ArchParams{
		Users:          []int{2, 4, 8},
		Latencies:      []time.Duration{0, 2 * time.Millisecond},
		EventsPerUser:  12,
		SharedFraction: 0.25,
		SemanticCost:   time.Millisecond,
	}
}

const archSpec = `form app
  textfield field value=""
  textfield private value=""`

// pickPath deterministically interleaves shared and private interactions at
// the configured fraction.
func pickPath(i int, sharedFraction float64) string {
	if sharedFraction >= 1 || float64(i%4) < sharedFraction*4 {
		if sharedFraction > 0 {
			return "/app/field"
		}
	}
	return "/app/private"
}

// ArchComparison measures all three architectures across the sweep.
func ArchComparison(p ArchParams) ([]ArchLatencyRow, error) {
	var rows []ArchLatencyRow
	for _, users := range p.Users {
		for _, lat := range p.Latencies {
			mux, err := measureMultiplex(users, lat, p.EventsPerUser, p.SharedFraction)
			if err != nil {
				return nil, err
			}
			rows = append(rows, mux)
			ui, err := measureUIRepl(users, lat, p.EventsPerUser, p.SharedFraction, p.SemanticCost)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ui)
			cos, err := measureCosoft(users, lat, p.EventsPerUser, p.SharedFraction)
			if err != nil {
				return nil, err
			}
			rows = append(rows, cos)
		}
	}
	return rows, nil
}

// measureMultiplex: all users act concurrently; every interaction pays the
// full round trip through the single instance and serializes there.
func measureMultiplex(users int, lat time.Duration, events int, sharedFraction float64) (ArchLatencyRow, error) {
	s, err := multiplex.New(multiplex.Options{Users: users, Latency: lat, Spec: archSpec})
	if err != nil {
		return ArchLatencyRow{}, err
	}
	defer s.Stop()
	var wg sync.WaitGroup
	errs := make(chan error, users)
	waits := make([]time.Duration, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				// In the multiplex architecture even "private" work lives in
				// the single shared instance — every interaction pays the
				// round trip and the serialization.
				ev := &widget.Event{Path: pickPath(i, sharedFraction), Name: widget.EventChanged,
					Args: []attr.Value{attr.String(fmt.Sprintf("u%d-%d", u, i))}}
				start := time.Now()
				if err := s.Do(u, ev); err != nil {
					errs <- err
					return
				}
				// Response time as perceived by the user: includes queueing
				// behind every other participant's serialized input.
				waits[u] += time.Since(start)
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return ArchLatencyRow{}, err
	}
	var total time.Duration
	for _, w := range waits {
		total += w
	}
	in, out := s.Messages()
	return ArchLatencyRow{
		Architecture: "multiplex",
		Users:        users,
		Latency:      lat,
		PerEvent:     total / time.Duration(users*events),
		Events:       users * events,
		Messages:     in + out,
	}, nil
}

// measureUIRepl: every interaction is a semantic action (the worst case the
// paper highlights); they serialize in the shared semantic process.
func measureUIRepl(users int, lat time.Duration, events int, sharedFraction float64, semCost time.Duration) (ArchLatencyRow, error) {
	s, err := uirepl.New(uirepl.Options{Users: users, Latency: lat, Spec: archSpec, SemanticCost: semCost})
	if err != nil {
		return ArchLatencyRow{}, err
	}
	defer s.Stop()
	var wg sync.WaitGroup
	errs := make(chan error, users)
	waits := make([]time.Duration, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				val := fmt.Sprintf("u%d-%d", u, i)
				path := pickPath(i, sharedFraction)
				start := time.Now()
				var err error
				if path == "/app/private" {
					// Private typing is a syntactic action on the local
					// replica.
					err = s.DoLocal(u, &widget.Event{Path: path, Name: widget.EventChanged,
						Args: []attr.Value{attr.String(val)}})
				} else {
					// Shared interactions are semantic actions through the
					// single shared component.
					err = s.DoSemantic(u, func(state map[string]string) []uirepl.Update {
						state["field"] = val
						return []uirepl.Update{{Path: path, Name: widget.AttrValue, Text: val}}
					})
				}
				if err != nil {
					errs <- err
					return
				}
				waits[u] += time.Since(start)
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return ArchLatencyRow{}, err
	}
	var total time.Duration
	for _, w := range waits {
		total += w
	}
	sem, updates := s.Messages()
	return ArchLatencyRow{
		Architecture: "ui-replicated",
		Users:        users,
		Latency:      lat,
		PerEvent:     total / time.Duration(users*events),
		Events:       users * events,
		Messages:     sem + updates,
	}, nil
}

// measureCosoft: all users' fields are coupled into one group; each user
// acts on its own replica — local feedback is immediate, and the
// DispatchChecked round trip measures the floor-control cost.
func measureCosoft(users int, lat time.Duration, events int, sharedFraction float64) (ArchLatencyRow, error) {
	cl, err := NewCluster(users, archSpec, lat, server.Options{}, client.Options{})
	if err != nil {
		return ArchLatencyRow{}, err
	}
	defer cl.Close()
	if err := cl.DeclareAll("/app"); err != nil {
		return ArchLatencyRow{}, err
	}
	if err := cl.CoupleStar("/app/field"); err != nil {
		return ArchLatencyRow{}, err
	}
	baseline := cl.TotalMessages()
	var wg sync.WaitGroup
	waits := make([]time.Duration, users)
	errs := make(chan error, users)
	for u := range cl.Clients {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < events; i++ {
				ev := &widget.Event{Path: pickPath(i, sharedFraction), Name: widget.EventChanged,
					Args: []attr.Value{attr.String(fmt.Sprintf("u%d-%d", u, i))}}
				start := time.Now()
				// Private events run entirely locally; shared events pay the
				// floor-control round trip, with contenders retrying exactly
				// as a user whose widget re-enables.
				if _, err := DispatchRetry(cl.Clients[u], ev); err != nil {
					errs <- err
					return
				}
				waits[u] += time.Since(start)
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return ArchLatencyRow{}, err
	}
	var total time.Duration
	for _, w := range waits {
		total += w
	}
	return ArchLatencyRow{
		Architecture: "cosoft",
		Users:        users,
		Latency:      lat,
		PerEvent:     total / time.Duration(users*events),
		Events:       users * events,
		Messages:     cl.TotalMessages() - baseline,
	}, nil
}
